// Package defense implements the mitigation study of Sections II-D and VII:
// a HARMONIC-style monitor that watches Grain-I (per-class volume), Grain-II
// (per-opcode) and Grain-III (per-QP/MR) counters on the server RNIC, and
// the noise-injection mitigation that blurs ULI at a performance cost.
//
// The experiments show exactly the paper's point: counter-based isolation
// flags the Grain-I..III channels, but the intra-MR Grain-IV channel is
// invisible to it — the sender's counters are identical whichever address
// offset it touches — while noise injection trades error rate against
// latency inflation.
package defense

import (
	"math"

	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/stats"
	"github.com/thu-has/ragnar/internal/telemetry"
)

// Snapshot aliases the telemetry counter snapshot the detectors consume.
type Snapshot = telemetry.Snapshot

// features flattens a delta snapshot into the metric vector HARMONIC
// thresholds. Keys are stable strings so training and scoring align.
func features(d Snapshot) map[string]float64 {
	f := map[string]float64{
		"tx_bytes": float64(d.TxBytes),
		"rx_bytes": float64(d.RxBytes),
	}
	for tc, v := range d.PerTC {
		if v > 0 {
			f["tc/"+itoa(uint32(tc))] = float64(v)
		}
	}
	for tc, v := range d.PFCPauses {
		if v > 0 {
			f["pfc/"+itoa(uint32(tc))] = float64(v)
		}
	}
	// Loss/reliability observables (only present when non-zero, so a
	// lossless trace scores exactly as before these counters existed).
	for tc, v := range d.WireDropsTC {
		if v > 0 {
			f["wiredrop/"+itoa(uint32(tc))] = float64(v)
		}
	}
	if d.Retransmits > 0 {
		f["retx"] = float64(d.Retransmits)
	}
	if d.SeqNaks > 0 {
		f["nak_seq"] = float64(d.SeqNaks)
	}
	if d.Timeouts > 0 {
		f["rtx_timeout"] = float64(d.Timeouts)
	}
	if d.RxCorrupt > 0 {
		f["rx_corrupt"] = float64(d.RxCorrupt)
	}
	// Protocol-abuse observables (the NeVerMore surface), gated on non-zero
	// like everything above. These are the markers that separate frame
	// injection from benign loss: random drops produce retransmits and NAKs,
	// but never a request for a QPN that was never created, a NAK whose gap
	// head is not outstanding, or an ACK whose PSN disagrees with the
	// request it claims to answer.
	if d.RxBadQP > 0 {
		f["bad_qp"] = float64(d.RxBadQP)
	}
	if d.InvalidNaks > 0 {
		f["invalid_nak"] = float64(d.InvalidNaks)
	}
	if d.InvalidAcks > 0 {
		f["invalid_ack"] = float64(d.InvalidAcks)
	}
	if d.RxBadPSN > 0 {
		f["bad_psn"] = float64(d.RxBadPSN)
	}
	// Finite-resource (exhaustion) observables, again gated on non-zero so
	// pre-exhaustion traces score exactly as before. These are the markers
	// that separate resource exhaustion from plain bandwidth contention: a
	// merely contended NIC keeps its contexts resident and its CQs drained.
	if d.CtxMisses > 0 {
		f["ctx_miss"] = float64(d.CtxMisses)
	}
	if d.CtxEvictions > 0 {
		f["ctx_evict"] = float64(d.CtxEvictions)
	}
	if d.CQOverruns > 0 {
		f["cq_overrun"] = float64(d.CQOverruns)
	}
	// Encryption observables, non-zero only on AES-priced profiles, so
	// every legacy trace scores exactly as before.
	if d.EncOps > 0 {
		f["enc_ops"] = float64(d.EncOps)
	}
	if d.EncBytes > 0 {
		f["enc_bytes"] = float64(d.EncBytes)
	}
	// RedN offload observables, non-zero only when WAIT/ENABLE chains run.
	// A NIC-local monitor that sees them directly separates chain workloads
	// trivially; the redn experiment's point is that the chain's branch
	// pattern ALSO leaks to a co-located tenant that sees none of these.
	if d.WaitWQEs > 0 {
		f["wait_wqes"] = float64(d.WaitWQEs)
	}
	if d.EnableWQEs > 0 {
		f["enable_wqes"] = float64(d.EnableWQEs)
	}
	if d.WaitWakes > 0 {
		f["wait_wakes"] = float64(d.WaitWakes)
	}
	if d.SelfModifies > 0 {
		f["self_modifies"] = float64(d.SelfModifies)
	}
	for k, v := range d.PerOpcode {
		f["op/"+k.String()] = float64(v)
	}
	for k, v := range d.PerMR {
		f["mr/"+itoa(k)] = float64(v)
	}
	// Per-QP counters aggregate to activity spread: HARMONIC watches for
	// single QPs dominating.
	var qp []float64
	for _, v := range d.PerQP {
		qp = append(qp, float64(v))
	}
	if len(qp) > 0 {
		f["qp_max"] = stats.Max(qp)
		f["qp_total"] = stats.Sum(qp)
	}
	return f
}

func itoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var buf [10]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Harmonic is the counter-based anomaly detector: it learns the per-window
// mean and deviation of every metric from benign traffic, then scores live
// windows by their worst-case normalised deviation.
type Harmonic struct {
	mean map[string]float64
	std  map[string]float64
	// Threshold is the z-score above which a window is flagged.
	Threshold float64
}

// TrainHarmonic fits the baseline from benign window deltas.
func TrainHarmonic(benign []Snapshot) *Harmonic {
	vecs := make([]map[string]float64, len(benign))
	for i, d := range benign {
		vecs[i] = features(d)
	}
	return TrainHarmonicVectors(vecs)
}

// TrainHarmonicVectors fits the baseline from pre-flattened feature vectors.
// Counter snapshots flatten via features(); the flight recorder's metrics
// registry contributes latency-distribution features through
// MetricsFeatures — merge the maps per window to train on both.
func TrainHarmonicVectors(benign []map[string]float64) *Harmonic {
	acc := map[string][]float64{}
	for _, vec := range benign {
		for k, v := range vec {
			acc[k] = append(acc[k], v)
		}
	}
	h := &Harmonic{mean: map[string]float64{}, std: map[string]float64{}, Threshold: 4}
	for k, xs := range acc {
		m := stats.Mean(xs)
		h.mean[k] = m
		sd := stats.StdDev(xs)
		// Benign workloads naturally wobble; a production isolation system
		// must tolerate ~15% window-to-window variation or it would alarm
		// constantly. This tolerance is exactly what Grain-IV channels hide
		// beneath.
		if floor := 0.15 * m; sd < floor {
			sd = floor
		}
		if sd < 1 {
			sd = 1 // quantised counters: avoid zero-variance divisions
		}
		h.std[k] = sd
	}
	return h
}

// Score returns the maximum normalised deviation of a window from the
// benign baseline. Metrics unseen in training score by absolute magnitude
// (a brand-new MR or opcode appearing is itself suspicious).
func (h *Harmonic) Score(d Snapshot) float64 { return h.ScoreVector(features(d)) }

// ScoreVector scores a pre-flattened feature vector against the baseline.
func (h *Harmonic) ScoreVector(f map[string]float64) float64 {
	worst := 0.0
	for k, v := range f {
		m, ok := h.mean[k]
		if !ok {
			if v > 0 {
				worst = math.Max(worst, v) // unseen metric active
			}
			continue
		}
		z := math.Abs(v-m) / h.std[k]
		worst = math.Max(worst, z)
	}
	return worst
}

// Detect reports whether the window trips the detector.
func (h *Harmonic) Detect(d Snapshot) bool { return h.Score(d) > h.Threshold }

// WindowedDeltas re-exports telemetry.WindowedDeltas for detector callers.
func WindowedDeltas(series []Snapshot) []Snapshot { return telemetry.WindowedDeltas(series) }

// ---------------------------------------------------------------------------
// Noise injection (Section VII)
// ---------------------------------------------------------------------------

// NoiseMitigation installs sub-microsecond random service-time noise in the
// NIC's translation pipeline, the paper's "adding noise" defense. Pure
// added *latency* would pipeline away and leave ULI intact (the paper notes
// noise "may still leave detectable traces"); to obscure ULI the noise must
// occupy the serialising stage, which is also why it costs throughput.
// Amplitude 0 disables it. It returns an uninstall function.
func NoiseMitigation(n *nic.NIC, amplitude sim.Duration, rng interface{ Int63n(int64) int64 }) func() {
	if amplitude <= 0 {
		n.TPU().ExtraService = nil
		return func() {}
	}
	n.TPU().ExtraService = func() sim.Duration {
		return sim.Duration(rng.Int63n(int64(amplitude)))
	}
	return func() { n.TPU().ExtraService = nil }
}

// MitigationPoint is one row of the noise-vs-protection tradeoff.
type MitigationPoint struct {
	Amplitude sim.Duration
	// ChannelErrorRate is the covert channel's error rate under this noise.
	ChannelErrorRate float64
	// LatencyInflation is mean benign request latency relative to no-noise.
	LatencyInflation float64
}

// ConstantTimeMitigation enables (or disables) worst-case-padded
// translations on a NIC — the Section VII "hardware partitioning / fixing
// hardware features" defense. Unlike noise, it removes the Grain-III/IV
// carrier entirely; the price is that every translation pays the slowest
// path. It returns an uninstall function.
func ConstantTimeMitigation(n *nic.NIC, on bool) func() {
	n.TPU().SetConstantTime(on)
	return func() { n.TPU().SetConstantTime(false) }
}
