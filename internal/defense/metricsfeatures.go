package defense

import (
	"github.com/thu-has/ragnar/internal/trace"
)

// MetricsFeatures flattens a flight-recorder metrics registry into the
// latency-distribution features counter snapshots cannot express: per-TC
// fabric queueing-delay quantiles, retransmit stall time and receiver ULI
// sample jitter. These are the observables a Grain-IV channel perturbs
// while leaving every volume counter untouched — the sender's byte counts
// are identical whichever offset it reads, but the serialising translation
// stage still stretches the victim's latency tail.
//
// Values are nanoseconds. Keys are stable strings so vectors merge with
// features() output for TrainHarmonicVectors/ScoreVector. Empty histograms
// contribute nothing, so an untraced run scores exactly as before.
func MetricsFeatures(m *trace.Metrics) map[string]float64 {
	f := map[string]float64{}
	if m == nil {
		return f
	}
	const ns = 1000.0 // histogram durations are picoseconds
	for tc := range m.QueueDelay {
		h := &m.QueueDelay[tc]
		if h.Count() == 0 {
			continue
		}
		pfx := "qdelay/" + itoa(uint32(tc))
		f[pfx+"/p50"] = float64(h.Quantile(0.5)) / ns
		f[pfx+"/p99"] = float64(h.Quantile(0.99)) / ns
		f[pfx+"/mean"] = h.Mean() / ns
	}
	if h := &m.RetxStall; h.Count() > 0 {
		f["retx_stall/p99"] = float64(h.Quantile(0.99)) / ns
		f["retx_stall/mean"] = h.Mean() / ns
	}
	if h := &m.ULIJitter; h.Count() > 0 {
		f["uli_jitter/p50"] = float64(h.Quantile(0.5)) / ns
		f["uli_jitter/p99"] = float64(h.Quantile(0.99)) / ns
	}
	if h := &m.WQELatency; h.Count() > 0 {
		f["wqe_lat/p50"] = float64(h.Quantile(0.5)) / ns
		f["wqe_lat/p99"] = float64(h.Quantile(0.99)) / ns
	}
	return f
}

// AugmentedFeatures merges a counter delta's features with a metrics
// registry's latency features into one scoring vector.
func AugmentedFeatures(d Snapshot, m *trace.Metrics) map[string]float64 {
	f := features(d)
	for k, v := range MetricsFeatures(m) {
		f[k] = v
	}
	return f
}
