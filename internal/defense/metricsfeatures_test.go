package defense

import (
	"math"
	"testing"

	"github.com/thu-has/ragnar/internal/trace"
)

// emitDelays fills a recorder with per-TC dequeue delays around base (ps) and
// a spread of ULI samples, standing in for one monitoring window.
func emitDelays(r *trace.Recorder, base int64, n int) {
	a := r.RegisterActor("link")
	u := r.RegisterActor("uli")
	at := int64(0)
	for i := 0; i < n; i++ {
		at += 1_000_000
		r.Emit(trace.Event{At: at, Kind: trace.KindTCDequeue, Actor: a, TC: 3,
			Dur: base + int64(i%7)*base/64, Val: 256})
		r.Emit(trace.Event{At: at, Kind: trace.KindULISample, Actor: u, TC: -1,
			Val: math.Float64bits(900)})
	}
}

func TestMetricsFeaturesNilAndEmpty(t *testing.T) {
	if len(MetricsFeatures(nil)) != 0 {
		t.Fatal("nil registry must contribute no features")
	}
	r := trace.NewRecorder("empty", 16)
	if len(MetricsFeatures(r.Metrics())) != 0 {
		t.Fatal("empty registry must contribute no features")
	}
}

func TestMetricsFeaturesKeys(t *testing.T) {
	r := trace.NewRecorder("w", 1<<12)
	emitDelays(r, 2_000_000, 64) // 2 us queueing delay
	f := MetricsFeatures(r.Metrics())
	for _, k := range []string{"qdelay/3/p50", "qdelay/3/p99", "qdelay/3/mean",
		"uli_jitter/p50", "uli_jitter/p99"} {
		if _, ok := f[k]; !ok {
			t.Fatalf("missing feature %q in %v", k, f)
		}
	}
	if f["qdelay/3/p50"] <= 0 || f["qdelay/3/p99"] < f["qdelay/3/p50"] {
		t.Fatalf("quantiles out of order: %v", f)
	}
	// ULI samples arrive every 1 us: jitter p50 should sit in that decade.
	if f["uli_jitter/p50"] < 500 || f["uli_jitter/p50"] > 5000 {
		t.Fatalf("uli jitter p50 = %v ns, want ~1000", f["uli_jitter/p50"])
	}
	if _, ok := f["retx_stall/p99"]; ok {
		t.Fatal("no retransmissions were emitted, yet retx features appeared")
	}
}

// TestHarmonicOnLatencyFeatures: a detector trained on benign queueing-delay
// windows flags a window whose delay tail inflates — the signal volume
// counters cannot carry (the Grain-IV scenario: identical byte counts,
// stretched latency).
func TestHarmonicOnLatencyFeatures(t *testing.T) {
	var benign []map[string]float64
	for w := 0; w < 8; w++ {
		r := trace.NewRecorder("benign", 1<<12)
		emitDelays(r, 2_000_000+int64(w)*20_000, 64)
		benign = append(benign, MetricsFeatures(r.Metrics()))
	}
	h := TrainHarmonicVectors(benign)

	quiet := trace.NewRecorder("quiet", 1<<12)
	emitDelays(quiet, 2_050_000, 64)
	if s := h.ScoreVector(MetricsFeatures(quiet.Metrics())); s > h.Threshold {
		t.Fatalf("benign-like window scored %v > %v", s, h.Threshold)
	}

	loud := trace.NewRecorder("loud", 1<<12)
	emitDelays(loud, 40_000_000, 64) // 20x delay inflation, same event count
	if s := h.ScoreVector(MetricsFeatures(loud.Metrics())); s <= h.Threshold {
		t.Fatalf("latency-inflated window scored only %v", s)
	}
}

// TestAugmentedFeaturesMerge: counter features and latency features coexist
// in one vector.
func TestAugmentedFeaturesMerge(t *testing.T) {
	r := trace.NewRecorder("m", 1<<12)
	emitDelays(r, 1_000_000, 16)
	d := Snapshot{TxBytes: 4096, RxBytes: 8192}
	f := AugmentedFeatures(d, r.Metrics())
	if f["tx_bytes"] != 4096 || f["rx_bytes"] != 8192 {
		t.Fatal("counter features lost in merge")
	}
	if _, ok := f["qdelay/3/p50"]; !ok {
		t.Fatal("latency features lost in merge")
	}
}
