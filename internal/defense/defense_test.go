package defense

import (
	"testing"

	"github.com/thu-has/ragnar/internal/bitstream"
	"github.com/thu-has/ragnar/internal/covert"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/stats"
	"github.com/thu-has/ragnar/internal/telemetry"
)

// channelSnapshots runs a ULI covert channel while snapshotting the server
// NIC's counters every window, returning the per-window deltas.
func channelSnapshots(t *testing.T, ch *covert.ULIChannel, bits bitstream.Bits, windows int) []Snapshot {
	t.Helper()
	eng := ch.Cluster.Eng
	server := ch.Cluster.Server.NIC()
	var series []Snapshot
	total := ch.SymbolTime * sim.Duration(len(bits))
	window := total / sim.Duration(windows)
	series = append(series, telemetry.Snap(eng, server))
	for w := 1; w <= windows; w++ {
		eng.At(eng.Now().Add(window*sim.Duration(w)), func() {
			series = append(series, telemetry.Snap(eng, server))
		})
	}
	if _, err := ch.Transmit(bits); err != nil {
		t.Fatal(err)
	}
	return WindowedDeltas(series)
}

// benignSnapshots runs the channel with all-zero bits (steady benign-like
// traffic) to train the detector baseline.
func benignTrainingDeltas(t *testing.T, mk func() *covert.ULIChannel, windows int) []Snapshot {
	t.Helper()
	ch := mk()
	zero := make(bitstream.Bits, 24)
	return channelSnapshots(t, ch, zero, windows)
}

func TestHarmonicDetectsInterMRChannel(t *testing.T) {
	mk := func() *covert.ULIChannel {
		ch, err := covert.NewInterMRChannel(nic.CX5, 11)
		if err != nil {
			t.Fatal(err)
		}
		return ch
	}
	// Baseline: constant-state traffic (the benign look of this tenant).
	h := TrainHarmonic(benignTrainingDeltas(t, mk, 24))
	// Live: alternating bits flip the per-MR counters window to window.
	ch := mk()
	deltas := channelSnapshots(t, ch, bitstream.RandomBits(3, 24), 24)
	flagged := 0
	for _, d := range deltas {
		if h.Detect(d) {
			flagged++
		}
	}
	if flagged == 0 {
		t.Fatal("HARMONIC-style Grain-III counters should flag the inter-MR channel")
	}
}

func TestIntraMRChannelEvadesHarmonic(t *testing.T) {
	mk := func() *covert.ULIChannel {
		ch, err := covert.NewIntraMRChannel(nic.CX5, 13)
		if err != nil {
			t.Fatal(err)
		}
		return ch
	}
	h := TrainHarmonic(benignTrainingDeltas(t, mk, 24))
	ch := mk()
	deltas := channelSnapshots(t, ch, bitstream.RandomBits(5, 24), 24)
	flagged := 0
	for _, d := range deltas {
		if h.Detect(d) {
			flagged++
		}
	}
	// Grain-IV evasion: the offsets the sender touches do not appear in any
	// Grain-I..III counter, so windows look identical to the baseline.
	if flagged > 1 {
		t.Fatalf("intra-MR channel flagged in %d/%d windows; Grain-IV should evade counters", flagged, len(deltas))
	}
}

func TestScoreUnseenMetricSuspicious(t *testing.T) {
	h := TrainHarmonic([]Snapshot{{PerMR: map[uint32]uint64{1: 100}}, {PerMR: map[uint32]uint64{1: 110}}})
	score := h.Score(Snapshot{PerMR: map[uint32]uint64{99: 5000}})
	if score < h.Threshold {
		t.Fatalf("unseen MR activity scored %.1f, should alarm", score)
	}
}

func TestDeltaArithmetic(t *testing.T) {
	a := Snapshot{TxBytes: 100, PerOpcode: map[nic.Opcode]uint64{nic.OpRead: 10},
		PerQP: map[uint32]uint64{1: 5}, PerMR: map[uint32]uint64{7: 640}}
	b := Snapshot{TxBytes: 150, PerOpcode: map[nic.Opcode]uint64{nic.OpRead: 25},
		PerQP: map[uint32]uint64{1: 9}, PerMR: map[uint32]uint64{7: 960}}
	d := telemetry.Delta(a, b)
	if d.TxBytes != 50 || d.PerOpcode[nic.OpRead] != 15 || d.PerQP[1] != 4 || d.PerMR[7] != 320 {
		t.Fatalf("delta = %+v", d)
	}
}

// Noise mitigation: channel error rises with amplitude; benign ULI inflates.
func TestNoiseMitigationTradeoff(t *testing.T) {
	run := func(amp sim.Duration) (errRate, meanULI float64) {
		ch, err := covert.NewIntraMRChannel(nic.CX4, 17)
		if err != nil {
			t.Fatal(err)
		}
		uninstall := NoiseMitigation(ch.Cluster.Server.NIC(), amp, ch.Cluster.Eng.Rand())
		defer uninstall()
		run, err := ch.Transmit(bitstream.RandomBits(9, 48))
		if err != nil {
			t.Fatal(err)
		}
		return run.Result.ErrorRate, stats.Mean(run.SymbolMeans)
	}
	e0, u0 := run(0)
	eHi, uHi := run(800 * sim.Nanosecond)
	if eHi <= e0 {
		t.Fatalf("noise did not degrade the channel: %.2f -> %.2f", e0, eHi)
	}
	if uHi <= u0 {
		t.Fatalf("noise has no performance cost: ULI %.0f -> %.0f", u0, uHi)
	}
	if eHi < 0.2 {
		t.Fatalf("800ns noise should roughly jam the channel, error = %.2f", eHi)
	}
}

func TestNoiseMitigationZeroAmplitude(t *testing.T) {
	ch, err := covert.NewIntraMRChannel(nic.CX4, 19)
	if err != nil {
		t.Fatal(err)
	}
	n := ch.Cluster.Server.NIC()
	NoiseMitigation(n, 0, ch.Cluster.Eng.Rand())
	if n.ResponderDelay != nil {
		t.Fatal("zero amplitude should uninstall the hook")
	}
}

// Constant-time translations must kill the intra-MR channel completely
// (decode at chance) while inflating benign ULI.
func TestConstantTimeMitigationKillsChannel(t *testing.T) {
	run := func(enable bool) (errRate, meanULI float64) {
		ch, err := covert.NewIntraMRChannel(nic.CX5, 23)
		if err != nil {
			t.Fatal(err)
		}
		if enable {
			defer ConstantTimeMitigation(ch.Cluster.Server.NIC(), true)()
		}
		run, err := ch.Transmit(bitstream.RandomBits(13, 64))
		if err != nil {
			t.Fatal(err)
		}
		return run.Result.ErrorRate, stats.Mean(run.SymbolMeans)
	}
	eOff, uOff := run(false)
	eOn, uOn := run(true)
	if eOn < 0.3 {
		t.Fatalf("constant-time TPU left the channel alive: %.1f%% -> %.1f%% errors", eOff*100, eOn*100)
	}
	if uOn <= uOff {
		t.Fatalf("constant-time TPU has no performance cost: ULI %.0f -> %.0f", uOff, uOn)
	}
}

// Constant-time must also erase the reverse-engineering structure itself:
// the offset sweep flattens.
func TestConstantTimeFlattensOffsetSurface(t *testing.T) {
	ch, err := covert.NewIntraMRChannel(nic.CX4, 29)
	if err != nil {
		t.Fatal(err)
	}
	tpu := ch.Cluster.Server.NIC().TPU()
	ConstantTimeMitigation(ch.Cluster.Server.NIC(), true)
	if !tpu.ConstantTimeEnabled() {
		t.Fatal("mitigation not installed")
	}
	a := tpu.Translate(nic.Request{MRKey: 1, Offset: 0, Length: 64, MRBase: 2 << 20, PageSize: 2 << 20})
	b := tpu.Translate(nic.Request{MRKey: 2, Offset: 255, Length: 64, MRBase: 4 << 20, PageSize: 2 << 20})
	// Difference is jitter only (sigma 5ns): far below the ~100ns signal
	// the attacks need.
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if diff > 40*sim.Nanosecond {
		t.Fatalf("constant-time translations differ by %v", diff)
	}
}

// Grain-I pressure attacks trip the native PFC counters; the ULI probing
// channels never do — Table I's "native Grain-I ... detect and defend
// Grain-I attacks easily" line.
func TestPFCCountersCatchPressureNotProbes(t *testing.T) {
	// A ULI covert channel run leaves PFC counters untouched: probes never
	// build a 32-deep egress backlog.
	ch, err := covert.NewIntraMRChannel(nic.CX4, 41)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Transmit(bitstream.RandomBits(3, 24)); err != nil {
		t.Fatal(err)
	}
	for tc, v := range ch.Cluster.Server.NIC().Counters().PFCPauses {
		if v != 0 {
			t.Fatalf("probe traffic tripped PFC on TC %d (%d pauses)", tc, v)
		}
	}

	// A pressure burst (hundreds of responses queued at once) must trip
	// them. Drive the server's egress directly through a read burst from a
	// deep queue.
	c2, err := covert.NewIntraMRChannel(nic.CX4, 43)
	if err != nil {
		t.Fatal(err)
	}
	burstConn, err := c2.Cluster.Dial(0, 512)
	if err != nil {
		t.Fatal(err)
	}
	mr := c2.State0 // any registered target
	for i := 0; i < 500; i++ {
		if err := burstConn.QP.PostRead(uint64(i), nil, mr, 4096); err != nil {
			t.Fatal(err)
		}
	}
	c2.Cluster.Eng.Run()
	total := uint64(0)
	for _, v := range c2.Cluster.Server.NIC().Counters().PFCPauses {
		total += v
	}
	if total == 0 {
		t.Fatal("pressure burst did not trip PFC pause counters")
	}
}
