// Package rednlite is a small RDMA-offload assembler in the style of RedN
// ("RDMA is Turing complete, we just did not know it yet!", PAPERS.md): it
// compiles conditional branches, bounded loops and remote pointer-chases
// into pre-posted WQE chains built from the verbs layer's staged ring,
// WAIT/ENABLE management verbs and SQ-window self-modification. Once a
// chain is launched the host steps aside — every dependency is sequenced on
// the NIC by CQ consumer counters and cross-QP doorbells, which is exactly
// what makes the chain's data-dependent execution pattern a volatile
// channel (the redn experiment measures it through the ULI prober).
package rednlite

import (
	"errors"
	"fmt"

	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/verbs"
)

// FalseFloor is the contract value for a not-taken branch flag: a chain's
// If() gate blocks forever when the flag word holds any value >= FalseFloor
// (it is patched into a WAIT threshold, and no lane ever delivers 2^20
// completions). Callers encode "false" as FalseFloor and "true" as the
// expected compare value.
const FalseFloor = uint64(1) << 20

// Lane is one QP a chain executes on, with its dedicated CQ (the consumer
// counter chains sequence on — sharing a CQ between lanes would make
// Barrier thresholds meaningless) and, for lanes that self-modify, the
// registered MR exposing the lane's send queue.
type Lane struct {
	QP   *verbs.QP
	CQ   *verbs.CQ
	Code *verbs.MR
}

// NewLane wires a lane: when code is non-nil it is registered as the QP's
// SQ self-modification window.
func NewLane(qp *verbs.QP, cq *verbs.CQ, code *verbs.MR) (*Lane, error) {
	l := &Lane{QP: qp, CQ: cq, Code: code}
	if code != nil {
		if err := qp.ExposeSQ(code); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// Chain assembles staged WQEs on one lane. Entries are staged immediately
// as ops are added and enabled only by Launch (or by another chain's
// enable), so a chain is fully pre-posted before it runs. Errors stick:
// the first failed op poisons the chain and Launch reports it.
type Chain struct {
	lane   *Lane
	base   uint64 // lane CQ consumer index at chain start
	staged int    // entries this chain staged (== slot index of the next op)
	ring   int    // entries Launch enables; 0 = everything staged
	nextWR uint64
	err    error
}

// New starts a chain on a lane. The lane's send queue must be empty: slot
// indices (and therefore self-modification targets) are computed from the
// chain's own op count.
func New(l *Lane) *Chain {
	c := &Chain{lane: l, base: l.CQ.ConsumerIndex(), nextWR: 1}
	if staged, _ := l.QP.SQDepth(); staged != 0 {
		c.err = fmt.Errorf("rednlite: lane SQ not empty (%d staged)", staged)
	}
	return c
}

// Err returns the first assembly error.
func (c *Chain) Err() error { return c.err }

// Len returns the number of staged entries.
func (c *Chain) Len() int { return c.staged }

func (c *Chain) wrid() uint64 {
	w := c.nextWR
	c.nextWR++
	return w
}

func (c *Chain) note(err error) {
	if c.err == nil && err != nil {
		c.err = err
	}
	if err == nil {
		c.staged++
	}
}

// Write stages an RDMA Write.
func (c *Chain) Write(data []byte, remote verbs.RemoteBuf, length int) *Chain {
	if c.err != nil {
		return c
	}
	c.note(c.lane.QP.StageWrite(c.wrid(), data, remote, length))
	return c
}

// Read stages an RDMA Read into a host buffer (nil = timing-only).
func (c *Chain) Read(local []byte, remote verbs.RemoteBuf, length int) *Chain {
	if c.err != nil {
		return c
	}
	c.note(c.lane.QP.StageRead(c.wrid(), local, remote, length))
	return c
}

// ReadInto stages an RDMA Read landing inside a local registered MR — the
// self-modification source when the target lies in a lane's code window.
func (c *Chain) ReadInto(dst *verbs.MR, dstOff uint64, remote verbs.RemoteBuf, length int) *Chain {
	if c.err != nil {
		return c
	}
	c.note(c.lane.QP.StageReadInto(c.wrid(), dst, dstOff, remote, length))
	return c
}

// CAS stages a compare-and-swap on the remote 8-byte word.
func (c *Chain) CAS(remote verbs.RemoteBuf, compare, swap uint64) *Chain {
	if c.err != nil {
		return c
	}
	c.note(c.lane.QP.StageCAS(c.wrid(), remote, compare, swap))
	return c
}

// Barrier stages a WAIT on the lane's own CQ whose threshold equals the
// number of entries staged before it: the queue advances past the barrier
// only after everything ahead of it has retired. Entries behind a barrier
// cannot dispatch early — they sit behind it in the same SQ — so the
// threshold being reached implies all prior entries completed.
func (c *Chain) Barrier() *Chain {
	if c.err != nil {
		return c
	}
	c.note(c.lane.QP.StageWait(c.wrid(), c.lane.CQ, c.base+uint64(c.staged)))
	return c
}

// Enable stages a cross-QP doorbell: when executed it enables k entries on
// the target chain's lane (0 = everything staged there).
func (c *Chain) Enable(target *Chain, k int) *Chain {
	if c.err != nil {
		return c
	}
	c.note(c.lane.QP.StageEnable(c.wrid(), target.lane.QP, k))
	return c
}

// Loop unrolls body n times with a barrier after each iteration — the
// bounded-loop construct (RedN's loops are bounded the same way: a chain
// has no backward doorbell).
func (c *Chain) Loop(n int, body func(*Chain)) *Chain {
	for i := 0; i < n && c.err == nil; i++ {
		body(c)
		c.Barrier()
	}
	return c
}

// Branch is a chain guarded by a patchable WAIT gate, targeted by If().
type Branch struct {
	*Chain
	gateSlot int
}

// NewBranch starts a branch chain on a lane with a code window: the first
// staged entry is the gate, a WAIT on the lane's CQ whose threshold is
// rewritten by the owning If(). Body ops are added behind the gate.
func NewBranch(l *Lane) (*Branch, error) {
	if l.Code == nil {
		return nil, errors.New("rednlite: branch lane needs a code window (gate threshold is patched in place)")
	}
	c := New(l)
	b := &Branch{Chain: c, gateSlot: c.staged}
	if c.err == nil {
		// Placeholder threshold: unreachable until patched. The gate is
		// enabled only after the If() writes the real threshold, so the
		// placeholder never arms.
		c.note(l.QP.StageWait(c.wrid(), l.CQ, FalseFloor))
	}
	return b, c.err
}

// If stages a data-dependent branch: the 8-byte flag word at flag is
// compared against expect entirely on the NIC, and branch's body runs only
// on equality. Compiled shape:
//
//	CAS flag, expect, 0     ; taken: flag -> 0, not-taken: flag unchanged
//	WAIT (barrier)
//	READ flag -> branch gate's WaitThresh field
//	WAIT (barrier)
//	ENABLE branch, all
//
// Taken, the gate's threshold becomes 0 and the branch body runs;
// not-taken, the flag (caller contract: >= FalseFloor when != expect)
// becomes an unreachable threshold and the gate blocks forever — the body
// never executes and the lane simply idles, exactly RedN's "the NIC parks
// the untaken arm".
func (c *Chain) If(flag verbs.RemoteBuf, expect uint64, branch *Branch) *Chain {
	if c.err != nil {
		return c
	}
	if branch.err != nil {
		c.err = branch.err
		return c
	}
	gateOff := uint64(branch.gateSlot)*nic.SQSlotBytes + nic.SQOffWaitThresh
	c.CAS(flag, expect, 0)
	c.Barrier()
	c.ReadInto(branch.lane.Code, gateOff, flag, 8)
	c.Barrier()
	c.Enable(branch.Chain, 0)
	return c
}

// Chase stages a remote pointer-chase: follow hops next-pointers starting
// at head (each node: next address at +0, value at +8) and land the final
// node's first 16 bytes (next+value) at dst+dstOff. Each hop reads the
// current node's next pointer directly into the following read's
// RemoteAddr field, then self-enables the next hop — the lane progressively
// opens its own doorbell, so the slot being patched is always ahead of the
// cursor. Chase must be the last construct on its lane, and Launch() will
// enable only up to the first hop.
func (c *Chain) Chase(head verbs.RemoteBuf, hops int, dst *verbs.MR, dstOff uint64) *Chain {
	if c.err != nil {
		return c
	}
	if c.lane.Code == nil {
		c.err = errors.New("rednlite: chase lane needs a code window")
		return c
	}
	if hops < 1 {
		c.err = errors.New("rednlite: chase needs at least one hop")
		return c
	}
	c.ring = c.staged + 3 // Launch opens the first hop's triple only
	cur := head
	for i := 0; i < hops; i++ {
		// The next unit starts 3 slots ahead (read, barrier, enable); its
		// RemoteAddr field is this hop's landing target.
		nextSlot := c.staged + 3
		patchOff := uint64(nextSlot)*nic.SQSlotBytes + nic.SQOffRemoteAddr
		c.ReadInto(c.lane.Code, patchOff, cur, 8)
		c.Barrier()
		// Self-enable: open the next unit now that its address is patched.
		k := 3
		if i == hops-1 {
			k = 1 // final unit is the value read alone
		}
		if c.err == nil {
			c.note(c.lane.QP.StageEnable(c.wrid(), c.lane.QP, k))
		}
		// Subsequent hops read from the patched address; the staged
		// placeholder keeps the head's rkey and a valid in-MR address.
		cur = head
	}
	c.ReadInto(dst, dstOff, head, 16)
	return c
}

// Launch rings the doorbell over the chain's enable prefix (everything
// staged, unless a Chase bounded it) and returns any assembly error. The
// host's involvement ends here; the chain sequences itself.
func (c *Chain) Launch() error {
	if c.err != nil {
		return c.err
	}
	return c.lane.QP.Ring(c.ring)
}
