package rednlite

import (
	"testing"

	"github.com/thu-has/ragnar/internal/fabric"
	"github.com/thu-has/ragnar/internal/host"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/verbs"
)

type rig struct {
	eng      *sim.Engine
	client   *verbs.Context
	serverMR *verbs.MR
	main     *Lane
	branch   *Lane
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine(42)
	client := verbs.NewContext(eng, "client", host.H2, nic.CX5, 0)
	server := verbs.NewContext(eng, "server", host.H3, nic.CX5, 0)
	net := verbs.NewNetwork(eng)
	net.ConnectContexts(client, server, fabric.DefaultQoS())
	spd := server.AllocPD()
	mr, err := spd.RegMR(2<<20, host.Page2M,
		verbs.AccessRemoteRead|verbs.AccessRemoteWrite|verbs.AccessRemoteAtomic)
	if err != nil {
		t.Fatal(err)
	}
	cpd := client.AllocPD()
	dial := func(depth int, code *verbs.MR) *Lane {
		cq := client.CreateCQ(0)
		qp, err := client.CreateQP(cpd, cq, verbs.QPCap{MaxSendWR: depth})
		if err != nil {
			t.Fatal(err)
		}
		sqp, err := server.CreateQP(spd, server.CreateCQ(0), verbs.QPCap{})
		if err != nil {
			t.Fatal(err)
		}
		if err := verbs.Connect(qp, sqp); err != nil {
			t.Fatal(err)
		}
		lane, err := NewLane(qp, cq, code)
		if err != nil {
			t.Fatal(err)
		}
		return lane
	}
	code, err := cpd.RegMR(4096, host.Page4K, verbs.AccessRemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{
		eng:      eng,
		client:   client,
		serverMR: mr,
		main:     dial(64, nil),
		branch:   dial(64, code),
	}
}

func put64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func runIf(t *testing.T, taken bool) (*rig, int) {
	t.Helper()
	r := newRig(t)
	const expect = uint64(7)
	flag := expect
	if !taken {
		flag = FalseFloor
	}
	put64(r.serverMR.Bytes()[0:8], flag)

	br, err := NewBranch(r.branch)
	if err != nil {
		t.Fatal(err)
	}
	br.Loop(2, func(c *Chain) {
		off := uint64(4096 + 512*c.Len())
		c.Write([]byte("branch-body-data"), r.serverMR.Describe(off), 16)
	})
	main := New(r.main)
	main.If(r.serverMR.Describe(0), expect, br)
	if err := main.Launch(); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()

	// The main chain always retires fully: CAS, two barriers, the gate
	// read and the enable — 5 completions either way.
	var comps [16]nic.Completion
	if n := r.main.CQ.PollInto(comps[:]); n != 5 {
		t.Fatalf("main chain completions = %d, want 5", n)
	}
	return r, r.branch.CQ.PollInto(comps[:])
}

func TestIfTaken(t *testing.T) {
	r, branchComps := runIf(t, true)
	// Gate WAIT + 2 iterations of (write + barrier).
	if branchComps != 5 {
		t.Fatalf("taken branch completions = %d, want 5", branchComps)
	}
	for _, off := range []int{4096 + 512*1, 4096 + 512*3} {
		if got := string(r.serverMR.Bytes()[off : off+16]); got != "branch-body-data" {
			t.Fatalf("branch write at %d = %q", off, got)
		}
	}
	// Taken: the CAS consumed the flag.
	if got := le64(r.serverMR.Bytes()[0:8]); got != 0 {
		t.Fatalf("flag after taken branch = %d, want 0", got)
	}
}

func TestIfNotTaken(t *testing.T) {
	r, branchComps := runIf(t, false)
	if branchComps != 0 {
		t.Fatalf("not-taken branch completions = %d, want 0 (gate must park)", branchComps)
	}
	for _, off := range []int{4096 + 512*1, 4096 + 512*3} {
		for _, b := range r.serverMR.Bytes()[off : off+16] {
			if b != 0 {
				t.Fatalf("not-taken branch body wrote server memory at %d", off)
			}
		}
	}
}

func TestChase(t *testing.T) {
	r := newRig(t)
	base := r.serverMR.Base()
	// Linked list: node0@0 -> node1@512 -> node2@1024 (next at +0, value at +8).
	put64(r.serverMR.Bytes()[0:8], base+512)
	put64(r.serverMR.Bytes()[8:16], 111)
	put64(r.serverMR.Bytes()[512:520], base+1024)
	put64(r.serverMR.Bytes()[520:528], 222)
	put64(r.serverMR.Bytes()[1024:1032], 0)
	put64(r.serverMR.Bytes()[1032:1040], 333)

	pd := r.client.AllocPD()
	dst, err := pd.RegMR(4096, host.Page4K, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := New(r.branch)
	c.Chase(r.serverMR.Describe(0), 2, dst, 64)
	if err := c.Launch(); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if got := le64(dst.Bytes()[72:80]); got != 333 {
		t.Fatalf("chase landed value %d, want 333 (two hops from head)", got)
	}
	// Every staged entry retired: the chain self-enabled to the end.
	if staged, enabled := r.branch.QP.SQDepth(); staged != 0 || enabled != 0 {
		t.Fatalf("chase SQ not drained: staged=%d enabled=%d", staged, enabled)
	}
}

func TestFreshLaneRequired(t *testing.T) {
	r := newRig(t)
	if err := r.main.QP.StageWrite(1, []byte("x"), r.serverMR.Describe(0), 1); err != nil {
		t.Fatal(err)
	}
	if err := New(r.main).Err(); err == nil {
		t.Fatal("New on a lane with staged entries must error")
	}
}
