package appdb

import (
	"testing"

	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
)

func newDB(t *testing.T, workers int) *DB {
	t.Helper()
	cfg := lab.DefaultConfig(nic.CX5)
	cfg.Clients = workers
	c := lab.New(cfg)
	db, err := New(c, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func mkRows(n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		rows[i].Key = uint64(i)
		rows[i].Payload[0] = byte(i)
		rows[i].Payload[1] = byte(i >> 8)
	}
	return rows
}

func TestShufflePlacement(t *testing.T) {
	db := newDB(t, 3)
	rows := mkRows(500)
	db.LoadTable("t", rows)
	if err := db.Shuffle("t"); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, w := range db.Workers() {
		for _, r := range w.Local["t"] {
			if int(r.Key%3) != w.ID {
				t.Fatalf("row %d landed on worker %d", r.Key, w.ID)
			}
			if seen[r.Key] {
				t.Fatalf("row %d duplicated", r.Key)
			}
			seen[r.Key] = true
			// Payload survived the round trip.
			if r.Payload[0] != byte(r.Key) || r.Payload[1] != byte(r.Key>>8) {
				t.Fatalf("row %d payload corrupted", r.Key)
			}
		}
	}
	if len(seen) != len(rows) {
		t.Fatalf("shuffle lost rows: %d of %d", len(seen), len(rows))
	}
}

func TestHashJoinCount(t *testing.T) {
	db := newDB(t, 2)
	// left has keys 0..99, right has two copies of each even key:
	// expected matches = 50 keys x 1 x 2 = 100.
	left := mkRows(100)
	var right []Row
	for k := uint64(0); k < 100; k += 2 {
		right = append(right, Row{Key: k}, Row{Key: k})
	}
	db.LoadTable("l", left)
	db.LoadTable("r", right)
	if err := db.Shuffle("l"); err != nil {
		t.Fatal(err)
	}
	if err := db.Shuffle("r"); err != nil {
		t.Fatal(err)
	}
	got, err := db.HashJoin("l", "r")
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Fatalf("join count = %d, want 100", got)
	}
}

func TestJoinWithoutMatches(t *testing.T) {
	db := newDB(t, 2)
	db.LoadTable("l", mkRows(40))
	var right []Row
	for k := uint64(1000); k < 1040; k++ {
		right = append(right, Row{Key: k})
	}
	db.LoadTable("r", right)
	db.Shuffle("l")
	db.Shuffle("r")
	got, err := db.HashJoin("l", "r")
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("join count = %d, want 0", got)
	}
}

func TestShufflePhasesPlateau(t *testing.T) {
	phases := ShufflePhases(nic.CX5, 3, 400, 0)
	if len(phases) != 1 {
		t.Fatalf("shuffle should be one sustained phase, got %d", len(phases))
	}
	if phases[0].Dur <= 0 {
		t.Fatal("non-positive shuffle duration")
	}
	// Larger datasets shuffle longer.
	longer := ShufflePhases(nic.CX5, 3, 800, 0)
	if longer[0].Dur <= phases[0].Dur {
		t.Fatal("shuffle duration must scale with data size")
	}
}

func TestJoinPhasesTeeth(t *testing.T) {
	phases := JoinPhases(nic.CX5, 3, 5, 0)
	if len(phases) != 5 {
		t.Fatalf("join rounds = %d", len(phases))
	}
	for i := 1; i < len(phases); i++ {
		gap := phases[i].Start - (phases[i-1].Start + phases[i-1].Dur)
		if gap <= 0 {
			t.Fatal("join bursts must be separated by compute gaps")
		}
	}
}

func TestRowCodec(t *testing.T) {
	r := Row{Key: 0xdeadbeef}
	copy(r.Payload[:], "hello")
	buf := make([]byte, RowBytes)
	encodeRow(r, buf)
	got := decodeRow(buf)
	if got != r {
		t.Fatalf("codec mismatch: %+v vs %+v", got, r)
	}
}

func TestSortMergeJoinCount(t *testing.T) {
	db := newDB(t, 2)
	left := mkRows(100)
	var right []Row
	for k := uint64(0); k < 100; k += 2 {
		right = append(right, Row{Key: k}, Row{Key: k})
	}
	db.LoadTable("l", left)
	db.LoadTable("r", right)
	if err := db.Shuffle("l"); err != nil {
		t.Fatal(err)
	}
	if err := db.Shuffle("r"); err != nil {
		t.Fatal(err)
	}
	got, err := db.SortMergeJoin("l", "r")
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Fatalf("sort-merge join count = %d, want 100", got)
	}
	// Cross-check: hash join agrees.
	hj, err := db.HashJoin("l", "r")
	if err != nil {
		t.Fatal(err)
	}
	if hj != got {
		t.Fatalf("join strategies disagree: smj=%d hash=%d", got, hj)
	}
}

func TestSortMergeJoinDuplicateRuns(t *testing.T) {
	db := newDB(t, 1)
	// 3 copies of key 5 on the left, 2 on the right: 6 matches.
	db.LoadTable("l", []Row{{Key: 5}, {Key: 5}, {Key: 5}, {Key: 1}})
	db.LoadTable("r", []Row{{Key: 5}, {Key: 5}, {Key: 9}})
	got, err := db.SortMergeJoin("l", "r")
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("duplicate-run count = %d, want 6", got)
	}
}

func TestSortMergePhasesSustainedRead(t *testing.T) {
	phases := SortMergePhases(nic.CX5, 3, 2000, 0)
	if len(phases) != 1 {
		t.Fatalf("phases = %d", len(phases))
	}
	if phases[0].Flow.Op != nic.OpRead {
		t.Fatal("sort-merge streams via reads")
	}
	if phases[0].Dur <= 0 {
		t.Fatal("non-positive duration")
	}
}
