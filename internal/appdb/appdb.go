// Package appdb implements the RDMA-based distributed database substrate of
// Section VI-A: workers that shuffle (hash-repartition) and hash-join tables
// through a storage server's staging memory, the design the paper's citation
// [23] surveys for RDMA-era storage systems. The package provides both the
// real data path (rows actually move over simulated verbs, with checkable
// placement) and the traffic-phase schedules the fingerprinting side channel
// observes: shuffle produces a sustained plateau of large writes; hash join
// produces tooth-shaped read bursts separated by compute gaps.
package appdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/verbs"
)

// RowBytes is the fixed row size (64 B key + payload).
const RowBytes = 64

// PayloadBytes is the payload portion of a row.
const PayloadBytes = RowBytes - 8

// Row is one table row.
type Row struct {
	Key     uint64
	Payload [PayloadBytes]byte
}

func encodeRow(r Row, dst []byte) {
	binary.LittleEndian.PutUint64(dst, r.Key)
	copy(dst[8:], r.Payload[:])
}

func decodeRow(src []byte) Row {
	var r Row
	r.Key = binary.LittleEndian.Uint64(src)
	copy(r.Payload[:], src[8:RowBytes])
	return r
}

// BatchRows is the number of rows per network batch (4 KiB messages).
const BatchRows = 64

// DB is a distributed database instance: workers on lab clients, staging
// memory on the lab server.
type DB struct {
	cluster *lab.Cluster
	workers []*Worker
	// staging[w] is worker w's inbound partition area on the server.
	staging []*verbs.MR
	// stagingFill[w] tracks bytes appended to worker w's staging area.
	stagingFill []uint64
}

// Worker is one database executor.
type Worker struct {
	ID   int
	conn *lab.Conn
	db   *DB
	// Local holds the worker's current partition of each table.
	Local map[string][]Row
}

// New builds a DB with one worker per lab client. stagingBytes sizes each
// worker's server-side staging area.
func New(c *lab.Cluster, stagingBytes uint64) (*DB, error) {
	if stagingBytes == 0 {
		stagingBytes = 8 << 20
	}
	db := &DB{cluster: c}
	for i := range c.Clients {
		mr, err := c.RegisterServerMR(stagingBytes)
		if err != nil {
			return nil, err
		}
		conn, err := c.Dial(i, 32)
		if err != nil {
			return nil, err
		}
		if err := c.Warm(conn, mr); err != nil {
			return nil, err
		}
		db.staging = append(db.staging, mr)
		db.stagingFill = append(db.stagingFill, 0)
		db.workers = append(db.workers, &Worker{ID: i, conn: conn, db: db, Local: map[string][]Row{}})
	}
	return db, nil
}

// Workers returns the executor handles.
func (db *DB) Workers() []*Worker { return db.workers }

// LoadTable splits rows round-robin across workers as their initial local
// partitions (the pre-shuffle layout).
func (db *DB) LoadTable(name string, rows []Row) {
	for i, r := range rows {
		w := db.workers[i%len(db.workers)]
		w.Local[name] = append(w.Local[name], r)
	}
}

// rdma issues one verb from worker w and waits for completion.
func (w *Worker) rdma(op nic.Opcode, mr *verbs.MR, offset uint64, buf []byte) error {
	eng := w.db.cluster.Eng
	done := false
	var status nic.Status
	prev := w.conn.CQ.Notify
	defer func() { w.conn.CQ.Notify = prev }()
	wrid := uint64(w.ID)<<56 | uint64(w.conn.QP.QPN())<<32 | w.db.opSeq()
	w.conn.CQ.Notify = func(c nic.Completion) {
		if c.WRID != wrid {
			return
		}
		status = c.Status
		done = true
		eng.Halt()
	}
	var err error
	if op == nic.OpRead {
		err = w.conn.QP.PostRead(wrid, buf, mr.Describe(offset), len(buf))
	} else {
		err = w.conn.QP.PostWrite(wrid, buf, mr.Describe(offset), len(buf))
	}
	if err != nil {
		return err
	}
	eng.Run()
	if !done {
		return errors.New("appdb: verb did not complete")
	}
	if status != nic.StatusOK {
		return fmt.Errorf("appdb: verb failed: %v", status)
	}
	return nil
}

var opSeqCounter uint64

func (db *DB) opSeq() uint64 {
	opSeqCounter++
	return opSeqCounter & 0xffffffff
}

// Shuffle hash-repartitions table so that after the call, worker
// hash(key)%N holds every row with that key. Data moves through the server:
// each worker writes the batches destined to worker d into d's staging
// area, then every worker reads its own staging area back. This is the
// network-intensive all-to-all the fingerprint attack sees as a plateau.
func (db *DB) Shuffle(table string) error {
	n := len(db.workers)
	for i := range db.stagingFill {
		db.stagingFill[i] = 0
	}
	// Write phase: partition and push batches.
	buf := make([]byte, BatchRows*RowBytes)
	for _, w := range db.workers {
		byDest := make([][]Row, n)
		for _, r := range w.Local[table] {
			d := int(r.Key % uint64(n))
			byDest[d] = append(byDest[d], r)
		}
		w.Local[table] = nil
		for d, rows := range byDest {
			for start := 0; start < len(rows); start += BatchRows {
				end := start + BatchRows
				if end > len(rows) {
					end = len(rows)
				}
				batch := rows[start:end]
				for i, r := range batch {
					encodeRow(r, buf[i*RowBytes:])
				}
				nbytes := uint64(len(batch) * RowBytes)
				off := db.stagingFill[d]
				if off+nbytes > db.staging[d].Size() {
					return errors.New("appdb: staging overflow")
				}
				if err := w.rdma(nic.OpWrite, db.staging[d], off, buf[:nbytes]); err != nil {
					return err
				}
				db.stagingFill[d] = off + nbytes
			}
		}
	}
	// Read phase: each worker ingests its partition.
	for _, w := range db.workers {
		fill := db.stagingFill[w.ID]
		rbuf := make([]byte, BatchRows*RowBytes)
		for off := uint64(0); off < fill; off += uint64(len(rbuf)) {
			chunk := uint64(len(rbuf))
			if off+chunk > fill {
				chunk = fill - off
			}
			if err := w.rdma(nic.OpRead, db.staging[w.ID], off, rbuf[:chunk]); err != nil {
				return err
			}
			for i := uint64(0); i < chunk; i += RowBytes {
				w.Local[table] = append(w.Local[table], decodeRow(rbuf[i:]))
			}
		}
	}
	return nil
}

// HashJoin joins two co-partitioned tables on key (run Shuffle on both
// first) and returns the total number of matching pairs. Each worker builds
// a hash table from its left partition, then probes its right partition in
// batches, re-reading probe batches from the server staging area to model
// the storage-backed probe stream — the bursty pattern the fingerprint
// attack sees as teeth.
func (db *DB) HashJoin(left, right string) (int, error) {
	total := 0
	buf := make([]byte, BatchRows*RowBytes)
	for _, w := range db.workers {
		build := make(map[uint64]int, len(w.Local[left]))
		for _, r := range w.Local[left] {
			build[r.Key]++
		}
		probe := w.Local[right]
		for start := 0; start < len(probe); start += BatchRows {
			end := start + BatchRows
			if end > len(probe) {
				end = len(probe)
			}
			batch := probe[start:end]
			// Stage the batch and read it back: the probe stream flows
			// through the storage server.
			for i, r := range batch {
				encodeRow(r, buf[i*RowBytes:])
			}
			nbytes := uint64(len(batch) * RowBytes)
			if err := w.rdma(nic.OpWrite, db.staging[w.ID], 0, buf[:nbytes]); err != nil {
				return 0, err
			}
			if err := w.rdma(nic.OpRead, db.staging[w.ID], 0, buf[:nbytes]); err != nil {
				return 0, err
			}
			for i := uint64(0); i < nbytes; i += RowBytes {
				r := decodeRow(buf[i:])
				total += build[r.Key]
			}
			// Compute gap between batches (hash probing, result
			// materialisation) — the idle half of each tooth.
			db.cluster.Eng.RunFor(3 * sim.Microsecond)
		}
	}
	return total, nil
}

// ---------------------------------------------------------------------------
// Traffic-phase schedules for the fingerprint experiment (Figure 12)
// ---------------------------------------------------------------------------

// Phase is a span of application traffic the fluid model replays.
type Phase struct {
	Name  string
	Flow  nic.FlowSpec
	Start sim.Duration
	Dur   sim.Duration
}

// ShufflePhases returns the plateau schedule: one sustained all-to-all
// phase of 4 KiB writes from every worker, lasting long enough to move
// dataMB megabytes at the NIC's write bandwidth.
func ShufflePhases(p nic.Profile, workers int, dataMB int, at sim.Duration) []Phase {
	flow := nic.FlowSpec{Name: "shuffle", Op: nic.OpWrite, MsgBytes: 4096, QPNum: workers * 2, Client: 0}
	bw := nic.Solo(p, flow).GoodputGbps // Gbps
	if bw <= 0 {
		bw = 1
	}
	seconds := float64(dataMB) * 8 / 1000 / bw
	return []Phase{{
		Name: "shuffle", Flow: flow,
		Start: at, Dur: sim.Duration(seconds * float64(sim.Second)),
	}}
}

// JoinPhases returns the tooth schedule: rounds of probe-batch reads
// separated by compute gaps.
func JoinPhases(p nic.Profile, workers int, rounds int, at sim.Duration) []Phase {
	flow := nic.FlowSpec{Name: "join", Op: nic.OpRead, MsgBytes: 4096, QPNum: workers, Client: 0}
	burst := 60 * sim.Millisecond
	gap := 60 * sim.Millisecond
	var phases []Phase
	for r := 0; r < rounds; r++ {
		phases = append(phases, Phase{
			Name: "join", Flow: flow,
			Start: at + sim.Duration(r)*(burst+gap), Dur: burst,
		})
	}
	return phases
}

// SortMergeJoin joins two co-partitioned tables by sorting both sides and
// merging — the classic alternative to the hash join, with a different
// network fingerprint: instead of probe-batch teeth, it streams both tables
// from the storage server in one sustained read phase before a pure-compute
// merge.
func (db *DB) SortMergeJoin(left, right string) (int, error) {
	total := 0
	buf := make([]byte, BatchRows*RowBytes)
	for _, w := range db.workers {
		// Stream both partitions through the staging area (the sorted runs
		// live in storage in a real external sort).
		stream := func(rows []Row) ([]Row, error) {
			out := make([]Row, 0, len(rows))
			for start := 0; start < len(rows); start += BatchRows {
				end := start + BatchRows
				if end > len(rows) {
					end = len(rows)
				}
				batch := rows[start:end]
				for i, r := range batch {
					encodeRow(r, buf[i*RowBytes:])
				}
				nbytes := uint64(len(batch) * RowBytes)
				if err := w.rdma(nic.OpWrite, db.staging[w.ID], 0, buf[:nbytes]); err != nil {
					return nil, err
				}
				if err := w.rdma(nic.OpRead, db.staging[w.ID], 0, buf[:nbytes]); err != nil {
					return nil, err
				}
				for i := uint64(0); i < nbytes; i += RowBytes {
					out = append(out, decodeRow(buf[i:]))
				}
			}
			return out, nil
		}
		l, err := stream(w.Local[left])
		if err != nil {
			return 0, err
		}
		r, err := stream(w.Local[right])
		if err != nil {
			return 0, err
		}
		sort.Slice(l, func(i, j int) bool { return l[i].Key < l[j].Key })
		sort.Slice(r, func(i, j int) bool { return r[i].Key < r[j].Key })
		// Merge-count matches; the merge itself is compute (one long gap).
		db.cluster.Eng.RunFor(sim.Duration(len(l)+len(r)) * 100 * sim.Nanosecond)
		i, j := 0, 0
		for i < len(l) && j < len(r) {
			switch {
			case l[i].Key < r[j].Key:
				i++
			case l[i].Key > r[j].Key:
				j++
			default:
				// Count the cross product of the equal-key runs.
				k := l[i].Key
				li, rj := i, j
				for i < len(l) && l[i].Key == k {
					i++
				}
				for j < len(r) && r[j].Key == k {
					j++
				}
				total += (i - li) * (j - rj)
			}
		}
	}
	return total, nil
}

// SortMergePhases returns the sort-merge join's traffic schedule: one
// sustained read phase (streaming both sorted runs) followed by silence
// (the in-memory merge). The read direction gives it a different contention
// depth from the shuffle's write plateau — the feature the fingerprint
// detector uses to tell them apart.
func SortMergePhases(p nic.Profile, workers int, dataMB int, at sim.Duration) []Phase {
	flow := nic.FlowSpec{Name: "sortmerge", Op: nic.OpRead, MsgBytes: 4096, QPNum: workers * 2, Client: 0}
	bw := nic.Solo(p, flow).GoodputGbps
	if bw <= 0 {
		bw = 1
	}
	seconds := float64(dataMB) * 8 / 1000 / bw
	return []Phase{{
		Name: "sortmerge", Flow: flow,
		Start: at, Dur: sim.Duration(seconds * float64(sim.Second)),
	}}
}
