package appdisagg

import (
	"sort"
	"testing"
	"testing/quick"

	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
)

func newTree(t *testing.T) (*lab.Cluster, *MemoryServer, *Client) {
	t.Helper()
	cfg := lab.DefaultConfig(nic.CX5)
	c := lab.New(cfg)
	ms, err := NewMemoryServer(c, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(c, ms, 0)
	if err != nil {
		t.Fatal(err)
	}
	return c, ms, cl
}

func val(b byte) [ValueBytes]byte {
	var v [ValueBytes]byte
	for i := range v {
		v[i] = b
	}
	return v
}

func TestInsertGet(t *testing.T) {
	_, _, cl := newTree(t)
	if err := cl.Insert(42, val(7)); err != nil {
		t.Fatal(err)
	}
	got, ok, err := cl.Get(42)
	if err != nil || !ok {
		t.Fatalf("get: %v ok=%v", err, ok)
	}
	if got != val(7) {
		t.Fatalf("value mismatch")
	}
	if _, ok, _ := cl.Get(43); ok {
		t.Fatal("missing key reported present")
	}
}

func TestUpdateInPlace(t *testing.T) {
	_, _, cl := newTree(t)
	cl.Insert(5, val(1))
	cl.Insert(5, val(2))
	got, ok, _ := cl.Get(5)
	if !ok || got != val(2) {
		t.Fatal("update not visible")
	}
}

func TestSplitAndOrdering(t *testing.T) {
	_, _, cl := newTree(t)
	// Enough keys to force several leaf splits (fanout 15).
	n := uint64(120)
	for k := uint64(0); k < n; k++ {
		key := (k * 37) % 127 // scrambled order, unique mod 127
		if err := cl.Insert(key, val(byte(key))); err != nil {
			t.Fatalf("insert %d: %v", key, err)
		}
	}
	for k := uint64(0); k < n; k++ {
		key := (k * 37) % 127
		got, ok, err := cl.Get(key)
		if err != nil || !ok {
			t.Fatalf("get %d after splits: ok=%v err=%v", key, ok, err)
		}
		if got != val(byte(key)) {
			t.Fatalf("value mismatch for %d", key)
		}
	}
	// Scan returns sorted keys.
	keys, err := cl.Scan(0, int(n))
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatalf("scan not sorted: %v", keys)
	}
	if len(keys) != int(n) {
		t.Fatalf("scan returned %d keys, want %d", len(keys), n)
	}
}

func TestPathCacheReducesReads(t *testing.T) {
	_, _, cl := newTree(t)
	for k := uint64(0); k < 60; k++ {
		cl.Insert(k, val(byte(k)))
	}
	// Repeated hits on one key: with the path cache, each lookup after the
	// first should be a single leaf read.
	cl.PathCache = true
	cl.Get(10)
	before := cl.Reads
	for i := 0; i < 20; i++ {
		cl.Get(10)
	}
	perGet := float64(cl.Reads-before) / 20
	if perGet > 1.01 {
		t.Fatalf("path-cached Get costs %.2f reads, want 1", perGet)
	}
}

func TestLeafOffsetWithinRegion(t *testing.T) {
	_, ms, cl := newTree(t)
	for k := uint64(0); k < 40; k++ {
		cl.Insert(k, val(1))
	}
	off, err := cl.LeafOffsetOf(17)
	if err != nil {
		t.Fatal(err)
	}
	if off == 0 || off >= ms.MR.Size() {
		t.Fatalf("leaf offset %d outside region", off)
	}
	if off%NodeBytes != 0 {
		t.Fatalf("leaf offset %d not node-aligned", off)
	}
}

// Property: for any insertion order of distinct keys, every key is
// retrievable and Scan is sorted — the core index invariant.
func TestTreeInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := lab.DefaultConfig(nic.CX6)
		cfg.Seed = seed
		c := lab.New(cfg)
		ms, err := NewMemoryServer(c, 2<<20)
		if err != nil {
			return false
		}
		cl, err := NewClient(c, ms, 0)
		if err != nil {
			return false
		}
		// Permuted distinct keys derived from the seed.
		n := 80
		keys := make([]uint64, n)
		x := uint64(seed)*2 + 1
		for i := range keys {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			keys[i] = uint64(i)*16 + x%16
		}
		for _, k := range keys {
			if err := cl.Insert(k, val(byte(k))); err != nil {
				return false
			}
		}
		for _, k := range keys {
			if _, ok, err := cl.Get(k); err != nil || !ok {
				return false
			}
		}
		got, err := cl.Scan(0, n)
		if err != nil || len(got) != n {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestAllEntriesAre64B(t *testing.T) {
	if EntryBytes != 64 {
		t.Fatal("Sherman's KV unit is 64 B")
	}
	if NodeBytes%EntryBytes != 0 {
		t.Fatal("node must pack whole entries")
	}
}

func TestDelete(t *testing.T) {
	_, _, cl := newTree(t)
	for k := uint64(0); k < 40; k++ {
		cl.Insert(k, val(byte(k)))
	}
	ok, err := cl.Delete(17)
	if err != nil || !ok {
		t.Fatalf("delete: ok=%v err=%v", ok, err)
	}
	if _, found, _ := cl.Get(17); found {
		t.Fatal("deleted key still readable")
	}
	// Neighbours survive.
	if _, found, _ := cl.Get(16); !found {
		t.Fatal("neighbour lost")
	}
	if _, found, _ := cl.Get(18); !found {
		t.Fatal("neighbour lost")
	}
	// Deleting again reports absent.
	ok, err = cl.Delete(17)
	if err != nil || ok {
		t.Fatalf("double delete: ok=%v err=%v", ok, err)
	}
	// Scan skips tombstones.
	keys, err := cl.Scan(0, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if k == 17 {
			t.Fatal("tombstone leaked into scan")
		}
	}
	// Reinsert resurrects.
	if err := cl.Insert(17, val(99)); err != nil {
		t.Fatal(err)
	}
	got, found, _ := cl.Get(17)
	if !found || got != val(99) {
		t.Fatal("reinsert after delete failed")
	}
}
