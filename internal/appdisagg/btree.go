// Package appdisagg implements the disaggregated-memory substrate of
// Section VI-B: a memory server (MS) exporting pinned memory, compute
// servers (CS) that access it only through RDMA verbs, and a Sherman-style
// write-optimised remote B+ tree index over 64 B key-value entries
// (Wang et al., SIGMOD 2022). The Ragnar snoop attack targets a victim
// whose index lookups touch secret offsets of the shared region; the tree
// here is the realistic generator of exactly those accesses.
package appdisagg

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/verbs"
)

// Tree geometry. Nodes are fixed 1 KiB blocks in the memory server;
// entries are the paper's 64 B KV units.
const (
	NodeBytes  = 1024
	EntryBytes = 64
	// Fanout: entries per node. One 64 B slot is reserved for the header.
	Fanout = NodeBytes/EntryBytes - 1 // 15
	// ValueBytes is the value payload per entry (key and flags use 16 B).
	ValueBytes = EntryBytes - 16
)

// node header layout (64 B slot 0):
//
//	[0:8)  version (odd = write-locked)
//	[8:16) entry count
//	[16:24) leaf flag
//	[24:32) right-sibling node id + 1 (0 = none)
type header struct {
	version uint64
	count   uint64
	leaf    bool
	right   uint64 // node id + 1
}

// entry layout (64 B):
//
//	[0:8)  key
//	[8:16) child node id + 1 (interior) or presence flag (leaf)
//	[16:64) value bytes (leaf only)
type entry struct {
	key   uint64
	ref   uint64
	value [ValueBytes]byte
}

// MemoryServer owns the exported region. All state lives in the region's
// bytes — the server CPU never touches it after setup, exactly the
// disaggregated-memory contract.
type MemoryServer struct {
	MR       *verbs.MR
	capacity int // nodes
}

// NewMemoryServer registers size bytes of index memory on the lab cluster's
// server.
func NewMemoryServer(c *lab.Cluster, size uint64) (*MemoryServer, error) {
	mr, err := c.RegisterServerMR(size)
	if err != nil {
		return nil, err
	}
	ms := &MemoryServer{MR: mr, capacity: int(mr.Size() / NodeBytes)}
	// Node 0 is the allocator cell; node 1 the root (leaf, empty).
	// Bootstrap directly in server memory (setup happens before clients
	// connect, like Sherman's initialisation).
	b := mr.Bytes()
	binary.LittleEndian.PutUint64(b[0:], 2) // next free node id
	rootOff := 1 * NodeBytes
	binary.LittleEndian.PutUint64(b[rootOff+0:], 2)  // version 2 (unlocked)
	binary.LittleEndian.PutUint64(b[rootOff+8:], 0)  // count
	binary.LittleEndian.PutUint64(b[rootOff+16:], 1) // leaf
	binary.LittleEndian.PutUint64(b[rootOff+24:], 0) // no sibling
	return ms, nil
}

// RootNode is the fixed node id of the tree root.
const RootNode = 1

// NodeOffset returns the byte offset of a node in the MR — the quantity the
// Ragnar snoop recovers.
func NodeOffset(nodeID uint64) uint64 { return nodeID * NodeBytes }

// Client is a compute-server handle to the remote tree. Every operation
// issues real verbs; nothing is cached locally except the root id (Sherman
// caches internal nodes; a path cache is modelled by optional reuse of the
// last traversal).
type Client struct {
	cluster *lab.Cluster
	conn    *lab.Conn
	ms      *MemoryServer

	// PathCache keeps the last root->leaf path, Sherman's optimisation that
	// turns most lookups into a single leaf read.
	PathCache bool
	lastPath  []uint64 // node ids, root first
	// Reads and Writes count issued verbs (for tests and fingerprints).
	Reads, Writes uint64
}

// NewClient connects a compute server (lab client index) to the memory
// server.
func NewClient(c *lab.Cluster, ms *MemoryServer, clientIdx int) (*Client, error) {
	conn, err := c.Dial(clientIdx, 16)
	if err != nil {
		return nil, err
	}
	if err := c.Warm(conn, ms.MR); err != nil {
		return nil, err
	}
	return &Client{cluster: c, conn: conn, ms: ms}, nil
}

// rdma runs one read or write and waits for its completion.
func (cl *Client) rdma(op nic.Opcode, offset uint64, buf []byte) error {
	eng := cl.cluster.Eng
	target := cl.ms.MR.Describe(offset)
	done := false
	var status nic.Status
	prev := cl.conn.CQ.Notify
	defer func() { cl.conn.CQ.Notify = prev }()
	wrid := cl.Reads + cl.Writes + 1<<48
	cl.conn.CQ.Notify = func(c nic.Completion) {
		if c.WRID != wrid {
			return
		}
		status = c.Status
		done = true
		eng.Halt()
	}
	var err error
	if op == nic.OpRead {
		cl.Reads++
		err = cl.conn.QP.PostRead(wrid, buf, target, len(buf))
	} else {
		cl.Writes++
		err = cl.conn.QP.PostWrite(wrid, buf, target, len(buf))
	}
	if err != nil {
		return err
	}
	eng.Run()
	if !done {
		return errors.New("appdisagg: verb did not complete")
	}
	if status != nic.StatusOK {
		return fmt.Errorf("appdisagg: verb failed: %v", status)
	}
	return nil
}

func (cl *Client) readNode(id uint64, raw []byte) error {
	return cl.rdma(nic.OpRead, NodeOffset(id), raw[:NodeBytes])
}

func parseHeader(raw []byte) header {
	return header{
		version: binary.LittleEndian.Uint64(raw[0:]),
		count:   binary.LittleEndian.Uint64(raw[8:]),
		leaf:    binary.LittleEndian.Uint64(raw[16:]) == 1,
		right:   binary.LittleEndian.Uint64(raw[24:]),
	}
}

func putHeader(raw []byte, h header) {
	binary.LittleEndian.PutUint64(raw[0:], h.version)
	binary.LittleEndian.PutUint64(raw[8:], h.count)
	leaf := uint64(0)
	if h.leaf {
		leaf = 1
	}
	binary.LittleEndian.PutUint64(raw[16:], leaf)
	binary.LittleEndian.PutUint64(raw[24:], h.right)
}

func parseEntry(raw []byte, i int) entry {
	off := (i + 1) * EntryBytes
	var e entry
	e.key = binary.LittleEndian.Uint64(raw[off:])
	e.ref = binary.LittleEndian.Uint64(raw[off+8:])
	copy(e.value[:], raw[off+16:off+EntryBytes])
	return e
}

func putEntry(raw []byte, i int, e entry) {
	off := (i + 1) * EntryBytes
	binary.LittleEndian.PutUint64(raw[off:], e.key)
	binary.LittleEndian.PutUint64(raw[off+8:], e.ref)
	copy(raw[off+16:off+EntryBytes], e.value[:])
}

// descend walks from the root to the leaf covering key, reading each node
// over RDMA. It returns the leaf id and its raw bytes, recording the path.
func (cl *Client) descend(key uint64) (uint64, []byte, error) {
	raw := make([]byte, NodeBytes)
	id := uint64(RootNode)
	var path []uint64
	for {
		if err := cl.readNode(id, raw); err != nil {
			return 0, nil, err
		}
		path = append(path, id)
		h := parseHeader(raw)
		if h.leaf {
			cl.lastPath = path
			return id, raw, nil
		}
		// Interior: entries are separator keys; child i covers keys < key_i.
		next := uint64(0)
		for i := 0; i < int(h.count); i++ {
			e := parseEntry(raw, i)
			if key < e.key {
				next = e.ref
				break
			}
		}
		if next == 0 {
			// Greater than all separators: rightmost child is stored in the
			// last entry's value slot convention (ref of count-th entry).
			e := parseEntry(raw, int(h.count))
			next = e.ref
		}
		if next == 0 {
			return 0, nil, errors.New("appdisagg: corrupt interior node")
		}
		id = next - 1
	}
}

// leafFor resolves the leaf for key, using the path cache when enabled.
func (cl *Client) leafFor(key uint64) (uint64, []byte, error) {
	if cl.PathCache && len(cl.lastPath) > 0 {
		// Optimistically re-read the cached leaf; fall back to a full
		// descent if the key is out of its range.
		leaf := cl.lastPath[len(cl.lastPath)-1]
		raw := make([]byte, NodeBytes)
		if err := cl.readNode(leaf, raw); err != nil {
			return 0, nil, err
		}
		h := parseHeader(raw)
		if h.leaf && cl.leafCovers(raw, h, key) {
			return leaf, raw, nil
		}
	}
	return cl.descend(key)
}

// leafCovers reports whether key falls in the leaf's key range.
func (cl *Client) leafCovers(raw []byte, h header, key uint64) bool {
	if h.count == 0 {
		return false
	}
	first := parseEntry(raw, 0).key
	last := parseEntry(raw, int(h.count)-1).key
	return key >= first && key <= last
}

// Get looks up key, returning its value and whether it exists.
func (cl *Client) Get(key uint64) ([ValueBytes]byte, bool, error) {
	var zero [ValueBytes]byte
	_, raw, err := cl.leafFor(key)
	if err != nil {
		return zero, false, err
	}
	h := parseHeader(raw)
	for i := 0; i < int(h.count); i++ {
		e := parseEntry(raw, i)
		if e.key == key && e.ref == 1 {
			return e.value, true, nil
		}
	}
	return zero, false, nil
}

// Insert adds or updates key with value. Writes take the node's version
// lock (odd = locked) via write-modify-write, Sherman's optimistic scheme
// compressed to the simulation's single-client-at-a-time semantics.
func (cl *Client) Insert(key uint64, value [ValueBytes]byte) error {
	leaf, raw, err := cl.descend(key)
	if err != nil {
		return err
	}
	h := parseHeader(raw)
	// Update in place?
	for i := 0; i < int(h.count); i++ {
		e := parseEntry(raw, i)
		if e.key == key {
			e.value = value
			e.ref = 1
			putEntry(raw, i, e)
			return cl.writeBack(leaf, raw, h)
		}
	}
	if int(h.count) >= Fanout-1 {
		if err := cl.splitLeaf(leaf, raw, append([]uint64(nil), cl.lastPath...)); err != nil {
			return err
		}
		return cl.Insert(key, value)
	}
	// Sorted insert.
	pos := 0
	for pos < int(h.count) && parseEntry(raw, pos).key < key {
		pos++
	}
	for i := int(h.count); i > pos; i-- {
		putEntry(raw, i, parseEntry(raw, i-1))
	}
	putEntry(raw, pos, entry{key: key, ref: 1, value: value})
	h.count++
	return cl.writeBack(leaf, raw, h)
}

// writeBack bumps the version and writes the node in one RDMA Write
// (Sherman's write-optimised single-round-trip update).
func (cl *Client) writeBack(id uint64, raw []byte, h header) error {
	h.version += 2
	putHeader(raw, h)
	return cl.rdma(nic.OpWrite, NodeOffset(id), raw[:NodeBytes])
}

// allocNode bumps the remote allocator cell. A fetch-add on the allocator
// word is the real Sherman protocol; the simulation's clients are
// cooperative, so a read-modify-write suffices and still costs the same
// verbs.
func (cl *Client) allocNode() (uint64, error) {
	cell := make([]byte, 8)
	if err := cl.rdma(nic.OpRead, 0, cell); err != nil {
		return 0, err
	}
	id := binary.LittleEndian.Uint64(cell)
	if int(id) >= cl.ms.capacity {
		return 0, errors.New("appdisagg: memory server full")
	}
	binary.LittleEndian.PutUint64(cell, id+1)
	if err := cl.rdma(nic.OpWrite, 0, cell); err != nil {
		return 0, err
	}
	return id, nil
}

// splitLeaf splits a full leaf and installs the separator in the parent
// chain (path is the root-to-leaf node list from the triggering descent).
func (cl *Client) splitLeaf(leaf uint64, raw []byte, path []uint64) error {
	h := parseHeader(raw)
	newID, err := cl.allocNode()
	if err != nil {
		return err
	}
	mid := int(h.count) / 2
	sepKey := parseEntry(raw, mid).key

	// Right node takes the upper half.
	right := make([]byte, NodeBytes)
	rh := header{version: 2, count: uint64(int(h.count) - mid), leaf: true, right: h.right}
	for i := mid; i < int(h.count); i++ {
		putEntry(right, i-mid, parseEntry(raw, i))
	}
	putHeader(right, rh)
	if err := cl.rdma(nic.OpWrite, NodeOffset(newID), right); err != nil {
		return err
	}

	// Left keeps the lower half and points right.
	h.count = uint64(mid)
	h.right = newID + 1
	if err := cl.writeBack(leaf, raw, h); err != nil {
		return err
	}
	return cl.insertSeparator(path[:len(path)-1], leaf, newID, sepKey)
}

// maxSeparators caps the separators in an interior node, leaving room for
// the rightmost-child slot.
const maxSeparators = Fanout - 2

// insertSeparator installs (sepKey -> rightChild) into the parent at the end
// of path (empty path means the split child was the root). Full parents
// split recursively, growing the tree upward exactly like a textbook B+
// tree — every node touch is a real RDMA verb.
func (cl *Client) insertSeparator(path []uint64, leftChild, rightChild uint64, sepKey uint64) error {
	if len(path) == 0 {
		// The split node was the root: move its (already rewritten) content
		// aside and build a fresh interior root in place. The moved copy
		// becomes the left child.
		raw := make([]byte, NodeBytes)
		if err := cl.readNode(leftChild, raw); err != nil {
			return err
		}
		moved := leftChild
		if leftChild == RootNode {
			movedID, err := cl.allocNode()
			if err != nil {
				return err
			}
			if err := cl.rdma(nic.OpWrite, NodeOffset(movedID), raw[:NodeBytes]); err != nil {
				return err
			}
			moved = movedID
		}
		root := make([]byte, NodeBytes)
		nh := header{version: 2, count: 1, leaf: false}
		putEntry(root, 0, entry{key: sepKey, ref: moved + 1})
		putEntry(root, 1, entry{ref: rightChild + 1})
		putHeader(root, nh)
		return cl.rdma(nic.OpWrite, NodeOffset(RootNode), root)
	}

	parent := path[len(path)-1]
	raw := make([]byte, NodeBytes)
	if err := cl.readNode(parent, raw); err != nil {
		return err
	}
	h := parseHeader(raw)
	if int(h.count) >= maxSeparators {
		if err := cl.splitInterior(parent, raw, path[:len(path)-1]); err != nil {
			return err
		}
		// The split may have deepened or reshaped the tree; re-locate the
		// node that now holds the pointer to leftChild and insert there.
		// sepKey-1 routes into the left child (separators are strictly
		// greater than every key below the left child).
		newPath, err := cl.findParentOf(leftChild, sepKey-1)
		if err != nil {
			return err
		}
		return cl.insertSeparator(newPath, leftChild, rightChild, sepKey)
	}
	pos := 0
	for pos < int(h.count) && parseEntry(raw, pos).key < sepKey {
		pos++
	}
	// Shift entries right, including the rightmost-child slot.
	for i := int(h.count); i >= pos; i-- {
		putEntry(raw, i+1, parseEntry(raw, i))
	}
	putEntry(raw, pos, entry{key: sepKey, ref: leftChild + 1})
	// The entry after the new separator must point at the right child.
	after := parseEntry(raw, pos+1)
	after.ref = rightChild + 1
	putEntry(raw, pos+1, after)
	h.count++
	return cl.writeBack(parent, raw, h)
}

// splitInterior splits a full interior node, promoting its middle separator
// into the parent above (recursively).
func (cl *Client) splitInterior(id uint64, raw []byte, path []uint64) error {
	h := parseHeader(raw)
	c := int(h.count)
	mid := c / 2
	promote := parseEntry(raw, mid).key

	newID, err := cl.allocNode()
	if err != nil {
		return err
	}
	// Right node: separators mid+1..c-1 plus the old rightmost child.
	right := make([]byte, NodeBytes)
	rh := header{version: 2, count: uint64(c - mid - 1), leaf: false}
	for i := mid + 1; i < c; i++ {
		putEntry(right, i-mid-1, parseEntry(raw, i))
	}
	putEntry(right, c-mid-1, parseEntry(raw, c)) // rightmost child slot
	putHeader(right, rh)
	if err := cl.rdma(nic.OpWrite, NodeOffset(newID), right); err != nil {
		return err
	}
	// Left node keeps separators 0..mid-1; its rightmost child becomes the
	// promoted separator's child.
	midChild := parseEntry(raw, mid).ref
	putEntry(raw, mid, entry{ref: midChild})
	h.count = uint64(mid)
	if err := cl.writeBack(id, raw, h); err != nil {
		return err
	}
	return cl.insertSeparator(path, id, newID, promote)
}

// findParentOf descends along routeKey and returns the ancestor path of the
// node directly pointing at child (the path excludes child itself).
func (cl *Client) findParentOf(child uint64, routeKey uint64) ([]uint64, error) {
	raw := make([]byte, NodeBytes)
	id := uint64(RootNode)
	var path []uint64
	for {
		if err := cl.readNode(id, raw); err != nil {
			return nil, err
		}
		path = append(path, id)
		h := parseHeader(raw)
		if h.leaf {
			return nil, errors.New("appdisagg: parent of split child not found")
		}
		next := uint64(0)
		for i := 0; i < int(h.count); i++ {
			if routeKey < parseEntry(raw, i).key {
				next = parseEntry(raw, i).ref
				break
			}
		}
		if next == 0 {
			next = parseEntry(raw, int(h.count)).ref
		}
		if next == 0 {
			return nil, errors.New("appdisagg: corrupt interior node")
		}
		if next-1 == child {
			return path, nil
		}
		id = next - 1
	}
}

// Scan returns up to max entries with key >= from, following leaf sibling
// links.
func (cl *Client) Scan(from uint64, max int) ([]uint64, error) {
	_, raw, err := cl.descend(from)
	if err != nil {
		return nil, err
	}
	var keys []uint64
	for {
		h := parseHeader(raw)
		for i := 0; i < int(h.count) && len(keys) < max; i++ {
			e := parseEntry(raw, i)
			if e.key >= from && e.ref == 1 {
				keys = append(keys, e.key)
			}
		}
		if len(keys) >= max || h.right == 0 {
			return keys, nil
		}
		if err := cl.readNode(h.right-1, raw); err != nil {
			return nil, err
		}
	}
}

// LeafOffsetOf resolves the MR byte offset of the leaf holding key — the
// secret the Ragnar snoop recovers from the victim's traffic.
func (cl *Client) LeafOffsetOf(key uint64) (uint64, error) {
	leaf, _, err := cl.descend(key)
	if err != nil {
		return 0, err
	}
	return NodeOffset(leaf), nil
}

// Delete removes key from the index, returning whether it existed. Sherman
// deletes in place with a presence flag (leaves are never merged — remote
// memory reclamation is deferred), so a delete costs one descent plus one
// write-back.
func (cl *Client) Delete(key uint64) (bool, error) {
	leaf, raw, err := cl.leafFor(key)
	if err != nil {
		return false, err
	}
	h := parseHeader(raw)
	for i := 0; i < int(h.count); i++ {
		e := parseEntry(raw, i)
		if e.key == key && e.ref == 1 {
			e.ref = 0 // tombstone
			putEntry(raw, i, e)
			return true, cl.writeBack(leaf, raw, h)
		}
	}
	return false, nil
}
