// Package lab assembles Ragnar experiment topologies — one server context
// shared by several client contexts, per the paper's threat model (Figure
// 2) — so reverse-engineering benchmarks, covert channels and side-channel
// attacks all build on identical plumbing. The wiring itself is declarative
// (see Topology in topology.go): Pair keeps the legacy point-to-point
// shape, Star/DualRail/Build add switched multi-host scenarios.
package lab

import (
	"fmt"

	"github.com/thu-has/ragnar/internal/fabric"
	"github.com/thu-has/ragnar/internal/host"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/trace"
	"github.com/thu-has/ragnar/internal/verbs"
)

// Cluster is the legacy name for a built topology: all pre-switch callers
// keep compiling, and New still hands them the exact point-to-point shape
// they were written against.
type Cluster = Topology

// Config parameterises a cluster.
type Config struct {
	Seed     int64
	Profile  nic.Profile
	Clients  int
	QoS      fabric.QoSConfig
	ServerHW host.Config
	ClientHW host.Config
	// Switch parameterises the shared switch in switched topologies (Star,
	// DualRail); the zero value selects DefaultSwitchConfig. Pair ignores it.
	Switch fabric.SwitchConfig
}

// DefaultConfig mirrors the paper's setup: H3 serves, H2-class clients,
// ETS with two 50% classes.
func DefaultConfig(p nic.Profile) Config {
	return Config{
		Seed:     1,
		Profile:  p,
		Clients:  2,
		QoS:      fabric.SplitQoS(0, 3),
		ServerHW: host.H3,
		ClientHW: host.H2,
	}
}

// New builds the legacy point-to-point cluster — a thin wrapper over the
// Pair topology, which replicates the original construction order exactly
// so existing goldens stay byte-identical.
func New(cfg Config) *Cluster {
	return Pair(cfg)
}

// AttachRecorder wires one flight recorder through the whole rig: the
// engine, every context (verbs layer + NIC datapath), every switch
// forwarding plane and every fabric link emit into it. Call it right after
// construction, before any traffic, so actor registration order — and
// therefore Chrome track order — is deterministic. Recording is passive;
// traced runs stay byte-identical to untraced ones.
func (c *Cluster) AttachRecorder(r *trace.Recorder) {
	c.Eng.SetRecorder(r)
	c.Server.SetRecorder(r)
	for _, cl := range c.Clients {
		cl.SetRecorder(r)
	}
	for _, sw := range c.Switches {
		sw.SetRecorder(r)
	}
	for _, l := range c.Links {
		l.SetRecorder(r)
	}
}

// InjectLoss installs a uniform random-drop FaultPlan on every link in the
// topology — host uplinks, switch egress ports and trunks alike. Each
// link's RNG stream is derived from seed and the link's index with
// sim.DeriveSeed, so runs are reproducible and links are decorrelated.
// prob 0 removes any installed plans.
func (c *Cluster) InjectLoss(seed int64, prob float64) {
	for i, l := range c.Links {
		if prob <= 0 {
			l.SetFaultPlan(nil)
			continue
		}
		plan := fabric.UniformLoss(sim.DeriveSeed(seed, uint64(i)), prob)
		l.SetFaultPlan(&plan)
	}
}

// RegisterServerMR registers a remotely readable/writable MR of size bytes
// on 2 MB huge pages (the paper's Grain-III/IV configuration).
func (c *Cluster) RegisterServerMR(size uint64) (*verbs.MR, error) {
	return c.ServerPD.RegMR(size, host.Page2M,
		verbs.AccessRemoteRead|verbs.AccessRemoteWrite|verbs.AccessRemoteAtomic)
}

// Conn is a connected client QP with its CQ.
type Conn struct {
	Client *verbs.Context
	QP     *verbs.QP
	CQ     *verbs.CQ
	server *verbs.QP
}

// ServerQP returns the server-side endpoint of the connection.
func (cn *Conn) ServerQP() *verbs.QP { return cn.server }

// Dial connects client i to the server with the given send-queue depth and
// the default (effectively unbounded) CQ capacity.
func (c *Cluster) Dial(client int, sqDepth int) (*Conn, error) {
	return c.DialCQ(client, sqDepth, 0)
}

// DialCQ is Dial with an explicit client-side CQ capacity (0 selects the
// default). Exhaustion experiments use small capacities to model victims
// whose completion rings an aggressor can overrun.
func (c *Cluster) DialCQ(client, sqDepth, cqCap int) (*Conn, error) {
	if client < 0 || client >= len(c.Clients) {
		return nil, fmt.Errorf("lab: client %d out of range", client)
	}
	cl := c.Clients[client]
	cq := cl.CreateCQ(cqCap)
	qp, err := cl.CreateQP(cl.AllocPD(), cq, verbs.QPCap{MaxSendWR: sqDepth})
	if err != nil {
		return nil, err
	}
	sq, err := c.Server.CreateQP(c.ServerPD, c.Server.CreateCQ(0), verbs.QPCap{})
	if err != nil {
		return nil, err
	}
	if err := verbs.Connect(qp, sq); err != nil {
		return nil, err
	}
	// Tag the server-side QP with the client index so isolation profiles
	// can attribute egress scheduling and responder credits per tenant.
	// Inert on non-ISO profiles (the strict arbiter ignores tenants).
	c.Server.NIC().SetQPTenant(sq.QPN(), client)
	return &Conn{Client: cl, QP: qp, CQ: cq, server: sq}, nil
}

// Warm performs one read per connection against the MR so cold QPC/MTT
// misses do not pollute subsequent measurements.
func (c *Cluster) Warm(conn *Conn, mr *verbs.MR) error {
	if err := conn.QP.PostRead(^uint64(0), nil, mr.Describe(0), 8); err != nil {
		return err
	}
	c.Run()
	var scratch [16]nic.Completion
	for conn.CQ.PollInto(scratch[:]) > 0 {
	}
	return nil
}
