// Package lab assembles the standard Ragnar experiment topology — one
// server context shared by several client contexts, per the paper's threat
// model (Figure 2) — so reverse-engineering benchmarks, covert channels and
// side-channel attacks all build on identical plumbing.
package lab

import (
	"fmt"

	"github.com/thu-has/ragnar/internal/fabric"
	"github.com/thu-has/ragnar/internal/host"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/trace"
	"github.com/thu-has/ragnar/internal/verbs"
)

// Cluster is a server plus client contexts wired through the fabric.
type Cluster struct {
	Eng      *sim.Engine
	Profile  nic.Profile
	Server   *verbs.Context
	ServerPD *verbs.PD
	Clients  []*verbs.Context
	// Links lists every fabric link in deterministic build order
	// (client0->server, server->client0, client1->server, ...), so loss
	// experiments can install fault plans and read drop counters.
	Links []*fabric.Link
}

// Config parameterises a cluster.
type Config struct {
	Seed     int64
	Profile  nic.Profile
	Clients  int
	QoS      fabric.QoSConfig
	ServerHW host.Config
	ClientHW host.Config
}

// DefaultConfig mirrors the paper's setup: H3 serves, H2-class clients,
// ETS with two 50% classes.
func DefaultConfig(p nic.Profile) Config {
	return Config{
		Seed:     1,
		Profile:  p,
		Clients:  2,
		QoS:      fabric.SplitQoS(0, 3),
		ServerHW: host.H3,
		ClientHW: host.H2,
	}
}

// New builds the cluster.
func New(cfg Config) *Cluster {
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	if cfg.ServerHW.Name == "" {
		cfg.ServerHW = host.H3
	}
	if cfg.ClientHW.Name == "" {
		cfg.ClientHW = host.H2
	}
	eng := sim.NewEngine(cfg.Seed)
	// The Grain-III/IV methodology disables DDIO to remove cache-induced
	// variance; the host default is already DDIO-off.
	server := verbs.NewContext(eng, "server", cfg.ServerHW, cfg.Profile, 0)
	c := &Cluster{
		Eng:      eng,
		Profile:  cfg.Profile,
		Server:   server,
		ServerPD: server.AllocPD(),
	}
	net := verbs.NewNetwork(eng)
	// Same-rack cabling: the paper's hosts sit under one switch.
	net.PropDelay = 200 * sim.Nanosecond
	for i := 0; i < cfg.Clients; i++ {
		cl := verbs.NewContext(eng, fmt.Sprintf("client%d", i), cfg.ClientHW, cfg.Profile, 0)
		w := net.ConnectContexts(cl, server, cfg.QoS)
		c.Links = append(c.Links, w.AtoB, w.BtoA)
		c.Clients = append(c.Clients, cl)
	}
	return c
}

// AttachRecorder wires one flight recorder through the whole rig: the
// engine, every context (verbs layer + NIC datapath) and every fabric link
// emit into it. Call it right after New, before any traffic, so actor
// registration order — and therefore Chrome track order — is deterministic.
// Recording is passive; traced runs stay byte-identical to untraced ones.
func (c *Cluster) AttachRecorder(r *trace.Recorder) {
	c.Eng.SetRecorder(r)
	c.Server.SetRecorder(r)
	for _, cl := range c.Clients {
		cl.SetRecorder(r)
	}
	for _, l := range c.Links {
		l.SetRecorder(r)
	}
}

// InjectLoss installs a uniform random-drop FaultPlan on every link of the
// cluster. Each link's RNG stream is derived from seed and the link's index
// with sim.DeriveSeed, so runs are reproducible and links are decorrelated.
// prob 0 removes any installed plans.
func (c *Cluster) InjectLoss(seed int64, prob float64) {
	for i, l := range c.Links {
		if prob <= 0 {
			l.SetFaultPlan(nil)
			continue
		}
		plan := fabric.UniformLoss(sim.DeriveSeed(seed, uint64(i)), prob)
		l.SetFaultPlan(&plan)
	}
}

// RegisterServerMR registers a remotely readable/writable MR of size bytes
// on 2 MB huge pages (the paper's Grain-III/IV configuration).
func (c *Cluster) RegisterServerMR(size uint64) (*verbs.MR, error) {
	return c.ServerPD.RegMR(size, host.Page2M,
		verbs.AccessRemoteRead|verbs.AccessRemoteWrite|verbs.AccessRemoteAtomic)
}

// Conn is a connected client QP with its CQ.
type Conn struct {
	Client *verbs.Context
	QP     *verbs.QP
	CQ     *verbs.CQ
	server *verbs.QP
}

// ServerQP returns the server-side endpoint of the connection.
func (cn *Conn) ServerQP() *verbs.QP { return cn.server }

// Dial connects client i to the server with the given send-queue depth.
func (c *Cluster) Dial(client int, sqDepth int) (*Conn, error) {
	if client < 0 || client >= len(c.Clients) {
		return nil, fmt.Errorf("lab: client %d out of range", client)
	}
	cl := c.Clients[client]
	cq := cl.CreateCQ(0)
	qp, err := cl.CreateQP(cl.AllocPD(), cq, verbs.QPCap{MaxSendWR: sqDepth})
	if err != nil {
		return nil, err
	}
	sq, err := c.Server.CreateQP(c.ServerPD, c.Server.CreateCQ(0), verbs.QPCap{})
	if err != nil {
		return nil, err
	}
	if err := verbs.Connect(qp, sq); err != nil {
		return nil, err
	}
	return &Conn{Client: cl, QP: qp, CQ: cq, server: sq}, nil
}

// Warm performs one read per connection against the MR so cold QPC/MTT
// misses do not pollute subsequent measurements.
func (c *Cluster) Warm(conn *Conn, mr *verbs.MR) error {
	if err := conn.QP.PostRead(^uint64(0), nil, mr.Describe(0), 8); err != nil {
		return err
	}
	c.Eng.Run()
	conn.CQ.Poll(conn.CQ.Len())
	return nil
}
