package lab

import (
	"testing"

	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/trace"
	"github.com/thu-has/ragnar/internal/verbs"
)

// readOnce dials client i, warms it, posts one read and returns its latency.
func readOnce(t *testing.T, c *Topology, mr *verbs.MR, i int) sim.Duration {
	t.Helper()
	conn, err := c.Dial(i, 8)
	if err != nil {
		t.Fatalf("dial %d: %v", i, err)
	}
	if err := c.Warm(conn, mr); err != nil {
		t.Fatalf("warm %d: %v", i, err)
	}
	if err := conn.QP.PostRead(1, nil, mr.Describe(0), 256); err != nil {
		t.Fatalf("read %d: %v", i, err)
	}
	c.Eng.Run()
	comps := conn.CQ.Poll(4)
	if len(comps) != 1 || comps[0].Status != nic.StatusOK {
		t.Fatalf("client %d completion: %+v", i, comps)
	}
	return comps[0].DoneTime.Sub(comps[0].PostTime)
}

func TestStarWiring(t *testing.T) {
	cfg := DefaultConfig(nic.CX5)
	cfg.Clients = 3
	c := Star(cfg)
	if len(c.Switches) != 1 || c.Switches[0].NumPorts() != 4 {
		t.Fatalf("star: %d switches, %d ports", len(c.Switches), c.Switches[0].NumPorts())
	}
	// Two links per attached host: uplink + switch egress.
	if len(c.Links) != 8 {
		t.Fatalf("star links = %d, want 8", len(c.Links))
	}
	mr, err := c.RegisterServerMR(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Clients {
		readOnce(t, c, mr, i)
	}
	if c.Switches[0].FwdPackets() == 0 {
		t.Fatal("no packets traversed the switch")
	}
	if c.Switches[0].Unroutable() != 0 {
		t.Fatalf("%d unroutable packets", c.Switches[0].Unroutable())
	}
	if c.Switches[0].BufUsed() != 0 {
		t.Fatalf("switch buffer not drained: %d bytes", c.Switches[0].BufUsed())
	}
}

func TestStarDeterminism(t *testing.T) {
	run := func() sim.Duration {
		cfg := DefaultConfig(nic.CX5)
		cfg.Seed = 7
		cfg.Clients = 3
		c := Star(cfg)
		mr, _ := c.RegisterServerMR(1 << 20)
		return readOnce(t, c, mr, 2)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed stars diverge: %v vs %v", a, b)
	}
}

// TestStarFaultsEverySegment is the satellite check that InjectLoss now
// reaches every segment of a switched topology: host uplinks AND switch
// egress ports, not just the fixed point-to-point list.
func TestStarFaultsEverySegment(t *testing.T) {
	cfg := DefaultConfig(nic.CX5)
	cfg.Clients = 3
	c := Star(cfg)
	c.InjectLoss(42, 0.05)
	if len(c.Links) == 0 {
		t.Fatal("no links")
	}
	for i, l := range c.Links {
		if !l.HasFaultPlan() {
			t.Fatalf("link %d (%s) has no fault plan", i, l.Name())
		}
	}
	// Switch egress ports are in the Links list (same *Link values).
	for _, sw := range c.Switches {
		for p := 0; p < sw.NumPorts(); p++ {
			if !sw.EgressLink(p).HasFaultPlan() {
				t.Fatalf("switch port %d missed by InjectLoss", p)
			}
		}
	}
	// Lossy traffic still completes through RC retransmission.
	mr, err := c.RegisterServerMR(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := c.Dial(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.QP.SetRetry(10*sim.Microsecond, 1000); err != nil {
		t.Fatal(err)
	}
	if err := conn.ServerQP().SetRetry(10*sim.Microsecond, 1000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := conn.QP.PostRead(uint64(i), nil, mr.Describe(0), 1024); err != nil {
			t.Fatal(err)
		}
	}
	c.Eng.Run()
	comps := conn.CQ.Poll(64)
	if len(comps) != 50 {
		t.Fatalf("completed %d of 50 reads under loss", len(comps))
	}
	for _, cm := range comps {
		if cm.Status != nic.StatusOK {
			t.Fatalf("completion status %v", cm.Status)
		}
	}
	// Clearing removes every plan again.
	c.InjectLoss(0, 0)
	for i, l := range c.Links {
		if l.HasFaultPlan() {
			t.Fatalf("link %d still has a plan after clear", i)
		}
	}
}

// TestPairLatencyRegression pins the exact post→completion latency of a
// Pair-topology read, measured before the topology refactor. The experiment
// goldens (fig4–fig13, table5, lossgrid) assert the same property en masse;
// this is the focused canary that fails first if Pair construction order —
// and therefore the event/RNG schedule — ever drifts from the legacy
// Cluster.
func TestPairLatencyRegression(t *testing.T) {
	cfg := DefaultConfig(nic.CX5)
	cfg.Seed = 99
	c := Pair(cfg)
	mr, _ := c.RegisterServerMR(1 << 20)
	conn, _ := c.Dial(0, 8)
	c.Warm(conn, mr)
	conn.QP.PostRead(7, nil, mr.Describe(128), 256)
	c.Eng.Run()
	comp := conn.CQ.Poll(1)[0]
	got := comp.DoneTime.Sub(comp.PostTime)
	// Value captured from the pre-refactor lab.New on the same seed/config.
	const want = sim.Duration(2045825) // 2045.825 ns, in picoseconds
	if got != want {
		t.Fatalf("pair read latency = %d ps, want %d ps (legacy cluster schedule)", int64(got), int64(want))
	}
}

func TestDualRailIsolation(t *testing.T) {
	cfg := DefaultConfig(nic.CX5)
	cfg.Clients = 4
	c := DualRail(cfg)
	if len(c.Switches) != 2 {
		t.Fatalf("dual rail switches = %d", len(c.Switches))
	}
	// Server on both rails + 2 clients each: 3 ports per switch.
	for r, sw := range c.Switches {
		if sw.NumPorts() != 3 {
			t.Fatalf("rail %d ports = %d, want 3", r, sw.NumPorts())
		}
	}
	mr, err := c.RegisterServerMR(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	// Client 0 lives on rail 0: its traffic must not touch rail 1.
	readOnce(t, c, mr, 0)
	if c.Switches[0].FwdPackets() == 0 {
		t.Fatal("rail 0 saw no packets")
	}
	if n := c.Switches[1].FwdPackets(); n != 0 {
		t.Fatalf("rail 1 forwarded %d packets for a rail-0 client", n)
	}
	// Client 1 (rail 1) works too.
	readOnce(t, c, mr, 1)
	if c.Switches[1].FwdPackets() == 0 {
		t.Fatal("rail 1 saw no packets")
	}
}

func TestBuildTrunkedTree(t *testing.T) {
	// sw0 —— sw1: server on sw0, client 0 on sw0, client 1 on sw1. Client
	// 1's reads cross the trunk both ways.
	spec := Spec{
		Seed:    1,
		Profile: nic.CX5,
		QoS:     DefaultConfig(nic.CX5).QoS,
		Switches: []SwitchSpec{
			{Trunk: -1},
			{Trunk: 0},
		},
		ServerSwitch: 0,
		ClientSwitch: []int{0, 1},
	}
	c := Build(spec)
	if len(c.Switches) != 2 || len(c.Clients) != 2 {
		t.Fatalf("built %d switches, %d clients", len(c.Switches), len(c.Clients))
	}
	mr, err := c.RegisterServerMR(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	readOnce(t, c, mr, 0)
	local := c.Switches[1].FwdPackets()
	if local != 0 {
		t.Fatalf("same-switch traffic crossed the trunk: %d", local)
	}
	readOnce(t, c, mr, 1)
	if c.Switches[1].FwdPackets() == 0 {
		t.Fatal("remote client's traffic never entered sw1")
	}
	if c.Switches[0].Unroutable() != 0 || c.Switches[1].Unroutable() != 0 {
		t.Fatalf("unroutable: sw0=%d sw1=%d",
			c.Switches[0].Unroutable(), c.Switches[1].Unroutable())
	}
}

// TestStarTracing checks a switched rig records switch activity and that
// tracing stays passive (traced latency == untraced latency).
func TestStarTracing(t *testing.T) {
	run := func(rec *trace.Recorder) sim.Duration {
		cfg := DefaultConfig(nic.CX5)
		cfg.Clients = 2
		c := Star(cfg)
		if rec != nil {
			c.AttachRecorder(rec)
		}
		mr, _ := c.RegisterServerMR(1 << 20)
		return readOnce(t, c, mr, 1)
	}
	rec := trace.NewRecorder("star", 1<<14)
	traced := run(rec)
	untraced := run(nil)
	if traced != untraced {
		t.Fatalf("tracing perturbed the run: %v vs %v", traced, untraced)
	}
	if rec.Len() == 0 {
		t.Fatal("recorder captured nothing")
	}
}
