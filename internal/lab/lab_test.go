package lab

import (
	"testing"

	"github.com/thu-has/ragnar/internal/nic"
)

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(nic.CX5)
	if cfg.Clients != 2 || cfg.Profile.Name != "ConnectX-5" {
		t.Fatalf("config = %+v", cfg)
	}
	if cfg.ServerHW.Name != "H3" || cfg.ClientHW.Name != "H2" {
		t.Fatal("Table II host roles wrong")
	}
}

func TestNewClusterWiring(t *testing.T) {
	cfg := DefaultConfig(nic.CX4)
	cfg.Clients = 3
	c := New(cfg)
	if len(c.Clients) != 3 {
		t.Fatalf("clients = %d", len(c.Clients))
	}
	mr, err := c.RegisterServerMR(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	// Every client can reach the server MR.
	for i := range c.Clients {
		conn, err := c.Dial(i, 8)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		if err := c.Warm(conn, mr); err != nil {
			t.Fatalf("warm %d: %v", i, err)
		}
		if err := conn.QP.PostRead(1, nil, mr.Describe(0), 64); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		c.Eng.Run()
		comps := conn.CQ.Poll(4)
		if len(comps) != 1 || comps[0].Status != nic.StatusOK {
			t.Fatalf("client %d completion: %+v", i, comps)
		}
	}
}

func TestDialRange(t *testing.T) {
	c := New(DefaultConfig(nic.CX4))
	if _, err := c.Dial(-1, 4); err == nil {
		t.Fatal("negative client should error")
	}
	if _, err := c.Dial(9, 4); err == nil {
		t.Fatal("out-of-range client should error")
	}
}

func TestClusterMinimums(t *testing.T) {
	cfg := Config{Profile: nic.CX4}
	c := New(cfg)
	if len(c.Clients) != 1 {
		t.Fatal("zero-client config should clamp to 1")
	}
	if c.Server == nil || c.ServerPD == nil {
		t.Fatal("server not initialised")
	}
}

func TestDeterministicClusters(t *testing.T) {
	run := func() float64 {
		cfg := DefaultConfig(nic.CX5)
		cfg.Seed = 99
		c := New(cfg)
		mr, _ := c.RegisterServerMR(1 << 20)
		conn, _ := c.Dial(0, 8)
		c.Warm(conn, mr)
		conn.QP.PostRead(7, nil, mr.Describe(128), 256)
		c.Eng.Run()
		comp := conn.CQ.Poll(1)[0]
		return comp.DoneTime.Sub(comp.PostTime).Nanoseconds()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed clusters diverge: %v vs %v", a, b)
	}
}
