// Topology is the declarative successor to the fixed two/three-host rig:
// the same server-plus-clients threat model, but with the wiring — direct
// cables, a shared switch, dual rails, or an arbitrary switch tree — chosen
// per scenario. Pair reproduces the legacy Cluster byte-for-byte; Star and
// DualRail are the shapes the multi-tenant experiments need; Build accepts
// an explicit Spec for anything else.

package lab

import (
	"fmt"

	"github.com/thu-has/ragnar/internal/fabric"
	"github.com/thu-has/ragnar/internal/host"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	parsim "github.com/thu-has/ragnar/internal/sim/parallel"
	"github.com/thu-has/ragnar/internal/verbs"
)

// Topology is a built scenario: one server context, N client contexts, and
// every fabric element between them. Cluster is an alias of this type, so
// all pre-switch code keeps compiling unchanged.
type Topology struct {
	Eng      *sim.Engine
	Profile  nic.Profile
	Net      *verbs.Network
	Server   *verbs.Context
	ServerPD *verbs.PD
	Clients  []*verbs.Context
	// Links lists every fabric link — host uplinks, switch egress ports,
	// trunks — in deterministic build order, so loss experiments can install
	// fault plans and read drop counters on any segment.
	Links []*fabric.Link
	// Switches lists every switch in build order (empty for Pair).
	Switches []*fabric.Switch
	// Engines lists one engine per domain in domain order; Engines[0] == Eng
	// (the server's domain). Single-engine topologies have exactly one entry.
	Engines []*sim.Engine
	// Group coordinates the engine domains of a partitioned topology (see
	// Clos); nil when everything runs on one engine.
	Group *parsim.Group
}

// Run executes the topology until every domain is idle. Single-engine
// topologies delegate straight to the engine; partitioned ones run the
// conservative window protocol.
func (t *Topology) Run() {
	if t.Group != nil {
		t.Group.Run()
		return
	}
	t.Eng.Run()
}

// RunUntil executes until the given virtual time on every domain.
func (t *Topology) RunUntil(deadline sim.Time) {
	if t.Group != nil {
		t.Group.RunUntil(deadline)
		return
	}
	t.Eng.RunUntil(deadline)
}

// RunFor advances the topology by d from its current time.
func (t *Topology) RunFor(d sim.Duration) { t.RunUntil(t.Now().Add(d)) }

// Now returns the topology's current virtual time (the max across domains).
func (t *Topology) Now() sim.Time {
	if t.Group != nil {
		return t.Group.Now()
	}
	return t.Eng.Now()
}

// DrainCheck reports an error if any domain still has live events or any
// inter-domain channel holds staged transfers — the end-of-run leak oracle.
func (t *Topology) DrainCheck() error {
	if t.Group != nil {
		return t.Group.DrainCheck()
	}
	return t.Eng.DrainCheck()
}

// DefaultSwitchConfig is the shared-buffer switch used when a switched
// topology is requested without explicit switch parameters: a 300 ns
// store-and-forward latency, a 1 MiB shared pool, and PFC thresholds tight
// enough that a congested egress port visibly pauses its upstream ports.
func DefaultSwitchConfig() fabric.SwitchConfig {
	return fabric.SwitchConfig{
		Name:           "sw0",
		FwdDelay:       300 * sim.Nanosecond,
		SharedBufBytes: 1 << 20,
		XOffBytes:      96 << 10,
		XOnBytes:       48 << 10,
	}
}

// fillDefaults applies the Config defaults shared by every constructor.
func fillDefaults(cfg Config) Config {
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	if cfg.ServerHW.Name == "" {
		cfg.ServerHW = host.H3
	}
	if cfg.ClientHW.Name == "" {
		cfg.ClientHW = host.H2
	}
	return cfg
}

// switchCfg picks the configured switch parameters or the defaults, naming
// the instance swN for multi-switch shapes.
func switchCfg(cfg Config, n int) fabric.SwitchConfig {
	sc := cfg.Switch
	if sc == (fabric.SwitchConfig{}) {
		sc = DefaultSwitchConfig()
	}
	if n > 0 || sc.Name == "" {
		sc.Name = fmt.Sprintf("sw%d", n)
	}
	return sc
}

// Pair wires every client straight to the server over a dedicated full-
// duplex wire — the legacy Cluster shape. Construction order (and therefore
// every RNG draw and event) matches the pre-topology lab.New exactly, which
// is what keeps the fig4–fig13/table5/lossgrid goldens byte-identical.
func Pair(cfg Config) *Topology {
	cfg = fillDefaults(cfg)
	eng := sim.NewEngine(cfg.Seed)
	// The Grain-III/IV methodology disables DDIO to remove cache-induced
	// variance; the host default is already DDIO-off.
	server := verbs.NewContext(eng, "server", cfg.ServerHW, cfg.Profile, 0)
	t := &Topology{
		Eng:      eng,
		Engines:  []*sim.Engine{eng},
		Profile:  cfg.Profile,
		Server:   server,
		ServerPD: server.AllocPD(),
	}
	net := verbs.NewNetwork(eng)
	// Same-rack cabling: the paper's hosts sit under one switch.
	net.PropDelay = 200 * sim.Nanosecond
	t.Net = net
	for i := 0; i < cfg.Clients; i++ {
		cl := verbs.NewContext(eng, fmt.Sprintf("client%d", i), cfg.ClientHW, cfg.Profile, 0)
		w := net.ConnectContexts(cl, server, cfg.QoS)
		t.Links = append(t.Links, w.AtoB, w.BtoA)
		t.Clients = append(t.Clients, cl)
	}
	return t
}

// Star hangs the server and every client off one shared switch — the
// noisy-neighbor shape: all client traffic toward the server converges on a
// single egress port. Per-segment propagation is 100 ns, so the server path
// totals the Pair topology's 200 ns of cable plus the switch's forwarding
// delay and any queueing.
func Star(cfg Config) *Topology {
	cfg = fillDefaults(cfg)
	eng := sim.NewEngine(cfg.Seed)
	server := verbs.NewContext(eng, "server", cfg.ServerHW, cfg.Profile, 0)
	t := &Topology{
		Eng:      eng,
		Engines:  []*sim.Engine{eng},
		Profile:  cfg.Profile,
		Server:   server,
		ServerPD: server.AllocPD(),
	}
	net := verbs.NewNetwork(eng)
	net.PropDelay = 100 * sim.Nanosecond
	t.Net = net
	sw := fabric.NewSwitch(eng, switchCfg(cfg, 0))
	t.Switches = []*fabric.Switch{sw}
	sPort, sUp := net.AttachToSwitch(server, sw, cfg.QoS)
	t.Links = append(t.Links, sUp, sw.EgressLink(sPort))
	for i := 0; i < cfg.Clients; i++ {
		cl := verbs.NewContext(eng, fmt.Sprintf("client%d", i), cfg.ClientHW, cfg.Profile, 0)
		cPort, cUp := net.AttachToSwitch(cl, sw, cfg.QoS)
		net.SetPath(cl, server, cUp)
		net.SetPath(server, cl, sUp)
		t.Clients = append(t.Clients, cl)
		t.Links = append(t.Links, cUp, sw.EgressLink(cPort))
	}
	return t
}

// DualRail builds two independent switches (rails) with the server
// dual-homed on both; client i lands on rail i%2. Traffic between a client
// and the server stays on the client's rail, so the two rails only share
// the server's NIC — the shape for isolating switch-level interference from
// NIC-level interference.
func DualRail(cfg Config) *Topology {
	cfg = fillDefaults(cfg)
	eng := sim.NewEngine(cfg.Seed)
	server := verbs.NewContext(eng, "server", cfg.ServerHW, cfg.Profile, 0)
	t := &Topology{
		Eng:      eng,
		Engines:  []*sim.Engine{eng},
		Profile:  cfg.Profile,
		Server:   server,
		ServerPD: server.AllocPD(),
	}
	net := verbs.NewNetwork(eng)
	net.PropDelay = 100 * sim.Nanosecond
	t.Net = net
	var serverUp [2]*fabric.Link
	for r := 0; r < 2; r++ {
		sw := fabric.NewSwitch(eng, switchCfg(cfg, r))
		t.Switches = append(t.Switches, sw)
		p, up := net.AttachToSwitch(server, sw, cfg.QoS)
		serverUp[r] = up
		t.Links = append(t.Links, up, sw.EgressLink(p))
	}
	for i := 0; i < cfg.Clients; i++ {
		rail := i % 2
		sw := t.Switches[rail]
		cl := verbs.NewContext(eng, fmt.Sprintf("client%d", i), cfg.ClientHW, cfg.Profile, 0)
		cPort, cUp := net.AttachToSwitch(cl, sw, cfg.QoS)
		net.SetPath(cl, server, cUp)
		net.SetPath(server, cl, serverUp[rail])
		t.Clients = append(t.Clients, cl)
		t.Links = append(t.Links, cUp, sw.EgressLink(cPort))
	}
	return t
}

// SwitchSpec places one switch in a Spec. Trunk names an earlier switch
// index this switch uplinks to (-1 or self-index for a root); TrunkGbps
// defaults to 400.
type SwitchSpec struct {
	Cfg       fabric.SwitchConfig
	Trunk     int
	TrunkGbps float64
}

// Spec describes an arbitrary switched topology: a tree of switches, the
// server on one of them, and each client assigned a home switch.
type Spec struct {
	Seed      int64
	Profile   nic.Profile
	QoS       fabric.QoSConfig
	PropDelay sim.Duration // per segment; 0 means 100 ns
	ServerHW  host.Config
	ClientHW  host.Config

	Switches     []SwitchSpec
	ServerSwitch int   // index into Switches
	ClientSwitch []int // one home-switch index per client
}

// Build assembles a Spec. Switch trunks must form a forest with earlier
// indices as parents (Trunk < index); routes between any two reachable
// hosts are installed along the unique tree path. It panics on a malformed
// spec — specs are authored in code, not loaded from input.
func Build(spec Spec) *Topology {
	if len(spec.Switches) == 0 {
		panic("lab: Build needs at least one switch")
	}
	if spec.ServerSwitch < 0 || spec.ServerSwitch >= len(spec.Switches) {
		panic("lab: ServerSwitch out of range")
	}
	prop := spec.PropDelay
	if prop == 0 {
		prop = 100 * sim.Nanosecond
	}
	cfg := fillDefaults(Config{
		Seed: spec.Seed, Profile: spec.Profile, Clients: len(spec.ClientSwitch),
		QoS: spec.QoS, ServerHW: spec.ServerHW, ClientHW: spec.ClientHW,
	})
	eng := sim.NewEngine(cfg.Seed)
	server := verbs.NewContext(eng, "server", cfg.ServerHW, cfg.Profile, 0)
	t := &Topology{
		Eng:      eng,
		Engines:  []*sim.Engine{eng},
		Profile:  cfg.Profile,
		Server:   server,
		ServerPD: server.AllocPD(),
	}
	net := verbs.NewNetwork(eng)
	net.PropDelay = prop
	t.Net = net

	// Switches first, trunked to their parents as they appear.
	n := len(spec.Switches)
	trunkPort := make([][]int, n) // trunkPort[a][b] = port on a toward b, -1 none
	for i := range trunkPort {
		trunkPort[i] = make([]int, n)
		for j := range trunkPort[i] {
			trunkPort[i][j] = -1
		}
	}
	for i, ss := range spec.Switches {
		sc := ss.Cfg
		if sc == (fabric.SwitchConfig{}) {
			sc = DefaultSwitchConfig()
		}
		sc.Name = fmt.Sprintf("sw%d", i)
		t.Switches = append(t.Switches, fabric.NewSwitch(eng, sc))
		if ss.Trunk >= 0 && ss.Trunk != i {
			if ss.Trunk > i {
				panic("lab: switch trunks must point to earlier switches")
			}
			rate := ss.TrunkGbps
			if rate <= 0 {
				rate = 400
			}
			pp, pc := net.ConnectSwitches(t.Switches[ss.Trunk], t.Switches[i], rate, cfg.QoS)
			trunkPort[ss.Trunk][i] = pp
			trunkPort[i][ss.Trunk] = pc
			t.Links = append(t.Links, t.Switches[ss.Trunk].EgressLink(pp), t.Switches[i].EgressLink(pc))
		}
	}
	// nextPort[s][d]: the port on switch s that leads toward switch d along
	// the tree, found by BFS per destination (n is tiny).
	nextPort := make([][]int, n)
	for s := range nextPort {
		nextPort[s] = make([]int, n)
		for d := range nextPort[s] {
			nextPort[s][d] = -1
		}
	}
	for d := 0; d < n; d++ {
		// BFS outward from d; first hop back toward d is via the parent in
		// the BFS tree.
		visited := make([]bool, n)
		queue := []int{d}
		visited[d] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for nb := 0; nb < n; nb++ {
				if trunkPort[nb][cur] < 0 || visited[nb] {
					continue
				}
				visited[nb] = true
				nextPort[nb][d] = trunkPort[nb][cur]
				queue = append(queue, nb)
			}
		}
	}
	// installRoutes publishes one host address (homed on switch `home`) to
	// every switch that can reach it.
	installRoutes := func(addr uint32, home int) {
		for s := 0; s < n; s++ {
			if s == home {
				continue // AttachToSwitch installed the local route
			}
			if p := nextPort[s][home]; p >= 0 {
				t.Switches[s].Route(addr, p)
			}
		}
	}

	sPort, sUp := net.AttachToSwitch(server, t.Switches[spec.ServerSwitch], cfg.QoS)
	t.Links = append(t.Links, sUp, t.Switches[spec.ServerSwitch].EgressLink(sPort))
	installRoutes(net.Addr(server), spec.ServerSwitch)

	for i, home := range spec.ClientSwitch {
		if home < 0 || home >= n {
			panic("lab: ClientSwitch index out of range")
		}
		cl := verbs.NewContext(eng, fmt.Sprintf("client%d", i), cfg.ClientHW, cfg.Profile, 0)
		cPort, cUp := net.AttachToSwitch(cl, t.Switches[home], cfg.QoS)
		installRoutes(net.Addr(cl), home)
		net.SetPath(cl, server, cUp)
		net.SetPath(server, cl, sUp)
		t.Clients = append(t.Clients, cl)
		t.Links = append(t.Links, cUp, t.Switches[home].EgressLink(cPort))
	}
	return t
}
