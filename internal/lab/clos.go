// Clos builds the two-tier leaf-spine fabric the scaled multi-tenant
// experiments run on: every leaf trunks to every spine, hosts hang off
// leaves, and leaf-to-leaf traffic spreads across the spines with
// flow-hashed ECMP. Unlike Build's switch tree, a Clos has path diversity
// — and, optionally, engine-domain parallelism: the fabric partitions at
// trunk boundaries into one domain per component (a leaf plus its hosts,
// or a spine), and trunk propagation delay becomes the conservative
// lookahead for the window protocol in internal/sim/parallel.
//
// Equivalence contract: a Clos built with Domains: 1 and one built with
// Domains: N run the same virtual-time schedule. Four construction rules
// make that hold:
//
//  1. Every domain engine is seeded with the same cfg.Seed, and no model
//     consumes engine RNG at runtime — each NIC's TPU jitter is reseeded
//     from (seed, host index) so the stream does not depend on how many
//     NICs share an engine.
//  2. Trunk PFC pause/resume is relayed with one trunk propagation delay
//     in BOTH modes (an engine callback when the two switches share a
//     domain, a channel transfer when they do not), so partitioning never
//     changes pause timing. Host-port pause stays synchronous in both.
//  3. Cross-domain trunk links hand packets to a timestamped channel with
//     arrival = serialization end + propagation — the same instant the
//     single-engine link would have delivered them.
//  4. Every trunk and host uplink carries a deterministic picosecond-scale
//     propagation skew (real cable lengths are never identical), so no
//     two paths through the fabric have exactly equal delay. Same-
//     picosecond ties between causally independent events are the one
//     place serial and partitioned builds order work differently (global
//     heap sequence vs channel drain order); the skew keeps such ties
//     from ever deciding queueing, so the schedules coincide.
//
// scripts/equivalence.sh re-checks the contract end to end: every shipped
// experiment must render byte-identically at -domains 1, 2 and N.

package lab

import (
	"fmt"

	"github.com/thu-has/ragnar/internal/fabric"
	"github.com/thu-has/ragnar/internal/host"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	parsim "github.com/thu-has/ragnar/internal/sim/parallel"
	"github.com/thu-has/ragnar/internal/verbs"
)

// ClosConfig parameterises a leaf-spine fabric. The zero value of any
// field selects the default noted on it.
type ClosConfig struct {
	Seed         int64
	Profile      nic.Profile
	Leaves       int // leaf switches; default 2
	Spines       int // spine switches; default 2
	HostsPerLeaf int // hosts per leaf, server included on leaf 0; default 2
	// Domains is the number of engine domains the fabric partitions into,
	// clamped to [1, Leaves+Spines]. 1 (or 0) builds everything on a single
	// engine; N spreads leaf/spine components across N engines run by the
	// conservative window protocol.
	Domains   int
	TrunkGbps float64      // leaf-spine trunk rate; default 400
	PropDelay sim.Duration // per-segment propagation; default 100 ns
	QoS       fabric.QoSConfig
	ServerHW  host.Config // default host.H3
	ClientHW  host.Config // default host.H2
	Switch    fabric.SwitchConfig
}

// noiseStream offsets the DeriveSeed index space used for per-NIC TPU
// jitter so it never collides with InjectLoss's per-link streams.
const noiseStream = 1 << 20

// Clos assembles the fabric. Host 0 on leaf 0 is the server; the remaining
// Leaves*HostsPerLeaf-1 hosts are clients, numbered leaf-major. Non-local
// destinations are published to every other leaf as an ECMP group over all
// spine trunks, so concurrent tenant flows fan out across the spines and
// congestion trees span switches, per the paper's shared-fabric setting.
func Clos(cfg ClosConfig) *Topology {
	if cfg.Leaves <= 0 {
		cfg.Leaves = 2
	}
	if cfg.Spines <= 0 {
		cfg.Spines = 2
	}
	if cfg.HostsPerLeaf <= 0 {
		cfg.HostsPerLeaf = 2
	}
	if cfg.TrunkGbps <= 0 {
		cfg.TrunkGbps = 400
	}
	prop := cfg.PropDelay
	if prop == 0 {
		prop = 100 * sim.Nanosecond
	}
	if cfg.ServerHW.Name == "" {
		cfg.ServerHW = host.H3
	}
	if cfg.ClientHW.Name == "" {
		cfg.ClientHW = host.H2
	}

	// Components 0..Leaves-1 are the leaves (each with its hosts),
	// Leaves..Leaves+Spines-1 the spines. A block partition assigns
	// contiguous components to domains; component 0 — the server's leaf —
	// always lands in domain 0, so Topology.Eng is the server's engine.
	numComp := cfg.Leaves + cfg.Spines
	nd := cfg.Domains
	if nd < 1 {
		nd = 1
	}
	if nd > numComp {
		nd = numComp
	}
	domOf := func(comp int) int { return comp * nd / numComp }

	engines := make([]*sim.Engine, nd)
	for d := range engines {
		engines[d] = sim.NewEngine(cfg.Seed)
	}
	var group *parsim.Group
	var domains []*parsim.Domain
	if nd > 1 {
		group = parsim.NewGroup()
		domains = make([]*parsim.Domain, nd)
		for d, e := range engines {
			domains[d] = group.AddDomain(e)
		}
	}
	engFor := func(comp int) *sim.Engine { return engines[domOf(comp)] }

	server := verbs.NewContext(engFor(0), "server", cfg.ServerHW, cfg.Profile, 0)
	t := &Topology{
		Eng:      engines[0],
		Engines:  engines,
		Group:    group,
		Profile:  cfg.Profile,
		Server:   server,
		ServerPD: server.AllocPD(),
	}
	net := verbs.NewNetwork(engines[0])
	net.PropDelay = prop
	t.Net = net

	leaves := make([]*fabric.Switch, cfg.Leaves)
	spines := make([]*fabric.Switch, cfg.Spines)
	for i := range leaves {
		sc := cfg.Switch
		if sc == (fabric.SwitchConfig{}) {
			sc = DefaultSwitchConfig()
		}
		sc.Name = fmt.Sprintf("leaf%d", i)
		leaves[i] = fabric.NewSwitch(engFor(i), sc)
	}
	for j := range spines {
		sc := cfg.Switch
		if sc == (fabric.SwitchConfig{}) {
			sc = DefaultSwitchConfig()
		}
		sc.Name = fmt.Sprintf("spine%d", j)
		spines[j] = fabric.NewSwitch(engFor(cfg.Leaves+j), sc)
	}
	t.Switches = append(append(t.Switches, leaves...), spines...)

	// Full leaf-spine mesh. leafPorts[i][j] is leaf i's port toward spine j
	// (the members of leaf i's ECMP groups); spinePorts[j][i] is spine j's
	// port toward leaf i.
	leafPorts := make([][]int, cfg.Leaves)
	spinePorts := make([][]int, cfg.Spines)
	for j := range spinePorts {
		spinePorts[j] = make([]int, cfg.Leaves)
	}
	// Rule 4 of the equivalence contract: picosecond-scale, deterministic
	// propagation skew per trunk and per host uplink (cable lengths are
	// never exactly equal in a real pod). Without it, a symmetric fabric
	// produces same-picosecond arrival ties between clients on different
	// leaves, and serial and partitioned builds resolve those ties through
	// different mechanisms — the one place the two modes can diverge. The
	// skew makes every path's delay unique, so tie order never decides
	// anything.
	for i, leaf := range leaves {
		leafPorts[i] = make([]int, cfg.Spines)
		for j, spine := range spines {
			tprop := prop + sim.Duration(i*cfg.Spines+j+1)*sim.Picosecond
			net.PropDelay = tprop
			pl, ps := net.ConnectSwitches(leaf, spine, cfg.TrunkGbps, cfg.QoS)
			leafPorts[i][j] = pl
			spinePorts[j][i] = ps
			t.Links = append(t.Links, leaf.EgressLink(pl), spine.EgressLink(ps))
			wireTrunk(t, group, domains, tprop,
				leaf, pl, domOf(i), spine, ps, domOf(cfg.Leaves+j))
		}
	}
	net.PropDelay = prop

	// Hosts, leaf-major. The builder network follows each leaf's engine so
	// uplinks land on the right domain; contexts take the engine directly.
	var serverUp *fabric.Link
	hostIdx := 0
	for i, leaf := range leaves {
		net.UseEngine(engFor(i))
		for h := 0; h < cfg.HostsPerLeaf; h++ {
			// Per-host cable skew (rule 4 again, host side).
			net.PropDelay = prop + sim.Duration(hostIdx+1)*sim.Picosecond
			var ctx *verbs.Context
			if i == 0 && h == 0 {
				ctx = server
			} else {
				ctx = verbs.NewContext(engFor(i), fmt.Sprintf("client%d", len(t.Clients)),
					cfg.ClientHW, cfg.Profile, 0)
			}
			port, up := net.AttachToSwitch(ctx, leaf, cfg.QoS)
			t.Links = append(t.Links, up, leaf.EgressLink(port))
			addr := net.Addr(ctx)
			for j, spine := range spines {
				spine.Route(addr, spinePorts[j][i])
			}
			for k, other := range leaves {
				if k != i {
					other.RouteECMP(addr, leafPorts[k])
				}
			}
			// Rule 1 of the equivalence contract: jitter streams keyed by
			// host index, not by engine.
			ctx.NIC().TPU().ReseedNoise(sim.DeriveSeed(cfg.Seed, noiseStream+uint64(hostIdx)))
			hostIdx++
			if ctx == server {
				serverUp = up
				continue
			}
			net.SetPath(ctx, server, up)
			net.SetPath(server, ctx, serverUp)
			t.Clients = append(t.Clients, ctx)
		}
	}
	net.UseEngine(engines[0])
	return t
}

// wireTrunk installs the cross-trunk plumbing for one leaf-spine pair:
// pause relays delayed by one propagation time on both ends (rule 2), and
// — when the ends live in different domains — timestamped channels that
// replace the links' synchronous sinks (rule 3).
func wireTrunk(t *Topology, group *parsim.Group, domains []*parsim.Domain, prop sim.Duration,
	a *fabric.Switch, pa int, da int, b *fabric.Switch, pb int, db int) {
	la, lb := a.EgressLink(pa), b.EgressLink(pb)
	if group == nil || da == db {
		// Same engine: relay through a delayed callback. The relay on a's
		// port pauses b's egress link (a's upstream), and vice versa.
		eng := t.Engines[da]
		a.SetPauseRelay(pa, delayedPause(eng, prop, lb))
		b.SetPauseRelay(pb, delayedPause(eng, prop, la))
		return
	}
	chAB := group.Connect(domains[da], domains[db], prop, b.Ingress)
	chBA := group.Connect(domains[db], domains[da], prop, a.Ingress)
	la.SetRemote(chAB.Send)
	lb.SetRemote(chBA.Send)
	engA, engB := t.Engines[da], t.Engines[db]
	a.SetPauseRelay(pa, func(tc int, pause bool) {
		chAB.SendPause(engA.Now().Add(prop), lb, tc, pause)
	})
	b.SetPauseRelay(pb, func(tc int, pause bool) {
		chBA.SendPause(engB.Now().Add(prop), la, tc, pause)
	})
}

// delayedPause returns a same-engine pause relay: the PFC frame reaches
// the peer's egress link one propagation delay after it is emitted,
// matching the cross-domain channel timing exactly.
func delayedPause(eng *sim.Engine, prop sim.Duration, target *fabric.Link) func(int, bool) {
	return func(tc int, pause bool) {
		if pause {
			eng.After(prop, func() { target.PauseTC(tc) })
		} else {
			eng.After(prop, func() { target.ResumeTC(tc) })
		}
	}
}
