package lab

import (
	"fmt"
	"strings"
	"testing"

	"github.com/thu-has/ragnar/internal/fabric"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
)

// closRun builds the given Clos, drives a cross-leaf workload of mixed
// reads and writes from every client, and folds every observable — each
// completion's virtual timestamp, switch forwarding and PFC counters, NIC
// counters — into one string. Two configs that differ only in Domains must
// produce the same string: that is the partitioned-engine equivalence
// contract.
func closRun(cfg ClosConfig) (string, error) {
	c := Clos(cfg)
	mr, err := c.RegisterServerMR(4 << 20)
	if err != nil {
		return "", err
	}
	sizes := []int{64, 4096, 512, 65536, 1024, 256}
	conns := make([]*Conn, len(c.Clients))
	for i := range c.Clients {
		if conns[i], err = c.Dial(i, len(sizes)+2); err != nil {
			return "", err
		}
	}
	for i, conn := range conns {
		for j, sz := range sizes {
			target := mr.Describe(uint64(i) * (64 << 10))
			if j%2 == 0 {
				err = conn.QP.PostRead(uint64(j), nil, target, sz)
			} else {
				err = conn.QP.PostWrite(uint64(j), nil, target, sz)
			}
			if err != nil {
				return "", err
			}
		}
	}
	c.Run()

	var b strings.Builder
	fmt.Fprintf(&b, "now=%d\n", c.Now())
	for i, conn := range conns {
		fmt.Fprintf(&b, "client%d:", i)
		for _, comp := range conn.CQ.Poll(conn.CQ.Len()) {
			fmt.Fprintf(&b, " %d@%d/%d", comp.WRID, comp.DoneTime, comp.Status)
		}
		cnt := c.Clients[i].NIC().Counters()
		fmt.Fprintf(&b, " tx=%d rx=%d rtx=%d\n", cnt.TxBytes, cnt.RxBytes, cnt.Retransmits)
	}
	for _, sw := range c.Switches {
		var pfc uint64
		for tc := 0; tc < fabric.NumTCs; tc++ {
			pfc += sw.PFCPauses(tc)
		}
		fmt.Fprintf(&b, "%s: fwd=%d/%d pfc=%d\n", sw.Name(), sw.FwdPackets(), sw.FwdBytes(), pfc)
	}
	if err := c.DrainCheck(); err != nil {
		fmt.Fprintf(&b, "drain: %v\n", err)
	}
	return b.String(), nil
}

func smallClos(domains int) ClosConfig {
	return ClosConfig{
		Seed: 7, Profile: nic.CX5,
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		Domains: domains,
	}
}

// TestClosDeterministicAcrossDomains is the tentpole oracle at unit-test
// scale: the same fabric partitioned over 1, 2, 3 and 4 engine domains
// (4 = one per component; 8 exercises the clamp) must produce
// byte-identical completion timelines and counters.
func TestClosDeterministicAcrossDomains(t *testing.T) {
	want, err := closRun(smallClos(1))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(want, "client2:") || strings.Contains(want, "drain:") {
		t.Fatalf("serial baseline looks broken:\n%s", want)
	}
	for _, domains := range []int{2, 3, 4, 8} {
		got, err := closRun(smallClos(domains))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("domains=%d diverged from serial:\n--- serial ---\n%s--- domains=%d ---\n%s",
				domains, want, domains, got)
		}
	}
}

// TestClosRunToRunDeterministic pins that a partitioned run is reproducible
// against itself — goroutine scheduling must not leak into virtual time.
func TestClosRunToRunDeterministic(t *testing.T) {
	a, err := closRun(smallClos(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := closRun(smallClos(3))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("two identical partitioned runs diverged:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}

// TestClosECMPSpreadsAcrossSpines: with several clients on a foreign leaf
// all talking to the server, flow hashing must light up every spine.
func TestClosECMPSpreadsAcrossSpines(t *testing.T) {
	cfg := ClosConfig{Seed: 3, Profile: nic.CX5, Leaves: 2, Spines: 2, HostsPerLeaf: 5}
	c := Clos(cfg)
	mr, err := c.RegisterServerMR(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Clients {
		conn, err := c.Dial(i, 4)
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < 3; w++ {
			if err := conn.QP.PostRead(uint64(w), nil, mr.Describe(0), 2048); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Run()
	for _, sw := range c.Switches[cfg.Leaves:] {
		if sw.FwdPackets() == 0 {
			t.Errorf("ECMP left %s idle — all flows hashed onto one spine", sw.Name())
		}
	}
}

// TestClosDomainClamp: domain counts outside [1, leaves+spines] must clamp,
// and the topology must report its engines accordingly.
func TestClosDomainClamp(t *testing.T) {
	for _, tc := range []struct{ domains, wantEngines int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {4, 4}, {99, 4},
	} {
		c := Clos(smallClos(tc.domains))
		if got := len(c.Engines); got != tc.wantEngines {
			t.Errorf("Domains=%d: %d engines, want %d", tc.domains, got, tc.wantEngines)
		}
		if tc.wantEngines == 1 && c.Group != nil {
			t.Errorf("Domains=%d: single-engine build still got a Group", tc.domains)
		}
		if c.Eng != c.Engines[0] {
			t.Errorf("Domains=%d: Eng is not Engines[0]", tc.domains)
		}
	}
}

// FuzzDomainPartition hammers the equivalence contract over random fabric
// shapes: any (leaves, spines, hosts, seed) combination partitioned over
// any domain count must match its single-engine build byte for byte.
func FuzzDomainPartition(f *testing.F) {
	f.Add(int8(2), int8(2), int8(2), int8(3), int64(7))
	f.Add(int8(3), int8(1), int8(1), int8(2), int64(1))
	f.Add(int8(1), int8(2), int8(2), int8(4), int64(42))
	f.Fuzz(func(t *testing.T, leaves, spines, hosts, domains int8, seed int64) {
		abs := func(v int8) int {
			if v < 0 {
				return -int(v)
			}
			return int(v)
		}
		cfg := ClosConfig{
			Seed: seed, Profile: nic.CX5,
			Leaves:       abs(leaves)%3 + 1,
			Spines:       abs(spines)%2 + 1,
			HostsPerLeaf: abs(hosts)%2 + 1,
			Domains:      1,
		}
		want, err := closRun(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Domains = abs(domains) % 8 // Clos clamps to [1, leaves+spines]
		got, err := closRun(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("leaves=%d spines=%d hosts=%d seed=%d: domains=%d diverged from serial:\n--- serial ---\n%s--- partitioned ---\n%s",
				cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf, seed, cfg.Domains, want, got)
		}
	})
}

// TestInjectLossDecorrelated is the fault-injection regression: InjectLoss
// must derive each per-link stream with sim.DeriveSeed(seed, linkIndex), so
// two links fed identical traffic drop DIFFERENT packets. (A correlated
// version — every link seeded with the bare experiment seed — would drop
// the same packet indices on every link, hiding loss-pattern diversity
// from the loss-grid experiments.)
func TestInjectLossDecorrelated(t *testing.T) {
	eng := sim.NewEngine(1)
	const packets = 400
	delivered := make([]map[int]bool, 2)
	links := make([]*fabric.Link, 2)
	for i := range links {
		i := i
		delivered[i] = map[int]bool{}
		links[i] = fabric.NewLink(eng, fmt.Sprintf("l%d", i), 100, 100*sim.Nanosecond, 0,
			func(p fabric.Packet) { delivered[i][int(p.Dst)] = true })
	}
	c := &Cluster{Eng: eng, Links: links}
	c.InjectLoss(42, 0.3)

	for n := 0; n < packets; n++ {
		for _, l := range links {
			if err := l.Send(fabric.Packet{TC: 0, Bytes: 256, Dst: uint32(n)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng.Run()

	same := true
	for n := 0; n < packets; n++ {
		if delivered[0][n] != delivered[1][n] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("both links dropped the exact same packet indices — per-link fault RNGs are correlated")
	}
	for i, d := range delivered {
		if lost := packets - len(d); lost == 0 || lost == packets {
			t.Fatalf("link %d lost %d/%d packets — fault plan not active or degenerate", i, lost, packets)
		}
	}
	// prob 0 removes the plans.
	c.InjectLoss(42, 0)
	if err := links[0].Send(fabric.Packet{TC: 0, Bytes: 64, Dst: 0}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
}
