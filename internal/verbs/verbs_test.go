package verbs

import (
	"bytes"
	"testing"

	"github.com/thu-has/ragnar/internal/fabric"
	"github.com/thu-has/ragnar/internal/host"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
)

// rig builds a client/server pair on CX-4 with one connected QP each side
// and a remotely accessible server MR.
type rig struct {
	eng      *sim.Engine
	client   *Context
	server   *Context
	cq       *CQ
	qp       *QP
	serverMR *MR
}

func newRig(t *testing.T, prof nic.Profile, sqDepth int) *rig {
	t.Helper()
	eng := sim.NewEngine(42)
	client := NewContext(eng, "client", host.H2, prof, 0)
	server := NewContext(eng, "server", host.H3, prof, 0)
	net := NewNetwork(eng)
	net.ConnectContexts(client, server, fabric.DefaultQoS())

	spd := server.AllocPD()
	mr, err := spd.RegMR(2<<20, host.Page2M, AccessRemoteRead|AccessRemoteWrite|AccessRemoteAtomic)
	if err != nil {
		t.Fatal(err)
	}

	cpd := client.AllocPD()
	cq := client.CreateCQ(0)
	qp, err := client.CreateQP(cpd, cq, QPCap{MaxSendWR: sqDepth})
	if err != nil {
		t.Fatal(err)
	}
	scq := server.CreateCQ(0)
	sqp, err := server.CreateQP(spd, scq, QPCap{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Connect(qp, sqp); err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, client: client, server: server, cq: cq, qp: qp, serverMR: mr}
}

func TestWriteThenReadRoundTrip(t *testing.T) {
	r := newRig(t, nic.CX4, 16)
	payload := []byte("ragnar end to end payload 012345")
	if err := r.qp.PostWrite(1, payload, r.serverMR.Describe(256), len(payload)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	comps := r.cq.Poll(10)
	if len(comps) != 1 || comps[0].Status != nic.StatusOK || comps[0].WRID != 1 {
		t.Fatalf("write completion = %+v", comps)
	}
	// Server memory actually holds the data.
	got := make([]byte, len(payload))
	r.serverMR.Bytes()[0] = r.serverMR.Bytes()[0] // touch
	copy(got, r.serverMR.Bytes()[256:256+len(payload)])
	if !bytes.Equal(got, payload) {
		t.Fatalf("server memory = %q", got)
	}

	// Read it back over RDMA.
	buf := make([]byte, len(payload))
	if err := r.qp.PostRead(2, buf, r.serverMR.Describe(256), len(buf)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	comps = r.cq.Poll(10)
	if len(comps) != 1 || comps[0].Status != nic.StatusOK {
		t.Fatalf("read completion = %+v", comps)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("read back %q", buf)
	}
}

func TestReadLatencyReasonable(t *testing.T) {
	r := newRig(t, nic.CX4, 16)
	if err := r.qp.PostRead(1, nil, r.serverMR.Describe(0), 64); err != nil {
		t.Fatal(err)
	}
	start := r.eng.Now()
	r.eng.Run()
	comp := r.cq.Poll(1)[0]
	lat := comp.DoneTime.Sub(start)
	// A 64 B read RTT on the modelled CX-4 path should land in the
	// single-digit microseconds (real CX-4: ~2 us + software overheads).
	if lat < sim.Microsecond || lat > 20*sim.Microsecond {
		t.Fatalf("64B read latency = %v, want 1-20us", lat)
	}
}

func TestRemoteAccessViolation(t *testing.T) {
	r := newRig(t, nic.CX4, 16)
	// Past the end of the MR.
	if err := r.qp.PostRead(1, nil, r.serverMR.Describe(r.serverMR.Size()-4), 64); err != nil {
		t.Fatal(err)
	}
	// Bad rkey.
	if err := r.qp.PostRead(2, nil, RemoteBuf{RKey: 0xdead, Addr: r.serverMR.Base()}, 64); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	comps := r.cq.Poll(10)
	if len(comps) != 2 {
		t.Fatalf("got %d completions", len(comps))
	}
	for _, c := range comps {
		if c.Status != nic.StatusRemoteAccessError {
			t.Fatalf("completion %d status = %v, want REMOTE_ACCESS_ERROR", c.WRID, c.Status)
		}
	}
}

func TestPermissionEnforcement(t *testing.T) {
	eng := sim.NewEngine(1)
	client := NewContext(eng, "c", host.H2, nic.CX5, 0)
	server := NewContext(eng, "s", host.H3, nic.CX5, 0)
	NewNetwork(eng).ConnectContexts(client, server, fabric.DefaultQoS())
	spd := server.AllocPD()
	roMR, err := spd.RegMR(1<<20, host.Page2M, AccessRemoteRead) // read-only
	if err != nil {
		t.Fatal(err)
	}
	cq := client.CreateCQ(0)
	qp, _ := client.CreateQP(client.AllocPD(), cq, QPCap{})
	sqp, _ := server.CreateQP(spd, server.CreateCQ(0), QPCap{})
	if err := Connect(qp, sqp); err != nil {
		t.Fatal(err)
	}
	qp.PostWrite(1, []byte{1}, roMR.Describe(0), 1)
	qp.PostRead(2, nil, roMR.Describe(0), 8)
	qp.PostAtomicFAA(3, roMR.Describe(0), 1)
	eng.Run()
	comps := cq.Poll(10)
	if len(comps) != 3 {
		t.Fatalf("got %d completions", len(comps))
	}
	byID := map[uint64]nic.Status{}
	for _, c := range comps {
		byID[c.WRID] = c.Status
	}
	if byID[1] != nic.StatusRemoteAccessError {
		t.Error("write to read-only MR should fail")
	}
	if byID[2] != nic.StatusOK {
		t.Error("read from read-only MR should succeed")
	}
	if byID[3] != nic.StatusRemoteAccessError {
		t.Error("atomic on non-atomic MR should fail")
	}
}

func TestAtomicFAAandCAS(t *testing.T) {
	r := newRig(t, nic.CX6, 16)
	// FAA +5 twice.
	r.qp.PostAtomicFAA(1, r.serverMR.Describe(64), 5)
	r.eng.Run()
	r.qp.PostAtomicFAA(2, r.serverMR.Describe(64), 5)
	r.eng.Run()
	comps := r.cq.Poll(10)
	if len(comps) != 2 {
		t.Fatalf("%d completions", len(comps))
	}
	if comps[0].Result != 0 || comps[1].Result != 5 {
		t.Fatalf("FAA results = %d, %d", comps[0].Result, comps[1].Result)
	}
	// CAS: expect 10 -> swap to 99.
	r.qp.PostAtomicCAS(3, r.serverMR.Describe(64), 10, 99)
	r.eng.Run()
	c := r.cq.Poll(1)[0]
	if c.Result != 10 {
		t.Fatalf("CAS original = %d", c.Result)
	}
	// Failed CAS leaves the value.
	r.qp.PostAtomicCAS(4, r.serverMR.Describe(64), 10, 1)
	r.eng.Run()
	c = r.cq.Poll(1)[0]
	if c.Result != 99 {
		t.Fatalf("failed CAS original = %d", c.Result)
	}
}

func TestSendRecv(t *testing.T) {
	eng := sim.NewEngine(1)
	client := NewContext(eng, "c", host.H2, nic.CX5, 0)
	server := NewContext(eng, "s", host.H3, nic.CX5, 0)
	NewNetwork(eng).ConnectContexts(client, server, fabric.DefaultQoS())
	cq := client.CreateCQ(0)
	qp, _ := client.CreateQP(client.AllocPD(), cq, QPCap{})
	sqp, _ := server.CreateQP(server.AllocPD(), server.CreateCQ(0), QPCap{})
	if err := Connect(qp, sqp); err != nil {
		t.Fatal(err)
	}
	recvBuf := make([]byte, 32)
	sqp.PostRecv(recvBuf)
	var got []byte
	sqp.OnRecv = func(ev nic.RecvEvent) {
		got = append([]byte(nil), ev.Data...)
	}
	msg := []byte("shuffle partition 7")
	if err := qp.PostSend(1, msg); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !bytes.Equal(got, msg) {
		t.Fatalf("recv event data = %q", got)
	}
	if !bytes.Equal(recvBuf[:len(msg)], msg) {
		t.Fatalf("recv buffer = %q", recvBuf[:len(msg)])
	}
	if len(cq.Poll(10)) != 1 {
		t.Fatal("sender missing completion")
	}
}

func TestSQDepthEnforced(t *testing.T) {
	r := newRig(t, nic.CX4, 4)
	for i := 0; i < 4; i++ {
		if err := r.qp.PostRead(uint64(i), nil, r.serverMR.Describe(0), 64); err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
	}
	if err := r.qp.PostRead(99, nil, r.serverMR.Describe(0), 64); err != ErrSQFull {
		t.Fatalf("5th post error = %v, want ErrSQFull", err)
	}
	if r.qp.Outstanding() != 4 {
		t.Fatalf("outstanding = %d", r.qp.Outstanding())
	}
	r.eng.Run()
	if r.qp.Outstanding() != 0 {
		t.Fatalf("outstanding after drain = %d", r.qp.Outstanding())
	}
	if err := r.qp.PostRead(100, nil, r.serverMR.Describe(0), 64); err != nil {
		t.Fatalf("post after drain: %v", err)
	}
}

func TestUnconnectedQPErrors(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewContext(eng, "c", host.H2, nic.CX4, 0)
	qp, _ := c.CreateQP(c.AllocPD(), c.CreateCQ(0), QPCap{})
	if err := qp.PostRead(1, nil, RemoteBuf{RKey: 1, Addr: 1}, 8); err == nil {
		t.Fatal("post on unconnected QP should error")
	}
}

func TestGrainCountersPopulate(t *testing.T) {
	r := newRig(t, nic.CX4, 16)
	for i := 0; i < 5; i++ {
		r.qp.PostRead(uint64(i), nil, r.serverMR.Describe(uint64(i*64)), 64)
	}
	r.eng.Run()
	cnt := r.client.NIC().Counters()
	if cnt.TxMsgs[nic.OpRead] != 5 {
		t.Fatalf("client Grain-II read counter = %d", cnt.TxMsgs[nic.OpRead])
	}
	if cnt.PerQPMsgs[r.qp.QPN()] != 5 {
		t.Fatalf("client Grain-III QP counter = %d", cnt.PerQPMsgs[r.qp.QPN()])
	}
	scnt := r.server.NIC().Counters()
	if scnt.PerMRBytes[r.serverMR.RKey()] != 5*64 {
		t.Fatalf("server Grain-III MR counter = %d", scnt.PerMRBytes[r.serverMR.RKey()])
	}
	if scnt.Responses != 5 {
		t.Fatalf("server responses = %d", scnt.Responses)
	}
}

// Pipelined probes complete in submission order and the per-probe latency
// grows with queue depth — the foundation of the ULI metric.
func TestLatencyGrowsWithQueueDepth(t *testing.T) {
	measure := func(depth int) sim.Duration {
		r := newRig(t, nic.CX4, depth+1)
		// Warm the MTT/QPC caches so cold misses don't pollute the
		// queue-depth signal.
		r.qp.PostRead(1000, nil, r.serverMR.Describe(0), 64)
		r.eng.Run()
		r.cq.Poll(1)
		// Fill the queue, then measure the last probe.
		for i := 0; i < depth; i++ {
			r.qp.PostRead(uint64(i), nil, r.serverMR.Describe(0), 64)
		}
		r.qp.PostRead(99, nil, r.serverMR.Describe(0), 64)
		r.eng.Run()
		for _, c := range r.cq.Poll(depth + 1) {
			if c.WRID == 99 {
				return c.DoneTime.Sub(c.PostTime)
			}
		}
		t.Fatal("probe completion missing")
		return 0
	}
	l1 := measure(0)
	l8 := measure(8)
	l32 := measure(32)
	if !(l1 < l8 && l8 < l32) {
		t.Fatalf("latency not increasing with depth: %v %v %v", l1, l8, l32)
	}
	// Linearity: l32-l8 should be roughly 24/7 of l8-l1 (constant ULI).
	uli1 := float64(l8-l1) / 7
	uli2 := float64(l32-l8) / 24
	ratio := uli2 / uli1
	if ratio < 0.6 || ratio > 1.6 {
		t.Fatalf("ULI not roughly constant: %v vs %v", uli1, uli2)
	}
}

func TestSetTCFlowsToCounters(t *testing.T) {
	r := newRig(t, nic.CX5, 8)
	r.qp.SetTC(6)
	if err := r.qp.PostWrite(1, []byte{1, 2, 3, 4}, r.serverMR.Describe(0), 4); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if r.server.NIC().Counters().RxBytesTC[6] == 0 {
		t.Fatal("traffic class did not propagate to server counters")
	}
}

func TestCQOverrunInvariants(t *testing.T) {
	cases := []struct {
		name         string
		cap          int
		pushes       int
		wantPolled   int
		wantOverruns uint64
	}{
		{"below capacity", 4, 3, 3, 0},
		{"at capacity", 4, 4, 4, 0},
		{"one over", 4, 5, 4, 1},
		{"far over", 2, 9, 2, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine(1)
			c := NewContext(eng, "c", host.H2, nic.CX4, 0)
			cq := c.CreateCQ(tc.cap)
			for i := 0; i < tc.pushes; i++ {
				cq.push(nic.Completion{WRID: uint64(i)})
			}
			got := cq.Poll(tc.pushes + 1)
			if len(got) != tc.wantPolled {
				t.Fatalf("polled %d CQEs, want %d", len(got), tc.wantPolled)
			}
			// An overrun drops the newcomer: every CQE accepted below
			// capacity survives, in order — nothing is silently lost.
			for i, comp := range got {
				if comp.WRID != uint64(i) {
					t.Fatalf("CQE %d has WRID %d, want %d", i, comp.WRID, i)
				}
			}
			if cq.Overruns() != tc.wantOverruns {
				t.Fatalf("Overruns = %d, want %d", cq.Overruns(), tc.wantOverruns)
			}
			if got := c.NIC().Counters().CQOverruns; got != tc.wantOverruns {
				t.Fatalf("NIC CQOverruns = %d, want %d", got, tc.wantOverruns)
			}
		})
	}
}

// An armed Notify consumer takes every completion straight off the ring:
// nothing queues, nothing overruns, no matter how far past the CQ's
// capacity the burst runs.
func TestCQArmedNotifyNeverOverruns(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewContext(eng, "c", host.H2, nic.CX4, 0)
	cq := c.CreateCQ(2)
	var notified int
	cq.Notify = func(nic.Completion) { notified++ }
	for i := 0; i < 9; i++ {
		cq.push(nic.Completion{WRID: uint64(i)})
	}
	if notified != 9 {
		t.Fatalf("Notify fired %d times, want 9", notified)
	}
	if cq.Overruns() != 0 || cq.Len() != 0 {
		t.Fatalf("armed CQ overran (%d) or buffered (%d)", cq.Overruns(), cq.Len())
	}
}

// A QP whose CQ overran must not wedge: the WQEs still retire on the NIC,
// and once the CQ is drained new completions land normally again.
func TestCQOverrunDrainedQPRecovers(t *testing.T) {
	eng := sim.NewEngine(42)
	client := NewContext(eng, "client", host.H2, nic.CX4, 0)
	server := NewContext(eng, "server", host.H3, nic.CX4, 0)
	net := NewNetwork(eng)
	net.ConnectContexts(client, server, fabric.DefaultQoS())

	spd := server.AllocPD()
	mr, err := spd.RegMR(2<<20, host.Page2M, AccessRemoteRead|AccessRemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	cpd := client.AllocPD()
	cq := client.CreateCQ(2)
	qp, err := client.CreateQP(cpd, cq, QPCap{MaxSendWR: 16})
	if err != nil {
		t.Fatal(err)
	}
	sqp, err := server.CreateQP(spd, server.CreateCQ(0), QPCap{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Connect(qp, sqp); err != nil {
		t.Fatal(err)
	}

	payload := []byte("01234567")
	for i := 0; i < 6; i++ {
		if err := qp.PostWrite(uint64(i), payload, mr.Describe(0), len(payload)); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if n := qp.Outstanding(); n != 0 {
		t.Fatalf("QP stuck after CQ overrun: %d WQEs still in flight", n)
	}
	if got := cq.Poll(10); len(got) != 2 {
		t.Fatalf("polled %d CQEs from overrun CQ, want 2", len(got))
	}
	if cq.Overruns() != 4 {
		t.Fatalf("Overruns = %d, want 4", cq.Overruns())
	}

	// Drained: the next completions are accepted, and the overrun counter
	// stays put.
	for i := 6; i < 8; i++ {
		if err := qp.PostWrite(uint64(i), payload, mr.Describe(0), len(payload)); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	got := cq.Poll(10)
	if len(got) != 2 || got[0].WRID != 6 || got[1].WRID != 7 {
		t.Fatalf("post-drain completions = %+v, want WRIDs 6,7", got)
	}
	if cq.Overruns() != 4 {
		t.Fatalf("Overruns after recovery = %d, want 4", cq.Overruns())
	}
}

func TestDeregMRRevokesAccess(t *testing.T) {
	r := newRig(t, nic.CX4, 8)
	r.serverMR.DeregMR()
	if err := r.qp.PostRead(1, nil, r.serverMR.Describe(0), 8); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	comps := r.cq.Poll(1)
	if len(comps) != 1 || comps[0].Status != nic.StatusRemoteAccessError {
		t.Fatalf("access after DeregMR: %+v", comps)
	}
}

func TestRemoteBufAt(t *testing.T) {
	rb := RemoteBuf{RKey: 5, Addr: 1000}
	if got := rb.At(24); got.Addr != 1024 || got.RKey != 5 {
		t.Fatalf("At = %+v", got)
	}
}
