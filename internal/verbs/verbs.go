// Package verbs is a from-scratch RDMA verbs layer over the simulated NIC
// and fabric: protection domains, memory regions with rkeys, reliable-
// connected queue pairs, completion queues and the post/poll interface —
// the same surface libibverbs gives the paper's attack code. Everything is
// single-threaded inside the simulation engine, mirroring the paper's
// single-threaded microbenchmarks.
package verbs

import (
	"errors"
	"fmt"

	"github.com/thu-has/ragnar/internal/fabric"
	"github.com/thu-has/ragnar/internal/host"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/trace"
)

// Access flags for memory registration (subset of IBV_ACCESS_*).
type Access uint32

// Access permissions.
const (
	AccessLocalWrite Access = 1 << iota
	AccessRemoteRead
	AccessRemoteWrite
	AccessRemoteAtomic
)

// Context is a device context: one host plus its RNIC.
type Context struct {
	Name string
	eng  *sim.Engine
	hst  *host.Host
	dev  *nic.NIC

	nextPD  uint32
	nextKey uint32
	nextQPN uint32

	rec      *trace.Recorder
	recActor uint16
}

// NewContext opens a device context on a fresh host with the given NIC
// profile. numa is the NUMA node the NIC attaches to.
func NewContext(eng *sim.Engine, name string, hostCfg host.Config, prof nic.Profile, numa int) *Context {
	h := host.New(eng, hostCfg)
	return &Context{
		Name: name,
		eng:  eng,
		hst:  h,
		dev:  nic.New(eng, name+"/nic", prof, h, numa),
		// Key/QPN namespaces start at generation-looking values, as real
		// stacks do.
		nextKey: 0x1000,
		nextQPN: 0x40,
	}
}

// Engine returns the simulation engine the context runs on.
func (c *Context) Engine() *sim.Engine { return c.eng }

// Host returns the underlying host model.
func (c *Context) Host() *host.Host { return c.hst }

// NIC returns the underlying adapter model (reverse-engineering code
// inspects its TPU and counters).
func (c *Context) NIC() *nic.NIC { return c.dev }

// SetRecorder attaches a flight recorder to the context and its NIC: the
// verbs layer emits WQE post events and post→completion spans, the NIC its
// datapath events. Nil disables tracing.
func (c *Context) SetRecorder(r *trace.Recorder) {
	c.rec = r
	c.recActor = r.RegisterActor(c.Name + "/verbs")
	c.dev.SetRecorder(r)
}

// PD is a protection domain.
type PD struct {
	ctx *Context
	id  uint32
}

// AllocPD allocates a protection domain.
func (c *Context) AllocPD() *PD {
	c.nextPD++
	return &PD{ctx: c, id: c.nextPD}
}

// MR is a registered memory region.
type MR struct {
	pd     *PD
	region *host.Region
	rkey   uint32
	lkey   uint32
	access Access
}

// RegMR allocates size bytes on the given page size and registers them for
// RDMA access. The paper's Grain-III/IV setup uses 2 MB huge pages.
func (pd *PD) RegMR(size uint64, page host.PageSize, access Access) (*MR, error) {
	region, err := pd.ctx.hst.Alloc(size, page, 0)
	if err != nil {
		return nil, fmt.Errorf("verbs: %w", err)
	}
	pd.ctx.nextKey++
	mr := &MR{pd: pd, region: region, rkey: pd.ctx.nextKey, lkey: pd.ctx.nextKey, access: access}
	err = pd.ctx.dev.RegisterMR(nic.MRInfo{
		Key:         mr.rkey,
		Base:        region.Base(),
		Size:        region.Size(),
		Region:      region,
		PageSize:    uint64(page),
		RemoteRead:  access&AccessRemoteRead != 0,
		RemoteWrite: access&AccessRemoteWrite != 0,
		Atomic:      access&AccessRemoteAtomic != 0,
	})
	if err != nil {
		pd.ctx.hst.Free(region)
		return nil, err
	}
	return mr, nil
}

// DeregMR unregisters and unpins the region.
func (mr *MR) DeregMR() {
	mr.pd.ctx.dev.DeregisterMR(mr.rkey)
	mr.pd.ctx.hst.Free(mr.region)
}

// RKey returns the remote access key.
func (mr *MR) RKey() uint32 { return mr.rkey }

// Base returns the region's base address (exchanged out of band, as real
// RDMA applications do).
func (mr *MR) Base() uint64 { return mr.region.Base() }

// Size returns the registered size.
func (mr *MR) Size() uint64 { return mr.region.Size() }

// Addr returns the address at the given offset into the MR.
func (mr *MR) Addr(offset uint64) uint64 { return mr.region.Base() + offset }

// Bytes exposes the backing memory for local access.
func (mr *MR) Bytes() []byte { return mr.region.Bytes() }

// RemoteBuf names a remote target: rkey plus address, the pair a client
// learns during connection setup.
type RemoteBuf struct {
	RKey uint32
	Addr uint64
}

// At returns the remote buffer shifted by off bytes.
func (r RemoteBuf) At(off uint64) RemoteBuf { return RemoteBuf{RKey: r.RKey, Addr: r.Addr + off} }

// Describe returns the MR's remote handle at the given offset.
func (mr *MR) Describe(offset uint64) RemoteBuf {
	return RemoteBuf{RKey: mr.rkey, Addr: mr.region.Base() + offset}
}

// CQ is a completion queue.
type CQ struct {
	ctx      *Context
	entries  []nic.Completion
	cap      int
	overruns uint64
	// cnt is the CQ's consumer index: the NIC bumps it on every completion
	// delivered to a QP bound to this CQ, and WAIT WQEs block on it — the
	// cross-QP coupling point of the RedN chain model.
	cnt *nic.CQCounter
	// Notify, when set, is an armed consumer: every completion is handed
	// to it directly instead of queueing — the simulation analogue of a
	// completion-channel handler that always keeps up, letting measurement
	// loops react without busy-polling virtual time. Only unarmed
	// (polling-mode) CQs buffer entries and can therefore overrun.
	Notify func(nic.Completion)
}

// CreateCQ creates a completion queue holding up to capacity entries. A
// push onto a full CQ is an overrun: the new CQE is dropped and counted
// (here and in the NIC's CQOverruns counter) — the simulation analogue of
// IBV_EVENT_CQ_ERR. The WQE itself still retires on the NIC, so the QP
// keeps flowing; only the notification is lost, exactly the failure mode
// a CQ-exhaustion aggressor induces for its victims.
func (c *Context) CreateCQ(capacity int) *CQ {
	if capacity <= 0 {
		capacity = 4096
	}
	return &CQ{ctx: c, cap: capacity, cnt: nic.NewCQCounter()}
}

// ConsumerIndex returns the number of completions delivered on this CQ so
// far — the counter WAIT WQEs compare their threshold against.
func (q *CQ) ConsumerIndex() uint64 { return q.cnt.Count() }

func (q *CQ) push(comp nic.Completion) {
	q.ctx.rec.Emit(trace.Event{At: int64(comp.DoneTime), Kind: trace.KindWQESpan,
		Actor: q.ctx.recActor, QPN: comp.QPN, Val: comp.WRID, Aux: uint64(comp.Status),
		Dur: int64(comp.DoneTime.Sub(comp.PostTime)), TC: -1})
	if q.Notify != nil {
		q.Notify(comp)
		return
	}
	if len(q.entries) >= q.cap {
		q.overruns++
		q.ctx.dev.NoteCQOverrun()
		return
	}
	q.entries = append(q.entries, comp)
}

// Overruns reports completions dropped because the CQ was full.
func (q *CQ) Overruns() uint64 { return q.overruns }

// Poll removes and returns up to n completions. It allocates a fresh slice
// per call; hot measurement loops use PollInto instead.
func (q *CQ) Poll(n int) []nic.Completion {
	if n > len(q.entries) {
		n = len(q.entries)
	}
	out := append([]nic.Completion(nil), q.entries[:n]...)
	q.entries = q.entries[n:]
	return out
}

// PollInto drains up to len(dst) completions into dst and returns how many
// were copied. The remaining entries are shifted down in place, so a
// steady-state poll loop never allocates (benchmark-guarded at 0 allocs/op
// by BenchmarkCQPollInto).
func (q *CQ) PollInto(dst []nic.Completion) int {
	n := copy(dst, q.entries)
	if n == 0 {
		return 0
	}
	rem := copy(q.entries, q.entries[n:])
	q.entries = q.entries[:rem]
	return n
}

// Len reports queued completions.
func (q *CQ) Len() int { return len(q.entries) }

// QPCap configures queue pair limits.
type QPCap struct {
	MaxSendWR int // send queue depth (the paper's len_sq,max knob)
	MaxRecvWR int
}

// QP is a reliable-connected queue pair.
type QP struct {
	ctx      *Context
	qpn      uint32
	pd       *PD
	sendCQ   *CQ
	caps     QPCap
	inFlight int
	tc       int
	// OnRecv, when set, receives inbound SEND/WRITE events on this QP.
	OnRecv func(nic.RecvEvent)
	peer   *QP
}

// CreateQP creates a queue pair bound to a send CQ.
func (c *Context) CreateQP(pd *PD, sendCQ *CQ, caps QPCap) (*QP, error) {
	if caps.MaxSendWR <= 0 {
		caps.MaxSendWR = 128
	}
	if caps.MaxRecvWR <= 0 {
		caps.MaxRecvWR = 128
	}
	c.nextQPN++
	qp := &QP{ctx: c, qpn: c.nextQPN, pd: pd, sendCQ: sendCQ, caps: caps}
	err := c.dev.CreateQP(qp.qpn,
		func(comp nic.Completion) {
			qp.inFlight--
			sendCQ.push(comp)
		},
		func(ev nic.RecvEvent) {
			if qp.OnRecv != nil {
				qp.OnRecv(ev)
			}
		})
	if err != nil {
		return nil, err
	}
	// Bind the send CQ's consumer index so cross-QP WAITs can observe this
	// QP's completions.
	if err := c.dev.BindQPCounter(qp.qpn, sendCQ.cnt); err != nil {
		return nil, err
	}
	return qp, nil
}

// QPN returns the queue pair number.
func (qp *QP) QPN() uint32 { return qp.qpn }

// SetTC sets the traffic class (802.1p priority) for subsequent posts.
func (qp *QP) SetTC(tc int) { qp.tc = tc }

// ErrSQFull is returned when the send queue is at MaxSendWR.
var ErrSQFull = errors.New("verbs: send queue full")

// WCRetryExcErr mirrors IBV_WC_RETRY_EXC_ERR: the transport exhausted its
// retry budget and the WQE completed in error; the QP is in the error state.
const WCRetryExcErr = nic.StatusRetryExcErr

// SetRetry tunes the QP's transport retry behaviour — the simulator's
// ibv_modify_qp timeout/retry_cnt. Zero values keep the NIC defaults.
func (qp *QP) SetRetry(timeout sim.Duration, limit int) error {
	return qp.ctx.dev.SetQPRetry(qp.qpn, timeout, limit)
}

// Outstanding reports WQEs posted but not yet completed — the paper's
// len_sq for the ULI computation.
func (qp *QP) Outstanding() int { return qp.inFlight }

// post validates and submits a WQE.
func (qp *QP) post(wqe *nic.WQE) error {
	if qp.peer == nil {
		return errors.New("verbs: QP not connected")
	}
	if qp.inFlight >= qp.caps.MaxSendWR {
		return ErrSQFull
	}
	wqe.TC = qp.tc
	if err := qp.ctx.dev.PostSend(qp.qpn, wqe); err != nil {
		return err
	}
	qp.ctx.rec.Emit(trace.Event{At: int64(qp.ctx.eng.Now()), Kind: trace.KindWQEPost,
		Actor: qp.ctx.recActor, QPN: qp.qpn, Val: wqe.WRID, TC: int8(qp.tc)})
	qp.inFlight++
	return nil
}

// PostRead posts an RDMA Read of length bytes from the remote buffer into
// local (which may be nil when the caller only measures timing).
func (qp *QP) PostRead(wrid uint64, local []byte, remote RemoteBuf, length int) error {
	return qp.post(&nic.WQE{
		WRID: wrid, Op: nic.OpRead, LocalData: local,
		RemoteKey: remote.RKey, RemoteAddr: remote.Addr, Length: length,
	})
}

// PostWrite posts an RDMA Write of data to the remote buffer.
func (qp *QP) PostWrite(wrid uint64, data []byte, remote RemoteBuf, length int) error {
	return qp.post(&nic.WQE{
		WRID: wrid, Op: nic.OpWrite, LocalData: data,
		RemoteKey: remote.RKey, RemoteAddr: remote.Addr, Length: length,
	})
}

// PostSend posts a two-sided SEND carrying data.
func (qp *QP) PostSend(wrid uint64, data []byte) error {
	return qp.post(&nic.WQE{WRID: wrid, Op: nic.OpSend, LocalData: data, Length: len(data)})
}

// PostAtomicFAA posts a fetch-and-add of delta on the remote 8-byte word.
func (qp *QP) PostAtomicFAA(wrid uint64, remote RemoteBuf, delta uint64) error {
	return qp.post(&nic.WQE{
		WRID: wrid, Op: nic.OpAtomicFAA,
		RemoteKey: remote.RKey, RemoteAddr: remote.Addr, Length: 8, CompareAdd: delta,
	})
}

// PostAtomicCAS posts a compare-and-swap on the remote 8-byte word.
func (qp *QP) PostAtomicCAS(wrid uint64, remote RemoteBuf, compare, swap uint64) error {
	return qp.post(&nic.WQE{
		WRID: wrid, Op: nic.OpAtomicCAS,
		RemoteKey: remote.RKey, RemoteAddr: remote.Addr, Length: 8,
		CompareAdd: compare, Swap: swap,
	})
}

// PostRecv queues a receive buffer for inbound SENDs.
func (qp *QP) PostRecv(buf []byte) error {
	return qp.ctx.dev.PostRecv(qp.qpn, buf)
}

// --- Staged posting: the post ≠ enable half of the send-queue state
// machine. Stage* appends a WQE to the SQ ring without ringing the
// doorbell; Ring enables staged entries; PostWait/PostEnable stage and ring
// the RedN management verbs in one step. Staged-but-unenabled entries are
// rewritable through an ExposeSQ window (WQE self-modification). ---

// stage validates a WQE and appends it to the send queue without enabling
// it. Every staged entry eventually retires with exactly one CQE (once
// enabled), so it occupies a MaxSendWR slot from staging on.
func (qp *QP) stage(wqe *nic.WQE) error {
	if qp.inFlight >= qp.caps.MaxSendWR {
		return ErrSQFull
	}
	wqe.TC = qp.tc
	if err := qp.ctx.dev.StageSend(qp.qpn, wqe); err != nil {
		return err
	}
	qp.ctx.rec.Emit(trace.Event{At: int64(qp.ctx.eng.Now()), Kind: trace.KindWQEPost,
		Actor: qp.ctx.recActor, QPN: qp.qpn, Val: wqe.WRID, TC: int8(qp.tc)})
	qp.inFlight++
	return nil
}

// Ring advances the QP's doorbell over k staged entries (k <= 0 enables
// everything staged).
func (qp *QP) Ring(k int) error {
	return qp.ctx.dev.RingDoorbell(qp.qpn, k)
}

// StageWrite stages an RDMA Write without enabling it.
func (qp *QP) StageWrite(wrid uint64, data []byte, remote RemoteBuf, length int) error {
	if qp.peer == nil {
		return errors.New("verbs: QP not connected")
	}
	return qp.stage(&nic.WQE{
		WRID: wrid, Op: nic.OpWrite, LocalData: data,
		RemoteKey: remote.RKey, RemoteAddr: remote.Addr, Length: length,
	})
}

// StageRead stages an RDMA Read without enabling it.
func (qp *QP) StageRead(wrid uint64, local []byte, remote RemoteBuf, length int) error {
	if qp.peer == nil {
		return errors.New("verbs: QP not connected")
	}
	return qp.stage(&nic.WQE{
		WRID: wrid, Op: nic.OpRead, LocalData: local,
		RemoteKey: remote.RKey, RemoteAddr: remote.Addr, Length: length,
	})
}

// StageReadInto stages an RDMA Read whose payload lands inside a local
// registered MR at localOff — the self-modification source: when the target
// range lies in an ExposeSQ window, the landing rewrites the staged WQEs it
// covers before their doorbell.
func (qp *QP) StageReadInto(wrid uint64, local *MR, localOff uint64, remote RemoteBuf, length int) error {
	if qp.peer == nil {
		return errors.New("verbs: QP not connected")
	}
	return qp.stage(&nic.WQE{
		WRID: wrid, Op: nic.OpRead,
		RemoteKey: remote.RKey, RemoteAddr: remote.Addr, Length: length,
		LocalKey: local.lkey, LocalAddr: local.Base() + localOff,
	})
}

// PostReadInto posts (stage + ring) an RDMA Read landing inside a local MR.
func (qp *QP) PostReadInto(wrid uint64, local *MR, localOff uint64, remote RemoteBuf, length int) error {
	if err := qp.StageReadInto(wrid, local, localOff, remote, length); err != nil {
		return err
	}
	return qp.Ring(1)
}

// StageCAS stages a compare-and-swap without enabling it.
func (qp *QP) StageCAS(wrid uint64, remote RemoteBuf, compare, swap uint64) error {
	if qp.peer == nil {
		return errors.New("verbs: QP not connected")
	}
	return qp.stage(&nic.WQE{
		WRID: wrid, Op: nic.OpAtomicCAS,
		RemoteKey: remote.RKey, RemoteAddr: remote.Addr, Length: 8,
		CompareAdd: compare, Swap: swap,
	})
}

// StageWait stages a WAIT: the send queue blocks at this entry until cq's
// consumer index reaches thresh. The CQ must live on the same NIC (real
// WAIT WRs are same-device cross-queue).
func (qp *QP) StageWait(wrid uint64, cq *CQ, thresh uint64) error {
	if cq.ctx.dev != qp.ctx.dev {
		return errors.New("verbs: WAIT requires a CQ on the same NIC")
	}
	return qp.stage(&nic.WQE{WRID: wrid, Op: nic.OpWait, WaitCQ: cq.cnt, WaitThresh: thresh})
}

// StageEnable stages an ENABLE: when executed it advances target's doorbell
// by k entries (0 = everything staged there). Same-NIC only.
func (qp *QP) StageEnable(wrid uint64, target *QP, k int) error {
	if target.ctx.dev != qp.ctx.dev {
		return errors.New("verbs: ENABLE requires a target QP on the same NIC")
	}
	return qp.stage(&nic.WQE{WRID: wrid, Op: nic.OpEnable, TargetQPN: target.qpn, EnableCount: k})
}

// PostWait stages and immediately enables a WAIT WQE.
func (qp *QP) PostWait(wrid uint64, cq *CQ, thresh uint64) error {
	if err := qp.StageWait(wrid, cq, thresh); err != nil {
		return err
	}
	return qp.Ring(1)
}

// PostEnable stages and immediately enables an ENABLE WQE.
func (qp *QP) PostEnable(wrid uint64, target *QP, k int) error {
	if err := qp.StageEnable(wrid, target, k); err != nil {
		return err
	}
	return qp.Ring(1)
}

// ExposeSQ registers mr as a self-modification window over this QP's send
// queue: slot i of the window (64 bytes each) shadows staged entry i, and
// RDMA writes (or PostReadInto landings) covering a slot rewrite the
// corresponding not-yet-enabled WQE's fields.
func (qp *QP) ExposeSQ(mr *MR) error {
	slots := int(mr.Size() / nic.SQSlotBytes)
	return qp.ctx.dev.RegisterSQWindow(qp.qpn, mr.rkey, mr.Base(), slots)
}

// SQDepth reports the QP's staged and enabled entry counts.
func (qp *QP) SQDepth() (staged, enabled int) {
	return qp.ctx.dev.SQDepth(qp.qpn)
}

// Destroy tears the QP down on its NIC: the retransmit timer is cancelled,
// outstanding WQEs are dropped without completions, and the QPN is freed.
// Mirrors ibv_destroy_qp — responses still in flight for the old QPN are
// silently discarded on arrival. Both sides of the connection are unwired:
// leaving the peer's pointer at a destroyed QP would let a later Connect on
// the peer silently resurrect it.
func (qp *QP) Destroy() error {
	if p := qp.peer; p != nil && p.peer == qp {
		p.peer = nil
	}
	qp.peer = nil
	return qp.ctx.dev.DestroyQP(qp.qpn)
}

// Network wires contexts together with full-duplex links, and owns the
// fabric address space: every context that joins a topology (directly or
// through a switch) gets a unique address stamped into its NIC, which
// switches use for destination forwarding. Assignment is a bare counter —
// no RNG — so wiring order alone determines addresses and sweeps stay
// deterministic.
type Network struct {
	eng *sim.Engine
	// PropDelay is the one-way propagation delay applied to new links.
	PropDelay sim.Duration

	nextAddr uint32
}

// NewNetwork creates a network builder. Default propagation delay is a
// typical same-rack 500 ns.
func NewNetwork(eng *sim.Engine) *Network {
	return &Network{eng: eng, PropDelay: 500 * sim.Nanosecond}
}

// ConnectContexts creates the wire between two contexts (idempotent per
// pair). Line rate follows the slower NIC. qos applies to both directions.
// The returned wire exposes both links so callers can install fault plans
// or read drop counters.
func (n *Network) ConnectContexts(a, b *Context, qos fabric.QoSConfig) *fabric.Wire {
	rate := a.dev.Profile().LineRateGbps
	if rb := b.dev.Profile().LineRateGbps; rb < rate {
		rate = rb
	}
	ab := fabric.NewLink(n.eng, a.Name+"->"+b.Name, rate, n.PropDelay, 0, nic.Deliver)
	ba := fabric.NewLink(n.eng, b.Name+"->"+a.Name, rate, n.PropDelay, 0, nic.Deliver)
	ab.SetQoS(qos)
	ba.SetQoS(qos)
	a.dev.AddPeerLink(b.dev, ab)
	b.dev.AddPeerLink(a.dev, ba)
	// Direct links ignore addresses, but assign them anyway so a context
	// wired point-to-point can later also hang off a switch.
	n.Addr(a)
	n.Addr(b)
	return &fabric.Wire{AtoB: ab, BtoA: ba}
}

// Addr returns the fabric address of a context's NIC, assigning the next
// free one on first use.
func (n *Network) Addr(c *Context) uint32 {
	if c.dev.Addr() == 0 {
		n.nextAddr++
		c.dev.SetAddr(n.nextAddr)
	}
	return c.dev.Addr()
}

// AttachToSwitch hangs a context off a switch port: a new egress port on the
// switch clocking at the NIC's line rate delivers to the NIC, an uplink from
// the NIC feeds the switch's ingress (and is the PFC pause target), and the
// switch learns a route for the context's address. It returns the port index
// and the uplink. Reachability is separate — callers make peers visible to
// each other with SetPath once both are attached.
func (n *Network) AttachToSwitch(c *Context, sw *fabric.Switch, qos fabric.QoSConfig) (port int, up *fabric.Link) {
	rate := c.dev.Profile().LineRateGbps
	port = sw.AddPort(c.Name, rate, n.PropDelay, 0, qos, nic.Deliver)
	up = fabric.NewLink(n.eng, c.Name+"->"+sw.Name(), rate, n.PropDelay, 0, sw.Ingress)
	up.SetQoS(qos)
	sw.SetUpstream(port, up)
	sw.Route(n.Addr(c), port)
	return port, up
}

// SetPath makes dst reachable from src through the given first-hop link
// (typically src's switch uplink). One physical uplink serves any number of
// destinations.
func (n *Network) SetPath(src, dst *Context, firstHop *fabric.Link) {
	n.Addr(dst) // ensure the destination is addressable before traffic flows
	src.dev.AddPeerLink(dst.dev, firstHop)
}

// SetPathECMP makes dst reachable from src through any of the given
// first-hop links, selected per flow by the NIC's flow label — the
// host-side half of ECMP multipath. With one link it degrades to SetPath.
func (n *Network) SetPathECMP(src, dst *Context, firstHops []*fabric.Link) {
	n.Addr(dst)
	src.dev.AddPeerLinks(dst.dev, firstHops)
}

// UseEngine switches the engine used for links and contexts the builder
// creates from now on. Topology builders that partition a fabric across
// several engines call this between components; single-engine callers never
// need it. It returns the network so wiring code can chain it.
func (n *Network) UseEngine(eng *sim.Engine) *Network {
	n.eng = eng
	return n
}

// Engine returns the engine new links are currently created on.
func (n *Network) Engine() *sim.Engine { return n.eng }

// ConnectSwitches trunks two switches with a full-duplex pair of ports at
// the given rate. Each switch's trunk port names the other switch's egress
// link as its upstream, so PFC pause propagates across the trunk. Routing
// across the trunk is the topology builder's job (Route entries per address).
// It returns the port index of the trunk on each switch (a's, then b's).
func (n *Network) ConnectSwitches(a, b *fabric.Switch, rateGbps float64, qos fabric.QoSConfig) (int, int) {
	pa := a.AddPort("trunk:"+b.Name(), rateGbps, n.PropDelay, 0, qos, b.Ingress)
	pb := b.AddPort("trunk:"+a.Name(), rateGbps, n.PropDelay, 0, qos, a.Ingress)
	a.SetUpstream(pa, b.EgressLink(pb))
	b.SetUpstream(pb, a.EgressLink(pa))
	return pa, pb
}

// Connect establishes a reliable connection between two QPs whose contexts
// are already wired. Reconnecting a QP detaches its previous peer cleanly:
// the old peer's dangling pointer is cleared (it would otherwise still
// believe itself connected and post into a connection that no longer
// exists on the other side).
func Connect(a, b *QP) error {
	if err := a.ctx.dev.ConnectQP(a.qpn, b.ctx.dev, b.qpn); err != nil {
		return err
	}
	if err := b.ctx.dev.ConnectQP(b.qpn, a.ctx.dev, a.qpn); err != nil {
		return err
	}
	if old := a.peer; old != nil && old != b && old.peer == a {
		old.peer = nil
	}
	if old := b.peer; old != nil && old != a && old.peer == b {
		old.peer = nil
	}
	a.peer, b.peer = b, a
	return nil
}
