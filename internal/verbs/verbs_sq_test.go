package verbs

import (
	"testing"

	"github.com/thu-has/ragnar/internal/fabric"
	"github.com/thu-has/ragnar/internal/host"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
)

func TestPollIntoDrainsInOrder(t *testing.T) {
	r := newRig(t, nic.CX5, 16)
	for i := 1; i <= 5; i++ {
		if err := r.qp.PostRead(uint64(i), nil, r.serverMR.Describe(0), 8); err != nil {
			t.Fatal(err)
		}
	}
	r.eng.Run()
	var dst [2]nic.Completion
	var got []uint64
	for {
		n := r.cq.PollInto(dst[:])
		if n == 0 {
			break
		}
		for _, c := range dst[:n] {
			got = append(got, c.WRID)
		}
	}
	if len(got) != 5 {
		t.Fatalf("drained %d completions, want 5", len(got))
	}
	for i, wrid := range got {
		if wrid != uint64(i+1) {
			t.Fatalf("completion order %v, want 1..5", got)
		}
	}
	if n := r.cq.PollInto(dst[:]); n != 0 || r.cq.Len() != 0 {
		t.Fatalf("drained CQ still yields entries (n=%d len=%d)", n, r.cq.Len())
	}
}

// BenchmarkCQPollInto is the allocation gate behind the PollInto hot path:
// a steady-state fill/drain cycle must not allocate (`make benchguard`).
func BenchmarkCQPollInto(b *testing.B) {
	eng := sim.NewEngine(1)
	ctx := NewContext(eng, "bench", host.H2, nic.CX5, 0)
	cq := ctx.CreateCQ(256)
	backing := make([]nic.Completion, 64)
	for i := range backing {
		backing[i] = nic.Completion{WRID: uint64(i + 1), Status: nic.StatusOK}
	}
	var dst [64]nic.Completion
	cq.entries = append(cq.entries, backing...)
	cq.PollInto(dst[:])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cq.entries = append(cq.entries[:0], backing...)
		if n := cq.PollInto(dst[:]); n != len(backing) {
			b.Fatalf("drained %d, want %d", n, len(backing))
		}
	}
}

// threeQPs wires one client QP and two server QPs on a shared rig, the
// minimal topology for reconnect/teardown aliasing bugs.
func threeQPs(t *testing.T) (eng *sim.Engine, a, b, c *QP) {
	t.Helper()
	eng = sim.NewEngine(9)
	client := NewContext(eng, "client", host.H2, nic.CX5, 0)
	server := NewContext(eng, "server", host.H3, nic.CX5, 0)
	NewNetwork(eng).ConnectContexts(client, server, fabric.DefaultQoS())
	var err error
	a, err = client.CreateQP(client.AllocPD(), client.CreateCQ(0), QPCap{})
	if err != nil {
		t.Fatal(err)
	}
	spd := server.AllocPD()
	b, err = server.CreateQP(spd, server.CreateCQ(0), QPCap{})
	if err != nil {
		t.Fatal(err)
	}
	c, err = server.CreateQP(spd, server.CreateCQ(0), QPCap{})
	if err != nil {
		t.Fatal(err)
	}
	return eng, a, b, c
}

// TestReconnectDetachesOldPeer pins the Connect fix: moving a connection to
// a new peer clears the old peer's back-pointer, so the old endpoint knows
// it is no longer connected instead of posting into a dead connection.
func TestReconnectDetachesOldPeer(t *testing.T) {
	_, a, b, c := threeQPs(t)
	if err := Connect(a, b); err != nil {
		t.Fatal(err)
	}
	if err := Connect(a, c); err != nil {
		t.Fatal(err)
	}
	if a.peer != c || c.peer != a {
		t.Fatal("reconnect did not bind the new pair")
	}
	if b.peer != nil {
		t.Fatal("old peer still holds a dangling back-pointer after reconnect")
	}
	if err := b.PostRead(1, nil, RemoteBuf{RKey: 1, Addr: 0}, 8); err == nil {
		t.Fatal("post on a detached QP must fail")
	}
}

// TestDestroyClearsBothSides pins the Destroy fix: tearing a QP down clears
// the peer's back-pointer too — but only when the peer still points at the
// destroyed QP, so destroying a stale endpoint cannot sever a live
// connection it is no longer part of.
func TestDestroyClearsBothSides(t *testing.T) {
	_, a, b, _ := threeQPs(t)
	if err := Connect(a, b); err != nil {
		t.Fatal(err)
	}
	if err := a.Destroy(); err != nil {
		t.Fatal(err)
	}
	if b.peer != nil {
		t.Fatal("peer still believes itself connected after the other side was destroyed")
	}
	if err := b.PostRead(1, nil, RemoteBuf{RKey: 1, Addr: 0}, 8); err == nil {
		t.Fatal("post on a half-destroyed connection must fail")
	}

	// The guard: a's stale sibling being destroyed must not touch b's new
	// connection.
	_, a2, b2, c2 := threeQPs(t)
	if err := Connect(a2, b2); err != nil {
		t.Fatal(err)
	}
	if err := Connect(c2, b2); err != nil {
		t.Fatal(err)
	}
	if err := a2.Destroy(); err != nil {
		t.Fatal(err)
	}
	if b2.peer != c2 || c2.peer != b2 {
		t.Fatal("destroying a stale endpoint severed the live connection")
	}
}

// TestMRAccessFlagMatrix pins responder-side MR permission enforcement end
// to end: every (access flags, opcode) pair either completes OK or draws a
// remote-access NAK, exactly per the registered flags.
func TestMRAccessFlagMatrix(t *testing.T) {
	type op struct {
		name string
		post func(qp *QP, wrid uint64, remote RemoteBuf) error
	}
	ops := []op{
		{"read", func(qp *QP, wrid uint64, remote RemoteBuf) error {
			return qp.PostRead(wrid, nil, remote, 8)
		}},
		{"write", func(qp *QP, wrid uint64, remote RemoteBuf) error {
			return qp.PostWrite(wrid, []byte("12345678"), remote, 8)
		}},
		{"faa", func(qp *QP, wrid uint64, remote RemoteBuf) error {
			return qp.PostAtomicFAA(wrid, remote, 1)
		}},
		{"cas", func(qp *QP, wrid uint64, remote RemoteBuf) error {
			return qp.PostAtomicCAS(wrid, remote, 0, 1)
		}},
	}
	cases := []struct {
		name   string
		access Access
		ok     map[string]bool
	}{
		{"read-only", AccessRemoteRead,
			map[string]bool{"read": true, "write": false, "faa": false, "cas": false}},
		{"write-only", AccessRemoteWrite,
			map[string]bool{"read": false, "write": true, "faa": false, "cas": false}},
		{"atomic-only", AccessRemoteAtomic,
			map[string]bool{"read": false, "write": false, "faa": true, "cas": true}},
		{"read-write", AccessRemoteRead | AccessRemoteWrite,
			map[string]bool{"read": true, "write": true, "faa": false, "cas": false}},
		{"all", AccessRemoteRead | AccessRemoteWrite | AccessRemoteAtomic,
			map[string]bool{"read": true, "write": true, "faa": true, "cas": true}},
		{"none", 0,
			map[string]bool{"read": false, "write": false, "faa": false, "cas": false}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine(3)
			client := NewContext(eng, "client", host.H2, nic.CX5, 0)
			server := NewContext(eng, "server", host.H3, nic.CX5, 0)
			NewNetwork(eng).ConnectContexts(client, server, fabric.DefaultQoS())
			spd := server.AllocPD()
			mr, err := spd.RegMR(1<<20, host.Page2M, tc.access)
			if err != nil {
				t.Fatal(err)
			}
			cq := client.CreateCQ(0)
			qp, err := client.CreateQP(client.AllocPD(), cq, QPCap{})
			if err != nil {
				t.Fatal(err)
			}
			sqp, err := server.CreateQP(spd, server.CreateCQ(0), QPCap{})
			if err != nil {
				t.Fatal(err)
			}
			if err := Connect(qp, sqp); err != nil {
				t.Fatal(err)
			}
			for i, o := range ops {
				if err := o.post(qp, uint64(i+1), mr.Describe(64)); err != nil {
					t.Fatalf("%s: post failed: %v", o.name, err)
				}
			}
			eng.Run()
			var dst [8]nic.Completion
			n := cq.PollInto(dst[:])
			if n != len(ops) {
				t.Fatalf("got %d completions, want %d", n, len(ops))
			}
			byID := map[uint64]nic.Status{}
			for _, c := range dst[:n] {
				byID[c.WRID] = c.Status
			}
			for i, o := range ops {
				want := nic.StatusRemoteAccessError
				if tc.ok[o.name] {
					want = nic.StatusOK
				}
				if got := byID[uint64(i+1)]; got != want {
					t.Errorf("%s on %s MR: status %v, want %v", o.name, tc.name, got, want)
				}
			}
		})
	}
}
