package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/thu-has/ragnar/internal/bitstream"
	"github.com/thu-has/ragnar/internal/covert"
	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/parallel"
	"github.com/thu-has/ragnar/internal/sim"
)

// The lossgrid experiment sweeps per-packet wire loss against the ULI covert
// channels: Table V's raw/effective bandwidth columns re-measured on a lossy
// fabric (0–1 % drop probability per link). Loss degrades the channel two
// ways: dropped probes blank receiver symbol windows, and go-back-N recovery
// stalls both parties' pipelines, smearing symbols into their neighbours.
// The sweep tops out at 1 %: the symbol-rate channels saturate to coin-flip
// decoding well before data-centre fabrics would be considered unhealthy.
//
// The priority channel is excluded: it is modelled at the fluid level (no
// per-packet fabric traffic), so packet loss cannot perturb it.

// LossPcts is the default loss grid, in percent drop probability per link.
var LossPcts = []float64{0, 0.1, 0.25, 0.5, 1}

// lossRetryTimeout/lossRetryLimit tune the clients' RC transport for a lossy
// fabric: a timeout a little under one symbol time bounds the stall per lost
// packet, and a deep retry budget keeps 5 % loss from erroring a QP mid-run.
const (
	lossRetryTimeout = 10 * sim.Microsecond
	lossRetryLimit   = 1000
)

// LossCell is one (channel, loss) cell aggregated over reps.
type LossCell struct {
	Channel      string
	LossPct      float64
	BandwidthBps float64
	ErrorRate    float64 // pooled bit errors over all reps
	EffectiveBps float64
	WireDrops    uint64 // packets lost on the fabric, summed over reps
	Retransmits  uint64 // requester retransmissions, summed over reps
}

// LossGridResult is the rendered experiment outcome.
type LossGridResult struct {
	NIC   string
	Bits  int
	Reps  int
	Cells []LossCell // channel-major, loss ascending
}

type lossRep struct {
	channel string
	lossPct float64
	rep     int
	cellID  uint64 // canonical index feeding sim.DeriveSeed
}

type lossRepOut struct {
	bps     float64
	errBits int
	bits    int
	drops   uint64
	retrans uint64
}

func lossGridReps(channels []string, losses []float64, reps int) []lossRep {
	var out []lossRep
	id := uint64(0)
	for _, ch := range channels {
		for _, l := range losses {
			for r := 0; r < reps; r++ {
				out = append(out, lossRep{channel: ch, lossPct: l, rep: r, cellID: id})
				id++
			}
		}
	}
	return out
}

// runLossRep transmits one payload over a fresh cluster with the given loss
// rate installed on every link.
func runLossRep(p nic.Profile, rep lossRep, bits int, seed int64) (lossRepOut, error) {
	repSeed := sim.DeriveSeed(seed, rep.cellID)
	var (
		ch  *covert.ULIChannel
		err error
	)
	switch rep.channel {
	case "intermr":
		ch, err = covert.NewInterMRChannel(p, repSeed)
	default: // intramr
		ch, err = covert.NewIntraMRChannel(p, repSeed)
	}
	if err != nil {
		return lossRepOut{}, err
	}
	// Loss streams derive from the rep seed via a fixed offset so they are
	// decorrelated from the cluster's engine stream.
	ch.Cluster.InjectLoss(sim.DeriveSeed(repSeed, 1<<32), rep.lossPct/100)
	for _, cn := range []*lab.Conn{ch.RxConn, ch.TxConn} {
		if err := cn.QP.SetRetry(lossRetryTimeout, lossRetryLimit); err != nil {
			return lossRepOut{}, err
		}
	}
	payload := bitstream.RandomBits(uint64(repSeed)|1, bits)
	run, err := ch.Transmit(payload)
	if err != nil {
		return lossRepOut{}, fmt.Errorf("lossgrid %s loss=%.1f%% rep=%d: %w",
			rep.channel, rep.lossPct, rep.rep, err)
	}
	out := lossRepOut{bps: run.Result.BandwidthBps, bits: len(payload)}
	for i := range payload {
		if run.Decoded[i] != payload[i] {
			out.errBits++
		}
	}
	for _, l := range ch.Cluster.Links {
		for tc := 0; tc < 8; tc++ {
			out.drops += l.Drops(tc) + l.FaultDrops(tc)
		}
	}
	for _, cl := range ch.Cluster.Clients {
		out.retrans += cl.NIC().Counters().Retransmits
	}
	return out, nil
}

// LossGrid sweeps loss rate x ULI covert channel on one adapter, reps
// independent runs per cell (each its own cluster and sim.DeriveSeed
// stream), one worker per rep. Rows are identical at any worker count.
func LossGrid(p nic.Profile, bits, reps int, losses []float64, seed int64, workers int) (LossGridResult, error) {
	if reps < 1 {
		reps = 1
	}
	if len(losses) == 0 {
		losses = LossPcts
	}
	channels := []string{"intermr", "intramr"}
	repsList := lossGridReps(channels, losses, reps)
	outs, err := parallel.Map(context.Background(), workers, repsList,
		func(_ context.Context, _ int, r lossRep) (lossRepOut, error) {
			return runLossRep(p, r, bits, seed)
		})
	if err != nil {
		return LossGridResult{}, err
	}
	res := LossGridResult{NIC: p.Name, Bits: bits, Reps: reps}
	names := map[string]string{"intermr": "inter-MR(III)", "intramr": "intra-MR(IV)"}
	i := 0
	for _, chName := range channels {
		for _, l := range losses {
			cell := LossCell{Channel: names[chName], LossPct: l}
			var errBits, totBits int
			for r := 0; r < reps; r++ {
				o := outs[i]
				i++
				cell.BandwidthBps = o.bps
				errBits += o.errBits
				totBits += o.bits
				cell.WireDrops += o.drops
				cell.Retransmits += o.retrans
			}
			if totBits > 0 {
				cell.ErrorRate = float64(errBits) / float64(totBits)
			}
			// A fixed-polarity threshold decoder conveys nothing once the
			// error rate reaches 1/2, so the BSC capacity is evaluated with
			// the error clamped there (the e>0.5 "inverted decoder" branch
			// of 1-H2(e) is not available to this receiver).
			e := cell.ErrorRate
			if e > 0.5 {
				e = 0.5
			}
			cell.EffectiveBps = bitstream.EffectiveBandwidth(cell.BandwidthBps, e)
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// Render formats the loss grid.
func (r LossGridResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "LOSS GRID: ULI covert channels under wire loss (%s, %d bits x %d reps per cell)\n",
		r.NIC, r.Bits, r.Reps)
	fmt.Fprintf(&b, "%-18s %7s %14s %10s %14s %10s %10s\n",
		"Channel", "Loss%", "Bandwidth", "Error", "Effective", "Drops", "Retx")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-18s %7.2f %14s %9.2f%% %14s %10d %10d\n",
			c.Channel, c.LossPct, bps(c.BandwidthBps), c.ErrorRate*100,
			bps(c.EffectiveBps), c.WireDrops, c.Retransmits)
	}
	b.WriteString("(priority channel omitted: fluid-level model, no per-packet wire traffic)\n")
	return b.String()
}
