package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/thu-has/ragnar/internal/defense"
	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/parallel"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/telemetry"
	"github.com/thu-has/ragnar/internal/traffic"
)

// The tenants experiment reproduces noisy-neighbor bandwidth collapse on a
// switched topology: N victim tenants and one aggressor hang off a shared
// switch, and every tenant's traffic toward the server converges on the
// same switch egress port. Victims run a steady stream of moderate WRITEs;
// the aggressor sweeps opcode x message size. In the default sweep the
// shared resource that collapses is the server RNIC's processing pipeline
// (the resource-exhaustion surface of the containerized-RDMA noisy-neighbor
// work): victim bandwidth falls monotonically as the aggressor's message
// size grows, for both opcodes. Past the switch's PFC XOFF threshold a
// second regime opens — one over-threshold aggressor packet pauses every
// uplink's traffic class, the congestion spreading NeVerMore exploits —
// which TestTenantsPFCRegime pins and the docs table footnotes. Grain-I
// counters (per-TC bytes, PFC pauses, drops) expose the squeeze per tenant,
// and a per-victim HARMONIC detector trained on the aggressor-idle baseline
// flags the contention windows.

// Tenant traffic shape: victims post 2 KB WRITEs at depth 2 — deep enough
// to keep the pipe warm, shallow enough that the victims alone leave the
// shared port undersubscribed (the baseline must be clean for degradation
// to be attributable to the aggressor).
const (
	tenantVictimSize  = 2048
	tenantVictimDepth = 2
	tenantAggDepth    = 8
	tenantWindow      = 50 * sim.Microsecond
	tenantWarmup      = 20 * sim.Microsecond
	tenantTrainWins   = 4
	tenantScoreWins   = 4
)

// TenantAggSizes is the default aggressor message-size sweep. It stays in
// the regime where the shared bottleneck is the server RNIC's processing
// pipeline, so more aggressor bytes monotonically squeeze the victims
// (5.4 → 2.9 → 1.0 Gbps per victim on CX5 defaults). Two documented
// regimes lie above it: around 64 KB the server's per-message overheads
// amortise enough that victim bandwidth plateaus non-monotonically, and
// past the switch's 96 KB PFC XOFF threshold a single aggressor packet
// pauses every uplink — including the server's ACK path — throttling the
// aggressor itself as hard as the victims (run `ragnar tenants` with a
// larger size to watch the SwitchPFC column light up).
var TenantAggSizes = []int{1024, 4096, 16384}

// TenantCell is one (aggressor opcode, aggressor size) cell.
type TenantCell struct {
	Op         string // READ or WRITE
	AggSize    int
	AggGbps    float64
	VictimGbps []float64 // per victim, during contention
	SoloGbps   float64   // mean per-victim rate with the aggressor idle
	SwitchPFC  uint64    // switch PFC pause assertions, contention phase
	SwitchDrop uint64    // switch shared-buffer drops, contention phase
	MaxScore   float64   // highest per-victim HARMONIC score
	Detected   int       // victims whose detector fired in any window
}

// MeanVictimGbps averages the per-victim contention bandwidth.
func (c TenantCell) MeanVictimGbps() float64 {
	if len(c.VictimGbps) == 0 {
		return 0
	}
	var s float64
	for _, v := range c.VictimGbps {
		s += v
	}
	return s / float64(len(c.VictimGbps))
}

// SoloPct is the mean victim bandwidth as a percentage of the solo baseline.
func (c TenantCell) SoloPct() float64 {
	if c.SoloGbps <= 0 {
		return 0
	}
	return 100 * c.MeanVictimGbps() / c.SoloGbps
}

// TenantsResult is the rendered experiment outcome.
type TenantsResult struct {
	NIC     string
	Victims int
	Cells   []TenantCell // opcode-major (READ then WRITE), size ascending
}

type tenantCellIn struct {
	op     nic.Opcode
	size   int
	cellID uint64
}

// runTenantCell measures one aggressor configuration on a fresh star rig.
func runTenantCell(p nic.Profile, victims int, in tenantCellIn, seed int64) (TenantCell, error) {
	cfg := lab.DefaultConfig(p)
	cfg.Seed = sim.DeriveSeed(seed, in.cellID)
	cfg.Clients = victims + 1 // client 0 is the aggressor
	c := lab.Star(cfg)
	mr, err := c.RegisterServerMR(8 << 20)
	if err != nil {
		return TenantCell{}, err
	}
	cell := TenantCell{AggSize: in.size}
	if in.op == nic.OpRead {
		cell.Op = "READ"
	} else {
		cell.Op = "WRITE"
	}

	// Dial and warm every tenant BEFORE any generator starts: Warm runs the
	// engine to quiescence, which never arrives once a closed-loop generator
	// is live.
	conns := make([]*lab.Conn, victims)
	for i := 0; i < victims; i++ {
		conn, err := c.Dial(i+1, tenantVictimDepth*2)
		if err != nil {
			return TenantCell{}, err
		}
		if err := c.Warm(conn, mr); err != nil {
			return TenantCell{}, err
		}
		conns[i] = conn
	}
	aggConn, err := c.Dial(0, tenantAggDepth*2)
	if err != nil {
		return TenantCell{}, err
	}
	if err := c.Warm(aggConn, mr); err != nil {
		return TenantCell{}, err
	}

	// Victims: steady 2 KB writes, each tenant to its own MR window.
	gens := make([]*traffic.Generator, victims)
	for i, conn := range conns {
		gens[i] = &traffic.Generator{
			QP: conn.QP, CQ: conn.CQ, Op: nic.OpWrite,
			MsgSize: tenantVictimSize, Depth: tenantVictimDepth,
			Next: traffic.FixedTarget(mr.Describe(uint64(i) * (256 << 10))),
		}
		if err := gens[i].Start(); err != nil {
			return TenantCell{}, err
		}
	}

	// Baseline phase (aggressor idle): warm up, then sample each victim NIC
	// at window boundaries. The deltas train one HARMONIC per victim and the
	// completion counts give the solo bandwidth.
	c.Eng.RunFor(tenantWarmup)
	series := make([][]telemetry.Snapshot, victims)
	soloStart := make([]uint64, victims)
	for i, g := range gens {
		series[i] = append(series[i], telemetry.Snap(c.Eng, c.Clients[i+1].NIC()))
		soloStart[i] = g.Completed()
	}
	for w := 0; w < tenantTrainWins; w++ {
		c.Eng.RunFor(tenantWindow)
		for i := range gens {
			series[i] = append(series[i], telemetry.Snap(c.Eng, c.Clients[i+1].NIC()))
		}
	}
	dets := make([]*defense.Harmonic, victims)
	var solo float64
	for i, g := range gens {
		dets[i] = defense.TrainHarmonic(telemetry.WindowedDeltas(series[i]))
		solo += gbpsOf(g.Completed()-soloStart[i], tenantVictimSize, tenantTrainWins*tenantWindow)
	}
	cell.SoloGbps = solo / float64(victims)

	// Contention phase: start the aggressor, score every victim window.
	agg := &traffic.Generator{
		QP: aggConn.QP, CQ: aggConn.CQ, Op: in.op,
		MsgSize: in.size, Depth: tenantAggDepth,
		Next: traffic.FixedTarget(mr.Describe(4 << 20)),
	}
	if err := agg.Start(); err != nil {
		return TenantCell{}, err
	}
	sw := c.Switches[0]
	var pfc0, drop0 uint64
	for tc := 0; tc < 8; tc++ {
		pfc0 += sw.PFCPauses(tc)
		drop0 += sw.BufDrops(tc)
	}
	vicStart := make([]uint64, victims)
	prev := make([]telemetry.Snapshot, victims)
	for i, g := range gens {
		vicStart[i] = g.Completed()
		prev[i] = telemetry.Snap(c.Eng, c.Clients[i+1].NIC())
	}
	aggStart := agg.Completed()
	fired := make([]bool, victims)
	for w := 0; w < tenantScoreWins; w++ {
		c.Eng.RunFor(tenantWindow)
		for i := range gens {
			cur := telemetry.Snap(c.Eng, c.Clients[i+1].NIC())
			d := telemetry.Delta(prev[i], cur)
			prev[i] = cur
			if s := dets[i].Score(d); s > cell.MaxScore {
				cell.MaxScore = s
			}
			if dets[i].Detect(d) {
				fired[i] = true
			}
		}
	}
	const scoreDur = tenantScoreWins * tenantWindow
	for i, g := range gens {
		cell.VictimGbps = append(cell.VictimGbps,
			gbpsOf(g.Completed()-vicStart[i], tenantVictimSize, scoreDur))
		if fired[i] {
			cell.Detected++
		}
	}
	cell.AggGbps = gbpsOf(agg.Completed()-aggStart, in.size, scoreDur)
	for tc := 0; tc < 8; tc++ {
		cell.SwitchPFC += sw.PFCPauses(tc)
		cell.SwitchDrop += sw.BufDrops(tc)
	}
	cell.SwitchPFC -= pfc0
	cell.SwitchDrop -= drop0
	for _, g := range gens {
		if g.Errors() > 0 {
			return TenantCell{}, fmt.Errorf("tenants: victim completions errored")
		}
	}
	return cell, nil
}

// gbpsOf converts an operation count into Gbps of payload over a duration.
func gbpsOf(ops uint64, msgSize int, d sim.Duration) float64 {
	if d <= 0 {
		return 0
	}
	bits := float64(ops) * float64(msgSize) * 8
	return bits / d.Seconds() / 1e9
}

// Tenants sweeps aggressor opcode x size against a fixed victim population
// on a shared switch. Every cell is an independent star rig seeded with
// sim.DeriveSeed(seed, cellID), so rows are identical at any worker count.
func Tenants(p nic.Profile, victims int, sizes []int, seed int64, workers int) (TenantsResult, error) {
	if victims < 1 {
		victims = 3
	}
	if len(sizes) == 0 {
		sizes = TenantAggSizes
	}
	var cells []tenantCellIn
	id := uint64(0)
	for _, op := range []nic.Opcode{nic.OpRead, nic.OpWrite} {
		for _, sz := range sizes {
			cells = append(cells, tenantCellIn{op: op, size: sz, cellID: id})
			id++
		}
	}
	outs, err := parallel.Map(context.Background(), workers, cells,
		func(_ context.Context, _ int, in tenantCellIn) (TenantCell, error) {
			return runTenantCell(p, victims, in, seed)
		})
	if err != nil {
		return TenantsResult{}, err
	}
	return TenantsResult{NIC: p.Name, Victims: victims, Cells: outs}, nil
}

// Render formats the bandwidth-collapse table.
func (r TenantsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TENANTS: noisy-neighbor collapse behind a shared switch port (%s, %d victims + 1 aggressor)\n",
		r.NIC, r.Victims)
	fmt.Fprintf(&b, "%-6s %9s %10s %12s %8s %10s %8s %9s %9s\n",
		"AggOp", "AggSize", "AggGbps", "VictimGbps", "%solo", "SwitchPFC", "BufDrop", "HARMONIC", "Detected")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-6s %9d %10.2f %12.2f %7.1f%% %10d %8d %9.2f %6d/%d\n",
			c.Op, c.AggSize, c.AggGbps, c.MeanVictimGbps(), c.SoloPct(),
			c.SwitchPFC, c.SwitchDrop, c.MaxScore, c.Detected, len(c.VictimGbps))
	}
	b.WriteString("(victims: steady 2KB WRITE depth 2; in this sweep the collapse is server-RNIC pipeline contention — push the size past the switch's PFC XOFF threshold to enter the congestion-spreading regime where SwitchPFC lights up)\n")
	return b.String()
}
