package experiments

import (
	"fmt"
	"strings"
	"testing"

	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
)

func TestGoldenRednRender(t *testing.T) {
	checkGolden(t, "redn_cx5", func(workers int) string {
		r, err := Redn(nic.CX5, 7, workers)
		if err != nil {
			t.Fatal(err)
		}
		return r.Render()
	})
}

// The chain-leakage headline, asserted numerically: on CX5 the taken arm is
// distinguishable from the not-taken arm through the prober's own ULI
// (HARMONIC trained on not-taken trials flags the taken ones), the server
// sees no chain observables at all, and the channel survives the CX5-ISO
// arbiter partition because the carrier is PU contention.
func TestRednDistinguishability(t *testing.T) {
	if testing.Short() {
		t.Skip("full chain-leakage run in -short mode")
	}
	r, err := Redn(nic.CX5, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(r.Rows))
	}
	base, iso := r.Rows[0], r.Rows[1]
	if base.GapNs <= 0 {
		t.Errorf("CX5 taken-vs-idle ULI gap %.1f ns, want positive contention", base.GapNs)
	}
	if base.Flagged[0] < base.Flagged[1] {
		t.Errorf("CX5 HARMONIC flagged %d/%d taken trials, want all of them",
			base.Flagged[0], base.Flagged[1])
	}
	// The residual claim: the contention carrying the leak lives in the
	// shared rx/tx processing units, which the CX5-ISO arbiter partition
	// does not touch — the channel survives isolation nearly intact.
	if iso.GapNs < 0.5*base.GapNs {
		t.Errorf("CX5-ISO gap %.1f ns vs CX5 %.1f ns; the PU-contention channel should survive the arbiter partition",
			iso.GapNs, base.GapNs)
	}
	if iso.Flagged[0] < iso.Flagged[1] {
		t.Errorf("CX5-ISO HARMONIC flagged %d/%d, the residual channel should stay detectable",
			iso.Flagged[0], iso.Flagged[1])
	}
	// The provider-side blindness claim: the chain's WAIT/ENABLE/self-modify
	// activity is entirely tenant-local.
	if base.ServerChainOps != 0 || iso.ServerChainOps != 0 {
		t.Errorf("server-side chain observables (%d, %d), want 0 — management WQEs must not cross the wire",
			base.ServerChainOps, iso.ServerChainOps)
	}
	// The chain did actually execute on the taken arms: one WAIT per loop
	// barrier plus two If barriers per trial, one gate self-modify per trial.
	if base.WaitWQEs == 0 || base.SelfModifies == 0 {
		t.Errorf("CX5 chain counters wait=%d selfmod=%d, chain never ran", base.WaitWQEs, base.SelfModifies)
	}
}

// TestGoldenSQSeam pins the send-queue refactor seam at the experiment
// layer: a burst posted through the legacy one-shot PostRead and the same
// burst staged and enabled by one doorbell must produce completion
// timestamps that are byte-identical to each other and to the pinned
// pre-refactor schedule.
func TestGoldenSQSeam(t *testing.T) {
	checkGolden(t, "sqseam_cx5", func(workers int) string {
		run := func(staged bool) []int64 {
			c := lab.New(lab.DefaultConfig(nic.CX5))
			mr, err := c.RegisterServerMR(1 << 20)
			if err != nil {
				t.Fatal(err)
			}
			conn, err := c.Dial(0, 32)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Warm(conn, mr); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 16; i++ {
				if staged {
					err = conn.QP.StageRead(uint64(i+1), nil, mr.Describe(uint64(i)*4096), 1024)
				} else {
					err = conn.QP.PostRead(uint64(i+1), nil, mr.Describe(uint64(i)*4096), 1024)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			if staged {
				if err := conn.QP.Ring(0); err != nil {
					t.Fatal(err)
				}
			}
			c.Run()
			var comps [32]nic.Completion
			n := conn.CQ.PollInto(comps[:])
			times := make([]int64, 0, n)
			for _, comp := range comps[:n] {
				times = append(times, int64(comp.DoneTime))
			}
			return times
		}
		legacy := run(false)
		stagedTimes := run(true)
		var b strings.Builder
		fmt.Fprintf(&b, "SQ seam [CX5]: 16 x 1 KB READ burst, legacy post vs stage+ring\n")
		for i, ts := range legacy {
			fmt.Fprintf(&b, "read %2d done %d ns\n", i+1, ts)
		}
		identical := len(legacy) == len(stagedTimes)
		if identical {
			for i := range legacy {
				if legacy[i] != stagedTimes[i] {
					identical = false
					break
				}
			}
		}
		fmt.Fprintf(&b, "staged burst byte-identical to legacy: %v\n", identical)
		return b.String()
	})
}
