package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/thu-has/ragnar/internal/bitstream"
	"github.com/thu-has/ragnar/internal/covert"
	"github.com/thu-has/ragnar/internal/defense"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/parallel"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/telemetry"
)

// The defense grid quantifies the Section VII tradeoff the paper leaves
// qualitative: each hardening step of the CX5-ISO ladder is priced in
// channel error rate (what the attacker loses) and victim goodput (what the
// tenant pays). One row per variant, one column per attack surface.
const (
	defgridPriorityBits = 16 // ~1 bps channel: short payload, like Table V
	defgridInterBits    = 24
	defgridIntraBits    = 40 // KF4 carrier: the distinguishability headline
	defgridLossPct      = 0.25
	defgridVictims      = 2
	defgridVictimSize   = 4096
)

// DefGridVariants is the defense ladder evaluated against a base adapter:
// the unmodified profile, weighted-partitioned ISO, ISO plus constant-time
// translations, and ISO plus AES-per-verb pricing.
func DefGridVariants(p nic.Profile) []nic.Profile {
	iso := nic.Isolated(p)
	return []nic.Profile{p, iso, nic.WithConstTPU(iso), nic.WithAES(iso)}
}

// DefGridRow is one variant's full attack battery.
type DefGridRow struct {
	Profile string

	PriorityErr float64 // priority(I+II) channel error rate
	InterErr    float64 // inter-MR (Grain-III) error rate
	IntraErr    float64 // intra-MR (Grain-IV / KF4) error rate
	LossyErr    float64 // intra-MR error rate at defgridLossPct% wire loss
	Flagged     [2]int  // HARMONIC windows flagged on the live intra-MR run
	ExhScore    float64 // qp-ctx exhaustion-marker score

	VictimGbps float64 // per-victim goodput under the 4 KB WRITE aggressor
	SoloPct    float64 // victim goodput as % of its aggressor-idle baseline
	SoloGbps   float64 // fluid solo 4 KB WRITE goodput (defense overhead alone)
}

// DefGridResult is the rendered Pareto grid.
type DefGridResult struct {
	Base    string
	Victims int
	Rows    []DefGridRow // ladder order: base, ISO, ISO+ctTPU, ISO+AES
}

// defgridMetrics names the per-variant cell battery. Each (variant, metric)
// pair is one independent rig with its own derived seed, so the grid is
// identical at any worker count.
var defgridMetrics = []string{"priority", "intermr", "intramr", "lossy", "harmonic", "exhaust", "tenants"}

type defCell struct {
	variant int
	metric  string
	cellID  uint64
}

func defgridCells(variants int) []defCell {
	var cells []defCell
	for v := 0; v < variants; v++ {
		for m, metric := range defgridMetrics {
			cells = append(cells, defCell{variant: v, metric: metric, cellID: uint64(v)<<8 | uint64(m)})
		}
	}
	return cells
}

// defCellOut is the union of cell outcomes; each metric fills its own slice.
type defCellOut struct {
	errRate  float64
	flagged  [2]int
	exhScore float64
	victim   float64
	soloPct  float64
}

// defgridHarmonic reproduces the DefenseEval counter-detector protocol on
// the intra-MR channel: train a HARMONIC baseline on an idle (all-zero)
// transmission, then count flagged windows on a live random payload.
func defgridHarmonic(p nic.Profile, seed int64) ([2]int, error) {
	const windows = 24
	runChannel := func(bits bitstream.Bits) ([]defense.Snapshot, error) {
		ch, err := covert.NewIntraMRChannel(p, seed)
		if err != nil {
			return nil, err
		}
		eng := ch.Cluster.Eng
		server := ch.Cluster.Server.NIC()
		var series []telemetry.Snapshot
		total := ch.SymbolTime * sim.Duration(len(bits))
		window := total / windows
		series = append(series, telemetry.Snap(eng, server))
		for w := 1; w <= windows; w++ {
			eng.At(eng.Now().Add(window*sim.Duration(w)), func() {
				series = append(series, telemetry.Snap(eng, server))
			})
		}
		if _, err := ch.Transmit(bits); err != nil {
			return nil, err
		}
		return telemetry.WindowedDeltas(series), nil
	}
	benign, err := runChannel(make(bitstream.Bits, windows))
	if err != nil {
		return [2]int{}, err
	}
	h := defense.TrainHarmonic(benign)
	deltas, err := runChannel(bitstream.RandomBits(uint64(seed)|1, windows))
	if err != nil {
		return [2]int{}, err
	}
	flagged := 0
	for _, d := range deltas {
		if h.Detect(d) {
			flagged++
		}
	}
	return [2]int{flagged, len(deltas)}, nil
}

// defgridLossy is one lossgrid rep: the intra-MR channel through
// defgridLossPct% random wire loss with retrying RC transports.
func defgridLossy(p nic.Profile, cellID uint64, seed int64) (float64, error) {
	out, err := runLossRep(p, lossRep{channel: "intramr", lossPct: defgridLossPct, cellID: cellID}, defgridInterBits, seed)
	if err != nil {
		return 0, err
	}
	if out.bits == 0 {
		return 0, nil
	}
	return float64(out.errBits) / float64(out.bits), nil
}

func runDefCell(variants []nic.Profile, cell defCell, seed int64) (defCellOut, error) {
	p := variants[cell.variant]
	cellSeed := sim.DeriveSeed(seed, cell.cellID)
	var out defCellOut
	switch cell.metric {
	case "priority":
		payload := bitstream.RandomBits(uint64(cellSeed)|1, defgridPriorityBits)
		run := covert.NewPriorityChannel(p).Transmit(payload, cellSeed)
		out.errRate = run.Result.ErrorRate
	case "intermr":
		ch, err := covert.NewInterMRChannel(p, cellSeed)
		if err != nil {
			return out, err
		}
		run, err := ch.Transmit(bitstream.RandomBits(uint64(cellSeed)|1, defgridInterBits))
		if err != nil {
			return out, err
		}
		out.errRate = run.Result.ErrorRate
	case "intramr":
		ch, err := covert.NewIntraMRChannel(p, cellSeed)
		if err != nil {
			return out, err
		}
		run, err := ch.Transmit(bitstream.RandomBits(uint64(cellSeed)|1, defgridIntraBits))
		if err != nil {
			return out, err
		}
		out.errRate = run.Result.ErrorRate
	case "lossy":
		// runLossRep derives its own per-rep seed from cellID, so hand it the
		// experiment seed, not the cell seed.
		e, err := defgridLossy(p, cell.cellID, seed)
		if err != nil {
			return out, err
		}
		out.errRate = e
	case "harmonic":
		f, err := defgridHarmonic(p, cellSeed)
		if err != nil {
			return out, err
		}
		out.flagged = f
	case "exhaust":
		// The qp-ctx regime (64 aggressor QPs thrashing a 24-entry context
		// cache), same shape as the exhaust experiment's hottest QP cell —
		// 16 QPs still fit the cache and score zero on every variant.
		c, err := runExhaustCell(p, defgridVictims, exhaustCellIn{qps: 64, mrs: 1, cellID: cell.cellID}, seed)
		if err != nil {
			return out, err
		}
		out.exhScore = c.ExhScore
	default: // tenants
		c, err := runTenantCell(p, defgridVictims, tenantCellIn{op: nic.OpWrite, size: defgridVictimSize, cellID: cell.cellID}, seed)
		if err != nil {
			return out, err
		}
		out.victim = c.MeanVictimGbps()
		out.soloPct = c.SoloPct()
	}
	return out, nil
}

// DefGrid runs the full attack battery against the defense ladder of a base
// adapter, one worker per (variant, metric) cell.
func DefGrid(p nic.Profile, seed int64, workers int) (DefGridResult, error) {
	variants := DefGridVariants(p)
	res := DefGridResult{Base: p.Name, Victims: defgridVictims}
	cells := defgridCells(len(variants))
	outs, err := parallel.Map(context.Background(), workers, cells,
		func(_ context.Context, _ int, cell defCell) (defCellOut, error) {
			return runDefCell(variants, cell, seed)
		})
	if err != nil {
		return res, err
	}
	res.Rows = make([]DefGridRow, len(variants))
	for i, v := range variants {
		res.Rows[i] = DefGridRow{
			Profile:  v.Name,
			SoloGbps: nic.Solo(v, nic.FlowSpec{Op: nic.OpWrite, MsgBytes: defgridVictimSize, QPNum: 4}).GoodputGbps,
		}
	}
	for i, cell := range cells {
		row := &res.Rows[cell.variant]
		switch cell.metric {
		case "priority":
			row.PriorityErr = outs[i].errRate
		case "intermr":
			row.InterErr = outs[i].errRate
		case "intramr":
			row.IntraErr = outs[i].errRate
		case "lossy":
			row.LossyErr = outs[i].errRate
		case "harmonic":
			row.Flagged = outs[i].flagged
		case "exhaust":
			row.ExhScore = outs[i].exhScore
		default:
			row.VictimGbps = outs[i].victim
			row.SoloPct = outs[i].soloPct
		}
	}
	return res, nil
}

// Render formats the Pareto grid with a headline verdict per hardening step.
func (r DefGridResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Defense Pareto grid [base %s]: %d victims, %d B WRITE, loss column at %.2f%%\n",
		r.Base, r.Victims, defgridVictimSize, defgridLossPct)
	fmt.Fprintf(&b, "%-22s %8s %8s %8s %8s %9s %8s %11s %7s %10s\n",
		"Variant", "PrioErr", "InterErr", "IntraErr", "LossyErr", "HARMONIC", "ExhScore", "Victim Gbps", "%solo", "Solo Gbps")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %5d/%-3d %8.1f %11.2f %6.0f%% %10.2f\n",
			row.Profile, row.PriorityErr*100, row.InterErr*100, row.IntraErr*100, row.LossyErr*100,
			row.Flagged[0], row.Flagged[1], row.ExhScore, row.VictimGbps, row.SoloPct, row.SoloGbps)
	}
	if len(r.Rows) == 4 {
		base, iso, ct, aes := r.Rows[0], r.Rows[1], r.Rows[2], r.Rows[3]
		fmt.Fprintf(&b, "ISO closes the scheduling channels: priority error %.0f%% -> %.0f%% at %.0f%% of %s victim goodput\n",
			base.PriorityErr*100, iso.PriorityErr*100, 100*iso.VictimGbps/base.VictimGbps, r.Base)
		fmt.Fprintf(&b, "const-TPU flattens KF4: intra-MR error %.0f%% -> %.0f%% (coin flip) at %.2fx solo goodput\n",
			iso.IntraErr*100, ct.IntraErr*100, ct.SoloGbps/iso.SoloGbps)
		fmt.Fprintf(&b, "AES per verb prices confidentiality at %.0f%% of the ISO solo goodput\n",
			100*aes.SoloGbps/iso.SoloGbps)
	}
	return b.String()
}
