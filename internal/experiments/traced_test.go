package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/thu-has/ragnar/internal/bitstream"
	"github.com/thu-has/ragnar/internal/covert"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/trace"
)

// TestTraceFig9ChromeSchema is the CLI acceptance check: `ragnar trace fig9`
// must emit JSON that chrome://tracing loads. The schema rules: a top-level
// traceEvents array; every event has name, ph, pid, tid and a numeric ts;
// complete events (X) carry dur; counter events (C) carry a numeric value
// arg; instants (i) carry a scope.
func TestTraceFig9ChromeSchema(t *testing.T) {
	o, err := TraceFig9(nic.CX4, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("fig9 trace has no events")
	}
	var counters, instants int
	for i, ev := range file.TraceEvents {
		for _, req := range []string{"name", "ph", "pid", "tid", "ts"} {
			if _, ok := ev[req]; !ok {
				t.Fatalf("event %d missing %q: %v", i, req, ev)
			}
		}
		var ph string
		if err := json.Unmarshal(ev["ph"], &ph); err != nil {
			t.Fatal(err)
		}
		switch ph {
		case "C":
			counters++
			var args struct {
				Value *float64 `json:"value"`
			}
			if err := json.Unmarshal(ev["args"], &args); err != nil || args.Value == nil {
				t.Fatalf("counter event %d lacks numeric value: %s", i, ev["args"])
			}
		case "i":
			instants++
			if _, ok := ev["s"]; !ok {
				t.Fatalf("instant event %d lacks scope", i)
			}
		}
	}
	if counters == 0 {
		t.Fatal("fig9 trace should carry the monitor bandwidth counter track")
	}
	if instants == 0 {
		t.Fatal("fig9 trace should carry sender symbol instants")
	}
}

// TestTracedInterMRMatchesUntraced is the e2e regression for passivity:
// attaching the flight recorder to the whole inter-MR rig must not move a
// single simulated event — the decoded bitstream and every ULI sample stay
// byte-identical to the untraced twin.
func TestTracedInterMRMatchesUntraced(t *testing.T) {
	const seed = 7
	payload := bitstream.RandomBits(uint64(seed)|1, 24)

	plain, err := covert.NewInterMRChannel(nic.CX4, seed)
	if err != nil {
		t.Fatal(err)
	}
	goldenRun, err := plain.Transmit(payload)
	if err != nil {
		t.Fatal(err)
	}

	traced, err := covert.NewInterMRChannel(nic.CX4, seed)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder("regression", trace.DefaultCapacity)
	traced.Cluster.AttachRecorder(rec)
	traced.Trace = rec
	tracedRun, err := traced.Transmit(payload)
	if err != nil {
		t.Fatal(err)
	}

	if goldenRun.Decoded.String() != tracedRun.Decoded.String() {
		t.Fatalf("tracing perturbed the decode:\n untraced %s\n traced   %s",
			goldenRun.Decoded, tracedRun.Decoded)
	}
	if len(goldenRun.Samples) != len(tracedRun.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(goldenRun.Samples), len(tracedRun.Samples))
	}
	for i := range goldenRun.Samples {
		if goldenRun.Samples[i] != tracedRun.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, goldenRun.Samples[i], tracedRun.Samples[i])
		}
	}
	if rec.Total() == 0 {
		t.Fatal("traced run recorded nothing")
	}
}

// TestTracedFig9MatchesUntraced covers the fluid-model channel: the trace
// hook must not consume the channel's RNG stream.
func TestTracedFig9MatchesUntraced(t *testing.T) {
	plain := covert.NewPriorityChannel(nic.CX5).Transmit(Fig9Bits, 3)
	ch := covert.NewPriorityChannel(nic.CX5)
	ch.Trace = trace.NewRecorder("fig9", trace.DefaultCapacity)
	traced := ch.Transmit(Fig9Bits, 3)
	if plain.Decoded.String() != traced.Decoded.String() {
		t.Fatal("tracing perturbed the fig9 decode")
	}
	if len(plain.Trace) != len(traced.Trace) {
		t.Fatal("tracing changed the bandwidth series length")
	}
	for i := range plain.Trace {
		if plain.Trace[i] != traced.Trace[i] {
			t.Fatalf("bandwidth sample %d differs", i)
		}
	}
}

// TestTraceLossRepShowsRecovery: the lossy trace contains the go-back-N
// chains EXPERIMENTS.md teaches readers to find — NAKs, rewinds and
// retransmit spans — and its Chrome export stays loadable.
func TestTraceLossRepShowsRecovery(t *testing.T) {
	o, err := TraceLossRep(nic.CX4, 0.5, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := o.Recorder.Metrics()
	if m.Count(trace.KindNakSend) == 0 || m.Count(trace.KindRewind) == 0 ||
		m.Count(trace.KindRetransmit) == 0 {
		t.Fatalf("lossy trace missing recovery events: naks=%d rewinds=%d retx=%d",
			m.Count(trace.KindNakSend), m.Count(trace.KindRewind), m.Count(trace.KindRetransmit))
	}
	var buf bytes.Buffer
	if err := o.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("lossy trace export is not valid JSON")
	}
}
