package experiments

import (
	"strings"
	"testing"

	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sidechan"
)

func TestTable1Complete(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("Table I has %d rows, want 6", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Work != "RAGNAR" || last.Channel != "Volatile" || last.Stealth != "High" {
		t.Fatalf("RAGNAR row wrong: %+v", last)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "Pythia") || !strings.Contains(out, "I/II/III/IV") {
		t.Fatal("render incomplete")
	}
}

func TestRenderTable3(t *testing.T) {
	out := RenderTable3()
	for _, want := range []string{"25Gbps", "100Gbps", "200Gbps"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table III missing %q:\n%s", want, out)
		}
	}
}

func TestFig4SubsetShowsKeyFindings(t *testing.T) {
	r := Fig4(nic.CX4, false, 0)
	if len(r.Cells) == 0 {
		t.Fatal("empty sweep")
	}
	out := r.Render()
	if !strings.Contains(out, "KF1") {
		t.Fatalf("KF1 line missing:\n%s", out)
	}
	if !strings.Contains(out, "KF2") {
		t.Fatalf("KF2 line missing:\n%s", out)
	}
}

func TestFig5RunsAndOrdersMRs(t *testing.T) {
	r, err := Fig5(nic.CX4, 120, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range r.Points {
		if pt.DiffMR.Mean <= pt.SameMR.Mean {
			t.Fatalf("size %d: diff-MR not slower", pt.MsgSize)
		}
	}
	if !strings.Contains(r.Render(), "Figure 5") {
		t.Fatal("render broken")
	}
}

func TestFig9AllNICsZeroError(t *testing.T) {
	r := Fig9(7, 0)
	for name, run := range r.Runs {
		if run.Result.ErrorRate != 0 {
			t.Errorf("%s: error %.2f", name, run.Result.ErrorRate)
		}
	}
	if !strings.Contains(r.Render(), "decoded") {
		t.Fatal("render broken")
	}
}

func TestTable5ShapesMatchPaper(t *testing.T) {
	r, err := Table5(96, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 9 {
		t.Fatalf("Table V has %d rows, want 9", len(r.Rows))
	}
	byKey := map[string]Table5Row{}
	for _, row := range r.Rows {
		byKey[row.Channel+"/"+row.NIC] = row
	}
	// Ordering claims: inter-MR bandwidth CX-6 > CX-5 > CX-4.
	i4 := byKey["inter-MR(III)/ConnectX-4"].BandwidthBps
	i5 := byKey["inter-MR(III)/ConnectX-5"].BandwidthBps
	i6 := byKey["inter-MR(III)/ConnectX-6"].BandwidthBps
	if !(i6 > i5 && i5 > i4) {
		t.Fatalf("inter-MR bandwidth ordering: %v %v %v", i4, i5, i6)
	}
	// Priority channel: ~1 bps, error-free.
	pr := byKey["priority(I+II)/ConnectX-4"]
	if pr.BandwidthBps > 2 || pr.ErrorRate != 0 {
		t.Fatalf("priority row: %+v", pr)
	}
	// Error rates stay single-digit percent on the fast channels.
	for k, row := range byKey {
		if strings.HasPrefix(k, "priority") {
			continue
		}
		if row.ErrorRate > 0.12 {
			t.Errorf("%s error rate %.1f%%", k, row.ErrorRate*100)
		}
		if row.EffectiveBps >= row.BandwidthBps && row.ErrorRate > 0 {
			t.Errorf("%s effective >= raw despite errors", k)
		}
	}
}

func TestPythiaCompare32x(t *testing.T) {
	r, err := PythiaCompare(32, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.SpeedupX < 2.8 || r.SpeedupX > 3.6 {
		t.Fatalf("speedup %.2fx, paper reports 3.2x", r.SpeedupX)
	}
}

func TestFig12DetectsBoth(t *testing.T) {
	r := Fig12(nic.CX5, 9)
	if r.ShuffleSeen != sidechan.PatternShuffle {
		t.Errorf("shuffle seen as %v", r.ShuffleSeen)
	}
	if r.JoinSeen != sidechan.PatternJoin {
		t.Errorf("join seen as %v", r.JoinSeen)
	}
	if r.IdleSeen != sidechan.PatternNull {
		t.Errorf("idle seen as %v", r.IdleSeen)
	}
	if !strings.Contains(r.Render(), "shuffle") {
		t.Fatal("render broken")
	}
}

func TestFig10FoldedBimodal(t *testing.T) {
	r, err := Fig10(11)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 1.0, 0.0
	for _, v := range r.Folded.Mean {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo < 0.5 {
		t.Fatalf("folded trace flat: [%v, %v]", lo, hi)
	}
}

func TestDefenseEvalContrast(t *testing.T) {
	r, err := DefenseEval(nic.CX5, 13)
	if err != nil {
		t.Fatal(err)
	}
	inter := r.FlaggedWindows["inter-MR(III)"]
	intra := r.FlaggedWindows["intra-MR(IV)"]
	if inter[0] == 0 {
		t.Error("Grain-III channel should be flagged by counters")
	}
	if intra[0] > 1 {
		t.Errorf("Grain-IV channel flagged %d times; should evade", intra[0])
	}
	if len(r.Noise) < 3 {
		t.Fatal("noise sweep too small")
	}
	first, last := r.Noise[0], r.Noise[len(r.Noise)-1]
	if !(last.ChannelErrorRate > first.ChannelErrorRate) {
		t.Error("noise should raise channel error")
	}
	if !(last.LatencyInflation > 1.05) {
		t.Error("noise should cost latency")
	}
}

func TestFig12Robustness(t *testing.T) {
	r := Fig12Robustness(nic.CX5, 7)
	if r.Correct < r.Total-1 {
		t.Fatalf("detector robustness %d/%d: %v", r.Correct, r.Total, r.Mistakes)
	}
	if r.Total < 9 {
		t.Fatalf("sweep too small: %d variants", r.Total)
	}
}

func TestFig6Fig7Fig8Smoke(t *testing.T) {
	r6, err := Fig6(nic.CX4, 60, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r6.Points) == 0 || !strings.Contains(r6.Render(), "Figure 6") {
		t.Fatal("fig6 empty")
	}
	r7, err := Fig7(nic.CX4, 60, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 1024 B reads run multiple TPU beats: ULI sits above the 64 B sweep.
	if r7.Points[0].Trace.Mean <= r6.Points[0].Trace.Mean {
		t.Fatalf("1KB ULI (%.0f) not above 64B ULI (%.0f)",
			r7.Points[0].Trace.Mean, r6.Points[0].Trace.Mean)
	}
	r8, err := Fig8(nic.CX4, 60, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r8.Points) < 10 {
		t.Fatal("fig8 sweep too small")
	}
}

func TestFig11AllNICs(t *testing.T) {
	r, err := Fig11(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Folds) != 3 {
		t.Fatalf("folds for %d NICs", len(r.Folds))
	}
	if !strings.Contains(r.Render(), "ConnectX-6") {
		t.Fatal("render incomplete")
	}
}

func TestFig13SmallSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("snoop pipeline is slow")
	}
	r, err := Fig13(nic.CX4, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Report.Traces != 3*17 {
		t.Fatalf("traces = %d", r.Report.Traces)
	}
	if !strings.Contains(r.Render(), "accuracy") {
		t.Fatal("render incomplete")
	}
}
