package experiments

import (
	"testing"

	"github.com/thu-has/ragnar/internal/nic"
)

func TestGoldenNvmfRender(t *testing.T) {
	checkGolden(t, "nvmf_cx5", func(workers int) string {
		r, err := Nvmf(nic.CX5, 1, workers)
		if err != nil {
			t.Fatal(err)
		}
		return r.Render()
	})
}

// TestNvmfDistinguishability is the headline acceptance property of the
// NeVerMore suite: the abuse-marker score separates protocol abuse from
// benign wire loss, and the one attack it cannot see (ack-forge) is exactly
// the one the end-to-end data check catches instead.
func TestNvmfDistinguishability(t *testing.T) {
	r, err := Nvmf(nic.CX5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	const threshold = 4 // defense.Harmonic default
	cells := map[string]NvmfCell{}
	for _, c := range r.Cells {
		cells[c.Attack] = c
	}
	for _, want := range []string{"baseline", "loss", "nak-spoof", "ack-forge", "qp-guess", "sr-mismatch"} {
		if _, ok := cells[want]; !ok {
			t.Fatalf("cell %q missing from sweep", want)
		}
	}

	// Baseline: clean fabric, full service, nothing scores.
	base := cells["baseline"]
	if base.Retx != 0 || base.WireDrops != 0 || base.AbuseScore != 0 || base.DataErrs != 0 {
		t.Fatalf("baseline not clean: %+v", base)
	}

	// Benign loss: retransmits and drops surge, but every abuse marker stays
	// structurally zero — AbuseScore must be exactly 0.
	loss := cells["loss"]
	if loss.WireDrops == 0 || loss.Retx == 0 {
		t.Fatalf("loss cell saw no loss: %+v", loss)
	}
	if loss.BadQP != 0 || loss.InvNaks != 0 || loss.InvAcks != 0 || loss.BadPSN != 0 || loss.BadCaps != 0 {
		t.Fatalf("benign loss raised abuse markers: %+v", loss)
	}
	if loss.AbuseScore != 0 {
		t.Fatalf("loss AbuseScore = %v, want 0", loss.AbuseScore)
	}
	if loss.DataErrs != 0 {
		t.Fatalf("benign loss corrupted data: %+v", loss)
	}

	// NAK spoofing: a retransmit storm with ZERO wire drops — the replayed
	// stale NAKs land in InvalidNaks and push AbuseScore past threshold.
	nak := cells["nak-spoof"]
	if nak.WireDrops != 0 {
		t.Fatalf("nak-spoof cell dropped frames: %+v", nak)
	}
	if nak.Retx == 0 {
		t.Fatal("nak-spoof produced no retransmits")
	}
	if nak.InvNaks == 0 {
		t.Fatal("stale NAK replays were not counted")
	}
	if nak.AbuseScore <= threshold {
		t.Fatalf("nak-spoof AbuseScore = %v, want > %d", nak.AbuseScore, threshold)
	}

	// ACK forgery: the stealthy row. Full-visibility forgeries carry exact
	// Seq+PSN, so no counter moves — the only trace is end-to-end corruption
	// (DataErrs) plus DupAcks when the real responses echo in.
	forge := cells["ack-forge"]
	if forge.DataErrs == 0 {
		t.Fatal("ack-forge corrupted nothing end to end")
	}
	if forge.DupAcks == 0 {
		t.Fatal("ack-forge: real responses never echoed as DupAcks")
	}
	if forge.InvAcks != 0 || forge.InvNaks != 0 {
		t.Fatalf("exact-PSN forgeries were rejected: %+v", forge)
	}
	if forge.AbuseScore != 0 {
		t.Fatalf("ack-forge AbuseScore = %v, want 0 (marker-silent by design)", forge.AbuseScore)
	}

	// QP guessing: no service impact, but every probe is charged to RxBadQP.
	guess := cells["qp-guess"]
	if guess.BadQP == 0 {
		t.Fatal("qp-guess probes were not counted")
	}
	if guess.AbuseScore <= threshold {
		t.Fatalf("qp-guess AbuseScore = %v, want > %d", guess.AbuseScore, threshold)
	}
	if guess.DataErrs != 0 {
		t.Fatalf("qp-guess corrupted data: %+v", guess)
	}

	// S/R mismatch: the malicious tenant's malformed capsules all land in the
	// target's BadCapsules validator.
	mism := cells["sr-mismatch"]
	if mism.BadCaps == 0 {
		t.Fatal("sr-mismatch capsules were not counted")
	}
	if mism.AbuseScore <= threshold {
		t.Fatalf("sr-mismatch AbuseScore = %v, want > %d", mism.AbuseScore, threshold)
	}

	// Victim service must actually degrade somewhere: the NAK storm is the
	// cell built to collapse IOPS.
	if nak.IOPSPct >= 95 {
		t.Fatalf("nak-spoof left victim at %.1f%% of baseline IOPS", nak.IOPSPct)
	}
}

// TestNvmfDeterminism: the same seed renders byte-identically regardless of
// worker count (the per-cell DeriveSeed contract).
func TestNvmfDeterminism(t *testing.T) {
	r1, err := Nvmf(nic.CX5, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Nvmf(nic.CX5, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Render() != r2.Render() {
		t.Fatalf("renders diverged across worker counts:\n%s\nvs\n%s", r1.Render(), r2.Render())
	}
}
