package experiments

import (
	"fmt"
	"strings"

	"github.com/thu-has/ragnar/internal/appdb"
	"github.com/thu-has/ragnar/internal/bitstream"
	"github.com/thu-has/ragnar/internal/classifier"
	"github.com/thu-has/ragnar/internal/covert"
	"github.com/thu-has/ragnar/internal/defense"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sidechan"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/stats"
	"github.com/thu-has/ragnar/internal/telemetry"
)

// ---------------------------------------------------------------------------
// Figure 12 — fingerprint shuffle/join
// ---------------------------------------------------------------------------

// Fig12Result holds the fingerprint traces and verdicts.
type Fig12Result struct {
	NIC          string
	ShuffleTrace []sidechan.BWSample
	JoinTrace    []sidechan.BWSample
	ShuffleSeen  sidechan.Pattern
	JoinSeen     sidechan.Pattern
	IdleSeen     sidechan.Pattern
}

// Fig12 runs the Algorithm 1 attack against shuffle and join schedules.
func Fig12(p nic.Profile, seed int64) Fig12Result {
	cfg := sidechan.DefaultMonitorConfig(p)
	cfg.Seed = seed
	det := sidechan.NewDetector(cfg)

	shuf := appdb.ShufflePhases(p, 3, 2000, 150*sim.Millisecond)
	shufTotal := shuf[0].Start + shuf[0].Dur + 150*sim.Millisecond
	sres := sidechan.Fingerprint(cfg, det, shuf, shufTotal)

	join := appdb.JoinPhases(p, 3, 5, 150*sim.Millisecond)
	last := join[len(join)-1]
	jres := sidechan.Fingerprint(cfg, det, join, last.Start+last.Dur+150*sim.Millisecond)

	idle := sidechan.Fingerprint(cfg, det, nil, 400*sim.Millisecond)

	return Fig12Result{
		NIC:          p.Name,
		ShuffleTrace: sres.Trace, JoinTrace: jres.Trace,
		ShuffleSeen: sres.Detected, JoinSeen: jres.Detected, IdleSeen: idle.Detected,
	}
}

// Render sketches both traces and reports the verdicts.
func (r Fig12Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12 [%s]: shuffle detected as %v, join as %v, idle as %v\n",
		r.NIC, r.ShuffleSeen, r.JoinSeen, r.IdleSeen)
	b.WriteString("shuffle: " + sparkline(r.ShuffleTrace) + "\n")
	b.WriteString("join:    " + sparkline(r.JoinTrace) + "\n")
	return b.String()
}

// sparkline draws a bandwidth trace with 5 levels over up to 80 columns.
func sparkline(trace []sidechan.BWSample) string {
	if len(trace) == 0 {
		return ""
	}
	vals := make([]float64, len(trace))
	for i, s := range trace {
		vals[i] = s.BW
	}
	norm := stats.Normalize(vals)
	step := 1
	if len(norm) > 80 {
		step = len(norm) / 80
	}
	levels := []byte("_.-=#")
	var out []byte
	for i := 0; i < len(norm); i += step {
		l := int(norm[i] * 4.999)
		out = append(out, levels[l])
	}
	return string(out)
}

// ---------------------------------------------------------------------------
// Figure 13 — snoop on disaggregated memory
// ---------------------------------------------------------------------------

// Fig13Result is the end-to-end snoop outcome.
type Fig13Result struct {
	NIC      string
	Report   *sidechan.SnoopReport
	PerClass int
}

// Fig13 collects the snoop dataset and trains/evaluates both classifiers.
// perClass controls dataset size (the paper's corpus is 6720 traces ~= 395
// per class; perClass=24 gives a faithful shape in seconds).
func Fig13(p nic.Profile, perClass int, seed int64) (Fig13Result, error) {
	cfg := sidechan.DefaultSnoopConfig(p)
	cfg.Seed = seed
	cnnCfg := classifier.DefaultCNNConfig()
	cnnCfg.Seed = seed
	rep, err := sidechan.RunSnoopAttack(cfg, perClass, cnnCfg)
	if err != nil {
		return Fig13Result{}, err
	}
	return Fig13Result{NIC: p.Name, Report: rep, PerClass: perClass}, nil
}

// Render prints accuracies and the confusion-matrix diagonal mass.
func (r Fig13Result) Render() string {
	var b strings.Builder
	rep := r.Report
	fmt.Fprintf(&b, "Figure 13 [%s]: %d traces (%d classes, %d/class)\n",
		r.NIC, rep.Traces, rep.Classes, r.PerClass)
	fmt.Fprintf(&b, "nearest-centroid accuracy: %.1f%%\n", rep.CentroidAcc*100)
	fmt.Fprintf(&b, "CNN accuracy:              %.1f%%  (paper: ResNet18 95.6%%)\n", rep.CNNAcc*100)
	if len(rep.CNNConfusion) > 0 {
		fmt.Fprintf(&b, "CNN confusion (row=truth):\n")
		for i, rw := range rep.CNNConfusion {
			fmt.Fprintf(&b, "%3d |", i)
			for _, v := range rw {
				if v == 0 {
					fmt.Fprintf(&b, "  .")
				} else {
					fmt.Fprintf(&b, "%3d", v)
				}
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Defense evaluation (Section VII)
// ---------------------------------------------------------------------------

// DefenseResult reports counter-based detection rates per channel and the
// noise-mitigation tradeoff curve.
type DefenseResult struct {
	NIC string
	// FlaggedWindows maps channel name -> flagged/total windows under the
	// HARMONIC-style detector.
	FlaggedWindows map[string][2]int
	Noise          []defense.MitigationPoint
	// ConstTime is the hardware-partitioning mitigation outcome: channel
	// error rate and benign-latency inflation with worst-case-padded
	// translations.
	ConstTimeError     float64
	ConstTimeInflation float64
}

// DefenseEval trains a HARMONIC-style baseline and scores the inter-MR and
// intra-MR channels against it, then sweeps the noise mitigation.
func DefenseEval(p nic.Profile, seed int64) (DefenseResult, error) {
	out := DefenseResult{NIC: p.Name, FlaggedWindows: map[string][2]int{}}

	const windows = 24
	runChannel := func(mk func() (*covert.ULIChannel, error), bits bitstream.Bits) ([]defense.Snapshot, error) {
		ch, err := mk()
		if err != nil {
			return nil, err
		}
		eng := ch.Cluster.Eng
		server := ch.Cluster.Server.NIC()
		var series []telemetry.Snapshot
		total := ch.SymbolTime * sim.Duration(len(bits))
		window := total / windows
		series = append(series, telemetry.Snap(eng, server))
		for w := 1; w <= windows; w++ {
			eng.At(eng.Now().Add(window*sim.Duration(w)), func() {
				series = append(series, telemetry.Snap(eng, server))
			})
		}
		if _, err := ch.Transmit(bits); err != nil {
			return nil, err
		}
		return telemetry.WindowedDeltas(series), nil
	}

	channels := []struct {
		name string
		mk   func() (*covert.ULIChannel, error)
	}{
		{"inter-MR(III)", func() (*covert.ULIChannel, error) { return covert.NewInterMRChannel(p, seed) }},
		{"intra-MR(IV)", func() (*covert.ULIChannel, error) { return covert.NewIntraMRChannel(p, seed) }},
	}
	zero := make(bitstream.Bits, 24)
	live := bitstream.RandomBits(uint64(seed)|1, 24)
	for _, c := range channels {
		benign, err := runChannel(c.mk, zero)
		if err != nil {
			return out, err
		}
		h := defense.TrainHarmonic(benign)
		deltas, err := runChannel(c.mk, live)
		if err != nil {
			return out, err
		}
		flagged := 0
		for _, d := range deltas {
			if h.Detect(d) {
				flagged++
			}
		}
		out.FlaggedWindows[c.name] = [2]int{flagged, len(deltas)}
	}

	// Noise sweep against the stealthiest channel.
	for _, amp := range []sim.Duration{0, 100 * sim.Nanosecond, 300 * sim.Nanosecond, 800 * sim.Nanosecond} {
		ch, err := covert.NewIntraMRChannel(p, seed)
		if err != nil {
			return out, err
		}
		uninstall := defense.NoiseMitigation(ch.Cluster.Server.NIC(), amp, ch.Cluster.Eng.Rand())
		run, err := ch.Transmit(live)
		uninstall()
		if err != nil {
			return out, err
		}
		point := defense.MitigationPoint{Amplitude: amp, ChannelErrorRate: run.Result.ErrorRate}
		point.LatencyInflation = stats.Mean(run.SymbolMeans)
		out.Noise = append(out.Noise, point)
	}
	// Convert absolute ULI to inflation relative to the no-noise run.
	var baseULI float64
	if len(out.Noise) > 0 && out.Noise[0].LatencyInflation > 0 {
		baseULI = out.Noise[0].LatencyInflation
		for i := range out.Noise {
			out.Noise[i].LatencyInflation = out.Noise[i].LatencyInflation / baseULI
		}
	}

	// Hardware partitioning: constant-time translations.
	ct, err := covert.NewIntraMRChannel(p, seed)
	if err != nil {
		return out, err
	}
	uninstall := defense.ConstantTimeMitigation(ct.Cluster.Server.NIC(), true)
	ctRun, err := ct.Transmit(live)
	uninstall()
	if err != nil {
		return out, err
	}
	out.ConstTimeError = ctRun.Result.ErrorRate
	if baseULI > 0 {
		out.ConstTimeInflation = stats.Mean(ctRun.SymbolMeans) / baseULI
	}
	return out, nil
}

// Render formats the defense study.
func (r DefenseResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Defense evaluation [%s]\n", r.NIC)
	fmt.Fprintf(&b, "HARMONIC-style counters (flagged windows):\n")
	for name, fw := range r.FlaggedWindows {
		verdict := "EVADES detection"
		if fw[0] > 1 {
			verdict = "detected"
		}
		fmt.Fprintf(&b, "  %-16s %2d/%2d  -> %s\n", name, fw[0], fw[1], verdict)
	}
	fmt.Fprintf(&b, "Noise mitigation vs intra-MR channel:\n")
	fmt.Fprintf(&b, "  %-12s %12s %18s\n", "amplitude", "chan error", "latency inflation")
	for _, pt := range r.Noise {
		fmt.Fprintf(&b, "  %-12v %11.1f%% %17.2fx\n", pt.Amplitude, pt.ChannelErrorRate*100, pt.LatencyInflation)
	}
	fmt.Fprintf(&b, "Hardware partitioning (constant-time TPU): %.1f%% channel error at %.2fx latency\n",
		r.ConstTimeError*100, r.ConstTimeInflation)
	return b.String()
}

// Fig12Robustness evaluates Algorithm 1 across varied workload
// configurations — the paper notes the observed pattern "slightly deviates
// from the baseline under different round times and configurations" while
// the attack still extracts clear information. The detector is trained once
// on reference schedules and then classifies shuffles of different data
// sizes and joins of different round counts.
type Fig12RobustnessResult struct {
	NIC      string
	Total    int
	Correct  int
	Mistakes []string
}

// Fig12Robustness sweeps workload variants against a fixed detector.
func Fig12Robustness(p nic.Profile, seed int64) Fig12RobustnessResult {
	cfg := sidechan.DefaultMonitorConfig(p)
	cfg.Seed = seed
	det := sidechan.NewDetector(cfg)
	out := Fig12RobustnessResult{NIC: p.Name}

	check := func(name string, want sidechan.Pattern, phases []appdb.Phase, total sim.Duration) {
		out.Total++
		res := sidechan.Fingerprint(cfg, det, phases, total)
		if res.Detected == want {
			out.Correct++
		} else {
			out.Mistakes = append(out.Mistakes, fmt.Sprintf("%s -> %v (want %v)", name, res.Detected, want))
		}
	}

	for i, mb := range []int{1500, 2500, 4000, 6000} {
		cfg.Seed = seed + int64(i)
		shuf := appdb.ShufflePhases(p, 3, mb, 150*sim.Millisecond)
		check(fmt.Sprintf("shuffle-%dMB", mb), sidechan.PatternShuffle,
			shuf, shuf[0].Start+shuf[0].Dur+150*sim.Millisecond)
	}
	for i, rounds := range []int{3, 5, 8} {
		cfg.Seed = seed + 100 + int64(i)
		join := appdb.JoinPhases(p, 3, rounds, 150*sim.Millisecond)
		last := join[len(join)-1]
		check(fmt.Sprintf("join-%drounds", rounds), sidechan.PatternJoin,
			join, last.Start+last.Dur+150*sim.Millisecond)
	}
	for i, mb := range []int{1500, 3000} {
		cfg.Seed = seed + 300 + int64(i)
		smj := appdb.SortMergePhases(p, 3, mb, 150*sim.Millisecond)
		check(fmt.Sprintf("sortmerge-%dMB", mb), sidechan.PatternSortMerge,
			smj, smj[0].Start+smj[0].Dur+150*sim.Millisecond)
	}
	for i := 0; i < 3; i++ {
		cfg.Seed = seed + 200 + int64(i)
		check("idle", sidechan.PatternNull, nil, 400*sim.Millisecond)
	}
	return out
}

// Render formats the robustness sweep.
func (r Fig12RobustnessResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12 robustness [%s]: %d/%d workload variants classified correctly\n",
		r.NIC, r.Correct, r.Total)
	for _, m := range r.Mistakes {
		fmt.Fprintf(&b, "  miss: %s\n", m)
	}
	return b.String()
}
