package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/thu-has/ragnar/internal/defense"
	"github.com/thu-has/ragnar/internal/host"
	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/parallel"
	"github.com/thu-has/ragnar/internal/rednlite"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/uli"
)

// The redn experiment measures chain leakage: a tenant offloads a RedN-lite
// conditional branch to the NIC (pre-posted WAIT/ENABLE chain, secret-
// dependent arm), and a co-located ULI prober — seeing only its own read
// latencies — distinguishes taken from not-taken. The chain's management
// WQEs never touch the wire, so the provider's server-side counters carry
// no Grain-II trace of the branch; the leak rides entirely on datapath
// contention, the paper's volatile channel.
const (
	rednTrials     = 5    // trials per (variant, arm) cell
	rednProbes     = 140  // steady-state ULI samples per trial
	rednProbeSize  = 512  // prober read size (bytes)
	rednProbeDepth = 8    // sustained prober queue depth
	rednLoopIters  = 48   // branch body: iterations of the write burst
	rednBurstWr    = 8    // 4 KB writes per iteration
	rednWrSize     = 4096 // branch body write size
	rednFlagMagic  = 7    // the "taken" flag value the chain CASes against
)

// RednRow is one variant's taken-vs-not-taken separation.
type RednRow struct {
	Profile string

	IdleULI  float64 // mean prober ULI, not-taken arm (ns), across trials
	TakenULI float64 // mean prober ULI, taken arm (ns)
	GapNs    float64 // TakenULI - IdleULI

	// Flagged counts taken trials scored above a HARMONIC baseline that was
	// trained on the prober's own ULI features from not-taken trials.
	Flagged [2]int

	// Chain-side observables (the tenant NIC executing the chain). The
	// taken arm pays WAITs per loop barrier; both arms self-modify once
	// (the gate-threshold patch).
	WaitWQEs     uint64
	EnableWQEs   uint64
	SelfModifies uint64

	// ServerChainOps is the sum of WAIT/ENABLE/self-modify counters on the
	// provider NIC — structurally zero: management WQEs never cross the
	// wire, so counter-based isolation at the server cannot see the branch.
	ServerChainOps uint64
}

// RednResult is the rendered chain-leakage table.
type RednResult struct {
	Base string
	Rows []RednRow
}

type rednCell struct {
	variant int
	taken   bool
	trial   int
	cellID  uint64
}

func rednCells(variants int) []rednCell {
	var cells []rednCell
	for v := 0; v < variants; v++ {
		for arm := 0; arm < 2; arm++ {
			for tr := 0; tr < rednTrials; tr++ {
				cells = append(cells, rednCell{
					variant: v, taken: arm == 1, trial: tr,
					cellID: uint64(v)<<8 | uint64(arm)<<4 | uint64(tr),
				})
			}
		}
	}
	return cells
}

type rednCellOut struct {
	trace                          uli.Trace
	waitWQEs, enableWQEs, selfMods uint64
	serverChainOps                 uint64
}

// runRednCell builds one independent rig: the shared server, a prober
// tenant on client 0 and a chain tenant on client 1 whose branch body is a
// sustained write burst. The flag word selects the arm; the chain is
// launched, then the prober measures while (taken) the burst contends with
// its reads or (not-taken) the NIC parks the arm.
func runRednCell(variants []nic.Profile, cell rednCell, seed int64) (rednCellOut, error) {
	var out rednCellOut
	p := variants[cell.variant]
	cfg := lab.DefaultConfig(p)
	cfg.Seed = sim.DeriveSeed(seed, cell.cellID)
	c := lab.New(cfg)
	mr, err := c.RegisterServerMR(2 << 20)
	if err != nil {
		return out, err
	}
	probe, err := c.Dial(0, rednProbeDepth+2)
	if err != nil {
		return out, err
	}
	if err := c.Warm(probe, mr); err != nil {
		return out, err
	}
	mainConn, err := c.Dial(1, 64)
	if err != nil {
		return out, err
	}
	branchConn, err := c.Dial(1, 1024)
	if err != nil {
		return out, err
	}
	code, err := branchConn.Client.AllocPD().RegMR(1024*nic.SQSlotBytes, host.Page4K, 0)
	if err != nil {
		return out, err
	}
	mainLane, err := rednlite.NewLane(mainConn.QP, mainConn.CQ, nil)
	if err != nil {
		return out, err
	}
	branchLane, err := rednlite.NewLane(branchConn.QP, branchConn.CQ, code)
	if err != nil {
		return out, err
	}

	// Host-side setup ends here: the flag encodes the secret bit, the chain
	// is assembled and launched, and the tenant host goes quiet.
	const flagOff = 1 << 20
	flag := uint64(rednFlagMagic)
	if !cell.taken {
		flag = rednlite.FalseFloor
	}
	putLE64(mr.Bytes()[flagOff:flagOff+8], flag)

	branch, err := rednlite.NewBranch(branchLane)
	if err != nil {
		return out, err
	}
	payload := make([]byte, rednWrSize)
	branch.Loop(rednLoopIters, func(ch *rednlite.Chain) {
		for k := 0; k < rednBurstWr; k++ {
			ch.Write(payload, mr.Describe(uint64(512<<10+k*rednWrSize)), rednWrSize)
		}
	})
	main := rednlite.New(mainLane).If(mr.Describe(flagOff), rednFlagMagic, branch)
	if err := main.Launch(); err != nil {
		return out, err
	}

	prober := &uli.Prober{QP: probe.QP, CQ: probe.CQ, Remote: mr.Describe(0),
		MsgSize: rednProbeSize, Depth: rednProbeDepth}
	samples, err := prober.Measure(c.Eng, rednProbes)
	if err != nil {
		return out, err
	}
	out.trace = uli.Summarize(samples)

	chainNIC := branchConn.Client.NIC().Counters()
	out.waitWQEs = chainNIC.WaitWQEs
	out.enableWQEs = chainNIC.EnableWQEs
	out.selfMods = chainNIC.SelfModifies
	srv := c.Server.NIC().Counters()
	out.serverChainOps = srv.WaitWQEs + srv.EnableWQEs + srv.SelfModifies
	return out, nil
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func rednFeatures(tr uli.Trace) map[string]float64 {
	return map[string]float64{
		"uli_mean": tr.Mean,
		"uli_p10":  tr.P10,
		"uli_p90":  tr.P90,
	}
}

// Redn runs the chain-leakage experiment on a base profile and its ISO
// variant, one worker per (variant, arm, trial) cell.
func Redn(p nic.Profile, seed int64, workers int) (RednResult, error) {
	variants := []nic.Profile{p, nic.Isolated(p)}
	res := RednResult{Base: p.Name}
	cells := rednCells(len(variants))
	outs, err := parallel.Map(context.Background(), workers, cells,
		func(_ context.Context, _ int, cell rednCell) (rednCellOut, error) {
			return runRednCell(variants, cell, seed)
		})
	if err != nil {
		return res, err
	}
	res.Rows = make([]RednRow, len(variants))
	for v := range variants {
		row := &res.Rows[v]
		row.Profile = variants[v].Name
		var idle []map[string]float64
		var taken []uli.Trace
		for i, cell := range cells {
			if cell.variant != v {
				continue
			}
			o := outs[i]
			if cell.taken {
				taken = append(taken, o.trace)
				row.TakenULI += o.trace.Mean / rednTrials
				row.WaitWQEs += o.waitWQEs
				row.EnableWQEs += o.enableWQEs
				row.SelfModifies += o.selfMods
			} else {
				idle = append(idle, rednFeatures(o.trace))
				row.IdleULI += o.trace.Mean / rednTrials
			}
			row.ServerChainOps += o.serverChainOps
		}
		row.GapNs = row.TakenULI - row.IdleULI
		// The tenant-side detector: a HARMONIC baseline over the prober's
		// own ULI features from not-taken trials, scoring taken trials.
		h := defense.TrainHarmonicVectors(idle)
		for _, tr := range taken {
			if h.ScoreVector(rednFeatures(tr)) > h.Threshold {
				row.Flagged[0]++
			}
		}
		row.Flagged[1] = len(taken)
	}
	return res, nil
}

// Render formats the chain-leakage table with the headline verdicts.
func (r RednResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "RedN chain leakage [base %s]: offloaded branch (%dx%d x %d B writes) vs ULI prober (%d B reads, depth %d)\n",
		r.Base, rednLoopIters, rednBurstWr, rednWrSize, rednProbeSize, rednProbeDepth)
	fmt.Fprintf(&b, "%-22s %12s %12s %9s %8s %22s %10s\n",
		"Variant", "idle ULI", "taken ULI", "gap(ns)", "flagged", "wait/enable/selfmod", "server ops")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %10.1fns %10.1fns %9.1f %5d/%-2d %10d/%d/%d %10d\n",
			row.Profile, row.IdleULI, row.TakenULI, row.GapNs,
			row.Flagged[0], row.Flagged[1],
			row.WaitWQEs, row.EnableWQEs, row.SelfModifies, row.ServerChainOps)
	}
	if len(r.Rows) == 2 {
		base, iso := r.Rows[0], r.Rows[1]
		fmt.Fprintf(&b, "%s: the taken arm shifts prober ULI by %.1f ns; a ULI-trained HARMONIC flags %d/%d taken trials\n",
			base.Profile, base.GapNs, base.Flagged[0], base.Flagged[1])
		resid := 0.0
		if base.GapNs != 0 {
			resid = 100 * iso.GapNs / base.GapNs
		}
		fmt.Fprintf(&b, "%s residual: gap %.1f ns (%.0f%% of %s) — the contention lives in the shared PUs, not the arbiter, so partitioning does not close the chain channel\n",
			iso.Profile, iso.GapNs, resid, base.Profile)
		fmt.Fprintf(&b, "provider-side WAIT/ENABLE/self-modify counters: %d — the branch leaves no Grain-II trace at the server\n",
			base.ServerChainOps+iso.ServerChainOps)
	}
	return b.String()
}
