package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/thu-has/ragnar/internal/appnvmf"
	"github.com/thu-has/ragnar/internal/defense"
	"github.com/thu-has/ragnar/internal/fabric"
	"github.com/thu-has/ragnar/internal/host"
	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/parallel"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/stats"
	"github.com/thu-has/ragnar/internal/telemetry"
	"github.com/thu-has/ragnar/internal/verbs"
)

// The nvmf experiment runs the NeVerMore protocol-abuse family against an
// NVMe-oF-style storage victim (internal/appnvmf): an initiator sustaining a
// mixed read/write block workload against an RDMA storage target. Each
// attack is one cell on a fresh point-to-point rig, flanked by a no-attack
// baseline and a matched benign-wire-loss cell, and every cell asks two
// questions: how hard does victim service collapse (IOPS, p99), and can a
// counter-watching defender tell the abuse from congestion?
//
//   - baseline: no interference; the reference IOPS/latency row.
//   - loss: uniform random wire drops on every link — the benign
//     degradation the attack rows must be distinguished from. Retransmits
//     and NAKs surge, but every abuse marker stays structurally zero.
//   - nak-spoof: an on-path adversary taps the target's data-phase stream,
//     snoops request PSNs and injects forged NAK-sequence-errors back at the
//     target — half with the freshly snooped PSN (valid-looking: go-back-N
//     rewinds the deep window of large data WRITEs), half replaying a PSN
//     from before the attack (stale: each lands in InvalidNaks). Retransmit
//     storms with zero wire drops, plus a nonzero invalid-NAK marker.
//   - ack-forge: the adversary taps the target's downlink and answers the
//     target's data-phase verbs before the victim can — forged OK responses
//     carrying the snooped Seq AND PSN (full wire visibility, the forgery
//     the reliability layer provably cannot reject). Read responses carry
//     attacker bytes, so NVMe writes commit garbage: silent namespace
//     corruption the victim only sees as end-to-end DataErrors. Counter
//     defenses stay blind — the echo of each real response is one DupAck.
//   - qp-guess: the adversary sprays requests at QPNs the target never
//     created, the NVMe-oF equivalent of a connection-guessing sweep. No
//     service impact, but every frame is charged to RxBadQP.
//   - sr-mismatch: a malicious tenant with its own legitimate queue floods
//     the target with mismatched capsules — truncated frames, oversized
//     garbage, LBA-overrun commands. Every one lands in BadCapsules, a pure
//     application-level abuse marker.
//
// AbuseScore is defense.Harmonic.ScoreVector over only the abuse markers
// (bad_qp, invalid_nak, invalid_ack, bad_psn, bad_capsule), trained on the
// same benign windows: random loss leaves the vector empty (score 0), so any
// nonzero marker scores by magnitude — the loss row and the attack rows
// separate even when HARMONIC's volume view fires for both.
const (
	nvmfNamespaceBytes = 2 << 20
	nvmfTargetDepth    = 64
	nvmfWindow         = 150 * sim.Microsecond
	nvmfTrainWins      = 8
	nvmfScoreWins      = 8
	nvmfWarmup         = 200 * sim.Microsecond
	// nvmfRetryTimeout sits well above the worst-case data-phase response
	// time under a full target queue: the NAK path recovers mid-stream loss
	// fast, and the timer only backstops tail/response drops. A tighter
	// timer fires spuriously under queueing, and a spurious retransmit of a
	// retired data WRITE can land in a recycled command slot — self-inflicted
	// corruption no attacker had to pay for.
	nvmfRetryTimeout = 200 * sim.Microsecond
	nvmfRetryLimit   = 1000
	// nvmfLossPct matches a lossgrid sweep point: the benign row the abuse
	// rows must be told apart from.
	nvmfLossPct = 0.5
	// nvmfSpoofEvery paces the NAK spoofer: one forged NAK per N observed
	// request frames. Retransmissions are observed too, so the storm feeds
	// itself: rewound frames draw fresh NAKs of their own.
	nvmfSpoofEvery = 1
	// nvmfGuessPeriod paces the QP-guessing sweep.
	nvmfGuessPeriod = 2 * sim.Microsecond
	// nvmfSprayPeriod paces the malformed-capsule tenant.
	nvmfSprayPeriod = 400 * sim.Nanosecond
)

// psn24 mirrors the transport's 24-bit PSN mask for forged-frame arithmetic.
const psn24 = 1<<24 - 1

// NvmfCell is one attack row.
type NvmfCell struct {
	Attack string

	KIOPS   float64 // attack-phase storage command rate, thousands/s
	IOPSPct float64 // percent of the same rig's baseline-phase rate
	P99x    float64 // command p99 latency, attack / baseline

	WireDrops uint64 // benign loss observable (fault + tail drops)
	Retx      uint64 // retransmits during the attack phase (victim + server)
	DupAcks   uint64 // duplicate ACKs coalesced (victim + server)

	// Abuse markers (victim + server NICs, plus the target's capsule
	// validator). Structurally zero under baseline and loss.
	BadQP    uint64
	InvNaks  uint64
	InvAcks  uint64
	BadPSN   uint64
	BadCaps  uint64
	DataErrs uint64 // end-to-end read verification failures (silent corruption)

	MaxScore   float64 // victim HARMONIC, worst window (volume view)
	Detected   bool    // victim HARMONIC fired in any window
	AbuseScore float64 // marker-only score: 0 unless a protocol was abused
}

// NvmfResult is the rendered experiment outcome.
type NvmfResult struct {
	NIC   string
	Cells []NvmfCell
}

type nvmfCellIn struct {
	attack string
	cellID uint64
}

var nvmfSweep = []nvmfCellIn{
	{attack: "baseline", cellID: 0},
	{attack: "loss", cellID: 1},
	{attack: "nak-spoof", cellID: 2},
	{attack: "ack-forge", cellID: 3},
	{attack: "qp-guess", cellID: 4},
	{attack: "sr-mismatch", cellID: 5},
}

// ---------------------------------------------------------------------------
// On-path adversaries (fabric.Adversary implementations)
// ---------------------------------------------------------------------------

// nakSpoofer taps the target's data-phase stream and NAKs the target's own
// requests back at it. The storage data phase keeps a deep window of large
// WRITEs outstanding, so every accepted NAK triggers a go-back-N rewind
// that re-sends the whole tail — megabytes of retransmission per forged
// frame. Even injections carry the freshly snooped PSN (the gap head IS
// outstanding, so the requester must rewind); odd injections replay a PSN
// from before the attack began — the classic replayed-NAK, whose gap head
// is long retired and therefore lands in InvalidNaks every time.
type nakSpoofer struct {
	requester *nic.NIC     // the NIC whose stream is being NAKed (the target)
	back      *fabric.Link // victim→server: where forged NAKs are spliced in
	seen      int
	stale     uint32
	haveStale bool
	injected  uint64
}

func (a *nakSpoofer) Observe(_ sim.Time, p fabric.Packet) {
	m, ok := nic.SnoopPacket(p)
	if !ok || m.IsResp {
		return
	}
	if !a.haveStale {
		// Gap head two behind the first observed PSN: that request retired
		// long before the attack began, so every replay of this NAK names a
		// gap head that is not outstanding — a counted InvalidNak.
		a.stale = (m.PSN - 2) & psn24
		a.haveStale = true
	}
	a.seen++
	if a.seen%nvmfSpoofEvery != 0 {
		return
	}
	ack := (m.PSN - 1) & psn24
	if a.injected%2 == 1 {
		ack = a.stale
	}
	a.injected++
	a.back.Inject(nic.ForgePacket(a.requester, nic.Message{
		Op: m.Op, SrcQPN: m.DstQPN, DstQPN: m.SrcQPN, Seq: m.Seq,
		IsResp: true, Status: nic.StatusSeqNak, TC: m.TC,
		PSN: m.PSN, AckPSN: ack,
	}))
}

// ackForger taps the target's downlink and completes the target's data-phase
// verbs itself: every outbound request is answered with a forged OK carrying
// the snooped Seq and exact PSN — the one forgery the hardened requester
// accepts, priced at full wire visibility. READ responses (the data pull
// behind an NVMe write) carry attacker bytes, so the target commits garbage
// to the namespace; the victim's later reads fail end-to-end verification.
type ackForger struct {
	server *nic.NIC
	up     *fabric.Link // victim→server: where forged responses are spliced in
	junk   []byte
	forged uint64
}

func (a *ackForger) Observe(_ sim.Time, p fabric.Packet) {
	m, ok := nic.SnoopPacket(p)
	if !ok || m.IsResp {
		return
	}
	resp := nic.Message{Op: m.Op, SrcQPN: m.DstQPN, DstQPN: m.SrcQPN, Seq: m.Seq,
		IsResp: true, Status: nic.StatusOK, TC: m.TC, PSN: m.PSN, AckPSN: m.PSN}
	if m.Op == nic.OpRead {
		if len(a.junk) < m.Length {
			a.junk = make([]byte, m.Length)
			for i := range a.junk {
				a.junk[i] = 0xa5
			}
		}
		resp.Length = m.Length
		resp.Data = a.junk[:m.Length]
	}
	a.forged++
	a.up.Inject(nic.ForgePacket(a.server, resp))
}

// qpGuesser sprays write requests at QPNs the target never created — the
// connection-guessing sweep. Responses are unroutable (the target has no
// reverse path for an unknown QPN), so the only trace is RxBadQP.
type qpGuesser struct {
	eng     *sim.Engine
	server  *nic.NIC
	up      *fabric.Link
	guesses uint64
	stopped bool
	tickFn  func()
}

func (g *qpGuesser) start() {
	g.tickFn = g.tick
	g.tick()
}

func (g *qpGuesser) tick() {
	if g.stopped {
		return
	}
	g.up.Inject(nic.ForgePacket(g.server, nic.Message{
		Op: nic.OpWrite, SrcQPN: 0x7fff, DstQPN: 0x4000 + uint32(g.guesses%256),
		RKey: 1, Length: 64,
		Seq: 1<<40 + g.guesses, PSN: uint32(g.guesses) & psn24,
	}))
	g.guesses++
	g.eng.After(nvmfGuessPeriod, g.tickFn)
}

// capsuleSprayer is the malicious tenant: a legitimately connected queue
// that floods mismatched capsules — truncated frames (S/R size mismatch),
// oversized garbage, and well-framed commands whose LBA range can never be
// valid.
type capsuleSprayer struct {
	eng     *sim.Engine
	qp      *verbs.QP
	mr      *verbs.MR
	sent    uint64
	rejects uint64
	stopped bool
	tickFn  func()
}

func (s *capsuleSprayer) start() {
	s.tickFn = s.tick
	s.tick()
}

func (s *capsuleSprayer) tick() {
	if s.stopped {
		return
	}
	var data []byte
	switch s.sent % 3 {
	case 0:
		data = make([]byte, 24) // truncated capsule
	case 1:
		data = make([]byte, 4096) // oversized garbage frame
	default: // framed correctly, addressed impossibly
		data = appnvmf.Command{Op: appnvmf.CmdRead, CID: uint16(s.sent), NSID: 1,
			Offset: 1 << 40, Length: 1 << 16,
			RAddr: s.mr.Addr(0), RKey: s.mr.RKey()}.Marshal()
	}
	if err := s.qp.PostSend(1<<33|s.sent, data); err != nil {
		s.rejects++ // SQ full: the NIC is already saturated with abuse
	}
	s.sent++
	s.eng.After(nvmfSprayPeriod, s.tickFn)
}

// ---------------------------------------------------------------------------
// Cell driver
// ---------------------------------------------------------------------------

// abuseDelta sums the NIC-level abuse markers across both endpoints.
func abuseDelta(prevV, curV, prevS, curS telemetry.Snapshot) (badQP, invNak, invAck, badPSN uint64) {
	badQP = (curV.RxBadQP - prevV.RxBadQP) + (curS.RxBadQP - prevS.RxBadQP)
	invNak = (curV.InvalidNaks - prevV.InvalidNaks) + (curS.InvalidNaks - prevS.InvalidNaks)
	invAck = (curV.InvalidAcks - prevV.InvalidAcks) + (curS.InvalidAcks - prevS.InvalidAcks)
	badPSN = (curV.RxBadPSN - prevV.RxBadPSN) + (curS.RxBadPSN - prevS.RxBadPSN)
	return
}

// runNvmfCell measures one attack on a fresh rig: a point-to-point pair with
// the storage target on the server, the victim initiator on client 0, and a
// second (attacker) host on client 1 whose queue stays idle outside the
// sr-mismatch cell.
func runNvmfCell(p nic.Profile, in nvmfCellIn, seed int64) (NvmfCell, error) {
	cfg := lab.DefaultConfig(p)
	cfg.Seed = sim.DeriveSeed(seed, in.cellID)
	cfg.Clients = 2
	c := lab.New(cfg)

	tgt, err := appnvmf.NewTarget(c.Server, nvmfNamespaceBytes)
	if err != nil {
		return NvmfCell{}, err
	}
	tq, err := tgt.Serve(nvmfTargetDepth)
	if err != nil {
		return NvmfCell{}, err
	}
	ini, err := appnvmf.NewInitiator(c.Clients[0], tq,
		appnvmf.DefaultWorkload(sim.DeriveSeed(cfg.Seed, 1)))
	if err != nil {
		return NvmfCell{}, err
	}
	// The attacker tenant's queue exists in every cell (identical rig
	// construction); only the sr-mismatch cell drives it.
	tq2, err := tgt.Serve(nvmfTargetDepth)
	if err != nil {
		return NvmfCell{}, err
	}
	atkPD := c.Clients[1].AllocPD()
	atkMR, err := atkPD.RegMR(1<<20, host.Page2M, verbs.AccessRemoteRead|verbs.AccessRemoteWrite)
	if err != nil {
		return NvmfCell{}, err
	}
	atkCQ := c.Clients[1].CreateCQ(0)
	atkCQ.Notify = func(nic.Completion) {}
	atkQP, err := c.Clients[1].CreateQP(atkPD, atkCQ, verbs.QPCap{MaxSendWR: 256})
	if err != nil {
		return NvmfCell{}, err
	}
	if err := verbs.Connect(atkQP, tq2.QP()); err != nil {
		return NvmfCell{}, err
	}
	for _, qp := range []*verbs.QP{ini.QP(), tq.QP(), atkQP, tq2.QP()} {
		if err := qp.SetRetry(nvmfRetryTimeout, nvmfRetryLimit); err != nil {
			return NvmfCell{}, err
		}
	}
	if in.attack == "loss" {
		c.InjectLoss(sim.DeriveSeed(cfg.Seed, 1<<32), nvmfLossPct/100)
	}

	cell := NvmfCell{Attack: in.attack}
	vicNIC := c.Clients[0].NIC()
	srvNIC := c.Server.NIC()

	// Baseline phase: warm up, then train HARMONIC on victim and server
	// windows while recording the reference IOPS and latency distribution.
	ini.Start()
	c.RunFor(nvmfWarmup)
	ini.ResetLatencies()
	vicSeries := []telemetry.Snapshot{telemetry.Snap(c.Eng, vicNIC)}
	srvSeries := []telemetry.Snapshot{telemetry.Snap(c.Eng, srvNIC)}
	base0 := ini.Stats().Completed
	for w := 0; w < nvmfTrainWins; w++ {
		c.RunFor(nvmfWindow)
		vicSeries = append(vicSeries, telemetry.Snap(c.Eng, vicNIC))
		srvSeries = append(srvSeries, telemetry.Snap(c.Eng, srvNIC))
	}
	det := defense.TrainHarmonic(telemetry.WindowedDeltas(vicSeries))
	srvDet := defense.TrainHarmonic(telemetry.WindowedDeltas(srvSeries))
	trainDur := sim.Duration(nvmfTrainWins) * nvmfWindow
	baseIOPS := float64(ini.Stats().Completed-base0) / trainDur.Seconds()
	baseP99 := stats.Percentile(ini.Latencies(), 99)
	ini.ResetLatencies()

	// Attack phase: install the cell's interference, score every window
	// against the trained detector, and tally the abuse markers.
	links := c.Links // [0] victim→server, [1] server→victim, [2]/[3] attacker
	var spoofer *nakSpoofer
	var forger *ackForger
	var guesser *qpGuesser
	var sprayer *capsuleSprayer
	switch in.attack {
	case "nak-spoof":
		spoofer = &nakSpoofer{requester: srvNIC, back: links[0]}
		links[1].SetAdversary(spoofer)
	case "ack-forge":
		forger = &ackForger{server: srvNIC, up: links[0]}
		links[1].SetAdversary(forger)
	case "qp-guess":
		guesser = &qpGuesser{eng: c.Eng, server: srvNIC, up: links[0]}
		guesser.start()
	case "sr-mismatch":
		sprayer = &capsuleSprayer{eng: c.Eng, qp: atkQP, mr: atkMR}
		sprayer.start()
	}

	vicPrev := telemetry.Snap(c.Eng, vicNIC)
	srvPrev := telemetry.Snap(c.Eng, srvNIC)
	atk0 := ini.Stats()
	caps0 := tgt.Counters().BadCapsules
	var drops0 uint64
	for _, l := range links {
		for tc := 0; tc < 8; tc++ {
			drops0 += l.Drops(tc) + l.FaultDrops(tc)
		}
	}
	vp, sp := vicPrev, srvPrev
	for w := 0; w < nvmfScoreWins; w++ {
		c.RunFor(nvmfWindow)
		vc := telemetry.Snap(c.Eng, vicNIC)
		d := telemetry.Delta(vp, vc)
		vp = vc
		if s := det.Score(d); s > cell.MaxScore {
			cell.MaxScore = s
		}
		if det.Detect(d) {
			cell.Detected = true
		}
		sp = telemetry.Snap(c.Eng, srvNIC)
	}
	if guesser != nil {
		guesser.stopped = true
	}
	if sprayer != nil {
		sprayer.stopped = true
	}
	links[0].SetAdversary(nil)
	links[1].SetAdversary(nil)

	scoreDur := sim.Duration(nvmfScoreWins) * nvmfWindow
	atk := ini.Stats()
	cell.KIOPS = float64(atk.Completed-atk0.Completed) / scoreDur.Seconds() / 1e3
	if baseIOPS > 0 {
		cell.IOPSPct = 100 * cell.KIOPS * 1e3 / baseIOPS
	}
	if p99 := stats.Percentile(ini.Latencies(), 99); baseP99 > 0 {
		cell.P99x = p99 / baseP99
	}
	cell.DataErrs = atk.DataErrors - atk0.DataErrors
	cell.Retx = (vp.Retransmits - vicPrev.Retransmits) + (sp.Retransmits - srvPrev.Retransmits)
	cell.DupAcks = (vp.DupAcks - vicPrev.DupAcks) + (sp.DupAcks - srvPrev.DupAcks)
	cell.BadQP, cell.InvNaks, cell.InvAcks, cell.BadPSN = abuseDelta(vicPrev, vp, srvPrev, sp)
	cell.BadCaps = tgt.Counters().BadCapsules - caps0
	for _, l := range links {
		for tc := 0; tc < 8; tc++ {
			cell.WireDrops += l.Drops(tc) + l.FaultDrops(tc)
		}
	}
	cell.WireDrops -= drops0

	// Marker-only verdict: the same nonzero gating as defense.features, so
	// the loss cell scores exactly zero.
	markers := map[string]float64{}
	for k, v := range map[string]uint64{
		"bad_qp": cell.BadQP, "invalid_nak": cell.InvNaks,
		"invalid_ack": cell.InvAcks, "bad_psn": cell.BadPSN,
		"bad_capsule": cell.BadCaps,
	} {
		if v > 0 {
			markers[k] = float64(v)
		}
	}
	cell.AbuseScore = srvDet.ScoreVector(markers)

	// Drain and sanity-check the victim data path.
	ini.Stop()
	c.Run()
	if err := c.DrainCheck(); err != nil {
		return NvmfCell{}, fmt.Errorf("nvmf %s: %w", in.attack, err)
	}
	if st := ini.Stats(); st.ErrStatus > 0 {
		return NvmfCell{}, fmt.Errorf("nvmf %s: %d commands completed in error", in.attack, st.ErrStatus)
	}
	if tq.Errors > 0 {
		return NvmfCell{}, fmt.Errorf("nvmf %s: %d target backend errors", in.attack, tq.Errors)
	}
	return cell, nil
}

// Nvmf runs the protocol-abuse sweep against the storage victim. Every cell
// is an independent rig seeded with sim.DeriveSeed(seed, cellID), so rows
// are identical at any worker count.
func Nvmf(p nic.Profile, seed int64, workers int) (NvmfResult, error) {
	outs, err := parallel.Map(context.Background(), workers, nvmfSweep,
		func(_ context.Context, _ int, in nvmfCellIn) (NvmfCell, error) {
			return runNvmfCell(p, in, seed)
		})
	if err != nil {
		return NvmfResult{}, err
	}
	return NvmfResult{NIC: p.Name, Cells: outs}, nil
}

// Render formats the abuse-vs-loss table.
func (r NvmfResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NVMF: NeVerMore protocol abuse vs the NVMe-oF storage victim (%s)\n", r.NIC)
	fmt.Fprintf(&b, "%-12s %7s %6s %6s %6s %6s %7s %6s %6s %6s %6s %7s %7s %9s %4s %10s\n",
		"Attack", "kIOPS", "%base", "p99x", "Drops", "Retx", "DupAck",
		"BadQP", "InvNak", "InvAck", "BadPSN", "BadCap", "DataErr", "HARMONIC", "Det", "AbuseScore")
	for _, c := range r.Cells {
		det := "no"
		if c.Detected {
			det = "yes"
		}
		fmt.Fprintf(&b, "%-12s %7.1f %5.1f%% %5.2fx %6d %6d %7d %6d %6d %6d %6d %7d %7d %9.2f %4s %10.1f\n",
			c.Attack, c.KIOPS, c.IOPSPct, c.P99x, c.WireDrops, c.Retx, c.DupAcks,
			c.BadQP, c.InvNaks, c.InvAcks, c.BadPSN, c.BadCaps, c.DataErrs,
			c.MaxScore, det, c.AbuseScore)
	}
	b.WriteString("(AbuseScore uses only protocol-abuse markers — bad QPNs, invalid NAKs/ACKs, half-space PSNs, bad capsules —\n" +
		" all structurally zero under the matched benign-loss row; ack-forge stays marker-silent and surfaces only as DataErrs)\n")
	return b.String()
}
