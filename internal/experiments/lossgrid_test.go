package experiments

import (
	"testing"

	"github.com/thu-has/ragnar/internal/nic"
)

// lossGridFixture is a reduced grid sized for the test suite; the golden file
// pins its rendered rows (and checkGolden proves worker-count independence).
func lossGridFixture(t *testing.T, workers int) LossGridResult {
	t.Helper()
	r, err := LossGrid(nic.CX5, 48, 2, []float64{0, 0.25, 1}, 1, workers)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestGoldenLossGridRender(t *testing.T) {
	checkGolden(t, "lossgrid_cx5_small", func(workers int) string {
		return lossGridFixture(t, workers).Render()
	})
}

// TestLossGridDegradesMonotonically is the experiment's acceptance property:
// along each channel's loss axis the effective bandwidth never increases, the
// loss-0 row is pristine (no drops, no retransmissions), and every lossy row
// shows transport recovery activity.
func TestLossGridDegradesMonotonically(t *testing.T) {
	r := lossGridFixture(t, 1)
	perChannel := map[string][]LossCell{}
	for _, c := range r.Cells {
		perChannel[c.Channel] = append(perChannel[c.Channel], c)
	}
	if len(perChannel) != 2 {
		t.Fatalf("channels = %d, want 2", len(perChannel))
	}
	for name, cells := range perChannel {
		for i, c := range cells {
			if c.LossPct == 0 {
				if c.WireDrops != 0 || c.Retransmits != 0 {
					t.Errorf("%s loss=0: drops=%d retx=%d, want pristine wire",
						name, c.WireDrops, c.Retransmits)
				}
			} else {
				if c.WireDrops == 0 {
					t.Errorf("%s loss=%v: no wire drops recorded", name, c.LossPct)
				}
				if c.Retransmits == 0 {
					t.Errorf("%s loss=%v: no retransmissions recorded", name, c.LossPct)
				}
			}
			if i > 0 && c.EffectiveBps > cells[i-1].EffectiveBps {
				t.Errorf("%s: effective bandwidth rose from %.1f bps (loss %v%%) to %.1f bps (loss %v%%)",
					name, cells[i-1].EffectiveBps, cells[i-1].LossPct, c.EffectiveBps, c.LossPct)
			}
		}
	}
}
