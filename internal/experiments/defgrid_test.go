package experiments

import (
	"testing"

	"github.com/thu-has/ragnar/internal/bitstream"
	"github.com/thu-has/ragnar/internal/covert"
	"github.com/thu-has/ragnar/internal/nic"
)

func TestGoldenDefGridRender(t *testing.T) {
	checkGolden(t, "defgrid_cx5", func(workers int) string {
		r, err := DefGrid(nic.CX5, 5, workers)
		if err != nil {
			t.Fatal(err)
		}
		return r.Render()
	})
}

// The grid's two headline claims, asserted numerically rather than pinned as
// bytes: the constant-time TPU reduces the intra-MR (KF4) channel to a coin
// flip, and the ISO partition's defensive win is not bought with victim
// goodput — the 2-tenant victim keeps most of its CX5 rate.
func TestDefGridDistinguishability(t *testing.T) {
	if testing.Short() {
		t.Skip("full defense grid in -short mode")
	}
	r, err := DefGrid(nic.CX5, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(r.Rows))
	}
	base, iso, ct := r.Rows[0], r.Rows[1], r.Rows[2]

	// Attack side: the undefended intra-MR channel decodes nearly cleanly;
	// under the constant-time TPU the decoder is guessing (50% +/- sampling
	// noise over defgridIntraBits symbols).
	if base.IntraErr > 0.15 {
		t.Errorf("CX5 intra-MR error %.1f%%, want a working channel (<= 15%%)", base.IntraErr*100)
	}
	if ct.IntraErr < 0.35 || ct.IntraErr > 0.65 {
		t.Errorf("const-TPU intra-MR error %.1f%%, want chance-level (35-65%%)", ct.IntraErr*100)
	}
	// ISO alone must not close KF4 (it partitions schedulers, not the TPU),
	// and it must close the priority channel that CX5 leaves wide open.
	if iso.IntraErr > 0.15 {
		t.Errorf("CX5-ISO intra-MR error %.1f%%, partitioning should not affect the TPU carrier", iso.IntraErr*100)
	}
	if base.PriorityErr > 0.10 {
		t.Errorf("CX5 priority error %.1f%%, want a working channel", base.PriorityErr*100)
	}
	if iso.PriorityErr < 0.25 {
		t.Errorf("CX5-ISO priority error %.1f%%, partition should break the channel (>= 25%%)", iso.PriorityErr*100)
	}

	// Cost side: the documented bound — the CX5-ISO victim keeps at least
	// 85% of its CX5 goodput under the same 2-tenant WRITE aggressor, and
	// the const-TPU solo tax stays under 2x.
	if base.VictimGbps <= 0 {
		t.Fatal("CX5 victim goodput is zero; rig broken")
	}
	if ratio := iso.VictimGbps / base.VictimGbps; ratio < 0.85 {
		t.Errorf("CX5-ISO victim keeps only %.0f%% of CX5 goodput, documented bound is 85%%", ratio*100)
	}
	if iso.SoloGbps <= 0 || ct.SoloGbps/iso.SoloGbps > 2 {
		t.Errorf("const-TPU solo goodput %.2f vs ISO %.2f, tax bound is 2x", ct.SoloGbps, iso.SoloGbps)
	}
}

// One golden experiment per channel family on CX5, rendered across the
// strategy seam: the strict arbiter + empirical TPU defaults must reproduce
// the byte streams these channels produced before ArbiterStrategy and
// TPUStrategy existed. Drift here means the refactor changed a legacy
// schedule.
func TestDefaultStrategiesByteIdentical(t *testing.T) {
	checkGolden(t, "seam_cx5", func(workers int) string {
		var b []byte
		// Priority (Grain-I/II): fluid schedules through the arbitrated
		// egress seam.
		prio := covert.NewPriorityChannel(nic.CX5).Transmit(Fig9Bits, 5)
		b = append(b, []byte("priority "+prio.Decoded.String()+"\n")...)
		// Inter-MR (Grain-III): discrete rig through SubmitMeta and the
		// strict arbiter.
		inter, err := covert.NewInterMRChannel(nic.CX5, 5)
		if err != nil {
			t.Fatal(err)
		}
		interRun, err := inter.Transmit(bitstream.RandomBits(5|1, 24))
		if err != nil {
			t.Fatal(err)
		}
		b = append(b, []byte("inter-MR "+interRun.Decoded.String()+"\n")...)
		// Intra-MR (Grain-IV): the empirical TPU strategy's offset carrier.
		intra, err := covert.NewIntraMRChannel(nic.CX5, 5)
		if err != nil {
			t.Fatal(err)
		}
		intraRun, err := intra.Transmit(bitstream.RandomBits(5|1, 40))
		if err != nil {
			t.Fatal(err)
		}
		b = append(b, []byte("intra-MR "+intraRun.Decoded.String()+"\n")...)
		return string(b)
	})
}
