package experiments

// Golden-output tests: the rendered rows of the paper's tables and figures
// are pinned to testdata/*.golden, and every scenario is rendered both
// sequentially and at NumCPU workers. Together they prove the parallel
// sweep engine neither reorders nor perturbs a single rendered row.
// Regenerate after an intentional model change with:
//
//	go test ./internal/experiments -run TestGolden -update

import (
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/revengine"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, render func(workers int) string) {
	t.Helper()
	seq := render(1)
	par := render(runtime.NumCPU())
	if seq != par {
		t.Fatalf("%s: parallel render differs from sequential render\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
			name, seq, runtime.NumCPU(), par)
	}
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(seq), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if string(want) != seq {
		t.Fatalf("%s: render drifted from golden file (rerun with -update if the change is intentional)\n--- got ---\n%s\n--- want ---\n%s",
			name, seq, want)
	}
}

func TestGoldenFig4Render(t *testing.T) {
	checkGolden(t, "fig4_cx4", func(workers int) string {
		return Fig4(nic.CX4, false, workers).Render()
	})
}

func TestGoldenOffsetRender(t *testing.T) {
	// A reduced Figure 6: enough offsets to exercise the 8/64 B structure in
	// the rendered rows without the full offsetsAround() axis.
	offsets := []uint64{0, 7, 8, 63, 64, 65, 128, 2048, 4096}
	checkGolden(t, "fig6_cx4_small", func(workers int) string {
		points, err := revengine.AbsOffsetSweep(nic.CX4, 64, offsets, 120, 3, workers)
		if err != nil {
			t.Fatal(err)
		}
		r := OffsetResult{NIC: nic.CX4.Name, Figure: "Figure 6 (abs offset, 64B reads)", MsgSize: 64, Points: points}
		return r.Render()
	})
}

func TestGoldenRelOffsetRender(t *testing.T) {
	deltas := []uint64{64, 512, 1024, 1088, 2048}
	checkGolden(t, "fig8_cx4_small", func(workers int) string {
		points, err := revengine.RelOffsetSweep(nic.CX4, 64, deltas, 120, 3, workers)
		if err != nil {
			t.Fatal(err)
		}
		r := OffsetResult{NIC: nic.CX4.Name, Figure: "Figure 8 (rel offset, 64B reads)", MsgSize: 64, Points: points}
		return r.Render()
	})
}

func TestGoldenFig5Render(t *testing.T) {
	checkGolden(t, "fig5_cx4", func(workers int) string {
		r, err := Fig5(nic.CX4, 120, 3, workers)
		if err != nil {
			t.Fatal(err)
		}
		return r.Render()
	})
}

func TestGoldenTable5Render(t *testing.T) {
	checkGolden(t, "table5", func(workers int) string {
		r, err := Table5(64, 5, workers)
		if err != nil {
			t.Fatal(err)
		}
		return r.Render()
	})
}
