package experiments

import (
	"fmt"
	"io"

	"github.com/thu-has/ragnar/internal/bitstream"
	"github.com/thu-has/ragnar/internal/covert"
	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/trace"
)

// Traced experiments: the same rigs the figures use, run once with a flight
// recorder attached so the datapath can be inspected event by event. The
// recorder is strictly passive — a traced run produces bit-identical results
// to its untraced twin (the e2e regression test holds the repo to this) —
// so the trace is a faithful record of the run the figures report, not of a
// perturbed variant.

// TraceOutcome bundles one traced run: the recorder holding the event ring
// and metrics registry, plus the experiment's own rendered result.
type TraceOutcome struct {
	Recorder *trace.Recorder
	Summary  string
}

// WriteChrome exports the trace in Chrome trace-event JSON
// (chrome://tracing, Perfetto).
func (o *TraceOutcome) WriteChrome(w io.Writer) error {
	return trace.WriteChrome(w, o.Recorder)
}

// WriteText exports the compact text timeline.
func (o *TraceOutcome) WriteText(w io.Writer) error {
	return trace.WriteText(w, o.Recorder)
}

// TraceFig9 runs the Figure 9 priority channel on one adapter with tracing.
// The channel is fluid-modelled, so the trace carries the sender's symbol
// instants and the monitor's windowed-bandwidth counter track rather than
// per-packet events.
func TraceFig9(p nic.Profile, seed int64) (*TraceOutcome, error) {
	rec := trace.NewRecorder("fig9/"+p.Name, trace.DefaultCapacity)
	ch := covert.NewPriorityChannel(p)
	ch.Trace = rec
	run := ch.Transmit(Fig9Bits, seed)
	return &TraceOutcome{
		Recorder: rec,
		Summary: fmt.Sprintf("fig9 [%s]: decoded=%s errors=%.2f%%\n",
			p.Name, run.Decoded, run.Result.ErrorRate*100),
	}, nil
}

// TraceULI runs one ULI covert transmission (kind "intermr" or "intramr")
// with the recorder wired through the whole rig: engine, both client NICs,
// the server NIC, every fabric link, the verbs layers, the receiver's ULI
// sampler and the sender's symbol switches.
func TraceULI(kind string, p nic.Profile, bits, seed int64) (*TraceOutcome, error) {
	var (
		ch  *covert.ULIChannel
		err error
	)
	switch kind {
	case "intermr":
		ch, err = covert.NewInterMRChannel(p, seed)
	case "intramr":
		ch, err = covert.NewIntraMRChannel(p, seed)
	default:
		return nil, fmt.Errorf("trace: unknown ULI channel %q", kind)
	}
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder(kind+"/"+p.Name, trace.DefaultCapacity)
	ch.Cluster.AttachRecorder(rec)
	ch.Trace = rec
	payload := bitstream.RandomBits(uint64(seed)|1, int(bits))
	run, err := ch.Transmit(payload)
	if err != nil {
		return nil, err
	}
	return &TraceOutcome{
		Recorder: rec,
		Summary: fmt.Sprintf("%s [%s]: %d bits, errors=%.2f%%\n",
			kind, p.Name, len(payload), run.Result.ErrorRate*100),
	}, nil
}

// TraceLossRep runs one lossy inter-MR transmission (the lossgrid rig at the
// given drop percentage) with full tracing: the interesting traces, because
// go-back-N recovery shows up as NakSend → Rewind → Retransmit chains and
// retransmit-stall spans (EXPERIMENTS.md walks through reading one).
func TraceLossRep(p nic.Profile, lossPct float64, bits, seed int64) (*TraceOutcome, error) {
	ch, err := covert.NewInterMRChannel(p, seed)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder(fmt.Sprintf("lossgrid/%s/%.2f%%", p.Name, lossPct), trace.DefaultCapacity)
	ch.Cluster.AttachRecorder(rec)
	ch.Trace = rec
	ch.Cluster.InjectLoss(sim.DeriveSeed(seed, 1<<32), lossPct/100)
	for _, cn := range []*lab.Conn{ch.RxConn, ch.TxConn} {
		if err := cn.QP.SetRetry(lossRetryTimeout, lossRetryLimit); err != nil {
			return nil, err
		}
	}
	payload := bitstream.RandomBits(uint64(seed)|1, int(bits))
	run, err := ch.Transmit(payload)
	if err != nil {
		return nil, err
	}
	m := rec.Metrics()
	return &TraceOutcome{
		Recorder: rec,
		Summary: fmt.Sprintf("lossgrid [%s] loss=%.2f%%: %d bits, errors=%.2f%%, naks=%d rewinds=%d retx=%d\n",
			p.Name, lossPct, len(payload), run.Result.ErrorRate*100,
			m.SeqNaks(), m.Count(trace.KindRewind), m.Retransmits()),
	}, nil
}

// Trace dispatches a traced experiment by name: fig9, intermr, intramr, or
// lossgrid (one rep at 0.5% loss).
func Trace(exp string, p nic.Profile, seed int64) (*TraceOutcome, error) {
	switch exp {
	case "fig9":
		return TraceFig9(p, seed)
	case "intermr", "intramr":
		return TraceULI(exp, p, 32, seed)
	case "lossgrid":
		return TraceLossRep(p, 0.5, 48, seed)
	default:
		return nil, fmt.Errorf("unknown traced experiment %q (try fig9, intermr, intramr, lossgrid)", exp)
	}
}
