package experiments

import (
	"testing"

	"github.com/thu-has/ragnar/internal/nic"
)

func TestGoldenExhaustRender(t *testing.T) {
	checkGolden(t, "exhaust_cx5", func(workers int) string {
		r, err := Exhaust(nic.CX5, 3, 1, workers)
		if err != nil {
			t.Fatal(err)
		}
		return r.Render()
	})
}

// TestExhaustContentionOracle pins the contention ≡ exhaustion-at-capacity-∞
// property: the zero-exhaustion corner of the sweep (cell 0: 1 QP, 1 MR, no
// pause abuse, unconstrained profile) must reproduce the tenants READ/4 KB
// cell float-for-float. Everything the exhaust rig adds — the finite
// context cache behind the legacy QPC lookups, the CQ overrun path, server
// snapshots, the victim-side flight recorder, the new defense features —
// must be invisible when no resource is actually exhausted.
func TestExhaustContentionOracle(t *testing.T) {
	er, err := Exhaust(nic.CX5, 3, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Tenants(nic.CX5, 3, []int{4096}, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, tn := er.Cells[0], tr.Cells[0]
	if e.Regime != "contention" || tn.Op != "READ" || tn.AggSize != 4096 {
		t.Fatalf("cell selection wrong: exhaust %q, tenants %s/%d", e.Regime, tn.Op, tn.AggSize)
	}
	if e.AggGbps != tn.AggGbps {
		t.Fatalf("AggGbps %v != tenants %v", e.AggGbps, tn.AggGbps)
	}
	if e.SoloGbps != tn.SoloGbps {
		t.Fatalf("SoloGbps %v != tenants %v", e.SoloGbps, tn.SoloGbps)
	}
	if e.MaxScore != tn.MaxScore || e.Detected != tn.Detected {
		t.Fatalf("HARMONIC (%v, %d) != tenants (%v, %d)", e.MaxScore, e.Detected, tn.MaxScore, tn.Detected)
	}
	if e.SwitchPFC != tn.SwitchPFC {
		t.Fatalf("SwitchPFC %d != tenants %d", e.SwitchPFC, tn.SwitchPFC)
	}
	if len(e.VictimGbps) != len(tn.VictimGbps) {
		t.Fatalf("victim counts differ: %d vs %d", len(e.VictimGbps), len(tn.VictimGbps))
	}
	for i := range e.VictimGbps {
		if e.VictimGbps[i] != tn.VictimGbps[i] {
			t.Fatalf("victim %d: %v != tenants %v", i, e.VictimGbps[i], tn.VictimGbps[i])
		}
	}
}

// TestExhaustDistinguishability is the headline acceptance property: the
// exhaustion-marker score separates resource exhaustion from plain
// contention. The contention cell must leave every finite-resource marker
// at zero (ExhScore 0), while the context-thrashing and pause-abuse cells
// push ExhScore past the HARMONIC threshold — even though the per-victim
// volume-counter detector fires for all of them alike.
func TestExhaustDistinguishability(t *testing.T) {
	r, err := Exhaust(nic.CX5, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	const threshold = 4 // defense.Harmonic default
	byRegime := map[string][]ExhaustCell{}
	for _, c := range r.Cells {
		byRegime[c.Regime] = append(byRegime[c.Regime], c)
	}

	for _, c := range byRegime["contention"] {
		if c.CtxMisses != 0 || c.CtxEvictions != 0 || c.CQOverruns != 0 || c.RxPauses != 0 {
			t.Fatalf("contention cell has nonzero exhaustion markers: %+v", c)
		}
		if c.ExhScore != 0 {
			t.Fatalf("contention ExhScore = %v, want 0", c.ExhScore)
		}
		// ... while looking every bit like an attack to the volume detector.
		if c.Detected == 0 {
			t.Fatal("contention cell did not trip the per-victim HARMONIC")
		}
	}

	// The over-capacity QP sweep cell: context thrash with evictions, and a
	// marker score far past threshold.
	var qp64 ExhaustCell
	for _, c := range byRegime["qp-ctx"] {
		if c.QPs == 64 {
			qp64 = c
		}
	}
	if qp64.QPs != 64 {
		t.Fatal("qp-ctx 64 cell missing from sweep")
	}
	if qp64.CtxEvictions == 0 || qp64.CtxMisses == 0 {
		t.Fatalf("qp-ctx 64: no context thrash (misses=%d evictions=%d)", qp64.CtxMisses, qp64.CtxEvictions)
	}
	if qp64.ExhScore <= threshold {
		t.Fatalf("qp-ctx 64 ExhScore = %v, want > %d", qp64.ExhScore, threshold)
	}

	// The over-capacity MR sweep cell overruns the aggressor's CQs too.
	var mr64 ExhaustCell
	for _, c := range byRegime["mr-ctx"] {
		if c.MRs == 64 {
			mr64 = c
		}
	}
	if mr64.MRs != 64 {
		t.Fatal("mr-ctx 64 cell missing from sweep")
	}
	if mr64.CQOverruns == 0 {
		t.Fatal("mr-ctx 64: aggressor CQs never overran")
	}
	if mr64.ExhScore <= threshold {
		t.Fatalf("mr-ctx 64 ExhScore = %v, want > %d", mr64.ExhScore, threshold)
	}

	// Pause abuse is flagged by the switch-side pause-frame counter alone.
	for _, c := range byRegime["pause"] {
		if c.RxPauses == 0 {
			t.Fatalf("pause duty=%d%%: switch saw no pause frames", c.Duty)
		}
		if c.ExhScore <= threshold {
			t.Fatalf("pause duty=%d%% ExhScore = %v, want > %d", c.Duty, c.ExhScore, threshold)
		}
		// The stall must actually bite the victims.
		if c.SoloPct() >= 50 {
			t.Fatalf("pause duty=%d%%: victims kept %.1f%% of solo bandwidth", c.Duty, c.SoloPct())
		}
	}

	// Victim latency inflation is visible through MetricsFeatures in every
	// attacked cell.
	for _, c := range r.Cells {
		if c.WqeP99x <= 1 {
			t.Fatalf("%s cell: victim WQE p99 did not inflate (%.2fx)", c.Regime, c.WqeP99x)
		}
	}
}

func TestExhaustDefaults(t *testing.T) {
	r, err := Exhaust(nic.CX4, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Victims != 3 || len(r.Cells) != len(exhaustSweep) {
		t.Fatalf("victims=%d cells=%d", r.Victims, len(r.Cells))
	}
	for _, c := range r.Cells {
		if len(c.VictimGbps) != 3 {
			t.Fatalf("cell %s has %d victim rates", c.Regime, len(c.VictimGbps))
		}
	}
}
