package experiments

import (
	"testing"

	"github.com/thu-has/ragnar/internal/nic"
)

func TestGoldenTenantsRender(t *testing.T) {
	checkGolden(t, "tenants_cx5", func(workers int) string {
		r, err := Tenants(nic.CX5, 3, nil, 1, workers)
		if err != nil {
			t.Fatal(err)
		}
		return r.Render()
	})
}

// TestTenantsMonotoneCollapse is the acceptance property: per-victim
// bandwidth is non-increasing as the aggressor's message size grows, for
// each opcode independently.
func TestTenantsMonotoneCollapse(t *testing.T) {
	r, err := Tenants(nic.CX5, 3, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 2*len(TenantAggSizes) {
		t.Fatalf("cells = %d, want %d", len(r.Cells), 2*len(TenantAggSizes))
	}
	byOp := map[string][]TenantCell{}
	for _, c := range r.Cells {
		byOp[c.Op] = append(byOp[c.Op], c)
	}
	for op, cells := range byOp {
		prev := -1.0
		for _, c := range cells {
			mean := c.MeanVictimGbps()
			if mean <= 0 {
				t.Fatalf("%s size=%d: victims fully starved (%.3f Gbps)", op, c.AggSize, mean)
			}
			if prev >= 0 && mean > prev*1.01 {
				t.Fatalf("%s: victim bandwidth rose from %.3f to %.3f Gbps as aggressor grew to %d",
					op, prev, mean, c.AggSize)
			}
			prev = mean
			// Every cell must show real degradation versus its own solo
			// baseline, and the per-victim detectors must notice.
			if c.SoloPct() >= 90 {
				t.Fatalf("%s size=%d: no degradation (%.1f%% of solo)", op, c.AggSize, c.SoloPct())
			}
			// A heavy squeeze must trip every victim's detector; a light one
			// may legitimately stay under the HARMONIC threshold.
			if c.SoloPct() < 50 && c.Detected != len(c.VictimGbps) {
				t.Fatalf("%s size=%d: HARMONIC fired for %d/%d victims",
					op, c.AggSize, c.Detected, len(c.VictimGbps))
			}
		}
	}
}

// TestTenantsPFCRegime drives the aggressor past the switch's XOFF
// threshold: a single over-threshold packet must assert PFC pauses at the
// shared switch, and the stop-and-go throttles the aggressor itself (the
// documented self-harm regime excluded from the default monotone sweep).
func TestTenantsPFCRegime(t *testing.T) {
	r, err := Tenants(nic.CX5, 3, []int{262144}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Cells {
		if c.Op != "WRITE" {
			continue
		}
		if c.SwitchPFC == 0 {
			t.Fatalf("WRITE size=%d: no switch PFC pauses recorded", c.AggSize)
		}
	}
}

func TestTenantsDefaults(t *testing.T) {
	// victims<1 clamps to 3; empty sizes select the default sweep.
	r, err := Tenants(nic.CX4, 0, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Victims != 3 || len(r.Cells) != 2*len(TenantAggSizes) {
		t.Fatalf("victims=%d cells=%d", r.Victims, len(r.Cells))
	}
	for _, c := range r.Cells {
		if len(c.VictimGbps) != 3 {
			t.Fatalf("cell %s/%d has %d victim rates", c.Op, c.AggSize, len(c.VictimGbps))
		}
	}
}
