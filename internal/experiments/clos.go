package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/thu-has/ragnar/internal/fabric"
	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/parallel"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/traffic"
)

// The clos experiment scales the noisy-neighbor setting from one shared
// switch (tenants) to a leaf-spine fabric: victims spread across leaves
// stream moderate WRITEs to the server, ECMP fans their flows across the
// spines, and one aggressor on the far leaf sweeps its message size. Below
// the PFC XOFF threshold the squeeze is confined to the server RNIC and
// its leaf port; once an aggressor burst crosses it, the server leaf
// pauses its trunk ingress, the pause propagates to the spines and on to
// every leaf — a cross-switch congestion tree, the fabric-scale spreading
// NeVerMore exploits. The per-tier PFC columns and the Tree column show
// that transition directly.
//
// The experiment is also the end-to-end harness for the partitioned
// engine: the same cells run on 1..Leaves+Spines engine domains and must
// render byte-identically (TestClosExperimentDeterministic pins domains x
// workers jointly; scripts/equivalence.sh re-checks the shipped binary).

const (
	closVictimSize  = 2048
	closVictimDepth = 4
	closAggDepth    = 8
	closWindow      = 50 * sim.Microsecond
	closWarmup      = 20 * sim.Microsecond
	closSoloWins    = 2
	closScoreWins   = 3
)

// ClosAggSizes is the default aggressor sweep: one size well under the
// switch XOFF threshold (RNIC-pipeline regime) and one burst above it
// (congestion-tree regime).
var ClosAggSizes = []int{4096, 131072}

// ClosCell is one aggressor configuration on a fresh fabric.
type ClosCell struct {
	Op         string
	AggSize    int
	AggGbps    float64
	VictimGbps []float64 // per victim, during contention
	SoloGbps   float64   // mean per-victim rate with the aggressor idle
	LeafPFC    uint64    // PFC pause assertions by leaf switches, contention phase
	SpinePFC   uint64    // PFC pause assertions by spine switches, contention phase
	PausedSw   int       // switches that asserted >=1 pause — the congestion tree extent
	SpinePkts  []uint64  // packets forwarded per spine, whole run (ECMP spread)
}

// MeanVictimGbps averages the per-victim contention bandwidth.
func (c ClosCell) MeanVictimGbps() float64 {
	if len(c.VictimGbps) == 0 {
		return 0
	}
	var s float64
	for _, v := range c.VictimGbps {
		s += v
	}
	return s / float64(len(c.VictimGbps))
}

// SoloPct is the mean victim bandwidth as a percentage of the solo baseline.
func (c ClosCell) SoloPct() float64 {
	if c.SoloGbps <= 0 {
		return 0
	}
	return 100 * c.MeanVictimGbps() / c.SoloGbps
}

// ClosResult is the rendered experiment outcome.
type ClosResult struct {
	NIC          string
	Leaves       int
	Spines       int
	HostsPerLeaf int
	Domains      int // engine domains each cell ran on (after clamping)
	Cells        []ClosCell
}

type closCellIn struct {
	op     nic.Opcode
	size   int
	cellID uint64
}

// runClosCell measures one aggressor configuration on a fresh fabric.
func runClosCell(p nic.Profile, fab lab.ClosConfig, in closCellIn, seed int64) (ClosCell, error) {
	fab.Profile = p
	fab.Seed = sim.DeriveSeed(seed, in.cellID)
	c := lab.Clos(fab)
	mr, err := c.RegisterServerMR(16 << 20)
	if err != nil {
		return ClosCell{}, err
	}
	cell := ClosCell{AggSize: in.size}
	if in.op == nic.OpRead {
		cell.Op = "READ"
	} else {
		cell.Op = "WRITE"
	}

	// The aggressor is the last client — it lives on the last leaf, so its
	// traffic crosses the full fabric. Everyone else is a victim.
	agg := len(c.Clients) - 1
	conns := make([]*lab.Conn, agg)
	for i := range conns {
		conn, err := c.Dial(i, closVictimDepth*2)
		if err != nil {
			return ClosCell{}, err
		}
		if err := c.Warm(conn, mr); err != nil {
			return ClosCell{}, err
		}
		conns[i] = conn
	}
	aggConn, err := c.Dial(agg, closAggDepth*2)
	if err != nil {
		return ClosCell{}, err
	}
	if err := c.Warm(aggConn, mr); err != nil {
		return ClosCell{}, err
	}

	gens := make([]*traffic.Generator, len(conns))
	for i, conn := range conns {
		gens[i] = &traffic.Generator{
			QP: conn.QP, CQ: conn.CQ, Op: nic.OpWrite,
			MsgSize: closVictimSize, Depth: closVictimDepth,
			Next: traffic.FixedTarget(mr.Describe(uint64(i) * (128 << 10))),
		}
		if err := gens[i].Start(); err != nil {
			return ClosCell{}, err
		}
	}

	// Baseline (aggressor idle).
	c.RunFor(closWarmup)
	soloStart := make([]uint64, len(gens))
	for i, g := range gens {
		soloStart[i] = g.Completed()
	}
	c.RunFor(closSoloWins * closWindow)
	var solo float64
	for i, g := range gens {
		solo += gbpsOf(g.Completed()-soloStart[i], closVictimSize, closSoloWins*closWindow)
	}
	cell.SoloGbps = solo / float64(len(gens))

	// Contention.
	aggGen := &traffic.Generator{
		QP: aggConn.QP, CQ: aggConn.CQ, Op: in.op,
		MsgSize: in.size, Depth: closAggDepth,
		Next: traffic.FixedTarget(mr.Describe(15 << 20)),
	}
	if err := aggGen.Start(); err != nil {
		return ClosCell{}, err
	}
	pfc0 := make([]uint64, len(c.Switches))
	for s, sw := range c.Switches {
		for tc := 0; tc < 8; tc++ {
			pfc0[s] += sw.PFCPauses(tc)
		}
	}
	vicStart := make([]uint64, len(gens))
	for i, g := range gens {
		vicStart[i] = g.Completed()
	}
	aggStart := aggGen.Completed()
	c.RunFor(closScoreWins * closWindow)

	const scoreDur = closScoreWins * closWindow
	for i, g := range gens {
		cell.VictimGbps = append(cell.VictimGbps,
			gbpsOf(g.Completed()-vicStart[i], closVictimSize, scoreDur))
	}
	cell.AggGbps = gbpsOf(aggGen.Completed()-aggStart, in.size, scoreDur)
	for s, sw := range c.Switches {
		var pfc uint64
		for tc := 0; tc < 8; tc++ {
			pfc += sw.PFCPauses(tc)
		}
		pfc -= pfc0[s]
		if s < fab.Leaves {
			cell.LeafPFC += pfc
		} else {
			cell.SpinePFC += pfc
		}
		if pfc > 0 {
			cell.PausedSw++
		}
	}
	for _, sw := range c.Switches[fab.Leaves:] {
		cell.SpinePkts = append(cell.SpinePkts, sw.FwdPackets())
	}
	for _, g := range gens {
		if g.Errors() > 0 {
			return ClosCell{}, fmt.Errorf("clos: victim completions errored")
		}
	}
	return cell, nil
}

// closSwitch is the fabric switch profile: shallow shared buffer with a
// tight XOFF threshold, the regime real ToR/spine ASICs operate in (KB-scale
// per-port headroom). The single-switch experiments keep the default deep
// buffer; here the shallow pool is what lets a pause at the server leaf back
// traffic up through a spine and on to the aggressor's leaf — without it the
// tree never leaves the first switch.
func closSwitch() fabric.SwitchConfig {
	return fabric.SwitchConfig{
		FwdDelay:       300 * sim.Nanosecond,
		SharedBufBytes: 256 << 10,
		XOffBytes:      16 << 10,
		XOnBytes:       8 << 10,
	}
}

// closFabric picks the fabric scale: 4x2 leaves/spines with 2 hosts per
// leaf (8 hosts) by default, 8x4 with 8 hosts per leaf (64 hosts) in full
// mode — the paper-scale multi-tenant pod.
func closFabric(full bool, domains int) lab.ClosConfig {
	if full {
		return lab.ClosConfig{Leaves: 8, Spines: 4, HostsPerLeaf: 8, Domains: domains, Switch: closSwitch()}
	}
	return lab.ClosConfig{Leaves: 4, Spines: 2, HostsPerLeaf: 2, Domains: domains, Switch: closSwitch()}
}

// Clos sweeps aggressor size on the leaf-spine fabric. domains selects the
// engine partitioning each cell runs on (1 = serial; results are identical
// at any value — that is the partitioned engine's equivalence contract).
// Every cell is an independent fabric seeded with sim.DeriveSeed(seed,
// cellID), so rows are identical at any worker count too.
func Clos(p nic.Profile, domains int, full bool, seed int64, workers int) (ClosResult, error) {
	fab := closFabric(full, domains)
	var cells []closCellIn
	for i, sz := range ClosAggSizes {
		cells = append(cells, closCellIn{op: nic.OpWrite, size: sz, cellID: uint64(i)})
	}
	outs, err := parallel.Map(context.Background(), workers, cells,
		func(_ context.Context, _ int, in closCellIn) (ClosCell, error) {
			return runClosCell(p, fab, in, seed)
		})
	if err != nil {
		return ClosResult{}, err
	}
	nd := fab.Domains
	if nd < 1 {
		nd = 1
	}
	if max := fab.Leaves + fab.Spines; nd > max {
		nd = max
	}
	return ClosResult{
		NIC: p.Name, Leaves: fab.Leaves, Spines: fab.Spines,
		HostsPerLeaf: fab.HostsPerLeaf, Domains: nd, Cells: outs,
	}, nil
}

// Render formats the congestion-tree table.
func (r ClosResult) Render() string {
	var b strings.Builder
	hosts := r.Leaves * r.HostsPerLeaf
	fmt.Fprintf(&b, "CLOS: cross-switch congestion trees on a leaf-spine fabric (%s, %dx%d leaf/spine, %d hosts, %d engine domain(s))\n",
		r.NIC, r.Leaves, r.Spines, hosts, r.Domains)
	fmt.Fprintf(&b, "%-6s %9s %10s %12s %8s %9s %9s %6s %s\n",
		"AggOp", "AggSize", "AggGbps", "VictimGbps", "%solo", "LeafPFC", "SpinePFC", "Tree", "SpinePkts")
	total := r.Leaves + r.Spines
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-6s %9d %10.2f %12.2f %7.1f%% %9d %9d %3d/%-2d %v\n",
			c.Op, c.AggSize, c.AggGbps, c.MeanVictimGbps(), c.SoloPct(),
			c.LeafPFC, c.SpinePFC, c.PausedSw, total, c.SpinePkts)
	}
	fmt.Fprintf(&b, "(victims: steady %dB WRITE depth %d from every leaf, ECMP-spread over the spines; once an aggressor burst crosses the XOFF threshold the server leaf pauses its trunks and the pause tree spans the fabric — Tree counts switches that asserted PFC)\n",
		closVictimSize, closVictimDepth)
	return b.String()
}
