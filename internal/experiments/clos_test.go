package experiments

import (
	"testing"

	"github.com/thu-has/ragnar/internal/nic"
)

// TestGoldenClosRender pins the congestion-tree table. The render runs on
// 2 engine domains, so the golden file — and every CI run that checks it —
// exercises the partitioned engine's window protocol, not just the serial
// path.
func TestGoldenClosRender(t *testing.T) {
	checkGolden(t, "clos_cx5", func(workers int) string {
		r, err := Clos(nic.CX5, 2, false, 1, workers)
		if err != nil {
			t.Fatal(err)
		}
		return r.Render()
	})
}

// TestClosExperimentDeterministic sweeps engine-domain count and worker
// count jointly: every (domains, workers) pair must render the identical
// table. Domain partitioning is the parallel-engine equivalence contract;
// worker independence is the per-cell seed-derivation contract — and the
// grid pins that the two compose (partitioned fabrics running concurrently
// in different worker goroutines still match the serial single-worker run).
func TestClosExperimentDeterministic(t *testing.T) {
	render := func(domains, workers int) string {
		r, err := Clos(nic.CX5, domains, false, 5, workers)
		if err != nil {
			t.Fatal(err)
		}
		r.Domains = 1 // drop the only legitimately varying field from the comparison
		return r.Render()
	}
	want := render(1, 1)
	for _, domains := range []int{1, 2, 3, 6} {
		for _, workers := range []int{1, 2, 4} {
			if domains == 1 && workers == 1 {
				continue
			}
			if got := render(domains, workers); got != want {
				t.Errorf("domains=%d workers=%d diverged from serial single-worker run:\n--- want ---\n%s--- got ---\n%s",
					domains, workers, want, got)
			}
		}
	}
}

// TestClosTreeSpansSwitches pins the experiment's headline claim: the
// over-threshold aggressor cell must light up PFC beyond the server leaf —
// at least one spine — while the under-threshold cell stays PFC-silent.
func TestClosTreeSpansSwitches(t *testing.T) {
	r, err := Clos(nic.CX5, 2, false, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) < 2 {
		t.Fatalf("want >=2 cells, got %d", len(r.Cells))
	}
	small, big := r.Cells[0], r.Cells[len(r.Cells)-1]
	if small.LeafPFC != 0 || small.SpinePFC != 0 {
		t.Errorf("under-threshold cell (%dB) asserted PFC: leaf=%d spine=%d",
			small.AggSize, small.LeafPFC, small.SpinePFC)
	}
	if big.SpinePFC == 0 || big.PausedSw < 2 {
		t.Errorf("over-threshold cell (%dB) tree did not span: spinePFC=%d pausedSw=%d",
			big.AggSize, big.SpinePFC, big.PausedSw)
	}
	if big.MeanVictimGbps() >= big.SoloGbps {
		t.Errorf("aggressor did not squeeze victims: contention %.2f >= solo %.2f Gbps",
			big.MeanVictimGbps(), big.SoloGbps)
	}
}
