package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/thu-has/ragnar/internal/bitstream"
	"github.com/thu-has/ragnar/internal/covert"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/parallel"
	"github.com/thu-has/ragnar/internal/pythia"
	"github.com/thu-has/ragnar/internal/sim"
)

// Fig9Bits is the bitstream transmitted in Figure 9.
var Fig9Bits = bitstream.MustParseBits("1101111101010010")

// Fig9Result carries the priority-channel traces for all NICs.
type Fig9Result struct {
	Runs map[string]*covert.PriorityRun
}

// Fig9 transmits the paper's bitstream over the priority channel on every
// adapter, one worker per NIC. Every run keeps the same per-NIC seed it had
// sequentially, so the traces are unchanged at any worker count.
func Fig9(seed int64, workers int) Fig9Result {
	runs, err := parallel.Map(context.Background(), workers, nic.PaperProfiles,
		func(_ context.Context, _ int, p nic.Profile) (*covert.PriorityRun, error) {
			return covert.NewPriorityChannel(p).Transmit(Fig9Bits, seed), nil
		})
	if err != nil {
		panic(err) // only a captured worker panic: the cell fn never errors
	}
	out := Fig9Result{Runs: map[string]*covert.PriorityRun{}}
	for i, p := range nic.PaperProfiles {
		out.Runs[p.Name] = runs[i]
	}
	return out
}

// Render prints the decoded streams and a coarse bandwidth-vs-time sketch.
func (r Fig9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: priority covert channel, bits %s\n", Fig9Bits)
	for _, p := range nic.PaperProfiles {
		run := r.Runs[p.Name]
		fmt.Fprintf(&b, "%-12s decoded=%s errors=%.2f%% bw=%.1f bps\n",
			p.Name, run.Decoded, run.Result.ErrorRate*100, run.Result.BandwidthBps)
		// One character per symbol: _ = deep drop (bit0), # = slight (bit1).
		perSym := len(run.Trace) / len(Fig9Bits)
		var spark []byte
		for s := 0; s < len(Fig9Bits); s++ {
			var acc float64
			for w := 0; w < perSym; w++ {
				acc += run.Trace[s*perSym+w].BW
			}
			if run.Decoded[s] == 1 {
				spark = append(spark, '#')
			} else {
				spark = append(spark, '_')
			}
			_ = acc
		}
		fmt.Fprintf(&b, "%-12s trace    %s\n", "", spark)
	}
	return b.String()
}

// Fig10Result is the folded ULI view of a periodic bitstream at SQ 256.
type Fig10Result struct {
	NIC    string
	Folded covert.FoldedTrace
	Result covert.Result
}

// Fig10 reproduces the folded-ULI demonstration: 1024 B reads, max send
// queue 256, CX-4, periodic 1-0 bits.
func Fig10(seed int64) (Fig10Result, error) {
	ch, err := covert.NewInterMRChannel(nic.CX4, seed)
	if err != nil {
		return Fig10Result{}, err
	}
	// Figure 10 overrides: deep queue, 1 KiB reads, slower symbols so the
	// deep queue still settles within each symbol. The deeper queues need
	// fresh connections with matching send-queue caps.
	rx, err := ch.Cluster.Dial(0, 258)
	if err != nil {
		return Fig10Result{}, err
	}
	tx, err := ch.Cluster.Dial(1, 34)
	if err != nil {
		return Fig10Result{}, err
	}
	ch.RxConn, ch.TxConn = rx, tx
	ch.RxSize = 1024
	ch.TxSize = 1024
	ch.RxDepth = 256
	ch.TxDepth = 32
	ch.SymbolTime = 800 * sim.Microsecond
	ch.BoundaryJitter = 0
	bits := make(bitstream.Bits, 20)
	for i := range bits {
		bits[i] = byte(i % 2)
	}
	run, err := ch.Transmit(bits)
	if err != nil {
		return Fig10Result{}, err
	}
	return Fig10Result{NIC: nic.CX4.Name, Folded: run.Folded, Result: run.Result}, nil
}

// Render prints the folded two-symbol period.
func (r Fig10Result) Render() string {
	return renderFolded(fmt.Sprintf("Figure 10 [%s]: folded ULI, 1024B reads, SQ 256", r.NIC), r.Folded)
}

// Fig11Result is the per-NIC folded inter-MR channel period.
type Fig11Result struct {
	Folds map[string]covert.FoldedTrace
}

// Fig11 folds the inter-MR channel's ULI over a two-bit period on all NICs
// under the best parameter combinations, one worker per NIC.
func Fig11(seed int64, workers int) (Fig11Result, error) {
	out := Fig11Result{Folds: map[string]covert.FoldedTrace{}}
	bits := make(bitstream.Bits, 24)
	for i := range bits {
		bits[i] = byte(i % 2)
	}
	folds, err := parallel.Map(context.Background(), workers, nic.PaperProfiles,
		func(_ context.Context, _ int, p nic.Profile) (covert.FoldedTrace, error) {
			ch, err := covert.NewInterMRChannel(p, seed)
			if err != nil {
				return covert.FoldedTrace{}, err
			}
			ch.BoundaryJitter = 0
			run, err := ch.Transmit(bits)
			if err != nil {
				return covert.FoldedTrace{}, err
			}
			return run.Folded, nil
		})
	if err != nil {
		return out, err
	}
	for i, p := range nic.PaperProfiles {
		out.Folds[p.Name] = folds[i]
	}
	return out, nil
}

// Render prints each NIC's folded period.
func (r Fig11Result) Render() string {
	var b strings.Builder
	for _, p := range nic.PaperProfiles {
		b.WriteString(renderFolded(fmt.Sprintf("Figure 11 [%s]: inter-MR folded period", p.Name), r.Folds[p.Name]))
	}
	return b.String()
}

func renderFolded(title string, f covert.FoldedTrace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i := range f.Phase {
		bar := int(f.Mean[i] * 40)
		fmt.Fprintf(&b, "%5.2f %6.2f %s\n", f.Phase[i], f.Mean[i], strings.Repeat("*", bar))
	}
	return b.String()
}

// Table5Row is one channel x NIC cell of Table V.
type Table5Row struct {
	Channel      string
	NIC          string
	BandwidthBps float64
	ErrorRate    float64
	EffectiveBps float64
}

// Table5Result aggregates all nine cells plus the priority row.
type Table5Result struct {
	Rows []Table5Row
}

// table5Cell is one channel x NIC evaluation of Table V, in the table's
// canonical row order (priority rows, then inter-MR, then intra-MR).
type table5Cell struct {
	kind string // "priority", "intermr", "intramr"
	p    nic.Profile
}

func table5Cells() []table5Cell {
	var cells []table5Cell
	for _, kind := range []string{"priority", "intermr", "intramr"} {
		for _, p := range nic.PaperProfiles {
			cells = append(cells, table5Cell{kind: kind, p: p})
		}
	}
	return cells
}

// Table5 evaluates all three covert channels on all three adapters with a
// random payload of the given length, one worker per cell. Every cell
// builds its own simulated cluster from the shared experiment seed (the
// cells were already independent rigs sequentially), so rows are identical
// at any worker count and stay in canonical order.
func Table5(bits int, seed int64, workers int) (Table5Result, error) {
	payload := bitstream.RandomBits(uint64(seed)|1, bits)
	rows, err := parallel.Map(context.Background(), workers, table5Cells(),
		func(_ context.Context, _ int, cell table5Cell) (Table5Row, error) {
			switch cell.kind {
			case "priority":
				// The ~1 bps channel uses a short payload or it would take
				// minutes of virtual time for no added information.
				run := covert.NewPriorityChannel(cell.p).Transmit(payload[:min(16, len(payload))], seed)
				return row(run.Result), nil
			case "intermr":
				ch, err := covert.NewInterMRChannel(cell.p, seed)
				if err != nil {
					return Table5Row{}, err
				}
				run, err := ch.Transmit(payload)
				if err != nil {
					return Table5Row{}, err
				}
				return row(run.Result), nil
			default: // intramr
				ch, err := covert.NewIntraMRChannel(cell.p, seed)
				if err != nil {
					return Table5Row{}, err
				}
				run, err := ch.Transmit(payload)
				if err != nil {
					return Table5Row{}, err
				}
				return row(run.Result), nil
			}
		})
	return Table5Result{Rows: rows}, err
}

func row(r covert.Result) Table5Row {
	return Table5Row{Channel: r.Channel, NIC: r.NIC,
		BandwidthBps: r.BandwidthBps, ErrorRate: r.ErrorRate, EffectiveBps: r.EffectiveBps}
}

// Render formats Table V.
func (r Table5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE V: covert channels\n")
	fmt.Fprintf(&b, "%-18s %-12s %14s %10s %14s\n", "Channel", "NIC", "Bandwidth", "Error", "Effective")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %-12s %14s %9.2f%% %14s\n",
			row.Channel, row.NIC, bps(row.BandwidthBps), row.ErrorRate*100, bps(row.EffectiveBps))
	}
	return b.String()
}

func bps(v float64) string {
	if v >= 1000 {
		return fmt.Sprintf("%.1f Kbps", v/1000)
	}
	return fmt.Sprintf("%.1f bps", v)
}

// PythiaResult is the baseline comparison behind the 3.2x claim.
type PythiaResult struct {
	PythiaBps  float64
	PythiaErr  float64
	RagnarBps  float64
	SpeedupX   float64
	EvictPages int
}

// PythiaCompare runs the Pythia baseline on CX-5 and compares it against
// Ragnar's inter-MR channel rate.
func PythiaCompare(bits int, seed int64) (PythiaResult, error) {
	ch, err := pythia.New(nic.CX5, seed)
	if err != nil {
		return PythiaResult{}, err
	}
	run, err := ch.Transmit(bitstream.RandomBits(uint64(seed)|1, bits))
	if err != nil {
		return PythiaResult{}, err
	}
	ragnar, err := covert.NewInterMRChannel(nic.CX5, seed)
	if err != nil {
		return PythiaResult{}, err
	}
	rbps := 1.0 / ragnar.SymbolTime.Seconds()
	return PythiaResult{
		PythiaBps:  run.Result.BandwidthBps,
		PythiaErr:  run.Result.ErrorRate,
		RagnarBps:  rbps,
		SpeedupX:   rbps / run.Result.BandwidthBps,
		EvictPages: ch.EvictionSetSize(),
	}, nil
}

// Render formats the comparison.
func (r PythiaResult) Render() string {
	return fmt.Sprintf("Pythia baseline (CX-5): %s at %.1f%% error (eviction set %d pages)\nRagnar inter-MR (CX-5): %s  ->  %.1fx Pythia\n",
		bps(r.PythiaBps), r.PythiaErr*100, r.EvictPages, bps(r.RagnarBps), r.SpeedupX)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
