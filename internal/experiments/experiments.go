// Package experiments assembles every table and figure of the paper's
// evaluation into a runnable, printable experiment. Each function returns a
// structured result with a Render method producing the rows/series the
// paper reports; cmd/ragnar and the benchmark harness are thin wrappers
// over this package.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/revengine"
)

// ---------------------------------------------------------------------------
// Table I — taxonomy (static, with the stealthiness rationale)
// ---------------------------------------------------------------------------

// TaxonomyRow is one line of Table I.
type TaxonomyRow struct {
	Work     string
	Types    string // P / C / S combinations
	Grains   string
	Defended string
	Channel  string
	Stealth  string
}

// Table1 returns the paper's comparison of RDMA-targeted hardware attacks.
func Table1() []TaxonomyRow {
	return []TaxonomyRow{
		{"Zhang [43]", "P", "II", "HARMONIC [22]", "-", "Medium"},
		{"Kong [18]", "P", "II", "HARMONIC [22]", "-", "Medium"},
		{"HUSKY [17]", "P", "II", "HARMONIC [22]", "-", "Medium"},
		{"Kim [13]", "S", "I", "-", "Volatile", "Low"},
		{"Pythia [37]", "C+S", "IV", "cache defenses / huge pages", "Persistent", "High"},
		{"RAGNAR", "C+S", "I/II/III/IV", "-", "Volatile", "High"},
	}
}

// RenderTable1 formats Table I.
func RenderTable1(rows []TaxonomyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE I: RDMA-targeted HW attacks\n")
	fmt.Fprintf(&b, "%-12s %-5s %-12s %-28s %-10s %s\n", "Work", "Type", "Grain", "Defended by", "Channel", "Stealth")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-5s %-12s %-28s %-10s %s\n", r.Work, r.Types, r.Grains, r.Defended, r.Channel, r.Stealth)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Tables II and III — environment and adapters
// ---------------------------------------------------------------------------

// RenderTable3 formats the modelled adapter parameters (Table III plus the
// calibrated microarchitectural constants).
func RenderTable3() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE III: ConnectX adapter models\n")
	fmt.Fprintf(&b, "%-14s %10s %10s %12s %10s %10s\n",
		"Feature", "CX-4", "CX-5", "CX-6", "", "")
	row := func(name string, f func(p nic.Profile) string) {
		fmt.Fprintf(&b, "%-14s %10s %10s %12s\n", name,
			f(nic.CX4), f(nic.CX5), f(nic.CX6))
	}
	row("Speed", func(p nic.Profile) string { return fmt.Sprintf("%.0fGbps", p.LineRateGbps) })
	row("HostIF GB/s", func(p nic.Profile) string { return fmt.Sprintf("%.1f", p.PCIeGBps) })
	row("TPU base", func(p nic.Profile) string { return p.TPUBase.String() })
	row("TPU banks", func(p nic.Profile) string { return fmt.Sprintf("%d", p.TPUBanks) })
	row("MTT entries", func(p nic.Profile) string { return fmt.Sprintf("%d", p.MTTCacheEntries) })
	row("Complex pps", func(p nic.Profile) string { return fmt.Sprintf("%.0f/us", p.ComplexPPS) })
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 4 — Grain-I/II priority contention sweep
// ---------------------------------------------------------------------------

// Fig4Result carries the sweep matrix and its category summary.
type Fig4Result struct {
	NIC    string
	Cells  []revengine.SweepCell
	Combos int
}

// Fig4 runs the contention sweep. full=false uses a representative subset
// (fast); full=true runs the paper-scale >6000-combination space. workers
// shards the sweep (0 = NumCPU, 1 = sequential) without changing a cell.
func Fig4(p nic.Profile, full bool, workers int) Fig4Result {
	space := revengine.DefaultSweepSpace()
	if !full {
		space.SizesA = []int{64, 512, 4096, 65536}
		space.SizesB = []int{64, 1024, 65536}
		space.QPsA = []int{4}
		space.QPsB = []int{2, 4}
		space.IncludeReverse = true
	}
	cells := revengine.PrioritySweep(p, space, workers)
	return Fig4Result{NIC: p.Name, Cells: cells, Combos: space.Size()}
}

// Render summarises the matrix the way Figure 4's pies do: per inducer-op /
// indicator-op block, the distribution of indicator reductions, plus the
// key phenomena call-outs.
func (r Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 [%s]: %d parameter combinations\n", r.NIC, r.Combos)
	type key struct{ a, bop nic.Opcode }
	blocks := map[key]map[revengine.Reduction]int{}
	for _, c := range r.Cells {
		k := key{c.Inducer.Op, c.Indicator.Op}
		if blocks[k] == nil {
			blocks[k] = map[revengine.Reduction]int{}
		}
		blocks[k][c.IndicatorCat]++
	}
	fmt.Fprintf(&b, "%-22s %8s %8s %8s %8s %9s\n", "Inducer/Indicator", "none", "slight", "half", "severe", "increase")
	// Sort the op-pair blocks so the rendered rows are reproducible (map
	// iteration order is randomised; the golden tests depend on this).
	keys := make([]key, 0, len(blocks))
	for k := range blocks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].bop < keys[j].bop
	})
	for _, k := range keys {
		cat := blocks[k]
		fmt.Fprintf(&b, "%-22s %8d %8d %8d %8d %9d\n",
			fmt.Sprintf("%v vs %v", k.a, k.bop),
			cat[revengine.ReductionNone], cat[revengine.ReductionSlight],
			cat[revengine.ReductionHalf], cat[revengine.ReductionSevere],
			cat[revengine.AbnormalIncrease])
	}
	// Key findings extracted from the matrix.
	var kf1small, kf1big, kf2 *revengine.SweepCell
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Inducer.Op == nic.OpWrite && c.Indicator.Op == nic.OpRead && !c.Indicator.FromServer {
			if c.Inducer.MsgBytes == 64 && c.Indicator.MsgBytes == 1024 {
				kf1small = c
			}
			if c.Inducer.MsgBytes >= 2048 && c.Indicator.MsgBytes == 1024 && kf1big == nil {
				kf1big = c
			}
		}
		if c.Inducer.Op == nic.OpWrite && c.Indicator.Op == nic.OpWrite &&
			c.Inducer.MsgBytes == 64 && c.Indicator.MsgBytes == 64 && c.TotalPctOfSolo > 200 {
			kf2 = c
		}
	}
	if kf1small != nil && kf1big != nil {
		fmt.Fprintf(&b, "KF1 (non-monotonic): 64B write loses %.0f%% vs read; >=2KB write loses %.0f%% while read drops %.0f%%\n",
			kf1small.InducerLossPct, kf1big.InducerLossPct, kf1big.IndicatorLossPct)
	}
	if kf2 != nil {
		fmt.Fprintf(&b, "KF2 (abnormal increment): small-write contention totals %.0f%% of solo (>200%%)\n", kf2.TotalPctOfSolo)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figures 5-8 — Grain-III/IV ULI sweeps
// ---------------------------------------------------------------------------

// Fig5Result is the same/different-MR ULI comparison.
type Fig5Result struct {
	NIC    string
	Points []revengine.InterMRPoint
}

// Fig5 measures ULI for same-vs-different remote MRs across message sizes
// on CX-4 (the paper's Figure 5 configuration).
func Fig5(p nic.Profile, probes int, seed int64, workers int) (Fig5Result, error) {
	points, err := revengine.InterMRSweep(p, []int{64, 128, 256, 512, 1024, 2048, 4096}, probes, seed, workers)
	return Fig5Result{NIC: p.Name, Points: points}, err
}

// Render prints the Figure 5 series.
func (r Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 [%s]: ULI vs same/different remote MR (ns, mean [p10,p90])\n", r.NIC)
	fmt.Fprintf(&b, "%8s %28s %28s %8s\n", "size", "same MR", "diff MR", "delta")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%8d %10.1f [%8.1f,%8.1f] %10.1f [%8.1f,%8.1f] %+8.1f\n",
			pt.MsgSize,
			pt.SameMR.Mean, pt.SameMR.P10, pt.SameMR.P90,
			pt.DiffMR.Mean, pt.DiffMR.P10, pt.DiffMR.P90,
			pt.DiffMR.Mean-pt.SameMR.Mean)
	}
	return b.String()
}

// OffsetResult is a Figure 6/7/8 trace.
type OffsetResult struct {
	NIC     string
	Figure  string
	MsgSize int
	Points  []revengine.OffsetPoint
}

// Fig6 sweeps absolute offsets with 64 B reads (structure at 8/64/2048 B).
func Fig6(p nic.Profile, probes int, seed int64, workers int) (OffsetResult, error) {
	offsets := offsetsAround()
	points, err := revengine.AbsOffsetSweep(p, 64, offsets, probes, seed, workers)
	return OffsetResult{NIC: p.Name, Figure: "Figure 6 (abs offset, 64B reads)", MsgSize: 64, Points: points}, err
}

// Fig7 sweeps absolute offsets with 1024 B reads.
func Fig7(p nic.Profile, probes int, seed int64, workers int) (OffsetResult, error) {
	offsets := offsetsAround()
	points, err := revengine.AbsOffsetSweep(p, 1024, offsets, probes, seed, workers)
	return OffsetResult{NIC: p.Name, Figure: "Figure 7 (abs offset, 1024B reads)", MsgSize: 1024, Points: points}, err
}

// Fig8 sweeps relative offsets with 64 B reads (bank-conflict periodicity).
func Fig8(p nic.Profile, probes int, seed int64, workers int) (OffsetResult, error) {
	var deltas []uint64
	for d := uint64(64); d <= 2304; d += 64 {
		deltas = append(deltas, d)
	}
	points, err := revengine.RelOffsetSweep(p, 64, deltas, probes, seed, workers)
	return OffsetResult{NIC: p.Name, Figure: "Figure 8 (rel offset, 64B reads)", MsgSize: 64, Points: points}, err
}

// offsetsAround samples the offset axis densely near alignment boundaries
// and coarsely elsewhere, covering two 2048 B periods.
func offsetsAround() []uint64 {
	var out []uint64
	for base := uint64(0); base <= 4096; base += 64 {
		out = append(out, base)
		if base+7 <= 4096 {
			out = append(out, base+7, base+8)
		}
	}
	return out
}

// Render prints an offset trace.
func (r OffsetResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s]\n", r.Figure, r.NIC)
	fmt.Fprintf(&b, "%8s %10s %10s %10s\n", "offset", "mean", "p10", "p90")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%8d %10.1f %10.1f %10.1f\n", pt.Offset, pt.Trace.Mean, pt.Trace.P10, pt.Trace.P90)
	}
	return b.String()
}
