package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/thu-has/ragnar/internal/defense"
	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/parallel"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/telemetry"
	"github.com/thu-has/ragnar/internal/trace"
	"github.com/thu-has/ragnar/internal/traffic"
	"github.com/thu-has/ragnar/internal/verbs"
)

// The exhaust experiment escalates the tenants contention sweep into
// resource exhaustion: instead of merely out-bidding the victims for
// bandwidth, the aggressor attacks the NIC's and fabric's *finite* state —
// the ICM context cache (QP/MR contexts), completion-queue capacity, and
// PFC pause machinery — and the experiment asks whether a defender can tell
// the two apart from counters. Three attack regimes share one rig shape
// (N victims + 1 aggressor on a star, exactly the tenants layout):
//
//   - contention: the unmodified tenants aggressor (closed-loop READs into
//     one MR over one QP). The zero-exhaustion corner — a regression oracle
//     pins its numbers to the tenants experiment byte-for-byte.
//   - qp-ctx / mr-ctx: the aggressor spreads the same offered load over
//     many QPs or MRs on a profile whose context cache holds only
//     exhaustCtxEntries contexts. Below capacity the cells time like
//     contention; past it every access faults, the victims' contexts are
//     evicted, and each victim operation pays the DMA-fetch penalty. The
//     aggressor never polls its undersized CQs, so its completions overrun.
//   - pause: the aggressor sprays PRIO pause frames at its own switch port
//     on a duty cycle while running large READs. Its responses back up at
//     the paused port, cross XOFF, and the congestion tree pauses every
//     uplink — NeVerMore's amplification without the aggressor ever being
//     the bandwidth bottleneck.
//
// Distinguishability: per-victim HARMONIC detectors (trained aggressor-idle,
// as in tenants) fire on *both* contention and exhaustion — bandwidth
// collapse looks the same from a victim's volume counters. The exhaustion
// verdict (ExhScore) instead scores only the finite-resource markers —
// context misses/evictions, CQ overruns, received pause frames — against a
// server-side detector trained on the same benign windows: plain contention
// leaves all of them at zero, so any nonzero marker is an unseen metric and
// scores by magnitude.
const (
	// exhaustCtxEntries is the constrained profile's ICM context capacity.
	// Sized so victims+aggressor fit at the sweep's low end (16 QPs or 16
	// MRs ≈ contention) and thrash at the high end (64 of either).
	exhaustCtxEntries = 24
	// exhaustCQCap is the aggressor's per-connection CQ capacity in the
	// context sweeps; it never polls, so completions past this overrun.
	exhaustCQCap = 16
	// exhaustTick is the open-loop aggressor's refill period.
	exhaustTick = 2 * sim.Microsecond
	// exhaustPausePeriod is one pause-abuse duty cycle; the port is paused
	// for duty% of each period during the attack phase.
	exhaustPausePeriod = 10 * sim.Microsecond
	// exhaustPauseSize is the pause-abuse aggressor's READ size: big enough
	// that its paused-port backlog crosses the switch's XOFF threshold.
	exhaustPauseSize = 16384
	// exhaustBaseSize matches the tenants 4 KB sweep point for the oracle.
	exhaustBaseSize = 4096
)

// exhaustProfile constrains a profile's finite resources: a small shared
// context cache and MR-context (MPT) caching enabled so MPT misses are
// priced on the TPU path. Legacy profiles keep MPTMissPenalty at zero, so
// every other experiment is untouched.
func exhaustProfile(p nic.Profile) nic.Profile {
	p.QPCCacheEntries = exhaustCtxEntries
	p.MPTMissPenalty = p.QPCMissPenalty
	return p
}

// ExhaustCell is one aggressor configuration.
type ExhaustCell struct {
	Regime  string // contention | qp-ctx | mr-ctx | pause
	QPs     int    // aggressor QP count
	MRs     int    // distinct server MRs the aggressor cycles through
	Duty    int    // pause-abuse duty cycle, percent of each period
	AggSize int

	AggGbps    float64
	VictimGbps []float64
	SoloGbps   float64

	// Attack-phase exhaustion markers: server-NIC context-cache traffic,
	// aggressor-NIC CQ overruns, switch-received pause frames.
	CtxMisses    uint64
	CtxEvictions uint64
	CQOverruns   uint64
	RxPauses     uint64
	SwitchPFC    uint64

	MaxScore float64 // highest per-victim HARMONIC score (fires for contention too)
	Detected int     // victims whose HARMONIC fired in any window
	ExhScore float64 // exhaustion-marker score: 0 for plain contention
	WqeP99x  float64 // victim WQE p99 latency, attack / baseline
}

// MeanVictimGbps averages the per-victim attack-phase bandwidth.
func (c ExhaustCell) MeanVictimGbps() float64 {
	if len(c.VictimGbps) == 0 {
		return 0
	}
	var s float64
	for _, v := range c.VictimGbps {
		s += v
	}
	return s / float64(len(c.VictimGbps))
}

// SoloPct is the mean victim bandwidth as a percentage of the solo baseline.
func (c ExhaustCell) SoloPct() float64 {
	if c.SoloGbps <= 0 {
		return 0
	}
	return 100 * c.MeanVictimGbps() / c.SoloGbps
}

// ExhaustResult is the rendered experiment outcome.
type ExhaustResult struct {
	NIC     string
	Victims int
	Cells   []ExhaustCell
}

type exhaustCellIn struct {
	qps, mrs, duty int
	cellID         uint64
}

// exhaustSweep is the fixed cell list. Cell 0 is the zero-exhaustion
// corner: same cellID (hence same derived seed), opcode, size and
// closed-loop aggressor as the tenants READ/4096 cell, on the unmodified
// profile — the contention ≡ exhaustion-at-capacity-∞ oracle.
var exhaustSweep = []exhaustCellIn{
	{qps: 1, mrs: 1, duty: 0, cellID: 0},
	{qps: 16, mrs: 1, duty: 0, cellID: 1},
	{qps: 64, mrs: 1, duty: 0, cellID: 2},
	{qps: 1, mrs: 16, duty: 0, cellID: 3},
	{qps: 1, mrs: 64, duty: 0, cellID: 4},
	{qps: 1, mrs: 1, duty: 40, cellID: 5},
	{qps: 1, mrs: 1, duty: 80, cellID: 6},
}

func (in exhaustCellIn) regime() string {
	switch {
	case in.duty > 0:
		return "pause"
	case in.qps > 1:
		return "qp-ctx"
	case in.mrs > 1:
		return "mr-ctx"
	}
	return "contention"
}

// exhaustPump is the open-loop context-thrashing aggressor: every tick it
// tops each of its QPs back up to depth, cycling targets round-robin. It
// never arms Notify and never polls, so its undersized CQs overrun — the
// CQ-exhaustion observable — while Outstanding() (decremented by the NIC
// regardless of CQ state) keeps the refill loop flowing.
type exhaustPump struct {
	eng     *sim.Engine
	conns   []*lab.Conn
	targets []verbs.RemoteBuf
	size    int
	depth   int // per-QP
	posted  uint64
	errs    uint64
	ti      int
	stopped bool
	tickFn  func()
}

func (p *exhaustPump) start() {
	p.tickFn = p.tick
	p.tick()
}

func (p *exhaustPump) stop() { p.stopped = true }

// done reports retired operations: posts the NIC has completed, whether or
// not their CQEs survived the CQ.
func (p *exhaustPump) done() uint64 {
	var out int
	for _, cn := range p.conns {
		out += cn.QP.Outstanding()
	}
	return p.posted - uint64(out)
}

func (p *exhaustPump) tick() {
	if p.stopped {
		return
	}
	for _, cn := range p.conns {
		for cn.QP.Outstanding() < p.depth {
			t := p.targets[p.ti%len(p.targets)]
			p.ti++
			if err := cn.QP.PostRead(p.posted, nil, t, p.size); err != nil {
				p.errs++
				return
			}
			p.posted++
		}
	}
	p.eng.After(exhaustTick, p.tickFn)
}

// runExhaustCell measures one aggressor configuration on a fresh star rig.
// The phase skeleton replicates runTenantCell exactly — dial/warm order,
// window counts, snapshot points — so the contention cell is event-for-event
// the tenants cell; everything extra this cell observes (server snapshots,
// victim-side flight recorder, switch pause counters) is passive.
func runExhaustCell(p nic.Profile, victims int, in exhaustCellIn, seed int64) (ExhaustCell, error) {
	prof := p
	if in.qps > 1 || in.mrs > 1 {
		prof = exhaustProfile(p)
	}
	cfg := lab.DefaultConfig(prof)
	cfg.Seed = sim.DeriveSeed(seed, in.cellID)
	cfg.Clients = victims + 1 // client 0 is the aggressor
	c := lab.Star(cfg)

	// Victim-side flight recorder: WQE latency distributions for the
	// MetricsFeatures view. Attached before any traffic; recording is
	// passive (traced ≡ untraced is a pinned invariant).
	rec := trace.NewRecorder("exhaust/"+p.Name, trace.DefaultCapacity)
	for i := 0; i < victims; i++ {
		c.Clients[i+1].SetRecorder(rec)
	}

	mr, err := c.RegisterServerMR(8 << 20)
	if err != nil {
		return ExhaustCell{}, err
	}
	cell := ExhaustCell{Regime: in.regime(), QPs: in.qps, MRs: in.mrs, Duty: in.duty}
	cell.AggSize = exhaustBaseSize
	if in.duty > 0 {
		cell.AggSize = exhaustPauseSize
	}

	// The aggressor's target set: the tenants offset of the shared MR, or
	// mrs distinct server MRs for the MR-context sweep.
	targets := []verbs.RemoteBuf{mr.Describe(4 << 20)}
	if in.mrs > 1 {
		targets = targets[:0]
		for k := 0; k < in.mrs; k++ {
			xmr, err := c.RegisterServerMR(256 << 10)
			if err != nil {
				return ExhaustCell{}, err
			}
			targets = append(targets, xmr.Describe(0))
		}
	}

	// Dial and warm every tenant BEFORE any generator starts (Warm runs
	// the engine to quiescence). Victims first, then the aggressor —
	// identical to tenants.
	conns := make([]*lab.Conn, victims)
	for i := 0; i < victims; i++ {
		conn, err := c.Dial(i+1, tenantVictimDepth*2)
		if err != nil {
			return ExhaustCell{}, err
		}
		if err := c.Warm(conn, mr); err != nil {
			return ExhaustCell{}, err
		}
		conns[i] = conn
	}
	perQP := tenantAggDepth / in.qps
	if perQP < 1 {
		perQP = 1
	}
	openLoop := in.qps > 1 || in.mrs > 1
	aggConns := make([]*lab.Conn, in.qps)
	for q := 0; q < in.qps; q++ {
		depth, cqCap := tenantAggDepth*2, 0
		if openLoop {
			depth, cqCap = perQP*2, exhaustCQCap
		}
		conn, err := c.DialCQ(0, depth, cqCap)
		if err != nil {
			return ExhaustCell{}, err
		}
		if err := c.Warm(conn, mr); err != nil {
			return ExhaustCell{}, err
		}
		aggConns[q] = conn
	}

	// Victims: steady 2 KB writes, each tenant to its own MR window.
	gens := make([]*traffic.Generator, victims)
	for i, conn := range conns {
		gens[i] = &traffic.Generator{
			QP: conn.QP, CQ: conn.CQ, Op: nic.OpWrite,
			MsgSize: tenantVictimSize, Depth: tenantVictimDepth,
			Next: traffic.FixedTarget(mr.Describe(uint64(i) * (256 << 10))),
		}
		if err := gens[i].Start(); err != nil {
			return ExhaustCell{}, err
		}
	}

	// Baseline phase (aggressor idle): train one HARMONIC per victim, plus
	// one on the server NIC for the exhaustion-marker verdict, and capture
	// the victim WQE-latency baseline.
	c.Eng.RunFor(tenantWarmup)
	mTrain0 := *rec.Metrics()
	series := make([][]telemetry.Snapshot, victims)
	soloStart := make([]uint64, victims)
	var srvSeries []telemetry.Snapshot
	srvSeries = append(srvSeries, telemetry.Snap(c.Eng, c.Server.NIC()))
	for i, g := range gens {
		series[i] = append(series[i], telemetry.Snap(c.Eng, c.Clients[i+1].NIC()))
		soloStart[i] = g.Completed()
	}
	for w := 0; w < tenantTrainWins; w++ {
		c.Eng.RunFor(tenantWindow)
		for i := range gens {
			series[i] = append(series[i], telemetry.Snap(c.Eng, c.Clients[i+1].NIC()))
		}
		srvSeries = append(srvSeries, telemetry.Snap(c.Eng, c.Server.NIC()))
	}
	dets := make([]*defense.Harmonic, victims)
	var solo float64
	for i, g := range gens {
		dets[i] = defense.TrainHarmonic(telemetry.WindowedDeltas(series[i]))
		solo += gbpsOf(g.Completed()-soloStart[i], tenantVictimSize, tenantTrainWins*tenantWindow)
	}
	cell.SoloGbps = solo / float64(victims)
	srvDet := defense.TrainHarmonic(telemetry.WindowedDeltas(srvSeries))

	// Attack phase. The closed-loop generator (contention and pause cells)
	// is byte-identical to the tenants aggressor; the open-loop pump drives
	// the context sweeps.
	sw := c.Switches[0]
	var agg *traffic.Generator
	var pump *exhaustPump
	if openLoop {
		pump = &exhaustPump{eng: c.Eng, targets: targets, size: cell.AggSize, depth: perQP}
		for _, cn := range aggConns {
			pump.conns = append(pump.conns, cn)
		}
		pump.start()
	} else {
		agg = &traffic.Generator{
			QP: aggConns[0].QP, CQ: aggConns[0].CQ, Op: nic.OpRead,
			MsgSize: cell.AggSize, Depth: tenantAggDepth,
			Next: traffic.FixedTarget(targets[0]),
		}
		if err := agg.Start(); err != nil {
			return ExhaustCell{}, err
		}
	}
	const scoreDur = tenantScoreWins * tenantWindow
	if in.duty > 0 {
		// Pause abuse: the aggressor (star port 1) sprays pause frames at
		// its own port for duty% of every period across the attack phase.
		const aggPort = 1
		hold := exhaustPausePeriod * sim.Duration(in.duty) / 100
		for k := sim.Duration(0); k*exhaustPausePeriod < scoreDur; k++ {
			at := k * exhaustPausePeriod
			c.Eng.After(at, func() { sw.PortPause(aggPort, 0) })
			c.Eng.After(at+hold, func() { sw.PortResume(aggPort, 0) })
		}
	}
	var pfc0, drop0 uint64
	for tc := 0; tc < 8; tc++ {
		pfc0 += sw.PFCPauses(tc)
		drop0 += sw.BufDrops(tc)
	}
	var rxp0 uint64
	for tc := 0; tc < 8; tc++ {
		rxp0 += sw.RxPauses(tc)
	}
	srvPrev := telemetry.Snap(c.Eng, c.Server.NIC())
	agg0 := telemetry.Snap(c.Eng, c.Clients[0].NIC())
	mAtk0 := *rec.Metrics()
	vicStart := make([]uint64, victims)
	prev := make([]telemetry.Snapshot, victims)
	for i, g := range gens {
		vicStart[i] = g.Completed()
		prev[i] = telemetry.Snap(c.Eng, c.Clients[i+1].NIC())
	}
	var aggStart uint64
	if agg != nil {
		aggStart = agg.Completed()
	} else {
		aggStart = pump.done()
	}
	fired := make([]bool, victims)
	for w := 0; w < tenantScoreWins; w++ {
		c.Eng.RunFor(tenantWindow)
		for i := range gens {
			cur := telemetry.Snap(c.Eng, c.Clients[i+1].NIC())
			d := telemetry.Delta(prev[i], cur)
			prev[i] = cur
			if s := dets[i].Score(d); s > cell.MaxScore {
				cell.MaxScore = s
			}
			if dets[i].Detect(d) {
				fired[i] = true
			}
		}
	}
	if pump != nil {
		pump.stop()
	}
	for i, g := range gens {
		cell.VictimGbps = append(cell.VictimGbps,
			gbpsOf(g.Completed()-vicStart[i], tenantVictimSize, scoreDur))
		if fired[i] {
			cell.Detected++
		}
	}
	if agg != nil {
		cell.AggGbps = gbpsOf(agg.Completed()-aggStart, cell.AggSize, scoreDur)
	} else {
		cell.AggGbps = gbpsOf(pump.done()-aggStart, cell.AggSize, scoreDur)
	}
	for tc := 0; tc < 8; tc++ {
		cell.SwitchPFC += sw.PFCPauses(tc)
		cell.RxPauses += sw.RxPauses(tc)
	}
	cell.SwitchPFC -= pfc0
	cell.RxPauses -= rxp0

	// Exhaustion markers over the whole attack phase: server context-cache
	// traffic, aggressor CQ overruns, switch-received pause frames. Scored
	// against the server-trained detector with the same nonzero gating as
	// defense.features — plain contention leaves the vector empty (score
	// 0); any exhaustion marker is unseen in training and scores by
	// magnitude.
	srvD := telemetry.Delta(srvPrev, telemetry.Snap(c.Eng, c.Server.NIC()))
	aggD := telemetry.Delta(agg0, telemetry.Snap(c.Eng, c.Clients[0].NIC()))
	cell.CtxMisses = srvD.CtxMisses
	cell.CtxEvictions = srvD.CtxEvictions
	cell.CQOverruns = aggD.CQOverruns
	markers := map[string]float64{}
	if cell.CtxMisses > 0 {
		markers["ctx_miss"] = float64(cell.CtxMisses)
	}
	if cell.CtxEvictions > 0 {
		markers["ctx_evict"] = float64(cell.CtxEvictions)
	}
	if cell.CQOverruns > 0 {
		markers["cq_overrun"] = float64(cell.CQOverruns)
	}
	if cell.RxPauses > 0 {
		markers["rx_pause"] = float64(cell.RxPauses)
	}
	cell.ExhScore = srvDet.ScoreVector(markers)

	// Victim WQE p99: attack windows over training windows, from the
	// flight recorder's latency registry.
	base := defense.MetricsFeatures(mAtk0.DeltaFrom(&mTrain0))
	atk := defense.MetricsFeatures(rec.Metrics().DeltaFrom(&mAtk0))
	if bp := base["wqe_lat/p99"]; bp > 0 {
		cell.WqeP99x = atk["wqe_lat/p99"] / bp
	}

	for _, g := range gens {
		if g.Errors() > 0 {
			return ExhaustCell{}, fmt.Errorf("exhaust: victim completions errored")
		}
	}
	if pump != nil && pump.errs > 0 {
		return ExhaustCell{}, fmt.Errorf("exhaust: aggressor posts errored")
	}
	return cell, nil
}

// Exhaust runs the resource-exhaustion sweep: one aggressor spanning QP
// count x MR count x pause-abuse duty cycle against a fixed victim
// population. Every cell is an independent star rig seeded with
// sim.DeriveSeed(seed, cellID), so rows are identical at any worker count.
func Exhaust(p nic.Profile, victims int, seed int64, workers int) (ExhaustResult, error) {
	if victims < 1 {
		victims = 3
	}
	outs, err := parallel.Map(context.Background(), workers, exhaustSweep,
		func(_ context.Context, _ int, in exhaustCellIn) (ExhaustCell, error) {
			return runExhaustCell(p, victims, in, seed)
		})
	if err != nil {
		return ExhaustResult{}, err
	}
	return ExhaustResult{NIC: p.Name, Victims: victims, Cells: outs}, nil
}

// Render formats the exhaustion-vs-contention table.
func (r ExhaustResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXHAUST: noisy-neighbor resource exhaustion vs contention (%s, %d victims + 1 aggressor)\n",
		r.NIC, r.Victims)
	fmt.Fprintf(&b, "%-10s %4s %4s %5s %7s %8s %8s %7s %8s %8s %7s %7s %9s %5s %10s %8s\n",
		"Regime", "QPs", "MRs", "Duty", "AggSize", "AggGbps", "VicGbps", "%solo",
		"CtxMiss", "CtxEvict", "CQOver", "RxPause", "HARMONIC", "Det", "ExhScore", "WqeP99x")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-10s %4d %4d %4d%% %7d %8.2f %8.2f %6.1f%% %8d %8d %7d %7d %9.2f %3d/%d %10.1f %7.2fx\n",
			c.Regime, c.QPs, c.MRs, c.Duty, c.AggSize, c.AggGbps, c.MeanVictimGbps(),
			c.SoloPct(), c.CtxMisses, c.CtxEvictions, c.CQOverruns, c.RxPauses,
			c.MaxScore, c.Detected, len(c.VictimGbps), c.ExhScore, c.WqeP99x)
	}
	b.WriteString("(HARMONIC fires on contention and exhaustion alike; ExhScore uses only finite-resource markers — ctx misses/evictions, CQ overruns, received pause frames — all zero under plain contention)\n")
	return b.String()
}
