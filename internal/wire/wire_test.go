package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBTHRoundTrip(t *testing.T) {
	p := &Packet{
		BTH: BTH{Opcode: OpSendOnly, SolEvent: true, PKey: 0xffff,
			DestQP: 0x123456, AckReq: true, PSN: 0xabcdef},
		Payload: []byte("hello roce"),
	}
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Marshal computes the pad itself; "hello roce" (10 B) pads by 2.
	want := p.BTH
	want.PadCount = 2
	if got.BTH != want {
		t.Fatalf("BTH = %+v, want %+v", got.BTH, want)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("payload = %q", got.Payload)
	}
}

func TestRETHRoundTrip(t *testing.T) {
	p := &Packet{
		BTH:  BTH{Opcode: OpReadRequest, DestQP: 7, PSN: 1},
		Reth: &RETH{VA: 0xdeadbeefcafe, RKey: 0x1001, DMALen: 4096},
	}
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if *got.Reth != *p.Reth {
		t.Fatalf("RETH = %+v", got.Reth)
	}
}

func TestAtomicRoundTrip(t *testing.T) {
	p := &Packet{
		BTH:    BTH{Opcode: OpCompareSwap, DestQP: 9, PSN: 2},
		Atomic: &AtomicETH{VA: 0x1000, RKey: 5, SwapAdd: 42, Compare: 41},
	}
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if *got.Atomic != *p.Atomic {
		t.Fatalf("AtomicETH = %+v", got.Atomic)
	}

	ack := &Packet{
		BTH:       BTH{Opcode: OpAtomicAck, DestQP: 9, PSN: 2},
		Aeth:      &AETH{Syndrome: 0, MSN: 2},
		AtomicAck: 41,
	}
	raw, err = ack.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err = Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.AtomicAck != 41 || got.Aeth.MSN != 2 {
		t.Fatalf("atomic ack = %+v", got)
	}
}

func TestPaddingRoundTrip(t *testing.T) {
	for n := 0; n < 8; n++ {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i + 1)
		}
		p := &Packet{BTH: BTH{Opcode: OpSendOnly}, Payload: payload}
		raw, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if len(raw)%4 != 0 {
			t.Fatalf("len %d not 4-aligned for payload %d", len(raw), n)
		}
		got, err := Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Payload) != n {
			t.Fatalf("payload %d came back as %d", n, len(got.Payload))
		}
	}
}

func TestICRCDetectsCorruption(t *testing.T) {
	p := &Packet{BTH: BTH{Opcode: OpSendOnly}, Payload: []byte("data")}
	raw, _ := p.Marshal()
	raw[BTHBytes] ^= 0x01
	if _, err := Parse(raw); err == nil {
		t.Fatal("corrupted packet parsed")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte{1, 2, 3}); err == nil {
		t.Fatal("short packet parsed")
	}
	p := &Packet{BTH: BTH{Opcode: OpReadRequest}} // missing RETH
	if _, err := p.Marshal(); err == nil {
		t.Fatal("missing RETH not rejected")
	}
	if _, err := TransportBytes(0xff, 0); err == nil {
		t.Fatal("unknown opcode sized")
	}
}

// Property: Marshal/Parse round-trips arbitrary payloads for every
// payload-carrying opcode.
func TestRoundTripProperty(t *testing.T) {
	f := func(payload []byte, qp, psn uint32) bool {
		p := &Packet{
			BTH:     BTH{Opcode: OpSendOnly, DestQP: qp & 0xffffff, PSN: psn & 0xffffff},
			Payload: payload,
		}
		raw, err := p.Marshal()
		if err != nil {
			return false
		}
		got, err := Parse(raw)
		if err != nil {
			return false
		}
		if len(payload) == 0 {
			return len(got.Payload) == 0
		}
		return bytes.Equal(got.Payload, payload) && got.BTH.DestQP == qp&0xffffff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameBytesMonotonic(t *testing.T) {
	prev := 0
	for _, n := range []int{0, 1, 64, 512, 4096} {
		fb, err := FrameBytes(OpWriteOnly, n)
		if err != nil {
			t.Fatal(err)
		}
		if fb <= prev {
			t.Fatalf("frame bytes not increasing: %d after %d", fb, prev)
		}
		prev = fb
	}
}
