package wire

import (
	"bytes"
	"testing"
)

// FuzzParse hardens the packet parser against arbitrary input: it must
// never panic, and any input it accepts must re-marshal to an equivalent
// packet (parse/marshal round-trip stability).
func FuzzParse(f *testing.F) {
	// Seed with valid packets of every opcode family.
	seeds := []*Packet{
		{BTH: BTH{Opcode: OpSendOnly}, Payload: []byte("seed payload")},
		{BTH: BTH{Opcode: OpReadRequest, DestQP: 3, PSN: 9}, Reth: &RETH{VA: 4096, RKey: 7, DMALen: 64}},
		{BTH: BTH{Opcode: OpAcknowledge}, Aeth: &AETH{Syndrome: 0x62, MSN: 5}},
		{BTH: BTH{Opcode: OpCompareSwap}, Atomic: &AtomicETH{VA: 8, RKey: 1, SwapAdd: 2, Compare: 3}},
		{BTH: BTH{Opcode: OpAtomicAck}, Aeth: &AETH{}, AtomicAck: 42},
	}
	for _, p := range seeds {
		raw, err := p.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := Parse(raw)
		if err != nil {
			return // rejection is fine; panics are not
		}
		again, err := p.Marshal()
		if err != nil {
			t.Fatalf("accepted packet failed to re-marshal: %v", err)
		}
		p2, err := Parse(again)
		if err != nil {
			t.Fatalf("re-marshalled packet rejected: %v", err)
		}
		if p2.BTH != p.BTH || !bytes.Equal(p2.Payload, p.Payload) {
			t.Fatalf("round-trip instability: %+v vs %+v", p, p2)
		}
	})
}

// FuzzDecapsulate hardens the encapsulation stripper.
func FuzzDecapsulate(f *testing.F) {
	p := &Packet{BTH: BTH{Opcode: OpSendOnly}, Payload: []byte("x")}
	transport, _ := p.Marshal()
	f.Add(Encapsulate(transport, [4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, 50000))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, frame []byte) {
		got, ok := DecapsulateUDP(frame)
		if ok && len(got) > len(frame) {
			t.Fatal("decapsulated more bytes than the frame holds")
		}
	})
}
