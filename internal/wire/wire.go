// Package wire implements the RoCEv2 on-wire format the simulated fabric
// carries: Ethernet/IPv4/UDP encapsulation, the InfiniBand Base Transport
// Header (BTH) and its extended headers (RETH for RDMA, AETH for
// acknowledgements, AtomicETH/AtomicAckETH for atomics), plus the invariant
// CRC. The NIC model accounts for packets at this byte-level granularity
// (its header-size constants are asserted against this package), and the
// codec round-trips every message type the simulator exchanges — so traffic
// could be exported to or validated against real packet captures.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// IBA opcodes for the RC transport (InfiniBand Architecture Specification,
// Table 38, subset the simulator uses).
const (
	OpSendFirst        = 0x00
	OpSendMiddle       = 0x01
	OpSendLast         = 0x02
	OpSendOnly         = 0x04
	OpWriteFirst       = 0x06
	OpWriteMiddle      = 0x07
	OpWriteLast        = 0x08
	OpWriteOnly        = 0x0A
	OpReadRequest      = 0x0C
	OpReadRespFirst    = 0x0D
	OpReadRespMiddle   = 0x0E
	OpReadRespLast     = 0x0F
	OpReadResponseOnly = 0x10
	OpAcknowledge      = 0x11
	OpAtomicAck        = 0x12
	OpCompareSwap      = 0x13
	OpFetchAdd         = 0x14
)

// Fixed encapsulation sizes (bytes).
const (
	EthHeaderBytes  = 14
	IPv4HeaderBytes = 20
	UDPHeaderBytes  = 8
	BTHBytes        = 12
	RETHBytes       = 16
	AETHBytes       = 4
	AtomicETHBytes  = 28
	AtomicAckBytes  = 8
	ICRCBytes       = 4
	FCSBytes        = 4
	// PreambleIPG accounts for the Ethernet preamble, SFD and inter-packet
	// gap that occupy the wire but are not frame bytes (7+1+12).
	PreambleIPG = 20
	// RoCEv2UDPPort is the IANA-assigned destination port.
	RoCEv2UDPPort = 4791
)

// BTH is the Base Transport Header.
type BTH struct {
	Opcode   byte
	SolEvent bool
	PadCount byte // 0..3
	PKey     uint16
	DestQP   uint32 // 24 bits
	AckReq   bool
	PSN      uint32 // 24 bits
}

// RETH is the RDMA Extended Transport Header (reads and writes).
type RETH struct {
	VA     uint64
	RKey   uint32
	DMALen uint32
}

// AETH is the ACK Extended Transport Header.
type AETH struct {
	Syndrome byte
	MSN      uint32 // 24 bits
}

// AtomicETH carries atomic operands.
type AtomicETH struct {
	VA      uint64
	RKey    uint32
	SwapAdd uint64
	Compare uint64
}

// Packet is one RoCEv2 packet above the UDP layer.
type Packet struct {
	BTH       BTH
	Reth      *RETH
	Aeth      *AETH
	Atomic    *AtomicETH
	AtomicAck uint64 // original value; valid when BTH.Opcode == OpAtomicAck
	Payload   []byte
}

// extLen returns the extended-header length the opcode requires.
func extLen(opcode byte) (int, error) {
	switch opcode {
	case OpSendOnly, OpSendFirst, OpSendMiddle, OpSendLast,
		OpWriteMiddle, OpWriteLast, OpReadRespMiddle:
		return 0, nil
	case OpWriteOnly, OpWriteFirst, OpReadRequest:
		return RETHBytes, nil
	case OpReadResponseOnly, OpReadRespFirst, OpReadRespLast, OpAcknowledge:
		return AETHBytes, nil
	case OpAtomicAck:
		return AETHBytes + AtomicAckBytes, nil
	case OpCompareSwap, OpFetchAdd:
		return AtomicETHBytes, nil
	}
	return 0, fmt.Errorf("wire: unsupported opcode %#x", opcode)
}

// TransportBytes returns the size of BTH + extended headers + payload +
// ICRC for a packet of the given opcode and payload length.
func TransportBytes(opcode byte, payloadLen int) (int, error) {
	ext, err := extLen(opcode)
	if err != nil {
		return 0, err
	}
	pad := (4 - payloadLen%4) % 4
	return BTHBytes + ext + payloadLen + pad + ICRCBytes, nil
}

// FrameBytes returns the full on-wire cost of one packet: Ethernet + IPv4 +
// UDP + transport + FCS, plus preamble/IPG wire occupancy.
func FrameBytes(opcode byte, payloadLen int) (int, error) {
	t, err := TransportBytes(opcode, payloadLen)
	if err != nil {
		return 0, err
	}
	return EthHeaderBytes + IPv4HeaderBytes + UDPHeaderBytes + t + FCSBytes + PreambleIPG, nil
}

// Marshal encodes the packet (BTH and above; the encapsulation is sizing-
// only in the simulator). The payload is padded to a 4-byte boundary and an
// invariant CRC (CRC-32C over the transport bytes) is appended, as RoCEv2
// requires.
func (p *Packet) Marshal() ([]byte, error) {
	ext, err := extLen(p.BTH.Opcode)
	if err != nil {
		return nil, err
	}
	pad := (4 - len(p.Payload)%4) % 4
	out := make([]byte, 0, BTHBytes+ext+len(p.Payload)+pad+ICRCBytes)

	var bth [BTHBytes]byte
	bth[0] = p.BTH.Opcode
	if p.BTH.SolEvent {
		bth[1] |= 0x80
	}
	bth[1] |= (p.BTH.PadCount & 3) << 4
	binary.BigEndian.PutUint16(bth[2:], p.BTH.PKey)
	put24(bth[5:], p.BTH.DestQP)
	if p.BTH.AckReq {
		bth[8] |= 0x80
	}
	put24(bth[9:], p.BTH.PSN)
	// Record the actual pad in the header so Parse can strip it.
	bth[1] = bth[1]&^0x30 | byte(pad)<<4
	out = append(out, bth[:]...)

	switch p.BTH.Opcode {
	case OpWriteOnly, OpWriteFirst, OpReadRequest:
		if p.Reth == nil {
			return nil, errors.New("wire: opcode requires RETH")
		}
		var reth [RETHBytes]byte
		binary.BigEndian.PutUint64(reth[0:], p.Reth.VA)
		binary.BigEndian.PutUint32(reth[8:], p.Reth.RKey)
		binary.BigEndian.PutUint32(reth[12:], p.Reth.DMALen)
		out = append(out, reth[:]...)
	case OpReadResponseOnly, OpReadRespFirst, OpReadRespLast, OpAcknowledge, OpAtomicAck:
		if p.Aeth == nil {
			return nil, errors.New("wire: opcode requires AETH")
		}
		var aeth [AETHBytes]byte
		aeth[0] = p.Aeth.Syndrome
		put24(aeth[1:], p.Aeth.MSN)
		out = append(out, aeth[:]...)
		if p.BTH.Opcode == OpAtomicAck {
			var orig [AtomicAckBytes]byte
			binary.BigEndian.PutUint64(orig[:], p.AtomicAck)
			out = append(out, orig[:]...)
		}
	case OpCompareSwap, OpFetchAdd:
		if p.Atomic == nil {
			return nil, errors.New("wire: opcode requires AtomicETH")
		}
		var at [AtomicETHBytes]byte
		binary.BigEndian.PutUint64(at[0:], p.Atomic.VA)
		binary.BigEndian.PutUint32(at[8:], p.Atomic.RKey)
		binary.BigEndian.PutUint64(at[12:], p.Atomic.SwapAdd)
		binary.BigEndian.PutUint64(at[20:], p.Atomic.Compare)
		out = append(out, at[:]...)
	}

	out = append(out, p.Payload...)
	for i := 0; i < pad; i++ {
		out = append(out, 0)
	}
	crc := crc32.Checksum(out, castagnoli)
	var icrc [ICRCBytes]byte
	binary.BigEndian.PutUint32(icrc[:], crc)
	return append(out, icrc[:]...), nil
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Parse decodes a transport-level packet produced by Marshal, verifying the
// invariant CRC.
func Parse(raw []byte) (*Packet, error) {
	if len(raw) < BTHBytes+ICRCBytes {
		return nil, errors.New("wire: packet shorter than BTH+ICRC")
	}
	body := raw[:len(raw)-ICRCBytes]
	wantCRC := binary.BigEndian.Uint32(raw[len(raw)-ICRCBytes:])
	if crc32.Checksum(body, castagnoli) != wantCRC {
		return nil, errors.New("wire: ICRC mismatch")
	}

	var p Packet
	p.BTH.Opcode = body[0]
	p.BTH.SolEvent = body[1]&0x80 != 0
	pad := int(body[1] >> 4 & 3)
	p.BTH.PadCount = byte(pad)
	p.BTH.PKey = binary.BigEndian.Uint16(body[2:])
	p.BTH.DestQP = get24(body[5:])
	p.BTH.AckReq = body[8]&0x80 != 0
	p.BTH.PSN = get24(body[9:])

	ext, err := extLen(p.BTH.Opcode)
	if err != nil {
		return nil, err
	}
	if len(body) < BTHBytes+ext+pad {
		return nil, errors.New("wire: truncated extended header")
	}
	rest := body[BTHBytes:]
	switch p.BTH.Opcode {
	case OpWriteOnly, OpWriteFirst, OpReadRequest:
		p.Reth = &RETH{
			VA:     binary.BigEndian.Uint64(rest[0:]),
			RKey:   binary.BigEndian.Uint32(rest[8:]),
			DMALen: binary.BigEndian.Uint32(rest[12:]),
		}
	case OpReadResponseOnly, OpReadRespFirst, OpReadRespLast, OpAcknowledge, OpAtomicAck:
		p.Aeth = &AETH{Syndrome: rest[0], MSN: get24(rest[1:])}
		if p.BTH.Opcode == OpAtomicAck {
			p.AtomicAck = binary.BigEndian.Uint64(rest[AETHBytes:])
		}
	case OpCompareSwap, OpFetchAdd:
		p.Atomic = &AtomicETH{
			VA:      binary.BigEndian.Uint64(rest[0:]),
			RKey:    binary.BigEndian.Uint32(rest[8:]),
			SwapAdd: binary.BigEndian.Uint64(rest[12:]),
			Compare: binary.BigEndian.Uint64(rest[20:]),
		}
	}
	payload := rest[ext : len(rest)-pad]
	if len(payload) > 0 {
		p.Payload = append([]byte(nil), payload...)
	}
	return &p, nil
}

func put24(dst []byte, v uint32) {
	dst[0] = byte(v >> 16)
	dst[1] = byte(v >> 8)
	dst[2] = byte(v)
}

func get24(src []byte) uint32 {
	return uint32(src[0])<<16 | uint32(src[1])<<8 | uint32(src[2])
}
