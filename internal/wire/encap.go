package wire

import "encoding/binary"

// Encapsulate wraps a transport-level packet (BTH..ICRC, as produced by
// Marshal) in Ethernet + IPv4 + UDP headers bound for the RoCEv2 port,
// yielding a frame that packet analysers parse as genuine RoCEv2 traffic.
// The IPv4 header checksum is computed; the UDP checksum is left zero
// (legal for IPv4 and what RoCEv2 stacks commonly emit).
func Encapsulate(transport []byte, srcIP, dstIP [4]byte, srcPort uint16) []byte {
	const ethType = 0x0800 // IPv4
	frame := make([]byte, 0, EthHeaderBytes+IPv4HeaderBytes+UDPHeaderBytes+len(transport))

	// Ethernet: locally administered MACs derived from the IPs.
	var eth [EthHeaderBytes]byte
	eth[0] = 0x02
	copy(eth[1:5], dstIP[:])
	eth[6] = 0x02
	copy(eth[7:11], srcIP[:])
	binary.BigEndian.PutUint16(eth[12:], ethType)
	frame = append(frame, eth[:]...)

	// IPv4.
	var ip [IPv4HeaderBytes]byte
	ip[0] = 0x45 // version 4, IHL 5
	totalLen := IPv4HeaderBytes + UDPHeaderBytes + len(transport)
	binary.BigEndian.PutUint16(ip[2:], uint16(totalLen))
	ip[8] = 64 // TTL
	ip[9] = 17 // UDP
	copy(ip[12:16], srcIP[:])
	copy(ip[16:20], dstIP[:])
	binary.BigEndian.PutUint16(ip[10:], ipChecksum(ip[:]))
	frame = append(frame, ip[:]...)

	// UDP to the RoCEv2 port.
	var udp [UDPHeaderBytes]byte
	binary.BigEndian.PutUint16(udp[0:], srcPort)
	binary.BigEndian.PutUint16(udp[2:], RoCEv2UDPPort)
	binary.BigEndian.PutUint16(udp[4:], uint16(UDPHeaderBytes+len(transport)))
	frame = append(frame, udp[:]...)

	return append(frame, transport...)
}

// ipChecksum computes the IPv4 header checksum (RFC 791) with the checksum
// field treated as zero.
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// DecapsulateUDP strips Ethernet+IPv4+UDP, returning the transport bytes.
// It validates the encapsulation enough to reject non-RoCEv2 frames.
func DecapsulateUDP(frame []byte) ([]byte, bool) {
	if len(frame) < EthHeaderBytes+IPv4HeaderBytes+UDPHeaderBytes {
		return nil, false
	}
	if binary.BigEndian.Uint16(frame[12:]) != 0x0800 {
		return nil, false
	}
	ip := frame[EthHeaderBytes:]
	if ip[0]>>4 != 4 || ip[9] != 17 {
		return nil, false
	}
	// Options can stretch the IP header; bounds-check it against the frame
	// (fuzzing found crafted IHL values walking past the buffer).
	ihl := int(ip[0]&0xf) * 4
	if ihl < IPv4HeaderBytes || len(ip) < ihl+UDPHeaderBytes {
		return nil, false
	}
	udp := ip[ihl:]
	if binary.BigEndian.Uint16(udp[2:]) != RoCEv2UDPPort {
		return nil, false
	}
	return udp[UDPHeaderBytes:], true
}
