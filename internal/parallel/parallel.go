// Package parallel provides the bounded worker-pool primitives behind the
// experiment sweeps. The design contract, and the reason this package exists
// instead of ad-hoc goroutines at each call site, is determinism: Map and
// ForEach assign work by index and collect results by index, so the output
// of a sweep is byte-identical regardless of worker count or goroutine
// scheduling. Parallelism may only change wall-clock time, never a result —
// the property the timing-attack reproductions depend on and the
// determinism test suite asserts.
//
// Worker-count convention: 0 (or negative) means runtime.NumCPU(), 1 means
// strictly sequential execution on the calling goroutine. Sequential
// execution is a real code path, not a degenerate pool, so `-workers=1`
// gives an honest single-threaded baseline for speedup measurements.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalises a worker-count flag: values <= 0 select
// runtime.NumCPU(), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// PanicError wraps a panic recovered from a worker so callers see a regular
// error with the offending item's index and the worker stack.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panicked on item %d: %v\n%s", e.Index, e.Value, e.Stack)
}

// cellError pairs an error with the index it occurred at, so the error the
// caller sees is scheduling-independent (lowest index wins).
type cellError struct {
	index int
	err   error
}

// Map applies fn to every item with at most `workers` concurrent calls and
// returns results in item order. fn receives the item's index, so callers
// can derive per-cell seeds from it (see sim.DeriveSeed).
//
// Semantics:
//   - Results are positionally stable: out[i] corresponds to items[i],
//     whatever order the workers finished in.
//   - Panics inside fn are captured and returned as *PanicError.
//   - On error (or ctx cancellation) remaining items are not started; the
//     error reported is the one at the lowest item index, so failure output
//     is deterministic too.
//   - workers follows the Workers convention; workers==1 runs fn inline on
//     the calling goroutine with no channels or goroutines involved.
func Map[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, index int, item T) (R, error)) ([]R, error) {
	workers = Workers(workers)
	out := make([]R, len(items))
	if len(items) == 0 {
		return out, ctx.Err()
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers == 1 {
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			r, err := safeCall(ctx, i, item, fn)
			if err != nil {
				return out, err
			}
			out[i] = r
		}
		return out, nil
	}

	// Shared cursor: workers claim the next unclaimed index. Assignment
	// order is nondeterministic but irrelevant — results land by index.
	var next atomic.Int64
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make(chan cellError, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				if ctx.Err() != nil {
					return
				}
				r, err := safeCall(ctx, i, items[i], fn)
				if err != nil {
					errs <- cellError{index: i, err: err}
					cancel() // stop claiming new items
					return
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	close(errs)
	var first *cellError
	for ce := range errs {
		ce := ce
		if first == nil || ce.index < first.index {
			first = &ce
		}
	}
	if first != nil {
		return out, first.err
	}
	return out, ctx.Err()
}

// safeCall invokes fn converting panics to *PanicError.
func safeCall[T, R any](ctx context.Context, i int, item T, fn func(context.Context, int, T) (R, error)) (r R, err error) {
	defer func() {
		if v := recover(); v != nil {
			buf := make([]byte, 16<<10)
			buf = buf[:runtime.Stack(buf, false)]
			err = &PanicError{Index: i, Value: v, Stack: buf}
		}
	}()
	return fn(ctx, i, item)
}

// ForEach is Map for side-effecting cells with no result value.
func ForEach[T any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, index int, item T) error) error {
	_, err := Map(ctx, workers, items, func(ctx context.Context, i int, item T) (struct{}, error) {
		return struct{}{}, fn(ctx, i, item)
	})
	return err
}

// MapN is Map over the index range [0, n): for sweeps whose "items" are
// just cell indices into a parameter grid.
func MapN[R any](ctx context.Context, workers int, n int, fn func(ctx context.Context, index int) (R, error)) ([]R, error) {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return Map(ctx, workers, idx, func(ctx context.Context, i int, _ int) (R, error) {
		return fn(ctx, i)
	})
}
