package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResults(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 7, runtime.NumCPU(), 200} {
		out, err := Map(context.Background(), workers, items, func(_ context.Context, i int, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapIndexMatchesItem(t *testing.T) {
	items := []string{"a", "b", "c", "d", "e"}
	out, err := Map(context.Background(), 3, items, func(_ context.Context, i int, v string) (string, error) {
		return fmt.Sprintf("%d:%s", i, v), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		want := fmt.Sprintf("%d:%s", i, items[i])
		if v != want {
			t.Fatalf("out[%d] = %q, want %q", i, v, want)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	items := make([]int, 64)
	_, err := Map(context.Background(), workers, items, func(_ context.Context, _ int, _ int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent cells, cap is %d", p, workers)
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	items := []int{0, 1, 2, 3}
	_, err := Map(context.Background(), 2, items, func(_ context.Context, i int, v int) (int, error) {
		if v == 2 {
			panic("boom")
		}
		return v, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != 2 || pe.Value != "boom" {
		t.Fatalf("panic error: %+v", pe)
	}
	if !strings.Contains(pe.Error(), "goroutine") {
		t.Fatal("panic error lost its stack trace")
	}
}

func TestMapSequentialPanicCapturedToo(t *testing.T) {
	_, err := Map(context.Background(), 1, []int{1}, func(_ context.Context, _ int, _ int) (int, error) {
		panic("inline")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
}

func TestMapReportsLowestIndexError(t *testing.T) {
	// Every cell fails; whatever the scheduling, the reported error must be
	// the lowest-index one among those that ran — with workers=1 that is
	// deterministically cell 0.
	items := make([]int, 10)
	_, err := Map(context.Background(), 1, items, func(_ context.Context, i int, _ int) (int, error) {
		return 0, fmt.Errorf("cell %d failed", i)
	})
	if err == nil || err.Error() != "cell 0 failed" {
		t.Fatalf("err = %v, want cell 0's", err)
	}
}

func TestMapStopsDispatchAfterError(t *testing.T) {
	var ran atomic.Int64
	items := make([]int, 1000)
	_, err := Map(context.Background(), 2, items, func(_ context.Context, i int, _ int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("early failure")
		}
		time.Sleep(100 * time.Microsecond)
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n > 100 {
		t.Fatalf("%d cells ran after an early failure; dispatch should stop", n)
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	items := make([]int, 1000)
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = Map(ctx, 2, items, func(ctx context.Context, _ int, _ int) (int, error) {
			ran.Add(1)
			time.Sleep(time.Millisecond)
			return 0, nil
		})
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n == 1000 {
		t.Fatal("cancellation did not stop dispatch")
	}
}

func TestMapEmptyAndSingleton(t *testing.T) {
	out, err := Map(context.Background(), 8, []int(nil), func(_ context.Context, _ int, v int) (int, error) { return v, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty: out=%v err=%v", out, err)
	}
	out, err = Map(context.Background(), 8, []int{42}, func(_ context.Context, _ int, v int) (int, error) { return v + 1, nil })
	if err != nil || len(out) != 1 || out[0] != 43 {
		t.Fatalf("singleton: out=%v err=%v", out, err)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	items := []int{1, 2, 3, 4, 5}
	if err := ForEach(context.Background(), 3, items, func(_ context.Context, _ int, v int) error {
		sum.Add(int64(v))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 15 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestMapN(t *testing.T) {
	out, err := MapN(context.Background(), 4, 10, func(_ context.Context, i int) (int, error) {
		return i * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(0) != runtime.NumCPU() || Workers(-3) != runtime.NumCPU() {
		t.Fatal("non-positive should select NumCPU")
	}
	if Workers(5) != 5 {
		t.Fatal("positive passes through")
	}
}

// TestMapDeterministicAcrossWorkerCounts is the package-level statement of
// the headline property: a pure-per-index fn yields byte-identical output
// at every worker count.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	items := make([]int, 257)
	run := func(workers int) string {
		out, err := Map(context.Background(), workers, items, func(_ context.Context, i int, _ int) (string, error) {
			return fmt.Sprintf("%d-%x", i, i*2654435761), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return strings.Join(out, "|")
	}
	want := run(1)
	for _, w := range []int{2, 3, runtime.NumCPU(), 64} {
		if got := run(w); got != want {
			t.Fatalf("workers=%d diverged from sequential", w)
		}
	}
}
