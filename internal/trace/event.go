// Package trace is the flight recorder for the simulated RNIC datapath: a
// lock-light, ring-buffered stream of typed events that the sim engine, NIC
// pipelines, fabric links and verbs layer emit as a run executes. Recording
// is strictly passive — no event changes virtual time, engine RNG state or
// model behaviour — so traced and untraced runs are byte-identical.
//
// Recorders are per shard: every parallel sweep cell owns its rig, its
// engine and its recorder, so the sweep engine stays deterministic and
// race-free without any locking on the emit path. A nil *Recorder is the
// disabled state; Emit on nil is a single branch with zero allocations,
// which is what keeps the NIC hot path free when tracing is off
// (benchmark-guarded in bench_test.go).
//
// The package sits below sim in the import graph, so timestamps and
// durations are raw picosecond int64s (the same unit as sim.Time /
// sim.Duration).
package trace

// Kind is the type of a recorded event. Every emit site in the datapath
// uses one of these; exporters derive the Chrome trace category, display
// name and phase from it.
type Kind uint8

// Event kinds, grouped by emitting layer.
const (
	// KindNone marks the zero Event; recorders never store it.
	KindNone Kind = iota

	// Sim engine markers.
	KindEngineRun  // Run/RunUntil entered; Val = pending events
	KindEngineHalt // Halt() called mid-run

	// Verbs layer.
	KindWQEPost // work request posted; QPN, Val = WRID
	KindWQESpan // post→completion span; QPN, Dur = latency, Val = WRID, Aux = status

	// NIC datapath.
	KindArbGrant  // egress arbiter granted a ring; TC, Val = wire bytes, Aux = ring (0 req, 1 resp)
	KindRxPkt     // message entered the ingress pipeline; TC, Val = wire bytes
	KindRxCorrupt // inbound packet discarded for corruption (ICRC)
	KindPFCPause  // ingress backlog crossed the XOFF threshold; TC
	KindCQE       // completion written; QPN, Dur = post→done latency, Aux = status

	// NIC go-back-N transport.
	KindPSNSend    // request put on the wire; QPN, PSN, Val = seq
	KindNakSend    // responder sent a NAK-sequence-error; QPN, PSN = offending, Aux = last in-order PSN
	KindRewind     // requester rewound after a NAK; QPN, Aux = ack PSN, Val = packets to resend
	KindRetransmit // one packet re-sent; QPN, PSN, Dur = stall since it was last on the wire
	KindRtxTimeout // retransmit timer expired; QPN, Val = consecutive timeouts
	KindDupAck     // duplicate ACK coalesced; QPN
	KindRetryExc   // retry budget exhausted, QP failed; QPN, Val = WQEs flushed

	// Fabric links.
	KindTCEnqueue   // packet joined a TC queue; TC, Val = bytes, Aux = queue depth after
	KindTCDequeue   // packet left its TC queue for the wire; TC, Val = bytes, Dur = queueing delay
	KindWireTx      // serialization finished; TC, Val = bytes, Dur = serialization time
	KindWireDrop    // FaultPlan dropped the packet in flight; TC, Val = bytes
	KindWireCorrupt // FaultPlan corrupted the packet in flight; TC, Val = bytes
	KindTailDrop    // egress TC queue full, packet tail-dropped; TC, Val = bytes

	// Receiver instrumentation.
	KindULISample // one ULI observation; Dur = inter-sample gap, Val = ULI ns (Float64bits)
	KindBWSample  // fluid-model bandwidth window (priority channel); Val = Gbps (Float64bits)
	KindSymbol    // covert sender switched symbol state; Val = bit value

	numKinds
)

// NumKinds is the number of defined event kinds (for metrics arrays).
const NumKinds = int(numKinds)

var kindNames = [numKinds]string{
	KindNone:        "none",
	KindEngineRun:   "engine.run",
	KindEngineHalt:  "engine.halt",
	KindWQEPost:     "wqe.post",
	KindWQESpan:     "wqe",
	KindArbGrant:    "arb.grant",
	KindRxPkt:       "rx.pkt",
	KindRxCorrupt:   "rx.corrupt",
	KindPFCPause:    "pfc.pause",
	KindCQE:         "cqe",
	KindPSNSend:     "psn.send",
	KindNakSend:     "psn.nak",
	KindRewind:      "psn.rewind",
	KindRetransmit:  "psn.retransmit",
	KindRtxTimeout:  "psn.timeout",
	KindDupAck:      "psn.dupack",
	KindRetryExc:    "psn.retry_exc",
	KindTCEnqueue:   "tc.enq",
	KindTCDequeue:   "tc.deq",
	KindWireTx:      "wire.tx",
	KindWireDrop:    "wire.drop",
	KindWireCorrupt: "wire.corrupt",
	KindTailDrop:    "wire.taildrop",
	KindULISample:   "uli.sample",
	KindBWSample:    "bw",
	KindSymbol:      "symbol",
}

var kindCats = [numKinds]string{
	KindNone:        "none",
	KindEngineRun:   "engine",
	KindEngineHalt:  "engine",
	KindWQEPost:     "verbs",
	KindWQESpan:     "verbs",
	KindArbGrant:    "nic.arb",
	KindRxPkt:       "nic.rx",
	KindRxCorrupt:   "nic.rx",
	KindPFCPause:    "nic.rx",
	KindCQE:         "nic.cqe",
	KindPSNSend:     "nic.psn",
	KindNakSend:     "nic.psn",
	KindRewind:      "nic.psn",
	KindRetransmit:  "nic.psn",
	KindRtxTimeout:  "nic.psn",
	KindDupAck:      "nic.psn",
	KindRetryExc:    "nic.psn",
	KindTCEnqueue:   "fabric",
	KindTCDequeue:   "fabric",
	KindWireTx:      "fabric",
	KindWireDrop:    "fabric",
	KindWireCorrupt: "fabric",
	KindTailDrop:    "fabric",
	KindULISample:   "covert.rx",
	KindBWSample:    "covert.rx",
	KindSymbol:      "covert.tx",
}

// String returns the event's display name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// Category returns the Chrome trace category for the kind.
func (k Kind) Category() string {
	if int(k) < len(kindCats) {
		return kindCats[k]
	}
	return "none"
}

// Span reports whether events of this kind carry a meaningful duration and
// export as Chrome complete ("X") events rather than instants.
func (k Kind) Span() bool {
	switch k {
	case KindWQESpan, KindCQE, KindTCDequeue, KindWireTx, KindRetransmit:
		return true
	}
	return false
}

// Counter reports whether the kind exports as a Chrome counter ("C") track.
func (k Kind) Counter() bool { return k == KindBWSample || k == KindULISample }

// Event is one recorded datapath occurrence. Fields beyond At and Kind are
// kind-specific (see the Kind constants); unused fields stay zero. The
// struct is plain data, copied by value into the ring — no pointers, so a
// full ring holds no live references into the model.
type Event struct {
	At    int64  // virtual time, picoseconds
	Dur   int64  // span length or delay, picoseconds (Span kinds)
	Val   uint64 // primary argument (bytes, WRID, seq, Float64bits...)
	Aux   uint64 // secondary argument (ring, status, depth, ack PSN...)
	QPN   uint32 // queue pair, when applicable
	PSN   uint32 // 24-bit packet sequence number, when applicable
	Actor uint16 // emitting component, index into the recorder's actor table
	TC    int8   // traffic class, -1 when not applicable
	Kind  Kind
}
