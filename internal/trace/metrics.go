package trace

import "math/bits"

// histBuckets is the number of power-of-two latency buckets: bucket i holds
// durations d with bits.Len64(d) == i, i.e. [2^(i-1), 2^i) picoseconds.
// 64 buckets cover the whole int64 range.
const histBuckets = 65

// Histogram is a fixed-footprint log2 latency histogram over picosecond
// durations. Recording is array arithmetic only — no allocation — so the
// metrics registry can run synchronously on the emit path.
type Histogram struct {
	counts [histBuckets]uint64
	sum    int64
	n      uint64
	max    int64
}

// Record adds one duration (negative values clamp to zero).
func (h *Histogram) Record(d int64) {
	if d < 0 {
		d = 0
	}
	h.counts[bits.Len64(uint64(d))]++
	h.sum += d
	h.n++
	if d > h.max {
		h.max = d
	}
}

// Count reports recorded observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum reports the total of all recorded durations, picoseconds.
func (h *Histogram) Sum() int64 { return h.sum }

// Max reports the largest recorded duration, picoseconds.
func (h *Histogram) Max() int64 { return h.max }

// Mean reports the average recorded duration, picoseconds.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) at the
// histogram's bucket resolution: the top edge of the bucket where the
// cumulative count crosses q*n. Zero when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.n))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i]
		if cum >= target {
			if i == 0 {
				return 0
			}
			edge := int64(1) << uint(i)
			if edge > h.max || edge < 0 {
				return h.max
			}
			return edge
		}
	}
	return h.max
}

// Buckets exposes the raw bucket counts (index = bits.Len64 of the value).
func (h *Histogram) Buckets() []uint64 { return h.counts[:] }

// Metrics is the unified registry derived from the event stream: every
// Recorder owns one and updates it on each Emit, so the flight-recorder
// ring, the exported trace and these counters all describe the same single
// source of truth. Unlike the ring, the registry never forgets — it keeps
// aggregating after the ring wraps.
type Metrics struct {
	// Counts tallies every event kind (index = Kind).
	Counts [NumKinds]uint64

	// Byte counters mirroring the NIC's ethtool view, derived from
	// ArbGrant (egress) and RxPkt (ingress) events.
	TxBytes   uint64
	RxBytes   uint64
	TxBytesTC [8]uint64
	RxBytesTC [8]uint64

	// Loss observables, derived from fabric and NIC events.
	WireDropsTC [8]uint64 // tail drops + in-flight fault drops, per TC
	CorruptsTC  [8]uint64
	PFCPauses   [8]uint64

	// Latency histograms (the features HARMONIC-style counters miss).
	QueueDelay [8]Histogram // per-TC fabric queueing delay (enqueue→dequeue)
	RetxStall  Histogram    // retransmit stall: packet age when re-sent
	ULIJitter  Histogram    // receiver inter-sample gap
	WQELatency Histogram    // verbs post→completion latency

	lastULI [256]int64 // per-actor last ULI sample time, for jitter
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// observe folds one event into the registry. Pure array updates — the emit
// path stays allocation-free.
func (m *Metrics) observe(ev Event) {
	m.Counts[ev.Kind]++
	tc := int(ev.TC) & 7
	switch ev.Kind {
	case KindArbGrant:
		m.TxBytes += ev.Val
		m.TxBytesTC[tc] += ev.Val
	case KindRxPkt:
		m.RxBytes += ev.Val
		m.RxBytesTC[tc] += ev.Val
	case KindPFCPause:
		m.PFCPauses[tc]++
	case KindWireDrop, KindTailDrop:
		m.WireDropsTC[tc]++
	case KindWireCorrupt:
		m.CorruptsTC[tc]++
	case KindTCDequeue:
		m.QueueDelay[tc].Record(ev.Dur)
	case KindRetransmit:
		m.RetxStall.Record(ev.Dur)
	case KindCQE:
		m.WQELatency.Record(ev.Dur)
	case KindULISample:
		a := ev.Actor & 0xff
		if last := m.lastULI[a]; last != 0 {
			m.ULIJitter.Record(ev.At - last)
		}
		m.lastULI[a] = ev.At
	}
}

// deltaFrom subtracts a baseline from the cumulative histogram, yielding
// the distribution of samples recorded since the baseline was copied.
// Counts, sum and n subtract exactly (so Quantile and Mean are exact over
// the window); Max keeps the cumulative maximum, since order statistics
// cannot be un-merged — a documented approximation.
func (h Histogram) deltaFrom(base Histogram) Histogram {
	out := h
	for i := range out.counts {
		out.counts[i] -= base.counts[i]
	}
	out.sum -= base.sum
	out.n -= base.n
	return out
}

// DeltaFrom returns the increments recorded since base was copied off this
// registry (Metrics is value-copyable: `snap := *rec.Metrics()` captures a
// baseline). Experiments use it to compare an attack window's latency
// distributions against a pre-attack baseline on the same recorder.
func (m *Metrics) DeltaFrom(base *Metrics) *Metrics {
	d := &Metrics{}
	for i := range m.Counts {
		d.Counts[i] = m.Counts[i] - base.Counts[i]
	}
	d.TxBytes = m.TxBytes - base.TxBytes
	d.RxBytes = m.RxBytes - base.RxBytes
	for i := 0; i < 8; i++ {
		d.TxBytesTC[i] = m.TxBytesTC[i] - base.TxBytesTC[i]
		d.RxBytesTC[i] = m.RxBytesTC[i] - base.RxBytesTC[i]
		d.WireDropsTC[i] = m.WireDropsTC[i] - base.WireDropsTC[i]
		d.CorruptsTC[i] = m.CorruptsTC[i] - base.CorruptsTC[i]
		d.PFCPauses[i] = m.PFCPauses[i] - base.PFCPauses[i]
		d.QueueDelay[i] = m.QueueDelay[i].deltaFrom(base.QueueDelay[i])
	}
	d.RetxStall = m.RetxStall.deltaFrom(base.RetxStall)
	d.ULIJitter = m.ULIJitter.deltaFrom(base.ULIJitter)
	d.WQELatency = m.WQELatency.deltaFrom(base.WQELatency)
	d.lastULI = m.lastULI
	return d
}

// Count returns the tally for one kind.
func (m *Metrics) Count(k Kind) uint64 {
	if m == nil || int(k) >= NumKinds {
		return 0
	}
	return m.Counts[k]
}

// Retransmits, Timeouts, SeqNaks, DupAcks, RetryExc and RxCorrupt mirror the
// telemetry counter names for the transport observables.
func (m *Metrics) Retransmits() uint64 { return m.Count(KindRetransmit) }

// Timeouts reports retransmit-timer expiries.
func (m *Metrics) Timeouts() uint64 { return m.Count(KindRtxTimeout) }

// SeqNaks reports NAK-sequence-errors sent.
func (m *Metrics) SeqNaks() uint64 { return m.Count(KindNakSend) }

// DupAcks reports duplicate ACKs coalesced.
func (m *Metrics) DupAcks() uint64 { return m.Count(KindDupAck) }

// RetryExc reports QPs that exhausted their retry budget.
func (m *Metrics) RetryExc() uint64 { return m.Count(KindRetryExc) }

// RxCorrupt reports inbound packets discarded for corruption.
func (m *Metrics) RxCorrupt() uint64 { return m.Count(KindRxCorrupt) }

// Merge folds other into m (for aggregating per-shard registries after a
// parallel sweep). Histograms merge bucket-wise; ULI jitter state does not
// carry across shards, which is correct — shards are independent runs.
func (m *Metrics) Merge(other *Metrics) {
	if other == nil {
		return
	}
	for i := range m.Counts {
		m.Counts[i] += other.Counts[i]
	}
	m.TxBytes += other.TxBytes
	m.RxBytes += other.RxBytes
	for i := 0; i < 8; i++ {
		m.TxBytesTC[i] += other.TxBytesTC[i]
		m.RxBytesTC[i] += other.RxBytesTC[i]
		m.WireDropsTC[i] += other.WireDropsTC[i]
		m.CorruptsTC[i] += other.CorruptsTC[i]
		m.PFCPauses[i] += other.PFCPauses[i]
		m.QueueDelay[i].merge(&other.QueueDelay[i])
	}
	m.RetxStall.merge(&other.RetxStall)
	m.ULIJitter.merge(&other.ULIJitter)
	m.WQELatency.merge(&other.WQELatency)
}

func (h *Histogram) merge(o *Histogram) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.sum += o.sum
	h.n += o.n
	if o.max > h.max {
		h.max = o.max
	}
}
