package trace

import (
	"fmt"
	"io"
	"math"
)

// fmtPS renders a picosecond timestamp or duration in the most readable
// unit, mirroring sim.Duration.String without importing sim.
func fmtPS(ps int64) string {
	switch {
	case ps < 0:
		return "-" + fmtPS(-ps)
	case ps < 1_000:
		return fmt.Sprintf("%dps", ps)
	case ps < 1_000_000:
		return fmt.Sprintf("%.3gns", float64(ps)/1e3)
	case ps < 1_000_000_000:
		return fmt.Sprintf("%.4gus", float64(ps)/1e6)
	case ps < 1_000_000_000_000:
		return fmt.Sprintf("%.4gms", float64(ps)/1e9)
	default:
		return fmt.Sprintf("%.6gs", float64(ps)/1e12)
	}
}

// WriteText renders a recorder's retained events as a compact, grep-able
// timeline — one line per event, chronological (ring) order.
func WriteText(w io.Writer, r *Recorder) error {
	if r == nil {
		_, err := fmt.Fprintln(w, "(tracing disabled)")
		return err
	}
	actors := r.Actors()
	if r.Dropped() > 0 {
		if _, err := fmt.Fprintf(w, "# ring wrapped: %d of %d events retained\n",
			r.Len(), r.Total()); err != nil {
			return err
		}
	}
	for _, ev := range r.Events() {
		actor := "?"
		if int(ev.Actor) < len(actors) {
			actor = actors[ev.Actor]
		}
		line := fmt.Sprintf("%-12s %-10s %-14s %s", fmtPS(ev.At), ev.Kind.Category(), ev.Kind, actor)
		if ev.TC >= 0 {
			line += fmt.Sprintf(" tc=%d", ev.TC)
		}
		if ev.QPN != 0 {
			line += fmt.Sprintf(" qpn=%d", ev.QPN)
		}
		switch ev.Kind {
		case KindPSNSend:
			line += fmt.Sprintf(" psn=%d seq=%d", ev.PSN, ev.Val)
		case KindNakSend:
			line += fmt.Sprintf(" psn=%d ack_psn=%d", ev.PSN, ev.Aux)
		case KindRewind:
			line += fmt.Sprintf(" ack_psn=%d resend=%d", ev.Aux, ev.Val)
		case KindRetransmit:
			line += fmt.Sprintf(" psn=%d stall=%s", ev.PSN, fmtPS(ev.Dur))
		case KindRtxTimeout:
			line += fmt.Sprintf(" timeouts=%d", ev.Val)
		case KindRetryExc:
			line += fmt.Sprintf(" flushed=%d", ev.Val)
		case KindArbGrant:
			line += fmt.Sprintf(" ring=%d bytes=%d", ev.Aux, ev.Val)
		case KindRxPkt, KindTailDrop, KindWireDrop, KindWireCorrupt:
			line += fmt.Sprintf(" bytes=%d", ev.Val)
		case KindTCEnqueue:
			line += fmt.Sprintf(" bytes=%d qdepth=%d", ev.Val, ev.Aux)
		case KindTCDequeue:
			line += fmt.Sprintf(" bytes=%d qdelay=%s", ev.Val, fmtPS(ev.Dur))
		case KindWireTx:
			line += fmt.Sprintf(" bytes=%d ser=%s", ev.Val, fmtPS(ev.Dur))
		case KindWQEPost:
			line += fmt.Sprintf(" wrid=%d", ev.Val)
		case KindWQESpan, KindCQE:
			line += fmt.Sprintf(" status=%d lat=%s", ev.Aux, fmtPS(ev.Dur))
			if ev.Kind == KindWQESpan {
				line += fmt.Sprintf(" wrid=%d", ev.Val)
			}
		case KindULISample:
			line += fmt.Sprintf(" uli=%.1fns gap=%s", math.Float64frombits(ev.Val), fmtPS(ev.Dur))
		case KindBWSample:
			line += fmt.Sprintf(" bw=%.3fGbps", math.Float64frombits(ev.Val))
		case KindSymbol:
			line += fmt.Sprintf(" bit=%d", ev.Val)
		case KindEngineRun:
			line += fmt.Sprintf(" pending=%d", ev.Val)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// Summary returns a one-screen digest of a recorder: totals per category
// and the key histogram figures — the text the trace CLI prints alongside
// the exported JSON.
func Summary(r *Recorder) string {
	if r == nil {
		return "(tracing disabled)\n"
	}
	m := r.Metrics()
	s := fmt.Sprintf("trace %q: %d events (%d retained, %d overwritten)\n",
		r.Name(), r.Total(), r.Len(), r.Dropped())
	var byCat = map[string]uint64{}
	for k := 0; k < NumKinds; k++ {
		if m.Counts[k] > 0 {
			byCat[Kind(k).Category()] += m.Counts[k]
		}
	}
	for _, cat := range []string{"engine", "verbs", "nic.arb", "nic.rx", "nic.cqe", "nic.psn", "fabric", "covert.rx", "covert.tx"} {
		if n := byCat[cat]; n > 0 {
			s += fmt.Sprintf("  %-10s %8d events\n", cat, n)
		}
	}
	if m.WQELatency.Count() > 0 {
		s += fmt.Sprintf("  wqe latency   p50=%s p99=%s max=%s\n",
			fmtPS(m.WQELatency.Quantile(0.5)), fmtPS(m.WQELatency.Quantile(0.99)), fmtPS(m.WQELatency.Max()))
	}
	if m.RetxStall.Count() > 0 {
		s += fmt.Sprintf("  retx stall    n=%d p50=%s max=%s\n",
			m.RetxStall.Count(), fmtPS(m.RetxStall.Quantile(0.5)), fmtPS(m.RetxStall.Max()))
	}
	if m.ULIJitter.Count() > 0 {
		s += fmt.Sprintf("  uli gap       n=%d p50=%s p99=%s\n",
			m.ULIJitter.Count(), fmtPS(m.ULIJitter.Quantile(0.5)), fmtPS(m.ULIJitter.Quantile(0.99)))
	}
	return s
}
