package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestNilRecorderIsDisabled(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Emit(Event{Kind: KindPSNSend}) // must not panic
	if r.Len() != 0 || r.Total() != 0 || r.Events() != nil || r.Metrics() != nil {
		t.Fatal("nil recorder leaked state")
	}
	if got := r.RegisterActor("x"); got != 0 {
		t.Fatalf("nil RegisterActor = %d, want 0", got)
	}
}

func TestRingWrapKeepsNewestInOrder(t *testing.T) {
	r := NewRecorder("wrap", 4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{At: int64(i), Kind: KindRxPkt, Val: uint64(i)})
	}
	if r.Total() != 10 || r.Len() != 4 || r.Dropped() != 6 {
		t.Fatalf("total=%d len=%d dropped=%d", r.Total(), r.Len(), r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := int64(6 + i); ev.At != want {
			t.Fatalf("event %d at %d, want %d (oldest-first after wrap)", i, ev.At, want)
		}
	}
	// Metrics keep counting across the wrap.
	if got := r.Metrics().Count(KindRxPkt); got != 10 {
		t.Fatalf("metrics count %d, want 10", got)
	}
}

func TestActorInterning(t *testing.T) {
	r := NewRecorder("actors", 16)
	a := r.RegisterActor("nic/psn")
	b := r.RegisterActor("link")
	if a == b {
		t.Fatal("distinct actors share an id")
	}
	if again := r.RegisterActor("nic/psn"); again != a {
		t.Fatalf("re-registering returned %d, want %d", again, a)
	}
	if r.Actors()[a] != "nic/psn" || r.Actors()[b] != "link" {
		t.Fatalf("actor table %v", r.Actors())
	}
}

func TestMetricsDerivation(t *testing.T) {
	r := NewRecorder("m", 64)
	r.Emit(Event{Kind: KindArbGrant, TC: 3, Val: 1000})
	r.Emit(Event{Kind: KindArbGrant, TC: 3, Val: 500})
	r.Emit(Event{Kind: KindRxPkt, TC: 0, Val: 64})
	r.Emit(Event{Kind: KindTailDrop, TC: 3, Val: 100})
	r.Emit(Event{Kind: KindWireDrop, TC: 3, Val: 100})
	r.Emit(Event{Kind: KindWireCorrupt, TC: 1, Val: 9})
	r.Emit(Event{Kind: KindPFCPause, TC: 0})
	r.Emit(Event{Kind: KindRetransmit, Dur: 5000})
	r.Emit(Event{Kind: KindRtxTimeout})
	r.Emit(Event{Kind: KindNakSend})
	r.Emit(Event{Kind: KindDupAck})
	r.Emit(Event{Kind: KindRxCorrupt})
	r.Emit(Event{Kind: KindTCDequeue, TC: 2, Dur: 1 << 20})
	m := r.Metrics()
	if m.TxBytes != 1500 || m.TxBytesTC[3] != 1500 {
		t.Fatalf("tx bytes %d/%d", m.TxBytes, m.TxBytesTC[3])
	}
	if m.RxBytes != 64 || m.RxBytesTC[0] != 64 {
		t.Fatalf("rx bytes %d", m.RxBytes)
	}
	if m.WireDropsTC[3] != 2 {
		t.Fatalf("drops %d, want 2 (tail + fault)", m.WireDropsTC[3])
	}
	if m.CorruptsTC[1] != 1 || m.PFCPauses[0] != 1 {
		t.Fatal("corrupt/pfc counters")
	}
	if m.Retransmits() != 1 || m.Timeouts() != 1 || m.SeqNaks() != 1 ||
		m.DupAcks() != 1 || m.RxCorrupt() != 1 {
		t.Fatal("transport counters")
	}
	if m.RetxStall.Count() != 1 || m.RetxStall.Sum() != 5000 {
		t.Fatalf("retx stall hist n=%d sum=%d", m.RetxStall.Count(), m.RetxStall.Sum())
	}
	if m.QueueDelay[2].Count() != 1 {
		t.Fatal("queue delay hist")
	}
}

func TestULIJitterTracksPerActor(t *testing.T) {
	r := NewRecorder("j", 64)
	// Two actors interleaved: jitter must pair samples within an actor.
	r.Emit(Event{Kind: KindULISample, Actor: 1, At: 1000})
	r.Emit(Event{Kind: KindULISample, Actor: 2, At: 1500})
	r.Emit(Event{Kind: KindULISample, Actor: 1, At: 3000})
	m := r.Metrics()
	if m.ULIJitter.Count() != 1 {
		t.Fatalf("jitter observations %d, want 1", m.ULIJitter.Count())
	}
	if m.ULIJitter.Sum() != 2000 {
		t.Fatalf("jitter sum %d, want 2000 (actor-1 gap)", m.ULIJitter.Sum())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must read zero")
	}
	for i := 0; i < 90; i++ {
		h.Record(100) // bucket [64,128)
	}
	for i := 0; i < 10; i++ {
		h.Record(1 << 30)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if q := h.Quantile(0.5); q < 100 || q > 256 {
		t.Fatalf("p50 = %d, want within the 100ps bucket's edge", q)
	}
	if q := h.Quantile(0.99); q < 1<<30 {
		t.Fatalf("p99 = %d, want >= 2^30", q)
	}
	if h.Max() != 1<<30 {
		t.Fatalf("max %d", h.Max())
	}
	h.Record(-5) // clamps, never panics
}

func TestMetricsMerge(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.observe(Event{Kind: KindRetransmit, Dur: 10})
	b.observe(Event{Kind: KindRetransmit, Dur: 20})
	b.observe(Event{Kind: KindArbGrant, TC: 1, Val: 7})
	a.Merge(b)
	a.Merge(nil)
	if a.Retransmits() != 2 || a.RetxStall.Count() != 2 || a.RetxStall.Sum() != 30 {
		t.Fatal("merge lost histogram state")
	}
	if a.TxBytesTC[1] != 7 {
		t.Fatal("merge lost byte counters")
	}
}

// TestChromeExportSchema is the acceptance check that exported traces are
// valid Chrome trace-event JSON: a traceEvents array whose entries all carry
// name/ph/ts/pid/tid, metadata names the shard and actors, spans carry dur,
// and counters carry a numeric value.
func TestChromeExportSchema(t *testing.T) {
	r := NewRecorder("cell0", 64)
	psn := r.RegisterActor("nic/psn")
	r.Emit(Event{At: 1_000_000, Kind: KindPSNSend, Actor: psn, QPN: 65, PSN: 3, TC: 0})
	r.Emit(Event{At: 2_000_000, Dur: 500_000, Kind: KindCQE, Actor: psn, QPN: 65, TC: 0})
	r.Emit(Event{At: 3_000_000, Kind: KindBWSample, Actor: psn, Val: math.Float64bits(12.5), TC: -1})
	var buf bytes.Buffer
	if err := WriteChrome(&buf, r); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var sawProcess, sawSpan, sawCounter, sawInstant bool
	for _, ev := range file.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid", "ts"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event missing %q: %v", key, ev)
			}
		}
		switch ev["ph"] {
		case "M":
			if ev["name"] == "process_name" {
				sawProcess = true
			}
		case "X":
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("span without dur: %v", ev)
			}
			sawSpan = true
		case "C":
			args := ev["args"].(map[string]any)
			if _, ok := args["value"].(float64); !ok {
				t.Fatalf("counter without numeric value: %v", ev)
			}
			sawCounter = true
		case "i":
			if ev["s"] != "t" {
				t.Fatalf("instant without thread scope: %v", ev)
			}
			sawInstant = true
		}
	}
	if !sawProcess || !sawSpan || !sawCounter || !sawInstant {
		t.Fatalf("missing phases: M=%v X=%v C=%v i=%v", sawProcess, sawSpan, sawCounter, sawInstant)
	}
}

func TestChromeExportDeterministic(t *testing.T) {
	build := func() *Recorder {
		r := NewRecorder("det", 32)
		a := r.RegisterActor("link")
		for i := 0; i < 50; i++ {
			r.Emit(Event{At: int64(i) * 1000, Kind: KindTCEnqueue, Actor: a, TC: int8(i % 8), Val: 64, Aux: 1})
		}
		return r
	}
	var b1, b2 bytes.Buffer
	if err := WriteChrome(&b1, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b2, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("chrome export is not byte-deterministic")
	}
}

func TestWriteTextTimeline(t *testing.T) {
	r := NewRecorder("txt", 4)
	a := r.RegisterActor("server/nic")
	r.Emit(Event{At: 1_500_000, Kind: KindNakSend, Actor: a, QPN: 7, PSN: 12, Aux: 11, TC: 0})
	r.Emit(Event{At: 1_600_000, Kind: KindRewind, Actor: a, QPN: 7, Aux: 11, Val: 3, TC: -1})
	var buf strings.Builder
	if err := WriteText(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"psn.nak", "ack_psn=11", "psn.rewind", "resend=3", "server/nic", "qpn=7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	var nilBuf strings.Builder
	if err := WriteText(&nilBuf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nilBuf.String(), "disabled") {
		t.Fatal("nil recorder timeline")
	}
}

func TestSummaryDigest(t *testing.T) {
	r := NewRecorder("sum", 8)
	r.Emit(Event{Kind: KindRetransmit, Dur: 1000})
	r.Emit(Event{Kind: KindCQE, Dur: 2000})
	s := Summary(r)
	for _, want := range []string{"nic.psn", "nic.cqe", "retx stall", "wqe latency"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(Summary(nil), "disabled") {
		t.Fatal("nil summary")
	}
}

// TestEmitZeroAlloc is the allocation guard behind the acceptance criterion:
// the disabled (nil-recorder) emit path — the exact call shape compiled into
// the NIC hot path — must not allocate, and the enabled path must stay
// allocation-free too so enabling tracing never perturbs GC behaviour.
func TestEmitZeroAlloc(t *testing.T) {
	var disabled *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		disabled.Emit(Event{At: 5, Kind: KindPSNSend, QPN: 65, PSN: 3, Val: 9, TC: 0})
	}); n != 0 {
		t.Fatalf("disabled emit allocates %.1f/op, want 0", n)
	}
	enabled := NewRecorder("hot", 1024)
	if n := testing.AllocsPerRun(1000, func() {
		enabled.Emit(Event{At: 5, Kind: KindRetransmit, QPN: 65, PSN: 3, Dur: 100, TC: 0})
	}); n != 0 {
		t.Fatalf("enabled emit allocates %.1f/op, want 0", n)
	}
}

func TestKindStringsTotal(t *testing.T) {
	for k := Kind(0); k < Kind(NumKinds); k++ {
		if k.String() == "" || k.String() == "kind?" && k != KindNone {
			t.Fatalf("kind %d missing a name", k)
		}
		if k.Category() == "" {
			t.Fatalf("kind %d missing a category", k)
		}
	}
}
