package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (chrome://tracing and Perfetto both load it). Field names follow the
// published spec: ph is the phase, ts/dur are microseconds, pid/tid group
// events into process/thread tracks.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// psToUS converts picoseconds to the format's microsecond unit.
func psToUS(ps int64) float64 { return float64(ps) / 1e6 }

// WriteChrome exports one or more recorders as Chrome trace-event JSON.
// Each recorder becomes one process track (pid = shard index + 1) and each
// registered actor one thread track within it, so a parallel sweep's
// per-cell recorders land side by side in the viewer. Output is
// deterministic: events keep their ring order and JSON map keys marshal
// sorted.
func WriteChrome(w io.Writer, recs ...*Recorder) error {
	file := chromeFile{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	for ri, r := range recs {
		if r == nil {
			continue
		}
		pid := ri + 1
		name := r.Name()
		if name == "" {
			name = fmt.Sprintf("shard%d", ri)
		}
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid, TID: 0,
			Args: map[string]any{"name": name},
		})
		for ai, actor := range r.Actors() {
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: "thread_name", Phase: "M", PID: pid, TID: ai,
				Args: map[string]any{"name": actor},
			})
		}
		for _, ev := range r.Events() {
			file.TraceEvents = append(file.TraceEvents, encodeEvent(ev, pid))
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// encodeEvent maps one typed event onto the Chrome schema. Span kinds end
// at ev.At and stretch Dur back in time; counter kinds carry their value in
// args; everything else is a thread-scoped instant.
func encodeEvent(ev Event, pid int) chromeEvent {
	ce := chromeEvent{
		Name:  ev.Kind.String(),
		Cat:   ev.Kind.Category(),
		Phase: "i",
		TS:    psToUS(ev.At),
		PID:   pid,
		TID:   int(ev.Actor),
		Args:  eventArgs(ev),
	}
	switch {
	case ev.Kind.Span():
		ce.Phase = "X"
		d := psToUS(ev.Dur)
		ce.Dur = &d
		ce.TS = psToUS(ev.At - ev.Dur)
	case ev.Kind.Counter():
		ce.Phase = "C"
		ce.Args = map[string]any{"value": math.Float64frombits(ev.Val)}
	default:
		ce.Scope = "t"
	}
	return ce
}

// eventArgs picks the human-meaningful arguments per kind.
func eventArgs(ev Event) map[string]any {
	args := map[string]any{}
	if ev.TC >= 0 {
		args["tc"] = int(ev.TC)
	}
	if ev.QPN != 0 {
		args["qpn"] = ev.QPN
	}
	switch ev.Kind {
	case KindPSNSend, KindNakSend, KindRetransmit:
		args["psn"] = ev.PSN
	}
	switch ev.Kind {
	case KindArbGrant:
		args["bytes"] = ev.Val
		args["ring"] = ev.Aux
	case KindRxPkt, KindTCEnqueue, KindTCDequeue, KindWireTx, KindWireDrop,
		KindWireCorrupt, KindTailDrop:
		args["bytes"] = ev.Val
		if ev.Kind == KindTCEnqueue {
			args["qdepth"] = ev.Aux
		}
	case KindPSNSend:
		args["seq"] = ev.Val
	case KindNakSend, KindRewind:
		args["ack_psn"] = ev.Aux
		if ev.Kind == KindRewind {
			args["resend"] = ev.Val
		}
	case KindRtxTimeout:
		args["timeouts"] = ev.Val
	case KindRetryExc:
		args["flushed"] = ev.Val
	case KindWQEPost, KindWQESpan:
		args["wrid"] = ev.Val
		if ev.Kind == KindWQESpan {
			args["status"] = ev.Aux
		}
	case KindCQE:
		args["status"] = ev.Aux
	case KindSymbol:
		args["bit"] = ev.Val
	}
	if len(args) == 0 {
		return nil
	}
	return args
}
