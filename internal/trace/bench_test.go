package trace

import "testing"

// BenchmarkEmitDisabled measures the cost compiled into every NIC hot-path
// call site when tracing is off: a nil check on the receiver. The companion
// guard TestEmitZeroAlloc asserts 0 allocs/op; this benchmark shows the
// per-op time is in the sub-nanosecond branch-predictor regime.
func BenchmarkEmitDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(Event{At: int64(i), Kind: KindPSNSend, QPN: 65, PSN: uint32(i), TC: 0})
	}
}

// BenchmarkEmitEnabled measures the enabled path: ring store plus metrics
// fold, still allocation-free.
func BenchmarkEmitEnabled(b *testing.B) {
	r := NewRecorder("bench", 1<<14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(Event{At: int64(i), Kind: KindTCDequeue, TC: int8(i & 7), Val: 64, Dur: 1000})
	}
}
