package trace

// DefaultCapacity is the ring size used when NewRecorder is given a
// non-positive capacity: large enough to hold every event of a typical
// covert-channel transmission, small enough that a parallel sweep can give
// each cell its own recorder without memory pressure.
const DefaultCapacity = 1 << 16

// Recorder is one shard's flight recorder: a fixed-capacity ring of events
// plus the metrics registry derived from the same stream. It is the unit of
// isolation for parallel sweeps — one recorder per cell, no sharing, no
// locks. A nil *Recorder is the disabled state: every method is nil-safe
// and Emit on nil is a single predictable branch.
type Recorder struct {
	name    string
	buf     []Event
	n       uint64 // total events emitted (ring head = n % cap)
	actors  []string
	metrics *Metrics
}

// NewRecorder creates a recorder named name holding up to capacity events
// (older events are overwritten once the ring wraps; the metrics registry
// keeps counting regardless). capacity <= 0 selects DefaultCapacity.
func NewRecorder(name string, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		name:    name,
		buf:     make([]Event, 0, capacity),
		actors:  []string{"?"},
		metrics: NewMetrics(),
	}
}

// Name returns the shard name given at construction.
func (r *Recorder) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// Enabled reports whether the recorder records (i.e. is non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// RegisterActor interns a component name (a NIC pipeline stage, a fabric
// link, a verbs context) and returns its id for Event.Actor. Registration
// happens at rig wiring time, never on the hot path. Duplicate names return
// the existing id. On a nil recorder it returns 0.
func (r *Recorder) RegisterActor(name string) uint16 {
	if r == nil {
		return 0
	}
	for i, a := range r.actors {
		if a == name {
			return uint16(i)
		}
	}
	r.actors = append(r.actors, name)
	return uint16(len(r.actors) - 1)
}

// Actors returns the interned actor table (index = Event.Actor).
func (r *Recorder) Actors() []string {
	if r == nil {
		return nil
	}
	return r.actors
}

// Emit records one event. On a nil recorder this is the disabled fast path:
// one branch, zero allocations (the Event argument lives on the caller's
// stack). When enabled, the event lands in the ring and updates the metrics
// registry; neither path allocates, so enabling tracing perturbs only host
// wall-clock time, never simulated time.
func (r *Recorder) Emit(ev Event) {
	if r == nil {
		return
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.n%uint64(cap(r.buf))] = ev
	}
	r.n++
	r.metrics.observe(ev)
}

// Len reports how many events are currently held in the ring.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Total reports how many events were emitted over the recorder's lifetime.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.n
}

// Dropped reports how many events the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.n - uint64(len(r.buf))
}

// Events returns the retained events in emission order (oldest first). The
// slice is a copy; mutating it does not disturb the ring.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	head := int(r.n % uint64(cap(r.buf)))
	out = append(out, r.buf[head:]...)
	return append(out, r.buf[:head]...)
}

// Metrics returns the registry accumulated from every emitted event (ring
// overwrites do not lose counts). Nil on a disabled recorder.
func (r *Recorder) Metrics() *Metrics {
	if r == nil {
		return nil
	}
	return r.metrics
}
