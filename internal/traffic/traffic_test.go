package traffic

import (
	"testing"

	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/verbs"
)

func rig(t *testing.T) (*lab.Cluster, *lab.Conn, *verbs.MR) {
	t.Helper()
	c := lab.New(lab.DefaultConfig(nic.CX5))
	mr, err := c.RegisterServerMR(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := c.Dial(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Warm(conn, mr); err != nil {
		t.Fatal(err)
	}
	return c, conn, mr
}

func TestGeneratorSustainsLoad(t *testing.T) {
	c, conn, mr := rig(t)
	gen := &Generator{
		QP: conn.QP, CQ: conn.CQ, Op: nic.OpRead, MsgSize: 64, Depth: 8,
		Next: FixedTarget(mr.Describe(0)),
	}
	if err := gen.Start(); err != nil {
		t.Fatal(err)
	}
	c.Eng.RunFor(100 * sim.Microsecond)
	mid := gen.Completed()
	if mid == 0 {
		t.Fatal("no completions in 100us")
	}
	c.Eng.RunFor(100 * sim.Microsecond)
	if gen.Completed() <= mid {
		t.Fatal("generator stalled")
	}
	gen.Stop()
	c.Eng.RunFor(100 * sim.Microsecond)
	drained := gen.Completed()
	c.Eng.RunFor(100 * sim.Microsecond)
	// After stop + drain no further completions accrue... the CQ hook is
	// removed, so Completed freezes even if stragglers land.
	if gen.Completed() != drained {
		t.Fatal("completions counted after Stop")
	}
	if gen.Errors() != 0 {
		t.Fatalf("generator saw %d errors", gen.Errors())
	}
}

func TestGeneratorWritesLand(t *testing.T) {
	c, conn, mr := rig(t)
	payload := []byte("generator-payload")
	gen := &Generator{
		QP: conn.QP, CQ: conn.CQ, Op: nic.OpWrite, MsgSize: len(payload), Depth: 2,
		Next: FixedTarget(mr.Describe(4096)),
		Data: payload,
	}
	if err := gen.Start(); err != nil {
		t.Fatal(err)
	}
	c.Eng.RunFor(50 * sim.Microsecond)
	gen.Stop()
	got := mr.Bytes()[4096 : 4096+len(payload)]
	if string(got) != string(payload) {
		t.Fatalf("server memory = %q", got)
	}
}

func TestGeneratorValidation(t *testing.T) {
	_, conn, mr := rig(t)
	g := &Generator{QP: conn.QP, CQ: conn.CQ, Op: nic.OpRead, MsgSize: 64, Depth: 1}
	if err := g.Start(); err == nil {
		t.Fatal("missing Next should error")
	}
	g.Next = FixedTarget(mr.Describe(0))
	g.Op = nic.OpAtomicFAA
	if err := g.Start(); err == nil {
		t.Fatal("unsupported op should error")
	}
	g.Op = nic.OpRead
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err == nil {
		t.Fatal("double start should error")
	}
}

func TestAlternateSelector(t *testing.T) {
	a := verbs.RemoteBuf{RKey: 1, Addr: 100}
	b := verbs.RemoteBuf{RKey: 2, Addr: 200}
	sel := Alternate(a, b)
	if sel(0) != a || sel(1) != b || sel(2) != a {
		t.Fatal("alternation broken")
	}
}

func TestAlternateEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty Alternate should panic")
		}
	}()
	Alternate()
}

func TestGeneratorBacksOffWhenSQFull(t *testing.T) {
	c, conn, mr := rig(t)
	// Depth greater than the QP's cap (16): posts beyond the cap back off
	// and the generator keeps flowing at the cap.
	gen := &Generator{
		QP: conn.QP, CQ: conn.CQ, Op: nic.OpRead, MsgSize: 64, Depth: 32,
		Next: FixedTarget(mr.Describe(0)),
	}
	if err := gen.Start(); err != nil {
		t.Fatal(err)
	}
	c.Eng.RunFor(200 * sim.Microsecond)
	gen.Stop()
	if gen.Completed() == 0 {
		t.Fatal("generator deadlocked at SQ cap")
	}
}
