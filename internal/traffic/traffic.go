// Package traffic provides closed-loop RDMA traffic generators: the building
// block for covert-channel senders, side-channel victims and background
// load. A Generator keeps a fixed number of operations outstanding on its
// queue pair and re-posts on every completion, with a pluggable target
// selector so callers encode information in what is accessed (MR identity,
// address offset) rather than how much.
package traffic

import (
	"errors"

	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/verbs"
)

// Generator issues a continuous stream of one-sided operations.
type Generator struct {
	QP      *verbs.QP
	CQ      *verbs.CQ
	Op      nic.Opcode // OpRead or OpWrite
	MsgSize int
	Depth   int
	// Next selects the target of operation i. Required.
	Next func(i int) verbs.RemoteBuf
	// Data supplies the payload for writes; nil writes zeros.
	Data []byte

	running   bool
	posted    int
	completed uint64
	errs      uint64
}

// Start fills the queue and installs the completion hook. The generator
// owns its CQ's Notify slot while running.
func (g *Generator) Start() error {
	if g.running {
		return errors.New("traffic: already running")
	}
	if g.Next == nil {
		return errors.New("traffic: Next selector required")
	}
	if g.Depth < 1 {
		g.Depth = 1
	}
	if g.Op != nic.OpRead && g.Op != nic.OpWrite {
		return errors.New("traffic: generator supports READ and WRITE")
	}
	g.running = true
	g.CQ.Notify = func(c nic.Completion) {
		if c.Status != nic.StatusOK {
			g.errs++
		}
		g.completed++
		if g.running {
			g.post()
		}
	}
	for i := 0; i < g.Depth; i++ {
		if err := g.post(); err != nil {
			return err
		}
	}
	return nil
}

func (g *Generator) post() error {
	target := g.Next(g.posted)
	wrid := uint64(g.posted)
	g.posted++
	var err error
	if g.Op == nic.OpRead {
		err = g.QP.PostRead(wrid, nil, target, g.MsgSize)
	} else {
		err = g.QP.PostWrite(wrid, g.Data, target, g.MsgSize)
	}
	if err == verbs.ErrSQFull {
		return nil // back off; the next completion re-posts
	}
	return err
}

// Stop ceases posting; in-flight operations drain naturally.
func (g *Generator) Stop() {
	g.running = false
	g.CQ.Notify = nil
}

// Running reports whether the generator is active.
func (g *Generator) Running() bool { return g.running }

// Completed returns the number of finished operations.
func (g *Generator) Completed() uint64 { return g.completed }

// Errors returns the number of failed operations.
func (g *Generator) Errors() uint64 { return g.errs }

// FixedTarget returns a selector that always hits one remote buffer.
func FixedTarget(r verbs.RemoteBuf) func(int) verbs.RemoteBuf {
	return func(int) verbs.RemoteBuf { return r }
}

// Alternate returns a selector that cycles through the given targets.
func Alternate(targets ...verbs.RemoteBuf) func(int) verbs.RemoteBuf {
	if len(targets) == 0 {
		panic("traffic: Alternate needs at least one target")
	}
	return func(i int) verbs.RemoteBuf { return targets[i%len(targets)] }
}
