package appnvmf

import (
	"testing"

	"github.com/thu-has/ragnar/internal/host"
	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/verbs"
)

// rig builds a point-to-point cluster with one target queue served.
func rig(t *testing.T, clients int) (*lab.Cluster, *Target, *TargetQueue) {
	t.Helper()
	cfg := lab.DefaultConfig(nic.CX5)
	cfg.Clients = clients
	c := lab.New(cfg)
	tgt, err := NewTarget(c.Server, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	tq, err := tgt.Serve(32)
	if err != nil {
		t.Fatal(err)
	}
	return c, tgt, tq
}

// rawClient is a hand-driven initiator-side endpoint: full control over
// capsule framing for the conformance cases the workload generator would
// never produce.
type rawClient struct {
	qp    *verbs.QP
	mr    *verbs.MR
	comps []Completion
}

func dialRaw(t *testing.T, c *lab.Cluster, client int, tq *TargetQueue) *rawClient {
	t.Helper()
	ctx := c.Clients[client]
	pd := ctx.AllocPD()
	mr, err := pd.RegMR(1<<20, host.Page2M, verbs.AccessRemoteRead|verbs.AccessRemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	cq := ctx.CreateCQ(0)
	cq.Notify = func(nic.Completion) {}
	qp, err := ctx.CreateQP(pd, cq, verbs.QPCap{MaxSendWR: 64})
	if err != nil {
		t.Fatal(err)
	}
	rc := &rawClient{qp: qp, mr: mr}
	qp.OnRecv = func(ev nic.RecvEvent) {
		if ev.Op != nic.OpSend {
			return
		}
		if comp, err := unmarshalCompletion(ev.Data); err == nil {
			rc.comps = append(rc.comps, comp)
		}
	}
	if err := verbs.Connect(qp, tq.QP()); err != nil {
		t.Fatal(err)
	}
	return rc
}

// TestCapsuleRoundTrip pins the wire format.
func TestCapsuleRoundTrip(t *testing.T) {
	in := Command{Op: CmdWrite, CID: 513, NSID: 1, Offset: 0xdeadbe00,
		Length: 4096, RAddr: 0x7f0000001000, RKey: 0x1007}
	out, err := UnmarshalCommand(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("capsule round trip: got %+v want %+v", out, in)
	}
	if _, err := UnmarshalCommand(in.Marshal()[:16]); err == nil {
		t.Fatal("truncated capsule decoded")
	}
}

// TestReadWriteRoundTrip drives a raw write of arbitrary bytes followed by a
// read of the same range: the payload must survive initiator → staging →
// namespace → initiator, byte for byte.
func TestReadWriteRoundTrip(t *testing.T) {
	c, tgt, tq := rig(t, 1)
	rc := dialRaw(t, c, 0, tq)

	const size, off = 4096, uint64(64 << 10)
	wbuf := rc.mr.Bytes()[:size]
	for i := range wbuf {
		wbuf[i] = byte(i*7 + 3)
	}
	wcmd := Command{Op: CmdWrite, CID: 1, NSID: 1, Offset: off, Length: size,
		RAddr: rc.mr.Addr(0), RKey: rc.mr.RKey()}
	if err := rc.qp.PostSend(1, wcmd.Marshal()); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if len(rc.comps) != 1 || rc.comps[0] != (Completion{Status: StatusOK, CID: 1}) {
		t.Fatalf("write completion = %+v", rc.comps)
	}

	// Read the range back into a different slot.
	rcmd := Command{Op: CmdRead, CID: 2, NSID: 1, Offset: off, Length: size,
		RAddr: rc.mr.Addr(size), RKey: rc.mr.RKey()}
	if err := rc.qp.PostSend(2, rcmd.Marshal()); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if len(rc.comps) != 2 || rc.comps[1] != (Completion{Status: StatusOK, CID: 2}) {
		t.Fatalf("read completion = %+v", rc.comps)
	}
	rbuf := rc.mr.Bytes()[size : 2*size]
	for i := range rbuf {
		if rbuf[i] != wbuf[i] {
			t.Fatalf("read byte %d = %#x, want %#x", i, rbuf[i], wbuf[i])
		}
	}
	if tc := tgt.Counters(); tc.Commands != 2 || tc.Reads != 1 || tc.Writes != 1 || tc.BadCapsules != 0 {
		t.Fatalf("target counters = %+v", tc)
	}
}

// TestBadCapsules: every malformed-capsule class is counted and, where a CID
// exists, answered with the right NVMe status — and none of them crash or
// stall the queue for a subsequent well-formed command.
func TestBadCapsules(t *testing.T) {
	c, tgt, tq := rig(t, 1)
	rc := dialRaw(t, c, 0, tq)

	// One capsule per event round: WQEs posted in the same instant may
	// launch in any deterministic order (PSNs are assigned at wire launch),
	// so serialise the rounds to pin the completion sequence.
	post := func(wrid uint64, data []byte) {
		t.Helper()
		if err := rc.qp.PostSend(wrid, data); err != nil {
			t.Fatal(err)
		}
		c.Run()
	}
	// Unframeable: wrong capsule size (the S/R mismatch frame).
	post(1, make([]byte, 24))
	// Unknown opcode.
	post(2, Command{Op: 0x7f, CID: 9, NSID: 1, Length: 512, Offset: 0,
		RAddr: rc.mr.Addr(0), RKey: rc.mr.RKey()}.Marshal())
	// Unknown namespace.
	post(3, Command{Op: CmdRead, CID: 10, NSID: 42, Length: 512,
		RAddr: rc.mr.Addr(0), RKey: rc.mr.RKey()}.Marshal())
	// LBA range overrun.
	post(4, Command{Op: CmdRead, CID: 11, NSID: 1, Offset: 4 << 20, Length: 4096,
		RAddr: rc.mr.Addr(0), RKey: rc.mr.RKey()}.Marshal())
	if got := tgt.Counters().BadCapsules; got != 4 {
		t.Fatalf("BadCapsules = %d, want 4", got)
	}
	want := []Completion{
		{Status: StatusInvalidField, CID: 9},
		{Status: StatusInvalidField, CID: 10},
		{Status: StatusLBARange, CID: 11},
	}
	if len(rc.comps) != len(want) {
		t.Fatalf("completions = %+v, want %+v", rc.comps, want)
	}
	for i, w := range want {
		if rc.comps[i] != w {
			t.Fatalf("completion %d = %+v, want %+v", i, rc.comps[i], w)
		}
	}

	// The queue still serves.
	good := Command{Op: CmdRead, CID: 12, NSID: 1, Offset: 0, Length: 512,
		RAddr: rc.mr.Addr(0), RKey: rc.mr.RKey()}
	if err := rc.qp.PostSend(5, good.Marshal()); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if last := rc.comps[len(rc.comps)-1]; last != (Completion{Status: StatusOK, CID: 12}) {
		t.Fatalf("post-abuse read completion = %+v", last)
	}
	if tgt.Counters().Commands != 1 {
		t.Fatalf("Commands = %d, want 1", tgt.Counters().Commands)
	}
}

// TestOpenLoopWorkload runs the seeded generator and checks the sustained
// storage signature: commands flow at the offered rate, every read payload
// verifies, and both command classes are exercised.
func TestOpenLoopWorkload(t *testing.T) {
	c, tgt, tq := rig(t, 1)
	ini, err := NewInitiator(c.Clients[0], tq, DefaultWorkload(7))
	if err != nil {
		t.Fatal(err)
	}
	ini.Start()
	c.RunFor(2 * sim.Millisecond)
	ini.Stop()
	c.Run()

	st := ini.Stats()
	if st.Completed < 800 {
		t.Fatalf("completed only %d commands in 2 ms", st.Completed)
	}
	if st.DataErrors != 0 || st.ErrStatus != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if ini.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after drain", ini.Outstanding())
	}
	tc := tgt.Counters()
	if tc.Reads == 0 || tc.Writes == 0 {
		t.Fatalf("workload mix degenerate: %+v", tc)
	}
	if tc.BadCapsules != 0 || tq.Errors != 0 {
		t.Fatalf("benign run raised errors: %+v, qerrs %d", tc, tq.Errors)
	}
	if len(ini.Latencies()) != int(st.Completed) {
		t.Fatalf("latencies %d != completed %d", len(ini.Latencies()), st.Completed)
	}
	// Abuse markers structurally zero on a clean fabric.
	sc := c.Server.NIC().Counters()
	if sc.RxBadQP != 0 || sc.InvalidNaks != 0 || sc.InvalidAcks != 0 || sc.RxBadPSN != 0 {
		t.Fatalf("abuse markers nonzero on benign run: %+v", sc)
	}
}

// TestWorkloadDeterminism: same seed, same rig, byte-identical service
// metrics and latency series.
func TestWorkloadDeterminism(t *testing.T) {
	run := func() (InitiatorStats, []float64) {
		c, _, tq := rig(t, 1)
		ini, err := NewInitiator(c.Clients[0], tq, DefaultWorkload(11))
		if err != nil {
			t.Fatal(err)
		}
		ini.Start()
		c.RunFor(500 * sim.Microsecond)
		ini.Stop()
		c.Run()
		return ini.Stats(), ini.Latencies()
	}
	s1, l1 := run()
	s2, l2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	if len(l1) != len(l2) {
		t.Fatalf("latency count diverged: %d vs %d", len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("latency %d diverged: %v vs %v", i, l1[i], l2[i])
		}
	}
}

// TestQueueBound: an initiator offering more than the target queue depth has
// excess commands shed (QueueFull), never queued unboundedly.
func TestQueueBound(t *testing.T) {
	cfg := lab.DefaultConfig(nic.CX5)
	cfg.Clients = 1
	c := lab.New(cfg)
	tgt, err := NewTarget(c.Server, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	tq, err := tgt.Serve(2) // tiny target-side bound
	if err != nil {
		t.Fatal(err)
	}
	rc := dialRaw(t, c, 0, tq)
	// Burst 16 large reads at a depth-2 queue within one event round.
	for i := 0; i < 16; i++ {
		cmd := Command{Op: CmdRead, CID: uint16(i), NSID: 1,
			Offset: uint64(i) * 16384, Length: 16384,
			RAddr: rc.mr.Addr(0), RKey: rc.mr.RKey()}
		if err := rc.qp.PostSend(uint64(i+1), cmd.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	c.Run()
	tc := tgt.Counters()
	if tc.QueueFull == 0 {
		t.Fatal("depth-2 queue absorbed a 16-deep burst without shedding")
	}
	if tc.QueueFull+uint64(len(rc.comps)) != 16 {
		t.Fatalf("shed %d + completed %d != 16", tc.QueueFull, len(rc.comps))
	}
}
