// Package appnvmf implements an NVMe-over-Fabrics-style storage victim on
// the simulated verbs layer — the workload class NeVerMore attacks in the
// paper's Section V: a storage target whose data path is pure RDMA. Command
// capsules travel as two-sided SENDs; data moves one-sided (the target
// RDMA-Writes read data into the initiator's buffers and RDMA-Reads write
// data out of them); completion capsules travel back as SENDs. Each queue
// pair carries one submission/completion queue with a bounded number of
// outstanding commands, and the initiator drives it open-loop from a seeded
// RNG — a sustained, mixed read/write storage signature the protocol-abuse
// experiment degrades and the defense tries to classify.
package appnvmf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"github.com/thu-has/ragnar/internal/host"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/verbs"
)

// Capsule geometry. Command capsules are fixed 64-byte SENDs (the NVMe-oF
// in-capsule SQE); completion capsules are fixed 16-byte SENDs (the CQE).
// The target validates sizes strictly: anything else on a queue is a
// send/recv buffer mismatch and counts as a bad capsule.
const (
	CapsuleSize    = 64
	CompletionSize = 16
)

// NVMe opcodes carried in command capsules (the I/O command set subset the
// victim serves).
const (
	CmdFlush uint8 = 0x00
	CmdWrite uint8 = 0x01
	CmdRead  uint8 = 0x02
)

// Completion status codes.
const (
	StatusOK           uint8 = 0x00
	StatusInvalidField uint8 = 0x02
	StatusLBARange     uint8 = 0x80
)

// Command is one decoded command capsule: the SQE plus the SGL the target
// needs to move data one-sided (initiator buffer address + rkey).
type Command struct {
	Op     uint8
	CID    uint16
	NSID   uint32
	Offset uint64 // byte offset into the namespace (LBA pre-multiplied)
	Length uint32 // transfer size in bytes
	RAddr  uint64 // initiator-side data buffer
	RKey   uint32
}

// Marshal encodes the command into a 64-byte capsule.
func (c Command) Marshal() []byte {
	b := make([]byte, CapsuleSize)
	b[0] = c.Op
	binary.LittleEndian.PutUint16(b[1:], c.CID)
	binary.LittleEndian.PutUint32(b[4:], c.NSID)
	binary.LittleEndian.PutUint64(b[8:], c.Offset)
	binary.LittleEndian.PutUint32(b[16:], c.Length)
	binary.LittleEndian.PutUint64(b[20:], c.RAddr)
	binary.LittleEndian.PutUint32(b[28:], c.RKey)
	return b
}

// UnmarshalCommand decodes a command capsule, rejecting size mismatches.
func UnmarshalCommand(b []byte) (Command, error) {
	if len(b) != CapsuleSize {
		return Command{}, fmt.Errorf("appnvmf: capsule size %d, want %d", len(b), CapsuleSize)
	}
	return Command{
		Op:     b[0],
		CID:    binary.LittleEndian.Uint16(b[1:]),
		NSID:   binary.LittleEndian.Uint32(b[4:]),
		Offset: binary.LittleEndian.Uint64(b[8:]),
		Length: binary.LittleEndian.Uint32(b[16:]),
		RAddr:  binary.LittleEndian.Uint64(b[20:]),
		RKey:   binary.LittleEndian.Uint32(b[28:]),
	}, nil
}

// Completion is one decoded completion capsule.
type Completion struct {
	Status uint8
	CID    uint16
}

func (c Completion) marshal() []byte {
	b := make([]byte, CompletionSize)
	b[0] = c.Status
	binary.LittleEndian.PutUint16(b[1:], c.CID)
	return b
}

func unmarshalCompletion(b []byte) (Completion, error) {
	if len(b) != CompletionSize {
		return Completion{}, fmt.Errorf("appnvmf: completion size %d, want %d", len(b), CompletionSize)
	}
	return Completion{Status: b[0], CID: binary.LittleEndian.Uint16(b[1:])}, nil
}

// ---------------------------------------------------------------------------
// Target
// ---------------------------------------------------------------------------

// TargetCounters are the target's service-level observables. BadCapsules is
// the S/R-mismatch abuse marker: benign initiators always frame capsules
// exactly, and wire loss drops whole frames without truncating them, so any
// nonzero count is protocol abuse, never congestion.
type TargetCounters struct {
	Commands    uint64 // well-formed commands admitted
	Reads       uint64
	Writes      uint64
	BadCapsules uint64 // malformed size, unknown opcode, bad NSID, LBA overrun
	QueueFull   uint64 // commands dropped at the per-queue outstanding bound
}

// Target is the NVMe-oF storage target: namespaces backed by registered MRs,
// served over any number of queues.
type Target struct {
	ctx *verbs.Context
	pd  *verbs.PD
	// namespaces[nsid-1] backs namespace nsid (NSIDs are 1-based, as in NVMe).
	namespaces []*verbs.MR
	queues     []*TargetQueue
	counters   TargetCounters
}

// NewTarget creates a target with one namespace of nsBytes, its blocks
// filled with a deterministic per-block pattern so initiators can verify
// read payloads end to end.
func NewTarget(ctx *verbs.Context, nsBytes uint64) (*Target, error) {
	t := &Target{ctx: ctx, pd: ctx.AllocPD()}
	if _, err := t.AddNamespace(nsBytes); err != nil {
		return nil, err
	}
	return t, nil
}

// AddNamespace registers one more namespace MR and returns its NSID.
func (t *Target) AddNamespace(nsBytes uint64) (uint32, error) {
	mr, err := t.pd.RegMR(nsBytes, hugePage, verbs.AccessRemoteRead|verbs.AccessRemoteWrite)
	if err != nil {
		return 0, err
	}
	FillPattern(mr.Bytes(), uint32(len(t.namespaces)+1))
	t.namespaces = append(t.namespaces, mr)
	return uint32(len(t.namespaces)), nil
}

// Counters returns the target's service counters.
func (t *Target) Counters() TargetCounters { return t.counters }

// Namespace returns the MR backing the given NSID (nil if unknown).
func (t *Target) Namespace(nsid uint32) *verbs.MR {
	if nsid == 0 || int(nsid) > len(t.namespaces) {
		return nil
	}
	return t.namespaces[nsid-1]
}

// FillPattern writes the verifiable namespace pattern: every 8-byte word
// holds its own namespace-salted offset, so a read of any aligned range is
// checkable without reference data.
func FillPattern(b []byte, salt uint32) {
	for off := 0; off+8 <= len(b); off += 8 {
		binary.LittleEndian.PutUint64(b[off:], uint64(off)^(uint64(salt)<<56))
	}
}

// CheckPattern verifies a buffer read from namespace offset off.
func CheckPattern(b []byte, salt uint32, off uint64) bool {
	for i := 0; i+8 <= len(b); i += 8 {
		if binary.LittleEndian.Uint64(b[i:]) != (off+uint64(i))^(uint64(salt)<<56) {
			return false
		}
	}
	return true
}

// targetOp is one in-flight backend operation (data movement phase).
type targetOp struct {
	cmd     Command
	staging []byte // bounce buffer: READ source snapshot / WRITE landing zone
}

// TargetQueue is one served submission/completion queue: a server-side QP
// whose inbound SENDs are command capsules. The queue owns an armed CQ — a
// storage target's completion handler always keeps up, and an unarmed ring
// here would let the victim's own data-path completions overrun and pollute
// the CQ-exhaustion markers the defense watches.
type TargetQueue struct {
	tgt      *Target
	qp       *verbs.QP
	cq       *verbs.CQ
	depth    int
	inflight map[uint64]*targetOp
	nextWR   uint64
	// Errors counts backend verbs that completed in error (transport
	// failures surface here, e.g. a flushed QP after retry exhaustion).
	Errors uint64
}

// Serve creates one target queue with the given bound on outstanding
// commands (the NVMe queue depth the target enforces). The returned queue's
// QP must then be connected to the initiator's QP.
func (t *Target) Serve(depth int) (*TargetQueue, error) {
	if depth <= 0 {
		depth = 64
	}
	q := &TargetQueue{tgt: t, depth: depth, inflight: map[uint64]*targetOp{}}
	q.cq = t.ctx.CreateCQ(0)
	q.cq.Notify = q.onCompletion
	qp, err := t.ctx.CreateQP(t.pd, q.cq, verbs.QPCap{MaxSendWR: 2 * depth})
	if err != nil {
		return nil, err
	}
	q.qp = qp
	qp.OnRecv = q.onCapsule
	t.queues = append(t.queues, q)
	return q, nil
}

// QP returns the queue's server-side endpoint for connection wiring.
func (q *TargetQueue) QP() *verbs.QP { return q.qp }

// onCapsule admits one inbound command capsule.
func (q *TargetQueue) onCapsule(ev nic.RecvEvent) {
	if ev.Op != nic.OpSend {
		return // one-sided traffic against the namespaces is not a capsule
	}
	cmd, err := UnmarshalCommand(ev.Data)
	if err != nil {
		q.tgt.counters.BadCapsules++
		return // unframeable: no CID to answer
	}
	ns := q.tgt.Namespace(cmd.NSID)
	switch {
	case cmd.Op != CmdRead && cmd.Op != CmdWrite && cmd.Op != CmdFlush:
		q.tgt.counters.BadCapsules++
		q.complete(Completion{Status: StatusInvalidField, CID: cmd.CID})
		return
	case ns == nil:
		q.tgt.counters.BadCapsules++
		q.complete(Completion{Status: StatusInvalidField, CID: cmd.CID})
		return
	case cmd.Op != CmdFlush && (cmd.Length == 0 || cmd.Offset+uint64(cmd.Length) > ns.Size()):
		q.tgt.counters.BadCapsules++
		q.complete(Completion{Status: StatusLBARange, CID: cmd.CID})
		return
	}
	if len(q.inflight) >= q.depth {
		q.tgt.counters.QueueFull++
		return // open-loop overrun: shed, as a full hardware SQ would
	}
	q.tgt.counters.Commands++
	q.nextWR++
	wrid := q.nextWR
	op := &targetOp{cmd: cmd}
	remote := verbs.RemoteBuf{RKey: cmd.RKey, Addr: cmd.RAddr}
	var postErr error
	switch cmd.Op {
	case CmdRead:
		// Storage read: snapshot namespace bytes into a bounce buffer and
		// push that. RDMA buffer-stability rules hold until the WQE
		// completes, and a concurrent storage write committing an
		// overlapping LBA range must not mutate a data frame already in
		// flight — the block-level read serves whichever version was
		// current when the command was admitted.
		q.tgt.counters.Reads++
		op.staging = make([]byte, cmd.Length)
		copy(op.staging, ns.Bytes()[cmd.Offset:cmd.Offset+uint64(cmd.Length)])
		postErr = q.qp.PostWrite(wrid, op.staging, remote, int(cmd.Length))
	case CmdWrite:
		// Storage write: pull the initiator's buffer into staging; the
		// namespace copy happens when the Read retires.
		q.tgt.counters.Writes++
		op.staging = make([]byte, cmd.Length)
		postErr = q.qp.PostRead(wrid, op.staging, remote, int(cmd.Length))
	case CmdFlush:
		// No data phase: complete immediately.
		q.complete(Completion{Status: StatusOK, CID: cmd.CID})
		return
	}
	if postErr != nil {
		q.Errors++
		return
	}
	q.inflight[wrid] = op
}

// onCompletion retires one backend verb: the data phase of an in-flight
// command, or the SEND of a completion capsule (not tracked).
func (q *TargetQueue) onCompletion(c nic.Completion) {
	op, ok := q.inflight[c.WRID]
	if !ok {
		if c.Status != nic.StatusOK {
			q.Errors++
		}
		return
	}
	delete(q.inflight, c.WRID)
	if c.Status != nic.StatusOK {
		q.Errors++
		return
	}
	if op.cmd.Op == CmdWrite {
		ns := q.tgt.Namespace(op.cmd.NSID)
		copy(ns.Bytes()[op.cmd.Offset:], op.staging)
	}
	q.complete(Completion{Status: StatusOK, CID: op.cmd.CID})
}

func (q *TargetQueue) complete(c Completion) {
	q.nextWR++
	if err := q.qp.PostSend(q.nextWR, c.marshal()); err != nil {
		q.Errors++
	}
}

// ---------------------------------------------------------------------------
// Initiator
// ---------------------------------------------------------------------------

// WorkloadConfig parameterises the open-loop generator.
type WorkloadConfig struct {
	Seed int64
	// ReadPct is the read fraction in percent (the rest are writes).
	ReadPct int
	// BlockSizes is the block-size mix, drawn uniformly per command.
	BlockSizes []int
	// QueueDepth bounds outstanding commands per queue.
	QueueDepth int
	// InterArrival is the open-loop issue period: one command is offered
	// every tick regardless of completions (offered > serviced shows up as
	// Stalls, not back-pressure on the generator).
	InterArrival sim.Duration
	// NSID selects the target namespace (default 1).
	NSID uint32
}

// DefaultWorkload is the experiment's standard storage signature: 70/30
// read/write over a 4 KiB-centric block mix at queue depth 16.
func DefaultWorkload(seed int64) WorkloadConfig {
	return WorkloadConfig{
		Seed:         seed,
		ReadPct:      70,
		BlockSizes:   []int{512, 4096, 16384},
		QueueDepth:   16,
		InterArrival: 800 * sim.Nanosecond,
		NSID:         1,
	}
}

// InitiatorStats are the victim-side service metrics the experiment scores.
type InitiatorStats struct {
	Issued     uint64
	Completed  uint64
	Stalls     uint64 // offered commands shed because the SQ was full
	DataErrors uint64 // read payloads that failed pattern verification
	ErrStatus  uint64 // completions with a non-OK NVMe status
}

// Initiator drives one queue against a target: it owns the data-buffer MR
// the target moves into/out of, issues command capsules open-loop, and
// matches completion capsules by CID.
type Initiator struct {
	ctx    *verbs.Context
	eng    *sim.Engine
	cfg    WorkloadConfig
	rng    *rand.Rand
	qp     *verbs.QP
	cq     *verbs.CQ
	dataMR *verbs.MR
	nsSize uint64
	nsSalt uint32

	pending  map[uint16]*pendingCmd
	freeCIDs []uint16
	stats    InitiatorStats
	lats     []float64 // completion latencies, microseconds
	stopped  bool
	tickFn   func()
}

type pendingCmd struct {
	cmd    Command
	slot   int
	issued sim.Time
}

// hugePage matches the lab's Grain-III/IV MR configuration.
const hugePage = host.Page2M

// NewInitiator connects an initiator on ctx to the given target queue. The
// initiator registers one data MR sized QueueDepth × max block, slotted per
// CID, and arms its own CQ (the storage stack services completions inline).
func NewInitiator(ctx *verbs.Context, tq *TargetQueue, cfg WorkloadConfig) (*Initiator, error) {
	if cfg.QueueDepth <= 0 || len(cfg.BlockSizes) == 0 || cfg.InterArrival <= 0 {
		return nil, errors.New("appnvmf: incomplete workload config")
	}
	if cfg.NSID == 0 {
		cfg.NSID = 1
	}
	ns := tq.tgt.Namespace(cfg.NSID)
	if ns == nil {
		return nil, fmt.Errorf("appnvmf: namespace %d not served", cfg.NSID)
	}
	ini := &Initiator{
		ctx: ctx, eng: ctx.Engine(), cfg: cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		nsSize:  ns.Size(),
		nsSalt:  cfg.NSID,
		pending: map[uint16]*pendingCmd{},
	}
	maxBlock := 0
	for _, s := range cfg.BlockSizes {
		if s > maxBlock {
			maxBlock = s
		}
	}
	pd := ctx.AllocPD()
	mr, err := pd.RegMR(uint64(cfg.QueueDepth*maxBlock), hugePage,
		verbs.AccessRemoteRead|verbs.AccessRemoteWrite)
	if err != nil {
		return nil, err
	}
	ini.dataMR = mr
	ini.cq = ctx.CreateCQ(0)
	ini.cq.Notify = func(nic.Completion) {} // capsule SENDs need no tracking
	qp, err := ctx.CreateQP(pd, ini.cq, verbs.QPCap{MaxSendWR: 2 * cfg.QueueDepth})
	if err != nil {
		return nil, err
	}
	ini.qp = qp
	qp.OnRecv = ini.onCompletion
	if err := verbs.Connect(qp, tq.QP()); err != nil {
		return nil, err
	}
	for cid := cfg.QueueDepth - 1; cid >= 0; cid-- {
		ini.freeCIDs = append(ini.freeCIDs, uint16(cid))
	}
	// Each CID owns a fixed max-block slot; read data lands there, write
	// data is staged there.
	return ini, nil
}

// QP returns the initiator-side endpoint (the adversary snoops its uplink).
func (ini *Initiator) QP() *verbs.QP { return ini.qp }

// Stats returns a copy of the current service metrics.
func (ini *Initiator) Stats() InitiatorStats { return ini.stats }

// Latencies returns the recorded per-command completion latencies (µs).
func (ini *Initiator) Latencies() []float64 { return ini.lats }

// ResetLatencies clears the latency record (phase boundaries).
func (ini *Initiator) ResetLatencies() { ini.lats = ini.lats[:0] }

// Start begins open-loop issue. Stop ends it; in-flight commands drain.
func (ini *Initiator) Start() {
	ini.stopped = false
	ini.tickFn = ini.tick
	ini.tick()
}

// Stop halts the generator after the current tick.
func (ini *Initiator) Stop() { ini.stopped = true }

func (ini *Initiator) tick() {
	if ini.stopped {
		return
	}
	ini.issueOne()
	ini.eng.After(ini.cfg.InterArrival, ini.tickFn)
}

func (ini *Initiator) issueOne() {
	ini.stats.Issued++
	if len(ini.freeCIDs) == 0 {
		ini.stats.Stalls++
		return
	}
	cid := ini.freeCIDs[len(ini.freeCIDs)-1]
	ini.freeCIDs = ini.freeCIDs[:len(ini.freeCIDs)-1]
	size := ini.cfg.BlockSizes[ini.rng.Intn(len(ini.cfg.BlockSizes))]
	op := CmdWrite
	if ini.rng.Intn(100) < ini.cfg.ReadPct {
		op = CmdRead
	}
	// Block-aligned namespace offset.
	offset := uint64(0)
	if blocks := ini.nsSize / uint64(size); blocks > 0 {
		offset = uint64(ini.rng.Int63n(int64(blocks))) * uint64(size)
	}
	slot := int(cid) * ini.slotBytes()
	if op == CmdWrite {
		// Stamp the slot with the namespace pattern for that range, so a
		// later read of the same range still verifies.
		FillPatternAt(ini.dataMR.Bytes()[slot:slot+size], ini.nsSalt, offset)
	}
	cmd := Command{
		Op: op, CID: cid, NSID: ini.cfg.NSID,
		Offset: offset, Length: uint32(size),
		RAddr: ini.dataMR.Addr(uint64(slot)), RKey: ini.dataMR.RKey(),
	}
	ini.pending[cid] = &pendingCmd{cmd: cmd, slot: slot, issued: ini.eng.Now()}
	if err := ini.qp.PostSend(uint64(cid)|1<<32, cmd.Marshal()); err != nil {
		// SQ full counts as a stall; the CID slot returns to the pool.
		delete(ini.pending, cid)
		ini.freeCIDs = append(ini.freeCIDs, cid)
		ini.stats.Stalls++
		return
	}
}

func (ini *Initiator) slotBytes() int {
	max := 0
	for _, s := range ini.cfg.BlockSizes {
		if s > max {
			max = s
		}
	}
	return max
}

// FillPatternAt stamps b with the namespace pattern starting at offset off.
func FillPatternAt(b []byte, salt uint32, off uint64) {
	for i := 0; i+8 <= len(b); i += 8 {
		binary.LittleEndian.PutUint64(b[i:], (off+uint64(i))^(uint64(salt)<<56))
	}
}

// onCompletion handles one inbound completion capsule.
func (ini *Initiator) onCompletion(ev nic.RecvEvent) {
	if ev.Op != nic.OpSend {
		return // target data-phase WRITE landing in the data MR
	}
	comp, err := unmarshalCompletion(ev.Data)
	if err != nil {
		return // not a completion capsule; ignore
	}
	pc, ok := ini.pending[comp.CID]
	if !ok {
		return // duplicate or forged CID
	}
	delete(ini.pending, comp.CID)
	ini.freeCIDs = append(ini.freeCIDs, comp.CID)
	ini.stats.Completed++
	if comp.Status != StatusOK {
		ini.stats.ErrStatus++
		return
	}
	if pc.cmd.Op == CmdRead {
		got := ini.dataMR.Bytes()[pc.slot : pc.slot+int(pc.cmd.Length)]
		if !CheckPattern(got, ini.nsSalt, pc.cmd.Offset) {
			ini.stats.DataErrors++
		}
	}
	ini.lats = append(ini.lats, ini.eng.Now().Sub(pc.issued).Seconds()*1e6)
}

// Outstanding reports commands issued but not yet completed.
func (ini *Initiator) Outstanding() int { return len(ini.pending) }
