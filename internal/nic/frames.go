package nic

import (
	"fmt"

	"github.com/thu-has/ragnar/internal/wire"
)

// EncodeFrames controls wire-format fidelity: when true (the default) every
// message is marshalled into its real RoCEv2 transport encoding before
// hitting the fabric and parsed+verified on ingress, so the simulated
// traffic is byte-exact against the specification. Large parameter sweeps
// that only need timing can disable it.
var EncodeFrames = true

// opcodeToWire maps the simulator's opcode/direction onto IBA opcodes.
func opcodeToWire(m *Message) (byte, error) {
	if m.IsResp {
		switch m.Op {
		case OpRead:
			return wire.OpReadResponseOnly, nil
		case OpAtomicFAA, OpAtomicCAS:
			return wire.OpAtomicAck, nil
		default:
			return wire.OpAcknowledge, nil
		}
	}
	switch m.Op {
	case OpSend:
		return wire.OpSendOnly, nil
	case OpWrite:
		return wire.OpWriteOnly, nil
	case OpRead:
		return wire.OpReadRequest, nil
	case OpAtomicCAS:
		return wire.OpCompareSwap, nil
	case OpAtomicFAA:
		return wire.OpFetchAdd, nil
	}
	return 0, fmt.Errorf("nic: no wire opcode for %v", m.Op)
}

// encodeSegments builds the full RoCEv2 transport encoding of a message,
// segmenting payloads larger than the MTU into FIRST/MIDDLE/LAST packets
// exactly as the RC transport does (PSNs increment per segment).
func encodeSegments(m *Message, mtu int) ([][]byte, error) {
	payloadCarrier := !m.IsResp && (m.Op == OpWrite || m.Op == OpSend) ||
		m.IsResp && m.Op == OpRead
	if !payloadCarrier || len(m.Data) <= mtu {
		f, err := encodeFrame(m)
		if err != nil {
			return nil, err
		}
		return [][]byte{f}, nil
	}

	var firstOp, midOp, lastOp byte
	switch {
	case m.IsResp: // read response
		firstOp, midOp, lastOp = wire.OpReadRespFirst, wire.OpReadRespMiddle, wire.OpReadRespLast
	case m.Op == OpWrite:
		firstOp, midOp, lastOp = wire.OpWriteFirst, wire.OpWriteMiddle, wire.OpWriteLast
	default: // send
		firstOp, midOp, lastOp = wire.OpSendFirst, wire.OpSendMiddle, wire.OpSendLast
	}

	var out [][]byte
	psn := m.PSN & 0xffffff
	for off := 0; off < len(m.Data); off += mtu {
		end := off + mtu
		if end > len(m.Data) {
			end = len(m.Data)
		}
		p := &wire.Packet{
			BTH: wire.BTH{
				DestQP: m.DstQPN & 0xffffff,
				PSN:    psn,
				AckReq: !m.IsResp && end == len(m.Data),
			},
			Payload: m.Data[off:end],
		}
		switch {
		case off == 0:
			p.BTH.Opcode = firstOp
			if firstOp == wire.OpWriteFirst {
				p.Reth = &wire.RETH{VA: m.RemoteAddr, RKey: m.RKey, DMALen: uint32(m.Length)}
			}
			if firstOp == wire.OpReadRespFirst {
				p.Aeth = &wire.AETH{Syndrome: aethSyndrome(m.Status), MSN: psn}
			}
		case end == len(m.Data):
			p.BTH.Opcode = lastOp
			if lastOp == wire.OpReadRespLast {
				p.Aeth = &wire.AETH{Syndrome: aethSyndrome(m.Status), MSN: psn}
			}
		default:
			p.BTH.Opcode = midOp
		}
		raw, err := p.Marshal()
		if err != nil {
			return nil, err
		}
		out = append(out, raw)
		psn = (psn + 1) & 0xffffff
	}
	return out, nil
}

// encodeFrame builds the RoCEv2 transport encoding of a single-packet
// message. The PSN carries the QP's 24-bit packet sequence number; an ACK's
// AETH MSN carries the cumulative acknowledgement PSN.
func encodeFrame(m *Message) ([]byte, error) {
	op, err := opcodeToWire(m)
	if err != nil {
		return nil, err
	}
	p := &wire.Packet{
		BTH: wire.BTH{
			Opcode: op,
			DestQP: m.DstQPN & 0xffffff,
			PSN:    m.PSN & 0xffffff,
			AckReq: !m.IsResp,
		},
	}
	switch op {
	case wire.OpWriteOnly, wire.OpReadRequest:
		p.Reth = &wire.RETH{VA: m.RemoteAddr, RKey: m.RKey, DMALen: uint32(m.Length)}
	case wire.OpReadResponseOnly, wire.OpAcknowledge:
		p.Aeth = &wire.AETH{Syndrome: aethSyndrome(m.Status), MSN: m.AckPSN & 0xffffff}
	case wire.OpAtomicAck:
		p.Aeth = &wire.AETH{Syndrome: aethSyndrome(m.Status), MSN: m.AckPSN & 0xffffff}
		p.AtomicAck = m.CompareAdd
	case wire.OpCompareSwap:
		p.Atomic = &wire.AtomicETH{VA: m.RemoteAddr, RKey: m.RKey, SwapAdd: m.Swap, Compare: m.CompareAdd}
	case wire.OpFetchAdd:
		p.Atomic = &wire.AtomicETH{VA: m.RemoteAddr, RKey: m.RKey, SwapAdd: m.CompareAdd}
	}
	if !m.IsResp && (m.Op == OpWrite || m.Op == OpSend) || m.IsResp && m.Op == OpRead {
		p.Payload = m.Data
	}
	return p.Marshal()
}

// aethSyndrome encodes the completion status in the ACK syndrome field
// (0 = ACK, 0x60.. = NAK classes; remote access error maps to NAK-RAE).
func aethSyndrome(s Status) byte {
	switch s {
	case StatusOK:
		return 0x00
	case StatusSeqNak:
		return 0x60 // NAK: PSN sequence error (go-back-N rewind request)
	case StatusRemoteAccessError:
		return 0x62 // NAK: remote access error
	default:
		return 0x61 // NAK: invalid request class
	}
}

// verifySegments parses the encoded segments and checks them against the
// message the simulator routed alongside them — a datapath self-check that
// the simulated traffic and its wire encoding never diverge.
func verifySegments(raws [][]byte, m *Message) error {
	if len(raws) == 0 {
		return fmt.Errorf("nic: message carried no frames")
	}
	var payload []byte
	for i, raw := range raws {
		p, err := wire.Parse(raw)
		if err != nil {
			return err
		}
		if p.BTH.DestQP != m.DstQPN&0xffffff {
			return fmt.Errorf("nic: frame destQP %d, message %d", p.BTH.DestQP, m.DstQPN)
		}
		if i == 0 && len(raws) == 1 {
			wantOp, err := opcodeToWire(m)
			if err != nil {
				return err
			}
			if p.BTH.Opcode != wantOp {
				return fmt.Errorf("nic: frame opcode %#x, message %v", p.BTH.Opcode, m.Op)
			}
		}
		if i == 0 && p.Reth != nil {
			if p.Reth.VA != m.RemoteAddr || p.Reth.RKey != m.RKey || p.Reth.DMALen != uint32(m.Length) {
				return fmt.Errorf("nic: RETH mismatch: %+v vs msg addr=%d rkey=%d len=%d",
					p.Reth, m.RemoteAddr, m.RKey, m.Length)
			}
		}
		payload = append(payload, p.Payload...)
	}
	if len(payload) != len(m.Data) {
		return fmt.Errorf("nic: frames carry %d payload bytes, message %d", len(payload), len(m.Data))
	}
	for i := range payload {
		if payload[i] != m.Data[i] {
			return fmt.Errorf("nic: reassembled payload differs at byte %d", i)
		}
	}
	return nil
}
