package nic

import (
	"testing"
	"testing/quick"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(64, 4)
	if c.Access(1) {
		t.Fatal("first access should miss")
	}
	if !c.Access(1) {
		t.Fatal("second access should hit")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestCacheEvictionLRU(t *testing.T) {
	// Direct construction: 1 set, 2 ways.
	c := NewCache(2, 2)
	c.Access(10)
	c.Access(20)
	c.Access(10) // 10 is now MRU
	c.Access(30) // evicts 20 (LRU)
	if !c.Contains(10) {
		t.Fatal("MRU entry evicted")
	}
	if c.Contains(20) {
		t.Fatal("LRU entry survived")
	}
	if !c.Contains(30) {
		t.Fatal("new entry missing")
	}
}

func TestCacheEvictExplicit(t *testing.T) {
	c := NewCache(16, 2)
	c.Access(5)
	if !c.Evict(5) {
		t.Fatal("evict of resident key failed")
	}
	if c.Evict(5) {
		t.Fatal("evict of absent key reported true")
	}
	if c.Contains(5) {
		t.Fatal("key still resident after evict")
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(16, 2)
	for k := uint64(0); k < 8; k++ {
		c.Access(k)
	}
	c.Flush()
	for k := uint64(0); k < 8; k++ {
		if c.Contains(k) {
			t.Fatalf("key %d survived flush", k)
		}
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	for _, g := range [][2]int{{0, 1}, {8, 3}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry %v should panic", g)
				}
			}()
			NewCache(g[0], g[1])
		}()
	}
}

// Property: a working set no larger than the cache never misses after the
// first pass (LRU within sets; splitmix distributes keys, so use a working
// set within one set's ways via identical set mapping is not guaranteed —
// instead verify global: ways*sets keys distinct, second pass miss count is
// bounded by conflict misses < first pass misses).
func TestCacheSecondPassProperty(t *testing.T) {
	f := func(seed uint64) bool {
		c := NewCache(256, 4)
		keys := make([]uint64, 48)
		x := seed | 1
		for i := range keys {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			keys[i] = x
		}
		for _, k := range keys {
			c.Access(k)
		}
		_, firstMisses := c.Stats()
		for _, k := range keys {
			c.Access(k)
		}
		_, totalMisses := c.Stats()
		// 48 random keys in a 64-set x 4-way cache: mostly hits on the
		// second pass. A set that drew 5+ keys thrashes cyclically under
		// LRU, so allow a modest conflict budget.
		return totalMisses-firstMisses <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"CX-5", "cx5", "ConnectX-5", "connectx 5"} {
		p, ok := ProfileByName(name)
		if !ok || p.Name != "ConnectX-5" {
			t.Fatalf("ProfileByName(%q) = %v %v", name, p.Name, ok)
		}
	}
	if _, ok := ProfileByName("cx7"); ok {
		t.Fatal("unknown profile resolved")
	}
}

func TestProfilesOrdering(t *testing.T) {
	// Table III structure: line rate doubles each generation; newer NICs
	// process faster.
	if !(CX4.LineRateGbps < CX5.LineRateGbps && CX5.LineRateGbps < CX6.LineRateGbps) {
		t.Fatal("line rates not increasing")
	}
	if !(CX6.TPUBase < CX5.TPUBase && CX5.TPUBase < CX4.TPUBase) {
		t.Fatal("TPU base latency should shrink with generation")
	}
	if !(CX6.ComplexPPS > CX5.ComplexPPS && CX5.ComplexPPS > CX4.ComplexPPS) {
		t.Fatal("complex capacity should grow with generation")
	}
}
