package nic

import (
	"testing"
	"testing/quick"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(64, 4)
	if c.Access(1) {
		t.Fatal("first access should miss")
	}
	if !c.Access(1) {
		t.Fatal("second access should hit")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestCacheEvictionLRU(t *testing.T) {
	// Direct construction: 1 set, 2 ways.
	c := NewCache(2, 2)
	c.Access(10)
	c.Access(20)
	c.Access(10) // 10 is now MRU
	c.Access(30) // evicts 20 (LRU)
	if !c.Contains(10) {
		t.Fatal("MRU entry evicted")
	}
	if c.Contains(20) {
		t.Fatal("LRU entry survived")
	}
	if !c.Contains(30) {
		t.Fatal("new entry missing")
	}
}

func TestCacheEvictExplicit(t *testing.T) {
	c := NewCache(16, 2)
	c.Access(5)
	if !c.Evict(5) {
		t.Fatal("evict of resident key failed")
	}
	if c.Evict(5) {
		t.Fatal("evict of absent key reported true")
	}
	if c.Contains(5) {
		t.Fatal("key still resident after evict")
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(16, 2)
	for k := uint64(0); k < 8; k++ {
		c.Access(k)
	}
	c.Flush()
	for k := uint64(0); k < 8; k++ {
		if c.Contains(k) {
			t.Fatalf("key %d survived flush", k)
		}
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	for _, g := range [][2]int{{0, 1}, {8, 3}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry %v should panic", g)
				}
			}()
			NewCache(g[0], g[1])
		}()
	}
}

// Property: a working set no larger than the cache never misses after the
// first pass (LRU within sets; splitmix distributes keys, so use a working
// set within one set's ways via identical set mapping is not guaranteed —
// instead verify global: ways*sets keys distinct, second pass miss count is
// bounded by conflict misses < first pass misses).
func TestCacheSecondPassProperty(t *testing.T) {
	f := func(seed uint64) bool {
		c := NewCache(256, 4)
		keys := make([]uint64, 48)
		x := seed | 1
		for i := range keys {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			keys[i] = x
		}
		for _, k := range keys {
			c.Access(k)
		}
		_, firstMisses := c.Stats()
		for _, k := range keys {
			c.Access(k)
		}
		_, totalMisses := c.Stats()
		// 48 random keys in a 64-set x 4-way cache: mostly hits on the
		// second pass. A set that drew 5+ keys thrashes cyclically under
		// LRU, so allow a modest conflict budget.
		return totalMisses-firstMisses <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"CX-5", "cx5", "ConnectX-5", "connectx 5"} {
		p, ok := ProfileByName(name)
		if !ok || p.Name != "ConnectX-5" {
			t.Fatalf("ProfileByName(%q) = %v %v", name, p.Name, ok)
		}
	}
	if _, ok := ProfileByName("cx7"); ok {
		t.Fatal("unknown profile resolved")
	}
}

func TestProfilesOrdering(t *testing.T) {
	// Table III structure: line rate doubles each generation; newer NICs
	// process faster.
	if !(CX4.LineRateGbps < CX5.LineRateGbps && CX5.LineRateGbps < CX6.LineRateGbps) {
		t.Fatal("line rates not increasing")
	}
	if !(CX6.TPUBase < CX5.TPUBase && CX5.TPUBase < CX4.TPUBase) {
		t.Fatal("TPU base latency should shrink with generation")
	}
	if !(CX6.ComplexPPS > CX5.ComplexPPS && CX5.ComplexPPS > CX4.ComplexPPS) {
		t.Fatal("complex capacity should grow with generation")
	}
}

func TestContextCacheLRUOrder(t *testing.T) {
	c := NewContextCache(3)
	for _, k := range []uint64{1, 2, 3} {
		if c.Access(k) {
			t.Fatalf("first access to %d hit", k)
		}
	}
	c.Access(1)  // 1 becomes MRU: order 1,3,2
	c.Access(42) // evicts 2 (LRU): order 42,1,3
	want := []uint64{42, 1, 3}
	got := c.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
	hits, misses, evictions := c.Stats()
	if hits != 1 || misses != 4 || evictions != 1 {
		t.Fatalf("stats = %d/%d/%d, want 1/4/1", hits, misses, evictions)
	}
	if c.Len() != 3 || c.Cap() != 3 {
		t.Fatalf("Len/Cap = %d/%d", c.Len(), c.Cap())
	}
}

func TestContextCacheExplicitEvictNotCounted(t *testing.T) {
	c := NewContextCache(2)
	c.Access(7)
	c.Access(8)
	if !c.Evict(7) {
		t.Fatal("evict of resident key failed")
	}
	if c.Evict(7) {
		t.Fatal("evict of absent key reported true")
	}
	// The freed slot is reused before any capacity eviction happens.
	c.Access(9)
	if _, _, evictions := c.Stats(); evictions != 0 {
		t.Fatalf("explicit evict counted as capacity eviction (%d)", evictions)
	}
	if !c.Contains(8) || !c.Contains(9) || c.Contains(7) {
		t.Fatalf("residency wrong after evict+reuse: %v", c.Keys())
	}
}

func TestContextCacheFlushPreservesCounters(t *testing.T) {
	c := NewContextCache(4)
	for k := uint64(0); k < 6; k++ {
		c.Access(k)
	}
	hits0, misses0, ev0 := c.Stats()
	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("Len after flush = %d", c.Len())
	}
	hits1, misses1, ev1 := c.Stats()
	if hits0 != hits1 || misses0 != misses1 || ev0 != ev1 {
		t.Fatal("flush perturbed counters")
	}
	// The cache must stay usable at full capacity after a flush.
	for k := uint64(10); k < 14; k++ {
		c.Access(k)
	}
	if c.Len() != 4 {
		t.Fatalf("Len after refill = %d", c.Len())
	}
}

func TestContextCacheKeySpaces(t *testing.T) {
	// The same 32-bit id names distinct QP and MR contexts.
	c := NewContextCache(8)
	c.Access(QPCtxKey(5))
	if c.Access(MRCtxKey(5)) {
		t.Fatal("MR context aliased the QP context with the same id")
	}
	if !c.Access(QPCtxKey(5)) || !c.Access(MRCtxKey(5)) {
		t.Fatal("contexts not independently resident")
	}
}

func TestContextCacheBadCapacityPanics(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("capacity %d should panic", n)
				}
			}()
			NewContextCache(n)
		}()
	}
}
