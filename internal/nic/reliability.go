package nic

import (
	"fmt"

	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/trace"
)

// RC go-back-N reliability: PSN tracking per QP, NAK-sequence-error
// generation on the responder, retransmit timeout with exponential backoff
// on the requester, and retry exhaustion surfacing as StatusRetryExcErr
// CQEs (the simulator's IBV_WC_RETRY_EXC_ERR) with the QP moving to the
// error state.
//
// The layer is timing-neutral on a lossless fabric: the retransmit timer is
// armed and cancelled but never fires, the PSN check always takes its
// in-order arm, and no extra packets or events are generated — which is what
// keeps the golden experiment renders byte-identical at loss 0.

// psnMask bounds the 24-bit packet sequence number space.
const psnMask = 1<<24 - 1

// psnAfter reports a > b in the circular 24-bit PSN order: a is "after" b
// exactly when (a-b) mod 2^24 lies in [1, 2^23), like IB PSN comparison.
// The relation is deliberately not total — at a distance of exactly 2^23
// (half the space) neither PSN is after the other, so psnAfter(a,b) and
// psnAfter(b,a) are both false. Callers must handle that unordered edge
// explicitly: the responder discards such frames (see handleRequest) rather
// than letting them fall into the duplicate arm, because "duplicate" implies
// "already executed" and a frame exactly half the space away never was —
// replay-ACKing it would forge a completion. TestPSNHalfSpaceConvention pins
// this convention.
func psnAfter(a, b uint32) bool {
	d := (a - b) & psnMask
	return d != 0 && d < 1<<23
}

// psnHalfAway reports that a sits at exactly half the PSN space from b —
// the unordered edge of psnAfter where neither direction is "after".
func psnHalfAway(a, b uint32) bool {
	return (a-b)&psnMask == 1<<23
}

// SetQPRetry overrides the retransmission parameters of one QP, mirroring
// ibv_modify_qp's timeout/retry_cnt. Zero values fall back to the NIC-wide
// defaults.
func (n *NIC) SetQPRetry(qpn uint32, timeout sim.Duration, limit int) error {
	qp, ok := n.qps[qpn]
	if !ok {
		return fmt.Errorf("nic %s: unknown QP %d", n.Name, qpn)
	}
	qp.retryTimeout = timeout
	qp.retryLimit = limit
	return nil
}

// QPFailed reports whether a QP has moved to the error state (retry budget
// exhausted).
func (n *NIC) QPFailed(qpn uint32) bool {
	qp, ok := n.qps[qpn]
	return ok && qp.failed
}

// removeOutstanding unlinks one pending entry from the QP's transport window.
func (qp *qpState) removeOutstanding(p *pending) {
	for i, q := range qp.outstanding {
		if q == p {
			qp.outstanding = append(qp.outstanding[:i], qp.outstanding[i+1:]...)
			return
		}
	}
}

// retryParams resolves the QP's effective timeout base and retry limit.
func (n *NIC) retryParams(qp *qpState) (sim.Duration, int) {
	base := qp.retryTimeout
	if base <= 0 {
		base = n.RetryTimeout
	}
	limit := qp.retryLimit
	if limit <= 0 {
		limit = n.RetryLimit
	}
	return base, limit
}

// armRetransmit (re)arms the QP's retransmit timer: the previous timer is
// cancelled and, while requests are outstanding, a new one is scheduled when
// the OLDEST outstanding request will have aged a full timeout (base
// left-shifted by the consecutive-timeout count — exponential backoff) since
// it was last put on the wire. Aging the oldest entry rather than counting
// from "now" matters under pipelining: ACKs for younger requests must not
// keep pushing a lost request's retry into the future, or a deep QP starves
// its stalled slot for as long as the rest of the window makes progress.
// Cancelled events never fire, so on a lossless run this is pure bookkeeping.
func (n *NIC) armRetransmit(qp *qpState) {
	qp.rtxTimer.Cancel()
	qp.rtxTimer = sim.Event{}
	if len(qp.outstanding) == 0 || qp.failed {
		return
	}
	base, _ := n.retryParams(qp)
	shift := qp.retries
	if shift > 16 {
		shift = 16 // cap the backoff, not the retry count
	}
	wait := qp.outstanding[0].lastSent.Add(base << uint(shift)).Sub(n.eng.Now())
	if wait < sim.Nanosecond {
		wait = sim.Nanosecond // already overdue: fire on the next tick
	}
	qp.rtxTimer = n.eng.After(wait, func() { n.onRetryTimeout(qp) })
}

// onRetryTimeout fires when the oldest outstanding request has gone
// unacknowledged for a full (backed-off) timeout: go-back-N resends the
// whole window, or — past the retry limit — the QP fails and every
// outstanding WQE completes with StatusRetryExcErr.
func (n *NIC) onRetryTimeout(qp *qpState) {
	qp.rtxTimer = sim.Event{}
	if qp.failed || len(qp.outstanding) == 0 {
		return
	}
	_, limit := n.retryParams(qp)
	if qp.retries >= limit {
		n.failQP(qp)
		return
	}
	qp.retries++
	n.counters.Timeouts++
	n.rec.Emit(trace.Event{At: int64(n.eng.Now()), Kind: trace.KindRtxTimeout,
		Actor: n.psnActor, QPN: qp.qpn, Val: uint64(qp.retries), TC: -1})
	for _, p := range qp.outstanding {
		p.retransmits++
		n.rec.Emit(trace.Event{At: int64(n.eng.Now()), Kind: trace.KindRetransmit,
			Actor: n.psnActor, QPN: qp.qpn, PSN: p.psn, TC: int8(p.wqe.TC),
			Dur: int64(n.eng.Now().Sub(p.lastSent))})
		p.lastSent = n.eng.Now()
		n.counters.Retransmits++
		n.transmit(qp.peer, p.msg, 0)
	}
	n.armRetransmit(qp)
}

// handleSeqNak is the requester side of a NAK-sequence-error: the responder
// named the last PSN it received in order, so every outstanding request
// after it is retransmitted immediately (fast recovery, no timeout wait).
// Only one rewind happens per stall — rewindEpoch pins the rewind to the
// current progressEpoch so a burst of stale NAKs cannot multiply the
// retransmissions — and the timer remains the backstop.
//
// The NAK is validated before it may consume the per-epoch rewind: a genuine
// NAK-seq names the last in-order PSN the responder received, so the head of
// the gap — (AckPSN+1) mod 2^24 — must be a PSN this requester still has
// outstanding. A NAK failing that check is dropped and counted (InvalidNaks)
// WITHOUT consuming the rewind epoch; without the check a forged NAK with a
// garbage AckPSN would burn the single rewind on a no-op resend and leave a
// later genuine NAK ignored, stretching recovery from one RTT to the full
// retransmit timeout (the NeVerMore NAK-spoofing amplifier).
func (n *NIC) handleSeqNak(qp *qpState, m *Message) {
	if qp.failed {
		return
	}
	head := (m.AckPSN + 1) & psnMask
	valid := false
	for _, p := range qp.outstanding {
		if p.psn == head {
			valid = true
			break
		}
	}
	if !valid {
		n.counters.InvalidNaks++
		return
	}
	if qp.rewindEpoch == qp.progressEpoch {
		return
	}
	qp.rewindEpoch = qp.progressEpoch
	qp.retries = 0 // the responder is alive: restart the backoff schedule
	if n.rec.Enabled() {
		resend := uint64(0)
		for _, p := range qp.outstanding {
			if psnAfter(p.psn, m.AckPSN) {
				resend++
			}
		}
		n.rec.Emit(trace.Event{At: int64(n.eng.Now()), Kind: trace.KindRewind,
			Actor: n.psnActor, QPN: qp.qpn, Aux: uint64(m.AckPSN), Val: resend, TC: -1})
	}
	for _, p := range qp.outstanding {
		if psnAfter(p.psn, m.AckPSN) {
			p.retransmits++
			n.rec.Emit(trace.Event{At: int64(n.eng.Now()), Kind: trace.KindRetransmit,
				Actor: n.psnActor, QPN: qp.qpn, PSN: p.psn, TC: int8(p.wqe.TC),
				Dur: int64(n.eng.Now().Sub(p.lastSent))})
			p.lastSent = n.eng.Now()
			n.counters.Retransmits++
			n.transmit(qp.peer, p.msg, 0)
		}
	}
	n.armRetransmit(qp)
}

// failQP moves a QP to the error state: all outstanding WQEs flush with
// StatusRetryExcErr CQEs (in posting order, each through the CQE write DMA),
// and subsequent PostSends are rejected.
func (n *NIC) failQP(qp *qpState) {
	qp.failed = true
	n.counters.RetryExc++
	flush := qp.outstanding
	qp.outstanding = nil
	n.rec.Emit(trace.Event{At: int64(n.eng.Now()), Kind: trace.KindRetryExc,
		Actor: n.psnActor, QPN: qp.qpn, Val: uint64(len(flush)), TC: -1})
	for _, p := range flush {
		delete(n.pend, p.seq)
		p := p
		n.hostDMA.Submit(n.dmaTransferTime(32)+n.prof.CQEWriteTime, 0, func() {
			qp.completed++
			n.rec.Emit(trace.Event{At: int64(n.eng.Now()), Kind: trace.KindCQE,
				Actor: n.cqeActor, QPN: qp.qpn, TC: int8(p.wqe.TC),
				Dur: int64(n.eng.Now().Sub(p.postTime)), Aux: uint64(StatusRetryExcErr)})
			if qp.onComplete != nil {
				qp.onComplete(Completion{
					QPN: qp.qpn, WRID: p.wqe.WRID, Op: p.wqe.Op,
					Status: StatusRetryExcErr, Bytes: p.wqe.Length,
					PostTime: p.postTime, DoneTime: n.eng.Now(),
				})
			}
			n.cqeDelivered(qp)
			// The request copy may still be in flight (it likely timed out
			// on the wire), so only the pending record is recycled — its
			// message stays with the GC.
			n.putPending(p)
		})
	}
}

// respondNak sends a NAK-sequence-error for an out-of-order request. AckPSN
// carries the last in-order PSN so the requester knows where to rewind.
func (n *NIC) respondNak(req *Message, ackPSN uint32) {
	n.counters.Responses++
	n.counters.NAKs++
	n.rec.Emit(trace.Event{At: int64(n.eng.Now()), Kind: trace.KindNakSend,
		Actor: n.psnActor, QPN: req.DstQPN, PSN: req.PSN, Aux: uint64(ackPSN),
		TC: int8(req.TC & 7)})
	resp := n.getMsg()
	*resp = Message{
		Op: req.Op, SrcQPN: req.DstQPN, DstQPN: req.SrcQPN,
		Seq: req.Seq, IsResp: true, Status: StatusSeqNak, TC: req.TC,
		PSN: req.PSN, AckPSN: ackPSN,
	}
	qp := n.qps[req.DstQPN]
	if qp == nil || qp.peer == nil {
		return
	}
	n.transmit(qp.peer, resp, 1)
}

// replayDuplicate handles a retransmitted request whose original was already
// executed. WRITE/SEND re-ACK without touching memory or the receive queue;
// atomics replay the recorded result (never execute twice). It returns false
// only for ops the responder may safely re-execute from scratch — READ,
// which is idempotent from the requester's point of view.
//
// A duplicate atomic whose one-deep replay record has been displaced by a
// newer atomic is NOT re-executable: atomics mutate memory, so running the
// FAA/CAS again would apply it twice (the latent double-apply this layer
// shipped with before the adversarial suite pinned it). Such a duplicate is
// handled by discarding it silently — the requester recovers through the
// original response still in flight or, failing that, the retransmit
// timeout, exactly as IB responders with an exhausted replay buffer behave.
func (n *NIC) replayDuplicate(qp *qpState, m *Message) bool {
	switch m.Op {
	case OpWrite, OpSend:
		n.rxPU.Submit(n.prof.RxPUTime, 0, func() { n.respond(m, StatusOK, nil, 0) })
		return true
	case OpAtomicFAA, OpAtomicCAS:
		if qp.atomicReplayOK && qp.atomicReplayPSN == m.PSN {
			val := qp.atomicReplayVal
			n.rxPU.Submit(n.prof.RxPUTime, 0, func() { n.respond(m, StatusOK, nil, val) })
			return true
		}
		// Replay record displaced: drop the duplicate without a response —
		// re-execution would double-apply a non-idempotent op.
		return true
	default:
		return false
	}
}
