package nic

import (
	"testing"

	"github.com/thu-has/ragnar/internal/fabric"
	"github.com/thu-has/ragnar/internal/sim"
)

// Adversarial-frame conformance suite: the go-back-N layer's implicit
// invariants, restated as an explicitly attacked contract. Every test feeds
// forged or replayed frames directly at a QP (HandleIngress is the wire) and
// asserts what the reliability layer now promises under the NeVerMore threat
// model:
//
//   - a forged NAK must name a gap head that is actually outstanding, or it
//     is rejected without consuming the single per-epoch rewind;
//   - a NAK burst triggers at most one rewind per progress epoch;
//   - completion forgery requires knowing both the pending Seq AND its PSN
//     (snooping, not guessing);
//   - replayed requests are answered without re-execution — memory and the
//     receive queue are touched at most once per PSN;
//   - a duplicate atomic whose replay record was displaced is dropped, never
//     re-executed (atomics are not idempotent);
//   - the unordered half-space PSN edge draws no ACK (no completion forgery
//     for frames the responder never executed);
//   - failQP flushes outstanding WQEs in posting order.

// stalledRig is linkedRig with a blackholed request direction: posted writes
// stay outstanding forever (long retry timeout), giving the forged-frame
// tests a stable transport window to attack.
func stalledRig(t *testing.T, writes int) (*sim.Engine, *NIC, *NIC, *[]Completion) {
	t.Helper()
	eng, a, b, ab, _ := linkedRig(t, CX4, 0)
	plan := fabric.UniformLoss(1, 1.0)
	ab.SetFaultPlan(&plan)
	comps := &[]Completion{}
	connect(t, a, b, func(c Completion) { *comps = append(*comps, c) })
	if err := a.SetQPRetry(1, 10*sim.Millisecond, 7); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64)
	for i := 0; i < writes; i++ {
		if err := a.PostSend(1, &WQE{WRID: uint64(i), Op: OpWrite, LocalData: data,
			RemoteKey: 77, RemoteAddr: b.mrs[77].Base, Length: len(data)}); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunFor(50 * sim.Microsecond)
	if got := len(a.qps[1].outstanding); got != writes {
		t.Fatalf("outstanding = %d, want %d stalled writes", got, writes)
	}
	return eng, a, b, comps
}

// forgedNak builds the frame a NAK-spoofing adversary sends at a requester.
func forgedNak(seq uint64, psn, ackPSN uint32) *Message {
	return &Message{Op: OpWrite, SrcQPN: 2, DstQPN: 1, Seq: seq, IsResp: true,
		Status: StatusSeqNak, PSN: psn, AckPSN: ackPSN}
}

// TestForgedNakValidation: NAKs with a gap head that is not an outstanding
// PSN (stale, future or plain garbage AckPSN) are rejected and counted
// without consuming the rewind epoch; a valid NAK still rewinds — once.
func TestForgedNakValidation(t *testing.T) {
	eng, a, _, _ := stalledRig(t, 4) // outstanding PSNs 0..3
	_ = eng

	invalid := []struct {
		name   string
		ackPSN uint32
	}{
		{"stale", psnMask - 3},    // gap head psnMask-2: long before the window
		{"future", 7},             // gap head 8: beyond the window
		{"far-future", 1 << 20},   // garbage deep in the PSN space
		{"edge-own-tail", 3},      // gap head 4: just past the newest outstanding
		{"half-space", 1<<23 - 1}, // gap head 2^23: unordered vs everything
	}
	for i, c := range invalid {
		a.HandleIngress(forgedNak(0, 0, c.ackPSN))
		if got := a.Counters().InvalidNaks; got != uint64(i+1) {
			t.Fatalf("%s: InvalidNaks = %d, want %d", c.name, got, i+1)
		}
		if got := a.Counters().Retransmits; got != 0 {
			t.Fatalf("%s: invalid NAK triggered %d retransmits", c.name, got)
		}
	}

	// A valid NAK (gap head 0 is outstanding) rewinds the whole window.
	a.HandleIngress(forgedNak(0, 0, psnMask))
	if got := a.Counters().Retransmits; got != 4 {
		t.Fatalf("valid NAK retransmitted %d, want 4", got)
	}
	// A burst of equally valid NAKs in the same progress epoch is inert:
	// progressEpoch pins the single rewind.
	for i := 0; i < 10; i++ {
		a.HandleIngress(forgedNak(0, 0, psnMask))
	}
	if got := a.Counters().Retransmits; got != 4 {
		t.Fatalf("NAK burst multiplied retransmits to %d, want 4", got)
	}
	if got := a.Counters().InvalidNaks; got != uint64(len(invalid)) {
		t.Fatalf("InvalidNaks = %d after burst of valid NAKs, want %d", a.Counters().InvalidNaks, len(invalid))
	}
}

// TestForgedAckRequiresSeqAndPSN: an ACK naming an unknown Seq is coalesced
// as a duplicate; an ACK naming a pending Seq but the wrong PSN is rejected
// as forged; only an ACK carrying both the snooped Seq and its exact PSN
// fakes a completion — the NeVerMore injection that still works, priced at
// full wire visibility.
func TestForgedAckRequiresSeqAndPSN(t *testing.T) {
	eng, a, _, comps := stalledRig(t, 2) // outstanding Seq 0/PSN 0, Seq 1/PSN 1

	ack := func(seq uint64, psn uint32) *Message {
		return &Message{Op: OpWrite, SrcQPN: 2, DstQPN: 1, Seq: seq, IsResp: true,
			Status: StatusOK, PSN: psn, AckPSN: psn}
	}

	a.HandleIngress(ack(999, 0)) // guessed Seq: no pending entry
	eng.RunFor(10 * sim.Microsecond)
	if got := a.Counters().DupAcks; got != 1 {
		t.Fatalf("DupAcks = %d, want 1", got)
	}
	if len(*comps) != 0 {
		t.Fatalf("unknown-Seq ACK delivered a CQE: %+v", *comps)
	}

	a.HandleIngress(ack(0, 5)) // valid Seq, guessed PSN
	eng.RunFor(10 * sim.Microsecond)
	if got := a.Counters().InvalidAcks; got != 1 {
		t.Fatalf("InvalidAcks = %d, want 1", got)
	}
	if len(*comps) != 0 {
		t.Fatalf("wrong-PSN ACK delivered a CQE: %+v", *comps)
	}

	a.HandleIngress(ack(0, 0)) // fully snooped forgery
	eng.RunFor(10 * sim.Microsecond)
	if len(*comps) != 1 || (*comps)[0].Status != StatusOK || (*comps)[0].WRID != 0 {
		t.Fatalf("snooped forged ACK should fake exactly one OK CQE, got %+v", *comps)
	}
}

// TestReplayedWriteNotReExecuted: a replayed (duplicate) WRITE request is
// re-ACKed without touching memory — an attacker replaying a captured frame
// with altered payload cannot overwrite the original data — and the second
// ACK coalesces at the requester without a second CQE.
func TestReplayedWriteNotReExecuted(t *testing.T) {
	eng, a, b, region := loopRig(t, CX4)
	var comps []Completion
	connect(t, a, b, func(c Completion) { comps = append(comps, c) })
	orig := []byte("genuine payload.")
	if err := a.PostSend(1, &WQE{WRID: 1, Op: OpWrite, LocalData: orig,
		RemoteKey: 77, RemoteAddr: region.Base(), Length: len(orig)}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(comps) != 1 {
		t.Fatalf("completions = %d", len(comps))
	}

	// Replay the same PSN/Seq with attacker-altered bytes.
	b.HandleIngress(&Message{Op: OpWrite, SrcQPN: 1, DstQPN: 2, RKey: 77,
		RemoteAddr: region.Base(), Length: len(orig), Data: []byte("TAMPERED PAYLOAD"),
		Seq: 0, PSN: 0})
	eng.Run()

	if got := string(region.Bytes()[:len(orig)]); got != string(orig) {
		t.Fatalf("replayed WRITE re-executed: memory = %q", got)
	}
	if got := b.Counters().DupReqs; got != 1 {
		t.Fatalf("DupReqs = %d, want 1", got)
	}
	if got := a.Counters().DupAcks; got != 1 {
		t.Fatalf("DupAcks = %d, want 1 (replay ACK coalesced)", got)
	}
	if len(comps) != 1 {
		t.Fatalf("replay delivered a second CQE: %d", len(comps))
	}
}

// TestAtomicReplayDisplacedDropped pins the replay-buffer recycling fix: a
// duplicate atomic whose one-deep replay record was displaced by a newer
// atomic is dropped without response — before the fix it fell through to
// re-execution and double-applied the FAA.
func TestAtomicReplayDisplacedDropped(t *testing.T) {
	eng, a, b, region := loopRig(t, CX4)
	var comps []Completion
	connect(t, a, b, func(c Completion) { comps = append(comps, c) })
	post := func(wrid uint64, add uint64) {
		t.Helper()
		if err := a.PostSend(1, &WQE{WRID: wrid, Op: OpAtomicFAA, RemoteKey: 77,
			RemoteAddr: region.Base(), Length: 8, CompareAdd: add}); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	}
	post(1, 5)
	post(2, 7)
	if len(comps) != 2 {
		t.Fatalf("completions = %d", len(comps))
	}
	if got := le64(region.Bytes()[:8]); got != 12 {
		t.Fatalf("memory = %d after two FAAs, want 12", got)
	}

	// Duplicate of the FIRST atomic: its replay record was displaced by the
	// second. Must be dropped — not re-executed, not answered.
	b.HandleIngress(&Message{Op: OpAtomicFAA, SrcQPN: 1, DstQPN: 2, RKey: 77,
		RemoteAddr: region.Base(), Length: 8, CompareAdd: 5, Seq: 0, PSN: 0})
	eng.Run()
	if got := le64(region.Bytes()[:8]); got != 12 {
		t.Fatalf("displaced duplicate atomic re-executed: memory = %d, want 12", got)
	}
	if got := a.Counters().DupAcks; got != 0 {
		t.Fatalf("displaced duplicate drew a response: DupAcks = %d", got)
	}

	// Duplicate of the SECOND atomic: record present, replayed from the
	// buffer — the recorded original value, no re-execution.
	b.HandleIngress(&Message{Op: OpAtomicFAA, SrcQPN: 1, DstQPN: 2, RKey: 77,
		RemoteAddr: region.Base(), Length: 8, CompareAdd: 7, Seq: 1, PSN: 1})
	eng.Run()
	if got := le64(region.Bytes()[:8]); got != 12 {
		t.Fatalf("replayed atomic re-executed: memory = %d, want 12", got)
	}
	if got := a.Counters().DupAcks; got != 1 {
		t.Fatalf("DupAcks = %d, want 1 (replayed atomic response coalesced)", got)
	}
	if got := b.Counters().DupReqs; got != 2 {
		t.Fatalf("DupReqs = %d, want 2", got)
	}
	if len(comps) != 2 {
		t.Fatalf("atomic replays delivered extra CQEs: %d", len(comps))
	}
}

// TestHalfSpacePSNConvention pins the chosen convention at the unordered
// edge of the 24-bit circular order: at exactly 2^23 apart neither PSN is
// after the other, and the responder discards such frames without executing,
// NAKing or — critically — replay-ACKing them.
func TestHalfSpacePSNConvention(t *testing.T) {
	const half = uint32(1 << 23)
	for _, c := range []struct{ a, b uint32 }{
		{half, 0}, {0, half}, {half + 7, 7}, {3, half + 3},
	} {
		if psnAfter(c.a, c.b) || psnAfter(c.b, c.a) {
			t.Fatalf("psnAfter not unordered at half-space: (%#x,%#x)", c.a, c.b)
		}
		if !psnHalfAway(c.a, c.b) || !psnHalfAway(c.b, c.a) {
			t.Fatalf("psnHalfAway(%#x,%#x) should hold symmetrically", c.a, c.b)
		}
	}
	if psnHalfAway(1, 0) || psnHalfAway(0, psnMask) {
		t.Fatal("psnHalfAway true off the edge")
	}

	eng, a, b, region := loopRig(t, CX4)
	var comps []Completion
	connect(t, a, b, func(c Completion) { comps = append(comps, c) })

	req := func(psn uint32) *Message {
		return &Message{Op: OpWrite, SrcQPN: 1, DstQPN: 2, RKey: 77,
			RemoteAddr: region.Base(), Length: 8, Data: []byte("12345678"),
			Seq: 0, PSN: psn}
	}
	// Exactly half the space ahead of ePSN 0: discarded, not classified.
	b.HandleIngress(req(half))
	eng.Run()
	bc := b.Counters()
	if bc.RxBadPSN != 1 || bc.DupReqs != 0 || bc.SeqNaks != 0 {
		t.Fatalf("half-space frame: RxBadPSN=%d DupReqs=%d SeqNaks=%d, want 1/0/0",
			bc.RxBadPSN, bc.DupReqs, bc.SeqNaks)
	}
	if got := a.Counters().DupAcks; got != 0 {
		t.Fatalf("half-space frame drew a response: DupAcks = %d", got)
	}
	// Just under half: a legitimate (huge) gap — one NAK.
	b.HandleIngress(req(half - 1))
	eng.Run()
	if got := b.Counters().SeqNaks; got != 1 {
		t.Fatalf("SeqNaks = %d, want 1", got)
	}
	// Just over half (counted from ePSN backwards): the duplicate region.
	b.HandleIngress(req(psnMask))
	eng.Run()
	if got := b.Counters().DupReqs; got != 1 {
		t.Fatalf("DupReqs = %d, want 1", got)
	}
	if len(comps) != 0 {
		t.Fatalf("forged requests completed victim WQEs: %+v", comps)
	}
}

// TestOutOfWindowSingleNak: out-of-window (future) PSNs draw exactly one
// NAK per gap — later out-of-order arrivals are silently discarded until the
// stream recovers, so a gap-spam adversary cannot turn the responder into a
// NAK amplifier.
func TestOutOfWindowSingleNak(t *testing.T) {
	eng, _, b, region := loopRig(t, CX4)
	if err := b.CreateQP(2, nil, nil); err != nil {
		t.Fatal(err)
	}
	// No reverse path wired: the NAK attempt itself is dropped at respondNak,
	// which is fine — the counter is charged when the NAK is generated.
	req := func(psn uint32) *Message {
		return &Message{Op: OpWrite, SrcQPN: 9, DstQPN: 2, RKey: 77,
			RemoteAddr: region.Base(), Length: 8, Data: []byte("xxxxxxxx"),
			Seq: 0, PSN: psn}
	}
	for _, psn := range []uint32{5, 6, 7, 100} {
		b.HandleIngress(req(psn))
	}
	eng.Run()
	if got := b.Counters().SeqNaks; got != 1 {
		t.Fatalf("SeqNaks = %d, want 1 (one NAK per gap)", got)
	}
}

// TestFailQPFlushOrder: retry exhaustion flushes every outstanding WQE with
// StatusRetryExcErr in posting order — the CQE stream stays FIFO even on the
// error path.
func TestFailQPFlushOrder(t *testing.T) {
	eng, a, b, ab, _ := linkedRig(t, CX4, 0)
	plan := fabric.UniformLoss(1, 1.0)
	ab.SetFaultPlan(&plan)
	var comps []Completion
	connect(t, a, b, func(c Completion) { comps = append(comps, c) })
	if err := a.SetQPRetry(1, 2*sim.Microsecond, 3); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64)
	wrids := []uint64{10, 11, 12, 13}
	for _, w := range wrids {
		if err := a.PostSend(1, &WQE{WRID: w, Op: OpWrite, LocalData: data,
			RemoteKey: 77, RemoteAddr: b.mrs[77].Base, Length: len(data)}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(comps) != len(wrids) {
		t.Fatalf("flushed %d CQEs, want %d", len(comps), len(wrids))
	}
	for i, c := range comps {
		if c.Status != StatusRetryExcErr {
			t.Fatalf("CQE %d status = %v, want RETRY_EXC_ERR", i, c.Status)
		}
		if c.WRID != wrids[i] {
			t.Fatalf("flush order broken: CQE %d is WRID %d, want %d", i, c.WRID, wrids[i])
		}
	}
	if !a.QPFailed(1) {
		t.Fatal("QP not failed after flush")
	}
}

// TestQPGuessingCounted: requests sprayed at QPNs that were never created
// are answered (or dropped) without side effects and charged to RxBadQP —
// the observable a QP-number-guessing sweep cannot avoid.
func TestQPGuessingCounted(t *testing.T) {
	eng, a, b, region := loopRig(t, CX4)
	var comps []Completion
	connect(t, a, b, func(c Completion) { comps = append(comps, c) })
	for qpn := uint32(100); qpn < 116; qpn++ {
		b.HandleIngress(&Message{Op: OpWrite, SrcQPN: 9, DstQPN: qpn, RKey: 77,
			RemoteAddr: region.Base(), Length: 8, Data: []byte("guessing"),
			Seq: 0, PSN: 0})
	}
	eng.Run()
	if got := b.Counters().RxBadQP; got != 16 {
		t.Fatalf("RxBadQP = %d, want 16", got)
	}
	if len(comps) != 0 {
		t.Fatalf("QP guessing completed victim WQEs: %+v", comps)
	}
}
