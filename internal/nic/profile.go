// Package nic models the RDMA NIC at the fidelity Ragnar's reverse
// engineering exposes (paper Section IV, Figure 3): a requester Tx pipeline
// (SQE fetch, Tx arbiter, per-opcode processing units), a responder Rx
// pipeline (parser, Translation & Protection Unit, host DMA), a shared
// egress scheduler in which the logical Tx arbiter outranks the logical Rx
// arbiter (Key Finding 3), on-board context caches (the structures Pythia
// attacks), and an internal NoC whose clock boosts under heavy small-message
// load (Key Finding 2). All timing constants live in a per-adapter Profile
// so ConnectX-4/5/6 differ only by data (Table III).
package nic

import "github.com/thu-has/ragnar/internal/sim"

// Profile captures one ConnectX generation. The absolute values are
// engineering estimates consistent with public ConnectX datasheets and the
// measurement literature; the attacks only rely on their relative structure.
type Profile struct {
	Name string

	// Wire and PCIe (Table III).
	LineRateGbps float64
	PCIeGBps     float64      // effective host-interface bandwidth, bytes/ns = GB/s
	PCIeLatency  sim.Duration // one-way request latency host<->NIC
	MTU          int

	// Requester side.
	SQEFetchTime   sim.Duration // DMA of one SQE descriptor (beyond PCIeLatency)
	TxPUTime       sim.Duration // per-message requester processing
	InlineMax      int          // writes <= this are inlined in the WQE (no payload DMA)
	DoorbellTime   sim.Duration // MMIO doorbell cost
	CQEWriteTime   sim.Duration // DMA of one CQE back to the host
	MaxQPRate      float64      // requester message cap per QP, msgs/us
	RequesterSlots int          // parallel requester PU slots

	// Responder side.
	RxPUTime       sim.Duration // per-packet responder parse/dispatch
	AtomicExtra    sim.Duration // extra latency for atomic execute units
	ResponderSlots int

	// Translation & Protection Unit (Grain-IV home).
	TPUBase      sim.Duration // base translation+protection check per beat
	TPUBeatBytes int          // bytes translated per TPU beat
	TPUDrop8     sim.Duration // latency drop for 8 B-aligned offsets
	TPUDrop64    sim.Duration // additional drop for 64 B-multiple offsets
	TPUSaw2048   sim.Duration // amplitude of the 2048 B sawtooth component
	TPUBanks     int          // translation banks; same-bank back-to-back conflicts
	TPUBankCost  sim.Duration // penalty per bank conflict
	MRSwitchCost sim.Duration // penalty when consecutive accesses change MR
	TPUNoiseSig  sim.Duration // Gaussian jitter sigma on TPU service
	TPUSpike     sim.Duration // rare positive latency spikes
	TPUSpikeP    float64

	// On-board caches (Pythia's persistent channel target, and the
	// finite-resource surface the noisy-neighbor exhaustion attacks abuse).
	// QPCCacheEntries bounds the fully-associative ICM context cache
	// (ContextCache) holding QP and MR contexts; the set-associative
	// MTT cache keeps its own geometry for per-page translations.
	MTTCacheEntries int // translation entries cached on-NIC
	MTTCacheWays    int
	MTTMissPenalty  sim.Duration // ICM fetch over PCIe on miss
	QPCCacheEntries int
	QPCCacheWays    int
	QPCMissPenalty  sim.Duration
	// MPTMissPenalty prices an MR-context (MPT) miss in the shared ICM
	// context cache, charged on the TPU path. Zero disables MR-context
	// caching entirely — the legacy profiles below keep it at zero so every
	// pre-exhaustion experiment is timed exactly as before; the exhaust
	// experiment runs a constrained profile copy with it enabled.
	MPTMissPenalty sim.Duration

	// PU complex / NoC behaviour (Key Finding 2).
	ComplexPPS    float64      // shared processing complex capacity, msgs/us (base NoC clock)
	NoCBoost      float64      // capacity multiplier once boosted
	NoCBoostPPS   float64      // offered-load threshold (msgs/us) that activates boost
	NoCSmallMsg   int          // only messages <= this size count towards activation
	EgressArbTime sim.Duration // per-packet decision time of the egress arbiter

	// Strategy selection (the seam ROADMAP item 5 asks for). The zero
	// values select the legacy strict arbiter and empirical TPU, so the
	// paper profiles above stay byte-identical without naming them.
	ArbiterKind ArbiterKind
	TPUKind     TPUKind

	// Base names the paper profile a derived (hardened) profile was built
	// from; empty for the paper profiles themselves. Channel calibration
	// tables key on it so CX5-ISO measures with CX5's modulation
	// parameters rather than silently falling into another adapter's.
	Base string

	// Isolation (CX5-ISO) knobs, inert unless ArbiterKind selects DWRR.
	// ISOWeights apportions egress bandwidth across tenant slots (zero
	// entries clamp to 1); ISOQuantum is the DWRR byte quantum; ISOCredits
	// caps each tenant's outstanding responder-PU admissions, partitioning
	// the processing complex into per-tenant credit pools.
	ISOWeights [MaxTenants]int
	ISOQuantum int
	ISOCredits int

	// Encryption-latency knobs (the AES-in-RDMA pricing study): when
	// non-zero, every verb pays EncPerMsg plus EncPerKB per KB of payload
	// on both the requester and responder processing paths. Zero disables
	// the model entirely — the paper profiles keep it at zero.
	EncPerMsg sim.Duration
	EncPerKB  sim.Duration
}

// encTime prices AES for one message of the given payload size.
func (p Profile) encTime(bytes int) sim.Duration {
	if p.EncPerMsg == 0 && p.EncPerKB == 0 {
		return 0
	}
	d := p.EncPerMsg
	if bytes > 0 {
		d += p.EncPerKB * sim.Duration(bytes) / 1024
	}
	return d
}

// CX4, CX5 and CX6 reproduce Table III's adapters. The generation-to-
// generation scaling (2x line rate steps, PCIe 3.0 x8 vs 4.0 x16, faster
// processing) follows the public specifications.
var (
	CX4 = Profile{
		Name:         "ConnectX-4",
		LineRateGbps: 25, PCIeGBps: 4.0, PCIeLatency: 420 * sim.Nanosecond, MTU: 4096,
		SQEFetchTime: 120 * sim.Nanosecond, TxPUTime: 90 * sim.Nanosecond,
		InlineMax: 256, DoorbellTime: 90 * sim.Nanosecond, CQEWriteTime: 100 * sim.Nanosecond,
		MaxQPRate: 3.0, RequesterSlots: 2,
		RxPUTime: 80 * sim.Nanosecond, AtomicExtra: 150 * sim.Nanosecond, ResponderSlots: 2,
		TPUBase: 320 * sim.Nanosecond, TPUBeatBytes: 512,
		TPUDrop8: 12 * sim.Nanosecond, TPUDrop64: 30 * sim.Nanosecond,
		TPUSaw2048: 24 * sim.Nanosecond, TPUBanks: 16, TPUBankCost: 18 * sim.Nanosecond,
		MRSwitchCost: 55 * sim.Nanosecond,
		TPUNoiseSig:  5 * sim.Nanosecond, TPUSpike: 120 * sim.Nanosecond, TPUSpikeP: 0.004,
		MTTCacheEntries: 2048, MTTCacheWays: 4, MTTMissPenalty: 900 * sim.Nanosecond,
		QPCCacheEntries: 1024, QPCCacheWays: 4, QPCMissPenalty: 800 * sim.Nanosecond,
		ComplexPPS: 5, NoCBoost: 2.3, NoCBoostPPS: 20, NoCSmallMsg: 256,
		EgressArbTime: 12 * sim.Nanosecond,
	}
	CX5 = Profile{
		Name:         "ConnectX-5",
		LineRateGbps: 100, PCIeGBps: 6.6, PCIeLatency: 380 * sim.Nanosecond, MTU: 4096,
		SQEFetchTime: 90 * sim.Nanosecond, TxPUTime: 45 * sim.Nanosecond,
		InlineMax: 256, DoorbellTime: 80 * sim.Nanosecond, CQEWriteTime: 85 * sim.Nanosecond,
		MaxQPRate: 6.5, RequesterSlots: 2,
		RxPUTime: 40 * sim.Nanosecond, AtomicExtra: 110 * sim.Nanosecond, ResponderSlots: 2,
		TPUBase: 160 * sim.Nanosecond, TPUBeatBytes: 512,
		TPUDrop8: 7 * sim.Nanosecond, TPUDrop64: 16 * sim.Nanosecond,
		TPUSaw2048: 13 * sim.Nanosecond, TPUBanks: 16, TPUBankCost: 10 * sim.Nanosecond,
		MRSwitchCost: 30 * sim.Nanosecond,
		TPUNoiseSig:  3 * sim.Nanosecond, TPUSpike: 90 * sim.Nanosecond, TPUSpikeP: 0.004,
		MTTCacheEntries: 4096, MTTCacheWays: 4, MTTMissPenalty: 800 * sim.Nanosecond,
		QPCCacheEntries: 2048, QPCCacheWays: 4, QPCMissPenalty: 700 * sim.Nanosecond,
		ComplexPPS: 11, NoCBoost: 2.25, NoCBoostPPS: 45, NoCSmallMsg: 256,
		EgressArbTime: 8 * sim.Nanosecond,
	}
	CX6 = Profile{
		Name:         "ConnectX-6",
		LineRateGbps: 200, PCIeGBps: 25.0, PCIeLatency: 320 * sim.Nanosecond, MTU: 4096,
		SQEFetchTime: 70 * sim.Nanosecond, TxPUTime: 28 * sim.Nanosecond,
		InlineMax: 256, DoorbellTime: 70 * sim.Nanosecond, CQEWriteTime: 70 * sim.Nanosecond,
		MaxQPRate: 11.0, RequesterSlots: 4,
		RxPUTime: 25 * sim.Nanosecond, AtomicExtra: 80 * sim.Nanosecond, ResponderSlots: 4,
		TPUBase: 110 * sim.Nanosecond, TPUBeatBytes: 512,
		TPUDrop8: 5 * sim.Nanosecond, TPUDrop64: 12 * sim.Nanosecond,
		TPUSaw2048: 10 * sim.Nanosecond, TPUBanks: 32, TPUBankCost: 8 * sim.Nanosecond,
		MRSwitchCost: 22 * sim.Nanosecond,
		TPUNoiseSig:  2 * sim.Nanosecond, TPUSpike: 70 * sim.Nanosecond, TPUSpikeP: 0.003,
		MTTCacheEntries: 8192, MTTCacheWays: 8, MTTMissPenalty: 650 * sim.Nanosecond,
		QPCCacheEntries: 4096, QPCCacheWays: 8, QPCMissPenalty: 600 * sim.Nanosecond,
		ComplexPPS: 22, NoCBoost: 2.2, NoCBoostPPS: 80, NoCSmallMsg: 256,
		EgressArbTime: 6 * sim.Nanosecond,
	}
)

// baseName returns the paper profile a derived profile calibrates against.
func baseName(p Profile) string {
	if p.Base != "" {
		return p.Base
	}
	return p.Name
}

// Isolated derives an isolation-hardened variant of a paper profile, the
// GLSVLSI'23 TX architecture: DWRR egress scheduling over tenants with
// equal weights, per-tenant responder credit pools, and no shared-clock NoC
// boost (the boost is a cross-tenant amplifier — KF2's carrier — so the
// hardened part pins the NoC at its base clock).
func Isolated(p Profile) Profile {
	iso := p
	iso.Name = p.Name + "-ISO"
	iso.Base = baseName(p)
	iso.ArbiterKind = ArbiterDWRR
	for i := range iso.ISOWeights {
		iso.ISOWeights[i] = 1
	}
	iso.ISOQuantum = 2048
	iso.ISOCredits = 8
	iso.NoCBoost = 1.0
	return iso
}

// WithConstTPU returns p with the constant-time TPU selected — the
// Section VII hardware-partitioning mitigation as a profile property.
func WithConstTPU(p Profile) Profile {
	ct := p
	ct.Name = p.Name + "+ctTPU"
	ct.Base = baseName(p)
	ct.TPUKind = TPUConstTime
	return ct
}

// WithAES returns p with the AES-per-verb encryption latency enabled. The
// constants follow the AES-in-RDMA measurement study's shape: a fixed
// per-message setup cost plus a per-KB streaming cost (~50 ns/KB models a
// pipelined AES-GCM engine at ~20 GB/s).
func WithAES(p Profile) Profile {
	enc := p
	enc.Name = p.Name + "+AES"
	enc.Base = baseName(p)
	enc.EncPerMsg = 60 * sim.Nanosecond
	enc.EncPerKB = 51 * sim.Nanosecond
	return enc
}

// CX5ISO is the isolation-hardened ConnectX-5: the defense-grid baseline
// variant (defgrid adds const-TPU and AES on top of it).
var CX5ISO = Isolated(CX5)

// PaperProfiles lists the paper's adapters in Table III order. Experiment
// sweeps that reproduce the paper's figures iterate these — the hardened
// profiles deliberately break the channels those figures demonstrate.
var PaperProfiles = []Profile{CX4, CX5, CX6}

// Profiles is the CLI-selectable profile registry: the paper adapters plus
// the isolation-hardened CX5-ISO.
var Profiles = []Profile{CX4, CX5, CX6, CX5ISO}

// ProfileNames returns the registry names for error messages and usage text.
func ProfileNames() []string {
	names := make([]string, len(Profiles))
	for i, p := range Profiles {
		names[i] = p.Name
	}
	return names
}

// ProfileByName returns the profile for a name like "CX-5", "cx5" or
// "ConnectX-5"; ok is false for unknown names.
func ProfileByName(name string) (Profile, bool) {
	switch normalize(name) {
	case "cx4", "connectx4":
		return CX4, true
	case "cx5", "connectx5":
		return CX5, true
	case "cx6", "connectx6":
		return CX6, true
	case "cx5iso", "connectx5iso":
		return CX5ISO, true
	}
	return Profile{}, false
}

func normalize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
		case c == '-' || c == '_' || c == ' ':
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// WireHeaderBytes is the per-packet RoCEv2 overhead: Eth(14)+IP(20)+UDP(8)+
// BTH(12)+ICRC(4)+FCS(4) plus preamble/IPG accounting (20).
const WireHeaderBytes = 82

// AckBytes is the wire size of a bare ACK/response header packet.
const AckBytes = WireHeaderBytes + 4

// ReadReqBytes is the wire size of an RDMA Read request (BTH+RETH).
const ReadReqBytes = WireHeaderBytes + 16
