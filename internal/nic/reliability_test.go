package nic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/thu-has/ragnar/internal/fabric"
	"github.com/thu-has/ragnar/internal/host"
	"github.com/thu-has/ragnar/internal/sim"
)

// linkedRig builds two NICs joined by real fabric links (unlike loopRig's
// loopback fallback), so tail drops and fault plans apply.
func linkedRig(t *testing.T, p Profile, maxQueue int) (*sim.Engine, *NIC, *NIC, *fabric.Link, *fabric.Link) {
	t.Helper()
	eng := sim.NewEngine(1)
	hA := host.New(eng, host.H2)
	hB := host.New(eng, host.H3)
	a := New(eng, "a", p, hA, 0)
	b := New(eng, "b", p, hB, 0)
	ab := fabric.NewLink(eng, "a->b", p.LineRateGbps, 200*sim.Nanosecond, maxQueue, Deliver)
	ba := fabric.NewLink(eng, "b->a", p.LineRateGbps, 200*sim.Nanosecond, maxQueue, Deliver)
	a.AddPeerLink(b, ab)
	b.AddPeerLink(a, ba)
	region, err := hB.Alloc(2<<20, host.Page2M, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RegisterMR(MRInfo{
		Key: 77, Base: region.Base(), Size: region.Size(), Region: region,
		PageSize: uint64(host.Page2M), RemoteRead: true, RemoteWrite: true, Atomic: true,
	}); err != nil {
		t.Fatal(err)
	}
	return eng, a, b, ab, ba
}

// TestSaturatedTCQueueNoPanic is the regression for the removed
// panic("nic ...: wire drop"): a small-message flow on TC3 saturates its
// bounded egress queue while a large-message flow hogs the wire on TC0.
// Before the RC reliability layer this crashed the run; now the drops are
// counted and every WQE still completes via retransmission.
//
// The egress arbiter paces each handoff by that packet's own serialization
// time, so a queue only builds when small packets emerge while the wire is
// mid-way through a large one. Bursts of TC3 writes posted while the TC0
// stream is on the wire queue up behind the in-service 4 KB packet at the
// arbiter, then land on the busy link ~47 ns apart — far faster than it can
// drain them — overflowing the 4-deep TC3 queue.
func TestSaturatedTCQueueNoPanic(t *testing.T) {
	eng, a, b, _, _ := linkedRig(t, CX4, 4)
	var comps []Completion
	onComplete := func(c Completion) { comps = append(comps, c) }
	for _, q := range []struct{ local, remote uint32 }{{1, 2}, {3, 4}} {
		if err := a.CreateQP(q.local, onComplete, nil); err != nil {
			t.Fatal(err)
		}
		if err := b.CreateQP(q.remote, nil, nil); err != nil {
			t.Fatal(err)
		}
		if err := a.ConnectQP(q.local, b, q.remote); err != nil {
			t.Fatal(err)
		}
		if err := b.ConnectQP(q.remote, a, q.local); err != nil {
			t.Fatal(err)
		}
		if err := a.SetQPRetry(q.local, 20*sim.Microsecond, 12); err != nil {
			t.Fatal(err)
		}
	}
	big := make([]byte, 4096)
	small := make([]byte, 64)
	mrBase := b.mrs[77].Base
	posted := 0
	for i := 0; i < 16; i++ {
		if err := a.PostSend(1, &WQE{WRID: uint64(i), Op: OpWrite, LocalData: big,
			RemoteKey: 77, RemoteAddr: mrBase, Length: len(big), TC: 0}); err != nil {
			t.Fatal(err)
		}
		posted++
	}
	// The 16 large writes occupy the wire back to back from ~4 µs to ~26 µs;
	// each small-write wave lands inside that stream.
	for wave := 0; wave < 3; wave++ {
		eng.RunUntil(sim.Time(0).Add(sim.Duration(6+2*wave) * sim.Microsecond))
		for j := 0; j < 8; j++ {
			if err := a.PostSend(3, &WQE{WRID: uint64(100 + 8*wave + j), Op: OpWrite, LocalData: small,
				RemoteKey: 77, RemoteAddr: mrBase + 8192, Length: len(small), TC: 3}); err != nil {
				t.Fatal(err)
			}
			posted++
		}
	}
	eng.Run()
	if len(comps) != posted {
		t.Fatalf("completions = %d, posted %d", len(comps), posted)
	}
	for _, c := range comps {
		if c.Status != StatusOK {
			t.Fatalf("completion %+v", c)
		}
	}
	var totalDrops uint64
	for tc, v := range a.Counters().WireDropsTC {
		_ = tc
		totalDrops += v
	}
	if totalDrops == 0 {
		t.Fatal("expected tail drops on the saturated TC queue, saw none")
	}
	if a.Counters().Retransmits == 0 {
		t.Fatal("expected retransmissions to recover the drops")
	}
}

// TestFaultPlanLossRecovers checks the probabilistic-drop path end to end:
// loss on both directions, everything still completes OK.
func TestFaultPlanLossRecovers(t *testing.T) {
	eng, a, b, ab, ba := linkedRig(t, CX4, 0)
	planAB := fabric.UniformLoss(11, 0.2)
	planBA := fabric.UniformLoss(12, 0.2)
	ab.SetFaultPlan(&planAB)
	ba.SetFaultPlan(&planBA)
	var comps []Completion
	connect(t, a, b, func(c Completion) { comps = append(comps, c) })
	if err := a.SetQPRetry(1, 10*sim.Microsecond, 20); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256)
	mrBase := b.mrs[77].Base
	for i := 0; i < 32; i++ {
		if err := a.PostSend(1, &WQE{WRID: uint64(i), Op: OpWrite, LocalData: data,
			RemoteKey: 77, RemoteAddr: mrBase, Length: len(data)}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(comps) != 32 {
		t.Fatalf("completions = %d", len(comps))
	}
	for _, c := range comps {
		if c.Status != StatusOK {
			t.Fatalf("completion %+v", c)
		}
	}
	if a.Counters().Retransmits == 0 && a.Counters().DupAcks == 0 {
		t.Fatal("20% loss produced no transport recovery activity")
	}
}

// TestPSNWraparound drives a window across the 24-bit PSN boundary.
func TestPSNWraparound(t *testing.T) {
	eng, a, b, _ := loopRig(t, CX4)
	var comps []Completion
	connect(t, a, b, func(c Completion) { comps = append(comps, c) })
	a.qps[1].nextPSN = psnMask - 2
	b.qps[2].epsn = psnMask - 2
	data := make([]byte, 64)
	for i := 0; i < 6; i++ {
		if err := a.PostSend(1, &WQE{WRID: uint64(i), Op: OpWrite, LocalData: data,
			RemoteKey: 77, RemoteAddr: b.mrs[77].Base, Length: len(data)}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(comps) != 6 {
		t.Fatalf("completions = %d", len(comps))
	}
	for _, c := range comps {
		if c.Status != StatusOK {
			t.Fatalf("completion %+v", c)
		}
	}
	if got := a.qps[1].nextPSN; got != 3 {
		t.Fatalf("requester PSN after wrap = %d, want 3", got)
	}
	if got := b.qps[2].epsn; got != 3 {
		t.Fatalf("responder ePSN after wrap = %d, want 3", got)
	}
}

// TestPSNCircularOrder pins the 24-bit comparison helper across the wrap.
func TestPSNCircularOrder(t *testing.T) {
	cases := []struct {
		a, b uint32
		want bool
	}{
		{1, 0, true},
		{0, 1, false},
		{0, 0, false},
		{0, psnMask, true},        // 0 comes just after 0xffffff
		{psnMask, 0, false},       // and not the other way round
		{1 << 23, 0, false},       // exactly half the space is "before"
		{(1 << 23) - 1, 0, true},  // just under half is "after"
		{5, psnMask - 5, true},    // wrapped window
		{psnMask - 5, 5, false},   // reverse of the wrapped window
		{psnMask, psnMask, false}, // equality is never "after"
	}
	for _, c := range cases {
		if got := psnAfter(c.a, c.b); got != c.want {
			t.Errorf("psnAfter(%#x, %#x) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestDupAckCoalescing injects a duplicate ACK for an already-completed WQE:
// it must be counted and coalesced, never delivered as a second CQE.
func TestDupAckCoalescing(t *testing.T) {
	eng, a, b, _ := loopRig(t, CX4)
	var comps []Completion
	connect(t, a, b, func(c Completion) { comps = append(comps, c) })
	data := make([]byte, 64)
	if err := a.PostSend(1, &WQE{WRID: 9, Op: OpWrite, LocalData: data,
		RemoteKey: 77, RemoteAddr: b.mrs[77].Base, Length: len(data)}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(comps) != 1 {
		t.Fatalf("completions = %d", len(comps))
	}
	// A retransmission's second ACK arrives after the first completed.
	a.HandleIngress(&Message{Op: OpWrite, SrcQPN: 2, DstQPN: 1, Seq: 0, IsResp: true,
		Status: StatusOK, PSN: 0, AckPSN: 0})
	eng.Run()
	if len(comps) != 1 {
		t.Fatalf("duplicate ACK delivered a second CQE: completions = %d", len(comps))
	}
	if a.Counters().DupAcks != 1 {
		t.Fatalf("DupAcks = %d, want 1", a.Counters().DupAcks)
	}
}

// blackholeRun drives one write into a fully lossy link and returns the
// error CQE and its completion time.
func blackholeRun(t *testing.T) (Completion, *NIC) {
	t.Helper()
	eng, a, b, ab, _ := linkedRig(t, CX4, 0)
	plan := fabric.UniformLoss(sim.DeriveSeed(42, 0), 1.0)
	ab.SetFaultPlan(&plan)
	var comps []Completion
	connect(t, a, b, func(c Completion) { comps = append(comps, c) })
	if err := a.SetQPRetry(1, 2*sim.Microsecond, 5); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64)
	if err := a.PostSend(1, &WQE{WRID: 1, Op: OpWrite, LocalData: data,
		RemoteKey: 77, RemoteAddr: b.mrs[77].Base, Length: len(data)}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(comps) != 1 {
		t.Fatalf("completions = %d", len(comps))
	}
	if got := a.Counters().Timeouts; got != 5 {
		t.Fatalf("Timeouts = %d, want 5", got)
	}
	if got := a.Counters().Retransmits; got != 5 {
		t.Fatalf("Retransmits = %d, want 5", got)
	}
	if got := a.Counters().RetryExc; got != 1 {
		t.Fatalf("RetryExc = %d, want 1", got)
	}
	return comps[0], a
}

// TestRetryExhaustionBackoffDeterminism checks the full failure path: a
// blackholed QP walks the exponential backoff schedule, fails with a
// StatusRetryExcErr CQE, rejects further posts — and two runs under the same
// sim.DeriveSeed land on the identical virtual completion time.
func TestRetryExhaustionBackoffDeterminism(t *testing.T) {
	c1, a1 := blackholeRun(t)
	c2, _ := blackholeRun(t)
	if c1.Status != StatusRetryExcErr {
		t.Fatalf("status = %v, want RETRY_EXC_ERR", c1.Status)
	}
	if c1.DoneTime != c2.DoneTime {
		t.Fatalf("backoff schedule nondeterministic: %v vs %v", c1.DoneTime, c2.DoneTime)
	}
	// Exponential backoff: failure cannot precede base*(1+2+4+8+16+32).
	if min63 := c1.PostTime.Add(63 * 2 * sim.Microsecond); c1.DoneTime < min63 {
		t.Fatalf("failed at %v, before the backed-off schedule allows (%v)", c1.DoneTime, min63)
	}
	if !a1.QPFailed(1) {
		t.Fatal("QP not marked failed after retry exhaustion")
	}
	err := a1.PostSend(1, &WQE{WRID: 2, Op: OpWrite, LocalData: make([]byte, 8),
		RemoteKey: 77, RemoteAddr: 0, Length: 8})
	if err == nil {
		t.Fatal("PostSend on a failed QP succeeded")
	}
}

// TestByteConservationUnderLoss: at any loss rate < 100 % (here up to 50 %
// each way), every posted write completes OK and lands in responder memory
// exactly once — bytes are neither lost nor duplicated by the go-back-N
// layer. testing/quick drives loss rate and RNG seeds.
func TestByteConservationUnderLoss(t *testing.T) {
	const msgs, msgLen = 20, 64
	prop := func(seed int64, lossRaw uint16) bool {
		loss := float64(lossRaw%5000) / 10000 // 0 .. 0.4999
		eng := sim.NewEngine(1)
		hA := host.New(eng, host.H2)
		hB := host.New(eng, host.H3)
		a := New(eng, "a", CX4, hA, 0)
		b := New(eng, "b", CX4, hB, 0)
		ab := fabric.NewLink(eng, "a->b", CX4.LineRateGbps, 200*sim.Nanosecond, 0, Deliver)
		ba := fabric.NewLink(eng, "b->a", CX4.LineRateGbps, 200*sim.Nanosecond, 0, Deliver)
		a.AddPeerLink(b, ab)
		b.AddPeerLink(a, ba)
		planAB := fabric.UniformLoss(sim.DeriveSeed(seed, 0), loss)
		planBA := fabric.UniformLoss(sim.DeriveSeed(seed, 1), loss)
		ab.SetFaultPlan(&planAB)
		ba.SetFaultPlan(&planBA)
		region, err := hB.Alloc(2<<20, host.Page2M, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.RegisterMR(MRInfo{Key: 77, Base: region.Base(), Size: region.Size(),
			Region: region, PageSize: uint64(host.Page2M), RemoteWrite: true}); err != nil {
			t.Fatal(err)
		}
		var okComps int
		var recvBytes int
		if err := a.CreateQP(1, func(c Completion) {
			if c.Status == StatusOK {
				okComps++
			}
		}, nil); err != nil {
			t.Fatal(err)
		}
		if err := b.CreateQP(2, nil, func(ev RecvEvent) { recvBytes += ev.Bytes }); err != nil {
			t.Fatal(err)
		}
		if err := a.ConnectQP(1, b, 2); err != nil {
			t.Fatal(err)
		}
		if err := b.ConnectQP(2, a, 1); err != nil {
			t.Fatal(err)
		}
		if err := a.SetQPRetry(1, 5*sim.Microsecond, 40); err != nil {
			t.Fatal(err)
		}
		data := make([]byte, msgLen)
		for i := 0; i < msgs; i++ {
			if err := a.PostSend(1, &WQE{WRID: uint64(i), Op: OpWrite, LocalData: data,
				RemoteKey: 77, RemoteAddr: region.Base(), Length: msgLen}); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run()
		return okComps == msgs && recvBytes == msgs*msgLen
	}
	cfg := &quick.Config{
		MaxCount: 25,
		// Fixed source: the property is deterministic run to run.
		Rand: rand.New(rand.NewSource(7)),
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptionDiscardedAndRecovered: corrupted packets are dropped before
// parsing (RxCorrupt counts them) and the transport recovers them like loss.
func TestCorruptionDiscardedAndRecovered(t *testing.T) {
	eng, a, b, ab, _ := linkedRig(t, CX4, 0)
	plan := fabric.FaultPlan{Seed: 3}
	for tc := range plan.CorruptProb {
		plan.CorruptProb[tc] = 0.25
	}
	ab.SetFaultPlan(&plan)
	var comps []Completion
	connect(t, a, b, func(c Completion) { comps = append(comps, c) })
	if err := a.SetQPRetry(1, 10*sim.Microsecond, 20); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 128)
	for i := 0; i < 24; i++ {
		if err := a.PostSend(1, &WQE{WRID: uint64(i), Op: OpWrite, LocalData: data,
			RemoteKey: 77, RemoteAddr: b.mrs[77].Base, Length: len(data)}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(comps) != 24 {
		t.Fatalf("completions = %d", len(comps))
	}
	for _, c := range comps {
		if c.Status != StatusOK {
			t.Fatalf("completion %+v", c)
		}
	}
	if b.Counters().RxCorrupt == 0 {
		t.Fatal("no corrupted packets discarded at 25% corruption")
	}
}
