package nic

// Cache is a set-associative on-NIC cache with LRU replacement, used for
// the MTT (memory translation table). Pythia's persistent covert channel
// works by evicting victim MTT entries and timing the refill; Ragnar's
// volatile channels do not rely on it, but the cache must exist for the
// baseline comparison and because cold-start misses shape real latency
// traces. QP/MR contexts live in the capacity-limited ContextCache below.
type Cache struct {
	sets    int
	ways    int
	tags    [][]uint64
	valid   [][]bool
	lruTick [][]uint64
	tick    uint64

	hits   uint64
	misses uint64
}

// NewCache builds a cache with the given total entries and associativity.
// Entries must be a multiple of ways.
func NewCache(entries, ways int) *Cache {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("nic: cache entries must be a positive multiple of ways")
	}
	sets := entries / ways
	c := &Cache{sets: sets, ways: ways}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.lruTick = make([][]uint64, sets)
	for i := 0; i < sets; i++ {
		c.tags[i] = make([]uint64, ways)
		c.valid[i] = make([]bool, ways)
		c.lruTick[i] = make([]uint64, ways)
	}
	return c
}

func (c *Cache) set(key uint64) int { return int(mix(key) % uint64(c.sets)) }

// mix is a 64-bit finaliser (splitmix64) so dense keys spread across sets.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Access touches key and reports whether it hit. On a miss the key is
// installed, evicting the set's LRU way.
func (c *Cache) Access(key uint64) bool {
	s := c.set(key)
	c.tick++
	for w := 0; w < c.ways; w++ {
		if c.valid[s][w] && c.tags[s][w] == key {
			c.lruTick[s][w] = c.tick
			c.hits++
			return true
		}
	}
	c.misses++
	victim := 0
	for w := 1; w < c.ways; w++ {
		if !c.valid[s][w] {
			victim = w
			break
		}
		if c.lruTick[s][w] < c.lruTick[s][victim] {
			victim = w
		}
	}
	if !c.valid[s][victim] {
		// Prefer an invalid way anywhere in the set.
		for w := 0; w < c.ways; w++ {
			if !c.valid[s][w] {
				victim = w
				break
			}
		}
	}
	c.tags[s][victim] = key
	c.valid[s][victim] = true
	c.lruTick[s][victim] = c.tick
	return false
}

// Contains reports whether key is resident without touching LRU state.
func (c *Cache) Contains(key uint64) bool {
	s := c.set(key)
	for w := 0; w < c.ways; w++ {
		if c.valid[s][w] && c.tags[s][w] == key {
			return true
		}
	}
	return false
}

// Evict removes key if resident, reporting whether it was.
func (c *Cache) Evict(key uint64) bool {
	s := c.set(key)
	for w := 0; w < c.ways; w++ {
		if c.valid[s][w] && c.tags[s][w] == key {
			c.valid[s][w] = false
			return true
		}
	}
	return false
}

// Flush invalidates the whole cache.
func (c *Cache) Flush() {
	for s := range c.valid {
		for w := range c.valid[s] {
			c.valid[s][w] = false
		}
	}
}

// Stats returns cumulative hits and misses.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// Sets returns the number of sets, Ways the associativity.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the cache associativity.
func (c *Cache) Ways() int { return c.ways }

// SetIndex returns the set a key maps to. Pythia-style attacks use this
// reverse-engineered mapping to build minimal eviction sets.
func (c *Cache) SetIndex(key uint64) int { return c.set(key) }

// MTTKey builds the translation-cache key for a page of an MR — the hash
// the TPU uses internally, which Pythia reverse engineering recovered.
func MTTKey(mrKey uint32, pageNumber uint64) uint64 {
	return uint64(mrKey)<<40 ^ pageNumber
}

// ---------------------------------------------------------------------------
// ICM context cache
// ---------------------------------------------------------------------------

// ContextCache is the capacity-limited on-NIC context store for QP and MR
// contexts (QPC/MPT): the ICM model. Unlike the set-associative Cache above
// (kept for the MTT, whose set-index mapping Pythia's eviction sets depend
// on), connection contexts on real adapters live in a fully-associative
// cached window over host ICM memory — what bounds an adapter is the total
// number of resident contexts, and a miss costs a DMA fetch over PCIe. That
// finite capacity is exactly the surface the noisy-neighbor exhaustion
// attacks target: an aggressor holding more QPs/MRs than fit evicts the
// victims' contexts, so every victim operation pays the fetch penalty.
//
// The cache is an LRU over a map plus an intrusive doubly-linked list of
// pre-allocated nodes: a hit is one map lookup and a list splice, with zero
// allocations (benchmark-guarded); misses reuse evicted slots once the
// cache reaches capacity.
type ContextCache struct {
	capacity int
	nodes    []ctxNode
	index    map[uint64]int32
	head     int32 // MRU
	tail     int32 // LRU
	free     []int32

	hits      uint64
	misses    uint64
	evictions uint64
}

type ctxNode struct {
	key  uint64
	prev int32
	next int32
}

// NewContextCache builds a context cache holding up to entries contexts.
func NewContextCache(entries int) *ContextCache {
	if entries <= 0 {
		panic("nic: context cache capacity must be positive")
	}
	return &ContextCache{
		capacity: entries,
		nodes:    make([]ctxNode, 0, entries),
		index:    make(map[uint64]int32, entries),
		head:     -1,
		tail:     -1,
	}
}

// QPCtxKey names a QP context in the shared ICM cache.
func QPCtxKey(qpn uint32) uint64 { return 1<<62 | uint64(qpn) }

// MRCtxKey names an MR (MPT) context in the shared ICM cache.
func MRCtxKey(rkey uint32) uint64 { return 2<<62 | uint64(rkey) }

// Access touches key and reports whether it hit. On a miss the key is
// installed as MRU; when the cache is at capacity the LRU context is
// evicted to make room (one eviction per faulting miss, never more).
func (c *ContextCache) Access(key uint64) bool {
	if i, ok := c.index[key]; ok {
		c.hits++
		c.moveToFront(i)
		return true
	}
	c.misses++
	var slot int32
	switch {
	case len(c.free) > 0:
		slot = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
	case len(c.nodes) < c.capacity:
		c.nodes = append(c.nodes, ctxNode{})
		slot = int32(len(c.nodes) - 1)
	default:
		slot = c.tail
		c.evictions++
		delete(c.index, c.nodes[slot].key)
		c.unlink(slot)
	}
	c.nodes[slot].key = key
	c.index[key] = slot
	c.pushFront(slot)
	return false
}

// Contains reports whether key is resident without touching LRU state.
func (c *ContextCache) Contains(key uint64) bool {
	_, ok := c.index[key]
	return ok
}

// Evict removes key if resident, reporting whether it was. Explicit
// invalidations (QP destroy, MR dereg) do not count as capacity evictions.
func (c *ContextCache) Evict(key uint64) bool {
	i, ok := c.index[key]
	if !ok {
		return false
	}
	delete(c.index, key)
	c.unlink(i)
	c.free = append(c.free, i)
	return true
}

// Flush invalidates every resident context. Counters are preserved.
func (c *ContextCache) Flush() {
	for key, i := range c.index {
		delete(c.index, key)
		c.free = append(c.free, i)
	}
	c.head, c.tail = -1, -1
}

// Len reports resident contexts; Cap the configured capacity.
func (c *ContextCache) Len() int { return len(c.index) }

// Cap returns the configured capacity.
func (c *ContextCache) Cap() int { return c.capacity }

// Stats returns cumulative hits, misses and capacity evictions. Every
// Access is exactly one hit or one miss, so hits+misses == lookups.
func (c *ContextCache) Stats() (hits, misses, evictions uint64) {
	return c.hits, c.misses, c.evictions
}

// Keys returns the resident keys in MRU→LRU order (tests pin the LRU
// replacement order with it).
func (c *ContextCache) Keys() []uint64 {
	out := make([]uint64, 0, len(c.index))
	for i := c.head; i >= 0; i = c.nodes[i].next {
		out = append(out, c.nodes[i].key)
	}
	return out
}

func (c *ContextCache) moveToFront(i int32) {
	if c.head == i {
		return
	}
	c.unlink(i)
	c.pushFront(i)
}

func (c *ContextCache) pushFront(i int32) {
	c.nodes[i].prev = -1
	c.nodes[i].next = c.head
	if c.head >= 0 {
		c.nodes[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

func (c *ContextCache) unlink(i int32) {
	p, nx := c.nodes[i].prev, c.nodes[i].next
	if p >= 0 {
		c.nodes[p].next = nx
	} else {
		c.head = nx
	}
	if nx >= 0 {
		c.nodes[nx].prev = p
	} else {
		c.tail = p
	}
}
