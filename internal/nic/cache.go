package nic

// Cache is a set-associative on-NIC context cache with LRU replacement,
// used for the MTT (memory translation table) and QPC (queue pair context)
// structures. Pythia's persistent covert channel works by evicting victim
// MTT entries and timing the refill; Ragnar's volatile channels do not rely
// on it, but the cache must exist for the baseline comparison and because
// cold-start misses shape real latency traces.
type Cache struct {
	sets    int
	ways    int
	tags    [][]uint64
	valid   [][]bool
	lruTick [][]uint64
	tick    uint64

	hits   uint64
	misses uint64
}

// NewCache builds a cache with the given total entries and associativity.
// Entries must be a multiple of ways.
func NewCache(entries, ways int) *Cache {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("nic: cache entries must be a positive multiple of ways")
	}
	sets := entries / ways
	c := &Cache{sets: sets, ways: ways}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.lruTick = make([][]uint64, sets)
	for i := 0; i < sets; i++ {
		c.tags[i] = make([]uint64, ways)
		c.valid[i] = make([]bool, ways)
		c.lruTick[i] = make([]uint64, ways)
	}
	return c
}

func (c *Cache) set(key uint64) int { return int(mix(key) % uint64(c.sets)) }

// mix is a 64-bit finaliser (splitmix64) so dense keys spread across sets.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Access touches key and reports whether it hit. On a miss the key is
// installed, evicting the set's LRU way.
func (c *Cache) Access(key uint64) bool {
	s := c.set(key)
	c.tick++
	for w := 0; w < c.ways; w++ {
		if c.valid[s][w] && c.tags[s][w] == key {
			c.lruTick[s][w] = c.tick
			c.hits++
			return true
		}
	}
	c.misses++
	victim := 0
	for w := 1; w < c.ways; w++ {
		if !c.valid[s][w] {
			victim = w
			break
		}
		if c.lruTick[s][w] < c.lruTick[s][victim] {
			victim = w
		}
	}
	if !c.valid[s][victim] {
		// Prefer an invalid way anywhere in the set.
		for w := 0; w < c.ways; w++ {
			if !c.valid[s][w] {
				victim = w
				break
			}
		}
	}
	c.tags[s][victim] = key
	c.valid[s][victim] = true
	c.lruTick[s][victim] = c.tick
	return false
}

// Contains reports whether key is resident without touching LRU state.
func (c *Cache) Contains(key uint64) bool {
	s := c.set(key)
	for w := 0; w < c.ways; w++ {
		if c.valid[s][w] && c.tags[s][w] == key {
			return true
		}
	}
	return false
}

// Evict removes key if resident, reporting whether it was.
func (c *Cache) Evict(key uint64) bool {
	s := c.set(key)
	for w := 0; w < c.ways; w++ {
		if c.valid[s][w] && c.tags[s][w] == key {
			c.valid[s][w] = false
			return true
		}
	}
	return false
}

// Flush invalidates the whole cache.
func (c *Cache) Flush() {
	for s := range c.valid {
		for w := range c.valid[s] {
			c.valid[s][w] = false
		}
	}
}

// Stats returns cumulative hits and misses.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// Sets returns the number of sets, Ways the associativity.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the cache associativity.
func (c *Cache) Ways() int { return c.ways }

// SetIndex returns the set a key maps to. Pythia-style attacks use this
// reverse-engineered mapping to build minimal eviction sets.
func (c *Cache) SetIndex(key uint64) int { return c.set(key) }

// MTTKey builds the translation-cache key for a page of an MR — the hash
// the TPU uses internally, which Pythia reverse engineering recovered.
func MTTKey(mrKey uint32, pageNumber uint64) uint64 {
	return uint64(mrKey)<<40 ^ pageNumber
}
