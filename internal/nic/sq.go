package nic

// Send-queue state machine: the RedN WAIT/ENABLE surface.
//
// A QP's send queue is an explicit staged ring with a doorbell cursor.
// Posting (staging) a WQE and enabling it are separate steps: the NIC
// executes from the SQ head and advances only past enabled entries. The
// legacy PostSend stages and rings in one call, so every pre-existing
// workload dispatches each WQE synchronously inside PostSend exactly as
// before — the refactor is invisible until a caller splits the two steps
// (pinned by TestPostVsStageRingByteIdentical and the sqseam_cx5 golden).
//
// On top of the ring sit the two management opcodes RedN builds chains
// from ("RDMA is Turing complete", PAPERS.md):
//
//   - OpWait blocks the SQ head until a CQ's consumer counter reaches a
//     threshold. The counter is the cross-QP coupling point: QP A can wait
//     on QP B's completions, which is how dependent chains sequence without
//     host involvement.
//   - OpEnable advances another QP's doorbell by n entries (0 = all staged),
//     triggering that QP's own head advance.
//
// Both are management WQEs: they occupy the doorbell/SQE-fetch/requester-PU
// pipeline like any post and retire with a local CQE, but never touch the
// wire. Self-modification closes the loop: an RDMA WRITE (or a READ payload
// landing via LocalKey) that covers a registered SQ window rewrites the
// fields of staged-but-not-yet-enabled WQEs before the doorbell reaches
// them, which is what makes the chains data-dependent.

import (
	"fmt"

	"github.com/thu-has/ragnar/internal/fabric"
	"github.com/thu-has/ragnar/internal/trace"
)

// CQCounter is a CQ consumer index: it counts completions delivered on the
// CQs it is bound to, and wakes send queues whose head WAIT is armed on it.
// The verbs layer creates one per CQ and binds it to the CQ's QPs.
type CQCounter struct {
	count   uint64
	waiters []sqWaiter
}

type sqWaiter struct {
	n  *NIC
	qp *qpState
}

// NewCQCounter allocates a consumer counter.
func NewCQCounter() *CQCounter { return &CQCounter{} }

// Count returns the number of completions delivered so far.
func (c *CQCounter) Count() uint64 {
	if c == nil {
		return 0
	}
	return c.count
}

// bump records one delivered completion and re-evaluates every send queue
// whose head WAIT is armed on this counter. A woken queue re-arms itself if
// the threshold is still ahead.
func (c *CQCounter) bump() {
	c.count++
	if len(c.waiters) == 0 {
		return
	}
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		w.qp.sqArmed = false
		w.n.counters.WaitWakes++
		w.n.advanceSQ(w.qp)
	}
}

// BindQPCounter attaches a CQ consumer counter to a QP: every completion
// delivered on the QP bumps it. The verbs layer calls this right after
// CreateQP so WAIT WQEs can observe the CQ's consumer index.
func (n *NIC) BindQPCounter(qpn uint32, c *CQCounter) error {
	qp, ok := n.qps[qpn]
	if !ok {
		return fmt.Errorf("nic %s: unknown QP %d", n.Name, qpn)
	}
	qp.cqc = c
	return nil
}

// cqeDelivered is the single post-CQE hook: every path that delivers a
// completion on a QP (wire response, management retire, error flush) calls
// it after onComplete so armed WAITs observe a consistent consumer index.
func (n *NIC) cqeDelivered(qp *qpState) {
	if qp.cqc != nil {
		qp.cqc.bump()
	}
}

// StageSend validates and stages a WQE on the QP's send queue without
// ringing the doorbell: the entry sits not-yet-enabled (rewritable through a
// registered SQ window) until RingDoorbell or a peer's ENABLE covers it.
func (n *NIC) StageSend(qpn uint32, wqe *WQE) error {
	qp, err := n.stageChecked(qpn, wqe)
	if err != nil {
		return err
	}
	n.encodeStaged(qp, len(qp.sq)-1)
	return nil
}

// stageChecked runs PostSend's admission checks and appends the WQE to the
// staged ring.
func (n *NIC) stageChecked(qpn uint32, wqe *WQE) (*qpState, error) {
	qp, ok := n.qps[qpn]
	if !ok {
		return nil, fmt.Errorf("nic %s: unknown QP %d", n.Name, qpn)
	}
	if qp.peer == nil && wqe.Op != OpWait && wqe.Op != OpEnable {
		return nil, fmt.Errorf("nic %s: QP %d not connected", n.Name, qpn)
	}
	if qp.failed {
		return nil, fmt.Errorf("nic %s: QP %d in error state (retry exhausted)", n.Name, qpn)
	}
	if wqe.TC < 0 || wqe.TC >= fabric.NumTCs {
		return nil, fmt.Errorf("nic %s: invalid TC %d", n.Name, wqe.TC)
	}
	qp.sq = append(qp.sq, wqe)
	return qp, nil
}

// RingDoorbell advances a QP's doorbell cursor by k entries (k <= 0 enables
// everything staged) and lets the send queue advance. The cursor never
// exceeds the staged count.
func (n *NIC) RingDoorbell(qpn uint32, k int) error {
	qp, ok := n.qps[qpn]
	if !ok {
		return fmt.Errorf("nic %s: unknown QP %d", n.Name, qpn)
	}
	n.ringQP(qp, k)
	return nil
}

func (n *NIC) ringQP(qp *qpState, k int) {
	if k <= 0 {
		k = len(qp.sq) - qp.sqEnabled
	}
	qp.sqEnabled += k
	if qp.sqEnabled > len(qp.sq) {
		qp.sqEnabled = len(qp.sq)
	}
	n.advanceSQ(qp)
}

// SQDepth reports a QP's staged and enabled entry counts (enabled never
// exceeds staged — the fuzz harness pins this invariant).
func (n *NIC) SQDepth(qpn uint32) (staged, enabled int) {
	qp := n.qps[qpn]
	if qp == nil {
		return 0, 0
	}
	return len(qp.sq), qp.sqEnabled
}

// advanceSQ executes staged entries from the head while the doorbell covers
// them. A WAIT whose threshold is ahead arms the queue on the counter and
// stops the advance; the counter's bump re-enters here. Once the ring fully
// drains the indices reset, so a long-lived QP's slice never grows without
// bound and SQ-window slot 0 maps to the next staged entry again.
func (n *NIC) advanceSQ(qp *qpState) {
	if qp.sqArmed {
		return
	}
	for qp.sqHead < qp.sqEnabled {
		wqe := qp.sq[qp.sqHead]
		switch wqe.Op {
		case OpWait:
			if wqe.WaitCQ != nil && wqe.WaitCQ.count < wqe.WaitThresh {
				qp.sqArmed = true
				wqe.WaitCQ.waiters = append(wqe.WaitCQ.waiters, sqWaiter{n: n, qp: qp})
				return
			}
			qp.sqHead++
			n.counters.WaitWQEs++
			n.execManagement(qp, wqe)
		case OpEnable:
			qp.sqHead++
			n.counters.EnableWQEs++
			n.execManagement(qp, wqe)
		default:
			qp.sqHead++
			if qp.failed {
				n.flushStaged(qp, wqe)
				continue
			}
			n.dispatchWQE(qp, wqe)
		}
	}
	if qp.sqHead == len(qp.sq) && qp.sqHead > 0 {
		qp.sq = qp.sq[:0]
		qp.sqHead, qp.sqEnabled = 0, 0
	}
}

// execManagement runs a WAIT (already satisfied) or ENABLE through the
// local management pipeline: doorbell, SQE fetch, requester PU, then the
// action and a CQE — the same stages a real post pays, minus the wire.
func (n *NIC) execManagement(qp *qpState, wqe *WQE) {
	qp.posted++
	post := n.eng.Now()
	n.eng.After(n.prof.DoorbellTime, func() {
		n.hostDMA.Submit(n.dmaTransferTime(64)+n.prof.SQEFetchTime, 0, func() {
			n.txPU.Submit(n.prof.TxPUTime, 0, func() {
				if wqe.Op == OpEnable {
					if tgt := n.qps[wqe.TargetQPN]; tgt != nil {
						n.ringQP(tgt, wqe.EnableCount)
					}
				}
				n.hostDMA.Submit(n.dmaTransferTime(32)+n.prof.CQEWriteTime, 0, func() {
					qp.completed++
					n.rec.Emit(trace.Event{At: int64(n.eng.Now()), Kind: trace.KindCQE,
						Actor: n.cqeActor, QPN: qp.qpn, TC: int8(wqe.TC),
						Dur: int64(n.eng.Now().Sub(post)), Aux: uint64(StatusOK)})
					if qp.onComplete != nil {
						qp.onComplete(Completion{
							QPN: qp.qpn, WRID: wqe.WRID, Op: wqe.Op,
							Status: StatusOK, PostTime: post, DoneTime: n.eng.Now(),
						})
					}
					n.cqeDelivered(qp)
				})
			})
		})
	})
}

// flushStaged retires a staged entry on a failed QP with an error CQE (the
// entry was admitted before the retry budget ran out; ibv flushes the rest
// of the queue with IBV_WC_WR_FLUSH_ERR — we reuse the retry status).
func (n *NIC) flushStaged(qp *qpState, wqe *WQE) {
	post := n.eng.Now()
	n.hostDMA.Submit(n.dmaTransferTime(32)+n.prof.CQEWriteTime, 0, func() {
		qp.completed++
		n.rec.Emit(trace.Event{At: int64(n.eng.Now()), Kind: trace.KindCQE,
			Actor: n.cqeActor, QPN: qp.qpn, TC: int8(wqe.TC),
			Dur: int64(n.eng.Now().Sub(post)), Aux: uint64(StatusRetryExcErr)})
		if qp.onComplete != nil {
			qp.onComplete(Completion{
				QPN: qp.qpn, WRID: wqe.WRID, Op: wqe.Op,
				Status: StatusRetryExcErr, Bytes: wqe.Length,
				PostTime: post, DoneTime: n.eng.Now(),
			})
		}
		n.cqeDelivered(qp)
	})
}

// --- SQ windows: WQE self-modification ---

// SQSlotBytes is the in-memory footprint of one staged WQE inside a
// registered SQ window, matching a real SQE stride.
const SQSlotBytes = 64

// Field offsets inside a slot (little-endian):
//
//	[ 0: 4) opcode      [ 4: 8) length      [ 8:16) remote addr
//	[16:20) rkey        [20:24) target QPN  [24:32) compare/add
//	[32:40) swap        [40:48) wait thresh [48:52) enable count
//
// Host-side references (WRID, local buffers, the wait counter binding) are
// not encoded — a remote write can redirect an entry, not forge new local
// privileges. The offsets are exported: the rednlite assembler computes
// patch targets from them (e.g. a pointer-chase read lands a remote address
// straight into the next hop's SQOffRemoteAddr field).
const (
	SQOffOpcode     = 0
	SQOffLength     = 4
	SQOffRemoteAddr = 8
	SQOffRKey       = 16
	SQOffTargetQPN  = 20
	SQOffCompareAdd = 24
	SQOffSwap       = 32
	SQOffWaitThresh = 40
	SQOffEnableCnt  = 48
)

// sqWindow maps a registered MR range onto a QP's staged ring: slot i of
// the window shadows qp.sq[i].
type sqWindow struct {
	qp    *qpState
	mr    *MRInfo
	base  uint64
	slots int
}

// RegisterSQWindow exposes a QP's send queue through a registered MR: slot i
// ([base+64i, base+64(i+1))) shadows staged entry i. Writes landing in the
// window rewrite not-yet-enabled entries; staged entries are encoded into
// the window so partial overwrites compose with the staged fields.
func (n *NIC) RegisterSQWindow(qpn uint32, mrKey uint32, base uint64, slots int) error {
	qp, ok := n.qps[qpn]
	if !ok {
		return fmt.Errorf("nic %s: unknown QP %d", n.Name, qpn)
	}
	mr := n.mrs[mrKey]
	if mr == nil {
		return fmt.Errorf("nic %s: unknown MR key %d", n.Name, mrKey)
	}
	if slots <= 0 || base < mr.Base || base+uint64(slots)*SQSlotBytes > mr.Base+mr.Size {
		return fmt.Errorf("nic %s: SQ window [%d,+%d slots) outside MR %d", n.Name, base, slots, mrKey)
	}
	n.sqWins = append(n.sqWins, sqWindow{qp: qp, mr: mr, base: base, slots: slots})
	return nil
}

// encodeStaged mirrors a freshly staged WQE into every window shadowing the
// QP, so later partial writes (one field) compose with the staged values.
func (n *NIC) encodeStaged(qp *qpState, idx int) {
	if len(n.sqWins) == 0 {
		return
	}
	var slot [SQSlotBytes]byte
	for i := range n.sqWins {
		w := &n.sqWins[i]
		if w.qp != qp || idx >= w.slots || w.mr.Region == nil {
			continue
		}
		wqe := qp.sq[idx]
		put32(slot[SQOffOpcode:], uint32(wqe.Op))
		put32(slot[SQOffLength:], uint32(wqe.Length))
		put64(slot[SQOffRemoteAddr:SQOffRemoteAddr+8], wqe.RemoteAddr)
		put32(slot[SQOffRKey:], wqe.RemoteKey)
		put32(slot[SQOffTargetQPN:], wqe.TargetQPN)
		put64(slot[SQOffCompareAdd:SQOffCompareAdd+8], wqe.CompareAdd)
		put64(slot[SQOffSwap:SQOffSwap+8], wqe.Swap)
		put64(slot[SQOffWaitThresh:SQOffWaitThresh+8], wqe.WaitThresh)
		put32(slot[SQOffEnableCnt:], uint32(wqe.EnableCount))
		w.mr.Region.WriteAt(w.base-w.mr.Base+uint64(idx)*SQSlotBytes, slot[:])
	}
}

// sqPatch re-decodes every not-yet-enabled staged WQE whose window slot
// overlaps a write that just landed at [addr, addr+length). Callers gate on
// len(n.sqWins) > 0, so legacy datapaths never reach here.
func (n *NIC) sqPatch(addr uint64, length int) {
	if length <= 0 {
		return
	}
	end := addr + uint64(length)
	var slot [SQSlotBytes]byte
	for i := range n.sqWins {
		w := &n.sqWins[i]
		wend := w.base + uint64(w.slots)*SQSlotBytes
		if end <= w.base || addr >= wend || w.mr.Region == nil {
			continue
		}
		lo := int(0)
		if addr > w.base {
			lo = int((addr - w.base) / SQSlotBytes)
		}
		hi := int((min64(end, wend) - w.base + SQSlotBytes - 1) / SQSlotBytes)
		for idx := lo; idx < hi; idx++ {
			qp := w.qp
			if idx >= len(qp.sq) || idx < qp.sqEnabled {
				// Only staged-but-not-enabled entries are rewritable: once
				// the doorbell covers an entry the NIC owns it.
				continue
			}
			if err := w.mr.Region.ReadAt(w.base-w.mr.Base+uint64(idx)*SQSlotBytes, slot[:]); err != nil {
				continue
			}
			wqe := qp.sq[idx]
			wqe.Op = Opcode(le32(slot[SQOffOpcode:]))
			wqe.Length = int(le32(slot[SQOffLength:]))
			wqe.RemoteAddr = le64(slot[SQOffRemoteAddr : SQOffRemoteAddr+8])
			wqe.RemoteKey = le32(slot[SQOffRKey:])
			wqe.TargetQPN = le32(slot[SQOffTargetQPN:])
			wqe.CompareAdd = le64(slot[SQOffCompareAdd : SQOffCompareAdd+8])
			wqe.Swap = le64(slot[SQOffSwap : SQOffSwap+8])
			wqe.WaitThresh = le64(slot[SQOffWaitThresh : SQOffWaitThresh+8])
			wqe.EnableCount = int(le32(slot[SQOffEnableCnt:]))
			n.counters.SelfModifies++
		}
	}
}

// landLocal places an inbound READ payload at the WQE's LocalKey/LocalAddr
// destination (a registered local MR) and runs any SQ-window patches the
// landing covers. Returns silently when the target is out of bounds — the
// data still reached LocalData if set, matching a scatter into an invalid
// lkey being caught at post time in real verbs.
func (n *NIC) landLocal(wqe *WQE, data []byte) {
	mr := n.mrs[wqe.LocalKey]
	if mr == nil || mr.Region == nil || wqe.LocalAddr < mr.Base ||
		wqe.LocalAddr+uint64(len(data)) > mr.Base+mr.Size {
		return
	}
	if err := mr.Region.WriteAt(wqe.LocalAddr-mr.Base, data); err != nil {
		return
	}
	if len(n.sqWins) > 0 {
		n.sqPatch(wqe.LocalAddr, len(data))
	}
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func put32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
