package nic

import (
	"fmt"
	"sync/atomic"

	"github.com/thu-has/ragnar/internal/fabric"
	"github.com/thu-has/ragnar/internal/host"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/trace"
	"github.com/thu-has/ragnar/internal/wire"
)

// Opcode is an RDMA operation code (the Grain-II parameter).
type Opcode int

// Supported opcodes. OpWait and OpEnable are management WQEs (the RedN
// chain-sequencing verbs): they execute on the local SQ state machine and
// never reach the wire.
const (
	OpWrite Opcode = iota
	OpRead
	OpSend
	OpAtomicFAA
	OpAtomicCAS
	OpWait
	OpEnable
)

func (o Opcode) String() string {
	switch o {
	case OpWrite:
		return "WRITE"
	case OpRead:
		return "READ"
	case OpSend:
		return "SEND"
	case OpAtomicFAA:
		return "ATOMIC_FAA"
	case OpAtomicCAS:
		return "ATOMIC_CAS"
	case OpWait:
		return "WAIT"
	case OpEnable:
		return "ENABLE"
	}
	return fmt.Sprintf("OP(%d)", int(o))
}

// Status reports the outcome of a work request.
type Status int

// Completion statuses.
const (
	StatusOK Status = iota
	StatusRemoteAccessError
	StatusBadQP
	// StatusSeqNak is a transport-level NAK (PSN sequence error): the
	// responder saw a gap in the PSN stream. It never surfaces as a CQE —
	// the requester rewinds and retransmits (go-back-N).
	StatusSeqNak
	// StatusRetryExcErr surfaces retry exhaustion as an error CQE, the
	// simulator's IBV_WC_RETRY_EXC_ERR. The QP moves to the error state.
	StatusRetryExcErr
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusRemoteAccessError:
		return "REMOTE_ACCESS_ERROR"
	case StatusBadQP:
		return "BAD_QP"
	case StatusSeqNak:
		return "NAK_SEQ_ERR"
	case StatusRetryExcErr:
		return "RETRY_EXC_ERR"
	}
	return fmt.Sprintf("STATUS(%d)", int(s))
}

// Message is the unit exchanged between NICs over the fabric. A request
// carries the operation; a response carries the matching Seq with IsResp
// set.
type Message struct {
	Op         Opcode
	SrcQPN     uint32
	DstQPN     uint32
	RKey       uint32
	RemoteAddr uint64
	Length     int
	Data       []byte
	Seq        uint64
	IsResp     bool
	Status     Status
	// PSN is the QP's 24-bit packet sequence number: assigned per request
	// by the requester, echoed on the response. AckPSN is the cumulative
	// acknowledgement a response carries (for a NAK: the last in-order PSN
	// the responder received).
	PSN    uint32
	AckPSN uint32
	// Atomic operands.
	CompareAdd uint64
	Swap       uint64
	TC         int

	// admitted marks a request that holds one of the responder's per-tenant
	// ISO credits (see isoAdmit); respond() releases the credit exactly once.
	// Always false outside isolation profiles.
	admitted bool
}

// WQE is a posted work queue element.
type WQE struct {
	WRID       uint64
	Op         Opcode
	LocalData  []byte // payload for WRITE/SEND; receive buffer for READ
	RemoteKey  uint32
	RemoteAddr uint64
	Length     int
	TC         int
	CompareAdd uint64
	Swap       uint64

	// Management fields (OpWait/OpEnable): the counter a WAIT blocks on and
	// its threshold; the QP an ENABLE advances and by how many entries
	// (0 = everything staged).
	WaitCQ      *CQCounter
	WaitThresh  uint64
	TargetQPN   uint32
	EnableCount int

	// Local landing target for READs: when LocalKey names a registered MR,
	// the payload is also placed at LocalAddr inside it (and may patch a
	// registered SQ window there). Zero = host-buffer-only, the legacy path.
	LocalKey  uint32
	LocalAddr uint64
}

// Completion is delivered to the verbs layer when a WQE finishes.
type Completion struct {
	QPN      uint32
	WRID     uint64
	Op       Opcode
	Status   Status
	Bytes    int
	Result   uint64 // original value for atomics
	PostTime sim.Time
	DoneTime sim.Time
}

// RecvEvent is delivered when an inbound SEND lands in a posted receive
// buffer or an inbound WRITE completes (for apps that watch memory).
type RecvEvent struct {
	QPN    uint32
	Op     Opcode
	Bytes  int
	Data   []byte
	SrcQPN uint32
}

// MRInfo registers a memory region with the responder pipeline.
type MRInfo struct {
	Key         uint32
	Base        uint64
	Size        uint64
	Region      *host.Region
	PageSize    uint64
	RemoteRead  bool
	RemoteWrite bool
	Atomic      bool
}

type qpState struct {
	qpn        uint32
	peer       *NIC
	peerQPN    uint32
	onComplete func(Completion)
	onRecv     func(RecvEvent)
	recvQueue  [][]byte
	posted     uint64
	completed  uint64

	// Requester-side go-back-N transport state.
	nextPSN       uint32     // next PSN to assign (24-bit)
	outstanding   []*pending // in PSN order; retransmit set on timeout/NAK
	retries       int        // consecutive timeouts without progress
	rtxTimer      sim.Event  // pending retransmit timeout (zero/stale when idle)
	retryTimeout  sim.Duration
	retryLimit    int
	progressEpoch uint64 // bumped on every completion
	rewindEpoch   uint64 // progressEpoch at the last NAK-triggered rewind
	failed        bool   // retry budget exhausted: QP is in the error state

	// Responder-side transport state.
	epsn            uint32 // next expected PSN
	nakArmed        bool   // one NAK-seq per gap until the stream recovers
	atomicReplayOK  bool   // duplicate-atomic replay record (IB replay buffer)
	atomicReplayPSN uint32
	atomicReplayVal uint64

	// Send-queue state machine (see sq.go): the staged ring, the doorbell
	// cursor (entries below sqEnabled may execute), whether the head WAIT is
	// armed on a counter, and the CQ consumer counter completions bump.
	sq        []*WQE
	sqHead    int
	sqEnabled int
	sqArmed   bool
	cqc       *CQCounter

	// In-order placement gate (the IB responder memory-ordering rule): the
	// ULP-visible effect of each accepted request — memory placement, recv
	// delivery, the response — fires in PSN-acceptance order, even though
	// the execution pipelines behind it (TPU, multi-channel host DMA) can
	// finish out of order. Without this a 16-byte SEND overtakes a 16 KB
	// WRITE accepted just before it, and an upper layer that treats the
	// SEND as a commit record observes the write before its data landed.
	placeNext uint64            // next ticket, assigned at PSN acceptance
	placeHead uint64            // next ticket allowed to fire
	placeWait map[uint64]func() // finished effects blocked behind earlier tickets
}

// place fires a finished request's visible effect as soon as every
// earlier-accepted request on this QP has fired its own, queueing it
// otherwise. Tickets are dense, so the wait map drains strictly in order.
func (qp *qpState) place(ticket uint64, fn func()) {
	if ticket != qp.placeHead {
		if qp.placeWait == nil {
			qp.placeWait = map[uint64]func(){}
		}
		qp.placeWait[ticket] = fn
		return
	}
	fn()
	qp.placeHead++
	for {
		next, ok := qp.placeWait[qp.placeHead]
		if !ok {
			return
		}
		delete(qp.placeWait, qp.placeHead)
		next()
		qp.placeHead++
	}
}

type pending struct {
	wqe         *WQE
	qpn         uint32
	postTime    sim.Time
	seq         uint64
	psn         uint32
	msg         *Message // retained for retransmission
	lastSent    sim.Time // aging base for the retransmit timeout
	retransmits int
}

// Counters aggregates the NIC's ethtool-visible and HARMONIC-visible
// telemetry: Grain-I (per-TC), Grain-II (per-opcode) and Grain-III
// (per-QP/MR) counts.
type Counters struct {
	TxMsgs     map[Opcode]uint64
	RxMsgs     map[Opcode]uint64
	TxBytes    uint64
	RxBytes    uint64
	TxBytesTC  [8]uint64 // Grain-I: per-traffic-class egress bytes
	RxBytesTC  [8]uint64 // Grain-I: per-traffic-class ingress bytes
	PerQPMsgs  map[uint32]uint64
	PerMRBytes map[uint32]uint64
	Responses  uint64
	NAKs       uint64
	// PFCPauses counts per-TC priority-flow-control pause events: the
	// egress queue for a class exceeded the XOFF threshold. This is the
	// native Grain-I signal the paper notes "modern RNIC provides ...
	// to detect and defend Grain-I attacks easily".
	PFCPauses [8]uint64

	// Grain-I loss/reliability observables (ethtool: tx_discards,
	// rp_cnp-style retransmit telemetry).
	//
	// WireDropsTC aggregates per-TC egress wire loss across this NIC's
	// links: tail drops at the egress queue plus FaultPlan in-flight drops.
	// It is refreshed from the links on every Counters() call.
	WireDropsTC [8]uint64
	Retransmits uint64 // requester packets re-sent (timeout or NAK rewind)
	Timeouts    uint64 // retransmit timer expiries
	DupAcks     uint64 // responses for already-completed WQEs, coalesced
	DupReqs     uint64 // duplicate requests seen by the responder
	SeqNaks     uint64 // NAK-sequence-errors sent by the responder
	RetryExc    uint64 // QPs that exhausted their retry budget
	RxCorrupt   uint64 // inbound packets discarded for corruption (ICRC)

	// Abuse observables (the NeVerMore surface). All three are structurally
	// zero under benign operation — random wire loss produces retransmits,
	// NAKs and duplicate ACKs, but never a request for a nonexistent QP, a
	// NAK whose gap head is not outstanding, or a frame at exactly half the
	// PSN space — which is what lets defense.MetricsFeatures separate
	// protocol abuse from the loss grid's benign degradation.
	RxBadQP     uint64 // requests addressed to a QPN this NIC never created
	InvalidNaks uint64 // NAK-seq rejected: gap head not an outstanding PSN
	InvalidAcks uint64 // responses whose PSN disagrees with the pending request
	RxBadPSN    uint64 // requests at the unordered half-space PSN distance

	// Finite-resource observables (the exhaustion surface): ICM context
	// cache traffic, per-page translation misses and completion-queue
	// overruns. Ctx* and MTTMisses are refreshed from the caches on every
	// Counters() call; CQOverruns increments as full CQs drop CQEs.
	CtxHits      uint64 // ICM context cache (QPC+MPT) hits
	CtxMisses    uint64 // ICM context cache misses (each cost a DMA fetch)
	CtxEvictions uint64 // contexts evicted to make room (capacity pressure)
	MTTMisses    uint64 // TPU translation-cache misses
	CQOverruns   uint64 // completions dropped at full CQs

	// Encryption observables (the AES-per-verb pricing model): messages
	// that paid the AES latency and the payload bytes they covered. Both
	// are structurally zero on profiles without the encryption knobs.
	EncOps   uint64
	EncBytes uint64

	// RedN offload observables (the chain surface): WAIT/ENABLE management
	// WQEs executed, armed WAITs woken by a CQ-counter bump, and staged
	// WQEs rewritten in place by a write landing in a registered SQ window.
	// All structurally zero outside offloaded-chain workloads.
	WaitWQEs     uint64
	EnableWQEs   uint64
	WaitWakes    uint64
	SelfModifies uint64
}

func newCounters() Counters {
	return Counters{
		TxMsgs:     make(map[Opcode]uint64),
		RxMsgs:     make(map[Opcode]uint64),
		PerQPMsgs:  make(map[uint32]uint64),
		PerMRBytes: make(map[uint32]uint64),
	}
}

// NIC is one simulated RDMA adapter plugged into a host and an egress link.
type NIC struct {
	Name string

	eng  *sim.Engine
	prof Profile
	hst  *host.Host
	numa int // NUMA node the NIC attaches to

	links map[*NIC]*fabric.Link // egress link per peer NIC
	// multi holds ECMP-style multipath link sets toward a peer (dual-homed
	// hosts on a Clos fabric). The transmit path hashes the message's flow
	// label over the set, so one QP pair sticks to one uplink and never
	// reorders; links[peer] stays populated with the first path as the
	// degenerate route.
	multi map[*NIC][]*fabric.Link

	tpu     *TPU
	tpuSrv  *sim.Server   // the TPU pipeline serialises translations
	qpc     *ContextCache // ICM context cache: QP contexts, plus MR contexts when priced
	hostDMA *sim.Server
	txPU    *sim.Server
	rxPU    *sim.Server
	egress  *sim.Server // priority: class 0 = requester ring, 1 = responder ring

	qps     map[uint32]*qpState
	mrs     map[uint32]*MRInfo
	pend    map[uint64]*pending
	nextSeq uint64

	// sqWins holds the registered SQ self-modification windows (see sq.go).
	// Empty outside offload workloads: every patch hook gates on its length,
	// so the legacy datapath never pays for the feature.
	sqWins []sqWindow

	// Tenant attribution for isolation profiles: qpTenant maps a local QPN
	// to its tenant slot (unmapped QPs fold into slot 0). The lab layer
	// tags server-side QPs by client index at connection time.
	qpTenant map[uint32]int
	// Per-tenant responder credit pools (profile ISOCredits > 0): a request
	// must take a credit before entering the responder PU; requests beyond
	// the pool wait FIFO per tenant, so one tenant cannot occupy the whole
	// processing complex.
	isoOn      bool
	isoCredits [MaxTenants]int
	isoWait    [MaxTenants][]func()

	// RC retransmission defaults, overridable per QP via SetQPRetry. The
	// default timeout is deliberately far above any in-sim RTT so that a
	// lossless run never arms a spurious retransmission; lossy experiments
	// tune it down per QP (as real stacks tune ibv_modify_qp timeout).
	RetryTimeout sim.Duration
	RetryLimit   int

	counters Counters

	// ResponderDelay is injected by defenses (noise mitigation) on every
	// responder-side message; zero normally.
	ResponderDelay func() sim.Duration

	// Tap, when set with EncodeFrames on, receives every departing frame
	// fully encapsulated (Ethernet+IPv4+UDP+RoCEv2) at its departure time —
	// the hook the pcap exporter uses.
	Tap func(at sim.Time, frame []byte)
	ip  [4]byte

	// addr is the fabric-level address stamped into every departing packet's
	// Dst field. verbs.Network assigns it (a bare counter, no RNG) when the
	// NIC first joins a topology; switches use it for forwarding-table
	// lookups. Direct point-to-point links ignore it entirely, so legacy
	// two-host rigs behave identically whether or not an address was set.
	addr uint32

	// Flight recorder (nil = tracing off; every emit site is a nil check).
	rec      *trace.Recorder
	arbActor uint16 // egress arbiter lane
	rxActor  uint16 // ingress pipeline lane
	psnActor uint16 // go-back-N transport lane
	cqeActor uint16 // completion lane

	// Free lists for the per-packet datapath structs. The engine is
	// single-threaded, so these are plain slices (no sync.Pool — its
	// GC-coupled reuse would be nondeterministic across runs; an explicit
	// free list recycles at fixed points in the event order, keeping runs
	// byte-identical). Entries migrate between the two NICs of a rig:
	// responses are allocated by the responder and recycled by the
	// requester — same engine, so never a race.
	msgFree  []*Message
	pendFree []*pending
	envFree  []*envelope
}

// getMsg takes a Message from the free list (or allocates one). The caller
// must fully assign it; recycled messages are zeroed on release.
func (n *NIC) getMsg() *Message {
	if k := len(n.msgFree) - 1; k >= 0 {
		m := n.msgFree[k]
		n.msgFree = n.msgFree[:k]
		return m
	}
	return new(Message)
}

// putMsg releases a Message that provably has no remaining references: a
// response after its terminal handler, or a request that was sent exactly
// once (never retransmitted) after its completion arrived. Zeroing drops the
// Data reference so recycled messages never pin payload buffers.
func (n *NIC) putMsg(m *Message) {
	*m = Message{}
	n.msgFree = append(n.msgFree, m)
}

func (n *NIC) getPending() *pending {
	if k := len(n.pendFree) - 1; k >= 0 {
		p := n.pendFree[k]
		n.pendFree = n.pendFree[:k]
		return p
	}
	return new(pending)
}

func (n *NIC) putPending(p *pending) {
	*p = pending{}
	n.pendFree = append(n.pendFree, p)
}

func (n *NIC) getEnv() *envelope {
	if k := len(n.envFree) - 1; k >= 0 {
		env := n.envFree[k]
		n.envFree = n.envFree[:k]
		return env
	}
	return new(envelope)
}

func (n *NIC) putEnv(env *envelope) {
	*env = envelope{}
	n.envFree = append(n.envFree, env)
}

// New creates a NIC on a host. Call AddPeerLink before any traffic flows.
// nicSeq is atomic because parallel sweeps build clusters concurrently; it
// only feeds the synthetic IP below, which never influences timing.
var nicSeq atomic.Uint32

func New(eng *sim.Engine, name string, p Profile, h *host.Host, numa int) *NIC {
	seq := nicSeq.Add(1)
	n := &NIC{
		Name: name, eng: eng, prof: p, hst: h, numa: numa,
		tpu:      NewTPU(p, eng.Rand()),
		qpc:      NewContextCache(p.QPCCacheEntries),
		links:    make(map[*NIC]*fabric.Link),
		qps:      make(map[uint32]*qpState),
		mrs:      make(map[uint32]*MRInfo),
		pend:     make(map[uint64]*pending),
		counters: newCounters(),
		// ~IB defaults: retry_cnt 7 with a multi-ms timeout (real HW uses
		// 4.096 us << timeout, commonly tens of ms).
		RetryTimeout: 4 * sim.Millisecond,
		RetryLimit:   7,
	}
	n.ip = [4]byte{10, 0, byte(seq >> 8), byte(seq)}
	// The DMA engine holds several outstanding tags; the TPU is a single
	// in-order translation pipeline — that is what makes the remote-address
	// offset the first-order term of ULI (Key Finding 4).
	n.hostDMA = sim.NewServer(eng, name+"/dma", 4)
	n.tpuSrv = sim.NewServer(eng, name+"/tpu", 1)
	n.txPU = sim.NewServer(eng, name+"/txpu", p.RequesterSlots)
	n.rxPU = sim.NewServer(eng, name+"/rxpu", p.ResponderSlots)
	// The egress server is arbitrated by the profile's strategy. The strict
	// arbiter reproduces the old priority server's schedule exactly (first
	// index of the minimum class over a FIFO queue == sorted-insert +
	// pop-front), so legacy profiles stay byte-identical.
	n.egress = sim.NewArbitratedServer(eng, name+"/egress", 1, arbiterFor(p))
	if p.ISOCredits > 0 {
		n.isoOn = true
		for i := range n.isoCredits {
			n.isoCredits[i] = p.ISOCredits
		}
	}
	return n
}

// SetQPTenant attributes a local QP to a tenant slot for the isolation
// profiles' per-tenant scheduling and credit pools. Unmapped QPs are slot 0.
func (n *NIC) SetQPTenant(qpn uint32, tenant int) {
	if n.qpTenant == nil {
		n.qpTenant = make(map[uint32]int)
	}
	n.qpTenant[qpn] = tenantSlot(tenant)
}

func (n *NIC) tenantOf(qpn uint32) int { return n.qpTenant[qpn] }

// isoAdmit runs fn once the tenant holds a responder credit; with the pools
// disabled it runs fn immediately.
func (n *NIC) isoAdmit(tenant int, fn func()) {
	if !n.isoOn {
		fn()
		return
	}
	t := tenantSlot(tenant)
	if n.isoCredits[t] > 0 {
		n.isoCredits[t]--
		fn()
		return
	}
	n.isoWait[t] = append(n.isoWait[t], fn)
}

// isoRelease returns a tenant's credit, handing it straight to the oldest
// waiter if one is queued.
func (n *NIC) isoRelease(tenant int) {
	if !n.isoOn {
		return
	}
	t := tenantSlot(tenant)
	if w := n.isoWait[t]; len(w) > 0 {
		fn := w[0]
		copy(w, w[1:])
		n.isoWait[t] = w[:len(w)-1]
		fn()
		return
	}
	n.isoCredits[t]++
}

// encCharge prices AES for one message's payload and records the telemetry;
// zero (and counter-free) on profiles without the encryption knobs.
func (n *NIC) encCharge(bytes int) sim.Duration {
	d := n.prof.encTime(bytes)
	if d > 0 {
		n.counters.EncOps++
		if bytes > 0 {
			n.counters.EncBytes += uint64(bytes)
		}
	}
	return d
}

// Profile returns the adapter profile.
func (n *NIC) Profile() Profile { return n.prof }

// SetRecorder attaches a flight recorder. The NIC registers one actor lane
// per pipeline stage (arbiter, ingress, transport, completion) so the trace
// viewer shows them as separate threads. Nil disables tracing; the disabled
// hot path is a nil check with zero allocations (benchmark-guarded).
func (n *NIC) SetRecorder(r *trace.Recorder) {
	n.rec = r
	n.arbActor = r.RegisterActor(n.Name + "/arb")
	n.rxActor = r.RegisterActor(n.Name + "/rx")
	n.psnActor = r.RegisterActor(n.Name + "/psn")
	n.cqeActor = r.RegisterActor(n.Name + "/cqe")
}

// Recorder returns the attached flight recorder (nil when tracing is off).
func (n *NIC) Recorder() *trace.Recorder { return n.rec }

// TPU exposes the translation unit (reverse-engineering benchmarks inspect
// its counters; Pythia needs its MTT).
func (n *NIC) TPU() *TPU { return n.tpu }

// Counters returns a snapshot view of the NIC counters. Per-TC wire-drop
// counts are refreshed from the egress links (summing is order-independent,
// so map iteration stays deterministic). Switched topologies map several
// peers to one shared uplink, so each distinct link is counted once.
func (n *NIC) Counters() *Counters {
	var drops [8]uint64
	var uniq []*fabric.Link
	count := func(l *fabric.Link) {
		for _, u := range uniq {
			if u == l {
				return
			}
		}
		uniq = append(uniq, l)
		for tc := 0; tc < fabric.NumTCs; tc++ {
			drops[tc] += l.Drops(tc) + l.FaultDrops(tc)
		}
	}
	for _, l := range n.links {
		count(l)
	}
	for _, ls := range n.multi {
		for _, l := range ls {
			count(l)
		}
	}
	n.counters.WireDropsTC = drops
	n.counters.CtxHits, n.counters.CtxMisses, n.counters.CtxEvictions = n.qpc.Stats()
	_, _, _, n.counters.MTTMisses = n.tpu.Counters()
	return &n.counters
}

// AddPeerLink attaches the transmit link toward a peer NIC. The verbs layer
// calls this when wiring a topology. In switched topologies several peers
// share one physical uplink — the map simply stores the same *Link for each.
func (n *NIC) AddPeerLink(peer *NIC, l *fabric.Link) { n.links[peer] = l }

// AddPeerLinks attaches an ECMP group of transmit links toward a peer. A
// single-link group behaves exactly like AddPeerLink; larger groups are
// hashed per flow at transmit time.
func (n *NIC) AddPeerLinks(peer *NIC, ls []*fabric.Link) {
	if len(ls) == 0 {
		panic(fmt.Sprintf("nic %s: empty multipath group", n.Name))
	}
	n.links[peer] = ls[0]
	if len(ls) > 1 {
		if n.multi == nil {
			n.multi = make(map[*NIC][]*fabric.Link)
		}
		n.multi[peer] = ls
	}
}

// SetAddr installs the NIC's fabric-level address (see the addr field).
func (n *NIC) SetAddr(a uint32) { n.addr = a }

// Addr returns the fabric-level address (0 until the NIC joins a topology).
func (n *NIC) Addr() uint32 { return n.addr }

// CreateQP registers a queue pair. onComplete receives requester
// completions; onRecv receives inbound SEND deliveries (may be nil).
func (n *NIC) CreateQP(qpn uint32, onComplete func(Completion), onRecv func(RecvEvent)) error {
	if _, dup := n.qps[qpn]; dup {
		return fmt.Errorf("nic %s: QP %d already exists", n.Name, qpn)
	}
	// rewindEpoch starts off any valid progressEpoch so the first NAK of a
	// connection's lifetime always triggers a rewind. The go-back-N window
	// is preallocated so steady-state posting never grows it.
	n.qps[qpn] = &qpState{qpn: qpn, onComplete: onComplete, onRecv: onRecv,
		rewindEpoch: ^uint64(0), outstanding: make([]*pending, 0, 64)}
	return nil
}

// DestroyQP tears down a queue pair: the armed retransmit timer is
// cancelled (leaving it would hold a live event past quiesce — exactly the
// leak the parallel barrier's DrainCheck flags), outstanding WQEs are
// abandoned without completions (matching ibv_destroy_qp, which flushes
// nothing once the QP leaves RTS), and the QPN becomes reusable. In-flight
// messages referencing the QP resolve against the map and are dropped on
// arrival.
func (n *NIC) DestroyQP(qpn uint32) error {
	qp, ok := n.qps[qpn]
	if !ok {
		return fmt.Errorf("nic %s: unknown QP %d", n.Name, qpn)
	}
	qp.rtxTimer.Cancel()
	qp.rtxTimer = sim.Event{}
	// Drop the tracking entries but do not recycle the pendings or their
	// messages: responses may still be in flight holding references.
	for _, p := range qp.outstanding {
		delete(n.pend, p.seq)
	}
	qp.outstanding = nil
	// Abandon the staged ring: a WAIT armed on a counter may still fire its
	// wake, but with head == enabled == 0 the advance is a no-op. Windows
	// shadowing the QP are dropped with it.
	qp.sq, qp.sqHead, qp.sqEnabled = nil, 0, 0
	if len(n.sqWins) > 0 {
		kept := n.sqWins[:0]
		for _, w := range n.sqWins {
			if w.qp != qp {
				kept = append(kept, w)
			}
		}
		n.sqWins = kept
	}
	delete(n.qps, qpn)
	return nil
}

// ConnectQP binds a local QP to a peer NIC and QPN (RC connection).
func (n *NIC) ConnectQP(qpn uint32, peer *NIC, peerQPN uint32) error {
	qp, ok := n.qps[qpn]
	if !ok {
		return fmt.Errorf("nic %s: unknown QP %d", n.Name, qpn)
	}
	qp.peer = peer
	qp.peerQPN = peerQPN
	return nil
}

// RegisterMR makes a region remotely accessible under key.
func (n *NIC) RegisterMR(info MRInfo) error {
	if _, dup := n.mrs[info.Key]; dup {
		return fmt.Errorf("nic %s: MR key %d already registered", n.Name, info.Key)
	}
	if info.PageSize == 0 {
		info.PageSize = uint64(host.Page2M)
	}
	cp := info
	n.mrs[info.Key] = &cp
	return nil
}

// DeregisterMR removes a region.
func (n *NIC) DeregisterMR(key uint32) { delete(n.mrs, key) }

// PostRecv queues a host buffer for inbound SENDs on a QP.
func (n *NIC) PostRecv(qpn uint32, buf []byte) error {
	qp, ok := n.qps[qpn]
	if !ok {
		return fmt.Errorf("nic %s: unknown QP %d", n.Name, qpn)
	}
	qp.recvQueue = append(qp.recvQueue, buf)
	return nil
}

// wireBytes returns the on-wire size of a request message.
func (n *NIC) wireBytes(m *Message) int {
	switch {
	case m.IsResp && m.Op == OpRead:
		return n.packetizedBytes(m.Length)
	case m.IsResp:
		return AckBytes
	case m.Op == OpRead:
		return ReadReqBytes
	case m.Op == OpAtomicFAA || m.Op == OpAtomicCAS:
		return WireHeaderBytes + 28
	default: // WRITE / SEND carry payload
		return n.packetizedBytes(m.Length)
	}
}

// packetizedBytes charges per-MTU header overhead for a payload.
func (n *NIC) packetizedBytes(payload int) int {
	pkts := (payload + n.prof.MTU - 1) / n.prof.MTU
	if pkts < 1 {
		pkts = 1
	}
	return payload + pkts*WireHeaderBytes
}

// dmaTransferTime is the PCIe occupancy of moving the given bytes.
func (n *NIC) dmaTransferTime(bytes int) sim.Duration {
	if bytes <= 0 {
		bytes = 16
	}
	// GB/s == bytes/ns; add a per-transaction TLP overhead.
	return sim.Duration(float64(bytes)/n.prof.PCIeGBps*float64(sim.Nanosecond)) + 8*sim.Nanosecond
}

// dma runs a host-memory DMA: occupies the engine for the transfer time,
// then completes after the PCIe and memory latency.
func (n *NIC) dma(bytes int, reg *host.Region, done func()) {
	memLat := n.hst.MemAccessLatency(reg, n.numa)
	n.hostDMA.Submit(n.dmaTransferTime(bytes), 0, func() {
		n.eng.After(n.prof.PCIeLatency+memLat, done)
	})
}

// PostSend submits a WQE on a QP: it stages the entry and rings the
// doorbell over it in one call, so the entry dispatches synchronously here
// (behind any earlier staged-but-unexecuted entries) exactly as the
// pre-state-machine post path did. Completion (success or failure) arrives
// through the QP's completion callback. Callers that want post ≠ enable use
// StageSend + RingDoorbell instead.
func (n *NIC) PostSend(qpn uint32, wqe *WQE) error {
	qp, err := n.stageChecked(qpn, wqe)
	if err != nil {
		return err
	}
	n.encodeStaged(qp, len(qp.sq)-1)
	n.ringQP(qp, 1)
	return nil
}

// dispatchWQE launches one enabled wire WQE down the requester pipeline:
// doorbell, SQE fetch (inline payload rides along), requester PU, launch.
// This is the pre-refactor PostSend body — every event it schedules is
// byte-identical to the old direct path (pinned by TestSQSeamByteIdentical).
func (n *NIC) dispatchWQE(qp *qpState, wqe *WQE) {
	qp.posted++
	n.counters.TxMsgs[wqe.Op]++
	n.counters.PerQPMsgs[qp.qpn]++
	post := n.eng.Now()

	fetchBytes := 64
	inline := wqe.Op == OpWrite && wqe.Length <= n.prof.InlineMax
	if inline {
		fetchBytes += wqe.Length
	}
	n.eng.After(n.prof.DoorbellTime, func() {
		n.hostDMA.Submit(n.dmaTransferTime(fetchBytes)+n.prof.SQEFetchTime, 0, func() {
			// Encryption profiles pay the AES cost on the requester PU: the
			// payload (or the header MAC for payload-less verbs) is
			// enciphered before the message can launch.
			n.txPU.Submit(n.prof.TxPUTime+n.encCharge(wqe.Length), 0, func() {
				if wqe.Op == OpWrite && !inline || wqe.Op == OpSend && wqe.Length > n.prof.InlineMax {
					n.dma(wqe.Length, nil, func() { n.launch(qp, wqe, post) })
					return
				}
				n.launch(qp, wqe, post)
			})
		})
	})
}

// launch builds the request message and hands it to the requester egress
// ring (class 0: the logical Tx arbiter outranks the responder ring).
func (n *NIC) launch(qp *qpState, wqe *WQE, post sim.Time) {
	seq := n.nextSeq
	n.nextSeq++
	psn := qp.nextPSN
	qp.nextPSN = (qp.nextPSN + 1) & psnMask
	m := n.getMsg()
	*m = Message{
		Op: wqe.Op, SrcQPN: qp.qpn, DstQPN: qp.peerQPN,
		RKey: wqe.RemoteKey, RemoteAddr: wqe.RemoteAddr, Length: wqe.Length,
		Seq: seq, PSN: psn, TC: wqe.TC, CompareAdd: wqe.CompareAdd, Swap: wqe.Swap,
	}
	if wqe.Op == OpWrite || wqe.Op == OpSend {
		m.Data = wqe.LocalData
	}
	p := n.getPending()
	*p = pending{wqe: wqe, qpn: qp.qpn, postTime: post, seq: seq, psn: psn, msg: m,
		lastSent: n.eng.Now()}
	n.rec.Emit(trace.Event{At: int64(n.eng.Now()), Kind: trace.KindPSNSend,
		Actor: n.psnActor, QPN: qp.qpn, PSN: psn, Val: seq, TC: int8(wqe.TC)})
	n.pend[seq] = p
	qp.outstanding = append(qp.outstanding, p)
	if !qp.rtxTimer.Pending() {
		n.armRetransmit(qp)
	}
	n.transmit(qp.peer, m, 0)
}

// pfcXOFF is the ingress backlog (requests queued at the responder
// pipeline) past which a PFC pause event is recorded for the traffic class —
// the point at which a real lossless fabric would send PRIO pause frames.
const pfcXOFF = 32

// transmit serialises a message through the egress arbiter onto the wire.
// ring 0 is the requester (Tx arbiter), ring 1 the responder (Rx arbiter);
// strict priority between them is Key Finding 3.
func (n *NIC) transmit(dst *NIC, m *Message, ring int) {
	bytes := n.wireBytes(m)
	flow := flowLabel(m.SrcQPN, m.DstQPN)
	link := n.links[dst]
	if ml := n.multi[dst]; len(ml) > 1 {
		link = ml[flow%uint32(len(ml))]
	}
	ser := sim.Duration(0)
	if link != nil {
		ser = link.SerializationDelay(bytes)
	}
	service := n.prof.EgressArbTime
	if ser > service {
		service = ser
	}
	n.egress.SubmitMeta(service, sim.ReqMeta{Class: ring, Tenant: n.tenantOf(m.SrcQPN), Bytes: bytes}, func() {
		n.counters.TxBytes += uint64(bytes)
		n.counters.TxBytesTC[m.TC&7] += uint64(bytes)
		n.rec.Emit(trace.Event{At: int64(n.eng.Now()), Kind: trace.KindArbGrant,
			Actor: n.arbActor, QPN: m.SrcQPN, PSN: m.PSN, TC: int8(m.TC & 7),
			Val: uint64(bytes), Aux: uint64(ring)})
		if link == nil {
			// Loopback fallback for single-NIC tests.
			n.eng.After(sim.Nanosecond, func() { dst.HandleIngress(m) })
			return
		}
		var frames [][]byte
		if EncodeFrames {
			var err error
			if frames, err = encodeSegments(m, n.prof.MTU); err != nil {
				panic(fmt.Sprintf("nic %s: frame encode: %v", n.Name, err))
			}
			if n.Tap != nil {
				for _, f := range frames {
					n.Tap(n.eng.Now(), wire.Encapsulate(f, n.ip, dst.ip, 49152+uint16(m.SrcQPN&0x3fff)))
				}
			}
		}
		env := n.getEnv()
		env.dst, env.msg, env.frames = dst, m, frames
		if err := link.Send(fabric.Packet{TC: m.TC, Bytes: bytes, Dst: dst.addr, Flow: flow, Payload: env}); err != nil {
			// Tail drop at the egress queue: the packet never reaches the
			// wire. The RC transport recovers it — a lost request draws a
			// NAK-seq or a retransmit timeout, a lost response a duplicate
			// request — and the link's per-TC drop counter (surfaced through
			// Counters().WireDropsTC) records the loss for Grain-I monitors.
			n.putEnv(env)
			return
		}
	})
}

// flowLabel derives the packet flow label from the QP pair. Requests and
// responses of one connection get distinct labels (the pair is reversed),
// which is fine: ECMP only needs each direction internally ordered. The
// multiplier spreads near-sequential QPNs; switches avalanche the label
// again before the port pick.
func flowLabel(srcQPN, dstQPN uint32) uint32 {
	return srcQPN*2654435761 + dstQPN
}

// envelope routes a fabric packet to the destination NIC. When wire
// fidelity is on it also carries the message's real RoCEv2 encoding, which
// the receiver parses and cross-checks.
type envelope struct {
	dst    *NIC
	msg    *Message
	frames [][]byte
}

// Deliver is installed as the fabric sink: it dispatches an arriving packet
// to its destination NIC's ingress pipeline. The envelope is recycled here
// (the message outlives it); envelopes lost in flight with their packet are
// simply collected by the GC.
func Deliver(p fabric.Packet) {
	env, ok := p.Payload.(*envelope)
	if !ok {
		panic("nic: foreign payload on fabric")
	}
	dst, m, frames := env.dst, env.msg, env.frames
	dst.putEnv(env)
	if p.Corrupt {
		// ICRC failure: the payload cannot be trusted, so the packet is
		// dropped before any parsing — the transport recovers it exactly
		// like an in-flight loss.
		dst.counters.RxCorrupt++
		dst.rec.Emit(trace.Event{At: int64(dst.eng.Now()), Kind: trace.KindRxCorrupt,
			Actor: dst.rxActor, TC: int8(p.TC & 7), Val: uint64(p.Bytes)})
		return
	}
	if frames != nil {
		// Wire fidelity: the frames must decode back to exactly the message
		// being delivered.
		if err := verifySegments(frames, m); err != nil {
			panic("nic: wire/simulation divergence: " + err.Error())
		}
	}
	dst.HandleIngress(m)
}

// HandleIngress processes one arriving message (request or response).
func (n *NIC) HandleIngress(m *Message) {
	n.counters.RxBytes += uint64(n.wireBytes(m))
	n.counters.RxBytesTC[m.TC&7] += uint64(n.wireBytes(m))
	n.rec.Emit(trace.Event{At: int64(n.eng.Now()), Kind: trace.KindRxPkt,
		Actor: n.rxActor, QPN: m.DstQPN, PSN: m.PSN, TC: int8(m.TC & 7),
		Val: uint64(n.wireBytes(m))})
	if m.IsResp {
		n.handleResponse(m)
		return
	}
	n.handleRequest(m)
}

func (n *NIC) handleRequest(m *Message) {
	n.counters.RxMsgs[m.Op]++
	if n.rxPU.QueueLen()+n.tpuSrv.QueueLen() >= pfcXOFF {
		// Receive backlog beyond the XOFF threshold: a lossless fabric
		// would pause this priority now. Grain-I defenses key off this.
		n.counters.PFCPauses[m.TC&7]++
		n.rec.Emit(trace.Event{At: int64(n.eng.Now()), Kind: trace.KindPFCPause,
			Actor: n.rxActor, TC: int8(m.TC & 7)})
	}
	// PSN sequencing (go-back-N responder). Requests on a connected QP must
	// arrive in PSN order: an in-order request advances the expected PSN, a
	// gap draws one NAK-seq per stall, and a duplicate (retransmission of an
	// executed request) is replayed without re-execution where the verb
	// demands it. On a lossless run every request takes the first arm.
	// Visible-effect ordering: requests accepted in PSN order take a
	// placement ticket; duplicates and unroutable frames run ungated (they
	// carry no new data, so nothing can be observed out of order).
	place := func(fn func()) { fn() }
	if qp := n.qps[m.DstQPN]; qp != nil {
		switch {
		case m.PSN == qp.epsn:
			qp.epsn = (qp.epsn + 1) & psnMask
			qp.nakArmed = false
			ticket := qp.placeNext
			qp.placeNext++
			place = func(fn func()) { qp.place(ticket, fn) }
		case psnAfter(m.PSN, qp.epsn):
			// A gap: an earlier request was lost. NAK once per stall; later
			// out-of-order arrivals are silently discarded until the stream
			// recovers (IB sends a single NAK per syndrome).
			if !qp.nakArmed {
				qp.nakArmed = true
				n.counters.SeqNaks++
				n.rxPU.Submit(n.prof.RxPUTime, 0, func() {
					n.respondNak(m, (qp.epsn-1)&psnMask)
				})
			}
			return
		default:
			// Neither in order nor ahead. At exactly half the PSN space the
			// circular order is undefined (psnAfter is false both ways), so
			// the frame is neither a future request nor a duplicate of an
			// executed one — treating it as a duplicate would let a forged
			// frame draw an ACK for a request the responder never executed.
			// Discard it, counted for the abuse monitors.
			if psnHalfAway(m.PSN, qp.epsn) {
				n.counters.RxBadPSN++
				return
			}
			n.counters.DupReqs++
			if n.replayDuplicate(qp, m) {
				return
			}
			// Duplicate READ: RC re-executes it from scratch through the
			// normal path below (idempotent; atomics never take this path).
		}
	}
	pkts := (m.Length + n.prof.MTU - 1) / n.prof.MTU
	if pkts < 1 {
		pkts = 1
	}
	// Encryption profiles decrypt/authenticate the inbound payload on the
	// responder PU (for READs this is the outbound data being enciphered).
	service := n.prof.RxPUTime*sim.Duration(pkts) + n.encCharge(m.Length)
	enter := func() {
		n.rxPU.Submit(service, 0, func() {
			extra := sim.Duration(0)
			if n.ResponderDelay != nil {
				extra = n.ResponderDelay()
			}
			// QPC lookup: a cold QP context costs an ICM fetch.
			if !n.qpc.Access(QPCtxKey(m.DstQPN)) {
				extra += n.prof.QPCMissPenalty
			}
			qp := n.qps[m.DstQPN]
			if qp == nil {
				// Unknown QPN: the tell-tale of a QP-number-guessing sweep.
				// Benign traffic never produces one (connections are wired before
				// traffic flows), so the counter is a pure abuse marker.
				n.counters.RxBadQP++
				n.eng.After(extra, func() { n.respond(m, StatusBadQP, nil, 0) })
				return
			}
			switch m.Op {
			case OpSend:
				n.eng.After(extra, func() { n.completeSend(qp, m, place) })
			case OpWrite, OpRead, OpAtomicFAA, OpAtomicCAS:
				n.eng.After(extra, func() { n.oneSided(qp, m, place) })
			default:
				n.eng.After(extra, func() { place(func() { n.respond(m, StatusRemoteAccessError, nil, 0) }) })
			}
		})
	}
	// Isolation profiles gate responder-PU entry on the tenant's credit
	// pool. A retransmitted frame re-entering the pipeline while the
	// original still holds its admission (m is the same object on both
	// paths) keeps the original credit instead of taking a second one, so
	// respond()'s exactly-once release stays balanced under loss.
	if m.admitted {
		enter()
		return
	}
	m.admitted = n.isoOn
	n.isoAdmit(n.tenantOf(m.DstQPN), enter)
}

// completeSend lands an inbound SEND in the QP's receive queue. The recv
// delivery waits behind the placement gate: a SEND used as a commit record
// must never be observed before the data of writes accepted ahead of it.
func (n *NIC) completeSend(qp *qpState, m *Message, place func(func())) {
	n.dma(m.Length, nil, func() {
		place(func() {
			var buf []byte
			if len(qp.recvQueue) > 0 {
				buf = qp.recvQueue[0]
				qp.recvQueue = qp.recvQueue[1:]
				copy(buf, m.Data)
			}
			if qp.onRecv != nil {
				qp.onRecv(RecvEvent{QPN: qp.qpn, Op: OpSend, Bytes: m.Length, Data: m.Data, SrcQPN: m.SrcQPN})
			}
			n.respond(m, StatusOK, nil, 0)
		})
	})
}

// oneSided executes WRITE/READ/ATOMIC against a registered MR through the
// TPU and host DMA.
func (n *NIC) oneSided(qp *qpState, m *Message, place func(func())) {
	mr := n.mrs[m.RKey]
	if mr == nil || m.RemoteAddr < mr.Base || m.RemoteAddr+uint64(max(m.Length, 1)) > mr.Base+mr.Size {
		place(func() { n.respond(m, StatusRemoteAccessError, nil, 0) })
		return
	}
	switch m.Op {
	case OpRead:
		if !mr.RemoteRead {
			place(func() { n.respond(m, StatusRemoteAccessError, nil, 0) })
			return
		}
	case OpWrite:
		if !mr.RemoteWrite {
			place(func() { n.respond(m, StatusRemoteAccessError, nil, 0) })
			return
		}
	default:
		if !mr.Atomic {
			place(func() { n.respond(m, StatusRemoteAccessError, nil, 0) })
			return
		}
	}
	offset := m.RemoteAddr - mr.Base
	n.counters.PerMRBytes[mr.Key] += uint64(m.Length)
	tpuTime := n.tpu.Translate(Request{
		MRKey: mr.Key, Offset: offset, Length: m.Length,
		MRBase: mr.Base, PageSize: mr.PageSize,
	})
	// MPT lookup: when the profile prices MR contexts, a cold one costs an
	// ICM fetch serialised through the TPU pipeline — so under context
	// thrash every tenant queues behind the aggressor's fetches. Profiles
	// with MPTMissPenalty 0 skip the lookup entirely (no occupancy, no
	// counters), keeping the legacy timing surface untouched.
	if n.prof.MPTMissPenalty > 0 && !n.qpc.Access(MRCtxKey(mr.Key)) {
		tpuTime += n.prof.MPTMissPenalty
	}
	n.tpuSrv.Submit(tpuTime, 0, func() {
		switch m.Op {
		case OpWrite:
			n.dma(m.Length, mr.Region, func() {
				place(func() {
					if mr.Region != nil && m.Data != nil {
						wrote := min(len(m.Data), m.Length)
						if err := mr.Region.WriteAt(offset, m.Data[:wrote]); err != nil {
							n.respond(m, StatusRemoteAccessError, nil, 0)
							return
						}
						// A write landing over a registered SQ window rewrites
						// the staged WQEs it covers (RedN self-modification).
						if len(n.sqWins) > 0 {
							n.sqPatch(m.RemoteAddr, wrote)
						}
					}
					if qp.onRecv != nil {
						qp.onRecv(RecvEvent{QPN: qp.qpn, Op: OpWrite, Bytes: m.Length, SrcQPN: m.SrcQPN})
					}
					n.respond(m, StatusOK, nil, 0)
				})
			})
		case OpRead:
			n.dma(m.Length, mr.Region, func() {
				place(func() {
					var data []byte
					if mr.Region != nil {
						data = make([]byte, m.Length)
						if err := mr.Region.ReadAt(offset, data); err != nil {
							n.respond(m, StatusRemoteAccessError, nil, 0)
							return
						}
					}
					n.respond(m, StatusOK, data, 0)
				})
			})
		case OpAtomicFAA, OpAtomicCAS:
			n.eng.After(n.prof.AtomicExtra, func() {
				n.dma(8, mr.Region, func() {
					place(func() {
						var orig uint64
						if mr.Region != nil && offset+8 <= mr.Size {
							b := make([]byte, 8)
							mr.Region.ReadAt(offset, b)
							orig = le64(b)
							var newVal uint64
							if m.Op == OpAtomicFAA {
								newVal = orig + m.CompareAdd
							} else if orig == m.CompareAdd {
								newVal = m.Swap
							} else {
								newVal = orig
							}
							put64(b, newVal)
							mr.Region.WriteAt(offset, b)
						}
						// Record the result for duplicate replay: a
						// retransmitted atomic must not execute twice (the IB
						// responder keeps a one-deep atomic replay buffer).
						qp.atomicReplayOK = true
						qp.atomicReplayPSN = m.PSN
						qp.atomicReplayVal = orig
						n.respond(m, StatusOK, nil, orig)
					})
				})
			})
		}
	})
}

// respond sends a response back through the responder ring (class 1).
func (n *NIC) respond(req *Message, st Status, data []byte, atomicOrig uint64) {
	// Release the tenant's ISO credit first, before the unroutable-request
	// early return below: every admitted request reaches respond() exactly
	// once, so this is the one release point.
	if req.admitted {
		req.admitted = false
		n.isoRelease(n.tenantOf(req.DstQPN))
	}
	n.counters.Responses++
	if st != StatusOK {
		n.counters.NAKs++
	}
	resp := n.getMsg()
	*resp = Message{
		Op: req.Op, SrcQPN: req.DstQPN, DstQPN: req.SrcQPN,
		Seq: req.Seq, IsResp: true, Status: st, TC: req.TC,
		PSN: req.PSN, AckPSN: req.PSN,
		Length: 0, Data: data, CompareAdd: atomicOrig,
	}
	if req.Op == OpRead && st == StatusOK {
		resp.Length = req.Length
	}
	// Find the requester NIC: the source QP's peer pointer on our side.
	qp := n.qps[req.DstQPN]
	if qp == nil || qp.peer == nil {
		// Request targeted an unknown QP: we cannot route a NAK without a
		// reverse path; drop (matches RC behaviour of unroutable packets).
		return
	}
	n.transmit(qp.peer, resp, 1)
}

// handleResponse finishes the pending WQE on the requester. Responses are
// free-list-managed: every return path below recycles m after its last use
// (the completion closures capture the copied status/result/data, never the
// Message itself).
func (n *NIC) handleResponse(m *Message) {
	p := n.pend[m.Seq]
	if p == nil {
		// A response for an already-completed WQE: the original and a
		// retransmission both drew an ACK. Coalesce — count it, deliver no
		// second CQE.
		n.counters.DupAcks++
		n.rec.Emit(trace.Event{At: int64(n.eng.Now()), Kind: trace.KindDupAck,
			Actor: n.psnActor, QPN: m.DstQPN, PSN: m.PSN, TC: int8(m.TC & 7)})
		n.putMsg(m)
		return
	}
	qp := n.qps[p.qpn]
	if m.Status == StatusSeqNak {
		// Transport NAK: the responder is missing earlier requests. Rewind
		// and retransmit; the WQE completes when a real ACK arrives.
		if qp != nil {
			n.handleSeqNak(qp, m)
		}
		n.putMsg(m)
		return
	}
	if m.PSN != p.psn {
		// A response naming a pending Seq but the wrong PSN: benign
		// responders echo the request's PSN exactly (retransmissions reuse
		// it), so only a forged ACK can disagree. Discard it — completion
		// forgery requires knowing both the Seq and the PSN, which means
		// snooping the wire, not guessing (the conformance suite pins this).
		n.counters.InvalidAcks++
		n.putMsg(m)
		return
	}
	delete(n.pend, m.Seq)
	if qp != nil {
		qp.removeOutstanding(p)
		qp.progressEpoch++
		qp.retries = 0
		n.armRetransmit(qp)
	}
	st, result, data := m.Status, m.CompareAdd, m.Data
	n.putMsg(m)
	// The request frame is NOT recycled here, even when it was launched
	// exactly once: an ACK proves only that a response exists, not that the
	// responder is finished with the frame. The responder's execution
	// pipeline (TPU, DMA) holds the request across deferred stages and
	// replies only afterwards — but a forged ACK can arrive while that
	// execution (or the request itself) is still in flight, and zeroing the
	// frame under it corrupts the simulation. Request frames stay with the
	// GC; only response frames, which the requester provably owns once
	// delivered, go back on the free list.
	p.msg = nil
	// Encryption profiles decrypt an inbound READ payload on the requester's
	// responder PU before it can land in host memory.
	var encExtra sim.Duration
	if p.wqe.Op == OpRead && st == StatusOK {
		encExtra = n.encCharge(p.wqe.Length)
	}
	n.rxPU.Submit(n.prof.RxPUTime+encExtra, 0, func() {
		finish := func() {
			n.hostDMA.Submit(n.dmaTransferTime(32)+n.prof.CQEWriteTime, 0, func() {
				if qp != nil {
					qp.completed++
					n.rec.Emit(trace.Event{At: int64(n.eng.Now()), Kind: trace.KindCQE,
						Actor: n.cqeActor, QPN: p.qpn, TC: int8(p.wqe.TC),
						Dur: int64(n.eng.Now().Sub(p.postTime)), Aux: uint64(st)})
					if qp.onComplete != nil {
						qp.onComplete(Completion{
							QPN: p.qpn, WRID: p.wqe.WRID, Op: p.wqe.Op,
							Status: st, Bytes: p.wqe.Length, Result: result,
							PostTime: p.postTime, DoneTime: n.eng.Now(),
						})
					}
					n.cqeDelivered(qp)
				}
				n.putPending(p)
			})
		}
		if p.wqe.Op == OpRead && st == StatusOK {
			// DMA the read payload into the host buffer. A READ with a
			// LocalKey also lands in the named local MR — and may patch a
			// registered SQ window there — strictly before its CQE fires,
			// so a WAIT ordered behind this read observes the patch.
			n.dma(p.wqe.Length, nil, func() {
				if p.wqe.LocalData != nil && data != nil {
					copy(p.wqe.LocalData, data)
				}
				if p.wqe.LocalKey != 0 && data != nil {
					n.landLocal(p.wqe, data)
				}
				finish()
			})
			return
		}
		finish()
	})
}

// Outstanding reports requester WQEs in flight.
func (n *NIC) Outstanding() int { return len(n.pend) }

// QPC exposes the ICM context cache (QP contexts, plus MR contexts when the
// profile prices MPT misses).
func (n *NIC) QPC() *ContextCache { return n.qpc }

// NoteCQOverrun records one completion dropped at a full CQ. The verbs
// layer calls it so the loss is visible in the adapter's ethtool-style
// counters, where exhaustion monitors look for it.
func (n *NIC) NoteCQOverrun() { n.counters.CQOverruns++ }

func le64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func put64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
