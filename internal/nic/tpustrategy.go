package nic

import "github.com/thu-has/ragnar/internal/sim"

// TPUKind names the translation-service strategy a Profile composes. The
// zero value is the legacy empirical surface, so profiles that predate the
// strategy seam keep byte-identical service times.
type TPUKind int

const (
	// TPUEmpirical is the measured ConnectX surface: offset drops, the
	// 2048 B sawtooth, bank conflicts, MR switches and MTT misses — the
	// carrier for the paper's Grain-III/IV channels.
	TPUEmpirical TPUKind = iota
	// TPUConstTime pads every translation to the worst case per beat,
	// the Section VII hardware-partitioning mitigation: no data-dependent
	// variation is left, so the KF4 offset channel loses its carrier.
	TPUConstTime
)

func (k TPUKind) String() string {
	switch k {
	case TPUEmpirical:
		return "empirical"
	case TPUConstTime:
		return "const-time"
	}
	return "unknown"
}

// TPUStrategy computes the deterministic part of one translation's service
// time and advances the TPU's pipeline state. The jitter sample, defensive
// ExtraService, the 1 ns floor and the served counter stay in
// TPU.Translate so every strategy draws from the noise stream in the same
// order (the determinism contract goldens depend on).
type TPUStrategy interface {
	Kind() TPUKind
	Service(t *TPU, req Request) sim.Duration
}

// empiricalTPU is the legacy data-dependent path, moved verbatim from the
// old Translate body. All mutable state (pipeline history, MTT cache,
// effect counters) lives on the TPU, so the strategy itself is stateless
// and shareable.
type empiricalTPU struct{}

func (empiricalTPU) Kind() TPUKind { return TPUEmpirical }

func (empiricalTPU) Service(t *TPU, req Request) sim.Duration {
	d := sim.Duration(0)
	nb := t.beats(req.Length)
	for i := 0; i < nb; i++ {
		beatOff := req.Offset + uint64(i*t.p.TPUBeatBytes)
		d += t.p.TPUBase + t.OffsetComponent(beatOff)
	}

	b := t.bank(req.Offset)
	if t.havePrev && b == t.lastBank {
		d += t.p.TPUBankCost
		t.conflicts++
	}
	if t.havePrev && req.MRKey != t.lastMR {
		d += t.p.MRSwitchCost
		t.mrSwitch++
	}
	t.lastBank = b
	t.lastMR = req.MRKey
	t.havePrev = true

	// MTT lookup per page touched (usually one: MRs sit on 2 MB pages).
	ps := req.PageSize
	if ps == 0 {
		ps = 2 << 20
	}
	first := (req.MRBase + req.Offset) / ps
	last := (req.MRBase + req.Offset + uint64(max(req.Length, 1)) - 1) / ps
	for page := first; page <= last; page++ {
		key := MTTKey(req.MRKey, page)
		if !t.mtt.Access(key) {
			d += t.p.MTTMissPenalty
			t.mttMisses++
		}
	}
	return d
}

// constTimeTPU charges the worst case for every beat regardless of offset,
// bank history or MR identity. No pipeline state advances and no effect
// counters move: a snoop on the TPU sees a flat surface.
type constTimeTPU struct{}

func (constTimeTPU) Kind() TPUKind { return TPUConstTime }

func (constTimeTPU) Service(t *TPU, req Request) sim.Duration {
	return t.worstCaseBeat() * sim.Duration(t.beats(req.Length))
}

// tpuFor instantiates the profile's translation strategy.
func tpuFor(p Profile) TPUStrategy {
	switch p.TPUKind {
	case TPUConstTime:
		return constTimeTPU{}
	default:
		return empiricalTPU{}
	}
}
