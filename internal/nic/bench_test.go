package nic

import "testing"

// BenchmarkContextCacheHit is the CI-guarded ICM context-cache hit path: a
// resident context lookup is one map probe plus an intrusive-list splice,
// executed on the NIC datapath for every request (and, under priced
// profiles, for every MR access). It must stay allocation-free —
// scripts/benchguard.go fails the bench-guard job if allocs/op > 0, same
// gate as the engine, disabled-trace and switch forwarding paths.
func BenchmarkContextCacheHit(b *testing.B) {
	c := NewContextCache(2048)
	// Prime a working set that fits: every access below is a hit, with
	// enough keys that the LRU splice exercises non-head nodes too.
	const keys = 512
	for i := uint32(0); i < keys; i++ {
		c.Access(QPCtxKey(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Access(QPCtxKey(uint32(i) % keys)) {
			b.Fatal("hit path missed")
		}
	}
}
