package nic

import (
	"testing"

	"github.com/thu-has/ragnar/internal/sim"
)

// TestDestroyQPCancelsRetransmitTimer is the event-leak regression: a QP
// torn down with a WQE outstanding must cancel its armed retransmit timer,
// leaving no live event behind. Before DestroyQP, the timer (armed far in
// the future by the lossless-default timeout) kept Engine quiesce checks
// failing long after the run went idle.
func TestDestroyQPCancelsRetransmitTimer(t *testing.T) {
	eng, a, b, _, _ := linkedRig(t, CX5, 0)
	if err := a.CreateQP(1, func(Completion) {}, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateQP(2, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.ConnectQP(1, b, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.ConnectQP(2, a, 1); err != nil {
		t.Fatal(err)
	}
	mrBase := b.mrs[77].Base
	if err := a.PostSend(1, &WQE{WRID: 1, Op: OpRead, RemoteKey: 77,
		RemoteAddr: mrBase, Length: 2048, TC: 0}); err != nil {
		t.Fatal(err)
	}
	// Run just long enough for the WQE to launch and arm the timer, but not
	// long enough to complete (CX5 read on this rig takes ~2µs).
	eng.RunUntil(sim.Time(1 * int64(sim.Microsecond)))
	if eng.LivePending() == 0 {
		t.Fatal("test rig never armed anything — timing assumption broken")
	}
	if err := a.DestroyQP(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.qps[1]; ok {
		t.Fatal("QP still registered after DestroyQP")
	}
	// Let in-flight events resolve; the response arrives for a destroyed QP
	// and is dropped. After that, nothing may remain live.
	eng.Run()
	if err := eng.DrainCheck(); err != nil {
		t.Fatalf("retransmit timer leaked past DestroyQP: %v", err)
	}
	if err := a.DestroyQP(1); err == nil {
		t.Fatal("double destroy did not error")
	}
}
