package nic

import "github.com/thu-has/ragnar/internal/fabric"

// Adversarial glue between the fabric's injection surface and the NIC wire
// format. The fabric carries *envelope payloads that only this package can
// build or open, so an on-path attacker (fabric.Adversary) needs these
// helpers to read departing frames and to craft frames a victim NIC will
// accept. Everything here allocates fresh — forged messages and envelopes
// never come from a NIC's free lists, so a victim recycling one on arrival
// (handleResponse's putMsg, Deliver's putEnv) can never alias a legitimate
// in-flight frame.

// SnoopPacket opens a fabric packet observed on a link and returns a copy of
// the nic-level message it carries — what a machine-in-the-middle learns from
// one captured frame: QPNs, PSN, Seq, opcode, rkey. The copy shares the Data
// slice with the original; snooping adversaries must not mutate it.
func SnoopPacket(p fabric.Packet) (Message, bool) {
	env, ok := p.Payload.(*envelope)
	if !ok || env.msg == nil {
		return Message{}, false
	}
	return *env.msg, true
}

// ForgePacket wraps a forged message as a wire packet deliverable to dst —
// the frame an adversary hands to fabric.Link.Inject. Wire size and flow
// label are derived exactly as the legitimate transmit path derives them, so
// a forged frame is indistinguishable on the wire from a genuine one.
func ForgePacket(dst *NIC, m Message) fabric.Packet {
	msg := new(Message)
	*msg = m
	env := &envelope{dst: dst, msg: msg}
	return fabric.Packet{
		TC:      m.TC & (fabric.NumTCs - 1),
		Bytes:   dst.wireBytes(msg),
		Dst:     dst.addr,
		Flow:    flowLabel(m.SrcQPN, m.DstQPN),
		Payload: env,
	}
}

// ReplayPacket re-wraps an observed packet as a fresh injectable copy (same
// destination NIC, deep-copied envelope). Injecting the observed packet
// verbatim would deliver one envelope twice and corrupt the destination's
// free list; replay attacks must go through this copy.
func ReplayPacket(p fabric.Packet) (fabric.Packet, bool) {
	env, ok := p.Payload.(*envelope)
	if !ok || env.msg == nil || env.dst == nil {
		return fabric.Packet{}, false
	}
	return ForgePacket(env.dst, *env.msg), true
}
