package nic

import (
	"testing"

	"github.com/thu-has/ragnar/internal/host"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/wire"
)

// loopRig builds two NICs connected via the loopback fallback (no fabric
// link), enough to exercise the DES pipeline in isolation.
func loopRig(t *testing.T, p Profile) (*sim.Engine, *NIC, *NIC, *host.Region) {
	t.Helper()
	eng := sim.NewEngine(1)
	hA := host.New(eng, host.H2)
	hB := host.New(eng, host.H3)
	a := New(eng, "a", p, hA, 0)
	b := New(eng, "b", p, hB, 0)
	region, err := hB.Alloc(2<<20, host.Page2M, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RegisterMR(MRInfo{
		Key: 77, Base: region.Base(), Size: region.Size(), Region: region,
		PageSize: uint64(host.Page2M), RemoteRead: true, RemoteWrite: true, Atomic: true,
	}); err != nil {
		t.Fatal(err)
	}
	return eng, a, b, region
}

// connect creates and binds QPs 1<->2 with the given completion sink on a.
func connect(t *testing.T, a, b *NIC, onComplete func(Completion)) {
	t.Helper()
	if err := a.CreateQP(1, onComplete, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateQP(2, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.ConnectQP(1, b, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.ConnectQP(2, a, 1); err != nil {
		t.Fatal(err)
	}
}

func TestNICLoopbackRead(t *testing.T) {
	eng, a, b, region := loopRig(t, CX4)
	copy(region.Bytes()[128:], "loopback payload")
	var comps []Completion
	connect(t, a, b, func(c Completion) { comps = append(comps, c) })
	buf := make([]byte, 16)
	err := a.PostSend(1, &WQE{WRID: 5, Op: OpRead, LocalData: buf,
		RemoteKey: 77, RemoteAddr: region.Base() + 128, Length: 16})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(comps) != 1 || comps[0].Status != StatusOK {
		t.Fatalf("completions = %+v", comps)
	}
	if string(buf) != "loopback payload" {
		t.Fatalf("read %q", buf)
	}
}

func TestBadRKeyNAK(t *testing.T) {
	eng, a, b, region := loopRig(t, CX4)
	var comps []Completion
	connect(t, a, b, func(c Completion) { comps = append(comps, c) })
	a.PostSend(1, &WQE{WRID: 1, Op: OpRead, RemoteKey: 999, RemoteAddr: region.Base(), Length: 8})
	eng.Run()
	if len(comps) != 1 || comps[0].Status != StatusRemoteAccessError {
		t.Fatalf("completions = %+v", comps)
	}
	if b.Counters().NAKs != 1 {
		t.Fatalf("NAK counter = %d", b.Counters().NAKs)
	}
}

func TestQPCMissPenaltyVisible(t *testing.T) {
	// The first message to a QP pays the QPC ICM fetch; the second does not.
	lat := func(warm bool) sim.Duration {
		eng, a, b, region := loopRig(t, CX4)
		var comps []Completion
		connect(t, a, b, func(c Completion) { comps = append(comps, c) })
		n := 1
		if warm {
			n = 2
		}
		for i := 0; i < n; i++ {
			a.PostSend(1, &WQE{WRID: uint64(i), Op: OpRead,
				RemoteKey: 77, RemoteAddr: region.Base(), Length: 8})
			eng.Run()
		}
		last := comps[len(comps)-1]
		return last.DoneTime.Sub(last.PostTime)
	}
	cold, warm := lat(false), lat(true)
	// The warm path avoids both the QPC and MTT miss penalties.
	if cold-warm < CX4.QPCMissPenalty {
		t.Fatalf("cold %v vs warm %v: miss penalties not visible", cold, warm)
	}
}

// Key Finding 3 at the DES level: with requester and responder traffic
// queued at the same egress arbiter, the requester ring (class 0) departs
// first.
func TestEgressPriorityKF3(t *testing.T) {
	eng := sim.NewEngine(1)
	h := host.New(eng, host.H3)
	n := New(eng, "n", CX4, h, 0)
	egress := n.egress
	var order []string
	// Fill the arbiter: responder-class first, then requester-class.
	egress.Submit(100*sim.Nanosecond, 1, func() { order = append(order, "rx-1") })
	egress.Submit(100*sim.Nanosecond, 1, func() { order = append(order, "rx-2") })
	egress.Submit(100*sim.Nanosecond, 0, func() { order = append(order, "tx-1") })
	eng.Run()
	// rx-1 was already in service; tx-1 must overtake rx-2.
	if order[1] != "tx-1" {
		t.Fatalf("egress order = %v (Tx ring must outrank Rx ring)", order)
	}
}

func TestInlineWriteFasterThanDMA(t *testing.T) {
	// Writes at or below InlineMax skip the payload DMA and complete sooner
	// per byte than just-above-threshold writes.
	lat := func(size int) sim.Duration {
		eng, a, b, region := loopRig(t, CX4)
		var comps []Completion
		connect(t, a, b, func(c Completion) { comps = append(comps, c) })
		// Warm caches first.
		a.PostSend(1, &WQE{WRID: 0, Op: OpWrite, LocalData: make([]byte, 8),
			RemoteKey: 77, RemoteAddr: region.Base(), Length: 8})
		eng.Run()
		a.PostSend(1, &WQE{WRID: 1, Op: OpWrite, LocalData: make([]byte, size),
			RemoteKey: 77, RemoteAddr: region.Base(), Length: size})
		eng.Run()
		last := comps[len(comps)-1]
		return last.DoneTime.Sub(last.PostTime)
	}
	inline := lat(CX4.InlineMax)
	dma := lat(CX4.InlineMax + 8)
	// The non-inline path adds a full DMA round (PCIe latency dominated).
	if dma-inline < CX4.PCIeLatency/2 {
		t.Fatalf("inline %v vs DMA %v: inline advantage missing", inline, dma)
	}
}

func TestWireBytesAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	h := host.New(eng, host.H3)
	n := New(eng, "n", CX4, h, 0)
	// Single-packet write: payload + one header.
	if got := n.wireBytes(&Message{Op: OpWrite, Length: 1000}); got != 1000+WireHeaderBytes {
		t.Fatalf("write wire bytes = %d", got)
	}
	// Multi-packet write: one header per MTU.
	if got := n.wireBytes(&Message{Op: OpWrite, Length: 2*CX4.MTU + 1}); got != 2*CX4.MTU+1+3*WireHeaderBytes {
		t.Fatalf("large write wire bytes = %d", got)
	}
	// Read request is header-only.
	if got := n.wireBytes(&Message{Op: OpRead, Length: 4096}); got != ReadReqBytes {
		t.Fatalf("read request wire bytes = %d", got)
	}
	// Read response carries the payload.
	if got := n.wireBytes(&Message{Op: OpRead, Length: 4096, IsResp: true}); got != 4096+WireHeaderBytes {
		t.Fatalf("read response wire bytes = %d", got)
	}
	// Write ACK is a bare header.
	if got := n.wireBytes(&Message{Op: OpWrite, IsResp: true}); got != AckBytes {
		t.Fatalf("ack wire bytes = %d", got)
	}
}

func TestPerTCCounters(t *testing.T) {
	eng, a, b, region := loopRig(t, CX4)
	done := 0
	connect(t, a, b, func(Completion) { done++ })
	a.PostSend(1, &WQE{WRID: 1, Op: OpWrite, LocalData: make([]byte, 64),
		RemoteKey: 77, RemoteAddr: region.Base(), Length: 64, TC: 3})
	eng.Run()
	if done != 1 {
		t.Fatal("write did not complete")
	}
	if a.Counters().TxBytesTC[3] == 0 {
		t.Fatal("per-TC egress counter not incremented")
	}
	if b.Counters().RxBytesTC[3] == 0 {
		t.Fatal("per-TC ingress counter not incremented")
	}
	if a.Counters().TxBytesTC[0] != 0 {
		// Only the response (same TC) flows back; TC0 must stay clean.
		t.Fatal("unrelated TC counter moved")
	}
}

func TestPostSendValidation(t *testing.T) {
	eng, a, b, region := loopRig(t, CX4)
	_ = eng
	connect(t, a, b, nil)
	if err := a.PostSend(99, &WQE{Op: OpRead}); err == nil {
		t.Fatal("unknown QP should error")
	}
	if err := a.PostSend(1, &WQE{Op: OpRead, TC: 99, RemoteKey: 77, RemoteAddr: region.Base(), Length: 8}); err == nil {
		t.Fatal("invalid TC should error")
	}
	if err := a.CreateQP(1, nil, nil); err == nil {
		t.Fatal("duplicate QPN should error")
	}
	if err := a.ConnectQP(42, b, 2); err == nil {
		t.Fatal("connecting unknown QP should error")
	}
	if err := b.RegisterMR(MRInfo{Key: 77}); err == nil {
		t.Fatal("duplicate MR key should error")
	}
}

func TestOutOfBoundsWriteRejected(t *testing.T) {
	eng, a, b, region := loopRig(t, CX4)
	var comps []Completion
	connect(t, a, b, func(c Completion) { comps = append(comps, c) })
	a.PostSend(1, &WQE{WRID: 1, Op: OpWrite, LocalData: make([]byte, 64),
		RemoteKey: 77, RemoteAddr: region.Base() + region.Size() - 8, Length: 64})
	eng.Run()
	if len(comps) != 1 || comps[0].Status != StatusRemoteAccessError {
		t.Fatalf("completions = %+v", comps)
	}
	// Nothing must have been written past the region.
	for _, v := range region.Bytes()[region.Size()-8:] {
		if v != 0 {
			t.Fatal("out-of-bounds write mutated memory")
		}
	}
}

// The NIC model's header-size constants must agree with the real RoCEv2
// framing this package computes.
func TestNICConstantsMatchWireFormat(t *testing.T) {
	// WireHeaderBytes is the per-packet overhead excluding payload for
	// payload-carrying packets: frame minus payload, with the write RETH
	// accounted inside the payload path... the model folds the RETH into
	// its flat header constant, so the write frame must sit within a RETH
	// of the model's accounting.
	writeFrame, err := wire.FrameBytes(wire.OpWriteOnly, 1000)
	if err != nil {
		t.Fatal(err)
	}
	modelWrite := 1000 + WireHeaderBytes
	if diff := writeFrame - modelWrite; diff < 0 || diff > wire.RETHBytes {
		t.Fatalf("write framing: wire %d vs model %d (diff %d)", writeFrame, modelWrite, diff)
	}

	readReq, err := wire.FrameBytes(wire.OpReadRequest, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diff := readReq - ReadReqBytes; diff < -4 || diff > 4 {
		t.Fatalf("read request framing: wire %d vs model %d", readReq, ReadReqBytes)
	}

	ack, err := wire.FrameBytes(wire.OpAcknowledge, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diff := ack - AckBytes; diff < -4 || diff > 4 {
		t.Fatalf("ack framing: wire %d vs model %d", ack, AckBytes)
	}
}

// Large messages segment into FIRST/MIDDLE/LAST RoCEv2 packets with
// contiguous PSNs and a reassemblable payload.
func TestLargeWriteSegmentsOnWire(t *testing.T) {
	payload := make([]byte, 2*CX4.MTU+100)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	m := &Message{Op: OpWrite, DstQPN: 9, RemoteAddr: 0x1000, RKey: 5,
		Length: len(payload), Data: payload, Seq: 7, PSN: 41}
	frames, err := encodeSegments(m, CX4.MTU)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("got %d segments, want 3", len(frames))
	}
	ops := []byte{wire.OpWriteFirst, wire.OpWriteMiddle, wire.OpWriteLast}
	var reassembled []byte
	for i, f := range frames {
		p, err := wire.Parse(f)
		if err != nil {
			t.Fatal(err)
		}
		if p.BTH.Opcode != ops[i] {
			t.Fatalf("segment %d opcode %#x, want %#x", i, p.BTH.Opcode, ops[i])
		}
		if p.BTH.PSN != uint32(41+i) {
			t.Fatalf("segment %d PSN %d", i, p.BTH.PSN)
		}
		if i == 0 && (p.Reth == nil || p.Reth.DMALen != uint32(len(payload))) {
			t.Fatalf("first segment RETH = %+v", p.Reth)
		}
		reassembled = append(reassembled, p.Payload...)
	}
	if string(reassembled) != string(payload) {
		t.Fatal("reassembled payload differs")
	}
	if err := verifySegments(frames, m); err != nil {
		t.Fatal(err)
	}
}

// The self-check must reject divergent frames.
func TestVerifySegmentsRejectsTampering(t *testing.T) {
	m := &Message{Op: OpWrite, DstQPN: 9, RemoteAddr: 0x1000, RKey: 5,
		Length: 8, Data: []byte("12345678"), Seq: 1}
	frames, err := encodeSegments(m, 4096)
	if err != nil {
		t.Fatal(err)
	}
	wrong := &Message{Op: OpWrite, DstQPN: 9, RemoteAddr: 0x2000, RKey: 5,
		Length: 8, Data: []byte("12345678"), Seq: 1}
	if err := verifySegments(frames, wrong); err == nil {
		t.Fatal("address mismatch not caught")
	}
	short := &Message{Op: OpWrite, DstQPN: 9, RemoteAddr: 0x1000, RKey: 5,
		Length: 4, Data: []byte("1234"), Seq: 1}
	if err := verifySegments(frames, short); err == nil {
		t.Fatal("length mismatch not caught")
	}
}

// TestMPTMissPenaltyGated pins the MR-context (MPT) pricing contract:
// profiles with MPTMissPenalty 0 never touch the ICM cache for MR contexts
// (legacy timing is bit-for-bit untouched), while a priced profile charges
// the fetch penalty exactly once per cold MR context.
func TestMPTMissPenaltyGated(t *testing.T) {
	run := func(p Profile, n int) (*NIC, sim.Duration) {
		eng, a, b, region := loopRig(t, p)
		var comps []Completion
		connect(t, a, b, func(c Completion) { comps = append(comps, c) })
		for i := 0; i < n; i++ {
			a.PostSend(1, &WQE{WRID: uint64(i), Op: OpRead,
				RemoteKey: 77, RemoteAddr: region.Base(), Length: 8})
			eng.Run()
		}
		last := comps[len(comps)-1]
		return b, last.DoneTime.Sub(last.PostTime)
	}

	// Gated off: the responder's ICM cache holds the QP context only.
	srv, legacyCold := run(CX4, 1)
	for _, k := range srv.QPC().Keys() {
		if k == MRCtxKey(77) {
			t.Fatal("MPTMissPenalty=0 profile installed an MR context")
		}
	}

	// Gated on: same profile except MR contexts are priced.
	priced := CX4
	priced.MPTMissPenalty = 2 * sim.Microsecond
	srv, pricedCold := run(priced, 1)
	if !srv.QPC().Contains(MRCtxKey(77)) {
		t.Fatal("priced profile did not install the MR context")
	}
	if d := pricedCold - legacyCold; d != priced.MPTMissPenalty {
		t.Fatalf("cold-read delta = %v, want exactly one MPT penalty (%v)", d, priced.MPTMissPenalty)
	}

	// Warm path: the second read pays no MPT penalty, so the priced and
	// legacy profiles agree once the context is resident.
	_, legacyWarm := run(CX4, 2)
	_, pricedWarm := run(priced, 2)
	if legacyWarm != pricedWarm {
		t.Fatalf("warm reads diverge: legacy %v vs priced %v", legacyWarm, pricedWarm)
	}
}
