package nic

import (
	"testing"

	"github.com/thu-has/ragnar/internal/host"
)

func TestStageRingDoorbell(t *testing.T) {
	eng, a, b, region := loopRig(t, CX5)
	var comps []Completion
	connect(t, a, b, func(c Completion) { comps = append(comps, c) })
	for i := 1; i <= 3; i++ {
		err := a.StageSend(1, &WQE{WRID: uint64(i), Op: OpWrite, LocalData: make([]byte, 8),
			RemoteKey: 77, RemoteAddr: region.Base(), Length: 8})
		if err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(comps) != 0 {
		t.Fatalf("staged entries completed without a doorbell: %d", len(comps))
	}
	if staged, enabled := a.SQDepth(1); staged != 3 || enabled != 0 {
		t.Fatalf("SQDepth = (%d,%d), want (3,0)", staged, enabled)
	}
	if err := a.RingDoorbell(1, 2); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(comps) != 2 || comps[0].WRID != 1 || comps[1].WRID != 2 {
		t.Fatalf("after Ring(2): comps %v, want WRIDs 1,2", comps)
	}
	// Over-ringing clamps to the staged count.
	if err := a.RingDoorbell(1, 10); err != nil {
		t.Fatal(err)
	}
	if staged, enabled := a.SQDepth(1); enabled > staged {
		t.Fatalf("enabled %d exceeds staged %d", enabled, staged)
	}
	eng.Run()
	if len(comps) != 3 || comps[2].WRID != 3 {
		t.Fatalf("after Ring(all): comps %v, want WRIDs 1,2,3", comps)
	}
	// A fully drained ring compacts so slot 0 maps to the next staged entry.
	if staged, enabled := a.SQDepth(1); staged != 0 || enabled != 0 {
		t.Fatalf("drained SQDepth = (%d,%d), want (0,0)", staged, enabled)
	}
}

// TestPostVsStageRingByteIdentical is the nic-level seam: a burst posted via
// the legacy one-shot PostSend and the same burst staged then enabled in one
// doorbell produce identical completion streams, timestamps included.
func TestPostVsStageRingByteIdentical(t *testing.T) {
	run := func(stageFirst bool) []Completion {
		eng, a, b, region := loopRig(t, CX5)
		var comps []Completion
		connect(t, a, b, func(c Completion) { comps = append(comps, c) })
		for i := 0; i < 4; i++ {
			wqe := &WQE{WRID: uint64(i + 1), Op: OpWrite, LocalData: make([]byte, 64*(i+1)),
				RemoteKey: 77, RemoteAddr: region.Base() + uint64(1024*i), Length: 64 * (i + 1)}
			var err error
			if stageFirst {
				err = a.StageSend(1, wqe)
			} else {
				err = a.PostSend(1, wqe)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if stageFirst {
			if err := a.RingDoorbell(1, 0); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run()
		return comps
	}
	legacy := run(false)
	staged := run(true)
	if len(legacy) != 4 || len(staged) != 4 {
		t.Fatalf("completion counts: legacy %d staged %d, want 4", len(legacy), len(staged))
	}
	for i := range legacy {
		l, s := legacy[i], staged[i]
		if l.WRID != s.WRID || l.Status != s.Status || l.Bytes != s.Bytes ||
			l.PostTime != s.PostTime || l.DoneTime != s.DoneTime {
			t.Fatalf("completion %d diverged: legacy %+v staged %+v", i, l, s)
		}
	}
}

func TestWaitEnableCrossQP(t *testing.T) {
	eng, a, b, region := loopRig(t, CX5)
	var comps1, comps3 []Completion
	connect(t, a, b, func(c Completion) { comps1 = append(comps1, c) })
	if err := a.CreateQP(3, func(c Completion) { comps3 = append(comps3, c) }, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateQP(4, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.ConnectQP(3, b, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.ConnectQP(4, a, 3); err != nil {
		t.Fatal(err)
	}
	c1 := NewCQCounter()
	if err := a.BindQPCounter(1, c1); err != nil {
		t.Fatal(err)
	}
	// QP3's chain: WAIT for one completion on QP1's counter, then WRITE.
	a.StageSend(3, &WQE{WRID: 10, Op: OpWait, WaitCQ: c1, WaitThresh: 1})
	a.StageSend(3, &WQE{WRID: 11, Op: OpWrite, LocalData: make([]byte, 16),
		RemoteKey: 77, RemoteAddr: region.Base(), Length: 16})
	if err := a.RingDoorbell(3, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(comps3) != 0 {
		t.Fatalf("chain ran before its WAIT was satisfied: %v", comps3)
	}
	// QP1 completes one write -> counter reaches 1 -> QP3 wakes.
	if err := a.PostSend(1, &WQE{WRID: 1, Op: OpWrite, LocalData: make([]byte, 8),
		RemoteKey: 77, RemoteAddr: region.Base() + 256, Length: 8}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if c1.Count() != 1 {
		t.Fatalf("counter = %d, want 1", c1.Count())
	}
	if len(comps3) != 2 || comps3[0].WRID != 10 || comps3[0].Op != OpWait || comps3[1].WRID != 11 {
		t.Fatalf("chain completions %v, want WAIT(10) then WRITE(11)", comps3)
	}
	if a.Counters().WaitWQEs != 1 || a.Counters().WaitWakes != 1 {
		t.Fatalf("WaitWQEs=%d WaitWakes=%d, want 1,1", a.Counters().WaitWQEs, a.Counters().WaitWakes)
	}
	// ENABLE from QP1 opens QP3's next staged entry without a host doorbell.
	a.StageSend(3, &WQE{WRID: 12, Op: OpWrite, LocalData: make([]byte, 8),
		RemoteKey: 77, RemoteAddr: region.Base() + 512, Length: 8})
	if err := a.PostSend(1, &WQE{WRID: 2, Op: OpEnable, TargetQPN: 3}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(comps3) != 3 || comps3[2].WRID != 12 {
		t.Fatalf("ENABLE did not release the staged entry: %v", comps3)
	}
	if a.Counters().EnableWQEs != 1 {
		t.Fatalf("EnableWQEs = %d, want 1", a.Counters().EnableWQEs)
	}
}

func TestSelfModifyPatchesStagedWQE(t *testing.T) {
	eng, a, b, region := loopRig(t, CX5)
	var comps []Completion
	connect(t, a, b, func(c Completion) { comps = append(comps, c) })
	// b needs its own path back into a: QP2 is already connected to QP1.
	win, err := a.hst.Alloc(4096, host.Page4K, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterMR(MRInfo{Key: 55, Base: win.Base(), Size: win.Size(), Region: win,
		PageSize: uint64(host.Page4K), RemoteWrite: true}); err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterSQWindow(1, 55, win.Base(), 8); err != nil {
		t.Fatal(err)
	}
	// Stage (not enable) a WRITE aimed at offset 256; the peer then rewrites
	// its RemoteAddr field through the window to offset 1024.
	payload := []byte("patchable")
	a.StageSend(1, &WQE{WRID: 1, Op: OpWrite, LocalData: payload,
		RemoteKey: 77, RemoteAddr: region.Base() + 256, Length: len(payload)})
	newAddr := make([]byte, 8)
	put64(newAddr, region.Base()+1024)
	if err := b.PostSend(2, &WQE{WRID: 9, Op: OpWrite, LocalData: newAddr,
		RemoteKey: 55, RemoteAddr: win.Base() + SQOffRemoteAddr, Length: 8}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if a.Counters().SelfModifies != 1 {
		t.Fatalf("SelfModifies = %d, want 1", a.Counters().SelfModifies)
	}
	if err := a.RingDoorbell(1, 1); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(comps) != 1 || comps[0].WRID != 1 || comps[0].Status != StatusOK {
		t.Fatalf("patched write completions %v", comps)
	}
	got := region.Bytes()[1024 : 1024+len(payload)]
	if string(got) != string(payload) {
		t.Fatalf("payload landed at stale address: %q at 1024", got)
	}
	for _, bb := range region.Bytes()[256 : 256+len(payload)] {
		if bb != 0 {
			t.Fatalf("payload also landed at the pre-patch address")
		}
	}
}

// TestReadLocalLanding pins the READ scatter path: a READ with a LocalKey
// destination places its payload in the registered local MR, and a landing
// that covers an SQ window patches staged entries.
func TestReadLocalLanding(t *testing.T) {
	eng, a, b, region := loopRig(t, CX5)
	var comps []Completion
	connect(t, a, b, func(c Completion) { comps = append(comps, c) })
	copy(region.Bytes()[64:], "remote-bytes")
	dst, err := a.hst.Alloc(4096, host.Page4K, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterMR(MRInfo{Key: 10, Base: dst.Base(), Size: dst.Size(), Region: dst,
		PageSize: uint64(host.Page4K)}); err != nil {
		t.Fatal(err)
	}
	err = a.PostSend(1, &WQE{WRID: 1, Op: OpRead,
		RemoteKey: 77, RemoteAddr: region.Base() + 64, Length: 12,
		LocalKey: 10, LocalAddr: dst.Base() + 128})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(comps) != 1 || comps[0].Status != StatusOK {
		t.Fatalf("read completions %v", comps)
	}
	if got := string(dst.Bytes()[128:140]); got != "remote-bytes" {
		t.Fatalf("local landing = %q, want %q", got, "remote-bytes")
	}
}
