package nic

import "math"

// This file implements the flow-level (fluid) contention model used by the
// Grain-I/II bandwidth experiments: the ~6000-combination priority sweep of
// Figure 4, the priority covert channel of Figure 9 and the shuffle/join
// fingerprints of Figure 12. Latency-level (Grain-III/IV) experiments use
// the discrete-event pipeline in nic.go instead; both are parameterised by
// the same Profile so the two views describe one NIC.
//
// Topology: one server NIC shared by any number of client NICs (the paper's
// threat model, Figure 2). Flows on the same client additionally share that
// client's NIC and wire. The solver runs progressive-filling max-min over:
//
//   - each NIC's processing-unit complex, where the logical Tx arbiter has
//     strict priority over the logical Rx arbiter (Key Finding 3), with a
//     small anti-starvation floor;
//   - each NIC's host interface, where posted PCIe traffic (inbound RDMA
//     Write payload delivery) passes non-posted traffic (DMA reads that
//     fetch read-response data and descriptors) — the tag-starvation
//     behaviour that makes >=512 B write storms collapse read bandwidth;
//   - the wire directions of every client-server pair (ETS within a
//     direction);
//   - per-flow requester caps (QP count x per-QP message rate);
//   - the NoC clock boost: once the small-message load offered to the
//     server NIC crosses a threshold its complex capacity multiplies
//     (Key Finding 2), producing >200 % aggregate bandwidth under
//     small-write contention from multiple clients.

// FlowSpec describes one traffic flow for the fluid model.
type FlowSpec struct {
	Name     string
	Op       Opcode
	MsgBytes int
	QPNum    int
	// Client selects which client NIC hosts the flow; flows with the same
	// value share that client's NIC and wire.
	Client int
	// FromServer inverts the initiator (the paper's "reverse" traffic:
	// the operation is posted on the server side, targeting the client).
	FromServer bool
	TC         int
}

// FlowResult is the steady-state allocation for one flow.
type FlowResult struct {
	RateMpps    float64 // messages per microsecond
	GoodputGbps float64 // payload goodput
}

// Per-NIC resource offsets.
const (
	rComplexTx = iota
	rComplexRx
	rPCIePost
	rPCIeNonPost
	nicResources
)

// Per-client extra wire resources (client<->server direction pair), plus —
// for isolation profiles — this tenant's partitioned share of each server
// NIC resource. A flow's server-side demands are mirrored into its client's
// share resources, whose capacities are the server capacities scaled by the
// tenant's DWRR weight fraction; under non-ISO profiles the mirrors carry
// zero demand and never bind.
const (
	rWireUp   = nicResources + iota // client -> server
	rWireDown                       // server -> client
	rShareComplexTx
	rShareComplexRx
	rSharePCIePost
	rSharePCIeNonPost
	clientResources
)

// DebugFluid, when set, receives solver trace lines (calibration only).
var DebugFluid func(format string, args ...any)

// floorFrac is the fraction of a priority resource's capacity the
// low-priority class keeps even under full high-priority pressure
// (hardware never lets the loser starve completely, or ACK generation
// would deadlock).
const floorFrac = 0.18

// insigFrac: a flow whose full-cap demand on a resource stays below this
// fraction of capacity is treated as parasitic there (ACK bytes, CQE
// writebacks) and neither binds to nor freezes on that resource.
const insigFrac = 0.04

type fluid struct {
	p        Profile
	nClients int
	nRes     int
	dem      [][]float64 // [flow][resource]
	caps     []float64
	capacity []float64 // static capacities (priority Rx/NonPost handled separately)
	insig    [][]bool
	// iso selects the isolation-hardened server model: per-tenant weighted
	// shares of the server complex and host interface replace the strict
	// Tx-over-Rx / posted-over-non-posted priority damping there.
	iso bool
}

// serverRes indexes a server NIC resource; clientRes a client NIC resource.
func (f *fluid) serverRes(r int) int    { return r }
func (f *fluid) clientRes(c, r int) int { return nicResources + c*clientResources + r }

// demandsInto fills the demand vector for one flow.
func (fl *fluid) demandsInto(f FlowSpec, d []float64) {
	p := fl.p
	s := float64(f.MsgBytes)
	pkts := math.Ceil(float64(f.MsgBytes) / float64(p.MTU))
	if pkts < 1 {
		pkts = 1
	}
	// Per-DMA engine overhead in equivalent bytes (~8 ns of TLP turnaround),
	// which lets small-message storms eat host-interface capacity.
	tlp := p.PCIeGBps * 8.0

	// Initiator and target resource index functions.
	ini := func(r int) int { return fl.clientRes(f.Client, r) }
	tgt := func(r int) int { return fl.serverRes(r) }
	wireIT, wireTI := fl.clientRes(f.Client, rWireUp), fl.clientRes(f.Client, rWireDown)
	if f.FromServer {
		ini, tgt = tgt, ini
		wireIT, wireTI = fl.clientRes(f.Client, rWireDown), fl.clientRes(f.Client, rWireUp)
	}

	switch f.Op {
	case OpWrite:
		d[ini(rComplexTx)] = 1
		d[ini(rPCIeNonPost)] = 96 + s + tlp // SQE + payload fetch are DMA reads
		d[ini(rPCIePost)] = 32 + tlp/2      // CQE delivery
		d[wireIT] = s + pkts*WireHeaderBytes
		d[tgt(rComplexRx)] = pkts
		d[tgt(rPCIePost)] = s + tlp // payload delivery is posted
		d[tgt(rComplexTx)] = 0.25   // coalesced ACK generation
		d[wireTI] = 0.1 * AckBytes  // ACKs coalesce and piggyback on the wire
		d[ini(rComplexRx)] = 0.25
	case OpSend:
		d[ini(rComplexTx)] = 1
		d[ini(rPCIeNonPost)] = 96 + s + tlp
		d[ini(rPCIePost)] = 32 + tlp/2
		d[wireIT] = s + pkts*WireHeaderBytes
		d[tgt(rComplexRx)] = 1.2 * pkts // recv WQE consumption is extra Rx work
		d[tgt(rPCIePost)] = s + tlp
		d[tgt(rComplexTx)] = 0.25
		d[wireTI] = 0.1 * AckBytes
		d[ini(rComplexRx)] = 0.25
	case OpRead:
		d[ini(rComplexTx)] = 1
		d[ini(rPCIeNonPost)] = 96 + tlp/2 // SQE fetch
		d[ini(rPCIePost)] = 32 + s + tlp  // response lands via posted writes
		d[wireIT] = ReadReqBytes
		d[tgt(rComplexRx)] = 0.3       // request parse rides the fast path
		d[tgt(rPCIeNonPost)] = s + tlp // response data fetch is non-posted
		d[tgt(rComplexTx)] = pkts      // response generation is Tx work
		d[wireTI] = s + pkts*WireHeaderBytes
		d[ini(rComplexRx)] = 0.5 * pkts
	case OpAtomicFAA, OpAtomicCAS:
		d[ini(rComplexTx)] = 1
		d[ini(rPCIeNonPost)] = 96 + tlp/2
		d[ini(rPCIePost)] = 40 + tlp/2
		d[wireIT] = WireHeaderBytes + 28
		d[tgt(rComplexRx)] = 1.5 // execute unit serialises on the Rx side
		d[tgt(rPCIeNonPost)] = 8 + tlp
		d[tgt(rPCIePost)] = 8 + tlp
		d[tgt(rComplexTx)] = 1
		d[wireTI] = AckBytes + 8
		d[ini(rComplexRx)] = 0.5
	}

	// Encryption profiles add AES work on both processing complexes, priced
	// in PU-time equivalents so a big payload's cipher time competes with
	// other messages for the same complex capacity.
	if et := p.encTime(f.MsgBytes); et > 0 {
		d[ini(rComplexTx)] += float64(et) / float64(p.TxPUTime)
		d[tgt(rComplexRx)] += float64(et) / float64(p.RxPUTime)
	}

	// Isolation profiles: mirror this flow's server-NIC demands into its
	// tenant's share resources, which cap the flow at the tenant's weighted
	// fraction of each server resource.
	if fl.iso {
		for r := 0; r < nicResources; r++ {
			d[fl.clientRes(f.Client, rShareComplexTx+r)] = d[fl.serverRes(r)]
		}
	}
}

// isoWeight returns a tenant's DWRR weight with the arbiter's >=1 clamp.
func isoWeight(p Profile, c int) float64 {
	w := p.ISOWeights[tenantSlot(c)]
	if w < 1 {
		w = 1
	}
	return float64(w)
}

// isoShare returns the fraction of each server resource tenant c owns:
// its weight over the sum of all present tenants' weights.
func isoShare(p Profile, c, nClients int) float64 {
	var sum float64
	for i := 0; i < nClients; i++ {
		sum += isoWeight(p, i)
	}
	return isoWeight(p, c) / sum
}

// requesterCap returns a flow's requester-side message-rate cap (msgs/us).
func requesterCap(p Profile, f FlowSpec) float64 {
	q := f.QPNum
	if q < 1 {
		q = 1
	}
	return float64(q) * p.MaxQPRate
}

func (fl *fluid) load(rates []float64, res int) float64 {
	var l float64
	for i := range rates {
		l += rates[i] * fl.dem[i][res]
	}
	return l
}

// solvePhase runs progressive filling with fixed low-priority capacities
// (passed in cap, which the caller has already derived from the previous
// phase's high-priority loads).
func (fl *fluid) solvePhase(cap []float64) []float64 {
	n := len(fl.caps)
	rates := make([]float64, n)
	active := make([]bool, n)
	for i := range active {
		active[i] = fl.caps[i] > 0
	}
	const eps = 1e-9
	for round := 0; round < 4*fl.nRes+n; round++ {
		anyActive := false
		for _, a := range active {
			anyActive = anyActive || a
		}
		if !anyActive {
			break
		}
		delta := math.Inf(1)
		for res := 0; res < fl.nRes; res++ {
			var growth float64
			for i := range rates {
				if active[i] && !fl.insig[i][res] {
					growth += fl.dem[i][res]
				}
			}
			if growth <= eps {
				continue
			}
			slack := cap[res] - fl.load(rates, res)
			if slack < 0 {
				slack = 0
			}
			if d := slack / growth; d < delta {
				delta = d
			}
		}
		for i := range rates {
			if active[i] {
				if d := fl.caps[i] - rates[i]; d < delta {
					delta = d
				}
			}
		}
		if math.IsInf(delta, 1) {
			break
		}
		if delta > 0 {
			for i := range rates {
				if active[i] {
					rates[i] += delta
				}
			}
		}
		frozeAny := false
		for i := range rates {
			if !active[i] {
				continue
			}
			if fl.caps[i]-rates[i] <= eps {
				active[i] = false
				frozeAny = true
				continue
			}
			for res := 0; res < fl.nRes; res++ {
				if fl.dem[i][res] > eps && !fl.insig[i][res] &&
					cap[res]-fl.load(rates, res) <= 1e-6*cap[res]+eps {
					active[i] = false
					frozeAny = true
					break
				}
			}
		}
		if delta <= 0 && !frozeAny {
			break
		}
	}
	return rates
}

// Solve computes steady-state rates for a set of concurrent flows between
// client NICs and one server NIC sharing the given profile. It returns one
// result per flow in input order.
func Solve(p Profile, flows []FlowSpec) []FlowResult {
	n := len(flows)
	if n == 0 {
		return nil
	}
	nClients := 1
	for _, f := range flows {
		if f.Client+1 > nClients {
			nClients = f.Client + 1
		}
	}
	fl := &fluid{p: p, nClients: nClients, iso: p.ArbiterKind == ArbiterDWRR}
	fl.nRes = nicResources + nClients*clientResources
	fl.dem = make([][]float64, n)
	fl.caps = make([]float64, n)
	for i, f := range flows {
		fl.dem[i] = make([]float64, fl.nRes)
		fl.demandsInto(f, fl.dem[i])
		fl.caps[i] = requesterCap(p, f)
	}

	// NoC boost (Key Finding 2): triggered by the small-message load offered
	// to the server NIC, which every flow crosses.
	var smallLoad float64
	for i, f := range flows {
		if f.MsgBytes <= p.NoCSmallMsg {
			smallLoad += fl.caps[i]
		}
	}
	complexCap := p.ComplexPPS
	if smallLoad > p.NoCBoostPPS {
		complexCap *= p.NoCBoost
	}
	pcieCap := p.PCIeGBps * 1000.0           // bytes/us
	wireCap := p.LineRateGbps / 8.0 * 1000.0 // bytes/us

	// Static (high-priority / non-priority) capacities.
	capacity := make([]float64, fl.nRes)
	setNIC := func(base int) {
		capacity[base+rComplexTx] = complexCap
		capacity[base+rComplexRx] = complexCap
		capacity[base+rPCIePost] = pcieCap
		capacity[base+rPCIeNonPost] = pcieCap
	}
	setNIC(0)
	for c := 0; c < nClients; c++ {
		base := nicResources + c*clientResources
		setNIC(base)
		capacity[base+rWireUp] = wireCap
		capacity[base+rWireDown] = wireCap
		// Tenant shares of the server NIC. A lone tenant owns the full
		// capacities, so a solo ISO flow pays nothing for the partition;
		// under non-ISO profiles the mirrors carry zero demand and the
		// full-capacity setting keeps them inert.
		share := 1.0
		if fl.iso && nClients > 1 {
			share = isoShare(p, c, nClients)
		}
		capacity[base+rShareComplexTx] = complexCap * share
		capacity[base+rShareComplexRx] = complexCap * share
		capacity[base+rSharePCIePost] = pcieCap * share
		capacity[base+rSharePCIeNonPost] = pcieCap * share
	}

	fl.capacity = capacity
	fl.insig = make([][]bool, n)
	for i := range fl.insig {
		fl.insig[i] = make([]bool, fl.nRes)
		for res := 0; res < fl.nRes; res++ {
			fl.insig[i][res] = fl.dem[i][res]*fl.caps[i] < insigFrac*capacity[res]
		}
	}

	// Phase iteration: high-priority loads define low-priority capacities.
	// Start optimistic, then tighten until stable.
	cur := append([]float64(nil), capacity...)
	var rates []float64
	for phase := 0; phase < 24; phase++ {
		rates = fl.solvePhase(cur)
		// Damped update: the tx-load/rx-capacity feedback loop (a flow's Tx
		// priority can starve the Rx ring its own requests need) oscillates
		// without averaging.
		lower := func(base int) {
			tx := fl.load(rates, base+rComplexTx)
			want := math.Max(floorFrac*complexCap, complexCap-tx)
			cur[base+rComplexRx] = 0.5*cur[base+rComplexRx] + 0.5*want
			post := fl.load(rates, base+rPCIePost)
			want = math.Max(floorFrac*pcieCap, pcieCap-post)
			cur[base+rPCIeNonPost] = 0.5*cur[base+rPCIeNonPost] + 0.5*want
		}
		// The isolation architecture replaces the server's strict priorities
		// (Tx over Rx, posted over non-posted) with the weighted shares
		// above, so the server keeps its full static capacities — that is
		// exactly what kills the KF3 priority channel. Client NICs are
		// unmodified hardware and keep the priority damping.
		if !fl.iso {
			lower(0)
		}
		for c := 0; c < nClients; c++ {
			lower(nicResources + c*clientResources)
		}
		if DebugFluid != nil {
			DebugFluid("phase %d rates=%v", phase, rates)
		}
	}

	out := make([]FlowResult, n)
	for i, f := range flows {
		out[i] = FlowResult{
			RateMpps:    rates[i],
			GoodputGbps: rates[i] * float64(f.MsgBytes) * 8.0 / 1000.0,
		}
	}
	return out
}

// Solo returns the bandwidth a flow achieves with no competition.
func Solo(p Profile, f FlowSpec) FlowResult {
	return Solve(p, []FlowSpec{f})[0]
}

// ReductionPct returns how much of the solo goodput is lost under
// contention, in percent (negative values mean the flow gained bandwidth).
func ReductionPct(solo, contended FlowResult) float64 {
	if solo.GoodputGbps == 0 {
		return 0
	}
	return (1 - contended.GoodputGbps/solo.GoodputGbps) * 100
}
