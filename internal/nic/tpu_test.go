package nic

import (
	"math/rand"
	"testing"

	"github.com/thu-has/ragnar/internal/sim"
)

// noiseless returns a CX-4 TPU with jitter disabled so the deterministic
// offset surface can be asserted exactly.
func noiseless() *TPU {
	p := CX4
	p.TPUNoiseSig = 0
	p.TPUSpike = 0
	p.TPUSpikeP = 0
	return NewTPU(p, rand.New(rand.NewSource(1)))
}

func TestOffsetComponentAlignmentDrops(t *testing.T) {
	tpu := noiseless()
	// Key Finding 4 structure: 8 B-aligned offsets are faster than
	// unaligned; 64 B multiples faster still.
	unaligned := tpu.OffsetComponent(3)
	aligned8 := tpu.OffsetComponent(8)
	aligned64 := tpu.OffsetComponent(64)
	if aligned8 >= unaligned {
		t.Fatalf("8B-aligned (%v) not faster than unaligned (%v)", aligned8, unaligned)
	}
	if aligned64 >= aligned8 {
		t.Fatalf("64B-aligned (%v) not faster than 8B-aligned (%v)", aligned64, aligned8)
	}
}

func TestOffsetComponent2048Periodicity(t *testing.T) {
	tpu := noiseless()
	// Same phase within the 2048 B sawtooth -> same component.
	for _, off := range []uint64{8, 72, 520} {
		a := tpu.OffsetComponent(off)
		b := tpu.OffsetComponent(off + 2048)
		if a != b {
			t.Fatalf("offset %d and %d differ: %v vs %v", off, off+2048, a, b)
		}
	}
	// The sawtooth ramps within a period: later unaligned phase is slower.
	lo := tpu.OffsetComponent(9)
	hi := tpu.OffsetComponent(9 + 1024)
	if hi <= lo {
		t.Fatalf("sawtooth not increasing: %v at 9 vs %v at 1033", lo, hi)
	}
}

func TestTranslateBankConflict(t *testing.T) {
	tpu := noiseless()
	req := func(off uint64) Request {
		return Request{MRKey: 1, Offset: off, Length: 64, MRBase: 2 << 20, PageSize: 2 << 20}
	}
	// Warm MTT and pipeline.
	tpu.Translate(req(0))
	// Same bank back to back: offsets 0 and 1024 share bank (1024/64=16 % 16 == 0).
	base := tpu.Translate(req(1024))
	_, conflicts, _, _ := tpu.Counters()
	if conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", conflicts)
	}
	// Different bank: offset 64 (bank 1) after 1024 (bank 0).
	other := tpu.Translate(req(64))
	if base <= other {
		t.Fatalf("bank conflict (%v) not slower than conflict-free (%v)", base, other)
	}
}

func TestTranslateMRSwitchCost(t *testing.T) {
	tpu := noiseless()
	reqA := Request{MRKey: 1, Offset: 128, Length: 64, MRBase: 2 << 20, PageSize: 2 << 20}
	reqB := Request{MRKey: 2, Offset: 128, Length: 64, MRBase: 4 << 20, PageSize: 2 << 20}
	tpu.Translate(reqA)
	tpu.Translate(reqA) // warm: same MR, but same bank -> capture that cost
	sameMR := tpu.Translate(reqA)
	swMR := tpu.Translate(reqB)
	// Both have the same bank-conflict structure; the MR switch adds cost
	// (minus the MTT miss for B's first page, so warm B once more).
	tpu.Translate(reqA)
	swMRWarm := tpu.Translate(reqB)
	if swMRWarm <= sameMR {
		t.Fatalf("MR switch (%v) not slower than same MR (%v)", swMRWarm, sameMR)
	}
	_ = swMR
	_, _, switches, _ := tpu.Counters()
	if switches < 2 {
		t.Fatalf("MR switches = %d, want >= 2", switches)
	}
}

func TestTranslateMTTMiss(t *testing.T) {
	tpu := noiseless()
	req := Request{MRKey: 9, Offset: 0, Length: 64, MRBase: 2 << 20, PageSize: 2 << 20}
	cold := tpu.Translate(req)
	tpu.Reset()
	warm := tpu.Translate(req)
	if cold-warm < CX4.MTTMissPenalty/2 {
		t.Fatalf("MTT miss penalty not visible: cold %v warm %v", cold, warm)
	}
	_, _, _, misses := tpu.Counters()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
}

func TestTranslateBeatsScaleWithLength(t *testing.T) {
	tpu := noiseless()
	small := Request{MRKey: 1, Offset: 64, Length: 64, MRBase: 2 << 20, PageSize: 2 << 20}
	big := Request{MRKey: 1, Offset: 64, Length: 2048, MRBase: 2 << 20, PageSize: 2 << 20}
	tpu.Translate(small) // warm MTT
	tpu.Reset()
	dSmall := tpu.Translate(small)
	tpu.Reset()
	dBig := tpu.Translate(big)
	// 2048 B = 4 beats of 512 B vs 1 beat: roughly 4x the base component.
	if dBig < dSmall*3 {
		t.Fatalf("beat scaling too weak: 64B=%v 2048B=%v", dSmall, dBig)
	}
}

func TestTranslateMinimumServiceTime(t *testing.T) {
	p := CX4
	p.TPUBase = 0
	p.TPUDrop64 = 100 * sim.Microsecond // absurd drop to force negative
	tpu := NewTPU(p, rand.New(rand.NewSource(1)))
	d := tpu.Translate(Request{MRKey: 1, Offset: 64, Length: 8, MRBase: 2 << 20, PageSize: 2 << 20})
	if d < sim.Nanosecond {
		t.Fatalf("service time %v below floor", d)
	}
}

func TestTranslateDeterministicPerSeed(t *testing.T) {
	run := func() []sim.Duration {
		tpu := NewTPU(CX4, rand.New(rand.NewSource(7)))
		var out []sim.Duration
		for i := 0; i < 50; i++ {
			out = append(out, tpu.Translate(Request{
				MRKey: 1, Offset: uint64(i * 24), Length: 64,
				MRBase: 2 << 20, PageSize: 2 << 20,
			}))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
