package nic

import "github.com/thu-has/ragnar/internal/sim"

// ArbiterKind names the egress-arbiter strategy a Profile composes. The
// zero value is the legacy strict-priority pick, so profiles that predate
// the strategy seam keep their exact schedules.
type ArbiterKind int

const (
	// ArbiterStrict serves the lowest class first (requester ring before
	// responder ring), FIFO within a class — byte-identical to the old
	// priority-server egress.
	ArbiterStrict ArbiterKind = iota
	// ArbiterDWRR serves tenants by deficit-weighted round-robin over
	// bytes, the GLSVLSI'23 isolation TX architecture: each tenant earns
	// quantum x weight credit per cycle and spends it on its head-of-line
	// request, so one tenant's burst cannot starve another's schedule.
	ArbiterDWRR
)

func (k ArbiterKind) String() string {
	switch k {
	case ArbiterStrict:
		return "strict"
	case ArbiterDWRR:
		return "dwrr"
	}
	return "unknown"
}

// MaxTenants bounds the per-tenant state in the DWRR arbiter and the ISO
// credit pools. Fixed arrays keep the hot path allocation-free.
const MaxTenants = 8

// ArbiterStrategy is the profile-selectable egress scheduling policy. It is
// a sim.Arbiter plus a self-describing kind; Pick must be allocation-free
// (guarded by BenchmarkArbiterPick in CI).
type ArbiterStrategy interface {
	sim.Arbiter
	Kind() ArbiterKind
}

// StrictArbiter reproduces the legacy priority server: first index of the
// minimum class. Because the arbitrated queue is FIFO by arrival, picking
// the first minimum-class entry at every dequeue yields exactly the
// schedule of the old sorted-insert + pop-front priority queue.
type StrictArbiter struct{}

func (StrictArbiter) Kind() ArbiterKind { return ArbiterStrict }

func (StrictArbiter) Pick(q []sim.ReqMeta) int {
	best := 0
	for i := 1; i < len(q); i++ {
		if q[i].Class < q[best].Class {
			best = i
		}
	}
	return best
}

// DWRRArbiter is a deficit-weighted round-robin scheduler over tenants.
// Each tenant accumulates quantum x weight bytes of credit per visit; a
// tenant whose head-of-line request fits its deficit is served and charged.
// Tenant IDs outside [0, MaxTenants) fold into slot 0.
type DWRRArbiter struct {
	weights [MaxTenants]int
	deficit [MaxTenants]int64
	quantum int64
	next    int // round-robin cursor, persists across picks
}

// NewDWRRArbiter builds a DWRR arbiter. Weights of zero or below are
// clamped to 1 so every tenant makes progress and the credit loop
// terminates; a zero quantum defaults to 2048 bytes (half an MTU on the
// modeled parts — small enough that interleaving happens at message
// granularity).
func NewDWRRArbiter(weights [MaxTenants]int, quantum int) *DWRRArbiter {
	a := &DWRRArbiter{quantum: int64(quantum)}
	if a.quantum <= 0 {
		a.quantum = 2048
	}
	for i, w := range weights {
		if w < 1 {
			w = 1
		}
		a.weights[i] = w
	}
	return a
}

func (a *DWRRArbiter) Kind() ArbiterKind { return ArbiterDWRR }

// Weights returns the (clamped) per-tenant weight table.
func (a *DWRRArbiter) Weights() [MaxTenants]int { return a.weights }

func tenantSlot(t int) int {
	if t < 0 || t >= MaxTenants {
		return 0
	}
	return t
}

// Pick scans the waiting requests, finds each present tenant's head-of-line
// entry (lowest queue index — arrival order within a tenant is preserved),
// then cycles the round-robin cursor topping up deficits until some
// tenant's head-of-line cost fits. The cycle count is bounded: one top-up
// adds quantum x weight >= quantum bytes, so at most maxBytes/quantum +
// MaxTenants visits are needed; a hard cap keeps adversarial inputs from
// looping, falling back to the first present tenant.
func (a *DWRRArbiter) Pick(q []sim.ReqMeta) int {
	if len(q) == 1 {
		return 0
	}
	// Head-of-line request per tenant. -1 = tenant not present.
	var head [MaxTenants]int
	for i := range head {
		head[i] = -1
	}
	present := 0
	for i := range q {
		t := tenantSlot(q[i].Tenant)
		if head[t] < 0 {
			head[t] = i
			present++
		}
	}
	if present == 1 {
		for t := range head {
			if head[t] >= 0 {
				return head[t]
			}
		}
	}
	// Bounded credit cycle: visit tenants round-robin from the persistent
	// cursor; serve the first whose deficit covers its head-of-line bytes,
	// topping up one quantum x weight per unsatisfied visit.
	const maxVisits = 4096
	for visit := 0; visit < maxVisits; visit++ {
		t := (a.next + visit) % MaxTenants
		if head[t] < 0 {
			continue
		}
		cost := int64(q[head[t]].Bytes)
		if cost < 1 {
			cost = 1
		}
		if a.deficit[t] >= cost {
			a.deficit[t] -= cost
			// Keep the cursor on t: a tenant holds the scheduler until its
			// deficit is spent (classic DWRR visit semantics). Advancing past
			// it after every single pick would top up the other tenants once
			// per pick instead of once per round and skew service toward the
			// light weights.
			a.next = t
			return head[t]
		}
		a.deficit[t] += a.quantum * int64(a.weights[t])
	}
	// Unreachable for sane quanta; serve the first present tenant so the
	// server always makes progress.
	for t := range head {
		if head[t] >= 0 {
			return head[t]
		}
	}
	return 0
}

// arbiterFor instantiates the profile's egress arbiter strategy. Each NIC
// gets its own instance (DWRR carries per-tenant deficit state).
func arbiterFor(p Profile) ArbiterStrategy {
	switch p.ArbiterKind {
	case ArbiterDWRR:
		return NewDWRRArbiter(p.ISOWeights, p.ISOQuantum)
	default:
		return StrictArbiter{}
	}
}
