package nic

import (
	"math/rand"

	"github.com/thu-has/ragnar/internal/sim"
)

// TPU is the Translation & Protection Unit: every inbound one-sided request
// passes through it to translate the remote virtual address against the MTT
// and check rkey/permissions. Ragnar's Key Finding 4 is that its service
// time depends on the *remote address offset* in reproducible, 2^k-periodic
// ways, and on the *relative* offset between consecutive translations
// (bank conflicts). This file implements that empirical surface as a
// deterministic function of the profile parameters plus seeded jitter, so
// the reverse-engineering benchmarks (Figs 5-8), the intra-MR covert
// channel and the Fig 13 snoop all see one consistent microarchitecture.
type TPU struct {
	p     Profile
	noise *sim.Noise

	// ExtraService, when set, adds defensive service-time noise to every
	// translation (the Section VII noise mitigation).
	ExtraService func() sim.Duration
	// strat computes the deterministic service core; see TPUStrategy. The
	// profile selects it at construction and SetConstantTime swaps it at
	// runtime (the Section VII hardware-partitioning mitigation).
	strat TPUStrategy

	// Pipeline state: the previous translation's bank and MR, which create
	// the relative-offset and MR-switch effects.
	lastBank  int
	lastMR    uint32
	havePrev  bool
	mtt       *Cache
	served    uint64
	conflicts uint64
	mrSwitch  uint64
	mttMisses uint64
}

// NewTPU builds the unit for a profile, drawing jitter from rng.
func NewTPU(p Profile, rng *rand.Rand) *TPU {
	return &TPU{
		p:     p,
		noise: sim.NewNoise(rng, p.TPUNoiseSig, p.TPUSpike, p.TPUSpikeP),
		mtt:   NewCache(p.MTTCacheEntries, p.MTTCacheWays),
		strat: tpuFor(p),
	}
}

// MTT exposes the translation cache (the Pythia baseline needs to prime and
// probe it).
func (t *TPU) MTT() *Cache { return t.mtt }

// ReseedNoise gives the TPU a private jitter stream in place of the shared
// engine RNG it was built with. Partitioned topologies reseed every NIC
// from (seed, host index) so jitter draws are identical regardless of how
// hosts are split across engine domains.
func (t *TPU) ReseedNoise(seed int64) { t.noise.Reseed(seed) }

// Request describes one translation: which MR (by key), the offset of the
// access within the MR, the access length, and the MR's base address and
// page size for MTT indexing.
type Request struct {
	MRKey    uint32
	Offset   uint64
	Length   int
	MRBase   uint64
	PageSize uint64
}

// beats returns how many translation beats the access needs.
func (t *TPU) beats(length int) int {
	if length <= 0 {
		return 1
	}
	n := (length + t.p.TPUBeatBytes - 1) / t.p.TPUBeatBytes
	if n < 1 {
		n = 1
	}
	return n
}

// OffsetComponent returns the deterministic offset-dependent part of one
// beat's service time at the given MR offset. Exposed so analysis code can
// plot the ideal surface next to measured traces.
//
// The shape implements the paper's observations:
//   - a stable latency *drop* at 8 B-aligned offsets,
//   - a larger drop at 64 B multiples,
//   - a sawtooth with 2048 B period (descriptor-fetch phase),
//   - nothing else — in particular no dependence on the absolute MR base,
//     matching the paper's finding that local addresses and MR sizes do not
//     produce stable effects.
func (t *TPU) OffsetComponent(offset uint64) sim.Duration {
	var d sim.Duration
	if offset%8 == 0 {
		d -= t.p.TPUDrop8
	}
	if offset%64 == 0 {
		d -= t.p.TPUDrop64
	}
	// Sawtooth: latency ramps across each 2048 B window and resets.
	phase := offset % 2048
	d += sim.Duration(float64(t.p.TPUSaw2048) * float64(phase) / 2048.0)
	return d
}

// bank maps an offset to its translation bank.
func (t *TPU) bank(offset uint64) int {
	if t.p.TPUBanks <= 1 {
		return 0
	}
	return int((offset / 64) % uint64(t.p.TPUBanks))
}

// Translate returns the service time for one request and advances pipeline
// state. The deterministic core comes from the profile's TPUStrategy — for
// the empirical surface:
//
//	base per beat + offset component per beat (+ beat stride)
//	+ bank conflict against the previous translation (relative offset effect)
//	+ MR switch penalty when the MR changed (inter-MR effect, Fig 5)
//	+ MTT miss penalty when the page's translation is not cached
//
// — and every strategy then gets the same seeded jitter, defensive extra
// service and 1 ns floor, in that order, so the noise stream advances
// identically regardless of strategy.
func (t *TPU) Translate(req Request) sim.Duration {
	d := t.strat.Service(t, req)
	d += t.noise.Sample()
	if t.ExtraService != nil {
		d += t.ExtraService()
	}
	if d < sim.Nanosecond {
		d = sim.Nanosecond
	}
	t.served++
	return d
}

// Reset clears pipeline history (not the MTT cache) — used between
// independent measurement runs.
func (t *TPU) Reset() { t.havePrev = false }

// Counters reports totals: translations served, bank conflicts, MR switches
// and MTT misses.
func (t *TPU) Counters() (served, conflicts, mrSwitches, mttMisses uint64) {
	return t.served, t.conflicts, t.mrSwitch, t.mttMisses
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SetConstantTime, when enabled, makes every translation take the worst-case
// service time for its beat count — the Section VII "hardware partitioning /
// fixing hardware features" mitigation: with no offset-, bank- or MR-
// dependent variation left, Grain-III/IV channels lose their carrier. The
// cost is that every request pays the slowest path. It swaps the TPU's
// strategy at runtime, so a profile-selected constant-time TPU and the
// defense toggle share one implementation.
func (t *TPU) SetConstantTime(on bool) {
	if on {
		t.strat = constTimeTPU{}
	} else {
		t.strat = empiricalTPU{}
	}
}

// ConstantTimeEnabled reports whether the mitigation is active.
func (t *TPU) ConstantTimeEnabled() bool { return t.strat.Kind() == TPUConstTime }

// Strategy reports the active translation strategy kind.
func (t *TPU) Strategy() TPUKind { return t.strat.Kind() }

// worstCaseBeat is the slowest possible per-beat service: base plus the full
// sawtooth, no alignment drops, plus a bank conflict and an MR switch.
func (t *TPU) worstCaseBeat() sim.Duration {
	return t.p.TPUBase + t.p.TPUSaw2048 + t.p.TPUBankCost + t.p.MRSwitchCost
}
