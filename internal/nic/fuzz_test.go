package nic

import (
	"testing"

	"github.com/thu-has/ragnar/internal/fabric"
	"github.com/thu-has/ragnar/internal/host"
	"github.com/thu-has/ragnar/internal/sim"
)

// FuzzPSNWindow fuzzes the go-back-N transport window: a write burst crosses
// the 24-bit PSN wraparound under fuzzer-chosen loss, corruption and burst
// loss on both directions. Whatever the impairment, the invariants hold:
//
//   - every posted WQE completes exactly once (no lost, no duplicate CQEs);
//   - on an all-OK run the requester and responder agree on the next PSN,
//     the transport window drains, and responder memory saw every byte
//     exactly once (conservation through retransmission);
//   - a retry-exhausted run marks the QP failed and rejects further posts;
//   - each retransmit-timer expiry resends at least one packet.
//
// The rig is fully deterministic for a given input (fault RNGs derive from
// the fuzz seeds, never the engine's stream), so any crasher reproduces.
func FuzzPSNWindow(f *testing.F) {
	f.Add(int64(1), int64(2), uint16(0), uint16(0), uint8(0), uint16(3), uint8(6), uint8(64))
	f.Add(int64(11), int64(12), uint16(2000), uint16(0), uint8(0), uint16(1), uint8(20), uint8(255))
	f.Add(int64(21), int64(22), uint16(4500), uint16(1500), uint8(2), uint16(40), uint8(32), uint8(1))
	f.Add(int64(7), int64(8), uint16(9999), uint16(3000), uint8(3), uint16(0), uint8(16), uint8(128))
	f.Fuzz(func(t *testing.T, seedAB, seedBA int64, lossRaw, corruptRaw uint16,
		burstRaw uint8, startRaw uint16, msgsRaw, sizeRaw uint8) {
		loss := float64(lossRaw%4500) / 10000       // 0 .. 0.4499 per direction
		corrupt := float64(corruptRaw%3000) / 10000 // 0 .. 0.2999
		msgs := 1 + int(msgsRaw%32)
		msgLen := 1 + int(sizeRaw)
		startPSN := (psnMask - uint32(startRaw%48)) & psnMask // near the wrap

		eng := sim.NewEngine(1)
		hA := host.New(eng, host.H2)
		hB := host.New(eng, host.H3)
		a := New(eng, "a", CX4, hA, 0)
		b := New(eng, "b", CX4, hB, 0)
		ab := fabric.NewLink(eng, "a->b", CX4.LineRateGbps, 200*sim.Nanosecond, 0, Deliver)
		ba := fabric.NewLink(eng, "b->a", CX4.LineRateGbps, 200*sim.Nanosecond, 0, Deliver)
		a.AddPeerLink(b, ab)
		b.AddPeerLink(a, ba)
		planAB := fabric.FaultPlan{Seed: seedAB, BurstLen: int(burstRaw % 4)}
		planBA := fabric.FaultPlan{Seed: seedBA}
		for tc := range planAB.DropProb {
			planAB.DropProb[tc] = loss
			planBA.DropProb[tc] = loss
			planAB.CorruptProb[tc] = corrupt
		}
		ab.SetFaultPlan(&planAB)
		ba.SetFaultPlan(&planBA)

		region, err := hB.Alloc(2<<20, host.Page2M, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.RegisterMR(MRInfo{Key: 77, Base: region.Base(), Size: region.Size(),
			Region: region, PageSize: uint64(host.Page2M), RemoteWrite: true}); err != nil {
			t.Fatal(err)
		}
		completed := map[uint64]int{}
		okComps, errComps := 0, 0
		if err := a.CreateQP(1, func(c Completion) {
			completed[c.WRID]++
			switch c.Status {
			case StatusOK:
				okComps++
			case StatusRetryExcErr:
				errComps++
			default:
				t.Fatalf("unexpected completion status %v", c.Status)
			}
		}, nil); err != nil {
			t.Fatal(err)
		}
		recvBytes := 0
		if err := b.CreateQP(2, nil, func(ev RecvEvent) { recvBytes += ev.Bytes }); err != nil {
			t.Fatal(err)
		}
		if err := a.ConnectQP(1, b, 2); err != nil {
			t.Fatal(err)
		}
		if err := b.ConnectQP(2, a, 1); err != nil {
			t.Fatal(err)
		}
		if err := a.SetQPRetry(1, 5*sim.Microsecond, 60); err != nil {
			t.Fatal(err)
		}
		// Start both sides just below the 24-bit wrap so the window always
		// crosses it (and NAK AckPSNs straddle the boundary).
		a.qps[1].nextPSN = startPSN
		b.qps[2].epsn = startPSN

		data := make([]byte, msgLen)
		for i := 0; i < msgs; i++ {
			if err := a.PostSend(1, &WQE{WRID: uint64(i), Op: OpWrite, LocalData: data,
				RemoteKey: 77, RemoteAddr: region.Base(), Length: msgLen}); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run()

		if got := okComps + errComps; got != msgs {
			t.Fatalf("completions = %d (ok %d, err %d), posted %d", got, okComps, errComps, msgs)
		}
		for wrid, n := range completed {
			if n != 1 {
				t.Fatalf("WRID %d completed %d times", wrid, n)
			}
		}
		c := a.Counters()
		if c.Retransmits < c.Timeouts {
			t.Fatalf("Timeouts %d > Retransmits %d: an expiry resent nothing", c.Timeouts, c.Retransmits)
		}
		if errComps > 0 {
			// Retry exhaustion is a legitimate outcome under heavy impairment,
			// but it must leave the QP failed and closed to new work.
			if !a.QPFailed(1) {
				t.Fatal("error CQEs delivered without the QP marked failed")
			}
			if err := a.PostSend(1, &WQE{WRID: 999, Op: OpWrite, LocalData: data,
				RemoteKey: 77, RemoteAddr: region.Base(), Length: msgLen}); err == nil {
				t.Fatal("PostSend on a failed QP succeeded")
			}
			return
		}
		// All-OK run: window drained, PSNs agree across the wrap, and the
		// responder saw each message exactly once despite retransmissions.
		if n := len(a.qps[1].outstanding); n != 0 {
			t.Fatalf("transport window still holds %d entries after drain", n)
		}
		if got, want := b.qps[2].epsn, a.qps[1].nextPSN; got != want {
			t.Fatalf("responder ePSN %#x != requester nextPSN %#x", got, want)
		}
		if want := (startPSN + uint32(msgs)) & psnMask; a.qps[1].nextPSN != want {
			t.Fatalf("nextPSN %#x, want %#x (wrap arithmetic)", a.qps[1].nextPSN, want)
		}
		if recvBytes != msgs*msgLen {
			t.Fatalf("responder received %d bytes, want %d", recvBytes, msgs*msgLen)
		}
	})
}

// scriptedAdversary is the fuzz-driven on-path attacker: it taps the
// request link, and for every frame it observes it consumes two script bytes
// deciding whether to forge a NAK or ACK at the requester, replay the
// request at the responder, or spray a QP-guess — through the same
// fabric.Link.Inject surface the nvmf experiment's adversaries use.
type scriptedAdversary struct {
	reqNIC, respNIC *NIC         // a (requester) and b (responder)
	toReq, toResp   *fabric.Link // ba and ab
	script          []byte
	pos             int
	guesses         uint64
}

func (s *scriptedAdversary) next() (byte, bool) {
	if s.pos >= len(s.script) {
		return 0, false
	}
	v := s.script[s.pos]
	s.pos++
	return v, true
}

func (s *scriptedAdversary) Observe(at sim.Time, p fabric.Packet) {
	op, ok := s.next()
	if !ok {
		return
	}
	param, _ := s.next()
	m, ok := SnoopPacket(p)
	if !ok || m.IsResp {
		return
	}
	switch op % 5 {
	case 1: // forged NAK at the requester, AckPSN skewed by the script
		s.toReq.Inject(ForgePacket(s.reqNIC, Message{
			Op: m.Op, SrcQPN: m.DstQPN, DstQPN: m.SrcQPN, Seq: m.Seq,
			IsResp: true, Status: StatusSeqNak, TC: m.TC,
			PSN: m.PSN, AckPSN: (m.PSN + uint32(param)) & psnMask,
		}))
	case 2: // forged ACK: guessed Seq, or valid Seq with a wrong PSN
		fm := Message{Op: m.Op, SrcQPN: m.DstQPN, DstQPN: m.SrcQPN,
			IsResp: true, Status: StatusOK, TC: m.TC, PSN: m.PSN, AckPSN: m.PSN}
		if param%2 == 0 {
			fm.Seq = m.Seq + 1000 + uint64(param) // never a live Seq
		} else {
			fm.Seq = m.Seq
			fm.PSN = (m.PSN + 1 + uint32(param%100)) & psnMask // wrong PSN
		}
		s.toReq.Inject(ForgePacket(s.reqNIC, fm))
	case 3: // replay the captured request at the responder
		if cp, ok := ReplayPacket(p); ok {
			s.toResp.Inject(cp)
		}
	case 4: // QP-number guessing sweep frame (QPNs 100+ never exist)
		s.guesses++
		s.toResp.Inject(ForgePacket(s.respNIC, Message{
			Op: OpWrite, SrcQPN: m.SrcQPN, DstQPN: 100 + uint32(param),
			RKey: m.RKey, RemoteAddr: m.RemoteAddr, Length: 8,
			Seq: 5000 + uint64(s.pos), PSN: uint32(param), TC: m.TC,
		}))
	}
}

// FuzzAdversarialFrames interleaves legitimate traffic with script-driven
// forged and replayed frames under fuzzer-chosen wire loss. Whatever the
// adversary does within this envelope (forged NAKs with arbitrary AckPSN
// skew, forged ACKs that guess either the Seq or the PSN, request replays,
// QP-guessing sprays), the reliability invariants must hold:
//
//   - every posted WQE completes exactly once — no duplicate CQEs, and no
//     forged CQE (the forged ACKs here never carry both a live Seq and its
//     exact PSN, which is the only combination that can fake a completion);
//   - byte conservation: on an all-OK run responder memory saw each posted
//     byte exactly once, replays notwithstanding;
//   - the QP either completes everything or lands in StatusRetryExcErr with
//     further posts rejected;
//   - every QP-guess frame is charged to RxBadQP.
func FuzzAdversarialFrames(f *testing.F) {
	f.Add(int64(1), int64(2), uint16(0), uint8(8), uint8(64), []byte{})
	f.Add(int64(3), int64(4), uint16(0), uint8(12), uint8(128), []byte{1, 200, 2, 7, 3, 0, 4, 5})
	f.Add(int64(5), int64(6), uint16(1500), uint8(16), uint8(32), []byte{1, 0, 1, 1, 1, 255, 2, 2, 2, 3})
	f.Add(int64(7), int64(8), uint16(3000), uint8(24), uint8(255), []byte{3, 0, 3, 0, 4, 1, 4, 2, 1, 100})
	f.Fuzz(func(t *testing.T, seedAB, seedBA int64, lossRaw uint16,
		msgsRaw, sizeRaw uint8, script []byte) {
		loss := float64(lossRaw%4000) / 10000 // 0 .. 0.3999 per direction
		msgs := 1 + int(msgsRaw%32)
		msgLen := 1 + int(sizeRaw)

		eng := sim.NewEngine(1)
		hA := host.New(eng, host.H2)
		hB := host.New(eng, host.H3)
		a := New(eng, "a", CX4, hA, 0)
		b := New(eng, "b", CX4, hB, 0)
		ab := fabric.NewLink(eng, "a->b", CX4.LineRateGbps, 200*sim.Nanosecond, 0, Deliver)
		ba := fabric.NewLink(eng, "b->a", CX4.LineRateGbps, 200*sim.Nanosecond, 0, Deliver)
		a.AddPeerLink(b, ab)
		b.AddPeerLink(a, ba)
		planAB := fabric.FaultPlan{Seed: seedAB}
		planBA := fabric.FaultPlan{Seed: seedBA}
		for tc := range planAB.DropProb {
			planAB.DropProb[tc] = loss
			planBA.DropProb[tc] = loss
		}
		ab.SetFaultPlan(&planAB)
		ba.SetFaultPlan(&planBA)

		region, err := hB.Alloc(2<<20, host.Page2M, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.RegisterMR(MRInfo{Key: 77, Base: region.Base(), Size: region.Size(),
			Region: region, PageSize: uint64(host.Page2M), RemoteWrite: true}); err != nil {
			t.Fatal(err)
		}
		adv := &scriptedAdversary{reqNIC: a, respNIC: b, toReq: ba, toResp: ab, script: script}
		ab.SetAdversary(adv)

		completed := map[uint64]int{}
		okComps, errComps := 0, 0
		if err := a.CreateQP(1, func(c Completion) {
			completed[c.WRID]++
			switch c.Status {
			case StatusOK:
				okComps++
			case StatusRetryExcErr:
				errComps++
			default:
				t.Fatalf("unexpected completion status %v", c.Status)
			}
		}, nil); err != nil {
			t.Fatal(err)
		}
		recvBytes := 0
		if err := b.CreateQP(2, nil, func(ev RecvEvent) { recvBytes += ev.Bytes }); err != nil {
			t.Fatal(err)
		}
		if err := a.ConnectQP(1, b, 2); err != nil {
			t.Fatal(err)
		}
		if err := b.ConnectQP(2, a, 1); err != nil {
			t.Fatal(err)
		}
		if err := a.SetQPRetry(1, 5*sim.Microsecond, 60); err != nil {
			t.Fatal(err)
		}

		data := make([]byte, msgLen)
		for i := 0; i < msgs; i++ {
			if err := a.PostSend(1, &WQE{WRID: uint64(i), Op: OpWrite, LocalData: data,
				RemoteKey: 77, RemoteAddr: region.Base(), Length: msgLen}); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run()

		if got := okComps + errComps; got != msgs {
			t.Fatalf("completions = %d (ok %d, err %d), posted %d", got, okComps, errComps, msgs)
		}
		for wrid, n := range completed {
			if n != 1 {
				t.Fatalf("WRID %d completed %d times", wrid, n)
			}
		}
		c := b.Counters()
		if c.RxBadQP != adv.guesses {
			t.Fatalf("RxBadQP = %d, injected %d QP guesses", c.RxBadQP, adv.guesses)
		}
		if errComps > 0 {
			if !a.QPFailed(1) {
				t.Fatal("error CQEs delivered without the QP marked failed")
			}
			if err := a.PostSend(1, &WQE{WRID: 999, Op: OpWrite, LocalData: data,
				RemoteKey: 77, RemoteAddr: region.Base(), Length: msgLen}); err == nil {
				t.Fatal("PostSend on a failed QP succeeded")
			}
			return
		}
		if n := len(a.qps[1].outstanding); n != 0 {
			t.Fatalf("transport window still holds %d entries after drain", n)
		}
		if got, want := b.qps[2].epsn, a.qps[1].nextPSN; got != want {
			t.Fatalf("responder ePSN %#x != requester nextPSN %#x", got, want)
		}
		if recvBytes != msgs*msgLen {
			t.Fatalf("responder received %d bytes, want %d (conservation under replay)", recvBytes, msgs*msgLen)
		}
	})
}

// FuzzContextCache fuzzes the ICM context cache against a reference model:
// a brute-force map plus an MRU-ordered slice. Random Access/Evict/Flush
// sequences over a fuzzer-chosen capacity must preserve the invariants the
// exhaustion model leans on:
//
//   - resident entries never exceed capacity;
//   - hits + misses == lookups, exactly one of the two per Access;
//   - the eviction order is LRU (the model predicts every hit/miss, so a
//     miss is charged exactly one fetch penalty per fault, never more);
//   - Keys() reports exactly the model's residents in MRU→LRU order.
func FuzzContextCache(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 2, 3, 0, 1, 4, 5, 6, 7})
	f.Add(uint8(1), []byte{9, 9, 8, 9, 8, 8})
	f.Add(uint8(3), []byte{0x40, 1, 0x41, 2, 0x80, 3, 0xC0, 0})
	f.Add(uint8(16), []byte{250, 251, 252, 253, 254, 255, 250, 128, 0})
	f.Fuzz(func(t *testing.T, capRaw uint8, ops []byte) {
		capacity := 1 + int(capRaw%32)
		c := NewContextCache(capacity)

		// Reference model: MRU-first ordered slice of keys.
		var model []uint64
		find := func(key uint64) int {
			for i, k := range model {
				if k == key {
					return i
				}
			}
			return -1
		}
		var lookups, wantHits, wantMisses, wantEvicts uint64

		for _, op := range ops {
			key := uint64(op & 0x3f)
			switch op >> 6 {
			case 0, 1: // Access (half the opcode space: the common op)
				lookups++
				i := find(key)
				if i >= 0 {
					wantHits++
					model = append(model[:i], model[i+1:]...)
					model = append([]uint64{key}, model...)
					if !c.Access(key) {
						t.Fatalf("Access(%d) missed; model says resident", key)
					}
				} else {
					wantMisses++
					if len(model) == capacity {
						wantEvicts++
						model = model[:len(model)-1] // LRU = tail
					}
					model = append([]uint64{key}, model...)
					if c.Access(key) {
						t.Fatalf("Access(%d) hit; model says absent", key)
					}
				}
			case 2: // Evict
				i := find(key)
				if got := c.Evict(key); got != (i >= 0) {
					t.Fatalf("Evict(%d) = %v; model says %v", key, got, i >= 0)
				}
				if i >= 0 {
					model = append(model[:i], model[i+1:]...)
				}
			case 3: // Flush (rare)
				if key%8 == 0 {
					c.Flush()
					model = nil
				} else if got := c.Contains(key); got != (find(key) >= 0) {
					t.Fatalf("Contains(%d) = %v; model disagrees", key, got)
				}
			}

			if c.Len() != len(model) {
				t.Fatalf("Len = %d, model has %d", c.Len(), len(model))
			}
			if c.Len() > capacity {
				t.Fatalf("residents %d exceed capacity %d", c.Len(), capacity)
			}
		}

		hits, misses, evicts := c.Stats()
		if hits != wantHits || misses != wantMisses {
			t.Fatalf("stats hits=%d misses=%d, model %d/%d", hits, misses, wantHits, wantMisses)
		}
		if hits+misses != lookups {
			t.Fatalf("hits+misses = %d, lookups = %d", hits+misses, lookups)
		}
		if evicts != wantEvicts {
			t.Fatalf("evictions = %d, model %d (explicit Evict must not count)", evicts, wantEvicts)
		}
		keys := c.Keys()
		if len(keys) != len(model) {
			t.Fatalf("Keys len = %d, model %d", len(keys), len(model))
		}
		for i, k := range keys {
			if k != model[i] {
				t.Fatalf("Keys[%d] = %d, model (MRU order) has %d", i, k, model[i])
			}
		}
	})
}
