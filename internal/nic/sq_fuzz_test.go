package nic

import (
	"testing"

	"github.com/thu-has/ragnar/internal/host"
)

// FuzzWQEChain drives random WAIT/ENABLE/self-modify chains on two QPs
// against a pure-Go fixpoint model of the send-queue state machine and
// checks three invariants:
//
//   - exactly-once completions: every WRID the model retires completes
//     exactly once, and nothing else completes;
//   - no spurious deadlock: a chain blocks if and only if the model blocks
//     (an armed WAIT whose threshold is unreachable);
//   - the doorbell cursor never exceeds the staged count.
//
// The run is two-phase so the oracle stays sound: phase 1 stages every
// entry and lands every self-modifying patch (nothing is enabled yet, so
// all patches apply and the model knows the final WQE fields); phase 2
// applies the ring ops. Within phase 2 the engine's interleaving is
// arbitrary but counters are monotone, so the drained state must equal the
// model's fixpoint.
func FuzzWQEChain(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 0, 1, 4, 0, 0})
	f.Add([]byte{1, 0, 3, 0, 0, 8, 2, 1, 0, 4, 0, 0, 4, 1, 0})
	f.Add([]byte{2, 0, 1, 1, 1, 2, 3, 2, 3, 4, 1, 5, 4, 0, 5})
	f.Add([]byte{3, 0, 2, 1, 0, 7, 0, 1, 4, 3, 7, 4, 4, 0, 0, 4, 1, 0})
	f.Fuzz(func(t *testing.T, input []byte) {
		if len(input) > 96 {
			input = input[:96]
		}
		const (
			qpA     = uint32(11)
			qpB     = uint32(12)
			slots   = 8
			winKey  = uint32(55)
			dataKey = uint32(77)
		)
		eng, a, b, region := loopRig(t, CX5)
		completions := map[uint64]int{}
		sink := func(c Completion) { completions[c.WRID]++ }
		for _, q := range []uint32{qpA, qpB} {
			if err := a.CreateQP(q, sink, nil); err != nil {
				t.Fatal(err)
			}
			if err := b.CreateQP(q+10, nil, nil); err != nil {
				t.Fatal(err)
			}
			if err := a.ConnectQP(q, b, q+10); err != nil {
				t.Fatal(err)
			}
			if err := b.ConnectQP(q+10, a, q); err != nil {
				t.Fatal(err)
			}
		}
		counters := [2]*CQCounter{NewCQCounter(), NewCQCounter()}
		counterQP := [2]uint32{qpA, qpB}
		a.BindQPCounter(qpA, counters[0])
		a.BindQPCounter(qpB, counters[1])
		win, err := a.hst.Alloc(slots*SQSlotBytes, host.Page4K, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.RegisterMR(MRInfo{Key: winKey, Base: win.Base(), Size: win.Size(),
			Region: win, PageSize: uint64(host.Page4K), RemoteWrite: true}); err != nil {
			t.Fatal(err)
		}
		if err := a.RegisterSQWindow(qpA, winKey, win.Base(), slots); err != nil {
			t.Fatal(err)
		}

		// Model state: the final (post-patch) entry list per QP.
		type mEntry struct {
			op      Opcode
			wrid    uint64
			counter int // WAIT: index into counters
			thresh  uint64
			target  uint32 // ENABLE
			count   int    // ENABLE
		}
		model := map[uint32][]mEntry{}
		type ringOp struct {
			qpn uint32
			k   int
		}
		var rings []ringOp
		type patchOp struct {
			slot int
			val  uint64
		}
		var patches []patchOp
		nextWRID := uint64(1)
		patchWRID := uint64(1000)

		// Phase 1: stage chains and land patches.
		for i := 0; i+2 < len(input); i += 3 {
			op, a1, a2 := input[i], input[i+1], input[i+2]
			qpn := qpA + uint32(a1%2)
			switch op % 5 {
			case 0: // WRITE
				if len(model[qpn]) >= slots {
					continue
				}
				wrid := nextWRID
				nextWRID++
				length := 8 + int(a2%32)*8
				if err := a.StageSend(qpn, &WQE{WRID: wrid, Op: OpWrite,
					LocalData: make([]byte, length), RemoteKey: dataKey,
					RemoteAddr: region.Base() + uint64(a2)*64, Length: length}); err != nil {
					t.Fatal(err)
				}
				model[qpn] = append(model[qpn], mEntry{op: OpWrite, wrid: wrid})
			case 1: // WAIT
				if len(model[qpn]) >= slots {
					continue
				}
				wrid := nextWRID
				nextWRID++
				ci := int(a2 % 2)
				thresh := uint64(a2 % 5)
				if err := a.StageSend(qpn, &WQE{WRID: wrid, Op: OpWait,
					WaitCQ: counters[ci], WaitThresh: thresh}); err != nil {
					t.Fatal(err)
				}
				model[qpn] = append(model[qpn], mEntry{op: OpWait, wrid: wrid, counter: ci, thresh: thresh})
			case 2: // ENABLE
				if len(model[qpn]) >= slots {
					continue
				}
				wrid := nextWRID
				nextWRID++
				target := qpA + uint32(a2%2)
				count := int(a2>>2) % 4
				if err := a.StageSend(qpn, &WQE{WRID: wrid, Op: OpEnable,
					TargetQPN: target, EnableCount: count}); err != nil {
					t.Fatal(err)
				}
				model[qpn] = append(model[qpn], mEntry{op: OpEnable, wrid: wrid, target: target, count: count})
			case 3: // self-modify patch of a slot's WAIT threshold on qpA
				slot := int(a1 % slots)
				val := uint64(a2 % 5)
				buf := make([]byte, 8)
				put64(buf, val)
				if err := b.PostSend(qpA+10, &WQE{WRID: patchWRID, Op: OpWrite,
					LocalData: buf, RemoteKey: winKey,
					RemoteAddr: win.Base() + uint64(slot)*SQSlotBytes + SQOffWaitThresh,
					Length:     8}); err != nil {
					t.Fatal(err)
				}
				patchWRID++
				patches = append(patches, patchOp{slot: slot, val: val})
			case 4: // phase-2 ring op
				rings = append(rings, ringOp{qpn: qpn, k: int(a2 % 6)})
			}
		}
		eng.Run() // all patches land while nothing is enabled
		// Patches land after every entry is staged (they are RDMA writes,
		// posted at t=0 but placed during the run), in posting order.
		for _, p := range patches {
			if p.slot < len(model[qpA]) {
				model[qpA][p.slot].thresh = p.val
			}
		}

		// Phase 2: apply ring ops on the device.
		for _, r := range rings {
			if err := a.RingDoorbell(r.qpn, r.k); err != nil {
				t.Fatal(err)
			}
			eng.Run()
			for _, q := range []uint32{qpA, qpB} {
				if staged, enabled := a.SQDepth(q); enabled > staged {
					t.Fatalf("QP %d: doorbell %d exceeds staged %d", q, enabled, staged)
				}
			}
		}
		eng.Run()

		// Model fixpoint over the same ring ops.
		head := map[uint32]int{}
		enabled := map[uint32]int{}
		done := map[uint32]uint64{} // completions per QP (== counter value)
		expect := map[uint64]bool{}
		ring := func(qpn uint32, k int) {
			if k <= 0 {
				enabled[qpn] = len(model[qpn])
			} else if enabled[qpn] += k; enabled[qpn] > len(model[qpn]) {
				enabled[qpn] = len(model[qpn])
			}
		}
		for _, r := range rings {
			ring(r.qpn, r.k)
		}
		for progress := true; progress; {
			progress = false
			for _, q := range []uint32{qpA, qpB} {
				for head[q] < enabled[q] {
					e := model[q][head[q]]
					if e.op == OpWait && done[counterQP[e.counter]] < e.thresh {
						break
					}
					head[q]++
					done[q]++
					expect[e.wrid] = true
					progress = true
					if e.op == OpEnable {
						ring(e.target, e.count)
					}
				}
			}
		}

		// Compare: every model-retired WRID completed exactly once, nothing
		// extra (patch writes from b carry WRIDs >= 1000 and no sink).
		for wrid := range expect {
			if completions[wrid] != 1 {
				t.Fatalf("WRID %d completed %d times, want exactly once", wrid, completions[wrid])
			}
		}
		for wrid, n := range completions {
			if !expect[wrid] {
				t.Fatalf("WRID %d completed %d times but the model says it must block", wrid, n)
			}
		}
		if c0, c1 := counters[0].Count(), counters[1].Count(); c0 != done[qpA] || c1 != done[qpB] {
			t.Fatalf("consumer counters (%d,%d) disagree with model (%d,%d)",
				c0, c1, done[qpA], done[qpB])
		}
	})
}
