package nic

import (
	"testing"
	"testing/quick"
)

func TestSoloBandwidthSanity(t *testing.T) {
	for _, p := range Profiles {
		for _, op := range []Opcode{OpWrite, OpRead, OpSend} {
			for _, size := range []int{64, 512, 4096, 65536} {
				r := Solo(p, FlowSpec{Op: op, MsgBytes: size, QPNum: 4})
				if r.GoodputGbps <= 0 {
					t.Fatalf("%s %s %dB: non-positive solo bandwidth", p.Name, op, size)
				}
				if r.GoodputGbps > p.LineRateGbps {
					t.Fatalf("%s %s %dB: solo %v exceeds line rate", p.Name, op, size, r.GoodputGbps)
				}
			}
		}
	}
}

func TestSoloLargeMessagesNearLineOrPCIe(t *testing.T) {
	// 64 KB flows should saturate the binding interface (wire or host bus).
	for _, p := range Profiles {
		r := Solo(p, FlowSpec{Op: OpWrite, MsgBytes: 65536, QPNum: 8})
		bound := p.LineRateGbps
		if pcie := p.PCIeGBps * 8; pcie < bound {
			bound = pcie
		}
		if r.GoodputGbps < 0.85*bound {
			t.Fatalf("%s: 64KB write solo %.1fG, want >= 85%% of %.1fG", p.Name, r.GoodputGbps, bound)
		}
	}
}

// Key Finding 1a: a small competing write flow loses more than half its
// bandwidth against a read flow (the read's response generation holds the
// higher-priority Tx arbiter), while the read keeps the bulk of its own.
func TestKF1SmallWriteLoses(t *testing.T) {
	// Paper profiles only: CX5-ISO's partitioned shares remove these KF1
	// victim-loss effects by design (pinned by the iso tests).
	for _, p := range PaperProfiles {
		w := FlowSpec{Name: "w", Op: OpWrite, MsgBytes: 64, QPNum: 4, Client: 0}
		r := FlowSpec{Name: "r", Op: OpRead, MsgBytes: 1024, QPNum: 2, Client: 1}
		soloW, soloR := Solo(p, w), Solo(p, r)
		res := Solve(p, []FlowSpec{w, r})
		if loss := ReductionPct(soloW, res[0]); loss < 50 {
			t.Errorf("%s: small write lost only %.0f%%, want > 50%%", p.Name, loss)
		}
		if lossR := ReductionPct(soloR, res[1]); lossR > 50 {
			t.Errorf("%s: read lost %.0f%%, should keep the bulk", p.Name, lossR)
		}
	}
}

// Key Finding 1b (the reversal): once the write flow reaches ~512 B+, the
// write keeps its bandwidth and the read drops 30-80+ %.
func TestKF1LargeWriteWins(t *testing.T) {
	// Paper profiles only: CX5-ISO's partitioned shares remove these KF1
	// victim-loss effects by design (pinned by the iso tests).
	for _, p := range PaperProfiles {
		w := FlowSpec{Name: "w", Op: OpWrite, MsgBytes: 2048, QPNum: 4, Client: 0}
		r := FlowSpec{Name: "r", Op: OpRead, MsgBytes: 1024, QPNum: 2, Client: 1}
		soloW, soloR := Solo(p, w), Solo(p, r)
		res := Solve(p, []FlowSpec{w, r})
		if loss := ReductionPct(soloW, res[0]); loss > 20 {
			t.Errorf("%s: 2KB write lost %.0f%%, want <= 20%%", p.Name, loss)
		}
		lossR := ReductionPct(soloR, res[1])
		if lossR < 30 {
			t.Errorf("%s: read lost only %.0f%%, want >= 30%% (paper: 30-80%%)", p.Name, lossR)
		}
	}
}

// The write's fate reverses non-monotonically with its own message size.
func TestKF1NonMonotonicReversal(t *testing.T) {
	// Paper profiles only: CX5-ISO's partitioned shares remove these KF1
	// victim-loss effects by design (pinned by the iso tests).
	for _, p := range PaperProfiles {
		r := FlowSpec{Name: "r", Op: OpRead, MsgBytes: 1024, QPNum: 2, Client: 1}
		lossAt := func(ws int) (wLoss, rLoss float64) {
			w := FlowSpec{Name: "w", Op: OpWrite, MsgBytes: ws, QPNum: 4, Client: 0}
			res := Solve(p, []FlowSpec{w, r})
			return ReductionPct(Solo(p, w), res[0]), ReductionPct(Solo(p, r), res[1])
		}
		wSmall, rSmall := lossAt(64)
		wBig, rBig := lossAt(4096)
		if !(wSmall > wBig && rBig > rSmall) {
			t.Errorf("%s: no reversal: small write loses %.0f%%/read %.0f%%; big write loses %.0f%%/read %.0f%%",
				p.Name, wSmall, rSmall, wBig, rBig)
		}
	}
}

// Key Finding 2: contention between two small-write flows from different
// clients activates the NoC boost; total traffic exceeds 200% of one solo
// flow.
func TestKF2AbnormalIncrement(t *testing.T) {
	// Paper profiles only: CX5-ISO pins the NoC at its base clock by design,
	// which closes exactly this abnormal-increment channel.
	for _, p := range PaperProfiles {
		w1 := FlowSpec{Name: "w1", Op: OpWrite, MsgBytes: 64, QPNum: 4, Client: 0}
		w2 := FlowSpec{Name: "w2", Op: OpWrite, MsgBytes: 64, QPNum: 4, Client: 1}
		solo := Solo(p, w1)
		res := Solve(p, []FlowSpec{w1, w2})
		total := (res[0].GoodputGbps + res[1].GoodputGbps) / solo.GoodputGbps * 100
		if total <= 200 {
			t.Errorf("%s: aggregate under small-write contention = %.0f%% of solo, want > 200%%", p.Name, total)
		}
		// Each flow individually beats its solo bandwidth.
		if res[0].GoodputGbps <= solo.GoodputGbps {
			t.Errorf("%s: contended flow (%.2fG) did not exceed solo (%.2fG)", p.Name, res[0].GoodputGbps, solo.GoodputGbps)
		}
	}
}

// Key Finding 3: RDMA Write and reverse RDMA Read with identical parameters
// interact differently with a Write competitor (Tx vs Rx arbiter priority).
func TestKF3WriteVsReverseReadAsymmetry(t *testing.T) {
	// Paper profiles only: CX5-ISO's weighted scheduling deliberately
	// removes the Tx-over-Rx priority asymmetry this test pins.
	for _, p := range PaperProfiles {
		w := FlowSpec{Name: "w", Op: OpWrite, MsgBytes: 1024, QPNum: 2, Client: 0}
		symm := Solve(p, []FlowSpec{w, {Name: "w2", Op: OpWrite, MsgBytes: 1024, QPNum: 2, Client: 1}})
		asym := Solve(p, []FlowSpec{w, {Name: "rr", Op: OpRead, MsgBytes: 1024, QPNum: 2, Client: 1, FromServer: true}})
		dSymm := symm[0].GoodputGbps
		dAsym := asym[0].GoodputGbps
		if dSymm == 0 || dAsym == 0 {
			t.Fatalf("%s: zero allocations", p.Name)
		}
		rel := dAsym / dSymm
		if rel > 0.99 && rel < 1.01 {
			t.Errorf("%s: write-vs-write and write-vs-reverse-read identical (%.3f), want asymmetry", p.Name, rel)
		}
	}
}

// The covert priority channel's observable: a monitor read flow sees a
// clearly different bandwidth when the sender blasts 2048 B writes (bit 0)
// vs 128 B writes (bit 1).
func TestPriorityChannelObservable(t *testing.T) {
	// Paper profiles only: CX5-ISO's weighted shares collapse this gap to
	// zero (pinned by TestIsolatedClosesPriorityChannel).
	for _, p := range PaperProfiles {
		mon := FlowSpec{Name: "mon", Op: OpRead, MsgBytes: 1024, QPNum: 1, Client: 1}
		bit1 := Solve(p, []FlowSpec{{Name: "tx", Op: OpWrite, MsgBytes: 128, QPNum: 4, Client: 0}, mon})[1]
		bit0 := Solve(p, []FlowSpec{{Name: "tx", Op: OpWrite, MsgBytes: 2048, QPNum: 4, Client: 0}, mon})[1]
		gap := (bit1.GoodputGbps - bit0.GoodputGbps) / bit1.GoodputGbps
		if gap < 0.15 {
			t.Errorf("%s: bit0/bit1 monitor gap only %.0f%%, want >= 15%%", p.Name, gap*100)
		}
	}
}

func TestSolveEmptyAndSingle(t *testing.T) {
	if Solve(CX4, nil) != nil {
		t.Fatal("empty solve should return nil")
	}
	r := Solve(CX4, []FlowSpec{{Op: OpRead, MsgBytes: 0, QPNum: 0}})
	if len(r) != 1 {
		t.Fatal("single-flow solve should return one result")
	}
}

// Property: allocations never exceed caps or produce negative rates, and
// adding a competitor never increases... (it can, via NoC boost!) — so only
// assert bounds, not monotonicity.
func TestSolveBoundsProperty(t *testing.T) {
	ops := []Opcode{OpWrite, OpRead, OpSend, OpAtomicFAA}
	f := func(sizes []uint16, qps []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 6 {
			sizes = sizes[:6]
		}
		flows := make([]FlowSpec, len(sizes))
		for i, s := range sizes {
			q := 1
			if len(qps) > 0 {
				q = int(qps[i%len(qps)])%8 + 1
			}
			flows[i] = FlowSpec{
				Op:       ops[i%len(ops)],
				MsgBytes: int(s)%65536 + 1,
				QPNum:    q,
				Client:   i % 3,
			}
		}
		res := Solve(CX5, flows)
		for i, r := range res {
			if r.RateMpps < 0 || r.GoodputGbps < 0 {
				return false
			}
			if r.RateMpps > requesterCap(CX5, flows[i])+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReductionPct(t *testing.T) {
	if got := ReductionPct(FlowResult{GoodputGbps: 10}, FlowResult{GoodputGbps: 5}); got != 50 {
		t.Fatalf("ReductionPct = %v", got)
	}
	if got := ReductionPct(FlowResult{}, FlowResult{GoodputGbps: 5}); got != 0 {
		t.Fatalf("zero solo should give 0, got %v", got)
	}
}

// Property: adding QPs to a solo flow never reduces its bandwidth, and the
// allocation is deterministic.
func TestSoloMonotoneInQPsProperty(t *testing.T) {
	f := func(sz uint16, q uint8) bool {
		size := int(sz)%8192 + 1
		qps := int(q)%8 + 1
		a := Solo(CX5, FlowSpec{Op: OpRead, MsgBytes: size, QPNum: qps})
		b := Solo(CX5, FlowSpec{Op: OpRead, MsgBytes: size, QPNum: qps + 1})
		return b.GoodputGbps >= a.GoodputGbps-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a contended flow never exceeds the NoC-boosted complex would
// allow — concretely, never more than 2.5x its solo bandwidth, and never
// negative.
func TestContentionBoundedProperty(t *testing.T) {
	ops := []Opcode{OpWrite, OpRead, OpSend}
	f := func(sa, sb uint16, qa, qb uint8) bool {
		a := FlowSpec{Op: ops[int(qa)%3], MsgBytes: int(sa)%16384 + 1, QPNum: int(qa)%8 + 1, Client: 0}
		bFlow := FlowSpec{Op: ops[int(qb)%3], MsgBytes: int(sb)%16384 + 1, QPNum: int(qb)%8 + 1, Client: 1}
		soloA := Solo(CX4, a)
		res := Solve(CX4, []FlowSpec{a, bFlow})
		if res[0].GoodputGbps < 0 {
			return false
		}
		return res[0].GoodputGbps <= soloA.GoodputGbps*2.5+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
