package nic

import (
	"math"
	"testing"

	"github.com/thu-has/ragnar/internal/sim"
)

// CX5-ISO closes the Grain-I priority covert channel: the monitor's
// bandwidth gap between the sender's bit-0 and bit-1 loads collapses to
// (near) zero, where the paper profiles show >= 15% (see
// TestPriorityChannelObservable).
func TestIsolatedClosesPriorityChannel(t *testing.T) {
	p := CX5ISO
	mon := FlowSpec{Name: "mon", Op: OpRead, MsgBytes: 1024, QPNum: 1, Client: 1}
	bit1 := Solve(p, []FlowSpec{{Name: "tx", Op: OpWrite, MsgBytes: 128, QPNum: 4, Client: 0}, mon})[1]
	bit0 := Solve(p, []FlowSpec{{Name: "tx", Op: OpWrite, MsgBytes: 2048, QPNum: 4, Client: 0}, mon})[1]
	gap := math.Abs(bit1.GoodputGbps-bit0.GoodputGbps) / bit1.GoodputGbps
	if gap > 0.02 {
		t.Errorf("CX5-ISO: monitor gap %.1f%%, isolation should hold it under 2%%", gap*100)
	}
}

// The KF2 abnormal increment is gone on CX5-ISO: aggregate small-write
// traffic stays at (or below) 200% of solo because the NoC is pinned at its
// base clock.
func TestIsolatedClosesKF2(t *testing.T) {
	p := CX5ISO
	w1 := FlowSpec{Name: "w1", Op: OpWrite, MsgBytes: 64, QPNum: 4, Client: 0}
	w2 := FlowSpec{Name: "w2", Op: OpWrite, MsgBytes: 64, QPNum: 4, Client: 1}
	solo := Solo(p, w1)
	res := Solve(p, []FlowSpec{w1, w2})
	total := (res[0].GoodputGbps + res[1].GoodputGbps) / solo.GoodputGbps * 100
	if total > 200 {
		t.Errorf("CX5-ISO: aggregate %.0f%% of solo, the pinned NoC should keep it <= 200%%", total)
	}
}

// A lone ISO tenant pays nothing for the partition when the shared-clock
// effects are out of play: solo large-message goodput matches CX5 (large
// messages never trigger CX5's NoC boost, so the only differences would be
// partition overhead — which must not exist for a lone tenant).
func TestIsolatedSoloLargeUnchanged(t *testing.T) {
	for _, op := range []Opcode{OpWrite, OpRead} {
		f := FlowSpec{Op: op, MsgBytes: 4096, QPNum: 4}
		base := Solo(CX5, f).GoodputGbps
		iso := Solo(CX5ISO, f).GoodputGbps
		if math.Abs(base-iso) > 1e-9 {
			t.Errorf("%s 4KB solo: CX5=%.4fG CX5-ISO=%.4fG, want identical", op, base, iso)
		}
	}
}

// Table-driven DWRR weight handling: clamping, registration, and the fluid
// model's share normalization.
func TestDWRRWeights(t *testing.T) {
	cases := []struct {
		name    string
		in      [MaxTenants]int
		wantSum int
	}{
		{"all-zero-clamps-to-ones", [MaxTenants]int{}, MaxTenants},
		{"equal", [MaxTenants]int{1, 1, 1, 1, 1, 1, 1, 1}, MaxTenants},
		{"weighted", [MaxTenants]int{4, 2, 1, 1, 1, 1, 1, 1}, 12},
		{"negative-clamps", [MaxTenants]int{-3, 5, 0, 1, 1, 1, 1, 1}, 1 + 5 + 1 + 1 + 1 + 1 + 1 + 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewDWRRArbiter(tc.in, 0)
			sum := 0
			for _, w := range a.Weights() {
				if w < 1 {
					t.Fatalf("weight %d below the >=1 clamp", w)
				}
				sum += w
			}
			if sum != tc.wantSum {
				t.Fatalf("weight sum = %d, want %d", sum, tc.wantSum)
			}
		})
	}
	// The fluid shares for any tenant population sum to 1 (the partition
	// hands out exactly the server's capacity, never more).
	p := CX5ISO
	p.ISOWeights = [MaxTenants]int{4, 2, 1, 1, 0, 0, 0, 0}
	for _, n := range []int{1, 2, 3, 4, 8} {
		var sum float64
		for c := 0; c < n; c++ {
			sum += isoShare(p, c, n)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("%d tenants: shares sum to %v, want 1", n, sum)
		}
	}
}

// DWRR apportions egress service by weight: with 3:1 weights over two
// backlogged tenants, tenant 0 gets ~3x the picks of tenant 1 at equal
// request sizes.
func TestDWRRProportionalPicks(t *testing.T) {
	var w [MaxTenants]int
	w[0], w[1] = 3, 1
	a := NewDWRRArbiter(w, 2048)
	// A standing queue: both tenants always have one 2048 B head-of-line
	// request (indices alternate to prove head-of-line selection, not
	// position bias).
	q := []sim.ReqMeta{
		{Tenant: 1, Bytes: 2048}, {Tenant: 0, Bytes: 2048},
		{Tenant: 1, Bytes: 2048}, {Tenant: 0, Bytes: 2048},
	}
	var picks [2]int
	for i := 0; i < 4000; i++ {
		got := a.Pick(q)
		picks[q[got].Tenant]++
	}
	ratio := float64(picks[0]) / float64(picks[1])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("pick ratio tenant0:tenant1 = %.2f (%d:%d), want ~3.0", ratio, picks[0], picks[1])
	}
}

// The constant-time TPU has zero offset-vs-latency correlation: every
// offset in the sweep yields the identical deterministic service time,
// while the empirical strategy varies (that variation is KF4's carrier).
func TestConstTPUZeroOffsetCorrelation(t *testing.T) {
	p := WithConstTPU(CX5)
	ct := NewTPU(p, sim.NewEngine(1).Rand())
	emp := NewTPU(CX5, sim.NewEngine(1).Rand())

	var ctTimes, empTimes []float64
	for off := uint64(0); off <= 4096; off += 8 {
		req := Request{MRKey: 1, Offset: off, Length: 64, MRBase: 0, PageSize: 2 << 20}
		ctTimes = append(ctTimes, float64(ct.strat.Service(ct, req)))
		empTimes = append(empTimes, float64(emp.strat.Service(emp, req)))
	}
	for i, d := range ctTimes {
		if d != ctTimes[0] {
			t.Fatalf("const-TPU service varies with offset: sample %d = %v, sample 0 = %v", i, d, ctTimes[0])
		}
	}
	varies := false
	for _, d := range empTimes {
		if d != empTimes[0] {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("empirical TPU shows no offset dependence — KF4 carrier missing")
	}
	// Pearson correlation against offset: exactly 0 for the flat surface.
	if r := offsetCorr(ctTimes); math.Abs(r) > 1e-12 {
		t.Fatalf("const-TPU offset correlation = %v, want 0", r)
	}
	if r := offsetCorr(empTimes); math.Abs(r) < 1e-6 {
		t.Fatalf("empirical offset correlation = %v, want non-zero", r)
	}
}

// offsetCorr computes Pearson correlation of a series against its index.
func offsetCorr(ys []float64) float64 {
	n := float64(len(ys))
	var sx, sy, sxx, syy, sxy float64
	for i, y := range ys {
		x := float64(i)
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	den := math.Sqrt(n*sxx-sx*sx) * math.Sqrt(n*syy-sy*sy)
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// SetConstantTime swaps strategies at runtime (the defense package's
// ConstantTimeMitigation relies on this surviving the strategy seam).
func TestSetConstantTimeSwapsStrategy(t *testing.T) {
	tp := NewTPU(CX5, sim.NewEngine(1).Rand())
	if tp.Strategy() != TPUEmpirical || tp.ConstantTimeEnabled() {
		t.Fatal("CX5 should start on the empirical strategy")
	}
	tp.SetConstantTime(true)
	if tp.Strategy() != TPUConstTime || !tp.ConstantTimeEnabled() {
		t.Fatal("SetConstantTime(true) did not select the const-time strategy")
	}
	tp.SetConstantTime(false)
	if tp.Strategy() != TPUEmpirical {
		t.Fatal("SetConstantTime(false) did not restore the empirical strategy")
	}
	if NewTPU(WithConstTPU(CX5), sim.NewEngine(1).Rand()).Strategy() != TPUConstTime {
		t.Fatal("WithConstTPU profile should construct a const-time TPU")
	}
}

// Derived profiles keep their base adapter's identity for channel
// calibration.
func TestDerivedProfileBase(t *testing.T) {
	for _, p := range []Profile{CX5ISO, WithConstTPU(CX5ISO), WithAES(CX5ISO), WithConstTPU(CX5), WithAES(CX5)} {
		if p.Base != CX5.Name {
			t.Fatalf("%s: Base = %q, want %q", p.Name, p.Base, CX5.Name)
		}
	}
	for _, p := range PaperProfiles {
		if p.Base != "" {
			t.Fatalf("%s: paper profile has non-empty Base %q", p.Name, p.Base)
		}
	}
}

// The arbiter hot path must stay allocation-free under the strategy
// indirection (gated in CI by scripts/benchguard.go).
func BenchmarkArbiterPick(b *testing.B) {
	q := make([]sim.ReqMeta, 16)
	for i := range q {
		q[i] = sim.ReqMeta{Class: i % 2, Tenant: i % 4, Bytes: 64 << (i % 5)}
	}
	b.Run("strict", func(b *testing.B) {
		b.ReportAllocs()
		a := StrictArbiter{}
		for i := 0; i < b.N; i++ {
			_ = a.Pick(q)
		}
	})
	b.Run("dwrr", func(b *testing.B) {
		b.ReportAllocs()
		var w [MaxTenants]int
		w[0], w[1], w[2], w[3] = 2, 1, 1, 1
		a := NewDWRRArbiter(w, 2048)
		for i := 0; i < b.N; i++ {
			_ = a.Pick(q)
		}
	})
}
