package host

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/thu-has/ragnar/internal/sim"
)

func newTestHost() *Host {
	return New(sim.NewEngine(1), H2)
}

func TestAllocAlignment(t *testing.T) {
	h := newTestHost()
	r, err := h.Alloc(1<<20, Page2M, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Base()%uint64(Page2M) != 0 {
		t.Fatalf("base %#x not 2M-aligned", r.Base())
	}
	if r.Size() != uint64(Page2M) {
		t.Fatalf("size = %d, want rounded up to 2M", r.Size())
	}
	if r.Base() == 0 {
		t.Fatal("region must not start at physical 0")
	}
}

func TestAlloc4K(t *testing.T) {
	h := newTestHost()
	r, err := h.Alloc(100, Page4K, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != uint64(Page4K) {
		t.Fatalf("size = %d", r.Size())
	}
}

func TestAllocErrors(t *testing.T) {
	h := newTestHost()
	if _, err := h.Alloc(0, Page4K, 0); err == nil {
		t.Fatal("zero size should error")
	}
	if _, err := h.Alloc(100, Page4K, 99); err == nil {
		t.Fatal("bad NUMA node should error")
	}
	if _, err := h.Alloc(100, PageSize(123), 0); err == nil {
		t.Fatal("bad page size should error")
	}
	if _, err := h.Alloc(h.Config().RAMBytes+1, Page2M, 0); err == nil {
		t.Fatal("oversized allocation should error")
	}
}

func TestReadWriteAt(t *testing.T) {
	h := newTestHost()
	r, _ := h.Alloc(4096, Page4K, 0)
	msg := []byte("sherman-kv-entry")
	if err := r.WriteAt(64, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := r.ReadAt(64, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read back %q", got)
	}
	if err := r.WriteAt(r.Size()-1, []byte{1, 2}); err == nil {
		t.Fatal("overflowing write should error")
	}
	if err := r.ReadAt(r.Size(), make([]byte, 1)); err == nil {
		t.Fatal("out-of-range read should error")
	}
}

func TestLookup(t *testing.T) {
	h := newTestHost()
	a, _ := h.Alloc(4096, Page4K, 0)
	b, _ := h.Alloc(4096, Page4K, 1)
	if h.Lookup(a.Base()) != a {
		t.Fatal("lookup of a.base failed")
	}
	if h.Lookup(a.Base()+4095) != a {
		t.Fatal("lookup of a tail failed")
	}
	if h.Lookup(b.Base()) != b {
		t.Fatal("lookup of b failed")
	}
	if h.Lookup(0) != nil {
		t.Fatal("address 0 should be unmapped")
	}
	if h.Lookup(b.Base()+b.Size()) != nil {
		t.Fatal("past-the-end should be unmapped")
	}
}

func TestFree(t *testing.T) {
	h := newTestHost()
	r, _ := h.Alloc(4096, Page4K, 0)
	used := h.Used()
	h.Free(r)
	if h.Used() != used-4096 {
		t.Fatalf("used = %d after free", h.Used())
	}
	if h.Lookup(r.Base()) != nil {
		t.Fatal("freed region still mapped")
	}
	h.Free(r) // double free is a no-op
}

func TestMemAccessLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := H2
	cfg.DDIO = false
	h := New(eng, cfg)
	local, _ := h.Alloc(4096, Page4K, 0)
	remote, _ := h.Alloc(4096, Page4K, 1)
	if got := h.MemAccessLatency(local, 0); got != cfg.DRAMLatency {
		t.Fatalf("local latency = %v", got)
	}
	if got := h.MemAccessLatency(remote, 0); got != cfg.DRAMLatency+cfg.NUMAPenalty {
		t.Fatalf("cross-NUMA latency = %v", got)
	}

	cfg.DDIO = true
	h2 := New(eng, cfg)
	r, _ := h2.Alloc(4096, Page4K, 0)
	if got := h2.MemAccessLatency(r, 1); got != cfg.LLCLatency {
		t.Fatalf("DDIO latency = %v", got)
	}
}

func TestTableIIHosts(t *testing.T) {
	for _, cfg := range []Config{H1, H2, H3} {
		if cfg.RAMBytes == 0 || cfg.Cores == 0 || cfg.NUMANodes == 0 {
			t.Fatalf("host %s incompletely specified", cfg.Name)
		}
		if cfg.LLCLatency >= cfg.DRAMLatency {
			t.Fatalf("host %s: LLC must be faster than DRAM", cfg.Name)
		}
	}
	if H3.RAMBytes != 1<<40 {
		t.Fatalf("H3 RAM = %d, want 1TB", H3.RAMBytes)
	}
}

// Property: allocations never overlap and are always page-aligned.
func TestAllocDisjointProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		h := newTestHost()
		type span struct{ lo, hi uint64 }
		var spans []span
		for _, s := range sizes {
			r, err := h.Alloc(uint64(s)+1, Page4K, 0)
			if err != nil {
				return true // out of memory is acceptable
			}
			if r.Base()%uint64(Page4K) != 0 {
				return false
			}
			for _, sp := range spans {
				if r.Base() < sp.hi && sp.lo < r.Base()+r.Size() {
					return false
				}
			}
			spans = append(spans, span{r.Base(), r.Base() + r.Size()})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Lookup finds exactly the region containing any in-range address.
func TestLookupProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		h := newTestHost()
		var regions []*Region
		for i := 0; i < 8; i++ {
			r, err := h.Alloc(8192, Page4K, 0)
			if err != nil {
				return true
			}
			regions = append(regions, r)
		}
		for i, off := range offsets {
			r := regions[i%len(regions)]
			addr := r.Base() + uint64(off)%r.Size()
			if h.Lookup(addr) != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
