// Package host models the server side of an RDMA deployment at the fidelity
// the Ragnar experiments need: physical memory with page-granular
// allocation (4 KiB regular or 2 MiB huge pages), NUMA domains with
// asymmetric DRAM latency, DDIO (direct cache access for inbound DMA) and
// CPU core binding. Memory registered for RDMA is pinned so the NIC data
// path never takes a page fault, exactly as libibverbs does.
package host

import (
	"fmt"
	"sort"

	"github.com/thu-has/ragnar/internal/sim"
)

// PageSize selects the translation granule for an allocation.
type PageSize int

const (
	// Page4K is the regular 4 KiB page.
	Page4K PageSize = 4 << 10
	// Page2M is the 2 MiB huge page used by all Grain-III/IV experiments
	// (the paper pins MRs on huge pages to exclude PTE-walk artefacts).
	Page2M PageSize = 2 << 20
)

// Config describes one host from Table II.
type Config struct {
	Name      string
	Processor string
	NUMANodes int
	Cores     int
	// DRAMLatency is the local-node load-to-use latency.
	DRAMLatency sim.Duration
	// NUMAPenalty is added per remote-node access.
	NUMAPenalty sim.Duration
	// LLCLatency is the last-level-cache hit latency (used with DDIO).
	LLCLatency sim.Duration
	// RAMBytes bounds total allocatable memory.
	RAMBytes uint64
	// DDIO enables direct cache access for device writes. The Grain-III/IV
	// setup disables it to remove cache-induced latency variance.
	DDIO bool
}

// H1, H2 and H3 reproduce Table II's hosts. Latencies are typical for the
// listed processors; only their relative effect matters to the attacks.
var (
	H1 = Config{Name: "H1", Processor: "AMD EPYC 9554", NUMANodes: 4, Cores: 64,
		DRAMLatency: 95 * sim.Nanosecond, NUMAPenalty: 50 * sim.Nanosecond,
		LLCLatency: 14 * sim.Nanosecond, RAMBytes: 755 << 30}
	H2 = Config{Name: "H2", Processor: "Intel Xeon Silver 4314", NUMANodes: 2, Cores: 16,
		DRAMLatency: 85 * sim.Nanosecond, NUMAPenalty: 60 * sim.Nanosecond,
		LLCLatency: 16 * sim.Nanosecond, RAMBytes: 256 << 30}
	H3 = Config{Name: "H3", Processor: "Intel Xeon Platinum 8480+", NUMANodes: 2, Cores: 56,
		DRAMLatency: 90 * sim.Nanosecond, NUMAPenalty: 55 * sim.Nanosecond,
		LLCLatency: 15 * sim.Nanosecond, RAMBytes: 1 << 40}
)

// Host is a simulated server: an address space carved into pinned regions
// plus the processor attributes the NIC model consults.
type Host struct {
	cfg    Config
	eng    *sim.Engine
	next   uint64 // physical allocation cursor
	allocs []*Region
	used   uint64
}

// New creates a host attached to the simulation engine.
func New(eng *sim.Engine, cfg Config) *Host {
	if cfg.NUMANodes < 1 {
		cfg.NUMANodes = 1
	}
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	// Leave physical page zero unused so address 0 never appears.
	return &Host{cfg: cfg, eng: eng, next: uint64(Page2M)}
}

// Config returns the host's configuration.
func (h *Host) Config() Config { return h.cfg }

// Region is a pinned, physically contiguous allocation. The simulation keeps
// real backing bytes so application code (B+ tree, database pages) reads and
// writes true data through the RDMA path.
type Region struct {
	host *Host
	base uint64 // physical base address
	size uint64
	page PageSize
	numa int
	data []byte
}

// Alloc pins size bytes on the given NUMA node with the given page size.
// The base address is aligned to the page size.
func (h *Host) Alloc(size uint64, page PageSize, numa int) (*Region, error) {
	if size == 0 {
		return nil, fmt.Errorf("host %s: zero-size allocation", h.cfg.Name)
	}
	if numa < 0 || numa >= h.cfg.NUMANodes {
		return nil, fmt.Errorf("host %s: NUMA node %d out of range [0,%d)", h.cfg.Name, numa, h.cfg.NUMANodes)
	}
	if page != Page4K && page != Page2M {
		return nil, fmt.Errorf("host %s: unsupported page size %d", h.cfg.Name, page)
	}
	ps := uint64(page)
	alignedSize := (size + ps - 1) / ps * ps
	if h.used+alignedSize > h.cfg.RAMBytes {
		return nil, fmt.Errorf("host %s: out of memory (%d used, %d requested, %d total)",
			h.cfg.Name, h.used, alignedSize, h.cfg.RAMBytes)
	}
	base := (h.next + ps - 1) / ps * ps
	h.next = base + alignedSize
	h.used += alignedSize
	r := &Region{host: h, base: base, size: alignedSize, page: page, numa: numa,
		data: make([]byte, alignedSize)}
	h.allocs = append(h.allocs, r)
	sort.Slice(h.allocs, func(i, j int) bool { return h.allocs[i].base < h.allocs[j].base })
	return r, nil
}

// Free unpins the region. Its address range is not recycled (monotone
// allocation keeps experiment addresses stable across runs).
func (h *Host) Free(r *Region) {
	for i, a := range h.allocs {
		if a == r {
			h.allocs = append(h.allocs[:i], h.allocs[i+1:]...)
			h.used -= r.size
			r.data = nil
			return
		}
	}
}

// Base returns the region's physical base address.
func (r *Region) Base() uint64 { return r.base }

// Size returns the pinned size in bytes.
func (r *Region) Size() uint64 { return r.size }

// Page returns the page granule backing the region.
func (r *Region) Page() PageSize { return r.page }

// NUMA returns the region's NUMA node.
func (r *Region) NUMA() int { return r.numa }

// Bytes exposes the backing storage for direct host-side access.
func (r *Region) Bytes() []byte { return r.data }

// ReadAt copies len(p) bytes starting at offset into p.
func (r *Region) ReadAt(offset uint64, p []byte) error {
	if offset+uint64(len(p)) > r.size {
		return fmt.Errorf("host: read [%d,%d) outside region of %d bytes", offset, offset+uint64(len(p)), r.size)
	}
	copy(p, r.data[offset:])
	return nil
}

// WriteAt copies p into the region starting at offset.
func (r *Region) WriteAt(offset uint64, p []byte) error {
	if offset+uint64(len(p)) > r.size {
		return fmt.Errorf("host: write [%d,%d) outside region of %d bytes", offset, offset+uint64(len(p)), r.size)
	}
	copy(r.data[offset:], p)
	return nil
}

// Lookup resolves a physical address to its region, or nil if unmapped.
func (h *Host) Lookup(addr uint64) *Region {
	i := sort.Search(len(h.allocs), func(i int) bool { return h.allocs[i].base+h.allocs[i].size > addr })
	if i < len(h.allocs) && addr >= h.allocs[i].base {
		return h.allocs[i]
	}
	return nil
}

// MemAccessLatency returns the latency for a DMA of one cache line touching
// the region: LLC hit latency when DDIO is enabled (inbound writes land in
// cache), DRAM plus a possible NUMA penalty otherwise. nicNUMA is the NUMA
// node the NIC is attached to.
func (h *Host) MemAccessLatency(r *Region, nicNUMA int) sim.Duration {
	if h.cfg.DDIO {
		return h.cfg.LLCLatency
	}
	lat := h.cfg.DRAMLatency
	if r != nil && r.numa != nicNUMA {
		lat += h.cfg.NUMAPenalty
	}
	return lat
}

// Used reports currently pinned bytes.
func (h *Host) Used() uint64 { return h.used }
