// Package uli implements the paper's Unit Latency Increase methodology
// (Section IV-C): Lat_total, measured from ibv_post_send to the polled
// completion, relates linearly to the send-queue backlog as
// Lat_total = k*(len_sq+1) + C with C ~ 0, so ULI = Lat_total/(len_sq+1)
// characterises per-request datapath contention. The package provides a
// closed-loop prober that sustains a target queue depth, per-probe ULI
// samples, and the linearity verification the paper reports (Pearson
// 0.9998).
package uli

import (
	"errors"
	"sync/atomic"

	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/stats"
	"github.com/thu-has/ragnar/internal/verbs"
)

// Sample is one probe measurement.
type Sample struct {
	Lat     sim.Duration // post-to-completion latency
	LenSQ   int          // WQEs ahead of this probe at post time
	ULINano float64      // Lat/(LenSQ+1) in nanoseconds
	Offset  uint64       // remote offset the probe touched
}

// Prober issues RDMA Reads in a closed loop, keeping Depth requests
// outstanding, and records a Sample per completion.
type Prober struct {
	QP      *verbs.QP
	CQ      *verbs.CQ
	Remote  verbs.RemoteBuf
	MsgSize int
	// Depth is the sustained queue depth (the paper's max send queue size
	// knob; e.g. 10/6/6 for the inter-MR channel, 8 for intra-MR).
	Depth int
	// NextOffset, when set, selects the remote offset of probe i (relative
	// to Remote.Addr); nil probes offset 0 repeatedly.
	NextOffset func(i int) uint64
	// NextRemote, when set, selects the full remote target of probe i
	// (rkey and address), overriding Remote/NextOffset — the inter-MR
	// channel alternates rkeys, not just offsets.
	NextRemote func(i int) verbs.RemoteBuf
	// IncludeRamp also records samples posted before the queue reached its
	// target depth. The default (false) keeps only steady-state samples,
	// matching how the paper computes ULI.
	IncludeRamp bool
}

// proberEpoch gives each measurement run a distinct WRID namespace so
// completions left in flight by a previous run are never mistaken for this
// run's probes. It is atomic because parallel sweeps measure on independent
// engines concurrently; the epoch value itself never influences timing, so
// allocation order does not affect results.
var proberEpoch atomic.Uint64

// Measure runs n probes and returns their samples. It drives the engine via
// completion notifications: concurrent traffic from other actors keeps
// flowing. The caller's engine is run until the measurement completes, and
// in-flight probes are drained before returning so back-to-back
// measurements on one connection do not contaminate each other.
func (p *Prober) Measure(eng *sim.Engine, n int) ([]Sample, error) {
	if p.Depth < 1 {
		return nil, errors.New("uli: depth must be >= 1")
	}
	if n < 1 {
		return nil, errors.New("uli: need at least one probe")
	}
	epoch := proberEpoch.Add(1) << 32
	samples := make([]Sample, 0, n)
	posted := 0
	skipped := 0
	lenAt := make(map[uint64]int, p.Depth+1)
	offAt := make(map[uint64]uint64, p.Depth+1)
	done := false

	post := func() error {
		target := p.Remote
		var off uint64
		switch {
		case p.NextRemote != nil:
			target = p.NextRemote(posted)
			off = target.Addr - p.Remote.Addr
		case p.NextOffset != nil:
			off = p.NextOffset(posted)
			target = p.Remote.At(off)
		}
		wrid := epoch | uint64(posted)
		lenAt[wrid] = p.QP.Outstanding()
		offAt[wrid] = off
		posted++
		return p.QP.PostRead(wrid, nil, target, p.MsgSize)
	}

	prevNotify := p.CQ.Notify
	defer func() { p.CQ.Notify = prevNotify }()
	var measureErr error
	p.CQ.Notify = func(c nic.Completion) {
		if done || c.WRID&^uint64(0xffffffff) != epoch {
			return // stale probe from an earlier measurement
		}
		if c.Status != nic.StatusOK {
			measureErr = errors.New("uli: probe failed: " + c.Status.String())
			done = true
			eng.Halt()
			return
		}
		lat := c.DoneTime.Sub(c.PostTime)
		lsq := lenAt[c.WRID]
		delete(lenAt, c.WRID)
		switch {
		case !p.IncludeRamp && (lsq < p.Depth-1 || skipped < p.Depth):
			// Ramp-up probes and the first pipeline-fill completions carry
			// startup latency, not steady-state contention.
			skipped++
		default:
			samples = append(samples, Sample{
				Lat:     lat,
				LenSQ:   lsq,
				ULINano: lat.Nanoseconds() / float64(lsq+1),
				Offset:  offAt[c.WRID],
			})
		}
		delete(offAt, c.WRID)
		if len(samples) >= n {
			done = true
			eng.Halt()
			return
		}
		if err := post(); err != nil && err != verbs.ErrSQFull {
			measureErr = err
			done = true
			eng.Halt()
		}
	}

	for i := 0; i < p.Depth; i++ {
		if err := post(); err != nil {
			if err == verbs.ErrSQFull {
				break
			}
			return nil, err
		}
	}
	eng.Run()
	if measureErr != nil {
		return nil, measureErr
	}
	if len(samples) < n {
		return samples, errors.New("uli: engine drained before measurement completed")
	}
	// Drain remaining in-flight probes so the next measurement on this
	// connection starts from an idle queue.
	if p.QP.Outstanding() > 0 {
		p.CQ.Notify = func(nic.Completion) {
			if p.QP.Outstanding() == 0 {
				eng.Halt()
			}
		}
		eng.Run()
	}
	return samples, nil
}

// ULIs extracts the ULI values (ns) from samples.
func ULIs(samples []Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s.ULINano
	}
	return out
}

// Trace summarises a batch of ULI samples the way the paper's figures plot
// them: mean with 10th/90th percentiles.
type Trace struct {
	Mean float64
	P10  float64
	P90  float64
	N    int
}

// Summarize reduces samples to a Trace.
func Summarize(samples []Sample) Trace {
	u := ULIs(samples)
	ps := stats.Percentiles(u, 10, 90)
	return Trace{Mean: stats.Mean(u), P10: ps[0], P90: ps[1], N: len(u)}
}

// LinearityReport verifies the Lat = k*(len_sq+1) + C model across queue
// depths.
type LinearityReport struct {
	K       float64 // slope: latency per queued request, ns
	C       float64 // intercept, ns
	Pearson float64
	Depths  []int
	MeanLat []float64 // ns, aligned with Depths
}

// VerifyLinearity measures mean latency at each depth and fits the line.
// The paper reports Pearson = 0.9998 with negligible C; the simulated
// pipeline reproduces that because queueing dominates the constant terms at
// depth >= a few.
func VerifyLinearity(eng *sim.Engine, mk func(depth int) *Prober, depths []int, probesPer int) (LinearityReport, error) {
	var rep LinearityReport
	var xs, ys []float64
	for _, d := range depths {
		p := mk(d)
		// Scale the sample budget so deep queues reach steady state.
		samples, err := p.Measure(eng, probesPer+2*d)
		if err != nil {
			return rep, err
		}
		var lat []float64
		for _, s := range samples {
			lat = append(lat, s.Lat.Nanoseconds())
		}
		m := stats.Mean(lat)
		rep.Depths = append(rep.Depths, d)
		rep.MeanLat = append(rep.MeanLat, m)
		xs = append(xs, float64(d))
		ys = append(ys, m)
	}
	k, c, r, err := stats.LinearFit(xs, ys)
	if err != nil {
		return rep, err
	}
	rep.K, rep.C, rep.Pearson = k, c, r
	return rep, nil
}
