package uli

import (
	"errors"
	"math"

	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/trace"
	"github.com/thu-has/ragnar/internal/verbs"
)

// TimedSample is a ULI observation stamped with its completion time, for
// receivers that bin observations into symbol windows.
type TimedSample struct {
	At      sim.Time
	ULINano float64
	Offset  uint64
}

// Sampler measures ULI continuously, without a target sample count: it
// keeps Depth probes outstanding and records every steady-state completion
// until stopped. Covert-channel receivers run one of these while the engine
// advances through symbol periods.
type Sampler struct {
	QP      *verbs.QP
	CQ      *verbs.CQ
	Remote  verbs.RemoteBuf
	MsgSize int
	Depth   int
	// NextOffset optionally varies the probed offset.
	NextOffset func(i int) uint64
	// Rec, when set, receives one KindULISample event per recorded sample
	// (the metrics registry derives sample jitter from the event stream).
	Rec *trace.Recorder

	Samples []TimedSample

	running  bool
	posted   int
	epoch    uint64
	lenAt    map[uint64]int
	offAt    map[uint64]uint64
	err      error
	recActor uint16
}

// Start fills the queue and begins recording. The sampler owns the CQ's
// Notify slot until Stop.
func (s *Sampler) Start() error {
	if s.running {
		return errors.New("uli: sampler already running")
	}
	if s.Depth < 1 {
		return errors.New("uli: sampler depth must be >= 1")
	}
	s.epoch = proberEpoch.Add(1) << 32
	s.lenAt = make(map[uint64]int, s.Depth+1)
	s.offAt = make(map[uint64]uint64, s.Depth+1)
	s.running = true
	s.recActor = s.Rec.RegisterActor("uli/sampler")
	s.CQ.Notify = func(c nic.Completion) {
		if !s.running || c.WRID&^uint64(0xffffffff) != s.epoch {
			return
		}
		if c.Status != nic.StatusOK {
			s.err = errors.New("uli: sampler probe failed: " + c.Status.String())
			s.running = false
			return
		}
		lsq := s.lenAt[c.WRID]
		delete(s.lenAt, c.WRID)
		if lsq >= s.Depth-1 {
			lat := c.DoneTime.Sub(c.PostTime)
			uliNano := lat.Nanoseconds() / float64(lsq+1)
			s.Samples = append(s.Samples, TimedSample{
				At:      c.DoneTime,
				ULINano: uliNano,
				Offset:  s.offAt[c.WRID],
			})
			s.Rec.Emit(trace.Event{At: int64(c.DoneTime), Kind: trace.KindULISample,
				Actor: s.recActor, Val: math.Float64bits(uliNano),
				Aux: s.offAt[c.WRID], TC: -1})
		}
		delete(s.offAt, c.WRID)
		if err := s.post(); err != nil && err != verbs.ErrSQFull {
			s.err = err
			s.running = false
		}
	}
	for i := 0; i < s.Depth; i++ {
		if err := s.post(); err != nil {
			if err == verbs.ErrSQFull {
				break
			}
			return err
		}
	}
	return nil
}

func (s *Sampler) post() error {
	var off uint64
	if s.NextOffset != nil {
		off = s.NextOffset(s.posted)
	}
	wrid := s.epoch | uint64(s.posted)
	s.lenAt[wrid] = s.QP.Outstanding()
	s.offAt[wrid] = off
	s.posted++
	return s.QP.PostRead(wrid, nil, s.Remote.At(off), s.MsgSize)
}

// Stop ceases probing and releases the CQ hook. In-flight probes drain as
// the engine continues.
func (s *Sampler) Stop() {
	s.running = false
	s.CQ.Notify = nil
}

// Err returns the first probe failure, if any.
func (s *Sampler) Err() error { return s.err }

// Window returns the ULI values recorded in [from, to).
func (s *Sampler) Window(from, to sim.Time) []float64 {
	var out []float64
	for _, ts := range s.Samples {
		if ts.At >= from && ts.At < to {
			out = append(out, ts.ULINano)
		}
	}
	return out
}
