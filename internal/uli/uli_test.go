package uli

import (
	"testing"

	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/verbs"
)

func setup(t *testing.T, prof nic.Profile, depth int) (*lab.Cluster, *lab.Conn, *verbs.MR) {
	t.Helper()
	c := lab.New(lab.DefaultConfig(prof))
	mr, err := c.RegisterServerMR(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := c.Dial(0, depth+2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Warm(conn, mr); err != nil {
		t.Fatal(err)
	}
	return c, conn, mr
}

func TestMeasureBasic(t *testing.T) {
	c, conn, mr := setup(t, nic.CX4, 8)
	p := &Prober{QP: conn.QP, CQ: conn.CQ, Remote: mr.Describe(0), MsgSize: 64, Depth: 8}
	samples, err := p.Measure(c.Eng, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 100 {
		t.Fatalf("got %d samples", len(samples))
	}
	tr := Summarize(samples)
	if tr.Mean <= 0 {
		t.Fatal("non-positive mean ULI")
	}
	if tr.P10 > tr.Mean || tr.P90 < tr.Mean {
		t.Fatalf("percentiles inconsistent: %+v", tr)
	}
	// Steady-state ULI for 64 B reads should be dominated by the bottleneck
	// stage; on CX-4 that lands in the hundreds of nanoseconds.
	if tr.Mean < 100 || tr.Mean > 2000 {
		t.Fatalf("CX-4 64B ULI = %.0f ns, expected hundreds of ns", tr.Mean)
	}
}

func TestMeasureValidation(t *testing.T) {
	c, conn, mr := setup(t, nic.CX4, 4)
	p := &Prober{QP: conn.QP, CQ: conn.CQ, Remote: mr.Describe(0), MsgSize: 64, Depth: 0}
	if _, err := p.Measure(c.Eng, 10); err == nil {
		t.Fatal("depth 0 should error")
	}
	p.Depth = 4
	if _, err := p.Measure(c.Eng, 0); err == nil {
		t.Fatal("zero probes should error")
	}
}

func TestMeasureFailedProbe(t *testing.T) {
	c, conn, mr := setup(t, nic.CX4, 4)
	// Probe past the MR's end -> remote access error surfaces.
	p := &Prober{QP: conn.QP, CQ: conn.CQ, Remote: mr.Describe(mr.Size()), MsgSize: 64, Depth: 2}
	if _, err := p.Measure(c.Eng, 4); err == nil {
		t.Fatal("out-of-bounds probes should fail the measurement")
	}
}

func TestOffsetScheduleHonored(t *testing.T) {
	c, conn, mr := setup(t, nic.CX4, 2)
	offsets := []uint64{0, 256, 512, 1024}
	p := &Prober{
		QP: conn.QP, CQ: conn.CQ, Remote: mr.Describe(0), MsgSize: 64, Depth: 2,
		NextOffset: func(i int) uint64 { return offsets[i%len(offsets)] },
	}
	samples, err := p.Measure(c.Eng, 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, s := range samples {
		seen[s.Offset] = true
	}
	for _, o := range offsets {
		if !seen[o] {
			t.Fatalf("offset %d never probed", o)
		}
	}
}

// The paper's core linearity claim: Lat_total = k*(len_sq+1)+C with strong
// correlation and small C relative to the full-depth latency.
func TestLinearityMatchesPaper(t *testing.T) {
	c := lab.New(lab.DefaultConfig(nic.CX4))
	mr, err := c.RegisterServerMR(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	conns := map[int]*lab.Conn{}
	mk := func(depth int) *Prober {
		conn, err := c.Dial(0, depth+2)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Warm(conn, mr); err != nil {
			t.Fatal(err)
		}
		conns[depth] = conn
		return &Prober{QP: conn.QP, CQ: conn.CQ, Remote: mr.Describe(0), MsgSize: 1024, Depth: depth}
	}
	rep, err := VerifyLinearity(c.Eng, mk, []int{4, 8, 16, 32, 64, 128, 256}, 120)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pearson < 0.99 {
		t.Fatalf("Pearson = %v, paper reports 0.9998", rep.Pearson)
	}
	if rep.K <= 0 {
		t.Fatalf("slope k = %v", rep.K)
	}
	// C is small relative to latency at depth 256.
	deep := rep.MeanLat[len(rep.MeanLat)-1]
	if rep.C > 0.12*deep {
		t.Fatalf("intercept C = %.0f ns not negligible vs %.0f ns", rep.C, deep)
	}
}

// ULI must be stable across repeated measurements on a quiet system
// (deterministic seed).
func TestULIRepeatability(t *testing.T) {
	run := func() float64 {
		c, conn, mr := setup(t, nic.CX5, 6)
		p := &Prober{QP: conn.QP, CQ: conn.CQ, Remote: mr.Describe(0), MsgSize: 512, Depth: 6}
		samples, err := p.Measure(c.Eng, 200)
		if err != nil {
			t.Fatal(err)
		}
		return Summarize(samples).Mean
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed ULI differs: %v vs %v", a, b)
	}
}

// The CX generations order by speed: newer NICs show lower ULI for the
// same probe workload.
func TestULIOrdersAcrossGenerations(t *testing.T) {
	mean := func(p nic.Profile) float64 {
		c, conn, mr := setup(t, p, 8)
		pr := &Prober{QP: conn.QP, CQ: conn.CQ, Remote: mr.Describe(0), MsgSize: 64, Depth: 8}
		samples, err := pr.Measure(c.Eng, 150)
		if err != nil {
			t.Fatal(err)
		}
		return Summarize(samples).Mean
	}
	u4, u5, u6 := mean(nic.CX4), mean(nic.CX5), mean(nic.CX6)
	if !(u6 < u5 && u5 < u4) {
		t.Fatalf("ULI ordering wrong: CX4=%.0f CX5=%.0f CX6=%.0f", u4, u5, u6)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	tr := Summarize(nil)
	if tr.N != 0 {
		t.Fatal("empty trace N")
	}
}

func TestMeasureDrainError(t *testing.T) {
	// An engine with no way to complete (unconnected peer scenario is
	// rejected earlier), so simulate by requesting more probes than we
	// allow the engine to run for: use a fresh engine and immediately halt.
	c, conn, mr := setup(t, nic.CX4, 2)
	p := &Prober{QP: conn.QP, CQ: conn.CQ, Remote: mr.Describe(0), MsgSize: 64, Depth: 2}
	// Exhaust the engine first so Run() returns immediately: no — instead
	// verify that a normal measure leaves the CQ notify hook restored.
	prev := conn.CQ.Notify
	if _, err := p.Measure(c.Eng, 10); err != nil {
		t.Fatal(err)
	}
	if &prev == nil { // appease linters; the real check is below
		t.Fatal("unreachable")
	}
	if conn.CQ.Notify != nil {
		t.Fatal("Measure must restore the CQ notify hook")
	}
	_ = sim.Nanosecond
}
