package covert

import (
	"testing"

	"github.com/thu-has/ragnar/internal/bitstream"
	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/stats"
)

func TestFold(t *testing.T) {
	// Square wave with period 2: fold should separate the halves.
	var times, vals []float64
	for i := 0; i < 400; i++ {
		tm := float64(i) * 0.01
		times = append(times, tm)
		ph := tm / 2
		ph -= float64(int(ph))
		if ph < 0.5 {
			vals = append(vals, 10)
		} else {
			vals = append(vals, 20)
		}
	}
	tr := Fold(times, vals, 2, 16)
	if len(tr.Phase) != 16 {
		t.Fatalf("bins = %d", len(tr.Phase))
	}
	if tr.Mean[0] > 0.1 || tr.Mean[15] < 0.9 {
		t.Fatalf("fold halves not separated: %v", tr.Mean)
	}
}

func TestDecodeByThreshold(t *testing.T) {
	means := []float64{10, 20, 10, 20, 20}
	bits := decodeByThreshold(means, true)
	if bits.String() != "01011" {
		t.Fatalf("decoded %s", bits)
	}
	bits = decodeByThreshold(means, false)
	if bits.String() != "10100" {
		t.Fatalf("inverted decode %s", bits)
	}
}

func TestPriorityChannelZeroError(t *testing.T) {
	// Figure 9's bitstream on all three NICs: error rate 0.00%.
	msg := bitstream.MustParseBits("1101111101010010")
	for _, p := range nic.PaperProfiles {
		ch := NewPriorityChannel(p)
		run := ch.Transmit(msg, 5)
		if run.Result.ErrorRate != 0 {
			t.Errorf("%s: priority channel error rate %.2f%%, paper reports 0%%",
				p.Name, run.Result.ErrorRate*100)
		}
		if run.Result.BandwidthBps < 0.9 || run.Result.BandwidthBps > 1.2 {
			t.Errorf("%s: bandwidth %.2f bps, want ~1 bps", p.Name, run.Result.BandwidthBps)
		}
		if len(run.Trace) == 0 {
			t.Errorf("%s: empty Figure 9 trace", p.Name)
		}
	}
}

func TestPriorityChannelTraceShape(t *testing.T) {
	// Bit 0 windows must show the significant drop relative to bit 1.
	ch := NewPriorityChannel(nic.CX5)
	run := ch.Transmit(bitstream.MustParseBits("10"), 3)
	n := len(run.Trace)
	bw1 := stats.Mean(traceBW(run.Trace[:n/2]))
	bw0 := stats.Mean(traceBW(run.Trace[n/2:]))
	if bw0 >= bw1*0.9 {
		t.Fatalf("bit0 bandwidth %.2f not clearly below bit1 %.2f", bw0, bw1)
	}
}

func traceBW(ps []TimePoint) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = p.BW
	}
	return out
}

func TestInterMRChannel(t *testing.T) {
	msg := bitstream.RandomBits(77, 64)
	for _, p := range nic.PaperProfiles {
		ch, err := NewInterMRChannel(p, 21)
		if err != nil {
			t.Fatal(err)
		}
		run, err := ch.Transmit(msg)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if run.Result.ErrorRate > 0.15 {
			t.Errorf("%s: inter-MR error rate %.1f%%, want <= 15%%", p.Name, run.Result.ErrorRate*100)
		}
		if run.Result.EffectiveBps <= 0 {
			t.Errorf("%s: non-positive effective bandwidth", p.Name)
		}
	}
}

func TestInterMRBandwidthsMatchTableV(t *testing.T) {
	// Table V raw bandwidths: CX-4 31.8, CX-5 63.6, CX-6 84.3 Kbps.
	want := map[string]float64{"ConnectX-4": 31800, "ConnectX-5": 63600, "ConnectX-6": 84300}
	for _, p := range nic.PaperProfiles {
		ch, err := NewInterMRChannel(p, 9)
		if err != nil {
			t.Fatal(err)
		}
		got := 1.0 / ch.SymbolTime.Seconds()
		w := want[p.Name]
		if got < w*0.97 || got > w*1.03 {
			t.Errorf("%s: raw bandwidth %.0f, want ~%.0f", p.Name, got, w)
		}
	}
}

func TestIntraMRChannel(t *testing.T) {
	msg := bitstream.RandomBits(123, 64)
	for _, p := range nic.PaperProfiles {
		ch, err := NewIntraMRChannel(p, 33)
		if err != nil {
			t.Fatal(err)
		}
		run, err := ch.Transmit(msg)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if run.Result.ErrorRate > 0.15 {
			t.Errorf("%s: intra-MR error rate %.1f%%, want <= 15%%", p.Name, run.Result.ErrorRate*100)
		}
	}
}

// The Ragnar headline: inter-MR bandwidth on CX-5 is ~3.2x Pythia's
// 20 Kbps (checked against the constant here; the pythia package holds the
// baseline implementation).
func TestRagnarVsPythiaFactor(t *testing.T) {
	ch, err := NewInterMRChannel(nic.CX5, 1)
	if err != nil {
		t.Fatal(err)
	}
	ragnar := 1.0 / ch.SymbolTime.Seconds()
	factor := ragnar / 20000.0
	if factor < 3.0 || factor > 3.4 {
		t.Fatalf("Ragnar/Pythia factor = %.2f, paper reports 3.2x", factor)
	}
}

func TestULIChannelValidation(t *testing.T) {
	ch, err := NewInterMRChannel(nic.CX4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Transmit(nil); err == nil {
		t.Fatal("empty bitstream should error")
	}
	ch.SymbolTime = 0
	if _, err := ch.Transmit(bitstream.MustParseBits("10")); err == nil {
		t.Fatal("zero symbol time should error")
	}
}

func TestFoldedTraceShowsTwoLevels(t *testing.T) {
	// Figure 10/11: a periodic 1-0 pattern folds into a two-level shape.
	ch, err := NewInterMRChannel(nic.CX4, 4)
	if err != nil {
		t.Fatal(err)
	}
	pattern := make(bitstream.Bits, 40)
	for i := range pattern {
		pattern[i] = byte(i % 2)
	}
	ch.BoundaryJitter = 0 // clean fold for the figure
	run, err := ch.Transmit(pattern)
	if err != nil {
		t.Fatal(err)
	}
	// First-half phase bins (bit 1... pattern starts with 0) vs second half
	// must separate clearly after normalisation.
	lo := stats.Mean(run.Folded.Mean[2:14])
	hi := stats.Mean(run.Folded.Mean[18:30])
	if lo > 0.4 || hi < 0.6 {
		t.Fatalf("folded trace not bimodal: lo=%.2f hi=%.2f (%v)", lo, hi, run.Folded.Mean)
	}
}

// TestInterMRChannelOnStar runs the Grain-III channel across a shared
// switch: sender and receiver sit on separate star ports, so every covert
// read and every probe traverses the switch. The channel survives because
// the latency it modulates lives in the server RNIC's translation pipeline —
// the switch only adds a constant forwarding delay.
func TestInterMRChannelOnStar(t *testing.T) {
	cfg := lab.DefaultConfig(nic.CX5)
	cfg.Seed = 21
	ch, err := NewInterMRChannelOn(lab.Star(cfg))
	if err != nil {
		t.Fatal(err)
	}
	run, err := ch.Transmit(bitstream.RandomBits(77, 64))
	if err != nil {
		t.Fatal(err)
	}
	if run.Result.ErrorRate > 0.15 {
		t.Errorf("star inter-MR error rate %.1f%%, want <= 15%%", run.Result.ErrorRate*100)
	}
	if ch.Cluster.Switches[0].FwdPackets() == 0 {
		t.Error("no packets traversed the switch")
	}
}

// TestChannelOnNeedsTwoClients pins the On-variant's topology validation.
func TestChannelOnNeedsTwoClients(t *testing.T) {
	cfg := lab.DefaultConfig(nic.CX5)
	cfg.Clients = 1
	if _, err := NewInterMRChannelOn(lab.Star(cfg)); err == nil {
		t.Fatal("1-client topology should be rejected")
	}
	if _, err := NewIntraMRChannelOn(lab.Star(cfg)); err == nil {
		t.Fatal("1-client topology should be rejected")
	}
}
