package covert

import (
	"math"
	"math/rand"

	"github.com/thu-has/ragnar/internal/bitstream"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/stats"
	"github.com/thu-has/ragnar/internal/trace"
)

// PriorityChannel is the inter-traffic-class channel of Section V-B: the
// covert Tx encodes bit 1 as a stream of 128 B RDMA Writes and bit 0 as
// 2048 B writes; the Rx monitors the bandwidth of its own small flow, which
// the 2048 B storm depresses far more (posted-PCIe starvation of the
// monitor's read-response fetches). Symbols are seconds long, making this
// the paper's ~1 bps channel with zero observed errors.
type PriorityChannel struct {
	Profile    nic.Profile
	SymbolTime sim.Duration
	Window     sim.Duration // bandwidth sampling period
	// Monitor is the Rx's continuously measured flow.
	Monitor nic.FlowSpec
	// Bit1 and Bit0 are the Tx's two traffic modes.
	Bit1 nic.FlowSpec
	Bit0 nic.FlowSpec
	// RelNoise is the relative sampling noise on windowed bandwidth
	// (ethtool counters on a live system wobble ~1-2%).
	RelNoise float64
	// Trace, when set, records each sender symbol and each monitor bandwidth
	// window (as a Chrome counter track). The fluid model has no sim engine,
	// so event timestamps come from the channel's own symbol clock.
	Trace *trace.Recorder
}

// NewPriorityChannel configures the paper's Figure 9 setup for a NIC.
func NewPriorityChannel(p nic.Profile) *PriorityChannel {
	symbol := sim.Second // CX-4: 1.0 bps
	if p.Name != nic.CX4.Name {
		symbol = sim.Duration(0.909 * float64(sim.Second)) // CX-5/6: 1.1 bps
	}
	return &PriorityChannel{
		Profile:    p,
		SymbolTime: symbol,
		Window:     10 * sim.Millisecond,
		Monitor:    nic.FlowSpec{Name: "monitor", Op: nic.OpRead, MsgBytes: 1024, QPNum: 1, Client: 1},
		Bit1:       nic.FlowSpec{Name: "tx1", Op: nic.OpWrite, MsgBytes: 128, QPNum: 4, Client: 0},
		Bit0:       nic.FlowSpec{Name: "tx0", Op: nic.OpWrite, MsgBytes: 2048, QPNum: 4, Client: 0},
		RelNoise:   0.015,
	}
}

// TimePoint is one bandwidth sample of the Figure 9 trace.
type TimePoint struct {
	T  sim.Time
	BW float64 // monitor goodput, Gbps
}

// PriorityRun is the outcome of one transmission.
type PriorityRun struct {
	Result  Result
	Decoded bitstream.Bits
	Trace   []TimePoint // the Figure 9 series
}

// Transmit sends the bit string and decodes it from the monitor's
// windowed bandwidth.
func (ch *PriorityChannel) Transmit(bits bitstream.Bits, seed int64) *PriorityRun {
	rng := rand.New(rand.NewSource(seed))
	windowsPerSymbol := int(ch.SymbolTime / ch.Window)
	if windowsPerSymbol < 1 {
		windowsPerSymbol = 1
	}
	// Steady-state monitor bandwidth under each Tx mode comes from the
	// fluid model once; per-window samples add measurement noise.
	bw1 := nic.Solve(ch.Profile, []nic.FlowSpec{ch.Bit1, ch.Monitor})[1].GoodputGbps
	bw0 := nic.Solve(ch.Profile, []nic.FlowSpec{ch.Bit0, ch.Monitor})[1].GoodputGbps

	txActor := ch.Trace.RegisterActor("covert/tx")
	bwActor := ch.Trace.RegisterActor("monitor/bw")
	var series []TimePoint
	symbolMeans := make([]float64, len(bits))
	now := sim.Time(0)
	for k, b := range bits {
		base := bw1
		if b == 0 {
			base = bw0
		}
		ch.Trace.Emit(trace.Event{At: int64(now), Kind: trace.KindSymbol,
			Actor: txActor, Val: uint64(b), TC: -1})
		var acc []float64
		for w := 0; w < windowsPerSymbol; w++ {
			bw := base * (1 + ch.RelNoise*rng.NormFloat64())
			if bw < 0 {
				bw = 0
			}
			series = append(series, TimePoint{T: now, BW: bw})
			acc = append(acc, bw)
			ch.Trace.Emit(trace.Event{At: int64(now), Kind: trace.KindBWSample,
				Actor: bwActor, Val: math.Float64bits(bw), TC: -1})
			now = now.Add(ch.Window)
		}
		symbolMeans[k] = stats.Mean(acc)
	}
	// Bit 0 is the *significant* drop (Figure 9): one maps to the higher
	// bandwidth.
	decoded := decodeByThreshold(symbolMeans, true)
	bps := 1.0 / ch.SymbolTime.Seconds()
	run := &PriorityRun{
		Decoded: decoded,
		Trace:   series,
		Result:  newResult("priority(I+II)", ch.Profile.Name, bps, bits, decoded),
	}
	return run
}
