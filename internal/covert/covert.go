// Package covert implements the three Ragnar covert channels of Section V:
//
//   - the Grain-I+II inter-traffic-class priority channel (~1 bps, Figure 9),
//     built on the fluid contention model;
//   - the Grain-III inter-MR resource channel (tens of Kbps, Figures 10-11),
//     encoding bits in *which MR* the sender touches;
//   - the Grain-IV intra-MR address channel (Table V), encoding bits in the
//     sender's *address offset* within one shared MR.
//
// All three share the structure the paper states: the sender modulates
// resource X, which perturbs the receiver's observable Y (bandwidth or ULI)
// through NIC-internal contention, never through any shared memory value.
package covert

import (
	"github.com/thu-has/ragnar/internal/bitstream"
	"github.com/thu-has/ragnar/internal/stats"
)

// Result is one Table V cell: the channel's measured figures of merit.
type Result struct {
	Channel      string
	NIC          string
	BandwidthBps float64
	ErrorRate    float64
	EffectiveBps float64
	SentBits     int
}

// newResult assembles a Result from a decode outcome.
func newResult(channel, nicName string, bps float64, sent, got bitstream.Bits) Result {
	e := bitstream.ErrorRate(sent, got)
	return Result{
		Channel:      channel,
		NIC:          nicName,
		BandwidthBps: bps,
		ErrorRate:    e,
		EffectiveBps: bitstream.EffectiveBandwidth(bps, e),
		SentBits:     len(sent),
	}
}

// decodeByThreshold converts per-symbol observable means into bits with
// 2-means clustering. oneIsHigher selects the polarity: whether the "1"
// symbol produces the higher observable.
func decodeByThreshold(symbolMeans []float64, oneIsHigher bool) bitstream.Bits {
	_, _, th := stats.TwoMeans(symbolMeans)
	out := make(bitstream.Bits, len(symbolMeans))
	for i, m := range symbolMeans {
		high := m > th
		if high == oneIsHigher {
			out[i] = 1
		}
	}
	return out
}

// FoldedTrace is the Figure 10/11 visualisation: samples folded onto the
// phase of a two-symbol period, normalised to [0, 1].
type FoldedTrace struct {
	Phase []float64 // 0..1 across the folded two-bit period
	Mean  []float64 // normalised ULI (or bandwidth) per phase bin
}

// Fold bins (time, value) points by phase within a period of two symbols.
func Fold(times []float64, values []float64, period float64, bins int) FoldedTrace {
	if bins < 1 {
		bins = 32
	}
	sums := make([]float64, bins)
	counts := make([]int, bins)
	for i := range times {
		ph := times[i] / period
		ph -= float64(int(ph))
		b := int(ph * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		sums[b] += values[i]
		counts[b]++
	}
	tr := FoldedTrace{Phase: make([]float64, bins), Mean: make([]float64, bins)}
	for b := 0; b < bins; b++ {
		tr.Phase[b] = (float64(b) + 0.5) / float64(bins)
		if counts[b] > 0 {
			tr.Mean[b] = sums[b] / float64(counts[b])
		}
	}
	tr.Mean = stats.Normalize(tr.Mean)
	return tr
}
