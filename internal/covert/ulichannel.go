package covert

import (
	"errors"
	"fmt"

	"github.com/thu-has/ragnar/internal/bitstream"
	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/stats"
	"github.com/thu-has/ragnar/internal/trace"
	"github.com/thu-has/ragnar/internal/traffic"
	"github.com/thu-has/ragnar/internal/uli"
	"github.com/thu-has/ragnar/internal/verbs"
)

// ULIChannel is the shared machinery of the inter-MR (Grain-III) and
// intra-MR (Grain-IV) channels: a sender that switches its read target
// between two states per covert bit, and a receiver that continuously
// probes and bins its ULI into symbol windows. The two parties share only
// the server's RNIC datapath.
type ULIChannel struct {
	Name    string
	Cluster *lab.Cluster

	// Receiver side.
	RxConn   *lab.Conn
	RxRemote verbs.RemoteBuf
	RxSize   int
	RxDepth  int

	// Sender side: State0/State1 are the targets encoding each bit value.
	TxConn  *lab.Conn
	State0  verbs.RemoteBuf
	State1  verbs.RemoteBuf
	TxSize  int
	TxDepth int

	SymbolTime sim.Duration
	// BoundaryJitter models Tx/Rx clock skew: each Tx switch point shifts
	// uniformly within ±BoundaryJitter. This — not Gaussian ULI noise — is
	// what produces the paper's few-percent error rates.
	BoundaryJitter sim.Duration
	// OneIsHigher gives the decode polarity (state 1 raises the Rx ULI in
	// both Ragnar channels: MR switching and unaligned offsets are slower).
	OneIsHigher bool
	// Trace, when set, records sender symbol switches and receiver ULI
	// samples. Recording is passive: a traced run is byte-identical to an
	// untraced one.
	Trace *trace.Recorder
}

// ULIRun is the outcome of one transmission.
type ULIRun struct {
	Result      Result
	Decoded     bitstream.Bits
	SymbolMeans []float64
	Samples     []uli.TimedSample
	// Folded is the Figure 10/11 view over the two-symbol period.
	Folded FoldedTrace
}

// Transmit sends bits over the channel and decodes them from the receiver's
// binned ULI.
func (ch *ULIChannel) Transmit(bits bitstream.Bits) (*ULIRun, error) {
	if len(bits) == 0 {
		return nil, errors.New("covert: empty bitstream")
	}
	if ch.SymbolTime <= 0 {
		return nil, errors.New("covert: symbol time must be positive")
	}
	eng := ch.Cluster.Eng
	rng := eng.Rand()

	sampler := &uli.Sampler{
		QP: ch.RxConn.QP, CQ: ch.RxConn.CQ,
		Remote: ch.RxRemote, MsgSize: ch.RxSize, Depth: ch.RxDepth,
		Rec: ch.Trace,
	}
	txActor := ch.Trace.RegisterActor("covert/tx")

	// The sender's state variable; switch events are scheduled with jitter.
	state := bits[0]
	gen := &traffic.Generator{
		QP: ch.TxConn.QP, CQ: ch.TxConn.CQ,
		Op: nic.OpRead, MsgSize: ch.TxSize, Depth: ch.TxDepth,
		Next: func(int) verbs.RemoteBuf {
			if state == 0 {
				return ch.State0
			}
			return ch.State1
		},
	}

	start := eng.Now()
	ch.Trace.Emit(trace.Event{At: int64(start), Kind: trace.KindSymbol,
		Actor: txActor, Val: uint64(bits[0]), TC: -1})
	for k := 1; k < len(bits); k++ {
		b := bits[k]
		boundary := start.Add(sim.Duration(k) * ch.SymbolTime)
		if ch.BoundaryJitter > 0 {
			boundary = boundary.Add(sim.Uniform(rng, 2*ch.BoundaryJitter) - ch.BoundaryJitter)
		}
		if boundary < eng.Now() {
			boundary = eng.Now()
		}
		eng.At(boundary, func() {
			state = b
			ch.Trace.Emit(trace.Event{At: int64(eng.Now()), Kind: trace.KindSymbol,
				Actor: txActor, Val: uint64(b), TC: -1})
		})
	}

	if err := gen.Start(); err != nil {
		return nil, err
	}
	if err := sampler.Start(); err != nil {
		return nil, err
	}
	eng.RunUntil(start.Add(sim.Duration(len(bits)) * ch.SymbolTime))
	sampler.Stop()
	gen.Stop()
	if err := sampler.Err(); err != nil {
		return nil, err
	}
	if gen.Errors() > 0 {
		return nil, fmt.Errorf("covert: %d sender operations failed", gen.Errors())
	}

	// Bin receiver samples into symbol windows. Probes in flight when the
	// sender switches states carry the previous symbol's contention, so the
	// first third of each window is a guard interval the decoder skips.
	means := make([]float64, len(bits))
	for k := range bits {
		from := start.Add(sim.Duration(k) * ch.SymbolTime)
		to := from.Add(ch.SymbolTime)
		w := sampler.Window(from.Add(ch.SymbolTime*3/10), to)
		if len(w) == 0 {
			w = sampler.Window(from, to)
		}
		switch {
		case len(w) > 0:
			means[k] = stats.Mean(w)
		case k > 0:
			// A transport stall (loss recovery) blanked the whole window: a
			// real receiver free-runs on its last observation, so hold the
			// previous symbol's mean. On a lossless fabric every window has
			// samples and this arm never runs.
			means[k] = means[k-1]
		default:
			return nil, fmt.Errorf("covert: symbol %d received no ULI samples (symbol time too short?)", k)
		}
	}
	decoded := decodeByThreshold(means, ch.OneIsHigher)

	times := make([]float64, len(sampler.Samples))
	vals := make([]float64, len(sampler.Samples))
	for i, s := range sampler.Samples {
		times[i] = s.At.Sub(start).Seconds()
		vals[i] = s.ULINano
	}
	bps := 1.0 / ch.SymbolTime.Seconds()
	return &ULIRun{
		Result:      newResult(ch.Name, ch.Cluster.Profile.Name, bps, bits, decoded),
		Decoded:     decoded,
		SymbolMeans: means,
		Samples:     sampler.Samples,
		Folded:      Fold(times, vals, 2*ch.SymbolTime.Seconds(), 32),
	}, nil
}

// interMRParams and intraMRParams hold the paper's best parameter
// combinations (Table V footnotes 10 and 11).
type ulichanParams struct {
	symbolTime sim.Duration
	msgSize    int
	depth      int
	off0, off1 uint64 // intra-MR offsets
}

// The paper's best send-queue depths are 10/6/6. On the simulated path the
// deeper 10/10/14 depths land the emergent error rates inside the paper's
// 4-8% band (shallow queues decode *too* cleanly here: less inter-symbol
// interference than the authors' testbed exhibits). Symbol rates are
// Table V's. The queue-depth ablation bench quantifies the tradeoff.
// chanProfileName resolves the calibration key for a profile: derived
// (hardened) profiles calibrate with their base adapter's modulation
// parameters instead of silently falling into the default arm.
func chanProfileName(p nic.Profile) string {
	if p.Base != "" {
		return p.Base
	}
	return p.Name
}

func interMRParams(p nic.Profile) ulichanParams {
	switch chanProfileName(p) {
	case nic.CX4.Name: // 31.8 Kbps, 512 B reads
		return ulichanParams{symbolTime: sim.Duration(31.45 * float64(sim.Microsecond)), msgSize: 512, depth: 10}
	case nic.CX5.Name: // 63.6 Kbps, 64 B reads
		return ulichanParams{symbolTime: sim.Duration(15.72 * float64(sim.Microsecond)), msgSize: 64, depth: 10}
	default: // CX-6: 84.3 Kbps, 512 B reads
		return ulichanParams{symbolTime: sim.Duration(11.86 * float64(sim.Microsecond)), msgSize: 512, depth: 14}
	}
}

func intraMRParams(p nic.Profile) ulichanParams {
	switch chanProfileName(p) {
	case nic.CX4.Name: // 32.2 Kbps, offsets 0/255
		return ulichanParams{symbolTime: sim.Duration(31.06 * float64(sim.Microsecond)), msgSize: 512, depth: 8, off0: 0, off1: 255}
	case nic.CX5.Name: // 31.5 Kbps, offsets 0/255
		return ulichanParams{symbolTime: sim.Duration(31.75 * float64(sim.Microsecond)), msgSize: 512, depth: 10, off0: 0, off1: 255}
	default: // CX-6: 81.3 Kbps, offsets 0/257
		return ulichanParams{symbolTime: sim.Duration(12.30 * float64(sim.Microsecond)), msgSize: 512, depth: 14, off0: 0, off1: 257}
	}
}

// NewInterMRChannel builds the Grain-III channel on a fresh point-to-point
// cluster: three MRs on the server (the receiver probes A; the sender
// touches A for bit 0 — no MR switch in the TPU pipeline — or B for bit 1,
// forcing an MR-context switch on every interleaved translation).
func NewInterMRChannel(p nic.Profile, seed int64) (*ULIChannel, error) {
	cfg := lab.DefaultConfig(p)
	cfg.Seed = seed
	return NewInterMRChannelOn(lab.Pair(cfg))
}

// NewInterMRChannelOn builds the Grain-III channel on an already-built
// topology — client 0 receives, client 1 sends — so switched rigs (Star,
// DualRail, Build) reuse the exact transmit machinery the point-to-point
// channel uses. The topology must be freshly built: the channel dials and
// warms its own connections.
func NewInterMRChannelOn(c *lab.Cluster) (*ULIChannel, error) {
	if len(c.Clients) < 2 {
		return nil, fmt.Errorf("covert: topology has %d clients, need 2", len(c.Clients))
	}
	p := c.Profile
	prm := interMRParams(p)
	mrA, err := c.RegisterServerMR(2 << 20)
	if err != nil {
		return nil, err
	}
	mrB, err := c.RegisterServerMR(2 << 20)
	if err != nil {
		return nil, err
	}
	rx, err := c.Dial(0, prm.depth+2)
	if err != nil {
		return nil, err
	}
	tx, err := c.Dial(1, prm.depth+2)
	if err != nil {
		return nil, err
	}
	for _, cn := range []*lab.Conn{rx, tx} {
		for _, mr := range []*verbs.MR{mrA, mrB} {
			if err := c.Warm(cn, mr); err != nil {
				return nil, err
			}
		}
	}
	return &ULIChannel{
		Name:    "inter-MR(III)",
		Cluster: c,
		RxConn:  rx, RxRemote: mrA.Describe(0), RxSize: prm.msgSize, RxDepth: prm.depth,
		TxConn: tx, State0: mrA.Describe(4096), State1: mrB.Describe(4096),
		TxSize: prm.msgSize, TxDepth: prm.depth,
		SymbolTime:     prm.symbolTime,
		BoundaryJitter: prm.symbolTime * 2 / 5,
		OneIsHigher:    true,
	}, nil
}

// NewIntraMRChannel builds the Grain-IV channel on a fresh point-to-point
// cluster: one shared MR; the sender encodes bits purely in its access
// offset (0 B vs 255/257 B), indistinguishable from benign address variation
// to Grain-I..III monitors.
func NewIntraMRChannel(p nic.Profile, seed int64) (*ULIChannel, error) {
	cfg := lab.DefaultConfig(p)
	cfg.Seed = seed
	return NewIntraMRChannelOn(lab.Pair(cfg))
}

// NewIntraMRChannelOn builds the Grain-IV channel on an already-built
// topology (client 0 receives, client 1 sends), mirroring
// NewInterMRChannelOn.
func NewIntraMRChannelOn(c *lab.Cluster) (*ULIChannel, error) {
	if len(c.Clients) < 2 {
		return nil, fmt.Errorf("covert: topology has %d clients, need 2", len(c.Clients))
	}
	p := c.Profile
	prm := intraMRParams(p)
	mr, err := c.RegisterServerMR(2 << 20)
	if err != nil {
		return nil, err
	}
	rx, err := c.Dial(0, prm.depth+2)
	if err != nil {
		return nil, err
	}
	tx, err := c.Dial(1, prm.depth+2)
	if err != nil {
		return nil, err
	}
	for _, cn := range []*lab.Conn{rx, tx} {
		if err := c.Warm(cn, mr); err != nil {
			return nil, err
		}
	}
	// The receiver probes a bank-neutral, 64 B-aligned offset so its own
	// translations have constant cost; only queueing behind the sender's
	// fast (aligned) vs slow (unaligned) translations moves its ULI.
	return &ULIChannel{
		Name:    "intra-MR(IV)",
		Cluster: c,
		RxConn:  rx, RxRemote: mr.Describe(320), RxSize: prm.msgSize, RxDepth: prm.depth,
		TxConn: tx, State0: mr.Describe(prm.off0), State1: mr.Describe(prm.off1),
		TxSize: prm.msgSize, TxDepth: prm.depth,
		SymbolTime:     prm.symbolTime,
		BoundaryJitter: prm.symbolTime * 2 / 5,
		OneIsHigher:    true,
	}, nil
}
