package pythia

import (
	"testing"

	"github.com/thu-has/ragnar/internal/bitstream"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/stats"
)

func TestEvictionSetMining(t *testing.T) {
	ch, err := New(nic.CX5, 1)
	if err != nil {
		t.Fatal(err)
	}
	ways := ch.Cluster.Server.NIC().TPU().MTT().Ways()
	if ch.EvictionSetSize() < ways {
		t.Fatalf("eviction set %d smaller than associativity %d", ch.EvictionSetSize(), ways)
	}
}

func TestTransmitRoundTrip(t *testing.T) {
	for _, p := range nic.PaperProfiles {
		ch, err := New(p, 3)
		if err != nil {
			t.Fatal(err)
		}
		msg := bitstream.MustParseBits("1011001110001011")
		run, err := ch.Transmit(msg)
		if err != nil {
			t.Fatal(err)
		}
		if run.Result.ErrorRate > 0.10 {
			t.Errorf("%s: pythia error rate %.1f%%", p.Name, run.Result.ErrorRate*100)
		}
		// Cold probes must visibly exceed warm ones by about the ICM miss
		// penalty.
		if len(run.ColdNanos) == 0 || len(run.WarmNanos) == 0 {
			t.Fatalf("%s: missing cold (%d) or warm (%d) probes", p.Name, len(run.ColdNanos), len(run.WarmNanos))
		}
		gap := stats.Mean(run.ColdNanos) - stats.Mean(run.WarmNanos)
		if gap < p.MTTMissPenalty.Nanoseconds()*0.5 {
			t.Errorf("%s: cold-warm gap %.0f ns below half the miss penalty", p.Name, gap)
		}
	}
}

func TestBandwidthNearPublished(t *testing.T) {
	// Pythia's published covert rate on CX-5 is ~20 Kbps.
	ch, err := New(nic.CX5, 5)
	if err != nil {
		t.Fatal(err)
	}
	bps := ch.BandwidthBps()
	if bps < 15000 || bps > 25000 {
		t.Fatalf("pythia bandwidth %.0f bps, want ~20 Kbps", bps)
	}
}

func TestTransmitEmpty(t *testing.T) {
	ch, err := New(nic.CX4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Transmit(nil); err == nil {
		t.Fatal("empty bitstream should error")
	}
}

func TestRepeatedBitsStateReset(t *testing.T) {
	// Long runs of 1s and 0s must decode correctly: the probe re-installs
	// the entry each symbol, so persistence does not smear across symbols.
	ch, err := New(nic.CX6, 9)
	if err != nil {
		t.Fatal(err)
	}
	msg := bitstream.MustParseBits("1111111100000000")
	run, err := ch.Transmit(msg)
	if err != nil {
		t.Fatal(err)
	}
	if run.Result.ErrorRate != 0 {
		t.Fatalf("run-length decode error %.1f%%: got %s", run.Result.ErrorRate*100, run.Decoded)
	}
}
