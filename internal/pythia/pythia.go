// Package pythia implements the Pythia covert channel (Tsai et al., USENIX
// Security 2019) as the paper's baseline: a *persistent-channel* attack on
// the RNIC's on-board translation cache. The sender evicts (bit 1) or leaves
// resident (bit 0) the MTT entry of a probe page; the receiver times a
// single RDMA Read of that page and recognises the ICM refill penalty.
//
// The comparison in Ragnar Section I — 3.2x the bandwidth of Pythia on
// CX-5 — needs this implementation: Pythia's symbol rate is limited by the
// evict-then-probe round plus the synchronisation gap between the parties,
// which lands it at ~20 Kbps on CX-5, against Ragnar's volatile inter-MR
// channel at 63.6 Kbps.
package pythia

import (
	"errors"
	"fmt"

	"github.com/thu-has/ragnar/internal/bitstream"
	"github.com/thu-has/ragnar/internal/host"
	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/verbs"
)

// Channel is one configured Pythia covert channel.
type Channel struct {
	Cluster *lab.Cluster
	TxConn  *lab.Conn
	RxConn  *lab.Conn

	mr     *verbs.MR
	target verbs.RemoteBuf // probe page
	evict  []verbs.RemoteBuf

	// SymbolTime spaces bits; it must cover the evict round plus the probe
	// plus a sync guard (the parties cannot overlap their phases).
	SymbolTime sim.Duration
	// warm is the calibrated resident-entry probe latency.
	warm sim.Duration
	// Threshold separates warm from cold probe latency.
	Threshold sim.Duration
}

// New builds the channel on a fresh cluster: an MR pinned on 4 KiB pages
// (MTT entry per 4 KiB, as Pythia attacks it) large enough to mine an
// eviction set for the target's cache set.
func New(p nic.Profile, seed int64) (*Channel, error) {
	cfg := lab.DefaultConfig(p)
	cfg.Seed = seed
	c := lab.New(cfg)
	// 32 MiB on 4 KiB pages = 8192 MTT entries: enough candidates to cover
	// any set with `ways` conflicting pages.
	mr, err := c.ServerPD.RegMR(32<<20, host.Page4K, verbs.AccessRemoteRead)
	if err != nil {
		return nil, err
	}
	rx, err := c.Dial(0, 4)
	if err != nil {
		return nil, err
	}
	tx, err := c.Dial(1, 16)
	if err != nil {
		return nil, err
	}

	mtt := c.Server.NIC().TPU().MTT()
	pageSize := uint64(host.Page4K)

	// Group the MR's pages by MTT set and pick a target whose set offers a
	// full eviction set (ways+1 conflicting pages) — the mining step Pythia
	// performs online.
	bySet := make(map[int][]uint64)
	for off := uint64(0); off < mr.Size(); off += pageSize {
		page := (mr.Base() + off) / pageSize
		set := mtt.SetIndex(nic.MTTKey(mr.RKey(), page))
		bySet[set] = append(bySet[set], off)
	}
	var targetOff uint64
	var evict []verbs.RemoteBuf
	found := false
	for off := uint64(0); off < mr.Size(); off += pageSize {
		page := (mr.Base() + off) / pageSize
		set := mtt.SetIndex(nic.MTTKey(mr.RKey(), page))
		if len(bySet[set]) >= mtt.Ways()+2 {
			targetOff = off
			for _, o := range bySet[set] {
				if o != off && len(evict) < mtt.Ways()+1 {
					evict = append(evict, mr.Describe(o))
				}
			}
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("pythia: no MTT set with %d conflicting pages in a %d MiB MR",
			mtt.Ways()+2, mr.Size()>>20)
	}

	// Symbol budget: evict round (len(evict) serialized reads) + probe +
	// sync guard. With ~2 us per read round trip this lands near 50 us =>
	// ~20 Kbps, matching the published Pythia rate on CX-5.
	symbol := sim.Duration(50 * float64(sim.Microsecond))
	ch := &Channel{
		Cluster: c, TxConn: tx, RxConn: rx,
		mr: mr, target: mr.Describe(targetOff), evict: evict,
		SymbolTime: symbol,
		Threshold:  p.MTTMissPenalty / 2,
	}
	if err := ch.calibrate(); err != nil {
		return nil, err
	}
	return ch, nil
}

// calibrate measures the warm probe latency (the attacker's online
// calibration step): one cold read installs the entry, then repeated warm
// reads set the baseline.
func (ch *Channel) calibrate() error {
	var lats []float64
	for i := 0; i < 9; i++ {
		lat, err := ch.read(ch.RxConn, ch.target, uint64(10+i))
		if err != nil {
			return err
		}
		if i > 0 { // skip the installing (cold) read
			lats = append(lats, lat.Nanoseconds())
		}
	}
	sum := 0.0
	for _, l := range lats {
		sum += l
	}
	ch.warm = sim.Duration(sum / float64(len(lats)) * float64(sim.Nanosecond))
	return nil
}

// BandwidthBps is the channel's raw signalling rate.
func (ch *Channel) BandwidthBps() float64 { return 1.0 / ch.SymbolTime.Seconds() }

// EvictionSetSize reports how many conflict pages the miner found.
func (ch *Channel) EvictionSetSize() int { return len(ch.evict) }

// Run is the outcome of one transmission.
type Run struct {
	Result    Result
	Decoded   bitstream.Bits
	WarmNanos []float64 // probe latencies for bit-0 symbols
	ColdNanos []float64 // probe latencies for bit-1 symbols
}

// Result mirrors covert.Result for the baseline.
type Result struct {
	Channel      string
	NIC          string
	BandwidthBps float64
	ErrorRate    float64
	EffectiveBps float64
}

// read posts one read and runs the engine until its completion, returning
// the post-to-completion latency.
func (ch *Channel) read(conn *lab.Conn, target verbs.RemoteBuf, wrid uint64) (sim.Duration, error) {
	eng := ch.Cluster.Eng
	var lat sim.Duration
	got := false
	prev := conn.CQ.Notify
	defer func() { conn.CQ.Notify = prev }()
	conn.CQ.Notify = func(c nic.Completion) {
		if c.WRID != wrid {
			return
		}
		if c.Status != nic.StatusOK {
			return
		}
		lat = c.DoneTime.Sub(c.PostTime)
		got = true
		eng.Halt()
	}
	if err := conn.QP.PostRead(wrid, nil, target, 64); err != nil {
		return 0, err
	}
	eng.Run()
	if !got {
		return 0, errors.New("pythia: probe did not complete")
	}
	return lat, nil
}

// Transmit sends the bits: per symbol, the sender evicts the target's MTT
// set for a 1 and stays idle for a 0; the receiver probes once at the end of
// the symbol and thresholds the latency.
func (ch *Channel) Transmit(bits bitstream.Bits) (*Run, error) {
	if len(bits) == 0 {
		return nil, errors.New("pythia: empty bitstream")
	}
	eng := ch.Cluster.Eng
	// Ensure the target starts resident.
	if _, err := ch.read(ch.RxConn, ch.target, 1); err != nil {
		return nil, err
	}

	decoded := make(bitstream.Bits, 0, len(bits))
	run := &Run{}
	var wrid uint64 = 100
	for _, b := range bits {
		symbolEnd := eng.Now().Add(ch.SymbolTime)
		if b == 1 {
			for _, ev := range ch.evict {
				wrid++
				if _, err := ch.read(ch.TxConn, ev, wrid); err != nil {
					return nil, err
				}
			}
		}
		// Sync guard: the receiver probes at the symbol boundary.
		eng.RunUntil(symbolEnd)
		wrid++
		lat, err := ch.read(ch.RxConn, ch.target, wrid)
		if err != nil {
			return nil, err
		}
		// The probe itself re-installs the entry, resetting state for the
		// next symbol (the persistent channel's self-cleaning property).
		if lat > ch.warmBaseline()+ch.Threshold {
			decoded = append(decoded, 1)
			run.ColdNanos = append(run.ColdNanos, lat.Nanoseconds())
		} else {
			decoded = append(decoded, 0)
			run.WarmNanos = append(run.WarmNanos, lat.Nanoseconds())
		}
	}
	e := bitstream.ErrorRate(bits, decoded)
	bps := ch.BandwidthBps()
	run.Decoded = decoded
	run.Result = Result{
		Channel:      "pythia(persistent)",
		NIC:          ch.Cluster.Profile.Name,
		BandwidthBps: bps,
		ErrorRate:    e,
		EffectiveBps: bitstream.EffectiveBandwidth(bps, e),
	}
	return run, nil
}

// warmBaseline returns the calibrated resident-entry probe latency.
func (ch *Channel) warmBaseline() sim.Duration { return ch.warm }
