package sim

import "fmt"

// Window-execution and drain-audit primitives for the conservative parallel
// mode (internal/sim/parallel). A partitioned run executes each domain's
// engine over half-open windows [T, T+lookahead) and needs three things the
// classic Run/RunUntil API does not expose: the earliest live timestamp
// (to compute the global window start), a run bound that is exclusive and
// does not advance the clock to it (so a cross-domain message arriving
// exactly at the window end can still be scheduled with At without tripping
// the past-scheduling panic), and a pending count that ignores cancelled
// entries (Pending counts them until reaped, which would deadlock the
// group's quiesce loop on a lossless run that armed and cancelled
// retransmit timers).

// NextEventTime reports the timestamp of the earliest live (non-cancelled)
// pending event without consuming it. ok is false when no live event is
// queued.
func (e *Engine) NextEventTime() (Time, bool) { return e.next() }

// RunBefore executes events with timestamps strictly before limit. Unlike
// RunUntil it does not advance the clock to the bound: now ends at the last
// fired event, so the caller may still schedule at any t >= now, including
// inside [now, limit). Events at or beyond limit stay queued.
func (e *Engine) RunBefore(limit Time) {
	e.halted = false
	for !e.halted {
		when, ok := e.next()
		if !ok || when >= limit {
			return
		}
		e.step()
	}
}

// AdvanceTo moves the clock forward to t without firing anything. It is a
// no-op when t <= now. The parallel group uses it after the window loop so
// every domain observes the same end-of-run time that a serial RunUntil
// would report (telemetry snapshots stamp At from Now).
func (e *Engine) AdvanceTo(t Time) {
	if t > e.now {
		e.now = t
	}
}

// LivePending counts scheduled events that have not fired and have not been
// cancelled. This is the quiesce predicate for the parallel barrier;
// contrast Pending, which counts cancelled entries until their queue slot is
// reaped.
func (e *Engine) LivePending() int {
	n := 0
	for _, ent := range e.heap {
		if !e.slots[ent.slot].canceled {
			n++
		}
	}
	for _, ent := range e.batch[e.batchIdx:] {
		if !e.slots[ent.slot].canceled {
			n++
		}
	}
	return n
}

// DrainCheck returns an error when live events remain queued. Call it after
// a run that is supposed to have quiesced; a non-nil result means some
// component leaked a timer or a self-rescheduling callback past the end of
// the run.
func (e *Engine) DrainCheck() error {
	if n := e.LivePending(); n > 0 {
		return fmt.Errorf("sim: %d live event(s) still pending at %v", n, e.now)
	}
	return nil
}
