package sim

// The scheduler's priority queue: a concrete 4-ary min-heap of value-typed
// entries over an engine-owned slab of event slots.
//
// Layout. Each pending event is split across two arrays:
//
//   - heapEntry carries the ordering key (when, seq) plus the slot index, and
//     lives in the heap array itself. Sift operations compare keys that are
//     already in cache — no pointer chasing, no interface calls, no
//     per-event allocation (contrast container/heap, which boxes every
//     Push/Pop operand in an interface and dispatches Less/Swap virtually).
//   - eventSlot holds the callback and liveness state (generation counter,
//     cancel flag, free-list link) in the slots slab. Slots are recycled
//     through an intrusive free list; the slab only grows to the high-water
//     mark of concurrently pending events.
//
// A 4-ary heap halves the tree depth of a binary heap: pushes compare
// against one parent per level, and the wider fan-out trades a few extra
// child comparisons on pop for markedly fewer cache lines touched on the
// push-heavy schedule path (discrete-event schedulers push and pop in equal
// measure, but pushes dominate the sift work because new events usually land
// near the bottom).
//
// Ordering is (when, seq) lexicographic — identical to the old
// container/heap scheduler, so fire order (and therefore every golden,
// equivalence and traced≡untraced artifact) is bit-for-bit unchanged.

// heapEntry is one pending event's ordering key in the 4-ary heap.
type heapEntry struct {
	when Time
	seq  uint64
	slot int32
}

// entryLess orders by time, then by schedule order (FIFO among ties).
func entryLess(a, b heapEntry) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// eventSlot is the mutable state of one scheduled event. The zero slot state
// is "free"; gen increments every time the slot is released, so a stale
// Event handle (fired or cancelled, slot since reused) can be detected.
type eventSlot struct {
	fn       func()
	gen      uint32
	canceled bool
	next     int32 // free-list link, -1 terminates
}

const noSlot int32 = -1

// allocSlot takes a slot from the free list (or grows the slab) and arms it
// with fn. It returns the slot index; the slot's current gen validates
// handles.
func (e *Engine) allocSlot(fn func()) int32 {
	if e.free != noSlot {
		idx := e.free
		s := &e.slots[idx]
		e.free = s.next
		s.fn = fn
		s.canceled = false
		s.next = noSlot
		return idx
	}
	e.slots = append(e.slots, eventSlot{fn: fn, next: noSlot})
	return int32(len(e.slots) - 1)
}

// freeSlot releases a slot back to the free list. Clearing fn here is load
// bearing: it is what makes a fired (or cancelled) callback — and every rig
// object the closure captured — unreachable, so long sweeps do not pin dead
// rigs in memory. Bumping gen invalidates every outstanding handle to the
// slot's previous occupant.
func (e *Engine) freeSlot(idx int32) {
	s := &e.slots[idx]
	s.fn = nil
	s.canceled = false
	s.gen++
	s.next = e.free
	e.free = idx
}

// live reports whether a handle (slot, gen) still names a pending event.
func (e *Engine) live(slot int32, gen uint32) bool {
	return slot >= 0 && int(slot) < len(e.slots) && e.slots[slot].gen == gen
}

// heapPush inserts an entry, sifting up against one parent per level.
func (e *Engine) heapPush(ent heapEntry) {
	h := append(e.heap, ent)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !entryLess(ent, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ent
	e.heap = h
}

// heapPop removes and returns the minimum entry.
func (e *Engine) heapPop() heapEntry {
	h := e.heap
	root := h[0]
	n := len(h) - 1
	last := h[n]
	e.heap = h[:n]
	if n > 0 {
		e.siftDown(last)
	}
	return root
}

// siftDown re-seats last (displaced from the tail) starting at the root.
func (e *Engine) siftDown(last heapEntry) {
	h := e.heap
	n := len(h)
	i := 0
	for {
		first := i<<2 + 1 // leftmost child
		if first >= n {
			break
		}
		// Pick the least of up to four children.
		m := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if entryLess(h[c], h[m]) {
				m = c
			}
		}
		if !entryLess(h[m], last) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = last
}
