package sim

// Server models a service station with a fixed number of identical service
// slots and a FIFO request queue — the building block for DMA engines,
// processing units and translation pipelines. Requests carry a service time;
// when a slot frees up the next queued request begins service and its
// completion callback fires after the service time elapses.
type Server struct {
	eng      *Engine
	name     string
	slots    int
	busy     int
	queue    []serverReq
	served   uint64
	busyTime Duration
	lastBusy Time
	// Preempt gives strict priority to requests with a lower class value.
	// Classless (0) requests are FIFO among themselves.
	classed bool
	// arb, when non-nil, picks the next queued request at every dequeue
	// instead of the queue-order/class-order disciplines above. metas runs
	// parallel to queue (same indices) and only exists for arbitrated
	// servers.
	arb   Arbiter
	metas []ReqMeta
}

// ReqMeta is the arbiter-visible description of one queued request. Class
// mirrors the priority-server class; Tenant and Bytes feed weighted
// schedulers that apportion service across traffic sources.
type ReqMeta struct {
	Class  int
	Tenant int
	Bytes  int
}

// Arbiter selects which queued request an arbitrated server serves next.
// Pick is called with the metadata of every waiting request (index-aligned
// with the internal queue) and returns the index to serve; it must not
// retain q. Out-of-range returns fall back to index 0.
type Arbiter interface {
	Pick(q []ReqMeta) int
}

type serverReq struct {
	service Duration
	class   int
	done    func()
	posted  Time
}

// NewServer returns a server with the given number of parallel slots.
func NewServer(eng *Engine, name string, slots int) *Server {
	if slots < 1 {
		panic("sim: server needs at least one slot")
	}
	return &Server{eng: eng, name: name, slots: slots}
}

// NewPriorityServer returns a server that serves lower class values first.
func NewPriorityServer(eng *Engine, name string, slots int) *Server {
	s := NewServer(eng, name, slots)
	s.classed = true
	return s
}

// NewArbitratedServer returns a server whose next request is chosen by arb
// at every dequeue. The queue itself stays FIFO-ordered by arrival, so an
// arbiter that always picks the first index of the minimum class reproduces
// the priority server's schedule exactly.
func NewArbitratedServer(eng *Engine, name string, slots int, arb Arbiter) *Server {
	if arb == nil {
		panic("sim: arbitrated server needs an arbiter")
	}
	s := NewServer(eng, name, slots)
	s.arb = arb
	return s
}

// Name returns the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// QueueLen reports the number of requests waiting (not in service).
func (s *Server) QueueLen() int { return len(s.queue) }

// Busy reports the number of slots currently serving.
func (s *Server) Busy() int { return s.busy }

// Served reports the number of completed requests.
func (s *Server) Served() uint64 { return s.served }

// Utilization returns the fraction of elapsed time at least one slot was
// busy, up to the current virtual time.
func (s *Server) Utilization() float64 {
	if s.eng.Now() == 0 {
		return 0
	}
	bt := s.busyTime
	if s.busy > 0 {
		bt += s.eng.Now().Sub(s.lastBusy)
	}
	return float64(bt) / float64(s.eng.Now())
}

// Submit enqueues a request requiring the given service time; done fires when
// service completes. Class is only meaningful for priority and arbitrated
// servers.
func (s *Server) Submit(service Duration, class int, done func()) {
	if s.arb != nil {
		s.SubmitMeta(service, ReqMeta{Class: class}, done)
		return
	}
	if service < 0 {
		panic("sim: negative service time")
	}
	req := serverReq{service: service, class: class, done: done, posted: s.eng.Now()}
	if s.busy < s.slots {
		s.start(req)
		return
	}
	if s.classed {
		// Insert keeping the queue sorted by class, stable within a class.
		i := len(s.queue)
		for i > 0 && s.queue[i-1].class > class {
			i--
		}
		s.queue = append(s.queue, serverReq{})
		copy(s.queue[i+1:], s.queue[i:])
		s.queue[i] = req
		return
	}
	s.queue = append(s.queue, req)
}

// SubmitMeta enqueues a request on an arbitrated server with the full
// arbiter-visible metadata. A request that finds a free slot starts
// immediately and is never shown to the arbiter.
func (s *Server) SubmitMeta(service Duration, meta ReqMeta, done func()) {
	if s.arb == nil {
		panic("sim: SubmitMeta on a non-arbitrated server")
	}
	if service < 0 {
		panic("sim: negative service time")
	}
	req := serverReq{service: service, class: meta.Class, done: done, posted: s.eng.Now()}
	if s.busy < s.slots {
		s.start(req)
		return
	}
	s.queue = append(s.queue, req)
	s.metas = append(s.metas, meta)
}

func (s *Server) start(req serverReq) {
	if s.busy == 0 {
		s.lastBusy = s.eng.Now()
	}
	s.busy++
	s.eng.After(req.service, func() {
		s.busy--
		s.served++
		if s.busy == 0 {
			s.busyTime += s.eng.Now().Sub(s.lastBusy)
		}
		if req.done != nil {
			req.done()
		}
		if len(s.queue) > 0 && s.busy < s.slots {
			i := 0
			if s.arb != nil {
				i = s.arb.Pick(s.metas)
				if i < 0 || i >= len(s.queue) {
					i = 0
				}
				copy(s.metas[i:], s.metas[i+1:])
				s.metas = s.metas[:len(s.metas)-1]
			}
			next := s.queue[i]
			copy(s.queue[i:], s.queue[i+1:])
			s.queue = s.queue[:len(s.queue)-1]
			s.start(next)
		}
	})
}
