package sim

import (
	"container/heap"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// ---------------------------------------------------------------------------
// Property: fire order matches a reference sort.

// TestHeapMatchesReferenceSort drives random schedules (duplicate
// timestamps, random pre-run cancels) and checks the fire order against a
// stable sort by (when, seq) with cancelled entries removed — the scheduler
// contract stated in DESIGN.md §9.
func TestHeapMatchesReferenceSort(t *testing.T) {
	type scheduled struct {
		id     int
		when   Time
		cancel bool
	}
	f := func(delays []uint16, cancelBits []bool) bool {
		e := NewEngine(1)
		var plan []scheduled
		var got []int
		for i, d := range delays {
			// Coarse quantisation forces plenty of same-timestamp ties.
			when := Time(d % 64)
			cancel := i < len(cancelBits) && cancelBits[i]
			plan = append(plan, scheduled{id: i, when: when, cancel: cancel})
			id := i
			ev := e.At(when, func() { got = append(got, id) })
			if cancel {
				ev.Cancel()
			}
		}
		e.Run()
		var want []int
		sort.SliceStable(plan, func(i, j int) bool { return plan[i].when < plan[j].when })
		for _, s := range plan {
			if !s.cancel {
				want = append(want, s.id)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSameTimestampFIFOThroughBatch covers the batch fast path: events
// scheduled *for the current timestamp from inside a callback* must fire
// after every earlier event of that timestamp, in schedule order.
func TestSameTimestampFIFOThroughBatch(t *testing.T) {
	e := NewEngine(1)
	var got []int
	at := Time(10 * Nanosecond)
	for i := 0; i < 5; i++ {
		i := i
		e.At(at, func() {
			got = append(got, i)
			if i == 1 {
				// Mid-batch schedule at the same timestamp: takes the
				// direct-append fast path.
				e.At(at, func() { got = append(got, 100) })
				e.At(at, func() { got = append(got, 101) })
			}
		})
	}
	e.Run()
	want := []int{0, 1, 2, 3, 4, 100, 101}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestBatchCancelMidRun cancels a same-timestamp sibling from within the
// batch that contains it.
func TestBatchCancelMidRun(t *testing.T) {
	e := NewEngine(1)
	var got []int
	at := Time(5 * Nanosecond)
	var victim Event
	e.At(at, func() {
		got = append(got, 0)
		victim.Cancel()
	})
	victim = e.At(at, func() { got = append(got, 1) })
	e.At(at, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("fired %v, want [0 2]", got)
	}
}

// ---------------------------------------------------------------------------
// Free-list / generation safety.

// TestFreeListNoResurrection checks that a stale handle (its event fired or
// cancelled, its slot since recycled) cannot cancel — or report state for —
// the slot's new occupant.
func TestFreeListNoResurrection(t *testing.T) {
	e := NewEngine(1)
	a := e.After(Nanosecond, func() { t.Error("cancelled event fired") })
	a.Cancel()
	e.Run() // reaps the cancelled entry, frees the slot
	if a.Pending() {
		t.Fatal("cancelled+reaped handle still pending")
	}

	fired := false
	b := e.After(Nanosecond, func() { fired = true }) // reuses a's slot
	a.Cancel()                                        // stale: must not touch b
	if !b.Pending() {
		t.Fatal("fresh event lost its pending state to a stale Cancel")
	}
	if b.Canceled() {
		t.Fatal("fresh event reports cancelled after stale Cancel")
	}
	e.Run()
	if !fired {
		t.Fatal("stale handle cancelled the slot's new occupant")
	}

	// Use-after-fire: b has fired; cancelling it must not touch whatever
	// occupies the slot next.
	ok := false
	c := e.After(Nanosecond, func() { ok = true })
	b.Cancel()
	e.Run()
	if !ok {
		t.Fatal("fired handle's Cancel leaked into reused slot")
	}
	_ = c
}

// TestHandleStateAcrossLifetime pins the Event handle accessors across the
// schedule → fire → reuse lifecycle.
func TestHandleStateAcrossLifetime(t *testing.T) {
	e := NewEngine(1)
	ev := e.After(3*Nanosecond, func() {})
	if !ev.Pending() || ev.Canceled() {
		t.Fatal("fresh event not pending")
	}
	if ev.When() != Time(3*Nanosecond) {
		t.Fatalf("When = %v", ev.When())
	}
	e.Run()
	if ev.Pending() {
		t.Fatal("fired event still pending")
	}
	if ev.When() != Time(3*Nanosecond) {
		t.Fatal("When lost after fire")
	}
	var zero Event
	if zero.Pending() || zero.Canceled() {
		t.Fatal("zero Event must be inert")
	}
	zero.Cancel() // must not panic
}

// ---------------------------------------------------------------------------
// Equivalence against the previous container/heap scheduler.

// refEngine is a faithful copy of the pre-refactor scheduler: container/heap
// over *refEvent with (when, seq) ordering and lazy cancellation. It exists
// so the determinism suite can replay identical schedules on both
// implementations and compare fire orders event for event.
type refEvent struct {
	when     Time
	seq      uint64
	index    int
	fn       func()
	canceled bool
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *refQueue) Push(x any) {
	e := x.(*refEvent)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

type refEngine struct {
	now   Time
	seq   uint64
	queue refQueue
}

func (e *refEngine) at(t Time, fn func()) *refEvent {
	ev := &refEvent{when: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

func (e *refEngine) run() {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*refEvent)
		if ev.canceled {
			continue
		}
		e.now = ev.when
		ev.fn()
	}
}

// schedOp drives one callback of a recorded schedule: how many children to
// schedule (and at which relative delays), and which earlier event to
// cancel, if any. The schedule is generated once per seed and replayed
// verbatim on both engines.
type schedOp struct {
	delays    []Duration // children to schedule from this callback
	cancelIdx int        // event id to cancel from this callback, -1 none
}

func genSchedule(seed int64, n int) []schedOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]schedOp, n)
	for i := range ops {
		k := rng.Intn(3)
		for j := 0; j < k; j++ {
			// Mix of zero (same-timestamp fast path), small and large delays.
			var d Duration
			switch rng.Intn(3) {
			case 0:
				d = 0
			case 1:
				d = Duration(rng.Intn(50)) * Nanosecond
			default:
				d = Duration(rng.Intn(5000)) * Nanosecond
			}
			ops[i].delays = append(ops[i].delays, d)
		}
		ops[i].cancelIdx = -1
		if rng.Intn(4) == 0 {
			ops[i].cancelIdx = rng.Intn(n)
		}
	}
	return ops
}

// TestEngineMatchesReferenceHeap replays recorded schedules — nested
// scheduling, same-timestamp bursts, cross-cancellation — on the production
// engine and on the container/heap reference, and requires identical fire
// orders.
func TestEngineMatchesReferenceHeap(t *testing.T) {
	const nOps = 400
	for seed := int64(1); seed <= 25; seed++ {
		ops := genSchedule(seed, nOps)

		runNew := func() []int {
			e := NewEngine(1)
			var got []int
			handles := make([]Event, nOps)
			next := 0
			var fire func(id int) func()
			fire = func(id int) func() {
				return func() {
					got = append(got, id)
					op := ops[id%nOps]
					for _, d := range op.delays {
						if next < nOps {
							id2 := next
							next++
							handles[id2] = e.After(d, fire(id2))
						}
					}
					if op.cancelIdx >= 0 && op.cancelIdx < next {
						handles[op.cancelIdx].Cancel()
					}
				}
			}
			for i := 0; i < 8; i++ {
				id := next
				next++
				handles[id] = e.After(Duration(i)*Nanosecond, fire(id))
			}
			e.Run()
			return got
		}

		runRef := func() []int {
			e := &refEngine{}
			var got []int
			handles := make([]*refEvent, nOps)
			next := 0
			var fire func(id int) func()
			fire = func(id int) func() {
				return func() {
					got = append(got, id)
					op := ops[id%nOps]
					for _, d := range op.delays {
						if next < nOps {
							id2 := next
							next++
							handles[id2] = e.at(e.now.Add(d), fire(id2))
						}
					}
					if op.cancelIdx >= 0 && op.cancelIdx < next && handles[op.cancelIdx] != nil {
						handles[op.cancelIdx].canceled = true
					}
				}
			}
			for i := 0; i < 8; i++ {
				id := next
				next++
				handles[id] = e.at(Time(Duration(i)*Nanosecond), fire(id))
			}
			e.run()
			return got
		}

		got, want := runNew(), runRef()
		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: orders diverge at %d: %d vs %d", seed, i, got[i], want[i])
			}
		}
	}
}

// ---------------------------------------------------------------------------
// GC regression: fired and cancelled callbacks must be unreachable.

func waitCollected(t *testing.T, collected chan struct{}, what string) {
	t.Helper()
	for i := 0; i < 50; i++ {
		runtime.GC()
		select {
		case <-collected:
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
	t.Fatalf("%s still reachable after GC: the engine retains the callback", what)
}

// TestFiredCallbackCollectable is the regression test for the old engine's
// leak: a fired event's *Event kept its closure — and every rig object the
// closure captured — alive for as long as the caller held the handle. The
// slot-based engine clears fn when the slot is freed, so holding the handle
// must not pin the callback.
func TestFiredCallbackCollectable(t *testing.T) {
	e := NewEngine(1)
	collected := make(chan struct{})
	ev := func() Event {
		rig := new([1 << 16]byte) // stand-in for a captured rig
		runtime.SetFinalizer(rig, func(*[1 << 16]byte) { close(collected) })
		return e.After(Nanosecond, func() { rig[0] = 1 })
	}()
	e.Run()
	waitCollected(t, collected, "fired callback")
	if ev.Pending() {
		t.Fatal("fired event still pending")
	}
}

// TestCancelledCallbackCollectable: Cancel must drop the callback reference
// immediately, even while the queue entry is still waiting to be reaped.
func TestCancelledCallbackCollectable(t *testing.T) {
	e := NewEngine(1)
	collected := make(chan struct{})
	ev := func() Event {
		rig := new([1 << 16]byte)
		runtime.SetFinalizer(rig, func(*[1 << 16]byte) { close(collected) })
		return e.After(Millisecond, func() { rig[0] = 1 })
	}()
	ev.Cancel()
	// No Run: the cancelled entry still sits in the heap, but fn is gone.
	waitCollected(t, collected, "cancelled callback")
}
