package sim

import (
	"testing"
)

func TestRunBeforeExclusiveBound(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunBefore(30)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 20 {
		t.Fatalf("RunBefore(30) fired %v, want [10 20]", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("now = %v after RunBefore, want 20 (last fired event, not the bound)", e.Now())
	}
	// The event at the bound must still be queued and fireable.
	if got := e.LivePending(); got != 1 {
		t.Fatalf("LivePending = %d, want 1", got)
	}
	e.Run()
	if len(fired) != 3 || fired[2] != 30 {
		t.Fatalf("event at the bound lost: fired %v", fired)
	}
}

func TestRunBeforeAllowsSchedulingInsideWindow(t *testing.T) {
	// A callback firing at t=10 schedules a follow-up at t=15, still inside
	// the window [0, 20): it must fire in the same RunBefore call.
	e := NewEngine(1)
	var got []Time
	e.At(10, func() {
		got = append(got, e.Now())
		e.At(15, func() { got = append(got, e.Now()) })
	})
	e.RunBefore(20)
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Fatalf("fired %v, want [10 15]", got)
	}
}

func TestNextEventTimeSkipsCancelled(t *testing.T) {
	e := NewEngine(1)
	ev := e.At(5, func() {})
	e.At(9, func() {})
	if when, ok := e.NextEventTime(); !ok || when != 5 {
		t.Fatalf("NextEventTime = %v,%v want 5,true", when, ok)
	}
	ev.Cancel()
	if when, ok := e.NextEventTime(); !ok || when != 9 {
		t.Fatalf("after cancel NextEventTime = %v,%v want 9,true", when, ok)
	}
	e.Run()
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("NextEventTime reports an event on a drained engine")
	}
}

func TestAdvanceToMonotonic(t *testing.T) {
	e := NewEngine(1)
	e.AdvanceTo(100)
	if e.Now() != 100 {
		t.Fatalf("now = %v, want 100", e.Now())
	}
	e.AdvanceTo(40) // backwards is a no-op
	if e.Now() != 100 {
		t.Fatalf("AdvanceTo moved the clock backwards: now = %v", e.Now())
	}
	// Scheduling before the advanced clock must still panic.
	defer func() {
		if recover() == nil {
			t.Fatal("At before now did not panic after AdvanceTo")
		}
	}()
	e.At(50, func() {})
}

func TestLivePendingIgnoresCancelled(t *testing.T) {
	e := NewEngine(1)
	keep := 0
	e.At(10, func() { keep++ })
	ev1 := e.At(20, func() {})
	ev2 := e.At(30, func() {})
	ev1.Cancel()
	ev2.Cancel()
	// Pending counts cancelled entries until reaped; LivePending must not.
	if p, lp := e.Pending(), e.LivePending(); p != 3 || lp != 1 {
		t.Fatalf("Pending=%d LivePending=%d, want 3 and 1", p, lp)
	}
	if err := e.DrainCheck(); err == nil {
		t.Fatal("DrainCheck passed with a live event queued")
	}
	e.Run()
	if keep != 1 {
		t.Fatalf("live event did not fire (keep=%d)", keep)
	}
	if err := e.DrainCheck(); err != nil {
		t.Fatalf("DrainCheck after full drain: %v", err)
	}
}

func TestLivePendingSeesBatchTail(t *testing.T) {
	// While a same-timestamp batch is active, unfired batch entries must be
	// counted: schedule two events at t=10; the first one checks LivePending
	// mid-batch.
	e := NewEngine(1)
	var mid int
	e.At(10, func() { mid = e.LivePending() })
	e.At(10, func() {})
	e.At(50, func() {})
	e.Run()
	if mid != 2 {
		t.Fatalf("LivePending mid-batch = %d, want 2 (batch tail + heap)", mid)
	}
}

func TestDrainCheckCleanOnFreshEngine(t *testing.T) {
	e := NewEngine(1)
	if err := e.DrainCheck(); err != nil {
		t.Fatalf("fresh engine DrainCheck: %v", err)
	}
}
