package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.After(30*Nanosecond, func() { got = append(got, 3) })
	e.After(10*Nanosecond, func() { got = append(got, 1) })
	e.After(20*Nanosecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != Time(30*Nanosecond) {
		t.Fatalf("clock = %v, want 30ns", e.Now())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(5*Nanosecond), func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var trace []Time
	e.After(Nanosecond, func() {
		trace = append(trace, e.Now())
		e.After(Nanosecond, func() {
			trace = append(trace, e.Now())
		})
	})
	e.Run()
	if len(trace) != 2 || trace[0] != Time(Nanosecond) || trace[1] != Time(2*Nanosecond) {
		t.Fatalf("nested scheduling trace = %v", trace)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.After(Nanosecond, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(Time(5*Nanosecond), func() {})
	})
	e.Run()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-Nanosecond, func() {})
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.After(Microsecond, func() { fired++ })
	e.After(3*Microsecond, func() { fired++ })
	e.RunUntil(Time(2 * Microsecond))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != Time(2*Microsecond) {
		t.Fatalf("clock = %v, want 2us", e.Now())
	}
	// The remaining event still fires on a later run.
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d after full run, want 2", fired)
	}
}

func TestRunUntilSkipsCanceledHead(t *testing.T) {
	e := NewEngine(1)
	ev := e.After(Nanosecond, func() { t.Error("cancelled head fired") })
	fired := false
	e.After(2*Nanosecond, func() { fired = true })
	ev.Cancel()
	e.RunUntil(Time(5 * Nanosecond))
	if !fired {
		t.Fatal("live event after cancelled head did not fire")
	}
}

func TestHaltStopsRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 5; i++ {
		e.After(Duration(i)*Nanosecond, func() {
			count++
			if count == 2 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d after halt, want 2", count)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		e := NewEngine(seed)
		var out []int64
		for i := 0; i < 100; i++ {
			d := Duration(e.Rand().Int63n(int64(Microsecond)))
			e.After(d, func() { out = append(out, int64(e.Now())) })
		}
		e.Run()
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("runs differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the engine fires every event exactly once.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint32) bool {
		e := NewEngine(7)
		var times []Time
		for _, d := range delays {
			e.After(Duration(d%1_000_000)*Nanosecond, func() {
				times = append(times, e.Now())
			})
		}
		e.Run()
		if len(times) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestServerFIFO(t *testing.T) {
	e := NewEngine(1)
	s := NewServer(e, "pu", 1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		s.Submit(10*Nanosecond, 0, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
	if e.Now() != Time(40*Nanosecond) {
		t.Fatalf("single-slot server finished at %v, want 40ns", e.Now())
	}
	if s.Served() != 4 {
		t.Fatalf("served = %d, want 4", s.Served())
	}
}

func TestServerParallelSlots(t *testing.T) {
	e := NewEngine(1)
	s := NewServer(e, "dma", 2)
	done := 0
	for i := 0; i < 4; i++ {
		s.Submit(10*Nanosecond, 0, func() { done++ })
	}
	e.Run()
	if done != 4 {
		t.Fatalf("done = %d, want 4", done)
	}
	if e.Now() != Time(20*Nanosecond) {
		t.Fatalf("2-slot server finished at %v, want 20ns", e.Now())
	}
}

func TestPriorityServerClassOrder(t *testing.T) {
	e := NewEngine(1)
	s := NewPriorityServer(e, "egress", 1)
	var order []int
	// Occupy the slot so subsequent submissions queue.
	s.Submit(10*Nanosecond, 0, nil)
	s.Submit(10*Nanosecond, 2, func() { order = append(order, 2) })
	s.Submit(10*Nanosecond, 1, func() { order = append(order, 1) })
	s.Submit(10*Nanosecond, 1, func() { order = append(order, 11) })
	e.Run()
	want := []int{1, 11, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("priority order = %v, want %v", order, want)
		}
	}
}

func TestServerUtilization(t *testing.T) {
	e := NewEngine(1)
	s := NewServer(e, "u", 1)
	s.Submit(10*Nanosecond, 0, nil)
	e.RunUntil(Time(20 * Nanosecond))
	got := s.Utilization()
	if got < 0.49 || got > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", got)
	}
}

func TestNoiseBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := NewNoise(rng, 5*Nanosecond, 100*Nanosecond, 0.01)
	for i := 0; i < 10000; i++ {
		d := n.Sample()
		if d < -15*Nanosecond {
			t.Fatalf("noise sample %v below -3 sigma", d)
		}
		if d > 115*Nanosecond {
			t.Fatalf("noise sample %v above spike+3sigma", d)
		}
	}
}

func TestNoiseNilSafe(t *testing.T) {
	var n *Noise
	if n.Sample() != 0 {
		t.Fatal("nil noise must sample 0")
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "500ps"},
		{3 * Nanosecond, "3ns"},
		{1500 * Nanosecond, "1.5us"},
		{2 * Millisecond, "2ms"},
		{3 * Second, "3s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d ps -> %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDurationScale(t *testing.T) {
	if got := (100 * Nanosecond).Scale(1.5); got != 150*Nanosecond {
		t.Fatalf("Scale(1.5) = %v", got)
	}
	if got := (100 * Nanosecond).Scale(0); got != 0 {
		t.Fatalf("Scale(0) = %v", got)
	}
}

func TestUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		d := Uniform(rng, 100*Nanosecond)
		if d < 0 || d >= 100*Nanosecond {
			t.Fatalf("Uniform out of range: %v", d)
		}
	}
	if Uniform(rng, 0) != 0 {
		t.Fatal("Uniform(0) != 0")
	}
}

func TestTimeConversions(t *testing.T) {
	tm := Time(1500 * Nanosecond)
	if tm.Nanoseconds() != 1500 {
		t.Fatalf("ns = %v", tm.Nanoseconds())
	}
	if tm.Microseconds() != 1.5 {
		t.Fatalf("us = %v", tm.Microseconds())
	}
	if tm.Add(500*Nanosecond).Sub(tm) != 500*Nanosecond {
		t.Fatal("Add/Sub inconsistent")
	}
	d := 2500 * Nanosecond
	if d.Std().Nanoseconds() != 2500 {
		t.Fatalf("Std = %v", d.Std())
	}
	if FromStd(d.Std()) != d {
		t.Fatal("FromStd(Std) not identity for whole ns")
	}
	if Duration(Second).Seconds() != 1 {
		t.Fatal("Seconds conversion")
	}
}

func TestRunForAdvances(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.After(10*Microsecond, func() { fired = true })
	e.RunFor(5 * Microsecond)
	if fired || e.Now() != Time(5*Microsecond) {
		t.Fatalf("RunFor mishandled: fired=%v now=%v", fired, e.Now())
	}
	e.RunFor(10 * Microsecond)
	if !fired {
		t.Fatal("event within second RunFor window did not fire")
	}
}

func TestPendingAndFiredCounters(t *testing.T) {
	e := NewEngine(1)
	e.After(Nanosecond, func() {})
	e.After(2*Nanosecond, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run()
	if e.Fired() != 2 || e.Pending() != 0 {
		t.Fatalf("fired=%d pending=%d", e.Fired(), e.Pending())
	}
}
