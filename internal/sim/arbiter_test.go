package sim

import (
	"math/rand"
	"testing"
)

// strictPick mirrors nic.StrictArbiter: first index of the minimum class.
type strictPick struct{}

func (strictPick) Pick(q []ReqMeta) int {
	best := 0
	for i := 1; i < len(q); i++ {
		if q[i].Class < q[best].Class {
			best = i
		}
	}
	return best
}

// The strategy seam's core equivalence: an arbitrated server whose arbiter
// picks the first index of the minimum class over the FIFO arrival queue
// produces exactly the schedule of the priority server's sorted-insert +
// pop-front queue — for any submission pattern. Every legacy golden rests
// on this.
func TestArbitratedStrictMatchesPriorityServer(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))

		type sub struct {
			at      Duration
			service Duration
			class   int
		}
		subs := make([]sub, 200)
		for i := range subs {
			subs[i] = sub{
				at:      Duration(rng.Intn(5000)) * Nanosecond,
				service: Duration(1+rng.Intn(300)) * Nanosecond,
				class:   rng.Intn(3),
			}
		}

		run := func(mk func(*Engine) *Server) []Time {
			eng := NewEngine(7)
			s := mk(eng)
			done := make([]Time, len(subs))
			for i, sb := range subs {
				i, sb := i, sb
				eng.At(Time(0).Add(sb.at), func() {
					s.Submit(sb.service, sb.class, func() { done[i] = eng.Now() })
				})
			}
			eng.Run()
			return done
		}

		prio := run(func(e *Engine) *Server { return NewPriorityServer(e, "prio", 1) })
		arb := run(func(e *Engine) *Server { return NewArbitratedServer(e, "arb", 1, strictPick{}) })
		for i := range prio {
			if prio[i] != arb[i] {
				t.Fatalf("trial %d: completion %d differs: priority=%v arbitrated=%v", trial, i, prio[i], arb[i])
			}
		}
	}
}

// SubmitMeta on an arbitrated server keeps queue and metadata index-aligned
// across out-of-order removal, and tenants actually steer the pick.
func TestArbitratedTenantPick(t *testing.T) {
	eng := NewEngine(1)
	// An arbiter that always prefers tenant 1's oldest request.
	pick := func(q []ReqMeta) int {
		for i := range q {
			if q[i].Tenant == 1 {
				return i
			}
		}
		return 0
	}
	s := NewArbitratedServer(eng, "arb", 1, pickFunc(pick))
	var order []int
	for i := 0; i < 6; i++ {
		i := i
		tenant := i % 2
		s.SubmitMeta(10*Nanosecond, ReqMeta{Tenant: tenant, Bytes: 64}, func() {
			order = append(order, i)
		})
	}
	eng.Run()
	// Request 0 starts immediately (free slot); afterwards all tenant-1
	// requests (1, 3, 5) drain before tenant-0's (2, 4).
	want := []int{0, 1, 3, 5, 2, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order = %v, want %v", order, want)
		}
	}
}

type pickFunc func(q []ReqMeta) int

func (f pickFunc) Pick(q []ReqMeta) int { return f(q) }
