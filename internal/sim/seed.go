package sim

// DeriveSeed deterministically derives an independent engine seed for one
// shard of a sharded experiment from the experiment's root seed. It is the
// repo's seeding convention for parallel sweeps (DESIGN.md §6): every cell
// of a sweep builds its own Engine with DeriveSeed(root, cell-index), so
// the random stream a cell sees depends only on (root, index) — never on
// worker count, scheduling order, or what other cells did. That is what
// makes `-workers=1` and `-workers=N` produce byte-identical results.
//
// The mixer is splitmix64 (Steele et al., the finaliser Java's
// SplittableRandom and xoshiro seeding use): a bijective avalanche over the
// 64-bit input, so distinct (root, shard) pairs with the same root always
// yield distinct seeds, and sequential shard indices land far apart in the
// output space instead of giving correlated LCG streams.
func DeriveSeed(root int64, shard uint64) int64 {
	z := uint64(root) + (shard+1)*0x9E3779B97F4A7C15 // golden-ratio increment
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
