// Package sim provides a deterministic discrete-event simulation kernel used
// by the RNIC, fabric and host models. Virtual time is expressed in
// picoseconds, which resolves single-byte serialisation at 200 Gbps (40 ps)
// without rounding while still covering ~106 virtual days in an int64.
//
// The kernel is callback-based rather than coroutine-based: every event is a
// closure scheduled at an absolute virtual time, and ties are broken by a
// monotonically increasing sequence number so runs are fully deterministic
// for a given seed.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in picoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds returns the time as floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Nanoseconds returns the time as floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

func (t Time) String() string { return Duration(t).String() }

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds returns the duration as floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Nanoseconds returns the duration as floating-point nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Std converts a virtual duration to a time.Duration. Sub-nanosecond
// precision is truncated.
func (d Duration) Std() time.Duration { return time.Duration(d/Nanosecond) * time.Nanosecond }

// FromStd converts a time.Duration to a virtual Duration.
func FromStd(d time.Duration) Duration { return Duration(d.Nanoseconds()) * Nanosecond }

// Scale multiplies d by a dimensionless factor, rounding to the nearest
// picosecond. It is the canonical way to derate or boost service times.
func (d Duration) Scale(f float64) Duration {
	return Duration(float64(d)*f + 0.5)
}

func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case d < Microsecond:
		return fmt.Sprintf("%.3gns", d.Nanoseconds())
	case d < Millisecond:
		return fmt.Sprintf("%.4gus", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.4gms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6gs", d.Seconds())
	}
}
