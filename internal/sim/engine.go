package sim

import (
	"fmt"
	"math/rand"

	"github.com/thu-has/ragnar/internal/trace"
)

// Event is a handle to a scheduled callback. It is a small value (no heap
// allocation per schedule): the callback itself lives in an engine-owned
// slot, and the handle names that slot plus the generation it was armed
// under. Once the event fires or is cancelled the slot is recycled and its
// generation bumped, so a stale handle can never cancel (or resurrect) a
// later event that happens to reuse the slot.
//
// The zero Event is an inert handle: Cancel is a no-op, Pending reports
// false. See DESIGN.md §9 for the slot/generation scheme.
type Event struct {
	eng      *Engine
	slot     int32
	gen      uint32
	when     Time
	canceled bool
}

// When reports the virtual time the event was scheduled for. It stays valid
// after the event fires.
func (ev Event) When() Time { return ev.when }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired (or was already cancelled) is a no-op. Cancel drops the
// engine's reference to the callback immediately, so anything the closure
// captured becomes collectable without waiting for the slot to surface in
// the queue.
func (ev *Event) Cancel() {
	if ev.eng == nil {
		return
	}
	ev.canceled = true
	if ev.eng.live(ev.slot, ev.gen) {
		s := &ev.eng.slots[ev.slot]
		s.canceled = true
		s.fn = nil
	}
}

// Canceled reports whether the event has been cancelled (via this handle or
// any copy of it that shares the slot generation).
func (ev Event) Canceled() bool {
	if ev.canceled {
		return true
	}
	return ev.eng != nil && ev.eng.live(ev.slot, ev.gen) && ev.eng.slots[ev.slot].canceled
}

// Pending reports whether the event is still scheduled: not yet fired and
// not cancelled. The zero Event is never pending.
func (ev Event) Pending() bool {
	return ev.eng != nil && ev.eng.live(ev.slot, ev.gen) && !ev.eng.slots[ev.slot].canceled
}

// Engine is a deterministic discrete-event scheduler. It is not safe for
// concurrent use: all model code runs single-threaded inside event callbacks,
// which is what makes runs reproducible.
//
// Internally the engine is allocation-free on the schedule+fire path (the
// bench-guard CI job enforces 0 allocs/op): a 4-ary min-heap of value
// entries orders events, a slab free list recycles callback slots, and a
// batch buffer drains same-timestamp runs without touching the heap for
// events scheduled "now" during the run — the common burst pattern when a
// fabric TC queue drains. See heap.go and DESIGN.md §9.
type Engine struct {
	now    Time
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	halted bool

	// Priority queue state (heap.go).
	heap  []heapEntry
	slots []eventSlot
	free  int32

	// Same-timestamp batch: the run of minimum-time entries popped from the
	// heap, fired in seq order. While a batch for batchTime is active, At()
	// appends same-time events directly to it (their seq is necessarily
	// larger than everything already in the batch), skipping a heap
	// round-trip per event.
	batch     []heapEntry
	batchIdx  int
	batchOn   bool
	batchTime Time

	rec      *trace.Recorder
	recActor uint16
}

// NewEngine returns an engine whose random source is seeded with seed.
// Identical seeds yield identical runs.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:   rand.New(rand.NewSource(seed)),
		heap:  make([]heapEntry, 0, 256),
		slots: make([]eventSlot, 0, 256),
		batch: make([]heapEntry, 0, 64),
		free:  noSlot,
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source. Model code must use
// this source (never the global one) to stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but not yet fired
// (cancelled events count until their queue entry is reaped, matching the
// previous container/heap behaviour).
func (e *Engine) Pending() int {
	return len(e.heap) + (len(e.batch) - e.batchIdx)
}

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// it is always a model bug, and silently clamping would mask causality
// violations.
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	idx := e.allocSlot(fn)
	ent := heapEntry{when: t, seq: e.seq, slot: idx}
	e.seq++
	if e.batchOn && t == e.batchTime {
		// Fast path: the engine is mid-way through firing the batch for
		// exactly this timestamp. The new event's seq is greater than every
		// entry already in the batch and no entry for batchTime remains in
		// the heap (the refill popped the whole run), so appending preserves
		// (when, seq) order.
		e.batch = append(e.batch, ent)
	} else {
		e.heapPush(ent)
	}
	return Event{eng: e, slot: idx, gen: e.slots[idx].gen, when: t}
}

// After schedules fn d after the current time. Negative delays panic.
func (e *Engine) After(d Duration, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// SetRecorder attaches a flight recorder. The engine emits run/halt markers
// into it; recording is passive and never alters scheduling, timing or the
// RNG stream, so traced runs stay byte-identical to untraced ones. A nil
// recorder disables tracing.
func (e *Engine) SetRecorder(r *trace.Recorder) {
	e.rec = r
	e.recActor = r.RegisterActor("engine")
}

// Recorder returns the attached flight recorder (nil when tracing is off).
// Model components attached to the engine inherit it at wiring time.
func (e *Engine) Recorder() *trace.Recorder { return e.rec }

// Halt stops the run loop after the current event's callback returns.
func (e *Engine) Halt() {
	e.halted = true
	e.rec.Emit(trace.Event{At: int64(e.now), Kind: trace.KindEngineHalt, Actor: e.recActor, TC: -1})
}

// step pops and fires the next event. It reports false when the queue is
// empty.
func (e *Engine) step() bool {
	for {
		// Drain the active same-timestamp batch first.
		for e.batchIdx < len(e.batch) {
			ent := e.batch[e.batchIdx]
			e.batchIdx++
			if e.slots[ent.slot].canceled {
				e.freeSlot(ent.slot)
				continue
			}
			fn := e.slots[ent.slot].fn
			e.freeSlot(ent.slot)
			e.now = ent.when
			e.fired++
			fn()
			return true
		}
		if e.batchOn {
			e.batch = e.batch[:0]
			e.batchIdx = 0
			e.batchOn = false
		}
		if len(e.heap) == 0 {
			return false
		}
		// Refill: pop the entire run of minimum-timestamp entries in one
		// go. Repeated pops of equal-time entries come out in seq order, so
		// the batch is already FIFO-sorted.
		t := e.heap[0].when
		for len(e.heap) > 0 && e.heap[0].when == t {
			e.batch = append(e.batch, e.heapPop())
		}
		e.batchIdx = 0
		e.batchOn = true
		e.batchTime = t
	}
}

// next prunes cancelled events off the front of the queue and reports the
// earliest pending timestamp without consuming the event.
func (e *Engine) next() (Time, bool) {
	for {
		if e.batchOn {
			if e.batchIdx < len(e.batch) {
				ent := e.batch[e.batchIdx]
				if e.slots[ent.slot].canceled {
					e.freeSlot(ent.slot)
					e.batchIdx++
					continue
				}
				return ent.when, true
			}
			e.batch = e.batch[:0]
			e.batchIdx = 0
			e.batchOn = false
		}
		if len(e.heap) == 0 {
			return 0, false
		}
		ent := e.heap[0]
		if e.slots[ent.slot].canceled {
			e.heapPop()
			e.freeSlot(ent.slot)
			continue
		}
		return ent.when, true
	}
}

// Run executes events until the queue drains or Halt is called.
func (e *Engine) Run() {
	e.rec.Emit(trace.Event{At: int64(e.now), Kind: trace.KindEngineRun, Actor: e.recActor,
		Val: uint64(e.Pending()), TC: -1})
	e.halted = false
	for !e.halted && e.step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) {
	e.rec.Emit(trace.Event{At: int64(e.now), Kind: trace.KindEngineRun, Actor: e.recActor,
		Val: uint64(e.Pending()), Aux: uint64(deadline), TC: -1})
	e.halted = false
	for !e.halted {
		when, ok := e.next()
		if !ok || when > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for a span of virtual time from now.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }
