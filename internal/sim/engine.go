package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"github.com/thu-has/ragnar/internal/trace"
)

// Event is a scheduled callback. The callback runs exactly once, at the
// event's virtual time, unless the event is cancelled first.
type Event struct {
	when     Time
	seq      uint64
	index    int // heap index, -1 once popped or cancelled
	fn       func()
	canceled bool
}

// When reports the virtual time the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether the event has been cancelled.
func (e *Event) Canceled() bool { return e.canceled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event scheduler. It is not safe for
// concurrent use: all model code runs single-threaded inside event callbacks,
// which is what makes runs reproducible.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	halted bool

	rec      *trace.Recorder
	recActor uint16
}

// NewEngine returns an engine whose random source is seeded with seed.
// Identical seeds yield identical runs.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source. Model code must use
// this source (never the global one) to stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but not yet fired.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// it is always a model bug, and silently clamping would mask causality
// violations.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{when: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn d after the current time. Negative delays panic.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// SetRecorder attaches a flight recorder. The engine emits run/halt markers
// into it; recording is passive and never alters scheduling, timing or the
// RNG stream, so traced runs stay byte-identical to untraced ones. A nil
// recorder disables tracing.
func (e *Engine) SetRecorder(r *trace.Recorder) {
	e.rec = r
	e.recActor = r.RegisterActor("engine")
}

// Recorder returns the attached flight recorder (nil when tracing is off).
// Model components attached to the engine inherit it at wiring time.
func (e *Engine) Recorder() *trace.Recorder { return e.rec }

// Halt stops the run loop after the current event's callback returns.
func (e *Engine) Halt() {
	e.halted = true
	e.rec.Emit(trace.Event{At: int64(e.now), Kind: trace.KindEngineHalt, Actor: e.recActor, TC: -1})
}

// step pops and fires the next event. It reports false when the queue is
// empty.
func (e *Engine) step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.when
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Halt is called.
func (e *Engine) Run() {
	e.rec.Emit(trace.Event{At: int64(e.now), Kind: trace.KindEngineRun, Actor: e.recActor,
		Val: uint64(len(e.queue)), TC: -1})
	e.halted = false
	for !e.halted && e.step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) {
	e.rec.Emit(trace.Event{At: int64(e.now), Kind: trace.KindEngineRun, Actor: e.recActor,
		Val: uint64(len(e.queue)), Aux: uint64(deadline), TC: -1})
	e.halted = false
	for !e.halted {
		if len(e.queue) == 0 {
			break
		}
		// Peek: queue[0] is the earliest pending event.
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.when > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for a span of virtual time from now.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }
