package sim

import "math/rand"

// Noise generates bounded timing jitter for model components. All model
// randomness flows through an Engine's rand source, so runs stay
// reproducible per seed.
type Noise struct {
	rng    *rand.Rand
	sigma  Duration // standard deviation of the Gaussian component
	spike  Duration // magnitude of rare positive spikes (queueing hiccups)
	spikeP float64  // probability of a spike per sample
}

// NewNoise builds a jitter source with Gaussian sigma plus occasional
// positive spikes of the given magnitude and probability. Real NIC latency
// distributions are right-skewed: a tight Gaussian core plus a sparse tail.
func NewNoise(rng *rand.Rand, sigma, spike Duration, spikeP float64) *Noise {
	return &Noise{rng: rng, sigma: sigma, spike: spike, spikeP: spikeP}
}

// Reseed replaces the noise stream with a private source. Partitioned
// topologies use this to decorrelate model jitter from the engine RNG:
// with jitter drawn from the shared engine stream, the interleaving of
// draws — and therefore every sample — depends on how many components
// share the engine, so serial and partitioned builds of the same topology
// would diverge. A per-component stream derived from (seed, component
// index) is identical no matter how the components are split across
// engines.
func (n *Noise) Reseed(seed int64) {
	if n != nil {
		n.rng = rand.New(rand.NewSource(seed))
	}
}

// Sample draws one jitter value. The Gaussian component is truncated at
// ±3 sigma so a single sample can never go pathologically negative; callers
// add it to a base latency that exceeds 3 sigma.
func (n *Noise) Sample() Duration {
	if n == nil {
		return 0
	}
	g := n.rng.NormFloat64()
	if g > 3 {
		g = 3
	} else if g < -3 {
		g = -3
	}
	d := Duration(g * float64(n.sigma))
	if n.spikeP > 0 && n.rng.Float64() < n.spikeP {
		d += Duration(n.rng.Float64() * float64(n.spike))
	}
	return d
}

// Uniform returns a uniformly distributed duration in [0, max).
func Uniform(rng *rand.Rand, max Duration) Duration {
	if max <= 0 {
		return 0
	}
	return Duration(rng.Int63n(int64(max)))
}
