package sim

import "math/rand"

// Noise generates bounded timing jitter for model components. All model
// randomness flows through an Engine's rand source, so runs stay
// reproducible per seed.
type Noise struct {
	rng    *rand.Rand
	sigma  Duration // standard deviation of the Gaussian component
	spike  Duration // magnitude of rare positive spikes (queueing hiccups)
	spikeP float64  // probability of a spike per sample
}

// NewNoise builds a jitter source with Gaussian sigma plus occasional
// positive spikes of the given magnitude and probability. Real NIC latency
// distributions are right-skewed: a tight Gaussian core plus a sparse tail.
func NewNoise(rng *rand.Rand, sigma, spike Duration, spikeP float64) *Noise {
	return &Noise{rng: rng, sigma: sigma, spike: spike, spikeP: spikeP}
}

// Sample draws one jitter value. The Gaussian component is truncated at
// ±3 sigma so a single sample can never go pathologically negative; callers
// add it to a base latency that exceeds 3 sigma.
func (n *Noise) Sample() Duration {
	if n == nil {
		return 0
	}
	g := n.rng.NormFloat64()
	if g > 3 {
		g = 3
	} else if g < -3 {
		g = -3
	}
	d := Duration(g * float64(n.sigma))
	if n.spikeP > 0 && n.rng.Float64() < n.spikeP {
		d += Duration(n.rng.Float64() * float64(n.spike))
	}
	return d
}

// Uniform returns a uniformly distributed duration in [0, max).
func Uniform(rng *rand.Rand, max Duration) Duration {
	if max <= 0 {
		return 0
	}
	return Duration(rng.Int63n(int64(max)))
}
