package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: DeriveSeed is a pure function — same (root, shard) is stable.
func TestDeriveSeedStable(t *testing.T) {
	f := func(root int64, shard uint64) bool {
		return DeriveSeed(root, shard) == DeriveSeed(root, shard)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: distinct shards of one root yield distinct seeds. splitmix64 is
// a bijection of root + (shard+1)*phi, so collisions require the golden
// ratio step to wrap onto itself — impossible for shard deltas below 2^64.
func TestDeriveSeedDistinctShards(t *testing.T) {
	f := func(root int64, a, b uint64) bool {
		if a == b {
			return true
		}
		return DeriveSeed(root, a) != DeriveSeed(root, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: neighbouring shards give uncorrelated engine streams — the
// first draws of engines seeded with shard i and i+1 differ (no lockstep
// LCG artifact), for arbitrary roots.
func TestDeriveSeedIndependentStreams(t *testing.T) {
	f := func(root int64, shard uint64) bool {
		a := rand.New(rand.NewSource(DeriveSeed(root, shard)))
		b := rand.New(rand.NewSource(DeriveSeed(root, shard+1)))
		// Two independent 63-bit draws colliding on all of three rounds is
		// astronomically unlikely; lockstep streams collide on every round.
		same := 0
		for i := 0; i < 3; i++ {
			if a.Int63() == b.Int63() {
				same++
			}
		}
		return same < 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the derived seed does not depend on anything but its inputs —
// deriving for shards in any order yields the same per-shard values. This
// is what makes parallel sweeps worker-schedule-independent.
func TestDeriveSeedOrderIndependent(t *testing.T) {
	const root = 42
	want := make([]int64, 64)
	for i := range want {
		want[i] = DeriveSeed(root, uint64(i))
	}
	// Re-derive in reverse and shuffled orders.
	for i := len(want) - 1; i >= 0; i-- {
		if DeriveSeed(root, uint64(i)) != want[i] {
			t.Fatalf("shard %d unstable when derived in reverse order", i)
		}
	}
	perm := rand.New(rand.NewSource(7)).Perm(len(want))
	for _, i := range perm {
		if DeriveSeed(root, uint64(i)) != want[i] {
			t.Fatalf("shard %d unstable when derived in shuffled order", i)
		}
	}
}

// Engines seeded from adjacent roots must also diverge (a user bumping
// -seed by one expects a fresh experiment).
func TestDeriveSeedRootSensitivity(t *testing.T) {
	f := func(root int64, shard uint64) bool {
		return DeriveSeed(root, shard) != DeriveSeed(root+1, shard)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
