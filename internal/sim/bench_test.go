package sim

import "testing"

// The BenchmarkEngine* family is the CI-guarded scheduler hot path: after the
// warm-up phase every schedule+fire cycle must run without allocating
// (scripts/benchguard.go fails the bench-guard job if allocs/op > 0). The
// closures are created before ResetTimer so the measurement isolates the
// engine's own cost: slot allocation, heap push/pop and callback dispatch.

// BenchmarkEngineScheduleFire is the minimal steady-state cycle: one
// self-rescheduling event, so the queue depth stays at 1 and every iteration
// is exactly one At + one fire.
func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			e.After(10*Nanosecond, fn)
		}
	}
	e.After(10*Nanosecond, fn)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
	b.StopTimer()
	if n != b.N {
		b.Fatalf("fired %d, want %d", n, b.N)
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineHotQueue keeps 1024 self-rescheduling events in flight so
// push/pop traverse a realistically deep heap (a covert-channel rig keeps
// hundreds of timers pending: per-QP retransmit timers, server completions,
// link serialization and propagation events).
func BenchmarkEngineHotQueue(b *testing.B) {
	const depth = 1024
	e := NewEngine(1)
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			// Vary the delay so the heap actually reorders.
			e.After(Duration(1+(n*7)%64)*Nanosecond, fn)
		}
	}
	for i := 0; i < depth && i < b.N; i++ {
		e.After(Duration(1+i%64)*Nanosecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
	b.StopTimer()
	b.ReportMetric(float64(e.Fired())/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineBurst schedules same-timestamp bursts, the pattern the
// fabric TC queues generate when a window of packets drains in one
// serialization slot — the case the batch pop exists for.
func BenchmarkEngineBurst(b *testing.B) {
	const burst = 64
	e := NewEngine(1)
	n := 0
	var seed func()
	seed = func() {
		t := e.Now().Add(10 * Nanosecond)
		for i := 0; i < burst; i++ {
			n++
			if n >= b.N {
				return
			}
			e.At(t, func() {})
		}
		if n < b.N {
			e.At(t, seed)
		}
	}
	e.After(Nanosecond, seed)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
	b.StopTimer()
	b.ReportMetric(float64(e.Fired())/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineCancel measures the arm/cancel cycle the go-back-N
// retransmit timer performs on every completion: schedule a far-future event
// and cancel it before it fires.
func BenchmarkEngineCancel(b *testing.B) {
	e := NewEngine(1)
	n := 0
	nop := func() {}
	var fn func()
	fn = func() {
		n++
		timer := e.After(Millisecond, nop) // armed backstop, never fires
		timer.Cancel()
		if n < b.N {
			e.After(10*Nanosecond, fn)
		}
	}
	e.After(10*Nanosecond, fn)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
	b.StopTimer()
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "events/sec")
}
