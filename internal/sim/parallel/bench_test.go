package parallel

import (
	"testing"

	"github.com/thu-has/ragnar/internal/fabric"
	"github.com/thu-has/ragnar/internal/sim"
)

// BenchmarkEngineParallelXfer is the inter-domain channel steady state:
// two domains ping-ponging one packet, so each op is one full
// stage→barrier→drain→deliver cycle (one window per hop). The bench-guard
// CI job gates this at 0 allocs/op — staging rings, the delivery inbox and
// the destination engine's slot slab must all recycle, the same way the
// serial scheduler's schedule+fire path does.
func BenchmarkEngineParallelXfer(b *testing.B) {
	b.ReportAllocs()
	g := NewGroup()
	da := g.AddDomain(sim.NewEngine(1))
	db := g.AddDomain(sim.NewEngine(1))

	n := 0
	var ab, ba *Chan
	ab = g.Connect(da, db, prop, func(p fabric.Packet) {
		ba.Send(db.Eng.Now().Add(prop), p)
	})
	ba = g.Connect(db, da, prop, func(p fabric.Packet) {
		n++
		if n < b.N {
			ab.Send(da.Eng.Now().Add(prop), p)
		}
	})

	b.ResetTimer()
	da.Eng.At(da.Eng.Now().Add(prop), func() {
		ab.Send(da.Eng.Now().Add(prop), fabric.Packet{Dst: 1, Bytes: 1024})
	})
	g.Run()
	if n != b.N {
		b.Fatalf("completed %d round trips, want %d", n, b.N)
	}
}
