// Package parallel runs a partitioned topology as a conservative parallel
// discrete-event simulation: one sim.Engine per domain, cross-domain traffic
// carried by timestamped channels, and link propagation delay as the
// lookahead bound.
//
// The synchronization scheme is a synchronous-window barrier (an LBTS /
// null-message-free variant of conservative PDES). Each round the
// coordinator computes Tmin, the minimum live event time across all
// domains, and lets every domain execute events with timestamps strictly
// inside the window [Tmin, Tmin+L), where L is the minimum lookahead over
// all inter-domain channels. Window execution is one goroutine per domain;
// a WaitGroup barrier follows; then the coordinator alone drains every
// channel, scheduling the staged transfers on their destination engines.
//
// Why this is safe: a transfer staged at sender time t carries an arrival
// timestamp t+prop, where prop >= L is the channel's lookahead (the trunk
// link's propagation delay). Since t >= Tmin, the arrival is at
// t+prop >= Tmin+L — at or past the window end — so no domain can receive
// work in its own past. That is the whole correctness argument, and it is
// why the lookahead bound must be a real lower bound on cross-domain
// latency.
//
// Determinism: channels are drained in creation order by the single
// coordinator thread, in-channel order is FIFO, and arrival timestamps per
// channel are nondecreasing, so destination-engine sequence numbers are
// assigned identically on every run regardless of how the window goroutines
// interleave. The one divergence from a serial run is tie-breaking: a
// cross-domain arrival and a local event landing on the same picosecond may
// fire in a different relative order than the serial engine's global
// schedule-order tiebreak. scripts/equivalence.sh pins empirically that the
// suite's outputs are byte-identical anyway. See DESIGN.md §12 for the
// model, its non-goals, and the single-RNG-consumer constraint.
package parallel

import (
	"fmt"
	"sync"

	"github.com/thu-has/ragnar/internal/fabric"
	"github.com/thu-has/ragnar/internal/sim"
)

// Domain is one sequential partition of the topology: a sim.Engine plus its
// position in the group. All model objects of the partition (switches,
// NICs, links) are built against d.Eng and are only ever touched from that
// engine's callbacks.
type Domain struct {
	Eng *sim.Engine
	idx int
	g   *Group
	run func() // runWindow bound once: `go d.run()` spawns without allocating
}

// runWindow is the per-window goroutine body. It is a bound method (not a
// closure) so that spawning a window allocates nothing: the limit lives on
// the group, published before the goroutine starts and read-only until the
// barrier.
func (d *Domain) runWindow() {
	d.Eng.RunBefore(d.g.limit)
	d.g.wg.Done()
}

type xferKind uint8

const (
	xPacket xferKind = iota
	xPause
	xResume
)

// xfer is one staged cross-domain transfer: a packet for the destination
// sink, or a PFC pause/resume against a destination-owned link (the trunk
// flow-control relay).
type xfer struct {
	at   sim.Time
	kind xferKind
	tc   int32
	pkt  fabric.Packet
	link *fabric.Link
}

// Chan is a directed inter-domain channel with a fixed lookahead. The
// source domain's goroutine stages transfers during window execution; the
// coordinator drains them at the barrier onto the destination engine. The
// two phases never overlap, so Chan needs no lock.
type Chan struct {
	src, dst  *Domain
	lookahead sim.Duration
	sink      func(fabric.Packet)

	// staged is written by the source domain during a window, swapped out
	// by the coordinator at the barrier.
	staged []xfer

	// inbox is the FIFO of drained transfers awaiting their delivery events
	// on the destination engine. deliverFn (bound once) pops the head; per
	// transfer the hot path allocates nothing beyond amortized ring growth.
	inbox   []xfer
	head    int
	deliver func()
}

// Send stages a packet for delivery to the destination sink at absolute
// time at. It must be called from the source domain (inside one of its
// event callbacks) and at must be at least the channel's lookahead past the
// source clock; Deliver panics on a causality violation at drain time.
func (c *Chan) Send(at sim.Time, p fabric.Packet) {
	c.staged = append(c.staged, xfer{at: at, kind: xPacket, pkt: p})
}

// SendPause stages a PFC pause (pause=true) or resume against a
// destination-owned link, applied at absolute time at. This is the
// cross-domain half of the trunk pause relay: the serial path applies the
// same state change via a delayed event on the shared engine.
func (c *Chan) SendPause(at sim.Time, l *fabric.Link, tc int, pause bool) {
	k := xResume
	if pause {
		k = xPause
	}
	c.staged = append(c.staged, xfer{at: at, kind: k, tc: int32(tc), link: l})
}

// Lookahead reports the channel's lookahead bound.
func (c *Chan) Lookahead() sim.Duration { return c.lookahead }

// deliverHead fires on the destination engine and consumes the oldest
// inbox entry. Arrival timestamps per channel are nondecreasing, so FIFO
// order matches event order.
func (c *Chan) deliverHead() {
	x := c.inbox[c.head]
	c.inbox[c.head] = xfer{} // drop payload references
	c.head++
	if c.head == len(c.inbox) {
		c.inbox = c.inbox[:0]
		c.head = 0
	} else if c.head >= 64 && c.head*2 >= len(c.inbox) {
		n := copy(c.inbox, c.inbox[c.head:])
		c.inbox = c.inbox[:n]
		c.head = 0
	}
	switch x.kind {
	case xPacket:
		c.sink(x.pkt)
	case xPause:
		x.link.PauseTC(int(x.tc))
	case xResume:
		x.link.ResumeTC(int(x.tc))
	}
}

// drain moves staged transfers onto the destination engine. Coordinator
// only, between windows.
func (c *Chan) drain() {
	for i := range c.staged {
		x := c.staged[i]
		if x.at < c.dst.Eng.Now() {
			panic(fmt.Sprintf("parallel: transfer at %v arrives before destination clock %v (lookahead %v too large?)",
				x.at, c.dst.Eng.Now(), c.lookahead))
		}
		c.inbox = append(c.inbox, x)
		c.dst.Eng.At(x.at, c.deliver)
		c.staged[i] = xfer{}
	}
	c.staged = c.staged[:0]
}

// Group is a set of domains plus the channels coupling them. The zero
// value is unusable; use NewGroup.
type Group struct {
	domains []*Domain
	chans   []*Chan
	minLook sim.Duration

	// Window-execution state, reused across windows so the hot path stays
	// allocation-free (bench-guard gates BenchmarkEngineParallelXfer at
	// 0 allocs/op).
	wg    sync.WaitGroup
	limit sim.Time
}

// NewGroup returns an empty group.
func NewGroup() *Group { return &Group{} }

// AddDomain wraps eng as a new domain. Engines must not be shared between
// domains.
func (g *Group) AddDomain(eng *sim.Engine) *Domain {
	d := &Domain{Eng: eng, idx: len(g.domains), g: g}
	d.run = d.runWindow
	g.domains = append(g.domains, d)
	return d
}

// Domains returns the group's domains in creation order.
func (g *Group) Domains() []*Domain { return g.domains }

// Connect creates a directed channel from src to dst. lookahead must be
// positive — it is the guarantee that nothing staged on this channel
// arrives sooner than lookahead past the sender's clock, and the group's
// window length is the minimum lookahead over all channels. sink receives
// delivered packets on the destination engine.
func (g *Group) Connect(src, dst *Domain, lookahead sim.Duration, sink func(fabric.Packet)) *Chan {
	if lookahead <= 0 {
		panic("parallel: channel lookahead must be positive")
	}
	if src == dst {
		panic("parallel: channel endpoints must be distinct domains")
	}
	c := &Chan{src: src, dst: dst, lookahead: lookahead, sink: sink}
	c.deliver = c.deliverHead
	g.chans = append(g.chans, c)
	if g.minLook == 0 || lookahead < g.minLook {
		g.minLook = lookahead
	}
	return c
}

// minNext reports the earliest live event time across all domains.
func (g *Group) minNext() (sim.Time, bool) {
	var tmin sim.Time
	any := false
	for _, d := range g.domains {
		if when, ok := d.Eng.NextEventTime(); ok && (!any || when < tmin) {
			tmin, any = when, true
		}
	}
	return tmin, any
}

// window executes one synchronous window: every domain with work before
// limit runs concurrently, then the coordinator drains all channels in
// creation order. The WaitGroup barrier orders the domain goroutines'
// writes before the coordinator's reads, and the next window's goroutine
// launches order the coordinator's writes before the domains' reads.
func (g *Group) window(limit sim.Time) {
	g.limit = limit
	for _, d := range g.domains {
		if when, ok := d.Eng.NextEventTime(); ok && when < limit {
			g.wg.Add(1)
			go d.run()
		}
	}
	g.wg.Wait()
	for _, c := range g.chans {
		c.drain()
	}
}

// Run executes windows until every domain's queue is drained of live
// events and no transfers are staged, then advances every domain clock to
// the group-wide last-event time. The final advance is what lets callers
// interleave Run with fresh work (warm-up, then posting): a serial engine
// has one clock, so new work posted after Run starts at the time of the
// last event fired anywhere. Without the advance, a domain that went idle
// early would keep its lagging clock, post the new work in the other
// domains' past, and diverge from the serial schedule — or trip the
// channels' causality check outright.
//
// A single-domain group delegates to the engine's own Run for exact serial
// semantics (including trace markers); a group with no channels runs each
// (necessarily independent) domain to completion in order.
func (g *Group) Run() {
	if g.serial() {
		for _, d := range g.domains {
			d.Eng.Run()
		}
	} else {
		for {
			tmin, ok := g.minNext()
			if !ok {
				break
			}
			g.window(tmin.Add(g.minLook))
		}
	}
	now := g.Now()
	for _, d := range g.domains {
		d.Eng.AdvanceTo(now)
	}
}

// RunUntil executes events with timestamps <= deadline across all domains,
// then advances every domain clock to the deadline (matching the serial
// engine's RunUntil contract, which telemetry snapshot timestamps rely
// on).
func (g *Group) RunUntil(deadline sim.Time) {
	if g.serial() {
		for _, d := range g.domains {
			d.Eng.RunUntil(deadline)
		}
		return
	}
	for {
		tmin, ok := g.minNext()
		if !ok || tmin > deadline {
			break
		}
		limit := tmin.Add(g.minLook)
		if bound := deadline + 1; limit > bound {
			limit = bound
		}
		g.window(limit)
	}
	for _, d := range g.domains {
		d.Eng.AdvanceTo(deadline)
	}
}

// RunFor executes a span of virtual time from the group's current time.
func (g *Group) RunFor(d sim.Duration) { g.RunUntil(g.Now().Add(d)) }

// Now reports the group's virtual time: the maximum domain clock, which is
// the time of the last event fired anywhere — the same value a serial
// engine's Now would report after firing the identical event set.
func (g *Group) Now() sim.Time {
	var t sim.Time
	for _, d := range g.domains {
		if n := d.Eng.Now(); n > t {
			t = n
		}
	}
	return t
}

// DrainCheck audits every domain for leaked events after a run that should
// have quiesced.
func (g *Group) DrainCheck() error {
	for _, d := range g.domains {
		if err := d.Eng.DrainCheck(); err != nil {
			return fmt.Errorf("domain %d: %w", d.idx, err)
		}
	}
	for _, c := range g.chans {
		if len(c.staged) > 0 {
			return fmt.Errorf("parallel: %d transfer(s) staged but not drained", len(c.staged))
		}
	}
	return nil
}

// serial reports whether the group degenerates to one sequential engine:
// a single domain, or multiple domains with no coupling channels (in which
// case window synchronization would have no lookahead to work with).
func (g *Group) serial() bool {
	return len(g.domains) == 1 || len(g.chans) == 0
}
