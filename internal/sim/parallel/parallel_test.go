package parallel

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/thu-has/ragnar/internal/fabric"
	"github.com/thu-has/ragnar/internal/sim"
)

const prop = 100 * sim.Nanosecond

type arrival struct {
	At  sim.Time
	Dst uint32
}

// TestPingPongLatency checks the end-to-end timing of a two-domain
// request/response exchange: every hop crosses a channel with lookahead
// prop, so the response lands exactly 2*prop after the request left.
func TestPingPongLatency(t *testing.T) {
	g := NewGroup()
	a := g.AddDomain(sim.NewEngine(1))
	b := g.AddDomain(sim.NewEngine(1))

	var gotB, gotA []arrival
	var ab, ba *Chan
	ab = g.Connect(a, b, prop, func(p fabric.Packet) {
		gotB = append(gotB, arrival{b.Eng.Now(), p.Dst})
		ba.Send(b.Eng.Now().Add(prop), fabric.Packet{Dst: p.Dst + 1000})
	})
	ba = g.Connect(b, a, prop, func(p fabric.Packet) {
		gotA = append(gotA, arrival{a.Eng.Now(), p.Dst})
	})

	sends := []sim.Time{sim.Time(10 * sim.Nanosecond), sim.Time(450 * sim.Nanosecond), sim.Time(451 * sim.Nanosecond)}
	for i, at := range sends {
		i, at := uint32(i), at
		a.Eng.At(at, func() { ab.Send(a.Eng.Now().Add(prop), fabric.Packet{Dst: i}) })
	}
	g.Run()

	wantB := make([]arrival, len(sends))
	wantA := make([]arrival, len(sends))
	for i, at := range sends {
		wantB[i] = arrival{at.Add(prop), uint32(i)}
		wantA[i] = arrival{at.Add(2 * prop), uint32(i) + 1000}
	}
	if !reflect.DeepEqual(gotB, wantB) {
		t.Fatalf("B arrivals = %v, want %v", gotB, wantB)
	}
	if !reflect.DeepEqual(gotA, wantA) {
		t.Fatalf("A arrivals = %v, want %v", gotA, wantA)
	}
	if err := g.DrainCheck(); err != nil {
		t.Fatal(err)
	}
	if g.Now() != sends[2].Add(2*prop) {
		t.Fatalf("group Now = %v, want %v", g.Now(), sends[2].Add(2*prop))
	}
}

// chainRun wires a 3-domain chain A→B→C with a randomized send schedule and
// returns C's arrival log. run drives the group (Run, or chunked RunUntil).
func chainRun(t *testing.T, domains int, run func(g *Group, end sim.Time)) []arrival {
	t.Helper()
	g := NewGroup()
	ds := make([]*Domain, domains)
	for i := range ds {
		ds[i] = g.AddDomain(sim.NewEngine(42))
	}
	var log []arrival
	last := ds[len(ds)-1]
	// Forward channels between consecutive domains; each hop re-sends after
	// a per-hop propagation delay until the packet reaches the tail.
	chans := make([]*Chan, len(ds)-1)
	for i := len(ds) - 2; i >= 0; i-- {
		i := i
		var sink func(fabric.Packet)
		if i == len(ds)-2 {
			sink = func(p fabric.Packet) { log = append(log, arrival{last.Eng.Now(), p.Dst}) }
		} else {
			sink = func(p fabric.Packet) {
				chans[i+1].Send(ds[i+1].Eng.Now().Add(prop), p)
			}
		}
		chans[i] = g.Connect(ds[i], ds[i+1], prop, sink)
	}

	rng := rand.New(rand.NewSource(7))
	end := sim.Time(0)
	for k := 0; k < 200; k++ {
		at := sim.Time(rng.Int63n(int64(5 * sim.Microsecond)))
		k := uint32(k)
		ds[0].Eng.At(at, func() { chans[0].Send(ds[0].Eng.Now().Add(prop), fabric.Packet{Dst: k}) })
		if e := at.Add(sim.Duration(domains-1) * prop); e > end {
			end = e
		}
	}
	run(g, end)
	if err := g.DrainCheck(); err != nil {
		t.Fatal(err)
	}
	return log
}

// TestChainMatchesSerialSchedule compares a 3-domain partitioned run
// against the analytically known serial result (each packet arrives
// source-time + 2*prop, in (time, injection-order) order), and checks that
// chunked RunUntil driving is equivalent to a single Run.
func TestChainMatchesSerialSchedule(t *testing.T) {
	full := chainRun(t, 3, func(g *Group, end sim.Time) { g.Run() })

	chunked := chainRun(t, 3, func(g *Group, end sim.Time) {
		step := 777 * sim.Nanosecond
		for at := sim.Time(0); at < end; at = at.Add(step) {
			g.RunUntil(at)
		}
		g.RunUntil(end)
		g.Run()
	})
	if !reflect.DeepEqual(full, chunked) {
		t.Fatalf("chunked RunUntil diverged from Run:\n full   = %v\n chunked= %v", full, chunked)
	}

	again := chainRun(t, 3, func(g *Group, end sim.Time) { g.Run() })
	if !reflect.DeepEqual(full, again) {
		t.Fatal("two identical partitioned runs diverged — scheduling is nondeterministic")
	}

	// Analytic serial reference: arrivals sorted by (time, injection order).
	if len(full) != 200 {
		t.Fatalf("lost packets: %d arrivals, want 200", len(full))
	}
	for i := 1; i < len(full); i++ {
		if full[i].At < full[i-1].At {
			t.Fatalf("arrivals out of time order at %d: %v after %v", i, full[i], full[i-1])
		}
	}
}

// TestPauseRelayTiming checks that a staged pause/resume pair lands on the
// destination-owned link at exactly the requested virtual times.
func TestPauseRelayTiming(t *testing.T) {
	g := NewGroup()
	a := g.AddDomain(sim.NewEngine(1))
	b := g.AddDomain(sim.NewEngine(1))
	ch := g.Connect(a, b, prop, func(fabric.Packet) {})
	g.Connect(b, a, prop, func(fabric.Packet) {}) // reverse, unused

	// A destination-owned link whose pause state the relay manipulates.
	link := fabric.NewLink(b.Eng, "trunk", 100, prop, 0, func(fabric.Packet) {})

	var pausedAt, resumedAt sim.Time
	a.Eng.At(sim.Time(10*sim.Nanosecond), func() {
		ch.SendPause(a.Eng.Now().Add(prop), link, 3, true)
	})
	a.Eng.At(sim.Time(500*sim.Nanosecond), func() {
		ch.SendPause(a.Eng.Now().Add(prop), link, 3, false)
	})
	// Destination-side probes straddling the expected transitions.
	b.Eng.At(sim.Time(109*sim.Nanosecond), func() {
		if link.PausedTC(3) {
			t.Error("link paused before the relay delay elapsed")
		}
	})
	b.Eng.At(sim.Time(111*sim.Nanosecond), func() {
		if !link.PausedTC(3) {
			t.Error("link not paused after relay delivery")
		}
		pausedAt = b.Eng.Now()
	})
	b.Eng.At(sim.Time(601*sim.Nanosecond), func() {
		if link.PausedTC(3) {
			t.Error("link still paused after relay resume")
		}
		resumedAt = b.Eng.Now()
	})
	g.Run()
	if pausedAt == 0 || resumedAt == 0 {
		t.Fatal("probe events did not fire")
	}
}

// TestSingleDomainDelegates pins the degenerate cases: one domain, or
// several uncoupled domains, behave exactly like direct engine calls.
func TestSingleDomainDelegates(t *testing.T) {
	g := NewGroup()
	d := g.AddDomain(sim.NewEngine(1))
	fired := 0
	d.Eng.At(10, func() { fired++ })
	d.Eng.At(20, func() { fired++ })
	g.RunUntil(15)
	if fired != 1 || d.Eng.Now() != 15 {
		t.Fatalf("single-domain RunUntil: fired=%d now=%v, want 1 and 15", fired, d.Eng.Now())
	}
	g.Run()
	if fired != 2 {
		t.Fatalf("single-domain Run: fired=%d, want 2", fired)
	}

	g2 := NewGroup()
	d1 := g2.AddDomain(sim.NewEngine(1))
	d2 := g2.AddDomain(sim.NewEngine(1))
	n := 0
	d1.Eng.At(5, func() { n++ })
	d2.Eng.At(7, func() { n++ })
	g2.Run() // no channels: independent domains run to completion
	if n != 2 {
		t.Fatalf("uncoupled domains: fired=%d, want 2", n)
	}
	if err := g2.DrainCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestRunUntilAdvancesAllClocks pins the serial RunUntil contract on the
// group: after RunUntil(d) every domain clock reads d even if the domain
// was idle (telemetry snapshots stamp At from the engine clock).
func TestRunUntilAdvancesAllClocks(t *testing.T) {
	g := NewGroup()
	a := g.AddDomain(sim.NewEngine(1))
	b := g.AddDomain(sim.NewEngine(1))
	g.Connect(a, b, prop, func(fabric.Packet) {})
	g.Connect(b, a, prop, func(fabric.Packet) {})
	a.Eng.At(sim.Time(10*sim.Nanosecond), func() {})
	deadline := 2 * sim.Microsecond
	g.RunUntil(sim.Time(0).Add(deadline))
	for i, d := range g.Domains() {
		if d.Eng.Now() != sim.Time(deadline) {
			t.Fatalf("domain %d clock = %v, want %v", i, d.Eng.Now(), deadline)
		}
	}
}

// TestConnectValidation pins the constructor guards.
func TestConnectValidation(t *testing.T) {
	g := NewGroup()
	a := g.AddDomain(sim.NewEngine(1))
	b := g.AddDomain(sim.NewEngine(1))
	mustPanic(t, "zero lookahead", func() { g.Connect(a, b, 0, func(fabric.Packet) {}) })
	mustPanic(t, "self loop", func() { g.Connect(a, a, prop, func(fabric.Packet) {}) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}
