package pcap

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/wire"
)

func TestWriterFormat(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	frame := []byte{1, 2, 3, 4, 5}
	if err := w.WritePacket(sim.Time(1500*sim.Microsecond), frame); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if binary.LittleEndian.Uint32(raw[0:]) != 0xa1b2c3d4 {
		t.Fatal("bad magic")
	}
	if binary.LittleEndian.Uint32(raw[20:]) != LinkTypeEthernet {
		t.Fatal("bad link type")
	}
	// Packet record starts at 24.
	if binary.LittleEndian.Uint32(raw[24+4:]) != 1500 {
		t.Fatalf("usec = %d", binary.LittleEndian.Uint32(raw[24+4:]))
	}
	if binary.LittleEndian.Uint32(raw[24+8:]) != uint32(len(frame)) {
		t.Fatal("bad caplen")
	}
	if !bytes.Equal(raw[24+16:], frame) {
		t.Fatal("bad body")
	}
	if w.Packets() != 1 {
		t.Fatal("packet count")
	}
}

// End to end: tap a live cluster's server NIC, capture covert-channel-like
// traffic, and verify the frames decapsulate back to valid RoCEv2.
func TestTapCapturesParseableFrames(t *testing.T) {
	c := lab.New(lab.DefaultConfig(nic.CX5))
	mr, err := c.RegisterServerMR(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := c.Dial(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var frames [][]byte
	clientNIC := c.Clients[0].NIC()
	clientNIC.Tap = func(at sim.Time, frame []byte) {
		frames = append(frames, append([]byte(nil), frame...))
		if err := w.WritePacket(at, frame); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := conn.QP.PostRead(uint64(i), nil, mr.Describe(uint64(i)*64), 64); err != nil {
			t.Fatal(err)
		}
	}
	c.Eng.Run()
	if len(frames) != 5 {
		t.Fatalf("tapped %d frames, want 5 read requests", len(frames))
	}
	for _, f := range frames {
		transport, ok := wire.DecapsulateUDP(f)
		if !ok {
			t.Fatal("frame not valid RoCEv2 encapsulation")
		}
		p, err := wire.Parse(transport)
		if err != nil {
			t.Fatal(err)
		}
		if p.BTH.Opcode != wire.OpReadRequest {
			t.Fatalf("opcode %#x", p.BTH.Opcode)
		}
		if p.Reth == nil || p.Reth.RKey != mr.RKey() {
			t.Fatalf("RETH = %+v", p.Reth)
		}
	}
	if w.Packets() != 5 {
		t.Fatal("pcap packet count")
	}
}

func TestEncapDecapRoundTrip(t *testing.T) {
	p := &wire.Packet{BTH: wire.BTH{Opcode: wire.OpSendOnly}, Payload: []byte("x")}
	transport, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	frame := wire.Encapsulate(transport, [4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, 50000)
	got, ok := wire.DecapsulateUDP(frame)
	if !ok {
		t.Fatal("decap failed")
	}
	if !bytes.Equal(got, transport) {
		t.Fatal("transport bytes corrupted")
	}
	// Non-RoCE frames must be rejected.
	if _, ok := wire.DecapsulateUDP([]byte{1, 2, 3}); ok {
		t.Fatal("short frame accepted")
	}
}
