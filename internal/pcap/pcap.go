// Package pcap writes classic libpcap capture files (the format Wireshark
// and tcpdump read). Combined with the wire package's byte-exact RoCEv2
// framing, any simulated traffic — including a covert channel in flight —
// can be exported and inspected with standard network tooling.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"

	"github.com/thu-has/ragnar/internal/sim"
)

// LinkTypeEthernet is the pcap link type for Ethernet frames.
const LinkTypeEthernet = 1

// Writer emits one capture file.
type Writer struct {
	w       io.Writer
	packets int
}

// NewWriter writes the global pcap header (microsecond timestamps,
// little-endian magic) and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], 0xa1b2c3d4) // magic
	binary.LittleEndian.PutUint16(hdr[4:], 2)          // major
	binary.LittleEndian.PutUint16(hdr[6:], 4)          // minor
	binary.LittleEndian.PutUint32(hdr[16:], 65535)     // snaplen
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: header: %w", err)
	}
	return &Writer{w: w}, nil
}

// WritePacket records one frame at the given virtual capture time.
func (pw *Writer) WritePacket(at sim.Time, frame []byte) error {
	var hdr [16]byte
	usec := uint64(at) / uint64(sim.Microsecond)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(usec/1e6))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(usec%1e6))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(frame)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(frame)))
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: packet header: %w", err)
	}
	if _, err := pw.w.Write(frame); err != nil {
		return fmt.Errorf("pcap: packet body: %w", err)
	}
	pw.packets++
	return nil
}

// Packets reports how many packets have been written.
func (pw *Writer) Packets() int { return pw.packets }
