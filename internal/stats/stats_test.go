package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Fatalf("mean = %v", m)
	}
	if v := Variance(xs); !almost(v, 4, 1e-12) {
		t.Fatalf("variance = %v", v)
	}
	if sd := StdDev(xs); !almost(sd, 2, 1e-12) {
		t.Fatalf("stddev = %v", sd)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("variance of singleton should be 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 11 {
		t.Fatalf("min/max/sum = %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max should be infinities")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 50); !almost(p, 5.5, 1e-12) {
		t.Fatalf("p50 = %v", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 10 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(xs, 10); !almost(p, 1.9, 1e-12) {
		t.Fatalf("p10 = %v", p)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
}

func TestPercentilesBatch(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	ps := Percentiles(xs, 0, 50, 100)
	if ps[0] != 1 || ps[1] != 3 || ps[2] != 5 {
		t.Fatalf("batch percentiles = %v", ps)
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Fatal("Percentiles mutated input")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil || !almost(r, 1, 1e-12) {
		t.Fatalf("r = %v err = %v", r, err)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almost(r, -1, 1e-12) {
		t.Fatalf("negative r = %v", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("constant series should error")
	}
}

func TestLinearFit(t *testing.T) {
	// y = 3x + 2 exactly.
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 2
	}
	slope, intercept, r, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(slope, 3, 1e-12) || !almost(intercept, 2, 1e-12) || !almost(r, 1, 1e-12) {
		t.Fatalf("fit = %v %v %v", slope, intercept, r)
	}
}

// Property: the ULI linearity assumption — fitting noiseless k*(x)+c data
// always recovers k and c to within floating error.
func TestLinearFitProperty(t *testing.T) {
	f := func(k8, c8 int8, n uint8) bool {
		k, c := float64(k8), float64(c8)
		m := int(n%20) + 2
		xs := make([]float64, m)
		ys := make([]float64, m)
		for i := 0; i < m; i++ {
			xs[i] = float64(i)
			ys[i] = k*float64(i) + c
		}
		slope, intercept, _, err := LinearFit(xs, ys)
		if err != nil {
			return false
		}
		return almost(slope, k, 1e-9) && almost(intercept, c, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{10, 20, 30})
	if out[0] != 0 || out[2] != 1 || !almost(out[1], 0.5, 1e-12) {
		t.Fatalf("normalize = %v", out)
	}
	flat := Normalize([]float64{4, 4})
	if flat[0] != 0.5 || flat[1] != 0.5 {
		t.Fatalf("flat normalize = %v", flat)
	}
}

func TestZScore(t *testing.T) {
	out := ZScore([]float64{1, 2, 3, 4, 5})
	if !almost(Mean(out), 0, 1e-12) || !almost(StdDev(out), 1, 1e-12) {
		t.Fatalf("zscore mean/sd = %v %v", Mean(out), StdDev(out))
	}
	flat := ZScore([]float64{7, 7, 7})
	for _, v := range flat {
		if v != 0 {
			t.Fatalf("flat zscore = %v", flat)
		}
	}
}

func TestMovingAverage(t *testing.T) {
	out := MovingAverage([]float64{1, 2, 3, 4, 5}, 3)
	if !almost(out[2], 3, 1e-12) {
		t.Fatalf("ma center = %v", out[2])
	}
	if !almost(out[0], 1.5, 1e-12) { // edge clamps to [0,1]
		t.Fatalf("ma edge = %v", out[0])
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.5, 0.9, -5, 99}
	h := Histogram(xs, 0, 1, 2)
	// 0.5 falls on the bin boundary and belongs to the upper bin.
	if h[0] != 3 || h[1] != 3 {
		t.Fatalf("histogram = %v", h)
	}
	if n := Sum([]float64{float64(h[0]), float64(h[1])}); n != float64(len(xs)) {
		t.Fatalf("histogram loses samples: %v", h)
	}
}

func TestArgMaxMin(t *testing.T) {
	xs := []float64{3, 9, 1, 9}
	if ArgMax(xs) != 1 {
		t.Fatalf("argmax = %d", ArgMax(xs))
	}
	if ArgMin(xs) != 2 {
		t.Fatalf("argmin = %d", ArgMin(xs))
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Fatal("empty arg should be -1")
	}
}

func TestCrossCorrelate(t *testing.T) {
	template := []float64{1, 2, 3}
	signal := []float64{0, 0, 1, 2, 3, 0, 0}
	xc := CrossCorrelate(signal, template)
	// Pearson is shift/scale invariant, so the exact-match window must score
	// a perfect 1.0 (other monotone windows may tie).
	if !almost(xc[2], 1, 1e-12) {
		t.Fatalf("exact-match correlation = %v (xc=%v)", xc[2], xc)
	}
	if len(xc) != len(signal)-len(template)+1 {
		t.Fatalf("xc length = %d", len(xc))
	}
	if CrossCorrelate([]float64{1}, template) != nil {
		t.Fatal("short signal should give nil")
	}
}

func TestEWMA(t *testing.T) {
	out := EWMA([]float64{1, 1, 1, 10}, 0.5)
	if out[0] != 1 || !almost(out[3], 5.5, 1e-12) {
		t.Fatalf("ewma = %v", out)
	}
}

func TestEWMABadAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("alpha 0 should panic")
		}
	}()
	EWMA([]float64{1}, 0)
}

// Property: Normalize output is always within [0,1].
func TestNormalizeBoundsProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, int(n)+1)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 1000
		}
		for _, v := range Normalize(xs) {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Pearson is symmetric and within [-1, 1].
func TestPearsonRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = rng.Float64()
			ys[i] = rng.Float64()
		}
		r1, err1 := Pearson(xs, ys)
		r2, err2 := Pearson(ys, xs)
		if err1 != nil || err2 != nil {
			return true // constant draw; skip
		}
		return almost(r1, r2, 1e-12) && r1 >= -1-1e-12 && r1 <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTwoMeans(t *testing.T) {
	xs := []float64{1, 1.2, 0.9, 5, 5.1, 4.8, 1.1, 5.2}
	lo, hi, th := TwoMeans(xs)
	if !almost(lo, 1.05, 0.01) || !almost(hi, 5.025, 0.01) {
		t.Fatalf("centroids = %v %v", lo, hi)
	}
	if th <= lo || th >= hi {
		t.Fatalf("threshold %v outside (%v, %v)", th, lo, hi)
	}
	l, h, thr := TwoMeans([]float64{3, 3, 3})
	if l != 3 || h != 3 || thr != 3 {
		t.Fatalf("constant input: %v %v %v", l, h, thr)
	}
	if _, _, z := TwoMeans(nil); z != 0 {
		t.Fatal("empty input should yield zeros")
	}
}
