// Package stats implements the small statistical toolkit the Ragnar
// measurement and decoding pipeline relies on: summary statistics,
// percentiles, Pearson correlation, least-squares fitting, histograms and
// trace normalisation. Everything operates on float64 slices and is
// allocation-conscious so hot decode loops can use it directly.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions over empty inputs.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs; zero for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs; zero for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs; +Inf for empty input.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; -Inf for empty input.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It copies and sorts internally.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return percentileSorted(cp, p)
}

// Percentiles computes several percentiles with a single sort.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	for i, p := range ps {
		out[i] = percentileSorted(cp, p)
	}
	return out
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It errors if the lengths differ, fewer than two points are given, or
// either series is constant.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: constant series")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// LinearFit returns the least-squares line y = slope*x + intercept and the
// Pearson correlation of the fit. It errors on degenerate inputs.
func LinearFit(xs, ys []float64) (slope, intercept, r float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, 0, 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return 0, 0, 0, errors.New("stats: constant x")
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	r, err = Pearson(xs, ys)
	if err != nil {
		// A constant y gives slope 0 and undefined r; report r=0.
		r, err = 0, nil
	}
	return slope, intercept, r, nil
}

// Normalize maps xs linearly onto [0,1]. A constant series maps to all 0.5.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	lo, hi := Min(xs), Max(xs)
	if hi == lo {
		for i := range out {
			out[i] = 0.5
		}
		return out
	}
	for i, x := range xs {
		out[i] = (x - lo) / (hi - lo)
	}
	return out
}

// ZScore standardises xs to zero mean and unit variance. A constant series
// maps to all zeros.
func ZScore(xs []float64) []float64 {
	out := make([]float64, len(xs))
	m, sd := Mean(xs), StdDev(xs)
	if sd == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - m) / sd
	}
	return out
}

// MovingAverage returns the centered moving average of xs with the given
// window (clamped at the edges). window must be >= 1.
func MovingAverage(xs []float64, window int) []float64 {
	if window < 1 {
		panic("stats: window must be >= 1")
	}
	out := make([]float64, len(xs))
	half := window / 2
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		out[i] = Mean(xs[lo : hi+1])
	}
	return out
}

// Histogram counts xs into nbins uniform bins over [lo, hi]. Values outside
// the range clamp to the edge bins.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins < 1 {
		panic("stats: nbins must be >= 1")
	}
	counts := make([]int, nbins)
	if hi <= lo {
		counts[0] = len(xs)
		return counts
	}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}

// ArgMax returns the index of the maximum element; -1 for empty input.
func ArgMax(xs []float64) int {
	best, idx := math.Inf(-1), -1
	for i, x := range xs {
		if x > best {
			best, idx = x, i
		}
	}
	return idx
}

// ArgMin returns the index of the minimum element; -1 for empty input.
func ArgMin(xs []float64) int {
	best, idx := math.Inf(1), -1
	for i, x := range xs {
		if x < best {
			best, idx = x, i
		}
	}
	return idx
}

// CrossCorrelate returns the normalised cross-correlation of a sliding
// template over a signal: out[i] is the Pearson correlation of
// signal[i:i+len(template)] with the template. Positions where the window
// is constant yield 0.
func CrossCorrelate(signal, template []float64) []float64 {
	n := len(signal) - len(template) + 1
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		r, err := Pearson(signal[i:i+len(template)], template)
		if err == nil {
			out[i] = r
		}
	}
	return out
}

// EWMA returns the exponentially weighted moving average of xs with
// smoothing factor alpha in (0,1].
func EWMA(xs []float64, alpha float64) []float64 {
	if alpha <= 0 || alpha > 1 {
		panic("stats: alpha must be in (0,1]")
	}
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	out[0] = xs[0]
	for i := 1; i < len(xs); i++ {
		out[i] = alpha*xs[i] + (1-alpha)*out[i-1]
	}
	return out
}

// TwoMeans runs 1-D 2-means clustering and returns the low and high cluster
// centroids plus the midpoint threshold between them. It is the decoder
// primitive for binary channels whose two symbol states map to different
// observable levels. A constant input yields lo == hi == threshold.
func TwoMeans(xs []float64) (lo, hi, threshold float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	lo, hi = Min(xs), Max(xs)
	if lo == hi {
		return lo, hi, lo
	}
	for iter := 0; iter < 32; iter++ {
		var sumLo, sumHi float64
		var nLo, nHi int
		mid := (lo + hi) / 2
		for _, x := range xs {
			if x <= mid {
				sumLo += x
				nLo++
			} else {
				sumHi += x
				nHi++
			}
		}
		newLo, newHi := lo, hi
		if nLo > 0 {
			newLo = sumLo / float64(nLo)
		}
		if nHi > 0 {
			newHi = sumHi / float64(nHi)
		}
		if newLo == lo && newHi == hi {
			break
		}
		lo, hi = newLo, newHi
	}
	return lo, hi, (lo + hi) / 2
}
