package telemetry

import (
	"testing"

	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/trace"
)

// TestFromMetricsMatchesSnap: the event-derived snapshot and the poll-path
// snapshot describe the same NIC identically on a lossless run. The recorder
// is attached to the client context only, so the registry scopes to exactly
// the NIC Snap reads.
func TestFromMetricsMatchesSnap(t *testing.T) {
	c := lab.New(lab.DefaultConfig(nic.CX4))
	rec := trace.NewRecorder("consistency", trace.DefaultCapacity)
	c.Clients[0].SetRecorder(rec)
	mr, err := c.RegisterServerMR(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := c.Dial(0, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := conn.QP.PostRead(uint64(i), nil, mr.Describe(uint64(i*64)), 256); err != nil {
			t.Fatal(err)
		}
	}
	c.Eng.Run()
	snap := Snap(c.Eng, c.Clients[0].NIC())
	derived := FromMetrics(c.Eng.Now(), rec.Metrics())
	if derived.TxBytes == 0 || derived.RxBytes == 0 {
		t.Fatal("event-derived snapshot saw no traffic")
	}
	if !ConsistentWith(snap, derived) {
		t.Fatalf("poll path and event path disagree:\n snap    %+v\n derived %+v", snap, derived)
	}
}

// TestFromMetricsMatchesSnapLossy: the consistency holds through loss
// recovery — retransmissions, timeouts, duplicate ACKs and per-TC wire drops
// derived from events equal the NIC counters. The client's egress link gets
// the recorder too, since Snap folds that link's drop counters into the
// client's WireDropsTC.
func TestFromMetricsMatchesSnapLossy(t *testing.T) {
	c := lab.New(lab.DefaultConfig(nic.CX4))
	rec := trace.NewRecorder("consistency-lossy", trace.DefaultCapacity)
	c.Clients[0].SetRecorder(rec)
	c.Links[0].SetRecorder(rec) // client0 -> server, the client's egress
	mr, err := c.RegisterServerMR(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := c.Dial(0, 48)
	if err != nil {
		t.Fatal(err)
	}
	c.InjectLoss(21, 0.25)
	if err := conn.QP.SetRetry(5*sim.Microsecond, 50); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256)
	for i := 0; i < 40; i++ {
		if err := conn.QP.PostWrite(uint64(i), data, mr.Describe(0), len(data)); err != nil {
			t.Fatal(err)
		}
	}
	c.Eng.Run()
	snap := Snap(c.Eng, c.Clients[0].NIC())
	derived := FromMetrics(c.Eng.Now(), rec.Metrics())
	if derived.Retransmits == 0 {
		t.Fatal("25% loss produced no event-derived retransmissions")
	}
	var drops uint64
	for _, v := range derived.WireDropsTC {
		drops += v
	}
	if drops == 0 {
		t.Fatal("25% loss left event-derived WireDropsTC at zero")
	}
	if !ConsistentWith(snap, derived) {
		t.Fatalf("poll path and event path disagree under loss:\n snap    %+v\n derived %+v", snap, derived)
	}
}

// TestFromMetricsNil: a nil registry yields an empty snapshot (consistent
// with a freshly built NIC).
func TestFromMetricsNil(t *testing.T) {
	s := FromMetrics(0, nil)
	if !ConsistentWith(s, Snapshot{PerOpcode: map[nic.Opcode]uint64{}}) {
		t.Fatal("nil metrics should derive a zero snapshot")
	}
	if s.PerOpcode == nil || s.PerQP == nil || s.PerMR == nil {
		t.Fatal("maps must be non-nil for Delta compatibility")
	}
}
