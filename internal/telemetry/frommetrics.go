package telemetry

import (
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/trace"
)

// FromMetrics derives a counter snapshot from a flight recorder's unified
// metrics registry — the same event stream that feeds the trace export, so
// the two views can never disagree. The registry covers exactly the NICs and
// links whose recorders were attached: attach to one context to get that
// NIC's ethtool view, to a whole cluster to get the fabric-wide aggregate.
//
// The Grain-II/III maps (PerOpcode, PerQP, PerMR) stay empty: the registry
// is fixed-size arrays so the emit path never allocates, and those grains
// remain the NIC poll path's job (Snap). ConsistentWith checks the shared
// fields.
func FromMetrics(at sim.Time, m *trace.Metrics) Snapshot {
	s := Snapshot{
		At:        at,
		PerOpcode: map[nic.Opcode]uint64{},
		PerQP:     map[uint32]uint64{},
		PerMR:     map[uint32]uint64{},
	}
	if m == nil {
		return s
	}
	s.TxBytes = m.TxBytes
	s.RxBytes = m.RxBytes
	s.PerTC = m.RxBytesTC
	s.PFCPauses = m.PFCPauses
	s.WireDropsTC = m.WireDropsTC
	s.Retransmits = m.Retransmits()
	s.Timeouts = m.Timeouts()
	s.SeqNaks = m.SeqNaks()
	s.DupAcks = m.DupAcks()
	s.RetryExc = m.RetryExc()
	s.RxCorrupt = m.RxCorrupt()
	return s
}

// ConsistentWith reports whether two snapshots agree on every field the
// metrics registry derives (bytes, per-TC volume, PFC, loss and transport
// observables). It is the single-source-of-truth check: a poll-path Snap and
// an event-derived FromMetrics over the same NIC must satisfy it.
func ConsistentWith(a, b Snapshot) bool {
	if a.TxBytes != b.TxBytes || a.RxBytes != b.RxBytes {
		return false
	}
	if a.PerTC != b.PerTC || a.PFCPauses != b.PFCPauses || a.WireDropsTC != b.WireDropsTC {
		return false
	}
	return a.Retransmits == b.Retransmits && a.Timeouts == b.Timeouts &&
		a.SeqNaks == b.SeqNaks && a.DupAcks == b.DupAcks &&
		a.RetryExc == b.RetryExc && a.RxCorrupt == b.RxCorrupt
}
