package telemetry

import (
	"testing"

	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
)

// TestDeltaEdgeCases table-drives Delta over the awkward inputs: counters
// that wrapped uint64 between snapshots (unsigned subtraction must still
// yield the true increment), keys that appear only in the newer snapshot,
// and zero-width windows.
func TestDeltaEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		prev, cur Snapshot
		check     func(t *testing.T, d Snapshot)
	}{
		{
			name: "counter wrap yields modular increment",
			prev: Snapshot{TxBytes: ^uint64(0) - 5, RxBytes: ^uint64(0),
				Retransmits: ^uint64(0) - 1},
			cur: Snapshot{TxBytes: 10, RxBytes: 3, Retransmits: 2},
			check: func(t *testing.T, d Snapshot) {
				if d.TxBytes != 16 {
					t.Fatalf("TxBytes delta across wrap = %d, want 16", d.TxBytes)
				}
				if d.RxBytes != 4 {
					t.Fatalf("RxBytes delta across wrap = %d, want 4", d.RxBytes)
				}
				if d.Retransmits != 4 {
					t.Fatalf("Retransmits delta across wrap = %d, want 4", d.Retransmits)
				}
			},
		},
		{
			name: "per-TC wrap",
			prev: Snapshot{PerTC: [8]uint64{3: ^uint64(0) - 1}},
			cur:  Snapshot{PerTC: [8]uint64{3: 8}},
			check: func(t *testing.T, d Snapshot) {
				if d.PerTC[3] != 10 {
					t.Fatalf("PerTC[3] delta = %d, want 10", d.PerTC[3])
				}
			},
		},
		{
			name: "new map keys count from zero",
			prev: Snapshot{},
			cur: Snapshot{
				PerOpcode: map[nic.Opcode]uint64{nic.OpRead: 7},
				PerQP:     map[uint32]uint64{9: 4},
				PerMR:     map[uint32]uint64{77: 640},
			},
			check: func(t *testing.T, d Snapshot) {
				if d.PerOpcode[nic.OpRead] != 7 || d.PerQP[9] != 4 || d.PerMR[77] != 640 {
					t.Fatalf("new-key deltas wrong: %+v", d)
				}
			},
		},
		{
			name: "identical snapshots delta to zero",
			prev: Snapshot{TxBytes: 100, SeqNaks: 5, PerTC: [8]uint64{1: 50}},
			cur:  Snapshot{TxBytes: 100, SeqNaks: 5, PerTC: [8]uint64{1: 50}},
			check: func(t *testing.T, d Snapshot) {
				if d.TxBytes != 0 || d.SeqNaks != 0 || d.PerTC[1] != 0 {
					t.Fatalf("zero delta expected, got %+v", d)
				}
			},
		},
		{
			name: "delta keeps the newer timestamp",
			prev: Snapshot{At: 100},
			cur:  Snapshot{At: 250},
			check: func(t *testing.T, d Snapshot) {
				if d.At != 250 {
					t.Fatalf("At = %v, want 250", d.At)
				}
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { c.check(t, Delta(c.prev, c.cur)) })
	}
}

// TestWindowedDeltasEdgeCases: short series must not panic or invent
// windows — an empty or single-snapshot series has no deltas.
func TestWindowedDeltasEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		series []Snapshot
		want   int
	}{
		{"nil series", nil, 0},
		{"empty series", []Snapshot{}, 0},
		{"single snapshot", []Snapshot{{TxBytes: 42}}, 0},
		{"two snapshots one window", []Snapshot{{TxBytes: 10}, {TxBytes: 30}}, 1},
		{"five snapshots four windows", make([]Snapshot, 5), 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := WindowedDeltas(c.series)
			if len(got) != c.want {
				t.Fatalf("windows = %d, want %d", len(got), c.want)
			}
		})
	}
	two := WindowedDeltas([]Snapshot{{TxBytes: 10}, {TxBytes: 30}})
	if two[0].TxBytes != 20 {
		t.Fatalf("window delta = %d, want 20", two[0].TxBytes)
	}
}

// TestRateGbpsGuards pins the zero- and negative-window guard plus the unit
// conversion.
func TestRateGbpsGuards(t *testing.T) {
	cases := []struct {
		name   string
		d      Snapshot
		window int64 // picoseconds
		want   float64
	}{
		{"zero window", Snapshot{RxBytes: 1 << 30}, 0, 0},
		{"negative window", Snapshot{RxBytes: 1 << 30}, -1000, 0},
		{"one GB in one second is 8 Gbps", Snapshot{RxBytes: 1e9}, 1e12, 8},
		{"empty window is zero", Snapshot{}, 1e12, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := RateGbps(c.d, sim.Duration(c.window)); got != c.want {
				t.Fatalf("RateGbps = %v, want %v", got, c.want)
			}
		})
	}
}
