package telemetry

import (
	"testing"

	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/traffic"
)

func TestSnapAndDelta(t *testing.T) {
	c := lab.New(lab.DefaultConfig(nic.CX4))
	mr, err := c.RegisterServerMR(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := c.Dial(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	before := Snap(c.Eng, c.Server.NIC())
	for i := 0; i < 10; i++ {
		if err := conn.QP.PostRead(uint64(i), nil, mr.Describe(uint64(i*64)), 64); err != nil {
			t.Fatal(err)
		}
	}
	c.Eng.Run()
	after := Snap(c.Eng, c.Server.NIC())
	d := Delta(before, after)
	if d.PerOpcode[nic.OpRead] != 10 {
		t.Fatalf("opcode delta = %d", d.PerOpcode[nic.OpRead])
	}
	if d.PerMR[mr.RKey()] != 640 {
		t.Fatalf("MR bytes delta = %d", d.PerMR[mr.RKey()])
	}
	if d.RxBytes == 0 || d.TxBytes == 0 {
		t.Fatal("volume counters did not move")
	}
}

func TestSamplerWindows(t *testing.T) {
	c := lab.New(lab.DefaultConfig(nic.CX4))
	mr, err := c.RegisterServerMR(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := c.Dial(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Warm(conn, mr); err != nil {
		t.Fatal(err)
	}
	gen := &traffic.Generator{
		QP: conn.QP, CQ: conn.CQ, Op: nic.OpRead, MsgSize: 512, Depth: 4,
		Next: traffic.FixedTarget(mr.Describe(0)),
	}
	s := NewSampler(c.Eng, c.Server.NIC(), 20*sim.Microsecond, 5)
	if err := gen.Start(); err != nil {
		t.Fatal(err)
	}
	c.Eng.RunFor(120 * sim.Microsecond)
	gen.Stop()
	deltas := s.Deltas()
	if len(deltas) != 5 {
		t.Fatalf("got %d windows", len(deltas))
	}
	// Under a steady generator every interior window carries traffic.
	for i, d := range deltas {
		if d.PerOpcode[nic.OpRead] == 0 {
			t.Fatalf("window %d saw no reads", i)
		}
	}
	if RateGbps(deltas[1], 20*sim.Microsecond) <= 0 {
		t.Fatal("rate conversion broken")
	}
}

func TestRateGbpsZeroWindow(t *testing.T) {
	if RateGbps(Snapshot{RxBytes: 100}, 0) != 0 {
		t.Fatal("zero window should yield 0")
	}
}

// TestSnapshotTransportCounters: the reliability-layer observables — per-TC
// wire drops, retransmissions, timeouts, NAKs, duplicate ACKs — flow from the
// NIC counters into Snapshot/Delta like any other Grain-I series.
func TestSnapshotTransportCounters(t *testing.T) {
	c := lab.New(lab.DefaultConfig(nic.CX4))
	mr, err := c.RegisterServerMR(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := c.Dial(0, 48)
	if err != nil {
		t.Fatal(err)
	}
	c.InjectLoss(21, 0.25)
	if err := conn.QP.SetRetry(5*sim.Microsecond, 50); err != nil {
		t.Fatal(err)
	}
	clientNIC := c.Clients[0].NIC()
	before := Snap(c.Eng, clientNIC)
	data := make([]byte, 256)
	for i := 0; i < 40; i++ {
		if err := conn.QP.PostWrite(uint64(i), data, mr.Describe(0), len(data)); err != nil {
			t.Fatal(err)
		}
	}
	c.Eng.Run()
	d := Delta(before, Snap(c.Eng, clientNIC))
	var drops uint64
	for _, v := range d.WireDropsTC {
		drops += v
	}
	if drops == 0 {
		t.Fatal("25% loss left WireDropsTC at zero")
	}
	if d.Retransmits == 0 {
		t.Fatal("25% loss produced no retransmissions")
	}
	if d.Retransmits < d.Timeouts {
		t.Fatalf("timeouts %d without matching retransmissions %d", d.Timeouts, d.Retransmits)
	}
	// The loss-free control: a second cluster with no plan moves none of the
	// transport counters.
	c2 := lab.New(lab.DefaultConfig(nic.CX4))
	mr2, err := c2.RegisterServerMR(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	conn2, err := c2.Dial(0, 48)
	if err != nil {
		t.Fatal(err)
	}
	b2 := Snap(c2.Eng, c2.Clients[0].NIC())
	for i := 0; i < 40; i++ {
		if err := conn2.QP.PostWrite(uint64(i), data, mr2.Describe(0), len(data)); err != nil {
			t.Fatal(err)
		}
	}
	c2.Eng.Run()
	d2 := Delta(b2, Snap(c2.Eng, c2.Clients[0].NIC()))
	if d2.Retransmits != 0 || d2.Timeouts != 0 || d2.SeqNaks != 0 || d2.DupAcks != 0 || d2.RetryExc != 0 || d2.RxCorrupt != 0 {
		t.Fatalf("lossless run moved transport counters: %+v", d2)
	}
	for tc, v := range d2.WireDropsTC {
		if v != 0 {
			t.Fatalf("lossless run dropped on TC %d", tc)
		}
	}
}
