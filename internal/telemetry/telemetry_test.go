package telemetry

import (
	"testing"

	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/traffic"
)

func TestSnapAndDelta(t *testing.T) {
	c := lab.New(lab.DefaultConfig(nic.CX4))
	mr, err := c.RegisterServerMR(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := c.Dial(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	before := Snap(c.Eng, c.Server.NIC())
	for i := 0; i < 10; i++ {
		if err := conn.QP.PostRead(uint64(i), nil, mr.Describe(uint64(i*64)), 64); err != nil {
			t.Fatal(err)
		}
	}
	c.Eng.Run()
	after := Snap(c.Eng, c.Server.NIC())
	d := Delta(before, after)
	if d.PerOpcode[nic.OpRead] != 10 {
		t.Fatalf("opcode delta = %d", d.PerOpcode[nic.OpRead])
	}
	if d.PerMR[mr.RKey()] != 640 {
		t.Fatalf("MR bytes delta = %d", d.PerMR[mr.RKey()])
	}
	if d.RxBytes == 0 || d.TxBytes == 0 {
		t.Fatal("volume counters did not move")
	}
}

func TestSamplerWindows(t *testing.T) {
	c := lab.New(lab.DefaultConfig(nic.CX4))
	mr, err := c.RegisterServerMR(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := c.Dial(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Warm(conn, mr); err != nil {
		t.Fatal(err)
	}
	gen := &traffic.Generator{
		QP: conn.QP, CQ: conn.CQ, Op: nic.OpRead, MsgSize: 512, Depth: 4,
		Next: traffic.FixedTarget(mr.Describe(0)),
	}
	s := NewSampler(c.Eng, c.Server.NIC(), 20*sim.Microsecond, 5)
	if err := gen.Start(); err != nil {
		t.Fatal(err)
	}
	c.Eng.RunFor(120 * sim.Microsecond)
	gen.Stop()
	deltas := s.Deltas()
	if len(deltas) != 5 {
		t.Fatalf("got %d windows", len(deltas))
	}
	// Under a steady generator every interior window carries traffic.
	for i, d := range deltas {
		if d.PerOpcode[nic.OpRead] == 0 {
			t.Fatalf("window %d saw no reads", i)
		}
	}
	if RateGbps(deltas[1], 20*sim.Microsecond) <= 0 {
		t.Fatal("rate conversion broken")
	}
}

func TestRateGbpsZeroWindow(t *testing.T) {
	if RateGbps(Snapshot{RxBytes: 100}, 0) != 0 {
		t.Fatal("zero window should yield 0")
	}
}
