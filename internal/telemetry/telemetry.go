// Package telemetry provides the ethtool/HARMONIC-style counter view of a
// simulated RNIC: point-in-time snapshots of Grain-I (volume), Grain-II
// (per-opcode) and Grain-III (per-QP/MR) counters, window deltas, and a
// periodic sampler that records a series while the simulation runs. The
// defense package builds its detectors on these; command-line tools print
// them.
package telemetry

import (
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
)

// Snapshot is one reading of the counters a defender can see.
type Snapshot struct {
	At        sim.Time
	TxBytes   uint64
	RxBytes   uint64
	PerTC     [8]uint64             // Grain-I: ingress bytes per traffic class
	PFCPauses [8]uint64             // Grain-I: flow-control pause events
	PerOpcode map[nic.Opcode]uint64 // Grain-II: messages received per opcode
	PerQP     map[uint32]uint64     // Grain-III: messages per QP
	PerMR     map[uint32]uint64     // Grain-III: bytes per MR

	// Grain-I loss/reliability observables (ethtool tx_discards and
	// transport retransmit counters). All zero on a lossless fabric.
	WireDropsTC [8]uint64 // per-TC egress wire loss (tail + fault drops)
	Retransmits uint64    // requester packets re-sent
	Timeouts    uint64    // retransmit timer expiries
	SeqNaks     uint64    // NAK-sequence-errors sent by the responder
	DupAcks     uint64    // duplicate ACKs coalesced by the requester
	RetryExc    uint64    // QPs that exhausted their retry budget
	RxCorrupt   uint64    // inbound packets discarded for corruption

	// Abuse observables (NeVerMore protocol-abuse surface): structurally
	// zero under benign operation and under random wire loss, which makes
	// them the markers that separate injection attacks from congestion.
	RxBadQP     uint64 // requests addressed to a QPN that was never created
	InvalidNaks uint64 // NAK-seq rejected (gap head not outstanding)
	InvalidAcks uint64 // responses rejected for a PSN mismatch
	RxBadPSN    uint64 // requests at the unordered half-space PSN distance

	// Finite-resource observables (the exhaustion surface): ICM context
	// cache traffic, translation misses and completion-queue overruns.
	CtxHits      uint64 // context cache hits
	CtxMisses    uint64 // context cache misses (each cost a DMA fetch)
	CtxEvictions uint64 // contexts evicted under capacity pressure
	MTTMisses    uint64 // translation-cache misses
	CQOverruns   uint64 // completions dropped at full CQs

	// Encryption observables (AES-per-verb profiles only; structurally
	// zero everywhere else).
	EncOps   uint64 // messages that paid the AES latency
	EncBytes uint64 // payload bytes enciphered

	// RedN offload observables (chain workloads only; structurally zero
	// everywhere else).
	WaitWQEs     uint64 // WAIT management WQEs executed
	EnableWQEs   uint64 // ENABLE management WQEs executed
	WaitWakes    uint64 // armed WAITs woken by a CQ-counter bump
	SelfModifies uint64 // staged WQEs rewritten through an SQ window
}

// Snap reads the current counter state of a NIC.
func Snap(eng *sim.Engine, n *nic.NIC) Snapshot {
	c := n.Counters()
	s := Snapshot{
		At:        eng.Now(),
		TxBytes:   c.TxBytes,
		RxBytes:   c.RxBytes,
		PerOpcode: map[nic.Opcode]uint64{},
		PerQP:     map[uint32]uint64{},
		PerMR:     map[uint32]uint64{},
	}
	s.PerTC = c.RxBytesTC
	s.PFCPauses = c.PFCPauses
	s.WireDropsTC = c.WireDropsTC
	s.Retransmits = c.Retransmits
	s.Timeouts = c.Timeouts
	s.SeqNaks = c.SeqNaks
	s.DupAcks = c.DupAcks
	s.RetryExc = c.RetryExc
	s.RxCorrupt = c.RxCorrupt
	s.RxBadQP = c.RxBadQP
	s.InvalidNaks = c.InvalidNaks
	s.InvalidAcks = c.InvalidAcks
	s.RxBadPSN = c.RxBadPSN
	s.CtxHits = c.CtxHits
	s.CtxMisses = c.CtxMisses
	s.CtxEvictions = c.CtxEvictions
	s.MTTMisses = c.MTTMisses
	s.CQOverruns = c.CQOverruns
	s.EncOps = c.EncOps
	s.EncBytes = c.EncBytes
	s.WaitWQEs = c.WaitWQEs
	s.EnableWQEs = c.EnableWQEs
	s.WaitWakes = c.WaitWakes
	s.SelfModifies = c.SelfModifies
	for k, v := range c.RxMsgs {
		s.PerOpcode[k] = v
	}
	for k, v := range c.PerQPMsgs {
		s.PerQP[k] = v
	}
	for k, v := range c.PerMRBytes {
		s.PerMR[k] = v
	}
	return s
}

// Delta returns the per-window counter increments between two snapshots.
func Delta(prev, cur Snapshot) Snapshot {
	d := Snapshot{
		At:        cur.At,
		TxBytes:   cur.TxBytes - prev.TxBytes,
		RxBytes:   cur.RxBytes - prev.RxBytes,
		PerOpcode: map[nic.Opcode]uint64{},
		PerQP:     map[uint32]uint64{},
		PerMR:     map[uint32]uint64{},
	}
	d.Retransmits = cur.Retransmits - prev.Retransmits
	d.Timeouts = cur.Timeouts - prev.Timeouts
	d.SeqNaks = cur.SeqNaks - prev.SeqNaks
	d.DupAcks = cur.DupAcks - prev.DupAcks
	d.RetryExc = cur.RetryExc - prev.RetryExc
	d.RxCorrupt = cur.RxCorrupt - prev.RxCorrupt
	d.RxBadQP = cur.RxBadQP - prev.RxBadQP
	d.InvalidNaks = cur.InvalidNaks - prev.InvalidNaks
	d.InvalidAcks = cur.InvalidAcks - prev.InvalidAcks
	d.RxBadPSN = cur.RxBadPSN - prev.RxBadPSN
	d.CtxHits = cur.CtxHits - prev.CtxHits
	d.CtxMisses = cur.CtxMisses - prev.CtxMisses
	d.CtxEvictions = cur.CtxEvictions - prev.CtxEvictions
	d.MTTMisses = cur.MTTMisses - prev.MTTMisses
	d.CQOverruns = cur.CQOverruns - prev.CQOverruns
	d.EncOps = cur.EncOps - prev.EncOps
	d.EncBytes = cur.EncBytes - prev.EncBytes
	d.WaitWQEs = cur.WaitWQEs - prev.WaitWQEs
	d.EnableWQEs = cur.EnableWQEs - prev.EnableWQEs
	d.WaitWakes = cur.WaitWakes - prev.WaitWakes
	d.SelfModifies = cur.SelfModifies - prev.SelfModifies
	for i := range cur.PerTC {
		d.PerTC[i] = cur.PerTC[i] - prev.PerTC[i]
		d.PFCPauses[i] = cur.PFCPauses[i] - prev.PFCPauses[i]
		d.WireDropsTC[i] = cur.WireDropsTC[i] - prev.WireDropsTC[i]
	}
	for k, v := range cur.PerOpcode {
		d.PerOpcode[k] = v - prev.PerOpcode[k]
	}
	for k, v := range cur.PerQP {
		d.PerQP[k] = v - prev.PerQP[k]
	}
	for k, v := range cur.PerMR {
		d.PerMR[k] = v - prev.PerMR[k]
	}
	return d
}

// WindowedDeltas converts a snapshot series into per-window deltas.
func WindowedDeltas(series []Snapshot) []Snapshot {
	var out []Snapshot
	for i := 1; i < len(series); i++ {
		out = append(out, Delta(series[i-1], series[i]))
	}
	return out
}

// Sampler schedules periodic snapshots of a NIC. Snapshots fire as
// simulation events while other actors run.
type Sampler struct {
	Series []Snapshot
}

// NewSampler arms n windows of the given width starting now. The returned
// sampler's Series fills as the engine advances past each boundary.
func NewSampler(eng *sim.Engine, n *nic.NIC, window sim.Duration, windows int) *Sampler {
	s := &Sampler{}
	s.Series = append(s.Series, Snap(eng, n))
	for w := 1; w <= windows; w++ {
		eng.At(eng.Now().Add(window*sim.Duration(w)), func() {
			s.Series = append(s.Series, Snap(eng, n))
		})
	}
	return s
}

// Deltas returns the currently recorded window deltas.
func (s *Sampler) Deltas() []Snapshot { return WindowedDeltas(s.Series) }

// RateGbps converts a delta's RxBytes to Gbps given the window width.
func RateGbps(d Snapshot, window sim.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(d.RxBytes) * 8 / window.Seconds() / 1e9
}
