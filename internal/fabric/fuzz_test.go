package fabric

import (
	"fmt"
	"testing"

	"github.com/thu-has/ragnar/internal/sim"
)

// FuzzSwitchForward drives a randomly parameterised star of hosts behind one
// switch with a random packet schedule and checks the invariants that must
// hold on ANY input:
//
//   - no packet is ever delivered twice (forwarding cannot duplicate);
//   - packet conservation: everything injected is delivered or accounted to
//     an explicit drop counter (unroutable, shared-buffer, in-flight fault),
//     with exact byte conservation when no fault plan is installed;
//   - PFC never deadlocks: once the engine quiesces, every upstream and
//     egress queue is empty and the shared buffer reads zero — a pause that
//     never released would strand packets and fail these checks.
//
// The input bytes are consumed cyclically: the first few pick the topology
// and switch thresholds (small shared buffer and XOFF so admission drops and
// pause/resume cycles are common), the rest schedule packets.
func FuzzSwitchForward(f *testing.F) {
	f.Add([]byte{2, 0, 3, 16, 0, 1, 3, 10, 2, 1, 0, 40, 7, 3})
	f.Add([]byte{4, 1, 0, 2, 200, 3, 0, 0, 60, 1, 2, 7, 255, 9, 9, 9, 0, 0, 1, 2, 3, 4, 5, 6})
	f.Add([]byte{3, 2, 7, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			t.Skip("not enough bytes to parameterise a rig")
		}
		pos := 0
		next := func() byte { b := data[pos%len(data)]; pos++; return b }

		e := sim.NewEngine(1)
		nPorts := 2 + int(next())%3 // 2..4 hosts
		lossy := next()&1 == 1
		sw := NewSwitch(e, SwitchConfig{
			Name:           "fuzz",
			FwdDelay:       sim.Duration(next()%8) * 100 * sim.Nanosecond,
			SharedBufBytes: 4096 + int(next())*64,
			XOffBytes:      512 + int(next())*16,
		})

		type portState struct {
			up        *Link
			delivered uint64
			bytes     uint64
		}
		ports := make([]*portState, nPorts)
		seen := make(map[int]bool)
		dup := -1
		for i := 0; i < nPorts; i++ {
			ps := &portState{}
			rate := 1 + float64(next()%100)
			port := sw.AddPort(fmt.Sprintf("h%d", i), rate, 50*sim.Nanosecond, 0, DefaultQoS(),
				func(p Packet) {
					ps.delivered++
					ps.bytes += uint64(p.Bytes)
					id := p.Payload.(int)
					if seen[id] {
						dup = id
					}
					seen[id] = true
				})
			ps.up = NewLink(e, fmt.Sprintf("h%d->fuzz", i), rate, 50*sim.Nanosecond, 0, sw.Ingress)
			sw.SetUpstream(port, ps.up)
			sw.Route(uint32(i), port)
			ports[i] = ps
		}
		if lossy {
			for i := 0; i < nPorts; i++ {
				plan := UniformLoss(int64(i+1), float64(next()%32)/100)
				sw.EgressLink(i).SetFaultPlan(&plan)
			}
		}

		// Schedule injections at strictly increasing times: src host, routed
		// or deliberately unroutable destination, TC, size and gap all come
		// from the input stream.
		nPkts := len(data) / 3
		if nPkts > 2048 {
			nPkts = 2048
		}
		var injected, injBytes uint64
		at := sim.Time(0)
		for id := 0; id < nPkts; id++ {
			src := int(next()) % nPorts
			dst := uint32(next()) % uint32(nPorts+1) // == nPorts: unroutable
			p := Packet{
				TC:      int(next()) % NumTCs,
				Bytes:   64 + int(next())*8,
				Dst:     dst,
				Payload: id,
			}
			at = at.Add(sim.Duration(1+int(next())%64) * 10 * sim.Nanosecond)
			injected++
			injBytes += uint64(p.Bytes)
			up := ports[src].up
			e.At(at, func() {
				if err := up.Send(p); err != nil {
					t.Errorf("unbounded upstream rejected %+v: %v", p, err)
				}
			})
		}
		e.Run()

		if dup >= 0 {
			t.Fatalf("packet %d delivered twice", dup)
		}
		// Quiescence must mean fully drained: PFC pauses all released, no
		// packet stranded in any queue, shared buffer empty.
		if sw.BufUsed() != 0 {
			t.Fatalf("engine quiesced with %d bytes in the shared buffer", sw.BufUsed())
		}
		for i, ps := range ports {
			for tc := 0; tc < NumTCs; tc++ {
				if n := ps.up.QueueLen(tc); n != 0 {
					t.Fatalf("host %d upstream TC %d strands %d packets (PFC deadlock?)", i, tc, n)
				}
				if n := sw.EgressLink(i).QueueLen(tc); n != 0 {
					t.Fatalf("port %d egress TC %d strands %d packets", i, tc, n)
				}
				if sw.PortBacklog(i, tc) != 0 {
					t.Fatalf("port %d TC %d backlog accounting nonzero after drain", i, tc)
				}
			}
		}
		// Packet conservation through the admission and forwarding stages.
		var bufDrops, faultDrops, delivered, deliveredBytes uint64
		for tc := 0; tc < NumTCs; tc++ {
			bufDrops += sw.BufDrops(tc)
		}
		for i, ps := range ports {
			delivered += ps.delivered
			deliveredBytes += ps.bytes
			for tc := 0; tc < NumTCs; tc++ {
				faultDrops += sw.EgressLink(i).FaultDrops(tc)
			}
		}
		if got := sw.FwdPackets() + sw.Unroutable() + bufDrops; got != injected {
			t.Fatalf("admission accounting: fwd %d + unroutable %d + bufdrop %d != injected %d",
				sw.FwdPackets(), sw.Unroutable(), bufDrops, injected)
		}
		if delivered != sw.FwdPackets()-faultDrops {
			t.Fatalf("delivered %d packets, want %d admitted - %d fault-dropped",
				delivered, sw.FwdPackets(), faultDrops)
		}
		if !lossy && deliveredBytes != sw.FwdBytes() {
			t.Fatalf("byte conservation at 0 loss: delivered %d bytes, admitted %d",
				deliveredBytes, sw.FwdBytes())
		}
	})
}
