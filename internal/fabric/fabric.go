// Package fabric models the wire between RNICs: full-duplex links with a
// line rate, propagation delay, and an egress scheduler implementing ETS
// (Enhanced Transmission Selection, 802.1Qaz) across eight traffic classes —
// the same knobs mlnx_qos exposes on ConnectX adapters. The paper's Grain-I/II
// experiments configure two flows in ETS mode at 50 % bandwidth each and then
// observe that the NIC-internal arbiters, not the wire scheduler, produce the
// unbalanced outcomes; reproducing that requires a faithful wire-level ETS so
// the imbalance can be attributed to the NIC model.
package fabric

import (
	"fmt"
	"math/rand"

	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/trace"
)

// NumTCs is the number of 802.1p traffic classes.
const NumTCs = 8

// Packet is one unit on the wire. Payload is opaque to the fabric; the
// receiving NIC interprets it.
type Packet struct {
	TC    int // traffic class 0..7
	Bytes int // wire size including headers
	// Dst is the fabric-level destination address (assigned per NIC by
	// verbs.Network). Direct point-to-point links ignore it; switches use it
	// for forwarding-table lookups without interpreting the payload.
	Dst uint32
	// Flow is a stable flow label stamped by the sending NIC (derived from
	// the QP pair). Switches with ECMP port groups hash it to pick an egress,
	// so one flow always takes one path — flow-level multipath, never
	// per-packet spraying (which would reorder and trigger go-back-N).
	Flow    uint32
	Payload any
	// Corrupt marks a packet whose payload integrity was lost in flight
	// (FaultPlan corruption). The receiving NIC must treat it like an ICRC
	// failure: discard without interpreting the payload.
	Corrupt bool

	// enqueuedAt stamps when the packet joined its TC queue, feeding the
	// flight recorder's per-TC queueing-delay histogram. Tracing-only: it
	// never influences scheduling.
	enqueuedAt sim.Time
}

// FaultPlan describes deterministic, seed-driven wire impairment applied to a
// link on top of the tail-drop path: per-TC probabilistic drop, optional burst
// loss (one drop decision takes out BurstLen consecutive packets of that TC),
// and per-TC probabilistic corruption. The plan owns its own RNG stream,
// derived only from Seed — it never touches the engine's RNG, so a link with
// a nil or all-zero plan is event-for-event identical to an unimpaired link.
type FaultPlan struct {
	Seed        int64
	DropProb    [NumTCs]float64
	CorruptProb [NumTCs]float64
	BurstLen    int // packets lost per drop decision; 0 or 1 means single loss
}

// UniformLoss is a convenience FaultPlan dropping every TC with the same
// probability.
func UniformLoss(seed int64, prob float64) FaultPlan {
	p := FaultPlan{Seed: seed}
	for tc := range p.DropProb {
		p.DropProb[tc] = prob
	}
	return p
}

// SchedulerMode selects how a traffic class is served.
type SchedulerMode int

const (
	// ETS serves the class by deficit-weighted round robin using its weight.
	ETS SchedulerMode = iota
	// Strict serves the class ahead of all ETS classes (and ahead of
	// higher-numbered strict classes).
	Strict
)

// QoSConfig mirrors an mlnx_qos configuration: per-TC mode and ETS weight
// (percent, ETS classes should sum to 100 but the scheduler normalises).
type QoSConfig struct {
	Mode   [NumTCs]SchedulerMode
	Weight [NumTCs]int
}

// DefaultQoS gives every class ETS mode with equal weights.
func DefaultQoS() QoSConfig {
	var q QoSConfig
	for i := range q.Weight {
		q.Weight[i] = 100 / NumTCs
	}
	return q
}

// SplitQoS reproduces the paper's two-flow setup: tcA and tcB each get 50 %.
func SplitQoS(tcA, tcB int) QoSConfig {
	var q QoSConfig
	q.Weight[tcA] = 50
	q.Weight[tcB] = 50
	return q
}

// Link is one direction of a wire: packets enqueue per TC and drain at the
// line rate under the ETS scheduler, then arrive at the sink after the
// propagation delay.
type Link struct {
	eng       *sim.Engine
	name      string
	rateGbps  float64
	propDelay sim.Duration
	qos       QoSConfig
	// Per-TC FIFO as a reusable ring: qHead indexes the live front of the
	// backing slice. Popping advances qHead instead of reslicing ([1:]
	// permanently forfeits capacity, forcing an allocation per enqueue once
	// the queue has churned); the slice rewinds when drained and compacts
	// in place when mostly consumed, so steady traffic reuses one backing
	// array per class.
	queues  [NumTCs][]Packet
	qHead   [NumTCs]int
	deficit [NumTCs]int
	quantum [NumTCs]int
	busy    bool
	sink    func(Packet)
	// paused marks TCs held by priority flow control: a paused class keeps
	// accepting enqueues but is never picked for service until resumed.
	paused [NumTCs]bool
	// onDequeue, when set, fires as a packet leaves its TC queue for the
	// wire — the hook a switch uses to release shared-buffer occupancy. It is
	// installed once at wiring time (never per packet) to keep the serve path
	// allocation-free.
	onDequeue func(tc, bytes int)

	// Single-slot serialization state: exactly one packet clocks onto the
	// wire at a time (drain recurses only from txDone), so the completion
	// closure is allocated once per link instead of once per packet.
	inflight    Packet
	inflightSer sim.Duration
	txDone      func()

	// Propagation legs overlap across packets, but propDelay is constant, so
	// they complete in FIFO order: a reusable ring plus one pre-bound
	// callback replaces the per-packet closure this leg used to allocate.
	propQ    []Packet
	propHead int
	propDone func()

	// remote, when set, replaces the local propagation leg: the packet and
	// its arrival time (now + propDelay) are handed to the hook instead of
	// the engine's own queue. The parallel partitioner installs an
	// inter-domain channel stage here for links whose sink lives on another
	// domain's engine; everything upstream of propagation (queueing, ETS,
	// serialization, fault injection) is unchanged.
	remote func(at sim.Time, p Packet)

	// adv, when set, is an on-path adversary (NeVerMore threat model): its
	// Observe hook sees every frame that survives serialization and the fault
	// decision, and Link.Inject lets it splice forged or replayed frames onto
	// the wire. Nil on every benign link — the no-adversary fast path is a
	// single nil check (benchmark-guarded at 0 allocs/op).
	adv Adversary
	// injected counts frames spliced onto the wire by Inject, per TC.
	injected [NumTCs]uint64

	// Telemetry, per TC.
	txBytes   [NumTCs]uint64
	txPackets [NumTCs]uint64
	qDrops    [NumTCs]uint64
	maxQueue  int

	// Fault injection (nil plan = pristine wire).
	plan       *FaultPlan
	faultRNG   *rand.Rand
	burstLeft  [NumTCs]int
	faultDrops [NumTCs]uint64
	corrupts   [NumTCs]uint64

	rec      *trace.Recorder
	recActor uint16
}

// NewLink creates a link delivering packets to sink. maxQueue bounds each
// TC's queue; 0 means unbounded.
func NewLink(eng *sim.Engine, name string, rateGbps float64, prop sim.Duration, maxQueue int, sink func(Packet)) *Link {
	if rateGbps <= 0 {
		panic("fabric: line rate must be positive")
	}
	l := &Link{eng: eng, name: name, rateGbps: rateGbps, propDelay: prop, maxQueue: maxQueue, sink: sink}
	l.txDone = l.finishTx
	l.propDone = l.deliver
	l.SetQoS(DefaultQoS())
	return l
}

// qLen reports the live backlog of one TC ring.
func (l *Link) qLen(tc int) int { return len(l.queues[tc]) - l.qHead[tc] }

// qPush appends to a TC ring, rewinding or compacting the backing slice
// first when the consumed prefix dominates it.
func (l *Link) qPush(tc int, p Packet) {
	q := l.queues[tc]
	if h := l.qHead[tc]; h > 0 {
		if h == len(q) {
			q = q[:0]
			l.qHead[tc] = 0
		} else if h >= 64 && h*2 >= len(q) {
			n := copy(q, q[h:])
			q = q[:n]
			l.qHead[tc] = 0
		}
	}
	l.queues[tc] = append(q, p)
}

// qPop removes and returns the head of a TC ring. The vacated entry is
// zeroed so the backing array does not pin delivered payloads.
func (l *Link) qPop(tc int) Packet {
	h := l.qHead[tc]
	p := l.queues[tc][h]
	l.queues[tc][h] = Packet{}
	h++
	if h == len(l.queues[tc]) {
		l.queues[tc] = l.queues[tc][:0]
		h = 0
	}
	l.qHead[tc] = h
	return p
}

// SetQoS applies an mlnx_qos-style configuration. The DWRR quantum for an
// ETS class is proportional to its weight.
func (l *Link) SetQoS(q QoSConfig) {
	l.qos = q
	for i, w := range q.Weight {
		if w < 0 {
			w = 0
		}
		// Quantum in bytes per round: weight percent of a 16 KB round.
		l.quantum[i] = w * 16384 / 100
		if l.quantum[i] == 0 && q.Mode[i] == ETS {
			l.quantum[i] = 64 // idle classes still make progress
		}
	}
}

// RateGbps returns the configured line rate.
func (l *Link) RateGbps() float64 { return l.rateGbps }

// SetRecorder attaches a flight recorder; the link registers itself as an
// actor under its name and emits TC enqueue/dequeue, serialization, drop
// and corruption events. Nil disables tracing.
func (l *Link) SetRecorder(r *trace.Recorder) {
	l.rec = r
	l.recActor = r.RegisterActor(l.name)
}

// SetOnDequeue installs the dequeue hook (nil clears it). Install at wiring
// time only; the hook runs synchronously inside the serve path.
func (l *Link) SetOnDequeue(f func(tc, bytes int)) { l.onDequeue = f }

// PauseTC asserts priority flow control on one class: the link stops serving
// that TC (enqueues still succeed) until ResumeTC.
func (l *Link) PauseTC(tc int) { l.paused[tc] = true }

// ResumeTC releases a PFC pause and restarts service if the link went idle
// while everything runnable was paused.
func (l *Link) ResumeTC(tc int) {
	if !l.paused[tc] {
		return
	}
	l.paused[tc] = false
	if !l.busy && l.qLen(tc) > 0 {
		l.drain()
	}
}

// PausedTC reports whether a class is currently paused.
func (l *Link) PausedTC(tc int) bool { return l.paused[tc] }

// HasFaultPlan reports whether a fault-injection plan is installed.
func (l *Link) HasFaultPlan() bool { return l.plan != nil }

// Name returns the link's wiring name.
func (l *Link) Name() string { return l.name }

// SerializationDelay returns the time to clock the given bytes onto the wire.
func (l *Link) SerializationDelay(bytes int) sim.Duration {
	// bits / (Gbps * 1e9) seconds = bits / rate ns = bits * 1000 / rate ps.
	return sim.Duration(float64(bytes*8) * 1000.0 / l.rateGbps)
}

// Send enqueues a packet. It returns an error when the TC queue is full
// (tail drop), which the caller treats as wire-level loss.
func (l *Link) Send(p Packet) error {
	if p.TC < 0 || p.TC >= NumTCs {
		return fmt.Errorf("fabric %s: invalid TC %d", l.name, p.TC)
	}
	if p.Bytes <= 0 {
		return fmt.Errorf("fabric %s: non-positive packet size %d", l.name, p.Bytes)
	}
	if l.maxQueue > 0 && l.qLen(p.TC) >= l.maxQueue {
		l.qDrops[p.TC]++
		l.rec.Emit(trace.Event{At: int64(l.eng.Now()), Kind: trace.KindTailDrop,
			Actor: l.recActor, TC: int8(p.TC), Val: uint64(p.Bytes)})
		return fmt.Errorf("fabric %s: TC %d queue full", l.name, p.TC)
	}
	p.enqueuedAt = l.eng.Now()
	l.qPush(p.TC, p)
	l.rec.Emit(trace.Event{At: int64(p.enqueuedAt), Kind: trace.KindTCEnqueue,
		Actor: l.recActor, TC: int8(p.TC), Val: uint64(p.Bytes), Aux: uint64(l.qLen(p.TC))})
	if !l.busy {
		l.drain()
	}
	return nil
}

// pick selects the next TC to serve: strict classes first (lowest index
// wins), then DWRR among ETS classes.
func (l *Link) pick() int {
	for tc := 0; tc < NumTCs; tc++ {
		if l.qos.Mode[tc] == Strict && l.qLen(tc) > 0 && !l.paused[tc] {
			return tc
		}
	}
	// DWRR: loop until some class has enough deficit for its head packet.
	// Paused classes neither serve nor replenish — they resume with the
	// deficit they had when the pause arrived.
	for round := 0; round < 2*NumTCs+1; round++ {
		for tc := 0; tc < NumTCs; tc++ {
			if l.qos.Mode[tc] != ETS || l.qLen(tc) == 0 || l.paused[tc] {
				continue
			}
			if l.deficit[tc] >= l.queues[tc][l.qHead[tc]].Bytes {
				return tc
			}
		}
		// No class ready: replenish all backlogged, unpaused ETS classes.
		replenished := false
		for tc := 0; tc < NumTCs; tc++ {
			if l.qos.Mode[tc] == ETS && l.qLen(tc) > 0 && !l.paused[tc] {
				l.deficit[tc] += l.quantum[tc]
				replenished = true
			}
		}
		if !replenished {
			return -1
		}
	}
	// Pathological packet larger than any quantum accumulation window:
	// serve the first backlogged class to guarantee progress.
	for tc := 0; tc < NumTCs; tc++ {
		if l.qLen(tc) > 0 && !l.paused[tc] {
			return tc
		}
	}
	return -1
}

func (l *Link) drain() {
	tc := l.pick()
	if tc < 0 {
		l.busy = false
		return
	}
	l.busy = true
	p := l.qPop(tc)
	if l.qos.Mode[tc] == ETS {
		l.deficit[tc] -= p.Bytes
		if l.deficit[tc] < 0 {
			l.deficit[tc] = 0
		}
	}
	if l.qLen(tc) == 0 {
		l.deficit[tc] = 0 // DRR: idle classes forfeit their deficit
	}
	if l.onDequeue != nil {
		l.onDequeue(p.TC, p.Bytes)
	}
	l.rec.Emit(trace.Event{At: int64(l.eng.Now()), Kind: trace.KindTCDequeue,
		Actor: l.recActor, TC: int8(p.TC), Val: uint64(p.Bytes),
		Dur: int64(l.eng.Now().Sub(p.enqueuedAt))})
	ser := l.SerializationDelay(p.Bytes)
	l.inflight = p
	l.inflightSer = ser
	l.eng.After(ser, l.txDone)
}

// finishTx completes the serialization of l.inflight: charge the tx
// counters, decide the packet's in-flight fate, launch the propagation leg
// and serve the next packet. It is the single pre-bound serialization
// callback — only the propagation leg (which overlaps across packets) still
// closes over its packet.
func (l *Link) finishTx() {
	p := l.inflight
	ser := l.inflightSer
	l.inflight = Packet{}
	l.txBytes[p.TC] += uint64(p.Bytes)
	l.txPackets[p.TC]++
	l.rec.Emit(trace.Event{At: int64(l.eng.Now()), Kind: trace.KindWireTx,
		Actor: l.recActor, TC: int8(p.TC), Val: uint64(p.Bytes), Dur: int64(ser)})
	// The fault decision sits after serialization: a dropped packet was
	// clocked onto the wire (tx counters see it) but never arrives.
	drop, corrupt := l.fault(p.TC)
	if drop {
		l.faultDrops[p.TC]++
		l.rec.Emit(trace.Event{At: int64(l.eng.Now()), Kind: trace.KindWireDrop,
			Actor: l.recActor, TC: int8(p.TC), Val: uint64(p.Bytes)})
		l.drain()
		return
	}
	if corrupt {
		l.corrupts[p.TC]++
		p.Corrupt = true
		l.rec.Emit(trace.Event{At: int64(l.eng.Now()), Kind: trace.KindWireCorrupt,
			Actor: l.recActor, TC: int8(p.TC), Val: uint64(p.Bytes)})
	}
	if l.adv != nil {
		l.adv.Observe(l.eng.Now(), p)
	}
	if l.remote != nil {
		l.remote(l.eng.Now().Add(l.propDelay), p)
		l.drain()
		return
	}
	l.propPush(p)
	l.eng.After(l.propDelay, l.propDone)
	l.drain()
}

// Adversary is an on-path attacker tapped into one link direction — the
// NeVerMore threat model of a compromised switch or machine-in-the-middle.
// Observe fires for every frame that survives serialization and the fault
// decision (what a port mirror would capture); the adversary forges traffic
// by calling Link.Inject from inside Observe or from its own scheduled
// events. The hook must never mutate the observed packet.
type Adversary interface {
	Observe(at sim.Time, p Packet)
}

// SetAdversary taps an adversary onto the link (nil clears it). Wiring time
// only; with no adversary installed the per-packet cost is one nil check.
func (l *Link) SetAdversary(a Adversary) { l.adv = a }

// Inject splices a forged or replayed frame directly onto the wire,
// bypassing the TC queues, the ETS scheduler and the serialization slot — an
// adversary with its own line-rate port does not contend with the victim's
// egress. The frame still traverses the propagation leg (or the cross-domain
// hook), so it arrives propDelay from now, strictly after every frame already
// in flight: injection can never reorder legitimate traffic, only interleave
// with it. Injected frames are charged to a separate counter, not the tx
// telemetry — a real mirror port would not see them leave this NIC.
func (l *Link) Inject(p Packet) {
	l.injected[p.TC&(NumTCs-1)]++
	if l.remote != nil {
		l.remote(l.eng.Now().Add(l.propDelay), p)
		return
	}
	l.propPush(p)
	l.eng.After(l.propDelay, l.propDone)
}

// Injected reports frames spliced in by Inject for one TC.
func (l *Link) Injected(tc int) uint64 { return l.injected[tc&(NumTCs-1)] }

// SetRemote installs (or, with nil, clears) the cross-domain propagation
// hook. Wiring time only: the hook must deliver the packet to the original
// sink at exactly the given arrival time on the destination engine, or the
// partitioned run diverges from the serial one.
func (l *Link) SetRemote(fn func(at sim.Time, p Packet)) { l.remote = fn }

// PropDelay reports the link's propagation delay (the lookahead bound a
// partitioner may rely on for this link).
func (l *Link) PropDelay() sim.Duration { return l.propDelay }

// Sink returns the delivery callback the link was wired with.
func (l *Link) Sink() func(Packet) { return l.sink }

// propPush appends to the propagation ring, rewinding or compacting the
// backing slice first when the consumed prefix dominates it (same discipline
// as the TC rings).
func (l *Link) propPush(p Packet) {
	q := l.propQ
	if h := l.propHead; h > 0 {
		if h == len(q) {
			q = q[:0]
			l.propHead = 0
		} else if h >= 64 && h*2 >= len(q) {
			n := copy(q, q[h:])
			q = q[:n]
			l.propHead = 0
		}
	}
	l.propQ = append(q, p)
}

// deliver completes the oldest in-flight propagation leg. Serializations
// finish in strictly increasing time and every leg adds the same propDelay,
// so arrivals pop in push order; the vacated slot is zeroed so the ring does
// not pin delivered payloads.
func (l *Link) deliver() {
	h := l.propHead
	p := l.propQ[h]
	l.propQ[h] = Packet{}
	h++
	if h == len(l.propQ) {
		l.propQ = l.propQ[:0]
		h = 0
	}
	l.propHead = h
	if l.sink != nil {
		l.sink(p)
	}
}

// SetFaultPlan installs (or, with nil, clears) a fault-injection plan. The
// plan is copied; its RNG is seeded from plan.Seed only, independent of the
// engine's stream.
func (l *Link) SetFaultPlan(plan *FaultPlan) {
	if plan == nil {
		l.plan, l.faultRNG = nil, nil
		return
	}
	p := *plan
	l.plan = &p
	l.faultRNG = rand.New(rand.NewSource(p.Seed))
	l.burstLeft = [NumTCs]int{}
}

// fault decides the fate of one departing packet under the installed plan.
func (l *Link) fault(tc int) (drop, corrupt bool) {
	if l.plan == nil {
		return false, false
	}
	if l.burstLeft[tc] > 0 {
		l.burstLeft[tc]--
		return true, false
	}
	if p := l.plan.DropProb[tc]; p > 0 && l.faultRNG.Float64() < p {
		if l.plan.BurstLen > 1 {
			l.burstLeft[tc] = l.plan.BurstLen - 1
		}
		return true, false
	}
	if p := l.plan.CorruptProb[tc]; p > 0 && l.faultRNG.Float64() < p {
		return false, true
	}
	return false, false
}

// QueueLen reports the backlog of one TC.
func (l *Link) QueueLen(tc int) int { return l.qLen(tc) }

// TxBytes reports bytes clocked out for one TC (an ethtool-style counter).
func (l *Link) TxBytes(tc int) uint64 { return l.txBytes[tc] }

// TxPackets reports packets clocked out for one TC.
func (l *Link) TxPackets(tc int) uint64 { return l.txPackets[tc] }

// Drops reports tail drops for one TC.
func (l *Link) Drops(tc int) uint64 { return l.qDrops[tc] }

// FaultDrops reports packets lost in flight by the FaultPlan for one TC.
func (l *Link) FaultDrops(tc int) uint64 { return l.faultDrops[tc] }

// Corrupts reports packets delivered with the Corrupt flag for one TC.
func (l *Link) Corrupts(tc int) uint64 { return l.corrupts[tc] }

// TotalTxBytes sums bytes across all TCs.
func (l *Link) TotalTxBytes() uint64 {
	var s uint64
	for _, b := range l.txBytes {
		s += b
	}
	return s
}

// Wire is a full-duplex connection: two independent links between endpoints
// A and B.
type Wire struct {
	AtoB *Link
	BtoA *Link
}

// NewWire builds both directions with shared rate and propagation delay.
func NewWire(eng *sim.Engine, name string, rateGbps float64, prop sim.Duration, maxQueue int, sinkB, sinkA func(Packet)) *Wire {
	return &Wire{
		AtoB: NewLink(eng, name+":a->b", rateGbps, prop, maxQueue, sinkB),
		BtoA: NewLink(eng, name+":b->a", rateGbps, prop, maxQueue, sinkA),
	}
}
