package fabric

import (
	"testing"
	"testing/quick"

	"github.com/thu-has/ragnar/internal/sim"
)

func TestSerializationDelay(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, "l", 100, 0, 0, nil)
	// 1250 bytes at 100 Gbps = 10000 bits / 100 Gbps = 100 ns.
	if d := l.SerializationDelay(1250); d != 100*sim.Nanosecond {
		t.Fatalf("serialization = %v, want 100ns", d)
	}
	// 64 bytes at 25 Gbps = 512 bits / 25 Gbps = 20.48 ns.
	l2 := NewLink(eng, "l2", 25, 0, 0, nil)
	if d := l2.SerializationDelay(64); d != sim.Duration(20480) {
		t.Fatalf("serialization = %v ps, want 20480ps", int64(d))
	}
}

func TestLinkDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	var got []Packet
	var arrivals []sim.Time
	l := NewLink(eng, "l", 100, 500*sim.Nanosecond, 0, func(p Packet) {
		got = append(got, p)
		arrivals = append(arrivals, eng.Now())
	})
	if err := l.Send(Packet{TC: 0, Bytes: 1250, Payload: "x"}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(got) != 1 || got[0].Payload != "x" {
		t.Fatalf("delivered %v", got)
	}
	if arrivals[0] != sim.Time(600*sim.Nanosecond) {
		t.Fatalf("arrival at %v, want 600ns (100ns ser + 500ns prop)", arrivals[0])
	}
	if l.TxBytes(0) != 1250 || l.TxPackets(0) != 1 {
		t.Fatalf("counters = %d bytes %d pkts", l.TxBytes(0), l.TxPackets(0))
	}
}

func TestLinkFIFOWithinTC(t *testing.T) {
	eng := sim.NewEngine(1)
	var order []int
	l := NewLink(eng, "l", 100, 0, 0, func(p Packet) {
		order = append(order, p.Payload.(int))
	})
	for i := 0; i < 5; i++ {
		if err := l.Send(Packet{TC: 3, Bytes: 100, Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("TC FIFO violated: %v", order)
		}
	}
}

func TestSendValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, "l", 100, 0, 0, nil)
	if err := l.Send(Packet{TC: -1, Bytes: 10}); err == nil {
		t.Fatal("negative TC should error")
	}
	if err := l.Send(Packet{TC: 8, Bytes: 10}); err == nil {
		t.Fatal("TC 8 should error")
	}
	if err := l.Send(Packet{TC: 0, Bytes: 0}); err == nil {
		t.Fatal("zero bytes should error")
	}
}

func TestTailDrop(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, "l", 100, 0, 2, nil)
	// First packet goes into service immediately; two more fill the queue.
	for i := 0; i < 3; i++ {
		if err := l.Send(Packet{TC: 0, Bytes: 1000}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := l.Send(Packet{TC: 0, Bytes: 1000}); err == nil {
		t.Fatal("queue overflow should error")
	}
	if l.Drops(0) != 1 {
		t.Fatalf("drops = %d", l.Drops(0))
	}
}

// Two ETS classes at 50/50 with equal-size packets must share the link
// nearly evenly under saturation.
func TestETSFairShare(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, "l", 100, 0, 0, nil)
	l.SetQoS(SplitQoS(0, 3))
	for i := 0; i < 400; i++ {
		l.Send(Packet{TC: 0, Bytes: 1024})
		l.Send(Packet{TC: 3, Bytes: 1024})
	}
	eng.Run()
	b0, b3 := float64(l.TxBytes(0)), float64(l.TxBytes(3))
	ratio := b0 / b3
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("ETS 50/50 ratio = %v", ratio)
	}
}

// Unequal ETS weights must shape throughput proportionally, even with
// different packet sizes.
func TestETSWeightedShare(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, "l", 100, 0, 0, nil)
	q := QoSConfig{}
	q.Weight[1] = 75
	q.Weight[2] = 25
	l.SetQoS(q)
	for i := 0; i < 1200; i++ {
		l.Send(Packet{TC: 1, Bytes: 512})
		l.Send(Packet{TC: 2, Bytes: 2048})
	}
	// Run while both classes stay backlogged, then compare byte shares.
	eng.RunUntil(sim.Time(40 * sim.Microsecond))
	b1, b2 := float64(l.TxBytes(1)), float64(l.TxBytes(2))
	ratio := b1 / (b1 + b2)
	if ratio < 0.70 || ratio > 0.80 {
		t.Fatalf("weighted share = %v, want ~0.75", ratio)
	}
}

func TestStrictPriority(t *testing.T) {
	eng := sim.NewEngine(1)
	var order []int
	l := NewLink(eng, "l", 100, 0, 0, func(p Packet) { order = append(order, p.TC) })
	q := DefaultQoS()
	q.Mode[6] = Strict
	l.SetQoS(q)
	// Fill TC0 first, then TC6: strict class must jump the line as soon as
	// the in-flight packet completes.
	for i := 0; i < 3; i++ {
		l.Send(Packet{TC: 0, Bytes: 1000})
	}
	for i := 0; i < 3; i++ {
		l.Send(Packet{TC: 6, Bytes: 1000})
	}
	eng.Run()
	// First delivery is the TC0 packet already in service; all TC6 packets
	// must precede the remaining TC0 ones.
	if order[0] != 0 {
		t.Fatalf("order = %v", order)
	}
	for i := 1; i <= 3; i++ {
		if order[i] != 6 {
			t.Fatalf("strict TC not prioritized: %v", order)
		}
	}
}

func TestOversizedPacketMakesProgress(t *testing.T) {
	eng := sim.NewEngine(1)
	delivered := 0
	l := NewLink(eng, "l", 100, 0, 0, func(p Packet) { delivered++ })
	// Larger than the 16 KB DWRR round quantum.
	if err := l.Send(Packet{TC: 0, Bytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if delivered != 1 {
		t.Fatal("oversized packet starved")
	}
}

func TestWireBothDirections(t *testing.T) {
	eng := sim.NewEngine(1)
	var atB, atA int
	w := NewWire(eng, "w", 100, sim.Microsecond, 0,
		func(Packet) { atB++ }, func(Packet) { atA++ })
	w.AtoB.Send(Packet{TC: 0, Bytes: 64})
	w.BtoA.Send(Packet{TC: 0, Bytes: 64})
	w.BtoA.Send(Packet{TC: 0, Bytes: 64})
	eng.Run()
	if atB != 1 || atA != 2 {
		t.Fatalf("delivered atB=%d atA=%d", atB, atA)
	}
}

// Property: byte conservation — every byte sent on a TC is eventually
// clocked out, and total delivered equals total accepted.
func TestByteConservationProperty(t *testing.T) {
	f := func(sizes []uint16, tcs []uint8) bool {
		eng := sim.NewEngine(11)
		var deliveredBytes uint64
		l := NewLink(eng, "l", 200, 10*sim.Nanosecond, 0, func(p Packet) {
			deliveredBytes += uint64(p.Bytes)
		})
		var accepted uint64
		for i, s := range sizes {
			tc := 0
			if len(tcs) > 0 {
				tc = int(tcs[i%len(tcs)]) % NumTCs
			}
			bytes := int(s)%4096 + 1
			if err := l.Send(Packet{TC: tc, Bytes: bytes}); err == nil {
				accepted += uint64(bytes)
			}
		}
		eng.Run()
		return deliveredBytes == accepted && l.TotalTxBytes() == accepted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultQoSWeightsSum(t *testing.T) {
	q := DefaultQoS()
	sum := 0
	for _, w := range q.Weight {
		sum += w
	}
	if sum < 90 || sum > 100 {
		t.Fatalf("default weights sum = %d", sum)
	}
}

func TestSetQoSMidStream(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, "l", 100, 0, 0, nil)
	l.SetQoS(SplitQoS(0, 1))
	for i := 0; i < 100; i++ {
		l.Send(Packet{TC: 0, Bytes: 1024})
		l.Send(Packet{TC: 1, Bytes: 1024})
	}
	eng.RunUntil(sim.Time(4 * sim.Microsecond))
	// Re-weight heavily toward TC1 and keep feeding.
	q := QoSConfig{}
	q.Weight[0] = 10
	q.Weight[1] = 90
	l.SetQoS(q)
	b0 := l.TxBytes(0)
	for i := 0; i < 400; i++ {
		l.Send(Packet{TC: 0, Bytes: 1024})
		l.Send(Packet{TC: 1, Bytes: 1024})
	}
	eng.RunUntil(sim.Time(40 * sim.Microsecond))
	d0 := float64(l.TxBytes(0) - b0)
	d1 := float64(l.TxBytes(1))
	share := d0 / (d0 + d1)
	if share > 0.3 {
		t.Fatalf("TC0 share after reweight = %.2f, want ~0.1-0.2", share)
	}
}

func TestMultipleStrictClassesOrdered(t *testing.T) {
	eng := sim.NewEngine(1)
	var order []int
	l := NewLink(eng, "l", 100, 0, 0, func(p Packet) { order = append(order, p.TC) })
	q := DefaultQoS()
	q.Mode[2] = Strict
	q.Mode[5] = Strict
	l.SetQoS(q)
	// Occupy the wire, then enqueue both strict classes out of order.
	l.Send(Packet{TC: 0, Bytes: 2000})
	l.Send(Packet{TC: 5, Bytes: 100})
	l.Send(Packet{TC: 2, Bytes: 100})
	eng.Run()
	// Lower strict index wins among strict classes.
	if order[1] != 2 || order[2] != 5 {
		t.Fatalf("strict ordering = %v", order)
	}
}

// collectLoss drives n same-TC packets through a link under plan and returns
// which packet indices arrived (in order) plus the link's fault counters.
func collectLoss(t *testing.T, plan *FaultPlan, n int) ([]int, *Link) {
	t.Helper()
	eng := sim.NewEngine(1)
	var got []int
	l := NewLink(eng, "l", 100, 0, 0, func(p Packet) {
		got = append(got, p.Payload.(int))
	})
	l.SetFaultPlan(plan)
	for i := 0; i < n; i++ {
		if err := l.Send(Packet{TC: 0, Bytes: 256, Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	return got, l
}

// TestFaultPlanDeterministicDrops: the drop pattern is a pure function of the
// plan seed — two identical runs lose exactly the same packets — and every
// packet is either delivered or counted as a fault drop.
func TestFaultPlanDeterministicDrops(t *testing.T) {
	plan := UniformLoss(42, 0.3)
	got1, l1 := collectLoss(t, &plan, 200)
	got2, _ := collectLoss(t, &plan, 200)
	if len(got1) != len(got2) {
		t.Fatalf("deliveries differ: %d vs %d", len(got1), len(got2))
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("delivery %d differs: %d vs %d", i, got1[i], got2[i])
		}
	}
	if l1.FaultDrops(0) == 0 {
		t.Fatal("30% loss dropped nothing")
	}
	if int(l1.FaultDrops(0))+len(got1) != 200 {
		t.Fatalf("drops %d + delivered %d != 200", l1.FaultDrops(0), len(got1))
	}
	other := UniformLoss(43, 0.3)
	got3, _ := collectLoss(t, &other, 200)
	same := len(got3) == len(got1)
	if same {
		for i := range got1 {
			if got1[i] != got3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced the identical loss pattern")
	}
}

// TestFaultPlanBurstLoss: with BurstLen = 3 every drop decision removes at
// least three consecutive packets of the TC, so every gap in the delivered
// sequence (except one cut short by the end of the stream) spans >= 3.
func TestFaultPlanBurstLoss(t *testing.T) {
	plan := UniformLoss(7, 0.1)
	plan.BurstLen = 3
	got, l := collectLoss(t, &plan, 300)
	if l.FaultDrops(0) == 0 {
		t.Fatal("burst plan dropped nothing")
	}
	prev := -1
	for i, v := range got {
		gap := v - prev - 1
		if gap != 0 && gap < 3 {
			t.Fatalf("gap of %d before delivery %d (packet %d): bursts must span >= 3", gap, i, v)
		}
		prev = v
	}
}

// TestFaultPlanCorruption: corruption flags packets without dropping them,
// and the Corrupts counter tracks exactly the flagged deliveries.
func TestFaultPlanCorruption(t *testing.T) {
	eng := sim.NewEngine(1)
	var delivered, corrupt int
	l := NewLink(eng, "l", 100, 0, 0, func(p Packet) {
		delivered++
		if p.Corrupt {
			corrupt++
		}
	})
	plan := FaultPlan{Seed: 5}
	for tc := range plan.CorruptProb {
		plan.CorruptProb[tc] = 1
	}
	l.SetFaultPlan(&plan)
	for i := 0; i < 50; i++ {
		if err := l.Send(Packet{TC: 2, Bytes: 128, Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if delivered != 50 || corrupt != 50 {
		t.Fatalf("delivered %d corrupt %d, want 50/50", delivered, corrupt)
	}
	if l.Corrupts(2) != 50 || l.FaultDrops(2) != 0 {
		t.Fatalf("counters: corrupts %d drops %d", l.Corrupts(2), l.FaultDrops(2))
	}
}

// TestFaultPlanClear: a nil plan restores the pristine wire.
func TestFaultPlanClear(t *testing.T) {
	eng := sim.NewEngine(1)
	var delivered int
	l := NewLink(eng, "l", 100, 0, 0, func(Packet) { delivered++ })
	plan := UniformLoss(9, 1)
	l.SetFaultPlan(&plan)
	if err := l.Send(Packet{TC: 0, Bytes: 64, Payload: 0}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if delivered != 0 {
		t.Fatal("100% loss delivered a packet")
	}
	l.SetFaultPlan(nil)
	for i := 0; i < 10; i++ {
		if err := l.Send(Packet{TC: 0, Bytes: 64, Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if delivered != 10 {
		t.Fatalf("pristine wire delivered %d/10", delivered)
	}
}

// TestRingQueueFIFOAcrossCompaction exercises the per-TC ring queues through
// enough push/pop cycles to hit both the rewind (drained) and compaction
// (consumed prefix dominates) paths, checking FIFO order end to end and that
// the backing array stops growing once steady state is reached.
func TestRingQueueFIFOAcrossCompaction(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, "l", 100, 0, 0, nil)
	next := 0 // next value to push
	want := 0 // next value expected from pop
	push := func(n int) {
		for i := 0; i < n; i++ {
			l.qPush(2, Packet{TC: 2, Bytes: 64, Payload: next})
			next++
		}
	}
	pop := func(n int) {
		for i := 0; i < n; i++ {
			p := l.qPop(2)
			if p.Payload.(int) != want {
				t.Fatalf("popped %v, want %d", p.Payload, want)
			}
			want++
		}
	}
	// Steady producer/consumer imbalance: head index keeps climbing, forcing
	// periodic compaction; occasional full drains force the rewind path.
	for round := 0; round < 50; round++ {
		push(100)
		pop(70)
	}
	pop(next - want) // drain: rewind path
	if l.qLen(2) != 0 {
		t.Fatalf("qLen = %d after drain", l.qLen(2))
	}
	push(3)
	pop(3)
	if got := cap(l.queues[2]); got > 4096 {
		t.Fatalf("ring backing array grew unboundedly: cap %d", got)
	}
}

// TestRingQueuePopReleasesPayload checks that qPop zeroes the vacated slot so
// the ring's backing array does not pin delivered payloads for GC.
func TestRingQueuePopReleasesPayload(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, "l", 100, 0, 0, nil)
	l.qPush(0, Packet{TC: 0, Bytes: 64, Payload: "held"})
	l.qPush(0, Packet{TC: 0, Bytes: 64, Payload: "next"})
	l.qPop(0)
	if l.queues[0][0].Payload != nil {
		t.Fatal("vacated ring slot still references the delivered payload")
	}
	if p := l.qPop(0); p.Payload != "next" {
		t.Fatalf("second pop = %v", p.Payload)
	}
}
