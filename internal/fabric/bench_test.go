package fabric

import (
	"testing"

	"github.com/thu-has/ragnar/internal/sim"
)

// BenchmarkSwitchForward is the CI-guarded switch forwarding hot path: a
// paced injector streams routed packets through Ingress — address lookup,
// shared-buffer admission, the FwdDelay pipeline ring — onto an egress
// link's ETS scheduler and out through serialization and propagation. After
// the warm-up phase grows the rings, every packet must forward end to end
// without allocating (scripts/benchguard.go fails the bench-guard job if
// allocs/op > 0, same gate as the engine and disabled-trace paths).
func BenchmarkSwitchForward(b *testing.B) {
	// 1024 B at 100 Gbps serializes in ~82 ns, under the 200 ns injection
	// pace, so queues stay bounded and the steady state is one packet in the
	// forwarding pipe plus one on the wire.
	const pace = 200 * sim.Nanosecond
	e := sim.NewEngine(1)
	sw := NewSwitch(e, SwitchConfig{
		Name:           "bench",
		FwdDelay:       300 * sim.Nanosecond,
		SharedBufBytes: 1 << 20,
		XOffBytes:      96 << 10,
	})
	delivered := 0
	out := sw.AddPort("host", 100, 100*sim.Nanosecond, 0, DefaultQoS(), func(Packet) { delivered++ })
	sw.Route(1, out)

	const warm = 256
	total := b.N + warm
	n := 0
	var inject func()
	inject = func() {
		n++
		sw.Ingress(Packet{TC: 3, Bytes: 1024, Dst: 1})
		if n < total {
			e.After(pace, inject)
		}
	}
	e.After(pace, inject)
	e.RunFor(sim.Duration(warm) * pace)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
	b.StopTimer()
	if delivered != total {
		b.Fatalf("delivered %d of %d packets", delivered, total)
	}
	if sw.BufUsed() != 0 {
		b.Fatalf("shared buffer not drained: %d bytes", sw.BufUsed())
	}
	b.ReportMetric(float64(e.Fired())/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkLinkAdversaryOff is the CI-guarded no-adversary injection-hook
// path: every benign link in every rig now carries the Adversary tap in
// finishTx, so that nil check must stay free — packets clock through
// queueing, ETS, serialization and propagation with 0 allocs/op exactly as
// they did before the hook existed (scripts/benchguard.go gates it alongside
// SwitchForward).
func BenchmarkLinkAdversaryOff(b *testing.B) {
	const pace = 200 * sim.Nanosecond
	e := sim.NewEngine(1)
	delivered := 0
	l := NewLink(e, "bench", 100, 100*sim.Nanosecond, 0, func(Packet) { delivered++ })

	const warm = 256
	total := b.N + warm
	n := 0
	var inject func()
	inject = func() {
		n++
		if err := l.Send(Packet{TC: 3, Bytes: 1024}); err != nil {
			b.Errorf("send: %v", err)
		}
		if n < total {
			e.After(pace, inject)
		}
	}
	e.After(pace, inject)
	e.RunFor(sim.Duration(warm) * pace)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
	b.StopTimer()
	if delivered != total {
		b.Fatalf("delivered %d of %d packets", delivered, total)
	}
	b.ReportMetric(float64(e.Fired())/b.Elapsed().Seconds(), "events/sec")
}
