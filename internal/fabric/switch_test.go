package fabric

import (
	"testing"

	"github.com/thu-has/ragnar/internal/sim"
)

// twoPortRig wires host0 -> switch -> host1: an upstream link feeding the
// switch's Ingress and two egress ports with collector sinks.
type twoPortRig struct {
	eng  *sim.Engine
	sw   *Switch
	up   *Link // host0's uplink into the switch
	got0 []Packet
	got1 []Packet
}

func newTwoPortRig(t *testing.T, cfg SwitchConfig) *twoPortRig {
	t.Helper()
	r := &twoPortRig{eng: sim.NewEngine(1)}
	r.sw = NewSwitch(r.eng, cfg)
	p0 := r.sw.AddPort("h0", 100, 100*sim.Nanosecond, 0, DefaultQoS(), func(p Packet) { r.got0 = append(r.got0, p) })
	p1 := r.sw.AddPort("h1", 100, 100*sim.Nanosecond, 0, DefaultQoS(), func(p Packet) { r.got1 = append(r.got1, p) })
	r.up = NewLink(r.eng, "h0->sw", 100, 100*sim.Nanosecond, 0, r.sw.Ingress)
	r.sw.SetUpstream(p0, r.up)
	r.sw.Route(0, p0)
	r.sw.Route(1, p1)
	return r
}

func TestSwitchForwarding(t *testing.T) {
	r := newTwoPortRig(t, SwitchConfig{Name: "sw", FwdDelay: 300 * sim.Nanosecond})
	var arrival sim.Time
	r.eng.After(0, func() {
		if err := r.up.Send(Packet{TC: 0, Bytes: 1250, Dst: 1, Payload: "x"}); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	r.sw.EgressLink(1) // touch accessor
	r.eng.Run()
	if len(r.got1) != 1 || r.got1[0].Payload != "x" {
		t.Fatalf("port 1 got %v", r.got1)
	}
	if len(r.got0) != 0 {
		t.Fatalf("port 0 got %v, want nothing", r.got0)
	}
	_ = arrival
	// Uplink ser 100ns + prop 100ns, fwd 300ns, egress ser 100ns + prop 100ns.
	if now := r.eng.Now(); now != sim.Time(700*sim.Nanosecond) {
		t.Fatalf("last delivery at %v, want 700ns", now)
	}
	if r.sw.FwdPackets() != 1 || r.sw.FwdBytes() != 1250 {
		t.Fatalf("fwd counters = %d pkts %d bytes", r.sw.FwdPackets(), r.sw.FwdBytes())
	}
	if r.sw.BufUsed() != 0 {
		t.Fatalf("buffer not drained: %d bytes", r.sw.BufUsed())
	}
}

func TestSwitchForwardingFIFO(t *testing.T) {
	r := newTwoPortRig(t, SwitchConfig{FwdDelay: 300 * sim.Nanosecond})
	const n = 50
	for i := 0; i < n; i++ {
		i := i
		r.eng.After(sim.Duration(i)*10*sim.Nanosecond, func() {
			r.up.Send(Packet{TC: 2, Bytes: 256, Dst: 1, Payload: i})
		})
	}
	r.eng.Run()
	if len(r.got1) != n {
		t.Fatalf("delivered %d, want %d", len(r.got1), n)
	}
	for i, p := range r.got1 {
		if p.Payload.(int) != i {
			t.Fatalf("order violated at %d: %v", i, p.Payload)
		}
	}
}

func TestSwitchUnroutable(t *testing.T) {
	r := newTwoPortRig(t, SwitchConfig{})
	r.eng.After(0, func() {
		r.up.Send(Packet{TC: 0, Bytes: 100, Dst: 99})
	})
	r.eng.Run()
	if len(r.got0)+len(r.got1) != 0 {
		t.Fatal("unroutable packet was delivered")
	}
	if r.sw.Unroutable() != 1 {
		t.Fatalf("unroutable = %d, want 1", r.sw.Unroutable())
	}
	if r.sw.BufUsed() != 0 {
		t.Fatalf("unroutable packet left %d bytes in buffer", r.sw.BufUsed())
	}
}

func TestSwitchSharedBufferDrop(t *testing.T) {
	// Pool holds two queued 1000B packets. A burst of four into a slow
	// (1 Gbps) egress: packet 1 goes straight to the serializer (occupancy
	// released at dequeue-to-wire), packets 2 and 3 fill the pool, packet 4
	// must tail-drop at admission.
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng, SwitchConfig{SharedBufBytes: 2000})
	var got int
	sp := sw.AddPort("h", 1, 0, 0, DefaultQoS(), func(Packet) { got++ }) // 1 Gbps: 8µs per 1000B
	sw.Route(1, sp)
	eng.After(0, func() {
		for i := 0; i < 4; i++ {
			sw.Ingress(Packet{TC: 0, Bytes: 1000, Dst: 1})
		}
	})
	eng.Run()
	if got != 3 {
		t.Fatalf("delivered %d, want 3 (pool admits one in flight + two queued)", got)
	}
	if sw.BufDrops(0) != 1 {
		t.Fatalf("bufDrops = %d, want 1", sw.BufDrops(0))
	}
	if sw.BufUsed() != 0 {
		t.Fatalf("buffer not drained: %d", sw.BufUsed())
	}
}

func TestSwitchTCShareCap(t *testing.T) {
	// TC1 capped at 25% of a 4000B pool = 1000B; TC0 uncapped. Three 1000B
	// TC1 packets back-to-back: the first goes to the serializer, the second
	// occupies the class's whole share, the third must drop even though the
	// pool has room.
	eng := sim.NewEngine(1)
	cfg := SwitchConfig{SharedBufBytes: 4000}
	cfg.TCShare[1] = 0.25
	sw := NewSwitch(eng, cfg)
	var got [NumTCs]int
	p := sw.AddPort("h", 1, 0, 0, DefaultQoS(), func(pk Packet) { got[pk.TC]++ })
	sw.Route(1, p)
	eng.After(0, func() {
		sw.Ingress(Packet{TC: 1, Bytes: 1000, Dst: 1})
		sw.Ingress(Packet{TC: 1, Bytes: 1000, Dst: 1})
		sw.Ingress(Packet{TC: 1, Bytes: 1000, Dst: 1})
		sw.Ingress(Packet{TC: 0, Bytes: 1000, Dst: 1})
	})
	eng.Run()
	if got[1] != 2 || sw.BufDrops(1) != 1 {
		t.Fatalf("TC1: delivered %d drops %d, want 2/1", got[1], sw.BufDrops(1))
	}
	if got[0] != 1 || sw.BufDrops(0) != 0 {
		t.Fatalf("TC0: delivered %d drops %d, want 1/0", got[0], sw.BufDrops(0))
	}
}

func TestSwitchPFCPauseResume(t *testing.T) {
	// A slow egress port (1 Gbps) behind a fast uplink: backlog crosses XOFF,
	// the upstream link must pause that TC, then resume once drained to XON.
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng, SwitchConfig{XOffBytes: 3000, XOnBytes: 1000})
	var delivered int
	p := sw.AddPort("h", 1, 0, 0, DefaultQoS(), func(Packet) { delivered++ })
	up := NewLink(eng, "up", 100, 0, 0, sw.Ingress)
	upIdx := sw.AddPort("src", 100, 0, 0, DefaultQoS(), nil)
	sw.SetUpstream(upIdx, up)
	sw.Route(1, p)
	eng.After(0, func() {
		for i := 0; i < 10; i++ {
			up.Send(Packet{TC: 3, Bytes: 1000, Dst: 1})
		}
	})
	sawPause := false
	eng.After(2*sim.Microsecond, func() {
		if up.PausedTC(3) {
			sawPause = true
		}
	})
	eng.Run()
	if !sawPause {
		t.Fatal("upstream link never paused while egress backlog exceeded XOFF")
	}
	if sw.PFCPauses(3) == 0 {
		t.Fatal("PFCPauses counter did not advance")
	}
	if delivered != 10 {
		t.Fatalf("delivered %d, want 10 — pause must not drop packets", delivered)
	}
	if up.PausedTC(3) {
		t.Fatal("pause never released after drain")
	}
	if sw.BufUsed() != 0 {
		t.Fatalf("buffer not drained: %d", sw.BufUsed())
	}
}

func TestSwitchPFCRefcountAcrossPorts(t *testing.T) {
	// Two congested egress ports pausing the same TC: the upstream must stay
	// paused until BOTH release (refcount semantics).
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng, SwitchConfig{XOffBytes: 2000, XOnBytes: 500})
	pa := sw.AddPort("a", 1, 0, 0, DefaultQoS(), func(Packet) {})
	pb := sw.AddPort("b", 2, 0, 0, DefaultQoS(), func(Packet) {})
	up := NewLink(eng, "up", 100, 0, 0, sw.Ingress)
	src := sw.AddPort("src", 100, 0, 0, DefaultQoS(), nil)
	sw.SetUpstream(src, up)
	sw.Route(1, pa)
	sw.Route(2, pb)
	eng.After(0, func() {
		for i := 0; i < 6; i++ {
			up.Send(Packet{TC: 0, Bytes: 1000, Dst: 1})
			up.Send(Packet{TC: 0, Bytes: 1000, Dst: 2})
		}
	})
	// Port b (2 Gbps) drains to XON before port a (1 Gbps). Midway the
	// upstream must still be paused because port a holds the refcount.
	stillPaused := false
	eng.After(30*sim.Microsecond, func() {
		if sw.PortBacklog(0, 0) > 500 && !up.PausedTC(0) {
			t.Error("upstream resumed while port a still above XON")
		}
		stillPaused = up.PausedTC(0)
	})
	eng.Run()
	if !stillPaused {
		t.Fatal("expected upstream still paused at 30µs (port a backlog)")
	}
	if up.PausedTC(0) {
		t.Fatal("pause leaked after both ports drained")
	}
	if sw.BufUsed() != 0 {
		t.Fatalf("buffer not drained: %d", sw.BufUsed())
	}
}

func TestSwitchZeroFwdDelay(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng, SwitchConfig{})
	var got []Packet
	p := sw.AddPort("h", 100, 0, 0, DefaultQoS(), func(pk Packet) { got = append(got, pk) })
	sw.Route(7, p)
	eng.After(0, func() { sw.Ingress(Packet{TC: 5, Bytes: 64, Dst: 7, Payload: "y"}) })
	eng.Run()
	if len(got) != 1 || got[0].Payload != "y" {
		t.Fatalf("got %v", got)
	}
}

func TestLinkPauseResumeDirect(t *testing.T) {
	// Link-level PFC primitive: a paused TC holds its packets while other
	// classes flow; resume restarts an idle link.
	eng := sim.NewEngine(1)
	var order []int
	l := NewLink(eng, "l", 100, 0, 0, func(p Packet) { order = append(order, p.TC) })
	l.PauseTC(3)
	eng.After(0, func() {
		l.Send(Packet{TC: 3, Bytes: 100})
		l.Send(Packet{TC: 1, Bytes: 100})
	})
	eng.After(sim.Microsecond, func() { l.ResumeTC(3) })
	eng.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("order = %v, want [1 3] (paused TC3 held until resume)", order)
	}
	if l.PausedTC(3) {
		t.Fatal("PausedTC stuck after resume")
	}
	// Resume on a never-paused class is a no-op.
	l.ResumeTC(0)
}

// A malicious host XOFF-ing its own port while never sending data (pause
// abuse on empty queues) must not deadlock an acyclic topology: the pause
// carries a quantum and expires on its own, after which queued traffic
// drains and the engine goes idle. Before pause quanta existed this exact
// sequence would have wedged the port forever.
func TestPortPauseEmptyQueueCannotDeadlock(t *testing.T) {
	r := newTwoPortRig(t, SwitchConfig{FwdDelay: 300 * sim.Nanosecond,
		PauseQuanta: 10 * sim.Microsecond})
	// The aggressor pauses port 1 with nothing queued anywhere.
	r.eng.After(0, func() { r.sw.PortPause(1, 2) })
	// A victim packet for port 1 arrives while the pause holds.
	r.eng.After(1*sim.Microsecond, func() {
		if err := r.up.Send(Packet{TC: 2, Bytes: 1250, Dst: 1, Payload: "victim"}); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	r.eng.Run()
	if len(r.got1) != 1 {
		t.Fatalf("victim packet never delivered: got %d packets (deadlock)", len(r.got1))
	}
	if r.sw.PortPaused(1, 2) {
		t.Fatal("pause never expired")
	}
	// Delivery waited for the quanta to lapse, not a byte-threshold XON
	// that empty queues can never reach.
	if now := r.eng.Now(); now < sim.Time(10*sim.Microsecond) {
		t.Fatalf("delivered at %v, before the pause quanta expired", now)
	}
	if r.sw.RxPauses(2) != 1 {
		t.Fatalf("RxPauses = %d, want 1", r.sw.RxPauses(2))
	}
}

// Refreshing pause frames extend the stall; once the aggressor stops, the
// last quantum runs out and everything drains.
func TestPortPauseRefreshExtendsThenExpires(t *testing.T) {
	const q = 10 * sim.Microsecond
	r := newTwoPortRig(t, SwitchConfig{PauseQuanta: q})
	r.eng.After(0, func() {
		r.up.Send(Packet{TC: 1, Bytes: 1250, Dst: 1, Payload: "p"})
	})
	// Three refreshes 5µs apart: pause holds until 10µs after the last one.
	for i := 0; i < 3; i++ {
		d := sim.Duration(i) * 5 * sim.Microsecond
		r.eng.After(d, func() { r.sw.PortPause(1, 1) })
	}
	r.eng.Run()
	if len(r.got1) != 1 {
		t.Fatalf("packet never delivered after pauses expired: %v", r.got1)
	}
	// Last refresh at 10µs holds until 20µs; the earlier expiry timers at
	// 10µs and 15µs must not release it early.
	if now := r.eng.Now(); now < sim.Time(20*sim.Microsecond) {
		t.Fatalf("delivered at %v, want after the refreshed quanta (20µs)", now)
	}
	if r.sw.RxPauses(1) != 3 {
		t.Fatalf("RxPauses = %d, want 3", r.sw.RxPauses(1))
	}
}

// PortResume (a zero-quanta frame) releases the pause immediately.
func TestPortResumeReleasesEarly(t *testing.T) {
	r := newTwoPortRig(t, SwitchConfig{})
	r.eng.After(0, func() {
		r.sw.PortPause(1, 3)
		r.up.Send(Packet{TC: 3, Bytes: 1250, Dst: 1, Payload: "p"})
	})
	r.eng.After(2*sim.Microsecond, func() { r.sw.PortResume(1, 3) })
	// Well before the 335µs default quanta would have expired.
	var deliveredEarly bool
	r.eng.After(5*sim.Microsecond, func() { deliveredEarly = len(r.got1) == 1 })
	r.eng.Run()
	if !deliveredEarly {
		t.Fatalf("resume did not release the port early: %v", r.got1)
	}
}

// Pause abuse amplifies: backlog piling up behind a PortPaused egress
// crosses XOFF and pauses *upstream* ports — the congestion tree an
// aggressor grows without ever being the bandwidth bottleneck itself.
func TestPortPausePropagatesCongestionUpstream(t *testing.T) {
	r := newTwoPortRig(t, SwitchConfig{
		XOffBytes: 4000, PauseQuanta: 50 * sim.Microsecond})
	r.eng.After(0, func() { r.sw.PortPause(1, 0) })
	for i := 0; i < 6; i++ {
		i := i
		r.eng.After(sim.Duration(i)*200*sim.Nanosecond, func() {
			r.up.Send(Packet{TC: 0, Bytes: 1250, Dst: 1, Payload: i})
		})
	}
	var sawUpstreamPause bool
	r.eng.After(5*sim.Microsecond, func() { sawUpstreamPause = r.up.PausedTC(0) })
	r.eng.Run()
	if !sawUpstreamPause {
		t.Fatal("backlog behind the paused port never paused the upstream link")
	}
	if len(r.got1) != 6 {
		t.Fatalf("delivered %d packets after expiry, want 6", len(r.got1))
	}
	if r.sw.PFCPauses(0) == 0 {
		t.Fatal("XOFF never asserted")
	}
}
