package fabric

import (
	"fmt"

	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/trace"
)

// Switch models a shared-buffer, output-queued Ethernet switch: every port
// owns an egress Link (so the existing ETS/DWRR scheduler, serialization
// model, fault injection and trace events apply per output port unchanged),
// packets forward by destination address through a flat table, the output
// queues draw on one shared buffer pool with per-TC occupancy thresholds,
// and priority flow control propagates pause frames back to the upstream
// links feeding the switch.
//
// PFC here is deliberately coarse — when any egress port's backlog for a
// class crosses XOFF, *every* upstream port is paused for that class until
// the backlog drains below XON. That is the congestion-spreading behaviour
// real shared-buffer switches exhibit under PRIO pause (and the mechanism
// NeVerMore exploits for cross-tenant interference): one hot output port
// stalls innocent flows that merely share a priority with it.
//
// Backlog-driven pauses cannot deadlock an acyclic topology: egress links
// are only paused by PortPause (never by the XOFF logic), so XOFF'd queues
// always drain and release. PortPause models the one way a malicious *end
// host* can pause an egress link — forged PRIO pause frames sent to its own
// switch port. That path would deadlock trivially (pause with an empty
// queue → nothing ever drains → no XON) if pauses were level-triggered, so,
// exactly like real 802.1Qbb, every pause carries a quantum and expires on
// its own: liveness never depends on the attacker's cooperation.
//
// The forwarding hot path is allocation-free in steady state (ring-buffer
// pending queue, pre-bound timer callback, slice forwarding table); the
// bench-guard CI job gates BenchmarkSwitchForward at 0 allocs/op alongside
// the Link and engine paths.

// SwitchConfig parameterises a switch.
type SwitchConfig struct {
	Name string
	// FwdDelay is the fixed ingress→egress forwarding latency (lookup +
	// crossbar). Zero forwards synchronously.
	FwdDelay sim.Duration
	// SharedBufBytes bounds the shared output-buffer pool (bytes queued
	// across all egress ports, including packets in the forwarding pipe).
	// 0 means unbounded.
	SharedBufBytes int
	// TCShare caps one traffic class's share of the pool (fraction of
	// SharedBufBytes; 0 means 1.0 — no per-class cap). This is the static
	// per-TC threshold real shared-buffer switches use to stop one class
	// from starving the rest of the pool.
	TCShare [NumTCs]float64
	// XOffBytes, when positive, enables PFC: an egress port whose per-TC
	// backlog reaches XOFF pauses that class on every upstream link.
	XOffBytes int
	// XOnBytes releases the pause once the backlog drains to it (default
	// XOffBytes/2).
	XOnBytes int
	// PauseQuanta bounds how long one PortPause call (a received PRIO
	// pause frame) stops a port's egress. Defaults to DefaultPauseQuanta.
	PauseQuanta sim.Duration
}

// DefaultPauseQuanta is the longest pause one 802.1Qbb frame can request:
// 65535 quanta of 512 bit-times, ≈335µs at 100Gbps. An attacker sustaining
// a pause must keep refreshing frames, which is exactly what the pause-abuse
// duty-cycle knob in the exhaust experiment models.
const DefaultPauseQuanta = 335 * sim.Microsecond

// swPort is one switch port: an egress Link toward the attached device plus
// the upstream link feeding the switch from that device (the PFC pause
// target).
type swPort struct {
	name     string
	egress   *Link
	upstream *Link
	queuedTC [NumTCs]int // bytes backlogged at this port's egress, per TC
	pausedTC [NumTCs]bool
	// Pause frames received *from* the attached device (PortPause): while
	// set, this port's egress link is paused for the class. Each class holds
	// at most one armed expiry event; a refreshing frame cancels and
	// re-arms it, so no stale expiry callbacks linger in the queue after a
	// run (the parallel barrier's quiesce check audits exactly that).
	rxPaused  [NumTCs]bool
	rxPauseEv [NumTCs]sim.Event
	rxExpire  [NumTCs]func() // pre-bound expiry callbacks, built lazily
	// relay, when set, replaces the direct upstream.PauseTC/ResumeTC call
	// for this port's PFC propagation. Trunk ports use it to model the
	// pause frame's flight time to the peer switch — and, in a partitioned
	// run, to carry the state change across the domain boundary.
	relay func(tc int, pause bool)
}

// swPending is one packet in the forwarding pipeline (FwdDelay latency).
type swPending struct {
	due sim.Time
	out int32
	pkt Packet
}

// Switch is the device. Build with NewSwitch, attach devices with AddPort +
// SetUpstream (or verbs.Network.AttachToSwitch, which does both), install
// forwarding entries with Route, then feed packets through Ingress — the
// natural sink for upstream links.
type Switch struct {
	eng *sim.Engine
	cfg SwitchConfig

	ports []*swPort
	table []int32 // destination address -> port (-1 = unroutable, -2 = ECMP group)
	// ecmp holds the port groups behind ecmpEntry table slots. Egress choice
	// hashes the packet's flow label, so one flow sticks to one path.
	ecmp map[uint32][]int32

	// Shared-buffer occupancy: admission-counted at Ingress, released when
	// the packet leaves its egress queue for the wire (Link dequeue hook) or
	// is dropped.
	bufUsed   int
	bufUsedTC [NumTCs]int

	// Forwarding pipeline: a reusable ring ordered by due time (FwdDelay is
	// constant, so FIFO == time order). deliverFn is pre-bound once.
	pendQ      []swPending
	pendHead   int
	timerArmed bool
	deliverFn  func()

	// PFC pause reference counts per TC: >0 while any port holds the class
	// above XOFF; upstream links pause on 0→1 and resume on 1→0.
	pauseRef [NumTCs]int

	// Counters.
	fwdPackets uint64
	fwdBytes   uint64
	unroutable uint64
	bufDrops   [NumTCs]uint64
	pfcPauses  [NumTCs]uint64
	rxPauses   [NumTCs]uint64 // pause frames received from attached devices

	rec      *trace.Recorder
	recActor uint16
}

// NewSwitch creates a switch with no ports.
func NewSwitch(eng *sim.Engine, cfg SwitchConfig) *Switch {
	if cfg.Name == "" {
		cfg.Name = "switch"
	}
	if cfg.XOffBytes > 0 && cfg.XOnBytes <= 0 {
		cfg.XOnBytes = cfg.XOffBytes / 2
	}
	if cfg.PauseQuanta <= 0 {
		cfg.PauseQuanta = DefaultPauseQuanta
	}
	s := &Switch{eng: eng, cfg: cfg}
	s.deliverFn = s.deliverDue
	return s
}

// Name returns the switch's wiring name.
func (s *Switch) Name() string { return s.cfg.Name }

// NumPorts reports the attached port count.
func (s *Switch) NumPorts() int { return len(s.ports) }

// AddPort attaches a device behind a new egress link clocking at rateGbps
// with the given propagation delay and QoS; sink receives delivered packets
// (nic.Deliver for a NIC, another switch's Ingress for a trunk). It returns
// the port index.
func (s *Switch) AddPort(name string, rateGbps float64, prop sim.Duration, maxQueue int, qos QoSConfig, sink func(Packet)) int {
	idx := len(s.ports)
	eg := NewLink(s.eng, s.cfg.Name+":"+name, rateGbps, prop, maxQueue, sink)
	eg.SetQoS(qos)
	p := &swPort{name: name, egress: eg}
	eg.SetOnDequeue(func(tc, bytes int) { s.release(idx, tc, bytes) })
	s.ports = append(s.ports, p)
	return idx
}

// SetUpstream registers the link feeding the switch from the device on the
// given port — the target PFC pause frames are sent to.
func (s *Switch) SetUpstream(port int, l *Link) { s.ports[port].upstream = l }

// SetPauseRelay replaces the port's direct upstream PauseTC/ResumeTC call
// with relay (nil restores the direct call). Wiring time only. The lab
// builder installs relays on trunk ports so the pause frame takes the
// trunk's propagation delay to reach the peer switch — identically in
// serial runs (a delayed event) and partitioned runs (an inter-domain
// channel transfer).
func (s *Switch) SetPauseRelay(port int, relay func(tc int, pause bool)) {
	s.ports[port].relay = relay
}

// EgressLink exposes a port's egress link (fault plans, counters, QoS).
func (s *Switch) EgressLink(port int) *Link { return s.ports[port].egress }

// Links returns every port egress link in port order.
func (s *Switch) Links() []*Link {
	out := make([]*Link, len(s.ports))
	for i, p := range s.ports {
		out[i] = p.egress
	}
	return out
}

// Route installs a forwarding entry: packets addressed to addr leave through
// port. Later entries overwrite earlier ones.
func (s *Switch) Route(addr uint32, port int) {
	for int(addr) >= len(s.table) {
		s.table = append(s.table, -1)
	}
	s.table[addr] = int32(port)
}

// ecmpEntry marks a table slot whose egress is a hashed port group.
const ecmpEntry int32 = -2

// RouteECMP installs a multipath forwarding entry: packets addressed to
// addr leave through one of ports, picked by a deterministic hash of the
// packet's flow label. Equal-cost multipath at flow granularity — packets
// of one flow never reorder across paths. A single-port group degrades to
// a plain Route entry.
func (s *Switch) RouteECMP(addr uint32, ports []int) {
	if len(ports) == 0 {
		panic(fmt.Sprintf("fabric %s: empty ECMP group for addr %d", s.cfg.Name, addr))
	}
	if len(ports) == 1 {
		s.Route(addr, ports[0])
		return
	}
	for int(addr) >= len(s.table) {
		s.table = append(s.table, -1)
	}
	s.table[addr] = ecmpEntry
	if s.ecmp == nil {
		s.ecmp = make(map[uint32][]int32)
	}
	group := make([]int32, len(ports))
	for i, p := range ports {
		group[i] = int32(p)
	}
	s.ecmp[addr] = group
}

// flowHash mixes the flow label and destination into an ECMP pick. The
// avalanche (splitmix-style) matters: flow labels are often near-sequential
// QPN pairs, and a weak hash would pile every flow onto one uplink.
func flowHash(flow, dst uint32) uint32 {
	x := flow ^ dst*0x9E3779B9
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// SetRecorder attaches a flight recorder: the switch registers one actor for
// its forwarding plane (PFC pause/resume and buffer-drop events) and one per
// egress link (the usual TC enqueue/dequeue/serialization events). Nil
// disables tracing.
func (s *Switch) SetRecorder(r *trace.Recorder) {
	s.rec = r
	s.recActor = r.RegisterActor(s.cfg.Name + "/fwd")
	for _, p := range s.ports {
		p.egress.SetRecorder(r)
	}
}

// Ingress accepts one packet from an upstream link — install it as the
// link's sink. The packet is admission-checked against the shared buffer,
// forwarded after FwdDelay, and enqueued at the output port the forwarding
// table names for its destination address.
func (s *Switch) Ingress(p Packet) {
	out := int32(-1)
	if int(p.Dst) < len(s.table) {
		out = s.table[p.Dst]
		if out == ecmpEntry {
			group := s.ecmp[p.Dst]
			out = group[flowHash(p.Flow, p.Dst)%uint32(len(group))]
		}
	}
	if out < 0 {
		s.unroutable++
		s.rec.Emit(trace.Event{At: int64(s.eng.Now()), Kind: trace.KindTailDrop,
			Actor: s.recActor, TC: int8(p.TC & 7), Val: uint64(p.Bytes), Aux: uint64(p.Dst)})
		return
	}
	// Shared-buffer admission: pool exhaustion or the class's threshold
	// tail-drops the packet before it occupies anything.
	if s.cfg.SharedBufBytes > 0 {
		limit := s.cfg.SharedBufBytes
		if sh := s.cfg.TCShare[p.TC]; sh > 0 {
			limit = int(sh * float64(s.cfg.SharedBufBytes))
		}
		if s.bufUsed+p.Bytes > s.cfg.SharedBufBytes || s.bufUsedTC[p.TC]+p.Bytes > limit {
			s.bufDrops[p.TC]++
			s.rec.Emit(trace.Event{At: int64(s.eng.Now()), Kind: trace.KindTailDrop,
				Actor: s.recActor, TC: int8(p.TC & 7), Val: uint64(p.Bytes)})
			return
		}
	}
	s.bufUsed += p.Bytes
	s.bufUsedTC[p.TC] += p.Bytes
	s.fwdPackets++
	s.fwdBytes += uint64(p.Bytes)
	if s.cfg.FwdDelay <= 0 {
		s.enqueue(int(out), p)
		return
	}
	s.pendPush(swPending{due: s.eng.Now().Add(s.cfg.FwdDelay), out: out, pkt: p})
	if !s.timerArmed {
		s.timerArmed = true
		s.eng.At(s.pendQ[s.pendHead].due, s.deliverFn)
	}
}

// pendPush appends to the forwarding ring, rewinding or compacting the
// backing slice when the consumed prefix dominates (same discipline as the
// Link TC rings — steady traffic reuses one backing array).
func (s *Switch) pendPush(e swPending) {
	q := s.pendQ
	if h := s.pendHead; h > 0 {
		if h == len(q) {
			q = q[:0]
			s.pendHead = 0
		} else if h >= 64 && h*2 >= len(q) {
			n := copy(q, q[h:])
			q = q[:n]
			s.pendHead = 0
		}
	}
	s.pendQ = append(q, e)
}

// deliverDue moves every due packet from the forwarding pipe to its egress
// port, then re-arms for the next pending entry.
func (s *Switch) deliverDue() {
	now := s.eng.Now()
	for s.pendHead < len(s.pendQ) && s.pendQ[s.pendHead].due <= now {
		e := s.pendQ[s.pendHead]
		s.pendQ[s.pendHead] = swPending{}
		s.pendHead++
		if s.pendHead == len(s.pendQ) {
			s.pendQ = s.pendQ[:0]
			s.pendHead = 0
		}
		s.enqueue(int(e.out), e.pkt)
	}
	if s.pendHead < len(s.pendQ) {
		s.eng.At(s.pendQ[s.pendHead].due, s.deliverFn)
		return
	}
	s.timerArmed = false
}

// enqueue hands a forwarded packet to its output port's egress link and runs
// the PFC XOFF check.
func (s *Switch) enqueue(port int, pkt Packet) {
	p := s.ports[port]
	if err := p.egress.Send(pkt); err != nil {
		// Egress queue bound (per-port maxQueue) tail-dropped it: the link
		// counted the drop; release the shared-buffer reservation.
		s.bufUsed -= pkt.Bytes
		s.bufUsedTC[pkt.TC] -= pkt.Bytes
		return
	}
	p.queuedTC[pkt.TC] += pkt.Bytes
	if s.cfg.XOffBytes > 0 && !p.pausedTC[pkt.TC] && p.queuedTC[pkt.TC] >= s.cfg.XOffBytes {
		p.pausedTC[pkt.TC] = true
		s.pfcPauses[pkt.TC]++
		s.pauseRef[pkt.TC]++
		s.rec.Emit(trace.Event{At: int64(s.eng.Now()), Kind: trace.KindPFCPause,
			Actor: s.recActor, TC: int8(pkt.TC & 7), Val: uint64(p.queuedTC[pkt.TC]), Aux: 1})
		if s.pauseRef[pkt.TC] == 1 {
			for _, up := range s.ports {
				if up.relay != nil {
					up.relay(pkt.TC, true)
				} else if up.upstream != nil {
					up.upstream.PauseTC(pkt.TC)
				}
			}
		}
	}
}

// release returns buffer occupancy as a packet leaves an egress queue for
// the wire, and runs the PFC XON check.
func (s *Switch) release(port, tc, bytes int) {
	s.bufUsed -= bytes
	s.bufUsedTC[tc] -= bytes
	p := s.ports[port]
	p.queuedTC[tc] -= bytes
	if p.pausedTC[tc] && p.queuedTC[tc] <= s.cfg.XOnBytes {
		p.pausedTC[tc] = false
		s.pauseRef[tc]--
		s.rec.Emit(trace.Event{At: int64(s.eng.Now()), Kind: trace.KindPFCPause,
			Actor: s.recActor, TC: int8(tc & 7), Val: uint64(p.queuedTC[tc]), Aux: 0})
		if s.pauseRef[tc] == 0 {
			for _, up := range s.ports {
				if up.relay != nil {
					up.relay(tc, false)
				} else if up.upstream != nil {
					up.upstream.ResumeTC(tc)
				}
			}
		}
	}
}

// PortPause models the switch receiving a PRIO pause frame for tc from the
// device attached at port: the port's egress link stops transmitting that
// class. The pause expires after PauseQuanta unless refreshed — a malicious
// host can therefore stall the port only while actively spraying frames,
// never forever. While paused, backlog accumulating at this port can cross
// XOFF and pause every *upstream* port through the usual refcount plumbing:
// that is the congestion-tree amplification a pause-abuse aggressor buys.
func (s *Switch) PortPause(port, tc int) {
	p := s.ports[port]
	s.rxPauses[tc]++
	end := s.eng.Now().Add(s.cfg.PauseQuanta)
	// One armed expiry per (port, TC): a refreshing frame cancels the
	// previous event instead of stacking a stale no-op behind it. The old
	// schedule-per-frame scheme left every superseded expiry pending until
	// its timestamp passed, so Engine.Pending was nonzero long after a run
	// quiesced — an event leak the parallel barrier cannot tolerate.
	p.rxPauseEv[tc].Cancel()
	if p.rxExpire[tc] == nil {
		port, tc := port, tc
		p.rxExpire[tc] = func() { s.PortResume(port, tc) }
	}
	p.rxPauseEv[tc] = s.eng.At(end, p.rxExpire[tc])
	if !p.rxPaused[tc] {
		p.rxPaused[tc] = true
		p.egress.PauseTC(tc)
		s.rec.Emit(trace.Event{At: int64(s.eng.Now()), Kind: trace.KindPFCPause,
			Actor: s.recActor, TC: int8(tc & 7), Val: uint64(port), Aux: 1})
	}
}

// PortResume models the pause clearing (a zero-quanta frame, or quanta
// expiry): the port's egress link resumes the class and drains. Any armed
// expiry is cancelled (cancelling the event that just fired is a no-op).
func (s *Switch) PortResume(port, tc int) {
	p := s.ports[port]
	if !p.rxPaused[tc] {
		return
	}
	p.rxPauseEv[tc].Cancel()
	p.rxPauseEv[tc] = sim.Event{}
	p.rxPaused[tc] = false
	p.egress.ResumeTC(tc)
	s.rec.Emit(trace.Event{At: int64(s.eng.Now()), Kind: trace.KindPFCPause,
		Actor: s.recActor, TC: int8(tc & 7), Val: uint64(port), Aux: 0})
}

// RxPauses reports pause frames received from attached devices for one TC.
func (s *Switch) RxPauses(tc int) uint64 { return s.rxPauses[tc] }

// PortPaused reports whether a received pause currently stops port's egress
// for tc.
func (s *Switch) PortPaused(port, tc int) bool { return s.ports[port].rxPaused[tc] }

// FwdPackets reports packets admitted into the forwarding pipeline.
func (s *Switch) FwdPackets() uint64 { return s.fwdPackets }

// FwdBytes reports bytes admitted into the forwarding pipeline.
func (s *Switch) FwdBytes() uint64 { return s.fwdBytes }

// Unroutable reports packets dropped for lack of a forwarding entry.
func (s *Switch) Unroutable() uint64 { return s.unroutable }

// BufDrops reports shared-buffer admission drops for one TC.
func (s *Switch) BufDrops(tc int) uint64 { return s.bufDrops[tc] }

// PFCPauses reports pause assertions for one TC.
func (s *Switch) PFCPauses(tc int) uint64 { return s.pfcPauses[tc] }

// BufUsed reports current shared-buffer occupancy in bytes.
func (s *Switch) BufUsed() int { return s.bufUsed }

// PortBacklog reports one port's egress backlog for one TC, in bytes.
func (s *Switch) PortBacklog(port, tc int) int { return s.ports[port].queuedTC[tc] }

// String aids debugging.
func (s *Switch) String() string {
	return fmt.Sprintf("switch %s: %d ports, %d fwd, %d unroutable, buf %d",
		s.cfg.Name, len(s.ports), s.fwdPackets, s.unroutable, s.bufUsed)
}
