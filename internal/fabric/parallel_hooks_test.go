package fabric

import (
	"testing"

	"github.com/thu-has/ragnar/internal/sim"
)

// TestRouteECMPFlowStickiness: every packet of one flow takes one egress;
// different flows spread across the group.
func TestRouteECMPFlowStickiness(t *testing.T) {
	e := sim.NewEngine(1)
	sw := NewSwitch(e, SwitchConfig{Name: "ecmp"})
	var got [3][]uint32
	ports := make([]int, 3)
	for i := range ports {
		i := i
		ports[i] = sw.AddPort("up", 100, 100*sim.Nanosecond, 0, DefaultQoS(),
			func(p Packet) { got[i] = append(got[i], p.Flow) })
	}
	sw.RouteECMP(7, ports)

	const flows = 64
	for round := 0; round < 4; round++ {
		for f := uint32(0); f < flows; f++ {
			sw.Ingress(Packet{TC: 0, Bytes: 256, Dst: 7, Flow: f})
		}
	}
	e.Run()

	seen := map[uint32]int{}
	total := 0
	for port, fls := range got {
		if len(fls) == 0 {
			t.Errorf("ECMP left port %d completely idle across %d flows", port, flows)
		}
		total += len(fls)
		for _, f := range fls {
			if prev, ok := seen[f]; ok && prev != port {
				t.Fatalf("flow %d crossed ports %d and %d — per-packet spraying reorders", f, prev, port)
			}
			seen[f] = port
		}
	}
	if total != 4*flows {
		t.Fatalf("delivered %d packets, want %d", total, 4*flows)
	}
}

// TestRouteECMPSinglePortDegrades pins that a one-port group is a plain
// table entry (no map lookup on the forwarding path).
func TestRouteECMPSinglePortDegrades(t *testing.T) {
	e := sim.NewEngine(1)
	sw := NewSwitch(e, SwitchConfig{Name: "ecmp1"})
	n := 0
	p0 := sw.AddPort("only", 100, sim.Nanosecond, 0, DefaultQoS(), func(Packet) { n++ })
	sw.RouteECMP(3, []int{p0})
	sw.Ingress(Packet{TC: 0, Bytes: 64, Dst: 3, Flow: 9})
	e.Run()
	if n != 1 || sw.ecmp != nil {
		t.Fatalf("single-port group: delivered=%d ecmp=%v, want 1 and nil", n, sw.ecmp)
	}
}

// TestLinkSetRemote: the remote hook sees the packet after serialization
// with the arrival stamped one propagation delay ahead, and the local sink
// never fires.
func TestLinkSetRemote(t *testing.T) {
	e := sim.NewEngine(1)
	local := 0
	l := NewLink(e, "trunk", 100, 250*sim.Nanosecond, 0, func(Packet) { local++ })
	type rx struct {
		at   sim.Time
		sent sim.Time
	}
	var got []rx
	l.SetRemote(func(at sim.Time, p Packet) { got = append(got, rx{at, e.Now()}) })
	for i := 0; i < 3; i++ {
		if err := l.Send(Packet{TC: 0, Bytes: 1024, Dst: 1}); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	if local != 0 {
		t.Fatalf("local sink fired %d times with remote hook installed", local)
	}
	if len(got) != 3 {
		t.Fatalf("remote hook saw %d packets, want 3", len(got))
	}
	for i, r := range got {
		if want := r.sent.Add(250 * sim.Nanosecond); r.at != want {
			t.Fatalf("packet %d arrival %v, want serialization end + prop = %v", i, r.at, want)
		}
	}
	if l.TxPackets(0) != 3 {
		t.Fatalf("tx counter %d, want 3 (remote leg must not skip serialization accounting)", l.TxPackets(0))
	}
}

// TestSetPauseRelayReplacesUpstreamCall: a port with a relay must not touch
// its upstream link directly; ports without one keep the synchronous call.
func TestSetPauseRelayReplacesUpstreamCall(t *testing.T) {
	e := sim.NewEngine(1)
	sw := NewSwitch(e, SwitchConfig{
		Name:           "relay",
		SharedBufBytes: 1 << 20,
		XOffBytes:      2048,
		XOnBytes:       1024,
	})
	// Slow egress so backlog crosses XOFF.
	out := sw.AddPort("hot", 1, 10*sim.Nanosecond, 0, DefaultQoS(), func(Packet) {})
	_ = out
	relayed := sw.AddPort("trunk", 100, 10*sim.Nanosecond, 0, DefaultQoS(), func(Packet) {})
	direct := sw.AddPort("host", 100, 10*sim.Nanosecond, 0, DefaultQoS(), func(Packet) {})

	trunkUp := NewLink(e, "trunk-up", 100, 10*sim.Nanosecond, 0, sw.Ingress)
	hostUp := NewLink(e, "host-up", 100, 10*sim.Nanosecond, 0, sw.Ingress)
	sw.SetUpstream(relayed, trunkUp)
	sw.SetUpstream(direct, hostUp)

	var relayLog []bool
	sw.SetPauseRelay(relayed, func(tc int, pause bool) { relayLog = append(relayLog, pause) })

	sw.Route(1, out)
	for i := 0; i < 8; i++ {
		sw.Ingress(Packet{TC: 0, Bytes: 1024, Dst: 1})
	}
	e.RunFor(5 * sim.Microsecond)

	if len(relayLog) == 0 || !relayLog[0] {
		t.Fatalf("relay never saw the pause assertion: %v", relayLog)
	}
	if trunkUp.PausedTC(0) {
		t.Fatal("relayed port's upstream was paused directly, bypassing the relay")
	}
	if !hostUp.PausedTC(0) && relayLog[len(relayLog)-1] {
		t.Fatal("direct port's upstream missed the synchronous pause")
	}
	e.Run()
	if last := relayLog[len(relayLog)-1]; last {
		t.Fatal("relay never saw the resume after the backlog drained")
	}
}

// TestPortPauseNoEventLeak is the satellite regression: refreshed pause
// frames must not leave stale expiry events pending after the run
// quiesces. Before the cancellable-event fix, every refresh stacked one
// no-op event at its old expiry time.
func TestPortPauseNoEventLeak(t *testing.T) {
	e := sim.NewEngine(1)
	sw := NewSwitch(e, SwitchConfig{Name: "leak", PauseQuanta: 10 * sim.Microsecond})
	port := sw.AddPort("victim", 100, sim.Nanosecond, 0, DefaultQoS(), func(Packet) {})

	// 5 refreshes, 1µs apart: one pause window ending 10µs after the last.
	for i := 0; i < 5; i++ {
		at := sim.Time(int64(i) * int64(sim.Microsecond))
		e.At(at, func() { sw.PortPause(port, 3) })
	}
	e.RunUntil(sim.Time(2 * int64(sim.Microsecond)))
	if got := e.LivePending(); got != 3 {
		t.Fatalf("mid-run LivePending = %d, want 3 (2 future pause frames + 1 armed expiry)", got)
	}
	e.Run()
	if err := e.DrainCheck(); err != nil {
		t.Fatalf("stale pause expiries leaked: %v", err)
	}
	if sw.PortPaused(port, 3) {
		t.Fatal("pause never expired")
	}
	if got := sw.RxPauses(3); got != 5 {
		t.Fatalf("RxPauses = %d, want 5", got)
	}
}
