package revengine

// Determinism regression suite: the parallel sweep engine must guarantee
// that worker count changes only wall-clock time, never a single sweep
// cell. Every converted sweep is run sequentially (workers=1) and compared
// byte-for-byte against runs at 2 and NumCPU workers with the same seed.

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"github.com/thu-has/ragnar/internal/nic"
)

// workerCounts are the worker settings every sweep is cross-checked at.
func workerCounts() []int {
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		counts = append(counts, n)
	}
	return counts
}

// assertIdentical fails unless got is deeply equal to want; the rendered
// %#v forms are compared too so any drift shows up byte-level in the
// failure message.
func assertIdentical(t *testing.T, workers int, want, got any) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("workers=%d diverged from sequential run:\nseq: %#v\npar: %#v", workers, want, got)
	}
	if fmt.Sprintf("%#v", want) != fmt.Sprintf("%#v", got) {
		t.Fatalf("workers=%d: rendered forms differ", workers)
	}
}

func TestPrioritySweepDeterministicAcrossWorkers(t *testing.T) {
	space := SweepSpace{
		OpPairs: [][2]nic.Opcode{
			{nic.OpWrite, nic.OpRead},
			{nic.OpRead, nic.OpWrite},
			{nic.OpAtomicFAA, nic.OpRead},
		},
		SizesA:         []int{64, 1024, 65536},
		SizesB:         []int{256, 4096},
		QPsA:           []int{1, 4},
		QPsB:           []int{2},
		IncludeReverse: true,
	}
	for _, p := range nic.PaperProfiles {
		want := PrioritySweep(p, space, 1)
		if len(want) != space.Size() {
			t.Fatalf("%s: %d cells, want %d", p.Name, len(want), space.Size())
		}
		for _, w := range workerCounts()[1:] {
			assertIdentical(t, w, want, PrioritySweep(p, space, w))
		}
	}
}

func TestAbsOffsetSweepDeterministicAcrossWorkers(t *testing.T) {
	offsets := []uint64{0, 7, 8, 63, 64, 65, 2048, 2055, 4096}
	const seed = 11
	want, err := AbsOffsetSweep(nic.CX4, 64, offsets, 120, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts()[1:] {
		got, err := AbsOffsetSweep(nic.CX4, 64, offsets, 120, seed, w)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, w, want, got)
	}
}

func TestRelOffsetSweepDeterministicAcrossWorkers(t *testing.T) {
	deltas := []uint64{64, 512, 1024, 1088, 2048}
	const seed = 13
	want, err := RelOffsetSweep(nic.CX4, 64, deltas, 120, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts()[1:] {
		got, err := RelOffsetSweep(nic.CX4, 64, deltas, 120, seed, w)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, w, want, got)
	}
}

func TestInterMRSweepDeterministicAcrossWorkers(t *testing.T) {
	sizes := []int{64, 512, 2048}
	const seed = 17
	want, err := InterMRSweep(nic.CX4, sizes, 120, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts()[1:] {
		got, err := InterMRSweep(nic.CX4, sizes, 120, seed, w)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, w, want, got)
	}
}

// TestSweepStableAcrossRepeatedRuns guards the other half of determinism:
// repeated parallel runs in one process must agree with each other (no
// leakage through package-level state like the prober epoch or NIC
// sequence counters).
func TestSweepStableAcrossRepeatedRuns(t *testing.T) {
	offsets := []uint64{0, 64, 2048}
	first, err := AbsOffsetSweep(nic.CX4, 64, offsets, 100, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		again, err := AbsOffsetSweep(nic.CX4, 64, offsets, 100, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, 0, first, again)
	}
}

// TestSweepCellSeedIsPositionIndependent pins the seeding convention: a
// cell's trace depends only on (seed, cell identity), so measuring one
// offset alone reproduces exactly what the full sweep measured for it.
func TestSweepCellSeedIsPositionIndependent(t *testing.T) {
	offsets := []uint64{0, 7, 64, 2048}
	full, err := AbsOffsetSweep(nic.CX4, 64, offsets, 100, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, off := range offsets {
		solo, err := AbsOffsetSweep(nic.CX4, 64, []uint64{off}, 100, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(full[i], solo[0]) {
			t.Fatalf("offset %d: sweep cell %+v != solo cell %+v", off, full[i], solo[0])
		}
	}
}
