package revengine

import (
	"testing"

	"github.com/thu-has/ragnar/internal/nic"
)

func TestCategorize(t *testing.T) {
	cases := []struct {
		pct  float64
		want Reduction
	}{
		{-20, AbnormalIncrease},
		{0, ReductionNone},
		{5, ReductionNone},
		{25, ReductionSlight},
		{55, ReductionHalf},
		{85, ReductionSevere},
	}
	for _, c := range cases {
		if got := Categorize(c.pct); got != c.want {
			t.Errorf("Categorize(%v) = %v, want %v", c.pct, got, c.want)
		}
	}
}

func TestDefaultSweepSpaceSize(t *testing.T) {
	space := DefaultSweepSpace()
	if space.Size() < 6000 {
		t.Fatalf("sweep space has %d combos, paper ran over 6000", space.Size())
	}
}

func TestPrioritySweepSubset(t *testing.T) {
	space := SweepSpace{
		OpPairs: [][2]nic.Opcode{{nic.OpWrite, nic.OpRead}},
		SizesA:  []int{64, 2048},
		SizesB:  []int{1024},
		QPsA:    []int{4},
		QPsB:    []int{2},
	}
	cells := PrioritySweep(nic.CX4, space, 0)
	if len(cells) != 2 {
		t.Fatalf("got %d cells", len(cells))
	}
	byInducerSize := map[int]SweepCell{}
	for _, c := range cells {
		byInducerSize[c.Inducer.MsgBytes] = c
		if c.SoloInducer <= 0 || c.SoloIndicator <= 0 {
			t.Fatalf("cell missing solo bandwidth: %+v", c)
		}
	}
	// The Figure 4 blue-box structure: small write loses hard, large write
	// reverses it onto the read.
	small, large := byInducerSize[64], byInducerSize[2048]
	if small.InducerLossPct < 40 {
		t.Errorf("small write inducer lost %.0f%%, want heavy loss", small.InducerLossPct)
	}
	if large.IndicatorLossPct < 30 {
		t.Errorf("read vs 2KB write lost %.0f%%, want >= 30%%", large.IndicatorLossPct)
	}
	if large.InducerLossPct > 20 {
		t.Errorf("2KB write lost %.0f%%, want to keep its bandwidth", large.InducerLossPct)
	}
}

func TestPrioritySweepFindsAbnormalIncrease(t *testing.T) {
	// Key Finding 2 must appear as blue cells in the write-vs-write block.
	space := SweepSpace{
		OpPairs: [][2]nic.Opcode{{nic.OpWrite, nic.OpWrite}},
		SizesA:  []int{64},
		SizesB:  []int{64},
		QPsA:    []int{4},
		QPsB:    []int{4},
	}
	cells := PrioritySweep(nic.CX4, space, 0)
	found := false
	for _, c := range cells {
		if c.IndicatorCat == AbnormalIncrease && c.TotalPctOfSolo > 200 {
			found = true
		}
	}
	if !found {
		t.Fatal("no abnormal-increase cell in small-write block")
	}
}

func TestAbsOffsetSweepStructure(t *testing.T) {
	// Key Finding 4: 64 B-aligned offsets show lower ULI than unaligned
	// neighbours; 8 B-aligned sit between.
	offsets := []uint64{61, 63, 64, 65, 67, 128, 129, 136, 192}
	points, err := AbsOffsetSweep(nic.CX4, 64, offsets, 400, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	byOff := map[uint64]float64{}
	for _, pt := range points {
		if pt.Trace.N == 0 {
			t.Fatalf("offset %d has no samples", pt.Offset)
		}
		byOff[pt.Offset] = pt.Trace.Mean
	}
	if !(byOff[64] < byOff[63] && byOff[64] < byOff[65]) {
		t.Errorf("64B-aligned ULI (%.0f) not below unaligned neighbours (%.0f, %.0f)",
			byOff[64], byOff[63], byOff[65])
	}
	if !(byOff[136] < byOff[129]) { // 136 = 8B aligned, 129 unaligned
		t.Errorf("8B-aligned ULI (%.0f) not below unaligned (%.0f)", byOff[136], byOff[129])
	}
	if !(byOff[128] < byOff[136]) { // 64B multiple faster than mere 8B-aligned
		t.Errorf("64B multiple (%.0f) not below 8B-aligned (%.0f)", byOff[128], byOff[136])
	}
}

func TestAbsOffsetSweep2048Periodicity(t *testing.T) {
	// The 2048 B sawtooth: same phase 2048 apart gives close ULI; late
	// phase exceeds early phase.
	offsets := []uint64{68, 68 + 1024, 68 + 2048}
	points, err := AbsOffsetSweep(nic.CX4, 64, offsets, 500, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	early, late, wrap := points[0].Trace.Mean, points[1].Trace.Mean, points[2].Trace.Mean
	if late <= early {
		t.Errorf("sawtooth not visible: ULI(68)=%.1f ULI(1092)=%.1f", early, late)
	}
	// Same phase one period apart should be much closer to each other than
	// to the mid-period point.
	if d := wrap - early; d > (late-early)/2 && early-wrap > (late-early)/2 {
		t.Errorf("period structure broken: early=%.1f late=%.1f wrap=%.1f", early, late, wrap)
	}
}

func TestRelOffsetSweepBankConflicts(t *testing.T) {
	// Relative offsets that land in the same TPU bank (multiples of
	// 64*banks = 1024 on CX-4) show elevated ULI.
	deltas := []uint64{64, 512, 1024, 1088, 2048}
	points, err := RelOffsetSweep(nic.CX4, 64, deltas, 400, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	byDelta := map[uint64]float64{}
	for _, pt := range points {
		byDelta[pt.Offset] = pt.Trace.Mean
	}
	if !(byDelta[1024] > byDelta[1088]) {
		t.Errorf("same-bank delta 1024 (%.1f) not above cross-bank 1088 (%.1f)",
			byDelta[1024], byDelta[1088])
	}
	if !(byDelta[2048] > byDelta[512]) {
		t.Errorf("same-bank delta 2048 (%.1f) not above cross-bank 512 (%.1f)",
			byDelta[2048], byDelta[512])
	}
}

func TestInterMRSweepFig5(t *testing.T) {
	points, err := InterMRSweep(nic.CX4, []int{64, 512, 2048}, 300, 13, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		if pt.DiffMR.Mean <= pt.SameMR.Mean {
			t.Errorf("size %d: different-MR ULI (%.1f) not above same-MR (%.1f)",
				pt.MsgSize, pt.DiffMR.Mean, pt.SameMR.Mean)
		}
	}
	// ULI grows with message size (more TPU beats, more wire time).
	if !(points[0].SameMR.Mean < points[2].SameMR.Mean) {
		t.Errorf("ULI not increasing with size: %v vs %v", points[0].SameMR.Mean, points[2].SameMR.Mean)
	}
}
