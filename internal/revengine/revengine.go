// Package revengine implements the paper's Section IV reverse-engineering
// microbenchmarks: the Grain-I/II priority contention sweep behind the
// Figure 4 conceptual diagram, and the Grain-III/IV ULI sweeps behind
// Figures 5-8 (same/different MR, absolute address offset, relative address
// offset).
package revengine

import (
	"context"
	"fmt"
	"sync"

	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/parallel"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/uli"
	"github.com/thu-has/ragnar/internal/verbs"
)

// ---------------------------------------------------------------------------
// Grain-I/II: priority contention sweep (Figure 4)
// ---------------------------------------------------------------------------

// Reduction categorises a bandwidth change the way Figure 4's pie charts
// colour it.
type Reduction int

// Reduction categories (Figure 4 legend).
const (
	ReductionNone    Reduction = iota // dark red: no significant decrease
	ReductionSlight                   // light red: slight decrease
	ReductionHalf                     // medium red: ~50% decrease
	ReductionSevere                   // deep drop: >70%
	AbnormalIncrease                  // blue: bandwidth above solo
)

func (r Reduction) String() string {
	switch r {
	case ReductionNone:
		return "none"
	case ReductionSlight:
		return "slight"
	case ReductionHalf:
		return "half"
	case ReductionSevere:
		return "severe"
	case AbnormalIncrease:
		return "increase"
	}
	return fmt.Sprintf("Reduction(%d)", int(r))
}

// Categorize maps a percentage reduction to its Figure 4 colour class.
func Categorize(pct float64) Reduction {
	switch {
	case pct < -5:
		return AbnormalIncrease
	case pct < 10:
		return ReductionNone
	case pct < 40:
		return ReductionSlight
	case pct < 70:
		return ReductionHalf
	default:
		return ReductionSevere
	}
}

// SweepCell is one parameter combination of the contention benchmark: the
// "inducer" flow A competing with the "indicator" flow B (the paper's
// Inr./Ind. axes).
type SweepCell struct {
	Inducer   nic.FlowSpec
	Indicator nic.FlowSpec
	// Solo and contended goodputs (Gbps).
	SoloInducer   float64
	SoloIndicator float64
	ContInducer   float64
	ContIndicator float64
	// Reductions in percent and their categories.
	InducerLossPct   float64
	IndicatorLossPct float64
	InducerCat       Reduction
	IndicatorCat     Reduction
	// TotalPctOfSolo is aggregate contended bandwidth relative to the
	// indicator's solo (the >200% metric of Key Finding 2 uses same-spec
	// flows where inducer solo == indicator solo).
	TotalPctOfSolo float64
}

// SweepSpace defines the parameter grid. The defaults reproduce the paper's
// "over 6000 parameter combinations".
type SweepSpace struct {
	OpPairs [][2]nic.Opcode
	SizesA  []int
	SizesB  []int
	QPsA    []int
	QPsB    []int
	// IncludeReverse additionally runs each pair with the indicator flow
	// posted from the server side (the paper's reverse traffic).
	IncludeReverse bool
}

// DefaultSweepSpace matches the paper's scale: >6000 combinations.
func DefaultSweepSpace() SweepSpace {
	return SweepSpace{
		OpPairs: [][2]nic.Opcode{
			{nic.OpWrite, nic.OpRead},
			{nic.OpRead, nic.OpWrite},
			{nic.OpWrite, nic.OpWrite},
			{nic.OpRead, nic.OpRead},
			{nic.OpAtomicFAA, nic.OpRead},
			{nic.OpAtomicFAA, nic.OpWrite},
		},
		SizesA:         []int{64, 256, 512, 1024, 4096, 16384, 65536},
		SizesB:         []int{64, 256, 512, 1024, 4096, 16384, 65536},
		QPsA:           []int{1, 2, 4, 16},
		QPsB:           []int{1, 2, 4, 16},
		IncludeReverse: true,
	}
}

// Size reports how many combinations the space contains.
func (s SweepSpace) Size() int {
	n := len(s.OpPairs) * len(s.SizesA) * len(s.SizesB) * len(s.QPsA) * len(s.QPsB)
	if s.IncludeReverse {
		n *= 2
	}
	return n
}

// Cells enumerates the space's (inducer, indicator) flow pairs in canonical
// sweep order — the order PrioritySweep's output follows at any worker
// count. Atomic inducers ignore SizesA (atomics are 8 B by definition).
func (s SweepSpace) Cells() [][2]nic.FlowSpec {
	reverses := []bool{false}
	if s.IncludeReverse {
		reverses = []bool{false, true}
	}
	out := make([][2]nic.FlowSpec, 0, s.Size())
	for _, pair := range s.OpPairs {
		for _, sa := range s.SizesA {
			for _, sb := range s.SizesB {
				for _, qa := range s.QPsA {
					for _, qb := range s.QPsB {
						for _, rev := range reverses {
							a := nic.FlowSpec{Name: "inducer", Op: pair[0], MsgBytes: sa, QPNum: qa, Client: 0}
							b := nic.FlowSpec{Name: "indicator", Op: pair[1], MsgBytes: sb, QPNum: qb, Client: 1, FromServer: rev}
							if a.Op == nic.OpAtomicFAA || a.Op == nic.OpAtomicCAS {
								a.MsgBytes = 8
							}
							out = append(out, [2]nic.FlowSpec{a, b})
						}
					}
				}
			}
		}
	}
	return out
}

// PrioritySweep evaluates every combination in the space on the given
// adapter using the fluid contention model and returns the matrix, sharded
// across `workers` goroutines (0 = NumCPU, 1 = sequential). The fluid
// solver is a pure function of (profile, flows), so cells are independent
// and the matrix is identical at any worker count, in Cells() order.
func PrioritySweep(p nic.Profile, space SweepSpace, workers int) []SweepCell {
	// Solo goodputs repeat across cells; memoise them. nic.Solo is pure, so
	// concurrent duplicate computation is only wasted work, never a wrong
	// or nondeterministic value — first-stored wins and all values agree.
	var soloCache sync.Map
	solo := func(f nic.FlowSpec) nic.FlowResult {
		key := fmt.Sprintf("%d/%d/%d/%v", f.Op, f.MsgBytes, f.QPNum, f.FromServer)
		if r, ok := soloCache.Load(key); ok {
			return r.(nic.FlowResult)
		}
		r := nic.Solo(p, f)
		soloCache.Store(key, r)
		return r
	}
	cells, err := parallel.Map(context.Background(), workers, space.Cells(),
		func(_ context.Context, _ int, pair [2]nic.FlowSpec) (SweepCell, error) {
			return evalCell(p, pair[0], pair[1], solo), nil
		})
	if err != nil {
		// The cell fn never returns an error, so this can only be a captured
		// worker panic — surface it as the panic it was.
		panic(err)
	}
	return cells
}

func evalCell(p nic.Profile, a, b nic.FlowSpec, solo func(nic.FlowSpec) nic.FlowResult) SweepCell {
	sa, sb := solo(a), solo(b)
	res := nic.Solve(p, []nic.FlowSpec{a, b})
	cell := SweepCell{
		Inducer: a, Indicator: b,
		SoloInducer: sa.GoodputGbps, SoloIndicator: sb.GoodputGbps,
		ContInducer: res[0].GoodputGbps, ContIndicator: res[1].GoodputGbps,
		InducerLossPct:   nic.ReductionPct(sa, res[0]),
		IndicatorLossPct: nic.ReductionPct(sb, res[1]),
	}
	cell.InducerCat = Categorize(cell.InducerLossPct)
	cell.IndicatorCat = Categorize(cell.IndicatorLossPct)
	if sb.GoodputGbps > 0 {
		cell.TotalPctOfSolo = (res[0].GoodputGbps + res[1].GoodputGbps) / sb.GoodputGbps * 100
	}
	return cell
}

// ---------------------------------------------------------------------------
// Grain-III/IV: ULI sweeps (Figures 5-8)
// ---------------------------------------------------------------------------

// OffsetPoint is one x-position of a Figure 6/7/8 trace.
type OffsetPoint struct {
	Offset uint64
	Trace  uli.Trace
}

// newProbeRig builds the paper's Table IV configuration: MRs on 2 MB huge
// pages, 2 QPs in the same PD, single-threaded probing.
func newProbeRig(p nic.Profile, seed int64, mrs int, depth int) (*lab.Cluster, *lab.Conn, []*verbs.MR, error) {
	cfg := lab.DefaultConfig(p)
	cfg.Seed = seed
	c := lab.New(cfg)
	var regions []*verbs.MR
	for i := 0; i < mrs; i++ {
		mr, err := c.RegisterServerMR(2 << 20)
		if err != nil {
			return nil, nil, nil, err
		}
		regions = append(regions, mr)
	}
	conn, err := c.Dial(0, depth+2)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, mr := range regions {
		if err := c.Warm(conn, mr); err != nil {
			return nil, nil, nil, err
		}
	}
	return c, conn, regions, nil
}

// AbsOffsetSweep reproduces Figures 6 and 7: alternately access offset 0 and
// a variable offset with msgSize RDMA Reads in the same remote MR, and
// report the ULI trace at each offset.
//
// Each offset is an independent cell: it gets its own probe rig (cluster,
// connection, warmed MR) seeded with sim.DeriveSeed(seed, offset), so the
// random stream a cell sees depends only on (seed, offset) — never on which
// worker ran it or what other cells did. Traces are identical at any
// worker count.
func AbsOffsetSweep(p nic.Profile, msgSize int, offsets []uint64, probesPer int, seed int64, workers int) ([]OffsetPoint, error) {
	return parallel.Map(context.Background(), workers, offsets,
		func(_ context.Context, _ int, off uint64) (OffsetPoint, error) {
			c, conn, mrs, err := newProbeRig(p, sim.DeriveSeed(seed, off), 1, 8)
			if err != nil {
				return OffsetPoint{}, err
			}
			mr := mrs[0]
			prober := &uli.Prober{
				QP: conn.QP, CQ: conn.CQ, Remote: mr.Describe(0), MsgSize: msgSize, Depth: 8,
				NextOffset: func(i int) uint64 {
					if i%2 == 0 {
						return 0
					}
					return off
				},
			}
			samples, err := prober.Measure(c.Eng, probesPer)
			if err != nil {
				return OffsetPoint{}, err
			}
			// Summarise only the probes that touched the variable offset.
			var at []uli.Sample
			for _, s := range samples {
				if s.Offset == off {
					at = append(at, s)
				}
			}
			if off == 0 {
				at = samples
			}
			return OffsetPoint{Offset: off, Trace: uli.Summarize(at)}, nil
		})
}

// RelOffsetSweep reproduces Figure 8: alternately access a base offset and
// base+delta, and report the ULI trace as a function of the *relative*
// offset delta. Cells shard per delta exactly like AbsOffsetSweep.
func RelOffsetSweep(p nic.Profile, msgSize int, deltas []uint64, probesPer int, seed int64, workers int) ([]OffsetPoint, error) {
	// Fixed unaligned base so the absolute-offset structure stays constant
	// while delta varies.
	const base = 8192 + 4
	return parallel.Map(context.Background(), workers, deltas,
		func(_ context.Context, _ int, d uint64) (OffsetPoint, error) {
			c, conn, mrs, err := newProbeRig(p, sim.DeriveSeed(seed, d), 1, 8)
			if err != nil {
				return OffsetPoint{}, err
			}
			mr := mrs[0]
			prober := &uli.Prober{
				QP: conn.QP, CQ: conn.CQ, Remote: mr.Describe(0), MsgSize: msgSize, Depth: 8,
				NextOffset: func(i int) uint64 {
					if i%2 == 0 {
						return base
					}
					return base + d
				},
			}
			samples, err := prober.Measure(c.Eng, probesPer)
			if err != nil {
				return OffsetPoint{}, err
			}
			return OffsetPoint{Offset: d, Trace: uli.Summarize(samples)}, nil
		})
}

// InterMRPoint is one message size of the Figure 5 comparison.
type InterMRPoint struct {
	MsgSize int
	SameMR  uli.Trace
	DiffMR  uli.Trace
}

// InterMRSweep reproduces Figure 5: alternately access two addresses that
// live either in the same remote MR or in two different remote MRs, across
// message sizes. Each message size is an independent cell with its own rig
// seeded by sim.DeriveSeed(seed, size); the same-MR and different-MR
// measurements of one cell share that rig (the figure compares them on
// identical plumbing) and run back-to-back in fixed order.
func InterMRSweep(p nic.Profile, sizes []int, probesPer int, seed int64, workers int) ([]InterMRPoint, error) {
	return parallel.Map(context.Background(), workers, sizes,
		func(_ context.Context, _ int, size int) (InterMRPoint, error) {
			c, conn, mrs, err := newProbeRig(p, sim.DeriveSeed(seed, uint64(size)), 2, 8)
			if err != nil {
				return InterMRPoint{}, err
			}
			mrA, mrB := mrs[0], mrs[1]
			measure := func(remotes [2]verbs.RemoteBuf) (uli.Trace, error) {
				prober := &uli.Prober{
					QP: conn.QP, CQ: conn.CQ, Remote: remotes[0], MsgSize: size, Depth: 8,
					NextRemote: func(i int) verbs.RemoteBuf { return remotes[i%2] },
				}
				samples, err := prober.Measure(c.Eng, probesPer)
				if err != nil {
					return uli.Trace{}, err
				}
				return uli.Summarize(samples), nil
			}
			same, err := measure([2]verbs.RemoteBuf{mrA.Describe(0), mrA.Describe(mrA.Size() / 2)})
			if err != nil {
				return InterMRPoint{}, err
			}
			diff, err := measure([2]verbs.RemoteBuf{mrA.Describe(0), mrB.Describe(0)})
			if err != nil {
				return InterMRPoint{}, err
			}
			return InterMRPoint{MsgSize: size, SameMR: same, DiffMR: diff}, nil
		})
}
