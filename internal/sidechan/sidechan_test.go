package sidechan

import (
	"testing"

	"github.com/thu-has/ragnar/internal/appdb"
	"github.com/thu-has/ragnar/internal/classifier"
	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/stats"
)

func TestCaptureShufflePlateau(t *testing.T) {
	cfg := DefaultMonitorConfig(nic.CX5)
	cfg.RelNoise = 0
	phases := appdb.ShufflePhases(nic.CX5, 3, 2000, 200*sim.Millisecond)
	total := phases[0].Start + phases[0].Dur + 200*sim.Millisecond
	trace := Capture(cfg, phases, total)
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	// Before/after bandwidth must exceed during-shuffle bandwidth: the
	// plateau drop.
	var before, during []float64
	for _, p := range trace {
		if sim.Duration(p.T) < phases[0].Start-cfg.Window {
			before = append(before, p.BW)
		} else if sim.Duration(p.T) >= phases[0].Start+cfg.Window &&
			sim.Duration(p.T) < phases[0].Start+phases[0].Dur-cfg.Window {
			// Interior windows only: boundary windows straddle the edge.
			during = append(during, p.BW)
		}
	}
	if stats.Mean(during) >= stats.Mean(before)*0.8 {
		t.Fatalf("no plateau: before %.2f during %.2f", stats.Mean(before), stats.Mean(during))
	}
	// The plateau is flat: low variance relative to the drop.
	drop := stats.Mean(before) - stats.Mean(during)
	if stats.StdDev(during) > drop/4 {
		t.Fatalf("plateau not flat: sd %.3f vs drop %.3f", stats.StdDev(during), drop)
	}
}

func TestCaptureJoinTeeth(t *testing.T) {
	cfg := DefaultMonitorConfig(nic.CX5)
	cfg.RelNoise = 0
	phases := appdb.JoinPhases(nic.CX5, 3, 4, 100*sim.Millisecond)
	last := phases[len(phases)-1]
	trace := Capture(cfg, phases, last.Start+last.Dur+100*sim.Millisecond)
	// Count falling edges: one per tooth.
	bw := normalizeBW(trace)
	edges := 0
	for i := 1; i < len(bw); i++ {
		if bw[i-1]-bw[i] > 0.5 {
			edges++
		}
	}
	if edges != 4 {
		t.Fatalf("found %d teeth, want 4", edges)
	}
}

func TestDetectorClassifies(t *testing.T) {
	cfg := DefaultMonitorConfig(nic.CX5)
	cfg.Seed = 42
	det := NewDetector(cfg)

	shuf := appdb.ShufflePhases(nic.CX5, 3, 1800, 150*sim.Millisecond)
	total := shuf[0].Start + shuf[0].Dur + 150*sim.Millisecond
	res := Fingerprint(cfg, det, shuf, total)
	if res.Detected != PatternShuffle {
		t.Fatalf("shuffle detected as %v", res.Detected)
	}

	join := appdb.JoinPhases(nic.CX5, 3, 5, 150*sim.Millisecond)
	last := join[len(join)-1]
	res = Fingerprint(cfg, det, join, last.Start+last.Dur+150*sim.Millisecond)
	if res.Detected != PatternJoin {
		t.Fatalf("join detected as %v", res.Detected)
	}

	// Idle traffic must not alarm.
	res = Fingerprint(cfg, det, nil, 500*sim.Millisecond)
	if res.Detected != PatternNull {
		t.Fatalf("idle detected as %v", res.Detected)
	}
}

func TestSnoopTraceRevealsVictimBank(t *testing.T) {
	cfg := DefaultSnoopConfig(nic.CX4)
	cfg.Background = false
	cfg.ProbesPerOffset = 8
	// Trim the observation set for speed; keep the victim's bank inside.
	cfg.Observation = nil
	for off := uint64(0); off <= 1024; off += 16 {
		cfg.Observation = append(cfg.Observation, off)
	}
	s, err := NewSnooper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const victimOff = 320 // bank 5 on CX-4 (16 banks x 64 B)
	trace, err := s.CaptureTrace(victimOff)
	if err != nil {
		t.Fatal(err)
	}
	// Observation offsets sharing the victim's bank must show elevated ULI
	// relative to the rest of the trace.
	banks := uint64(nic.CX4.TPUBanks)
	var same, other []float64
	for i, off := range cfg.Observation {
		if (off/64)%banks == (victimOff/64)%banks {
			same = append(same, trace[i])
		} else {
			other = append(other, trace[i])
		}
	}
	if stats.Mean(same) <= stats.Mean(other) {
		t.Fatalf("victim bank not visible: same %.1f other %.1f", stats.Mean(same), stats.Mean(other))
	}
}

func TestSnoopDistinctCandidatesDistinctTraces(t *testing.T) {
	cfg := DefaultSnoopConfig(nic.CX4)
	cfg.Background = false
	cfg.ProbesPerOffset = 6
	cfg.Observation = nil
	for off := uint64(0); off <= 1024; off += 16 {
		cfg.Observation = append(cfg.Observation, off)
	}
	capture := func(off uint64) []float64 {
		s, err := NewSnooper(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := s.CaptureTrace(off)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	t0 := capture(0)
	t64 := capture(64)
	t0b := capture(0)
	// Same class correlates better with itself than with the other class.
	rSame, _ := stats.Pearson(t0, t0b)
	rDiff, _ := stats.Pearson(t0, t64)
	if rSame <= rDiff {
		t.Fatalf("traces not class-separable: same-class r=%.3f cross-class r=%.3f", rSame, rDiff)
	}
}

// End-to-end snoop: small dataset, both classifiers must clearly beat
// chance; the bench reproduces the paper-scale 95.6% figure.
func TestSnoopAttackEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("snoop dataset collection is slow")
	}
	cfg := DefaultSnoopConfig(nic.CX4)
	cfg.ProbesPerOffset = 6
	cfg.Observation = nil
	for off := uint64(0); off <= 1024; off += 16 {
		cfg.Observation = append(cfg.Observation, off)
	}
	// 5 bank-distinct candidates for a fast test (the bench runs the full
	// 17-candidate set, where 0 B and 1024 B alias to one TPU bank).
	cfg.Candidates = []uint64{0, 192, 448, 704, 960}
	cnnCfg := classifier.DefaultCNNConfig()
	cnnCfg.Epochs = 24
	rep, err := RunSnoopAttack(cfg, 10, cnnCfg)
	if err != nil {
		t.Fatal(err)
	}
	chance := 1.0 / float64(rep.Classes)
	if rep.CentroidAcc < 3*chance {
		t.Errorf("centroid accuracy %.2f barely above chance %.2f", rep.CentroidAcc, chance)
	}
	if rep.CNNAcc < 3*chance {
		t.Errorf("CNN accuracy %.2f barely above chance %.2f", rep.CNNAcc, chance)
	}
}

func TestSnooperValidation(t *testing.T) {
	cfg := DefaultSnoopConfig(nic.CX4)
	cfg.Candidates = nil
	if _, err := NewSnooper(cfg); err == nil {
		t.Fatal("empty candidates should error")
	}
}

func TestClassOf(t *testing.T) {
	cfg := DefaultSnoopConfig(nic.CX4)
	if cfg.ClassOf(0) != 0 || cfg.ClassOf(64) != 1 || cfg.ClassOf(1024) != 16 {
		t.Fatal("candidate indexing broken")
	}
	if cfg.ClassOf(13) != -1 {
		t.Fatal("non-candidate should map to -1")
	}
	if len(cfg.Candidates) != 17 || len(cfg.Observation) != 257 {
		t.Fatalf("paper set sizes: %d candidates, %d observations", len(cfg.Candidates), len(cfg.Observation))
	}
}

// The three workload patterns classify distinctly: write plateau (shuffle),
// read plateau (sort-merge) and teeth (hash join).
func TestDetectorDistinguishesThreePatterns(t *testing.T) {
	cfg := DefaultMonitorConfig(nic.CX5)
	cfg.Seed = 17
	det := NewDetector(cfg)
	if det.ShufRatio == det.SMJRatio {
		t.Fatal("reference drop depths identical; disambiguation impossible")
	}

	shuf := appdb.ShufflePhases(nic.CX5, 3, 2000, 150*sim.Millisecond)
	res := Fingerprint(cfg, det, shuf, shuf[0].Start+shuf[0].Dur+150*sim.Millisecond)
	if res.Detected != PatternShuffle {
		t.Errorf("shuffle -> %v", res.Detected)
	}

	smj := appdb.SortMergePhases(nic.CX5, 3, 2000, 150*sim.Millisecond)
	res = Fingerprint(cfg, det, smj, smj[0].Start+smj[0].Dur+150*sim.Millisecond)
	if res.Detected != PatternSortMerge {
		t.Errorf("sort-merge -> %v", res.Detected)
	}

	join := appdb.JoinPhases(nic.CX5, 3, 5, 150*sim.Millisecond)
	last := join[len(join)-1]
	res = Fingerprint(cfg, det, join, last.Start+last.Dur+150*sim.Millisecond)
	if res.Detected != PatternJoin {
		t.Errorf("hash join -> %v", res.Detected)
	}
}

// TestSnoopOnStarRevealsVictimBank repeats the bank-leak check with the
// victim, attacker and background tenant on separate ports of a shared
// switch (NewSnooperOn + lab.Star): the side channel is a property of the
// server RNIC, so moving the rig behind a switch must not hide it.
func TestSnoopOnStarRevealsVictimBank(t *testing.T) {
	cfg := DefaultSnoopConfig(nic.CX4)
	cfg.Background = false
	cfg.ProbesPerOffset = 8
	cfg.Observation = nil
	for off := uint64(0); off <= 1024; off += 16 {
		cfg.Observation = append(cfg.Observation, off)
	}
	lcfg := lab.DefaultConfig(cfg.Profile)
	lcfg.Seed = cfg.Seed
	lcfg.Clients = 3
	s, err := NewSnooperOn(lab.Star(lcfg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	const victimOff = 320
	trace, err := s.CaptureTrace(victimOff)
	if err != nil {
		t.Fatal(err)
	}
	banks := uint64(nic.CX4.TPUBanks)
	var same, other []float64
	for i, off := range cfg.Observation {
		if (off/64)%banks == (victimOff/64)%banks {
			same = append(same, trace[i])
		} else {
			other = append(other, trace[i])
		}
	}
	if stats.Mean(same) <= stats.Mean(other) {
		t.Fatalf("victim bank not visible through the switch: same %.1f other %.1f",
			stats.Mean(same), stats.Mean(other))
	}
	if s.Cluster().Switches[0].FwdPackets() == 0 {
		t.Fatal("no packets traversed the switch")
	}
	if _, err := NewSnooperOn(lab.Pair(lab.DefaultConfig(cfg.Profile)), cfg); err == nil {
		t.Fatal("2-client topology should be rejected")
	}
}
