package sidechan

import (
	"errors"
	"fmt"

	"github.com/thu-has/ragnar/internal/classifier"
	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/stats"
	"github.com/thu-has/ragnar/internal/traffic"
	"github.com/thu-has/ragnar/internal/uli"
	"github.com/thu-has/ragnar/internal/verbs"
)

// SnoopConfig parameterises the Figure 13 attack: the victim repeatedly
// reads one address from the candidate set in a shared MR; the attacker
// measures mean ULI at each observation-set offset and classifies the
// resulting trace.
type SnoopConfig struct {
	Profile nic.Profile
	// Candidates are the victim's possible access offsets: 17 candidates,
	// 0 B to 1024 B (64 B apart — Sherman's KV entry granularity).
	Candidates []uint64
	// Observation is the attacker's probe set: 257 offsets, 0 B to 1024 B
	// (4 B apart).
	Observation []uint64
	// ProbesPerOffset is the paper's N: ULI samples averaged per
	// observation point.
	ProbesPerOffset int
	MsgSize         int
	Depth           int
	// Background, when true, adds a third client issuing benign traffic
	// whose parameters vary per trace — the realistic nuisance that keeps
	// trace classes from being trivially separable.
	Background bool
	Seed       int64
}

// DefaultSnoopConfig mirrors Section VI-B: 17 candidates and 257
// observation points over a 1 KiB shared file region, 64 B reads.
func DefaultSnoopConfig(p nic.Profile) SnoopConfig {
	cfg := SnoopConfig{
		Profile:         p,
		ProbesPerOffset: 8,
		MsgSize:         64,
		Depth:           8,
		Background:      true,
		Seed:            1,
	}
	for off := uint64(0); off <= 1024; off += 64 {
		cfg.Candidates = append(cfg.Candidates, off)
	}
	for off := uint64(0); off <= 1024; off += 4 {
		cfg.Observation = append(cfg.Observation, off)
	}
	return cfg
}

// Snooper is one instantiated attack rig: victim, attacker and optional
// background client sharing a server MR.
type Snooper struct {
	cfg      SnoopConfig
	cluster  *lab.Cluster
	mr       *verbs.MR
	victim   *lab.Conn
	attacker *lab.Conn
	noise    *lab.Conn
}

// NewSnooper builds the rig on a fresh point-to-point cluster. The shared MR
// models the paper's 1 KiB shared file (plus headroom) in the memory server.
func NewSnooper(cfg SnoopConfig) (*Snooper, error) {
	lcfg := lab.DefaultConfig(cfg.Profile)
	lcfg.Seed = cfg.Seed
	lcfg.Clients = 3
	return NewSnooperOn(lab.Pair(lcfg), cfg)
}

// NewSnooperOn builds the rig on an already-built topology: client 0 is the
// victim, client 1 the attacker, client 2 the background tenant. Switched
// topologies (lab.Star et al.) reuse the identical capture pipeline.
func NewSnooperOn(c *lab.Cluster, cfg SnoopConfig) (*Snooper, error) {
	if len(cfg.Candidates) == 0 || len(cfg.Observation) == 0 {
		return nil, errors.New("sidechan: empty candidate or observation set")
	}
	if len(c.Clients) < 3 {
		return nil, fmt.Errorf("sidechan: topology has %d clients, need 3", len(c.Clients))
	}
	mr, err := c.RegisterServerMR(2 << 20)
	if err != nil {
		return nil, err
	}
	victim, err := c.Dial(0, cfg.Depth+2)
	if err != nil {
		return nil, err
	}
	attacker, err := c.Dial(1, cfg.Depth+2)
	if err != nil {
		return nil, err
	}
	noise, err := c.Dial(2, 6)
	if err != nil {
		return nil, err
	}
	for _, cn := range []*lab.Conn{victim, attacker, noise} {
		if err := c.Warm(cn, mr); err != nil {
			return nil, err
		}
	}
	return &Snooper{cfg: cfg, cluster: c, mr: mr, victim: victim, attacker: attacker, noise: noise}, nil
}

// MR exposes the shared region (examples wire the B+ tree into it).
func (s *Snooper) MR() *verbs.MR { return s.mr }

// Cluster exposes the underlying lab cluster.
func (s *Snooper) Cluster() *lab.Cluster { return s.cluster }

// CaptureTrace runs one attack round while the victim reads the given
// candidate offset: for each observation offset, the attacker issues
// ProbesPerOffset ULI probes and records the mean — one point of the
// 257-dimensional trace.
func (s *Snooper) CaptureTrace(victimOffset uint64) ([]float64, error) {
	eng := s.cluster.Eng
	rng := eng.Rand()

	victimGen := &traffic.Generator{
		QP: s.victim.QP, CQ: s.victim.CQ,
		Op: nic.OpRead, MsgSize: 64, Depth: s.cfg.Depth,
		Next: traffic.FixedTarget(s.mr.Describe(victimOffset)),
	}
	if err := victimGen.Start(); err != nil {
		return nil, err
	}
	var noiseGen *traffic.Generator
	if s.cfg.Background {
		// Benign co-tenant load: random message size and target per trace.
		sizes := []int{128, 256, 512, 1024}
		sz := sizes[rng.Intn(len(sizes))]
		off := uint64(rng.Intn(64)) * 2048
		noiseGen = &traffic.Generator{
			QP: s.noise.QP, CQ: s.noise.CQ,
			Op: nic.OpRead, MsgSize: sz, Depth: 1 + rng.Intn(3),
			Next: traffic.FixedTarget(s.mr.Describe(1 << 20).At(off)),
		}
		if err := noiseGen.Start(); err != nil {
			return nil, err
		}
	}

	trace := make([]float64, len(s.cfg.Observation))
	for i, off := range s.cfg.Observation {
		prober := &uli.Prober{
			QP: s.attacker.QP, CQ: s.attacker.CQ,
			Remote: s.mr.Describe(off), MsgSize: s.cfg.MsgSize, Depth: s.cfg.Depth,
		}
		samples, err := prober.Measure(eng, s.cfg.ProbesPerOffset)
		if err != nil {
			return nil, fmt.Errorf("sidechan: offset %d: %w", off, err)
		}
		trace[i] = stats.Mean(uli.ULIs(samples))
	}

	victimGen.Stop()
	if noiseGen != nil {
		noiseGen.Stop()
	}
	// Drain leftovers so back-to-back captures are independent.
	eng.RunFor(50 * sim.Microsecond)
	// Per-trace standardisation: co-tenant background load shifts the whole
	// trace up or down; the victim's signature lives in the *shape* (which
	// observation offsets conflict with the victim's bank), so the attacker
	// removes the DC component before classification.
	return stats.ZScore(trace), nil
}

// ClassOf maps a victim offset to its candidate index; -1 if absent.
func (cfg *SnoopConfig) ClassOf(offset uint64) int {
	for i, c := range cfg.Candidates {
		if c == offset {
			return i
		}
	}
	return -1
}

// CollectDataset captures perClass traces for every candidate, producing
// the training corpus of Figure 13(b) (the paper collects 6720 traces).
func CollectDataset(cfg SnoopConfig, perClass int) (*classifier.Dataset, error) {
	ds := &classifier.Dataset{}
	for class, victimOff := range cfg.Candidates {
		// A fresh rig per class keeps runs independent; the per-trace seed
		// varies the background traffic and jitter.
		for t := 0; t < perClass; t++ {
			runCfg := cfg
			runCfg.Seed = cfg.Seed + int64(class*1000+t)
			s, err := NewSnooper(runCfg)
			if err != nil {
				return nil, err
			}
			trace, err := s.CaptureTrace(victimOff)
			if err != nil {
				return nil, err
			}
			ds.Add(trace, class)
		}
	}
	ds.Classes = len(cfg.Candidates)
	return ds, nil
}

// SnoopReport summarises the end-to-end attack: dataset sizes and the two
// classifiers' accuracies with confusion matrices.
type SnoopReport struct {
	Traces       int
	Classes      int
	CentroidAcc  float64
	CNNAcc       float64
	CNNConfusion [][]int
}

// RunSnoopAttack collects a dataset, trains both classifiers and evaluates
// them — the full Figure 13 pipeline.
func RunSnoopAttack(cfg SnoopConfig, perClass int, cnnCfg classifier.CNNConfig) (*SnoopReport, error) {
	ds, err := CollectDataset(cfg, perClass)
	if err != nil {
		return nil, err
	}
	train, test := ds.Split(0.75, cfg.Seed)
	rep := &SnoopReport{Traces: ds.Len(), Classes: ds.Classes}
	nc, err := classifier.TrainNearestCentroid(train)
	if err != nil {
		return nil, err
	}
	rep.CentroidAcc, _ = classifier.Evaluate(nc, test)
	cnn, err := classifier.TrainCNN(train, cnnCfg)
	if err != nil {
		return nil, err
	}
	rep.CNNAcc, rep.CNNConfusion = classifier.Evaluate(cnn, test)
	return rep, nil
}

// CaptureBaseline records the attacker's trace with no victim running: the
// attacker's own offset-dependent translation costs. Subtracting it from a
// live trace isolates the victim-induced component — the calibration step a
// real attacker performs once after reverse engineering.
func (s *Snooper) CaptureBaseline() ([]float64, error) {
	eng := s.cluster.Eng
	trace := make([]float64, len(s.cfg.Observation))
	for i, off := range s.cfg.Observation {
		prober := &uli.Prober{
			QP: s.attacker.QP, CQ: s.attacker.CQ,
			Remote: s.mr.Describe(off), MsgSize: s.cfg.MsgSize, Depth: s.cfg.Depth,
		}
		samples, err := prober.Measure(eng, s.cfg.ProbesPerOffset)
		if err != nil {
			return nil, fmt.Errorf("sidechan: baseline offset %d: %w", off, err)
		}
		trace[i] = stats.Mean(uli.ULIs(samples))
	}
	eng.RunFor(50 * sim.Microsecond)
	return stats.ZScore(trace), nil
}

// Subtract returns a-b elementwise (trace calibration helper).
func Subtract(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}
