// Package sidechan implements Ragnar's two side-channel attacks
// (Section VI): fingerprinting distributed-database shuffle/join operations
// from the attacker's own bandwidth (Algorithm 1, Figure 12), and snooping
// a victim's access address on disaggregated memory via the Grain-IV offset
// effect (Figure 13).
package sidechan

import (
	"math/rand"

	"github.com/thu-has/ragnar/internal/appdb"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/stats"
)

// Pattern is the detector's verdict.
type Pattern int

// Detected patterns.
const (
	PatternNull Pattern = iota
	PatternShuffle
	PatternJoin
	PatternSortMerge
)

func (p Pattern) String() string {
	switch p {
	case PatternShuffle:
		return "shuffle"
	case PatternJoin:
		return "join"
	case PatternSortMerge:
		return "sort-merge"
	}
	return "null"
}

// BWSample is one windowed bandwidth observation of the attacker's
// monitoring flow.
type BWSample struct {
	T  sim.Time
	BW float64 // Gbps
}

// MonitorConfig parameterises the Algorithm 1 monitor.
type MonitorConfig struct {
	Profile nic.Profile
	// Monitor is the attacker's small flow (a different client from the
	// database workers).
	Monitor nic.FlowSpec
	// Window is the bandwidth sampling period.
	Window sim.Duration
	// RelNoise is relative measurement noise per window.
	RelNoise float64
	Seed     int64
}

// DefaultMonitorConfig matches the paper's setup: the attacker keeps a
// modest read flow against the shared server.
func DefaultMonitorConfig(p nic.Profile) MonitorConfig {
	return MonitorConfig{
		Profile:  p,
		Monitor:  nic.FlowSpec{Name: "attacker", Op: nic.OpRead, MsgBytes: 1024, QPNum: 1, Client: 2},
		Window:   10 * sim.Millisecond,
		RelNoise: 0.02,
		Seed:     1,
	}
}

// Capture replays an application phase schedule against the fluid model and
// returns the attacker's bandwidth trace over [0, total).
func Capture(cfg MonitorConfig, phases []appdb.Phase, total sim.Duration) []BWSample {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []BWSample
	// Cache fluid solutions per active-phase set (schedules have few
	// distinct sets).
	cache := map[string]float64{}
	for t := sim.Duration(0); t < total; t += cfg.Window {
		key := ""
		flows := []nic.FlowSpec{cfg.Monitor}
		for _, ph := range phases {
			if t+cfg.Window/2 >= ph.Start && t+cfg.Window/2 < ph.Start+ph.Dur {
				flows = append(flows, ph.Flow)
				key += ph.Name + "|"
			}
		}
		bw, ok := cache[key]
		if !ok {
			bw = nic.Solve(cfg.Profile, flows)[0].GoodputGbps
			cache[key] = bw
		}
		bw *= 1 + cfg.RelNoise*rng.NormFloat64()
		if bw < 0 {
			bw = 0
		}
		out = append(out, BWSample{T: sim.Time(t), BW: bw})
	}
	return out
}

// Detector implements Algorithm 1's CorrelationDetect: it holds reference
// bandwidth templates for shuffle and join and classifies a window of
// monitor history by normalised cross-correlation.
type Detector struct {
	cfg          MonitorConfig
	ShufTemplate []float64
	JoinTemplate []float64
	// Threshold is the minimum peak correlation to report a pattern.
	Threshold float64
	// ShufRatio and SMJRatio are the expected low/high bandwidth ratios of
	// a write plateau (shuffle) vs a read plateau (sort-merge streaming):
	// correlation is scale-invariant, so plateau-shaped matches are told
	// apart by how deep the monitor's bandwidth drops.
	ShufRatio float64
	SMJRatio  float64
}

// NewDetector builds the canonical pattern templates. Correlation is scale-
// and offset-invariant, so the templates are morphological: the shuffle
// signature is one long sustained drop (plateau) framed by normal bandwidth;
// the join signature is two periods of the burst/compute tooth. An attacker
// derives exactly these shapes from one profiled run of each operation, and
// they then generalise across data sizes and round counts (the paper's
// "different round times and configurations").
func NewDetector(cfg MonitorConfig) *Detector {
	toothWindows := int(joinToothPeriod / cfg.Window / 2) // per half-tooth
	// Falling edge into a sustained low: matches the *start* of a plateau of
	// any length at least 4 tooth half-periods — size-invariant.
	shuf := append(repeatF(1, 8), repeatF(0, 4*toothWindows)...)
	var join []float64
	for p := 0; p < 2; p++ {
		join = append(join, repeatF(0, toothWindows)...)
		join = append(join, repeatF(1, toothWindows)...)
	}
	join = append(join, repeatF(0, toothWindows)...)
	// Reference drop depths from the contention model (the attacker
	// calibrates these with one profiled run of each operation).
	solo := nic.Solo(cfg.Profile, cfg.Monitor).GoodputGbps
	shufFlow := nic.FlowSpec{Name: "shuffle", Op: nic.OpWrite, MsgBytes: 4096, QPNum: 6, Client: 0}
	smjFlow := nic.FlowSpec{Name: "sortmerge", Op: nic.OpRead, MsgBytes: 4096, QPNum: 6, Client: 0}
	shufLow := nic.Solve(cfg.Profile, []nic.FlowSpec{shufFlow, cfg.Monitor})[1].GoodputGbps
	smjLow := nic.Solve(cfg.Profile, []nic.FlowSpec{smjFlow, cfg.Monitor})[1].GoodputGbps
	d := &Detector{
		cfg:          cfg,
		ShufTemplate: shuf,
		JoinTemplate: join,
		Threshold:    0.75,
	}
	if solo > 0 {
		d.ShufRatio = shufLow / solo
		d.SMJRatio = smjLow / solo
	}
	return d
}

// joinToothPeriod is the canonical burst+gap duration of one join round
// (appdb.JoinPhases uses 60ms+60ms).
const joinToothPeriod = 120 * sim.Millisecond

func repeatF(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func normalizeBW(ps []BWSample) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = p.BW
	}
	return stats.Normalize(out)
}

// Detect classifies a monitor history window: the template with the higher
// correlation peak wins if it clears the threshold.
func (d *Detector) Detect(history []BWSample) Pattern {
	signal := normalizeBW(history)
	peak := func(tpl []float64) float64 {
		if len(signal) < len(tpl) {
			// Slide the short signal over the template instead.
			return stats.Max(stats.CrossCorrelate(tpl, signal))
		}
		return stats.Max(stats.CrossCorrelate(signal, tpl))
	}
	ps := peak(d.ShufTemplate)
	pj := peak(d.JoinTemplate)
	if ps < d.Threshold && pj < d.Threshold {
		return PatternNull
	}
	if pj > ps {
		return PatternJoin
	}
	// Plateau-shaped: shuffle (write storm) vs sort-merge streaming (read
	// storm) have the same shape but different drop depths.
	raw := make([]float64, len(history))
	for i, p := range history {
		raw[i] = p.BW
	}
	qs := stats.Percentiles(raw, 10, 90)
	if qs[1] <= 0 {
		return PatternShuffle
	}
	observed := qs[0] / qs[1]
	if abs(observed-d.ShufRatio) <= abs(observed-d.SMJRatio) {
		return PatternShuffle
	}
	return PatternSortMerge
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// FingerprintResult is one Figure 12 run: the captured trace and verdict.
type FingerprintResult struct {
	Trace    []BWSample
	Detected Pattern
}

// Fingerprint runs the full attack against a schedule: capture the monitor
// trace while the workload executes, then classify it.
func Fingerprint(cfg MonitorConfig, d *Detector, phases []appdb.Phase, total sim.Duration) FingerprintResult {
	trace := Capture(cfg, phases, total)
	return FingerprintResult{Trace: trace, Detected: d.Detect(trace)}
}
