// Package bitstream provides the bit-level plumbing shared by every Ragnar
// covert channel: converting between byte payloads and bit slices, framing
// with synchronisation preambles, computing bit-error rates and the paper's
// effective-bandwidth metric, and simple majority-vote repetition coding.
package bitstream

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Bits is an ordered sequence of binary symbols, MSB-first when converted
// from bytes.
type Bits []byte

// ParseBits converts a string like "1101" into Bits, ignoring spaces and
// underscores. Any other rune is an error.
func ParseBits(s string) (Bits, error) {
	out := make(Bits, 0, len(s))
	for _, r := range s {
		switch r {
		case '0':
			out = append(out, 0)
		case '1':
			out = append(out, 1)
		case ' ', '_':
		default:
			return nil, fmt.Errorf("bitstream: invalid bit rune %q", r)
		}
	}
	return out, nil
}

// MustParseBits is ParseBits for constant inputs; it panics on error.
func MustParseBits(s string) Bits {
	b, err := ParseBits(s)
	if err != nil {
		panic(err)
	}
	return b
}

// String renders the bits as a compact 0/1 string.
func (b Bits) String() string {
	var sb strings.Builder
	sb.Grow(len(b))
	for _, v := range b {
		if v == 0 {
			sb.WriteByte('0')
		} else {
			sb.WriteByte('1')
		}
	}
	return sb.String()
}

// FromBytes expands a byte payload into bits, MSB first.
func FromBytes(data []byte) Bits {
	out := make(Bits, 0, len(data)*8)
	for _, by := range data {
		for i := 7; i >= 0; i-- {
			out = append(out, (by>>uint(i))&1)
		}
	}
	return out
}

// ToBytes packs bits (MSB first) into bytes. Trailing bits that do not fill
// a byte are zero-padded on the right.
func (b Bits) ToBytes() []byte {
	out := make([]byte, (len(b)+7)/8)
	for i, v := range b {
		if v != 0 {
			out[i/8] |= 1 << uint(7-i%8)
		}
	}
	return out
}

// ErrorRate returns the fraction of positions where sent and received
// disagree. Length asymmetry counts as errors in both directions: a missing
// tail (recv shorter) and spurious extra symbols (recv longer) are each
// wholly wrong, scored against the longer of the two streams — a decoder
// that hallucinates symbols must not outscore an honest one.
func ErrorRate(sent, recv Bits) float64 {
	total := len(sent)
	if len(recv) > total {
		total = len(recv)
	}
	if total == 0 {
		return 0
	}
	n := min(len(sent), len(recv))
	errs := total - n // lost or spurious tail
	for i := 0; i < n; i++ {
		if sent[i] != recv[i] {
			errs++
		}
	}
	return float64(errs) / float64(total)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// EffectiveBandwidth converts a raw channel bandwidth (bits/s) and a bit
// error rate into the paper's effective bandwidth: the Shannon capacity of a
// binary symmetric channel with crossover probability e,
// BW_eff = BW * (1 - H2(e)). This reproduces Table V's relation between raw
// and effective rates (e.g. 84.3 Kbps at 7.59 % error -> ~51.6 Kbps).
func EffectiveBandwidth(rawBps, errorRate float64) float64 {
	return rawBps * (1 - BinaryEntropy(errorRate))
}

// BinaryEntropy returns H2(p) in bits; 0 at p = 0 or 1.
func BinaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// Repeat applies an n-fold repetition code to bits.
func Repeat(b Bits, n int) Bits {
	if n < 1 {
		panic("bitstream: repetition factor must be >= 1")
	}
	out := make(Bits, 0, len(b)*n)
	for _, v := range b {
		for i := 0; i < n; i++ {
			out = append(out, v)
		}
	}
	return out
}

// MajorityDecode inverts an n-fold repetition code by majority vote. Ties
// (even n with split votes) decode to 1: in the ULI channels the "1" symbol
// is the contended state, which a noisy tie most resembles.
func MajorityDecode(b Bits, n int) (Bits, error) {
	if n < 1 {
		return nil, errors.New("bitstream: repetition factor must be >= 1")
	}
	if len(b)%n != 0 {
		return nil, fmt.Errorf("bitstream: length %d not a multiple of %d", len(b), n)
	}
	out := make(Bits, 0, len(b)/n)
	for i := 0; i < len(b); i += n {
		ones := 0
		for j := 0; j < n; j++ {
			if b[i+j] != 0 {
				ones++
			}
		}
		if ones*2 >= n {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	return out, nil
}

// Preamble is the alternating synchronisation header prepended by Frame.
var Preamble = MustParseBits("10101011")

// Frame prepends the preamble and a 16-bit big-endian length field to the
// payload bits, which lets a receiver that samples a continuous symbol
// stream lock onto the message boundary.
func Frame(payload Bits) Bits {
	out := make(Bits, 0, len(Preamble)+16+len(payload))
	out = append(out, Preamble...)
	n := len(payload)
	for i := 15; i >= 0; i-- {
		out = append(out, byte((n>>uint(i))&1))
	}
	return append(out, payload...)
}

// Deframe locates the preamble in a received stream and extracts the
// payload. It tolerates leading garbage but requires an intact preamble and
// length field.
func Deframe(stream Bits) (Bits, error) {
	start := -1
search:
	for i := 0; i+len(Preamble) <= len(stream); i++ {
		for j, p := range Preamble {
			if stream[i+j] != p {
				continue search
			}
		}
		start = i
		break
	}
	if start < 0 {
		return nil, errors.New("bitstream: preamble not found")
	}
	pos := start + len(Preamble)
	if pos+16 > len(stream) {
		return nil, errors.New("bitstream: truncated length field")
	}
	n := 0
	for i := 0; i < 16; i++ {
		n = n<<1 | int(stream[pos+i])
	}
	pos += 16
	if pos+n > len(stream) {
		return nil, fmt.Errorf("bitstream: payload truncated: need %d bits, have %d", n, len(stream)-pos)
	}
	return append(Bits(nil), stream[pos:pos+n]...), nil
}

// RandomBits produces n pseudo-random bits from a 64-bit xorshift state;
// it is deliberately self-contained so channel tests do not need math/rand.
func RandomBits(seed uint64, n int) Bits {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	out := make(Bits, n)
	x := seed
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = byte(x & 1)
	}
	return out
}
