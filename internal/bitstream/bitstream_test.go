package bitstream

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestParseBits(t *testing.T) {
	b, err := ParseBits("1101 1111_0101 0010")
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != "1101111101010010" {
		t.Fatalf("parsed = %s", b)
	}
	if _, err := ParseBits("10x1"); err == nil {
		t.Fatal("invalid rune should error")
	}
}

func TestMustParseBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseBits should panic on bad input")
		}
	}()
	MustParseBits("12")
}

func TestBytesRoundTrip(t *testing.T) {
	data := []byte("RAGNAR covert payload")
	b := FromBytes(data)
	if len(b) != len(data)*8 {
		t.Fatalf("bit length = %d", len(b))
	}
	back := b.ToBytes()
	if !bytes.Equal(back, data) {
		t.Fatalf("round trip = %q", back)
	}
}

func TestToBytesPadding(t *testing.T) {
	b := MustParseBits("101")
	if got := b.ToBytes(); len(got) != 1 || got[0] != 0xA0 {
		t.Fatalf("padded = %x", got)
	}
}

func TestErrorRate(t *testing.T) {
	cases := []struct {
		name       string
		sent, recv string
		want       float64
	}{
		{"identical", "1111", "1111", 0},
		{"half wrong", "1111", "1010", 0.5},
		{"all wrong", "1111", "0000", 1},
		{"both empty", "", "", 0},
		// Length asymmetry, short side: a lost tail is wholly wrong.
		{"recv truncated", "1111", "11", 0.5},
		{"recv empty", "1111", "", 1},
		// Length asymmetry, long side: a decoder that hallucinates extra
		// symbols is scored against its own longer stream, so the spurious
		// tail counts as errors too (it must not outscore an honest decoder).
		{"recv overlong", "11", "1111", 0.5},
		{"sent empty", "", "1111", 1},
		{"overlong with overlap errors", "10", "0011", 0.75},
		{"truncated with overlap errors", "0011", "10", 0.75},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if e := ErrorRate(MustParseBits(c.sent), MustParseBits(c.recv)); e != c.want {
				t.Fatalf("ErrorRate(%q, %q) = %v, want %v", c.sent, c.recv, e, c.want)
			}
		})
	}
}

// TestErrorRateLengthSymmetry pins the fix for the overlength bias: scoring
// must be symmetric in which stream is longer.
func TestErrorRateLengthSymmetry(t *testing.T) {
	long := MustParseBits("10110010")
	short := MustParseBits("1011")
	if a, b := ErrorRate(long, short), ErrorRate(short, long); a != b {
		t.Fatalf("asymmetric scoring: long,short=%v short,long=%v", a, b)
	}
}

func TestBinaryEntropy(t *testing.T) {
	if h := BinaryEntropy(0.5); math.Abs(h-1) > 1e-12 {
		t.Fatalf("H2(0.5) = %v", h)
	}
	if BinaryEntropy(0) != 0 || BinaryEntropy(1) != 0 {
		t.Fatal("H2 at extremes should be 0")
	}
}

func TestEffectiveBandwidthMatchesTableV(t *testing.T) {
	// Paper Table V, CX-6 inter-MR: 84.3 Kbps at 7.59% error -> 51.6 Kbps.
	eff := EffectiveBandwidth(84300, 0.0759)
	if eff < 49000 || eff > 54000 {
		t.Fatalf("effective bandwidth = %v, want ~51.6 Kbps", eff)
	}
	// CX-5 inter-MR: 63.6 Kbps at 3.98% -> ~48.3 Kbps.
	eff = EffectiveBandwidth(63600, 0.0398)
	if eff < 46000 || eff > 51000 {
		t.Fatalf("effective bandwidth = %v, want ~48.3 Kbps", eff)
	}
}

func TestRepeatMajorityRoundTrip(t *testing.T) {
	b := MustParseBits("1100101")
	r := Repeat(b, 3)
	if len(r) != 21 {
		t.Fatalf("repeat length = %d", len(r))
	}
	// Flip one vote per symbol; majority still wins.
	for i := 0; i < len(r); i += 3 {
		r[i] ^= 1
	}
	dec, err := MajorityDecode(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dec.String() != b.String() {
		t.Fatalf("decoded = %s, want %s", dec, b)
	}
}

func TestMajorityDecodeErrors(t *testing.T) {
	if _, err := MajorityDecode(MustParseBits("101"), 2); err == nil {
		t.Fatal("misaligned decode should error")
	}
	if _, err := MajorityDecode(MustParseBits("10"), 0); err == nil {
		t.Fatal("zero factor should error")
	}
}

func TestFrameDeframe(t *testing.T) {
	payload := MustParseBits("110111110101001011")
	framed := Frame(payload)
	// Prepend garbage the receiver must skip.
	stream := append(MustParseBits("0011"), framed...)
	got, err := Deframe(stream)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != payload.String() {
		t.Fatalf("deframed = %s", got)
	}
}

func TestDeframeErrors(t *testing.T) {
	if _, err := Deframe(MustParseBits("0000000000000000")); err == nil {
		t.Fatal("missing preamble should error")
	}
	framed := Frame(MustParseBits("1111"))
	if _, err := Deframe(framed[:len(framed)-2]); err == nil {
		t.Fatal("truncated payload should error")
	}
	if _, err := Deframe(framed[:len(Preamble)+3]); err == nil {
		t.Fatal("truncated length field should error")
	}
}

func TestRandomBitsDeterministic(t *testing.T) {
	a := RandomBits(9, 128)
	b := RandomBits(9, 128)
	if a.String() != b.String() {
		t.Fatal("RandomBits not deterministic")
	}
	ones := 0
	for _, v := range a {
		ones += int(v)
	}
	if ones < 32 || ones > 96 {
		t.Fatalf("RandomBits badly skewed: %d/128 ones", ones)
	}
	// seed 0 must not get stuck at zero state
	z := RandomBits(0, 16)
	if z.String() == "0000000000000000" {
		t.Fatal("zero seed produced all zeros")
	}
}

// Property: framing round-trips any payload.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		payload := RandomBits(seed, int(n%512))
		got, err := Deframe(Frame(payload))
		if err != nil {
			return false
		}
		return got.String() == payload.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: byte/bit conversion round-trips.
func TestBytesRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(FromBytes(data).ToBytes(), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ErrorRate is 0 iff streams match, and always within [0,1].
func TestErrorRateRangeProperty(t *testing.T) {
	f := func(seed uint64, n uint8, flips uint8) bool {
		sent := RandomBits(seed, int(n)+1)
		recv := append(Bits(nil), sent...)
		k := int(flips) % len(recv)
		for i := 0; i < k; i++ {
			recv[i] ^= 1
		}
		e := ErrorRate(sent, recv)
		if e < 0 || e > 1 {
			return false
		}
		return (e == 0) == (k == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
