package bitstream

import "testing"

// FuzzDeframe hardens the covert-channel deframer: arbitrary bit noise must
// never panic it, and framed payloads embedded at any position must be
// recovered intact.
func FuzzDeframe(f *testing.F) {
	f.Add([]byte("10101011" + "0000000000000100" + "1011"))
	f.Add([]byte("000111"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Interpret bytes as a bit string (non-bits rejected by ParseBits).
		bits, err := ParseBits(string(raw))
		if err != nil {
			return
		}
		if payload, err := Deframe(bits); err == nil {
			// Whatever was recovered must re-frame into a stream that
			// deframes to the same payload.
			again, err := Deframe(Frame(payload))
			if err != nil || again.String() != payload.String() {
				t.Fatalf("deframe instability: %q vs %q (%v)", payload, again, err)
			}
		}
	})
}
